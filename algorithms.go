package ligra

import (
	"ligra/internal/algo"
	"ligra/internal/parallel"
)

// Result types of the built-in algorithms.
type (
	// BFSResult is the output of BFS.
	BFSResult = algo.BFSResult
	// BCResult is the output of BC (single-source betweenness).
	BCResult = algo.BCResult
	// CCResult is the output of ConnectedComponents.
	CCResult = algo.CCResult
	// SSSPResult is the output of BellmanFord.
	SSSPResult = algo.SSSPResult
	// PageRankResult is the output of PageRank and PageRankDelta.
	PageRankResult = algo.PageRankResult
	// PageRankOptions configures PageRank.
	PageRankOptions = algo.PageRankOptions
	// RadiiResult is the output of Radii.
	RadiiResult = algo.RadiiResult
	// RadiiOptions configures Radii.
	RadiiOptions = algo.RadiiOptions
	// KCoreResult is the output of KCore.
	KCoreResult = algo.KCoreResult
	// MISResult is the output of MIS.
	MISResult = algo.MISResult
	// DeltaSteppingResult is the output of DeltaStepping.
	DeltaSteppingResult = algo.DeltaSteppingResult
	// BCApproxResult is the output of BCApprox.
	BCApproxResult = algo.BCApproxResult
	// MatchingResult is the output of MaximalMatching.
	MatchingResult = algo.MatchingResult
	// ColoringResult is the output of Coloring.
	ColoringResult = algo.ColoringResult
	// SCCResult is the output of SCC.
	SCCResult = algo.SCCResult
	// LDDResult is the output of LDD.
	LDDResult = algo.LDDResult
	// EccentricityResult is the output of TwoPassEccentricity.
	EccentricityResult = algo.EccentricityResult
	// ForestResult is the output of SpanningForest.
	ForestResult = algo.ForestResult
	// APPRResult is the output of APPR.
	APPRResult = algo.APPRResult
	// SweepCutResult is the output of SweepCut / LocalCluster.
	SweepCutResult = algo.SweepCutResult
)

// InfDist is the distance of unreachable vertices in SSSPResult.
const InfDist = algo.InfDist

// BFS runs breadth-first search from source (paper §5.1).
func BFS(g View, source uint32, opts Options) *BFSResult {
	return algo.BFS(g, source, opts)
}

// BFSLevels returns per-vertex BFS distances from source (-1 when
// unreachable).
func BFSLevels(g View, source uint32, opts Options) []int32 {
	return algo.BFSLevels(g, source, opts)
}

// BC runs single-source betweenness centrality (paper §5.2).
func BC(g View, source uint32, opts Options) *BCResult {
	return algo.BC(g, source, opts)
}

// Radii estimates per-vertex eccentricities with K simultaneous BFS
// sharing 64-bit visit vectors (paper §5.3).
func Radii(g View, opts RadiiOptions) *RadiiResult {
	return algo.Radii(g, opts)
}

// DefaultRadiiOptions returns the paper's parameters (K=64).
func DefaultRadiiOptions() RadiiOptions { return algo.DefaultRadiiOptions() }

// ConnectedComponents runs label-propagation components (paper §5.4).
func ConnectedComponents(g View, opts Options) *CCResult {
	return algo.ConnectedComponents(g, opts)
}

// PageRank runs power iteration with damping and a dangling-mass
// correction (paper §5.5).
func PageRank(g View, opts PageRankOptions) *PageRankResult {
	return algo.PageRank(g, opts)
}

// PageRankDelta runs the frontier-based approximate variant (paper §5.5):
// only vertices whose rank moved by more than delta (relative to their
// rank) remain active.
func PageRankDelta(g View, opts PageRankOptions, delta float64) *PageRankResult {
	return algo.PageRankDelta(g, opts, delta)
}

// DefaultPageRankOptions returns the paper's PageRank parameters.
func DefaultPageRankOptions() PageRankOptions { return algo.DefaultPageRankOptions() }

// BellmanFord runs frontier-based single-source shortest paths (paper
// §5.6), detecting reachable negative cycles.
func BellmanFord(g View, source uint32, opts Options) *SSSPResult {
	return algo.BellmanFord(g, source, opts)
}

// KCore computes the k-core decomposition by parallel peeling (extension).
func KCore(g View, opts Options) *KCoreResult {
	return algo.KCore(g, opts)
}

// KCoreJulienne computes the k-core decomposition using Julienne's
// work-efficient bucketing structure (extension); identical output to
// KCore with asymptotically less peel-set-selection work.
func KCoreJulienne(g View, opts Options) *KCoreResult {
	return algo.KCoreJulienne(g, opts)
}

// MIS computes a maximal independent set with priority-based parallel
// greedy selection (extension).
func MIS(g View, seed uint64, opts Options) *MISResult {
	return algo.MIS(g, seed, opts)
}

// TriangleCount counts triangles of a symmetric simple graph (extension).
func TriangleCount(g View) int64 { return algo.TriangleCount(g) }

// DeltaStepping computes single-source shortest paths with non-negative
// weights using bucketed delta-stepping on top of edgeMap (extension
// after Julienne; delta <= 0 picks a heuristic bucket width).
func DeltaStepping(g View, source uint32, delta int64, opts Options) (*DeltaSteppingResult, error) {
	return algo.DeltaStepping(g, source, delta, opts)
}

// BCApprox estimates whole-graph betweenness centrality by sampling k BC
// sources and scaling (extension).
func BCApprox(g View, k int, seed uint64, opts Options) *BCApproxResult {
	return algo.BCApprox(g, k, seed, opts)
}

// LocalClusteringCoefficients returns each vertex's triangle-closure
// fraction on a symmetric simple graph (extension).
func LocalClusteringCoefficients(g View) []float64 {
	return algo.LocalClusteringCoefficients(g)
}

// MaximalMatching computes a maximal matching of a symmetric simple graph
// by parallel greedy local-maxima selection (extension).
func MaximalMatching(g View, seed uint64) *MatchingResult {
	return algo.MaximalMatching(g, seed)
}

// Coloring computes a proper vertex coloring with deterministic parallel
// greedy coloring (extension); uses at most maxdegree+1 colors.
func Coloring(g View, seed uint64, opts Options) *ColoringResult {
	return algo.Coloring(g, seed, opts)
}

// SCC computes strongly connected components of a directed graph with
// parallel forward-backward decomposition (extension).
func SCC(g View, opts Options) *SCCResult {
	return algo.SCC(g, opts)
}

// LDD computes a low-diameter decomposition with exponential start-time
// shifts (Miller-Peng-Xu style; extension). Larger beta yields more,
// smaller clusters.
func LDD(g View, beta float64, seed uint64, opts Options) *LDDResult {
	return algo.LDD(g, beta, seed, opts)
}

// ConnectedComponentsLDD computes connected components by repeated
// LDD-based contraction — the expected linear-work connectivity algorithm
// of Shun, Dhulipala and Blelloch (extension).
func ConnectedComponentsLDD(g View, beta float64, seed uint64, opts Options) *CCResult {
	return algo.ConnectedComponentsLDD(g, beta, seed, opts)
}

// TwoPassEccentricity estimates per-vertex eccentricities with two rounds
// of shared-bit-vector multi-BFS: a random sample, then the periphery the
// first pass discovered (extension).
func TwoPassEccentricity(g View, k int, seed uint64, opts Options) *EccentricityResult {
	return algo.TwoPassEccentricity(g, k, seed, opts)
}

// SpanningForest computes a spanning forest of a symmetric graph via BFS
// waves, gathering tree edges through the data-carrying EdgeMapData
// interface (extension).
func SpanningForest(g View, opts Options) *ForestResult {
	return algo.SpanningForest(g, opts)
}

// RadiiMulti extends Radii beyond 64 sources by batching 64-way
// shared-bit-vector multi-BFS runs (extension).
func RadiiMulti(g View, k int, seed uint64, opts Options) *RadiiResult {
	return algo.RadiiMulti(g, k, seed, opts)
}

// APPR computes an approximate personalized PageRank vector from a seed
// with the local push algorithm (extension after Shun et al., VLDB 2016).
func APPR(g View, seed uint32, alpha, eps float64) (*APPRResult, error) {
	return algo.APPR(g, seed, alpha, eps)
}

// SweepCut scans a PPR vector for the best-conductance prefix cluster.
func SweepCut(g View, p map[uint32]float64) *SweepCutResult {
	return algo.SweepCut(g, p)
}

// LocalCluster finds a low-conductance cluster around the seed via APPR
// plus a sweep cut (extension).
func LocalCluster(g View, seed uint32, alpha, eps float64) (*SweepCutResult, error) {
	return algo.LocalCluster(g, seed, alpha, eps)
}

// SetParallelism overrides the number of worker goroutines used by all
// parallel primitives (p <= 0 restores the GOMAXPROCS default). It returns
// the previous override.
//
// Deprecated: the override is process-wide, so in any program running
// computations concurrently (a server, a benchmark sweep) one caller's
// setting leaks into every other. Cap parallelism per computation instead:
// pass the *Ctx entry points a context from WithParallelism, or set
// Options.Procs — both become per-call worker leases that compose as
// min(cap, Parallelism()). SetParallelism remains only for single-tenant
// programs that genuinely want a process-wide default.
func SetParallelism(p int) int { return parallel.SetProcs(p) }

// Parallelism reports the current worker count.
func Parallelism() int { return parallel.Procs() }

// DensestResult is the output of DensestSubgraph.
type DensestResult = algo.DensestResult

// DensestSubgraph computes a 2-approximate densest subgraph by Charikar
// peeling over the bucket structure (extension).
func DensestSubgraph(g View, opts Options) *DensestResult {
	return algo.DensestSubgraph(g, opts)
}
