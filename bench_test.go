// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// targets (one group per table/figure; see DESIGN.md §3 for the mapping):
//
//	BenchmarkTable2/...            running times of the six applications
//	BenchmarkTable2Baseline/...    hand-written sequential baselines
//	BenchmarkFigScalability/...    time vs worker count (rMat)
//	BenchmarkFigThreshold/...      edgeMap switch-threshold sweep (BFS)
//	BenchmarkFigFrontier           full BFS with tracing enabled
//	BenchmarkFigDenseForward/...   dense (pull) vs dense-forward (push)
//	BenchmarkAblationCompress/...  CSR vs Ligra+ byte-compressed graphs
//	BenchmarkEdgeMap/...           single-operator microbenchmarks
//
// Scale is controlled by LIGRA_BENCH_SCALE (default 13, ~8k vertices) so
// `go test -bench=.` stays fast on small machines while the same harness
// scales up on larger ones.
package ligra_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"ligra"
	"ligra/internal/bench"
	"ligra/internal/core"
	"ligra/internal/graph"
)

func benchScale() int {
	if s := os.Getenv("LIGRA_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 8 {
			return v
		}
	}
	return 13
}

var (
	suiteOnce sync.Once
	suiteIn   []bench.Input
	suiteG    map[string]*graph.Graph
	suiteW    map[string]*graph.Graph
)

func suite(b *testing.B) ([]bench.Input, map[string]*graph.Graph, map[string]*graph.Graph) {
	suiteOnce.Do(func() {
		suiteIn = bench.DefaultSuite(benchScale())
		suiteG = make(map[string]*graph.Graph)
		suiteW = make(map[string]*graph.Graph)
		for _, in := range suiteIn {
			g, err := in.Build()
			if err != nil {
				panic(err)
			}
			suiteG[in.Name] = g
			suiteW[in.Name] = bench.WeightGraph(g)
		}
	})
	return suiteIn, suiteG, suiteW
}

// BenchmarkTable2 regenerates Table 2's Ligra columns: every application
// on every input graph at full parallelism.
func BenchmarkTable2(b *testing.B) {
	ins, gs, ws := suite(b)
	for _, in := range ins {
		for _, app := range bench.Apps() {
			g := graph.View(gs[in.Name])
			if app.NeedsWeights {
				g = ws[in.Name]
			}
			b.Run(in.Name+"/"+app.Name, func(b *testing.B) {
				b.ReportMetric(float64(g.NumEdges()), "edges")
				for i := 0; i < b.N; i++ {
					app.Run(g, core.Options{})
				}
			})
		}
	}
}

// BenchmarkTable2Baseline regenerates Table 2's serial columns.
func BenchmarkTable2Baseline(b *testing.B) {
	ins, gs, ws := suite(b)
	for _, in := range ins {
		for _, app := range bench.Apps() {
			g := graph.View(gs[in.Name])
			if app.NeedsWeights {
				g = ws[in.Name]
			}
			b.Run(in.Name+"/"+app.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					app.RunSeq(g)
				}
			})
		}
	}
}

// BenchmarkFigScalability regenerates the per-application scalability
// curves: rMat input, worker counts 1..2*GOMAXPROCS.
func BenchmarkFigScalability(b *testing.B) {
	_, gs, ws := suite(b)
	maxP := 2 * ligra.Parallelism()
	for _, app := range bench.Apps() {
		g := graph.View(gs["rMat"])
		if app.NeedsWeights {
			g = ws["rMat"]
		}
		for p := 1; p <= maxP; p *= 2 {
			b.Run(app.Name+"/procs="+strconv.Itoa(p), func(b *testing.B) {
				prev := ligra.SetParallelism(p)
				defer ligra.SetParallelism(prev)
				for i := 0; i < b.N; i++ {
					app.Run(g, core.Options{})
				}
			})
		}
	}
}

// BenchmarkFigThreshold regenerates the threshold-sensitivity figure: BFS
// on rMat across switch thresholds, plus the sparse-only and dense-only
// extremes.
func BenchmarkFigThreshold(b *testing.B) {
	_, gs, _ := suite(b)
	g := gs["rMat"]
	src := uint32(0)
	run := func(b *testing.B, opts ligra.Options) {
		for i := 0; i < b.N; i++ {
			ligra.BFS(g, src, opts)
		}
	}
	b.Run("sparse-only", func(b *testing.B) { run(b, ligra.Options{Mode: ligra.ForceSparse}) })
	for _, denom := range []int64{1, 5, 20, 80, 320} {
		b.Run("m_div_"+strconv.FormatInt(denom, 10), func(b *testing.B) {
			run(b, ligra.Options{Threshold: g.NumEdges() / denom})
		})
	}
	b.Run("dense-only", func(b *testing.B) { run(b, ligra.Options{Mode: ligra.ForceDense}) })
}

// BenchmarkFigFrontier runs BFS with tracing on, measuring the trace
// overhead alongside the frontier experiment's code path.
func BenchmarkFigFrontier(b *testing.B) {
	_, gs, _ := suite(b)
	g := gs["rMat"]
	for i := 0; i < b.N; i++ {
		tr := &ligra.Trace{}
		ligra.BFS(g, 0, ligra.Options{Trace: tr})
		if len(tr.Entries) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFigDenseForward compares the two dense traversals on
// whole-graph-frontier workloads.
func BenchmarkFigDenseForward(b *testing.B) {
	_, gs, _ := suite(b)
	g := gs["rMat"]
	for _, tc := range []struct {
		name string
		opts ligra.Options
	}{
		{"dense-pull", ligra.Options{Mode: ligra.ForceDense}},
		{"dense-forward", ligra.Options{Mode: ligra.ForceDense, DenseForward: true}},
	} {
		b.Run("PageRank/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ligra.PageRank(g, ligra.PageRankOptions{
					Damping: 0.85, MaxIterations: 1, EdgeMap: tc.opts,
				})
			}
		})
		b.Run("Components/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ligra.ConnectedComponents(g, tc.opts)
			}
		})
	}
}

// BenchmarkAblationCompress compares CSR and byte-compressed traversal.
func BenchmarkAblationCompress(b *testing.B) {
	_, gs, _ := suite(b)
	g := gs["rMat"]
	c, err := ligra.Compress(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		view ligra.View
	}{{"csr", g}, {"compressed", c}} {
		b.Run("BFS/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ligra.BFS(tc.view, 0, ligra.Options{})
			}
		})
		b.Run("PageRank/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ligra.PageRank(tc.view, ligra.PageRankOptions{Damping: 0.85, MaxIterations: 1})
			}
		})
	}
}

// BenchmarkEdgeMap microbenchmarks one edgeMap invocation in each mode on
// a mid-size frontier.
func BenchmarkEdgeMap(b *testing.B) {
	_, gs, _ := suite(b)
	g := gs["rMat"]
	n := g.NumVertices()
	// Build a frontier of ~1/8 of the vertices.
	frontier := ligra.NewFromFunc(n, func(v uint32) bool { return v%8 == 0 })
	frontier.ToSparse()
	frontier.ToDense()
	visited := make([]uint32, n)
	funcs := ligra.EdgeFuncs{
		Update:       func(_, d uint32, _ int32) bool { visited[d] = 1; return false },
		UpdateAtomic: func(_, d uint32, _ int32) bool { visited[d] = 1; return false },
	}
	for _, tc := range []struct {
		name string
		opts ligra.Options
	}{
		{"sparse", ligra.Options{Mode: ligra.ForceSparse, NoOutput: true}},
		{"dense", ligra.Options{Mode: ligra.ForceDense, NoOutput: true}},
		{"dense-forward", ligra.Options{Mode: ligra.ForceDense, DenseForward: true, NoOutput: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ligra.EdgeMap(g, frontier, funcs, tc.opts)
			}
		})
	}
}

// BenchmarkVertexSubset microbenchmarks the representation conversions.
func BenchmarkVertexSubset(b *testing.B) {
	n := 1 << benchScale()
	b.Run("sparse-to-dense", func(b *testing.B) {
		ids := make([]uint32, n/8)
		for i := range ids {
			ids[i] = uint32(i * 8)
		}
		for i := 0; i < b.N; i++ {
			vs := ligra.NewSparse(n, ids)
			vs.ToDense()
		}
	})
	b.Run("dense-to-sparse", func(b *testing.B) {
		proto := ligra.NewFromFunc(n, func(v uint32) bool { return v%8 == 0 })
		for i := 0; i < b.N; i++ {
			vs := proto.Clone()
			vs.ToSparse()
		}
	})
}

// BenchmarkExtensions covers the extension algorithms (ablations and
// follow-on work) on the rMat input.
func BenchmarkExtensions(b *testing.B) {
	_, gs, ws := suite(b)
	g := gs["rMat"]
	wg := ws["rMat"]
	b.Run("KCore-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.KCore(g, ligra.Options{})
		}
	})
	b.Run("KCore-julienne", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.KCoreJulienne(g, ligra.Options{})
		}
	})
	b.Run("DeltaStepping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ligra.DeltaStepping(wg, 0, 0, ligra.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.MIS(g, 1, ligra.Options{})
		}
	})
	b.Run("MaximalMatching", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.MaximalMatching(g, 1)
		}
	})
	b.Run("Coloring", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.Coloring(g, 1, ligra.Options{})
		}
	})
	b.Run("TriangleCount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.TriangleCount(g)
		}
	})
	b.Run("SCC-directed", func(b *testing.B) {
		dg, err := ligra.RMATDirected(benchScale()-1, 8, ligra.PBBSRMAT, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ligra.SCC(dg, ligra.Options{})
		}
	})
	b.Run("LDD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.LDD(g, 0.2, 1, ligra.Options{})
		}
	})
	b.Run("CC-LDD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.ConnectedComponentsLDD(g, 0.2, 1, ligra.Options{})
		}
	})
	b.Run("SpanningForest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.SpanningForest(g, ligra.Options{})
		}
	})
	b.Run("LocalCluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ligra.LocalCluster(g, 0, 0.15, 1e-6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TwoPassEccentricity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.TwoPassEccentricity(g, 16, 1, ligra.Options{})
		}
	})
}
