// ligra-bench regenerates the tables and figures of the Ligra paper's
// evaluation at container scale. Each -experiment ID corresponds to a row
// of DESIGN.md's per-experiment index:
//
//	table1        input graphs (paper Table 1)
//	table2        running times: serial vs Ligra 1-worker vs P-worker (Table 2)
//	scalability   time vs worker count per application (speedup figures)
//	frontier      per-round BFS frontier size and sparse/dense decision
//	threshold     edgeMap switch-threshold sensitivity sweep
//	denseforward  read-based vs write-based dense traversal
//	compress      Ligra+ byte-compression space/time ablation
//	all           everything above, in order
//
// Usage:
//
//	ligra-bench -experiment all -scale 15 -rounds 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"ligra/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ligra-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ligra-bench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		experiment = fs.String("experiment", "all", "experiment ID or 'all': "+strings.Join(bench.ExperimentOrder(), " | "))
		scale      = fs.Int("scale", 14, "synthetic graph scale (~2^scale vertices)")
		rounds     = fs.Int("rounds", 3, "timed repetitions per measurement (median reported)")
		maxProcs   = fs.Int("maxprocs", 0, "largest worker count in the scalability sweep (0 = 2*GOMAXPROCS)")
		budget     = fs.Duration("budget", 0, "wall-clock budget for the whole run (0 = none); experiments stop between measurements when it expires and report partial tables")
		jsonPath   = fs.String("json", "", "also write machine-readable results (per-experiment times, graph sizes, GOMAXPROCS) to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Config{
		Scale:    *scale,
		Rounds:   *rounds,
		MaxProcs: *maxProcs,
		Out:      stdout,
	}
	if *budget > 0 {
		cfg.Deadline = time.Now().Add(*budget)
	}

	ids := bench.ExperimentOrder()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	exps := bench.Experiments()
	var timings []bench.JSONExperiment
	for i, id := range ids {
		runExp, ok := exps[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)",
				id, strings.Join(bench.ExperimentOrder(), ", "))
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if cfg.Expired() {
			fmt.Fprintf(stdout, "[budget exhausted: skipping %s and later experiments]\n", id)
			break
		}
		fmt.Fprintf(stdout, "=== %s ===\n", id)
		start := time.Now()
		if err := runExp(cfg); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		dur := time.Since(start)
		timings = append(timings, bench.JSONExperiment{ID: id, Seconds: dur.Seconds()})
		fmt.Fprintf(stdout, "[%s completed in %v]\n", id, dur.Round(time.Millisecond))
	}
	if *jsonPath != "" {
		graphs, err := bench.SuiteInfo(*scale)
		if err != nil {
			return fmt.Errorf("json report: %w", err)
		}
		report := bench.JSONReport{
			Timestamp:   time.Now().Format(time.RFC3339),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Scale:       *scale,
			Rounds:      *rounds,
			Graphs:      graphs,
			Experiments: timings,
		}
		if err := report.WriteFile(*jsonPath); err != nil {
			return fmt.Errorf("json report: %w", err)
		}
		fmt.Fprintf(stdout, "\n[json results written to %s]\n", *jsonPath)
	}
	return nil
}
