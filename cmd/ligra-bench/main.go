// ligra-bench regenerates the tables and figures of the Ligra paper's
// evaluation at container scale. Each -experiment ID corresponds to a row
// of DESIGN.md's per-experiment index:
//
//	table1        input graphs (paper Table 1)
//	table2        running times: serial vs Ligra 1-worker vs P-worker (Table 2)
//	scalability   time vs worker count per application (speedup figures)
//	frontier      per-round BFS frontier size and sparse/dense decision
//	threshold     edgeMap switch-threshold sensitivity sweep
//	denseforward  read-based vs write-based dense traversal
//	compress      Ligra+ byte-compression space/time ablation
//	dedup         sparse-frontier duplicate-removal strategies
//	bucketing     Julienne bucketing ablation
//	hotpath       edgeMap hot-path timings (the BENCH_baseline.json suite)
//	servecache    query-engine result cache off vs on
//	scheduler     worker-pool scheduler: small-round workloads with the
//	              sequential cutoff on vs off
//	spmv          execution-backend race: edgeMap vs semiring kernels
//	all           everything above, in order
//
// -json writes a machine-readable report; -against FILE compares the
// current run's measurements to a previously written report and warns
// when any is more than -drift-tolerance slower (default 10%, see
// docs/PERFORMANCE.md). -against-strict turns those warnings into a
// non-zero exit, for CI smoke gates with a suitably generous tolerance:
//
//	ligra-bench -experiment hotpath -scale 16 -json BENCH_baseline.json
//	ligra-bench -experiment hotpath -scale 16 -against BENCH_baseline.json
//	ligra-bench -experiment hotpath -against BENCH_baseline.json -against-strict -drift-tolerance 3.0
//
// Usage:
//
//	ligra-bench -experiment all -scale 15 -rounds 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ligra/internal/bench"
	"ligra/internal/core"
	"ligra/internal/parallel"
)

// defaultDriftTolerance is the -against warning threshold: measurements
// more than 10% slower than their baseline are flagged. Override with
// -drift-tolerance.
const defaultDriftTolerance = 0.10

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ligra-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ligra-bench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		experiment = fs.String("experiment", "all", "experiment ID or 'all': "+strings.Join(bench.ExperimentOrder(), " | "))
		scale      = fs.Int("scale", 14, "synthetic graph scale (~2^scale vertices)")
		rounds     = fs.Int("rounds", 3, "timed repetitions per measurement (median reported)")
		maxProcs   = fs.Int("maxprocs", 0, "largest worker count in the scalability sweep (0 = GOMAXPROCS; per-call leases clamp at GOMAXPROCS)")
		budget     = fs.Duration("budget", 0, "wall-clock budget for the whole run (0 = none); experiments stop between measurements when it expires and report partial tables")
		jsonPath   = fs.String("json", "", "also write machine-readable results (per-measurement times, traversal counters, graph sizes, GOMAXPROCS) to this path")
		against    = fs.String("against", "", "baseline JSON report to compare this run to; warns when a measurement drifts past -drift-tolerance")
		strict     = fs.Bool("against-strict", false, "exit non-zero when any -against measurement regressed past -drift-tolerance (CI gate; pair with a generous tolerance on shared runners)")
		tolerance  = fs.Float64("drift-tolerance", defaultDriftTolerance, "fractional slowdown vs -against baseline that counts as a regression (0.10 = 10% slower)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var measurements []bench.JSONMeasurement
	cfg := bench.Config{
		Scale:    *scale,
		Rounds:   *rounds,
		MaxProcs: *maxProcs,
		Out:      stdout,
		Record: func(id string, seconds float64) {
			measurements = append(measurements, bench.JSONMeasurement{ID: id, Seconds: seconds})
		},
	}
	if *budget > 0 {
		cfg.Deadline = time.Now().Add(*budget)
	}

	ids := bench.ExperimentOrder()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	exps := bench.Experiments()
	statsBefore := core.SnapshotStats()
	schedBefore := parallel.SchedulerSnapshot()
	var timings []bench.JSONExperiment
	for i, id := range ids {
		runExp, ok := exps[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)",
				id, strings.Join(bench.ExperimentOrder(), ", "))
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if cfg.Expired() {
			fmt.Fprintf(stdout, "[budget exhausted: skipping %s and later experiments]\n", id)
			break
		}
		fmt.Fprintf(stdout, "=== %s ===\n", id)
		start := time.Now()
		if err := runExp(cfg); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		dur := time.Since(start)
		timings = append(timings, bench.JSONExperiment{ID: id, Seconds: dur.Seconds()})
		fmt.Fprintf(stdout, "[%s completed in %v]\n", id, dur.Round(time.Millisecond))
	}
	traversal := core.SnapshotStats().Sub(statsBefore)
	scheduler := parallel.SchedulerSnapshot().Sub(schedBefore)
	report := &bench.JSONReport{
		Timestamp:    time.Now().Format(time.RFC3339),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Scale:        *scale,
		Rounds:       *rounds,
		Experiments:  timings,
		Measurements: measurements,
		Traversal:    &traversal,
		Scheduler:    &scheduler,
	}
	if *jsonPath != "" {
		graphs, err := bench.SuiteInfo(*scale)
		if err != nil {
			return fmt.Errorf("json report: %w", err)
		}
		report.Graphs = graphs
		if err := report.WriteFile(*jsonPath); err != nil {
			return fmt.Errorf("json report: %w", err)
		}
		fmt.Fprintf(stdout, "\n[json results written to %s]\n", *jsonPath)
	}
	if *against != "" {
		warned, err := compare(stdout, *against, report, *tolerance)
		if err != nil {
			return err
		}
		if *strict && warned > 0 {
			return fmt.Errorf("%d measurement(s) regressed more than %.0f%% against %s",
				warned, *tolerance*100, *against)
		}
	}
	return nil
}

// compare prints the baseline comparison table and per-measurement
// regression warnings, returning how many measurements regressed past
// tolerance. By default regressions warn rather than fail — the
// comparison is a review aid, and CI environments are too noisy for a
// tight hard gate — but -against-strict promotes a non-zero count to a
// non-zero exit.
func compare(stdout io.Writer, baselinePath string, current *bench.JSONReport, tolerance float64) (int, error) {
	baseline, err := bench.ReadReport(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	deltas := bench.Compare(baseline, current)
	if len(deltas) == 0 {
		fmt.Fprintf(stdout, "\n[no timings in common with baseline %s — run the same -experiment set]\n", baselinePath)
		return 0, nil
	}
	fmt.Fprintf(stdout, "\ncomparison against %s (scale %d, %d-way):\n",
		baselinePath, baseline.Scale, baseline.GoMaxProcs)
	warned := 0
	for _, d := range deltas {
		verdict := fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100)
		if d.Regression(tolerance) {
			verdict += fmt.Sprintf("  WARNING: regression >%.0f%%", tolerance*100)
			warned++
		}
		fmt.Fprintf(stdout, "  %-28s %.4fs -> %.4fs  (%s)\n", d.ID, d.Base, d.Current, verdict)
	}
	if warned > 0 {
		fmt.Fprintf(stdout, "[%d measurement(s) regressed more than %.0f%% against baseline]\n", warned, tolerance*100)
	} else {
		fmt.Fprintf(stdout, "[no regressions beyond %.0f%% tolerance]\n", tolerance*100)
	}
	return warned, nil
}
