package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ligra/internal/bench"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "table1", "-scale", "9", "-rounds", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== table1 ===") || !strings.Contains(out, "rMat") {
		t.Errorf("unexpected output: %q", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Error("missing completion banner")
	}
}

func TestRunCommaSeparatedList(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "frontier,threshold", "-scale", "9", "-rounds", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== frontier ===") || !strings.Contains(out, "=== threshold ===") {
		t.Errorf("experiments missing from output")
	}
	if strings.Index(out, "frontier") > strings.Index(out, "threshold") {
		t.Error("experiments out of order")
	}
}

func TestRunWritesJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{"-experiment", "table1", "-scale", "9", "-rounds", "1", "-json", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report bench.JSONReport
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.GoMaxProcs < 1 || report.Scale != 9 || report.Rounds != 1 {
		t.Errorf("bad config echo: %+v", report)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "table1" || report.Experiments[0].Seconds <= 0 {
		t.Errorf("bad experiment timings: %+v", report.Experiments)
	}
	if len(report.Graphs) == 0 {
		t.Fatal("no graph sizes recorded")
	}
	for _, g := range report.Graphs {
		if g.Vertices <= 0 || g.Edges <= 0 || g.MemoryBytes <= 0 {
			t.Errorf("graph %s has empty sizes: %+v", g.Name, g)
		}
	}
	if !strings.Contains(buf.String(), "json results written") {
		t.Error("missing json banner")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	var buf bytes.Buffer
	err := run([]string{"-experiment", "all", "-scale", "9", "-rounds", "1", "-maxprocs", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table2", "scalability", "frontier", "threshold", "denseforward", "compress"} {
		if !strings.Contains(buf.String(), "=== "+id+" ===") {
			t.Errorf("missing experiment %s", id)
		}
	}
}

// TestAgainstStrict exercises the CI gate: a baseline doctored to be
// impossibly fast makes every measurement a regression, which warns by
// default but exits non-zero under -against-strict; a generous
// -drift-tolerance swallows it again.
func TestAgainstStrict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "hotpath", "-scale", "9", "-rounds", "1", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	baseline, err := bench.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseline.Measurements {
		baseline.Measurements[i].Seconds /= 1000
	}
	if err := baseline.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Default: regressions warn, exit stays zero.
	buf.Reset()
	if err := run([]string{"-experiment", "hotpath", "-scale", "9", "-rounds", "1", "-against", path}, &buf); err != nil {
		t.Fatalf("non-strict comparison failed: %v", err)
	}
	if !strings.Contains(buf.String(), "WARNING: regression") {
		t.Errorf("doctored baseline produced no regression warning: %q", buf.String())
	}

	// Strict: the same regressions become an error.
	buf.Reset()
	err = run([]string{"-experiment", "hotpath", "-scale", "9", "-rounds", "1", "-against", path, "-against-strict"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("strict mode err = %v, want regression failure", err)
	}

	// Strict with an absurd tolerance passes.
	buf.Reset()
	if err := run([]string{"-experiment", "hotpath", "-scale", "9", "-rounds", "1",
		"-against", path, "-against-strict", "-drift-tolerance", "1e9"}, &buf); err != nil {
		t.Fatalf("strict with huge tolerance failed: %v", err)
	}
}
