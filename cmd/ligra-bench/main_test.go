package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "table1", "-scale", "9", "-rounds", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== table1 ===") || !strings.Contains(out, "rMat") {
		t.Errorf("unexpected output: %q", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Error("missing completion banner")
	}
}

func TestRunCommaSeparatedList(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "frontier,threshold", "-scale", "9", "-rounds", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== frontier ===") || !strings.Contains(out, "=== threshold ===") {
		t.Errorf("experiments missing from output")
	}
	if strings.Index(out, "frontier") > strings.Index(out, "threshold") {
		t.Error("experiments out of order")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	var buf bytes.Buffer
	err := run([]string{"-experiment", "all", "-scale", "9", "-rounds", "1", "-maxprocs", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table2", "scalability", "frontier", "threshold", "denseforward", "compress"} {
		if !strings.Contains(buf.String(), "=== "+id+" ===") {
			t.Errorf("missing experiment %s", id)
		}
	}
}
