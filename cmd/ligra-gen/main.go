// ligra-gen generates synthetic graphs in Ligra's AdjacencyGraph text
// format, this repository's binary (LIGRAGO1) format, or the compressed
// (LIGRAGC1) format — see docs/FORMATS.md.
//
// Usage:
//
//	ligra-gen -family rmat -scale 16 -edgefactor 16 -seed 42 -o rmat16.adj
//	ligra-gen -family grid3d -side 64 -binary -o grid.bin
//	ligra-gen -family randlocal -n 100000 -degree 10 -window 4096 -o rl.adj
//	ligra-gen -family er -n 10000 -m 50000 -o er.adj
//	ligra-gen -family rmat -scale 16 -format compressed -o rmat16.gc
//
// Add -weights W to attach deterministic hash weights in [1, W].
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ligra"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ligra-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ligra-gen", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		family     = fs.String("family", "rmat", "graph family: rmat | rmat-directed | grid3d | randlocal | er | ws | twitter-sim")
		scale      = fs.Int("scale", 16, "rmat: log2 of the vertex count")
		edgeFactor = fs.Int("edgefactor", 16, "rmat: edges per vertex before dedup")
		side       = fs.Int("side", 32, "grid3d: vertices per dimension (n = side^3)")
		n          = fs.Int("n", 1<<16, "randlocal/er: number of vertices")
		m          = fs.Int("m", 1<<19, "er: number of undirected edges")
		degree     = fs.Int("degree", 10, "randlocal: edges per vertex")
		window     = fs.Int("window", 0, "randlocal: locality window (0 = whole range)")
		seed       = fs.Uint64("seed", 42, "generator seed")
		weights    = fs.Int("weights", 0, "attach hash weights in [1, W] (0 = unweighted)")
		binary     = fs.Bool("binary", false, "write the binary format instead of text")
		format     = fs.String("format", "", "output format: adj (default) | bin | el (SNAP edge list) | compressed (LIGRAGC1 byte codes, mmap-able)")
		kWS        = fs.Int("k", 4, "ws: lattice neighbors per side")
		pWS        = fs.Float64("p", 0.1, "ws: rewiring probability")
		out        = fs.String("o", "", "output path (required)")
		stats      = fs.Bool("stats", true, "print graph statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o output path is required")
	}

	g, err := generate(*family, *scale, *edgeFactor, *side, *n, *m, *degree, *window, *kWS, *pWS, *seed)
	if err != nil {
		return err
	}
	if *weights > 0 {
		g = g.AddWeights(ligra.HashWeight(int32(*weights)))
	}
	switch {
	case *format == "el":
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := ligra.WriteEdgeList(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	case *format == "compressed":
		c, err := ligra.Compress(g)
		if err != nil {
			return err
		}
		if err := ligra.SaveCompressed(*out, c); err != nil {
			return err
		}
		csr := g.MemoryFootprint()
		fmt.Fprintf(stdout, "compressed %d bytes CSR to %d bytes (%.2fx)\n",
			csr, c.SizeBytes(), float64(csr)/float64(c.SizeBytes()))
	case *format == "bin" || *binary:
		if err := ligra.SaveGraph(*out, g, true); err != nil {
			return err
		}
	case *format == "" || *format == "adj":
		if err := ligra.SaveGraph(*out, g, false); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *stats {
		fmt.Fprintln(stdout, ligra.ComputeStats(g))
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}

func generate(family string, scale, edgeFactor, side, n, m, degree, window, kWS int, pWS float64, seed uint64) (*ligra.Graph, error) {
	switch family {
	case "rmat":
		return ligra.RMAT(scale, edgeFactor, ligra.PBBSRMAT, seed)
	case "rmat-directed":
		return ligra.RMATDirected(scale, edgeFactor, ligra.PBBSRMAT, seed)
	case "twitter-sim":
		return ligra.RMAT(scale, edgeFactor, ligra.Graph500RMAT, seed)
	case "grid3d":
		return ligra.Grid3D(side)
	case "randlocal":
		return ligra.RandomLocal(n, degree, window, seed)
	case "er":
		return ligra.ErdosRenyi(n, m, seed)
	case "ws":
		return ligra.WattsStrogatz(n, kWS, pWS, seed)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
