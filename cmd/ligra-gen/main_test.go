package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ligra"
)

func TestGenerateFamilies(t *testing.T) {
	cases := []struct {
		family string
		check  func(*ligra.Graph) error
	}{
		{"rmat", nil},
		{"rmat-directed", nil},
		{"twitter-sim", nil},
		{"grid3d", nil},
		{"randlocal", nil},
		{"er", nil},
	}
	for _, tc := range cases {
		g, err := generate(tc.family, 8, 4, 6, 500, 1000, 4, 0, 4, 0.1, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if g.NumVertices() == 0 {
			t.Errorf("%s: empty graph", tc.family)
		}
		if err := ligra.ValidateGraph(g); err != nil {
			t.Errorf("%s: %v", tc.family, err)
		}
	}
	if _, err := generate("nope", 8, 4, 6, 500, 1000, 4, 0, 4, 0.1, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.adj")
	var buf bytes.Buffer
	err := run([]string{"-family", "rmat", "-scale", "8", "-edgefactor", "4", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote "+out) {
		t.Errorf("output missing confirmation: %q", buf.String())
	}
	g, err := ligra.LoadGraph(out, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Errorf("n = %d, want 256", g.NumVertices())
	}
}

func TestRunBinaryAndWeights(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.bin")
	var buf bytes.Buffer
	err := run([]string{"-family", "grid3d", "-side", "4", "-binary", "-weights", "9", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ligra.LoadGraph(out, false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Error("weights flag ignored")
	}
	if !g.Symmetric() {
		t.Error("symmetric flag lost in binary format")
	}
}

func TestRunRequiresOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-family", "rmat"}, &buf); err == nil {
		t.Error("missing -o accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunEdgeListFormat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.el")
	var buf bytes.Buffer
	err := run([]string{"-family", "ws", "-n", "100", "-k", "3", "-p", "0.2", "-format", "el", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ligra.ReadEdgeList(bytes.NewReader(data), ligra.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 {
		t.Errorf("n = %d, want 100", g.NumVertices())
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-family", "rmat", "-scale", "8", "-format", "xml", "-o", "/tmp/x"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
}
