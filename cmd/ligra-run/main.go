// ligra-run executes one of the framework's algorithms on a graph loaded
// from a file or generated on the fly, reporting the result summary and
// wall time — the equivalent of running one of Ligra's application
// binaries.
//
// Usage:
//
//	ligra-run -algo bfs -graph rmat16.adj -s -source 0
//	ligra-run -algo pagerank -gen rmat -scale 16
//	ligra-run -algo bellman-ford -gen grid3d -scale 15 -weights 31
//	ligra-run -algo components -graph web.bin -mode sparse -rounds 5
//	ligra-run -algo bfs -gen rmat -scale 16 -stats
//
// -trace prints the per-round frontier/mode table; -stats additionally
// prints the aggregate traversal counters (see docs/PERFORMANCE.md §5).
//
// Exit status: 0 on success, 1 on load/usage error, 2 when -timeout
// expired and a partial result was reported; the final output line states
// which.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ligra"
	"ligra/internal/algo"
)

func main() {
	os.Exit(exitStatus(run(os.Args[1:], os.Stdout), os.Stderr))
}

// exitStatus maps run's error to the documented exit codes, reporting the
// failure on w: 0 success, 2 timeout (deadline or cancellation after a
// partial result), 1 anything else.
func exitStatus(err error, w io.Writer) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		fmt.Fprintln(w, "ligra-run: timeout:", err)
		return 2
	default:
		fmt.Fprintln(w, "ligra-run:", err)
		return 1
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ligra-run", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		algoName  = fs.String("algo", "bfs", "algorithm: "+strings.Join(algo.RunnerNames(), " | "))
		graphPath = fs.String("graph", "", "input graph file (AdjacencyGraph text, LIGRAGO1 binary, or LIGRAGC1 compressed; detected by content)")
		symmetric = fs.Bool("s", false, "treat a text-format input file as symmetric (Ligra's -s)")
		genFamily = fs.String("gen", "", "generate instead of load: rmat | grid3d | randlocal | twitter-sim")
		scale     = fs.Int("scale", 16, "generator scale (~2^scale vertices)")
		seed      = fs.Uint64("seed", 42, "generator seed")
		source    = fs.Int("source", -1, "source vertex (-1 = highest degree)")
		weights   = fs.Int("weights", 0, "attach hash weights in [1, W] (0 = keep input weights)")
		mode      = fs.String("mode", "auto", "edgeMap mode: auto | sparse | dense | dense-forward")
		backend   = fs.String("backend", "edgemap", "execution backend for bfs/pagerank/triangles: edgemap | spmv | auto (auto picks per graph shape)")
		threshold = fs.Int64("threshold", 0, "edgeMap dense-switch threshold (0 = |E|/20)")
		rounds    = fs.Int("rounds", 1, "timed repetitions (fastest reported)")
		trace     = fs.Bool("trace", false, "print the per-round edgeMap trace")
		stats     = fs.Bool("stats", false, "print per-round dense/sparse decisions and the aggregate traversal counters")
		compressG = fs.Bool("compress", false, "compress a CSR input in memory and run on the Ligra+ byte-compressed representation")
		mmapG     = fs.Bool("mmap", false, "memory-map a compressed (LIGRAGC1) -graph input instead of heap-loading it")
		procs     = fs.Int("procs", 0, "cap the computation's worker goroutines via a per-call lease (0 = no cap; caps at GOMAXPROCS, never raises)")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the computation (0 = none); on expiry the algorithm stops cooperatively, its partial result is reported, and the exit status is 2")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runner, ok := algo.FindRunner(*algoName)
	if !ok {
		return algo.UnknownAlgoError(*algoName)
	}

	view, err := loadOrGenerate(*graphPath, *symmetric, *mmapG, *genFamily, *scale, *seed)
	if err != nil {
		return err
	}
	if g, ok := view.(*ligra.Graph); ok {
		if *weights > 0 {
			g = g.AddWeights(ligra.HashWeight(int32(*weights)))
			view = g
		}
		fmt.Fprintln(stdout, ligra.ComputeStats(g))
		if *compressG {
			c, err := ligra.Compress(g)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "compressed representation: %d bytes\n", c.SizeBytes())
			view = c
		}
	} else if c, ok := view.(*ligra.CompressedGraph); ok {
		// A compressed input cannot be re-weighted in place; weights must
		// be attached before compressing (ligra-gen -weights ... -format
		// compressed).
		if *weights > 0 {
			return errors.New("-weights requires a CSR input; regenerate the compressed file with weights instead")
		}
		fmt.Fprintf(stdout, "compressed graph (%s): n=%d m=%d weighted=%t symmetric=%t heap=%d mapped=%d bytes\n",
			c.FormatName(), c.NumVertices(), c.NumEdges(), c.Weighted(), c.Symmetric(),
			c.MemoryFootprint(), c.MappedBytes())
	}

	params := algo.Params{Mode: *mode, Threshold: *threshold, Backend: *backend}
	if err := params.Validate(); err != nil {
		return err
	}
	// Same contract as the server: an explicit -backend spmv for an
	// algorithm without a kernel is a usage error, not a silent edgemap run.
	if _, err := algo.ResolveBackend(runner.Name, view, params); err != nil {
		return err
	}
	var tr *ligra.Trace
	if *trace || *stats {
		tr = &ligra.Trace{}
		params.EdgeMap.Trace = tr
	}

	src := uint32(0)
	if *source >= 0 {
		if *source >= view.NumVertices() {
			return fmt.Errorf("source %d out of range (n=%d)", *source, view.NumVertices())
		}
		src = uint32(*source)
	} else {
		src = maxDegreeVertex(view)
	}

	reps := *rounds
	if reps < 1 {
		reps = 1
	}
	var ctx context.Context
	if *timeout > 0 {
		c, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = c
	}
	if *procs > 0 {
		// A per-call lease, not the deprecated process-wide
		// SetParallelism: only this computation is capped.
		ctx = ligra.WithParallelism(ctx, *procs)
	}
	params.Source = src
	statsBefore := ligra.SnapshotTraversalStats()
	schedBefore := ligra.SnapshotSchedulerStats()
	var best time.Duration
	var res algo.RunResult
	var interruptErr error
	done := 0
	for r := 0; r < reps; r++ {
		start := time.Now()
		var err error
		res, err = runner.Run(ctx, view, params)
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
		done = r + 1
		if err != nil {
			var re *ligra.RoundError
			if errors.As(err, &re) &&
				(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
				fmt.Fprintf(stdout, "interrupted: %v\n", err)
				interruptErr = err
				break
			}
			return err
		}
	}
	if interruptErr != nil {
		fmt.Fprintf(stdout, "partial result: %s\n", res.Summary)
	} else {
		fmt.Fprintln(stdout, res.Summary)
	}
	// Surface which backend executed when one was explicitly in play (under
	// -backend auto this is the resolution the user asked to observe).
	if b, ok := res.Details["backend"].(string); ok && *backend != algo.BackendEdgeMap {
		fmt.Fprintf(stdout, "backend: %s\n", b)
	}
	fmt.Fprintf(stdout, "time: %v (best of %d)\n", best, done)
	if tr != nil {
		fmt.Fprintln(stdout, "round  |frontier|  outdegrees  mode       output")
		for _, e := range tr.Entries {
			m := "sparse"
			switch {
			case e.DenseForward:
				m = "dense-fwd"
			case e.Dense:
				m = "dense"
			}
			fmt.Fprintf(stdout, "%5d  %10d  %10d  %-9s  %d\n",
				e.Round, e.FrontierSize, e.OutDegrees, m, e.OutputSize)
		}
	}
	if *stats {
		d := ligra.SnapshotTraversalStats().Sub(statsBefore)
		fmt.Fprintf(stdout, "traversal stats: calls=%d sparse=%d dense=%d dense-forward=%d seq-rounds=%d\n",
			d.Calls, d.Sparse, d.Dense, d.DenseForward, d.SeqRounds)
		fmt.Fprintf(stdout, "                 frontier-vertices=%d output-vertices=%d edges-weighed=%d\n",
			d.FrontierVertices, d.OutputVertices, d.EdgesScanned)
		s := ligra.SnapshotSchedulerStats().Sub(schedBefore)
		fmt.Fprintf(stdout, "scheduler: dispatches=%d inline=%d cutoff=%d parks=%d wakes=%d pool-workers=%d\n",
			s.Dispatches, s.InlineRuns, s.CutoffRuns, s.Parks, s.Wakes, s.PoolWorkers)
	}
	if interruptErr != nil {
		fmt.Fprintln(stdout, "status: timeout (exit 2)")
		return interruptErr
	}
	fmt.Fprintln(stdout, "status: ok")
	return nil
}

func loadOrGenerate(path string, symmetric, mmap bool, family string, scale int, seed uint64) (ligra.View, error) {
	switch {
	case path != "":
		return ligra.Load(path, ligra.LoadOptions{Symmetric: symmetric, MMap: mmap})
	case mmap:
		return nil, errors.New("-mmap requires a -graph file in the compressed (LIGRAGC1) format")
	case family == "rmat":
		return ligra.RMAT(scale, 16, ligra.PBBSRMAT, seed)
	case family == "twitter-sim":
		return ligra.RMAT(scale, 15, ligra.Graph500RMAT, seed)
	case family == "grid3d":
		side := 1
		for side*side*side < 1<<scale {
			side++
		}
		return ligra.Grid3D(side)
	case family == "randlocal":
		n := 1 << scale
		return ligra.RandomLocal(n, 10, n/16, seed)
	default:
		return nil, fmt.Errorf("provide -graph FILE or -gen FAMILY")
	}
}

func maxDegreeVertex(g ligra.View) uint32 {
	best, bestDeg := uint32(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > bestDeg {
			best, bestDeg = uint32(v), d
		}
	}
	return best
}
