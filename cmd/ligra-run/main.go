// ligra-run executes one of the framework's algorithms on a graph loaded
// from a file or generated on the fly, reporting the result summary and
// wall time — the equivalent of running one of Ligra's application
// binaries.
//
// Usage:
//
//	ligra-run -algo bfs -graph rmat16.adj -s -source 0
//	ligra-run -algo pagerank -gen rmat -scale 16
//	ligra-run -algo bellman-ford -gen grid3d -scale 15 -weights 31
//	ligra-run -algo components -graph web.bin -mode sparse -rounds 5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ligra"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ligra-run:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ligra-run", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		algoName  = fs.String("algo", "bfs", "algorithm: bfs | bc | bc-approx | radii | components | pagerank | pagerank-delta | bellman-ford | delta-stepping | kcore | mis | triangles | clustering | scc | coloring | matching | cc-ldd | eccentricity | local-cluster | densest")
		graphPath = fs.String("graph", "", "input graph file (AdjacencyGraph text or binary)")
		symmetric = fs.Bool("s", false, "treat a text-format input file as symmetric (Ligra's -s)")
		genFamily = fs.String("gen", "", "generate instead of load: rmat | grid3d | randlocal | twitter-sim")
		scale     = fs.Int("scale", 16, "generator scale (~2^scale vertices)")
		seed      = fs.Uint64("seed", 42, "generator seed")
		source    = fs.Int("source", -1, "source vertex (-1 = highest degree)")
		weights   = fs.Int("weights", 0, "attach hash weights in [1, W] (0 = keep input weights)")
		mode      = fs.String("mode", "auto", "edgeMap mode: auto | sparse | dense | dense-forward")
		threshold = fs.Int64("threshold", 0, "edgeMap dense-switch threshold (0 = |E|/20)")
		rounds    = fs.Int("rounds", 1, "timed repetitions (fastest reported)")
		trace     = fs.Bool("trace", false, "print the per-round edgeMap trace")
		compressG = fs.Bool("compress", false, "run on the Ligra+ byte-compressed representation")
		procs     = fs.Int("procs", 0, "worker goroutines (0 = GOMAXPROCS)")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the computation (0 = none); on expiry the algorithm stops cooperatively and its partial result is reported")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		prev := ligra.SetParallelism(*procs)
		defer ligra.SetParallelism(prev)
	}

	g, err := loadOrGenerate(*graphPath, *symmetric, *genFamily, *scale, *seed)
	if err != nil {
		return err
	}
	if *weights > 0 {
		g = g.AddWeights(ligra.HashWeight(int32(*weights)))
	}
	fmt.Fprintln(stdout, ligra.ComputeStats(g))

	var view ligra.View = g
	if *compressG {
		c, err := ligra.Compress(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "compressed representation: %d bytes\n", c.SizeBytes())
		view = c
	}

	opts := ligra.Options{Threshold: *threshold}
	switch *mode {
	case "auto":
	case "sparse":
		opts.Mode = ligra.ForceSparse
	case "dense":
		opts.Mode = ligra.ForceDense
	case "dense-forward":
		opts.Mode = ligra.ForceDense
		opts.DenseForward = true
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	var tr *ligra.Trace
	if *trace {
		tr = &ligra.Trace{}
		opts.Trace = tr
	}

	src := uint32(0)
	if *source >= 0 {
		if *source >= view.NumVertices() {
			return fmt.Errorf("source %d out of range (n=%d)", *source, view.NumVertices())
		}
		src = uint32(*source)
	} else {
		src = maxDegreeVertex(view)
	}

	reps := *rounds
	if reps < 1 {
		reps = 1
	}
	var ctx context.Context
	if *timeout > 0 {
		c, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = c
	}
	var best time.Duration
	var summary string
	interrupted := false
	done := 0
	for r := 0; r < reps; r++ {
		start := time.Now()
		var err error
		summary, err = runOnce(ctx, *algoName, view, src, opts)
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
		done = r + 1
		if err != nil {
			var re *ligra.RoundError
			if errors.As(err, &re) &&
				(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
				fmt.Fprintf(stdout, "interrupted: %v\n", err)
				interrupted = true
				break
			}
			return err
		}
	}
	if interrupted {
		fmt.Fprintf(stdout, "partial result: %s\n", summary)
	} else {
		fmt.Fprintln(stdout, summary)
	}
	fmt.Fprintf(stdout, "time: %v (best of %d)\n", best, done)
	if tr != nil {
		fmt.Fprintln(stdout, "round  |frontier|  outdegrees  mode    output")
		for _, e := range tr.Entries {
			m := "sparse"
			if e.Dense {
				m = "dense"
			}
			fmt.Fprintf(stdout, "%5d  %10d  %10d  %-6s  %d\n",
				e.Round, e.FrontierSize, e.OutDegrees, m, e.OutputSize)
		}
	}
	return nil
}

func loadOrGenerate(path string, symmetric bool, family string, scale int, seed uint64) (*ligra.Graph, error) {
	switch {
	case path != "":
		return ligra.LoadGraph(path, symmetric)
	case family == "rmat":
		return ligra.RMAT(scale, 16, ligra.PBBSRMAT, seed)
	case family == "twitter-sim":
		return ligra.RMAT(scale, 15, ligra.Graph500RMAT, seed)
	case family == "grid3d":
		side := 1
		for side*side*side < 1<<scale {
			side++
		}
		return ligra.Grid3D(side)
	case family == "randlocal":
		n := 1 << scale
		return ligra.RandomLocal(n, 10, n/16, seed)
	default:
		return nil, fmt.Errorf("provide -graph FILE or -gen FAMILY")
	}
}

func maxDegreeVertex(g ligra.View) uint32 {
	best, bestDeg := uint32(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d > bestDeg {
			best, bestDeg = uint32(v), d
		}
	}
	return best
}

// runOnce executes one algorithm and summarizes its result. A nil ctx
// means no budget; when ctx expires mid-run, supported algorithms return
// both the summary of their partial result and the interruption error.
func runOnce(ctx context.Context, name string, g ligra.View, src uint32, opts ligra.Options) (string, error) {
	switch name {
	case "bfs":
		res, err := ligra.BFSCtx(ctx, g, src, opts)
		return fmt.Sprintf("BFS from %d: visited %d vertices in %d rounds", src, res.Visited, res.Rounds), err
	case "bc":
		res, err := ligra.BCCtx(ctx, g, src, opts)
		maxV, maxS := 0, 0.0
		for v, s := range res.Scores {
			if s > maxS {
				maxV, maxS = v, s
			}
		}
		return fmt.Sprintf("BC from %d: %d forward rounds; max dependency %.2f at vertex %d",
			src, res.Rounds, maxS, maxV), err
	case "bc-approx":
		res, err := ligra.BCApproxCtx(ctx, g, 16, 1, opts)
		maxV, maxS := 0, 0.0
		for v, s := range res.Scores {
			if s > maxS {
				maxV, maxS = v, s
			}
		}
		return fmt.Sprintf("BC-approx (%d sources): max centrality %.1f at vertex %d",
			len(res.Sources), maxS, maxV), err
	case "radii":
		o := ligra.DefaultRadiiOptions()
		o.EdgeMap = opts
		res, err := ligra.RadiiCtx(ctx, g, o)
		maxR := int32(-1)
		for _, r := range res.Radii {
			if r > maxR {
				maxR = r
			}
		}
		return fmt.Sprintf("Radii (K=%d): %d rounds; estimated diameter lower bound %d",
			len(res.Sources), res.Rounds, maxR), err
	case "components":
		res, err := ligra.ConnectedComponentsCtx(ctx, g, opts)
		return fmt.Sprintf("Components: %d components in %d rounds", res.Components, res.Rounds), err
	case "pagerank":
		o := ligra.DefaultPageRankOptions()
		o.EdgeMap = opts
		res, err := ligra.PageRankCtx(ctx, g, o)
		return fmt.Sprintf("PageRank: %d iterations, final L1 change %.3g", res.Iterations, res.Err), err
	case "pagerank-delta":
		o := ligra.DefaultPageRankOptions()
		o.EdgeMap = opts
		res, err := ligra.PageRankDeltaCtx(ctx, g, o, 1e-3)
		return fmt.Sprintf("PageRank-Delta: %d iterations, final L1 change %.3g", res.Iterations, res.Err), err
	case "bellman-ford":
		res, err := ligra.BellmanFordCtx(ctx, g, src, opts)
		if res.NegativeCycle {
			return "Bellman-Ford: negative cycle detected", err
		}
		reached := 0
		for _, d := range res.Dist {
			if d < ligra.InfDist {
				reached++
			}
		}
		return fmt.Sprintf("Bellman-Ford from %d: reached %d vertices in %d rounds", src, reached, res.Rounds), err
	case "delta-stepping":
		res, err := ligra.DeltaSteppingCtx(ctx, g, src, 0, opts)
		if res == nil {
			return "", err
		}
		reached := 0
		for _, d := range res.Dist {
			if d < ligra.InfDist {
				reached++
			}
		}
		return fmt.Sprintf("Delta-stepping from %d: reached %d vertices over %d buckets (%d phases)",
			src, reached, res.Buckets, res.Phases), err
	case "kcore":
		res, err := ligra.KCoreCtx(ctx, g, opts)
		return fmt.Sprintf("KCore: degeneracy %d in %d peeling rounds", res.MaxCore, res.Rounds), err
	case "mis":
		res, err := ligra.MISCtx(ctx, g, 123, opts)
		size := 0
		for _, in := range res.InSet {
			if in {
				size++
			}
		}
		return fmt.Sprintf("MIS: %d vertices in %d rounds", size, res.Rounds), err
	case "scc":
		res, err := ligra.SCCCtx(ctx, g, opts)
		return fmt.Sprintf("SCC: %d strongly connected components", res.Components), err
	case "coloring":
		res := ligra.Coloring(g, 7, opts)
		return fmt.Sprintf("Coloring: %d colors in %d rounds", res.NumColors, res.Rounds), nil
	case "matching":
		res := ligra.MaximalMatching(g, 7)
		return fmt.Sprintf("Matching: %d edges in %d rounds", res.Size, res.Rounds), nil
	case "cc-ldd":
		res := ligra.ConnectedComponentsLDD(g, 0.2, 7, opts)
		return fmt.Sprintf("Components (LDD contraction): %d components", res.Components), nil
	case "eccentricity":
		res, err := ligra.TwoPassEccentricityCtx(ctx, g, 64, 7, opts)
		return fmt.Sprintf("Two-pass eccentricity: diameter >= %d (%d rounds)",
			res.DiameterLowerBound, res.Rounds), err
	case "densest":
		res := ligra.DensestSubgraph(g, opts)
		return fmt.Sprintf("Densest subgraph: %d vertices, density %.3f (%d peels)",
			len(res.Vertices), res.Density, res.Peels), nil
	case "local-cluster":
		res, err := ligra.LocalCluster(g, src, 0.15, 1e-6)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("Local cluster around %d: %d vertices, conductance %.4f",
			src, len(res.Cluster), res.Conductance), nil
	case "triangles":
		return fmt.Sprintf("Triangles: %d", ligra.TriangleCount(g)), nil
	case "clustering":
		lcc := ligra.LocalClusteringCoefficients(g)
		var sum float64
		for _, c := range lcc {
			sum += c
		}
		return fmt.Sprintf("Clustering: mean local coefficient %.4f", sum/float64(len(lcc))), nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", name)
	}
}
