package main

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"ligra"
)

func TestRunEveryAlgorithm(t *testing.T) {
	algos := []string{
		"bfs", "bc", "bc-approx", "radii", "components", "pagerank",
		"pagerank-delta", "bellman-ford", "delta-stepping", "kcore",
		"mis", "triangles", "clustering", "scc", "coloring", "matching",
		"cc-ldd", "eccentricity", "local-cluster", "densest",
	}
	for _, a := range algos {
		var buf bytes.Buffer
		err := run([]string{"-algo", a, "-gen", "rmat", "-scale", "8"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !strings.Contains(buf.String(), "time:") {
			t.Errorf("%s: no timing line in output", a)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "nope", "-gen", "rmat", "-scale", "8"}, &buf); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunModesAndTrace(t *testing.T) {
	for _, mode := range []string{"auto", "sparse", "dense", "dense-forward"} {
		var buf bytes.Buffer
		err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8", "-mode", mode, "-trace"}, &buf)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if !strings.Contains(buf.String(), "round") {
			t.Errorf("mode %s: trace missing", mode)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8", "-mode", "bogus"}, &buf); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	g, err := ligra.Grid3D(6)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.adj")
	if err := ligra.SaveGraph(path, g, false); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-algo", "components", "-graph", path, "-s"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 components") {
		t.Errorf("torus should be connected: %q", buf.String())
	}
}

func TestRunCompressedView(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8", "-compress"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compressed representation") {
		t.Error("compression banner missing")
	}
}

func TestRunWeightsAndSource(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "bellman-ford", "-gen", "grid3d", "-scale", "9",
		"-weights", "31", "-source", "0", "-rounds", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best of 2") {
		t.Error("rounds flag ignored")
	}
	// Out-of-range source rejected.
	if err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8",
		"-source", "99999999"}, &buf); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestRunRequiresInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "bfs"}, &buf); err == nil {
		t.Error("no input source accepted")
	}
}

func TestRunStatusLine(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	if !strings.HasSuffix(out, "status: ok") {
		t.Errorf("final line should report status ok, got %q", out)
	}
}

// TestRunTimeoutExitCode proves scripts can tell a deadline hit (exit 2,
// partial result reported) from a load/usage error (exit 1) and success
// (exit 0).
func TestRunTimeoutExitCode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "pagerank", "-gen", "rmat", "-scale", "12",
		"-timeout", "1ns"}, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	out := buf.String()
	for _, want := range []string{"interrupted:", "partial result:", "status: timeout (exit 2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	var stderr bytes.Buffer
	if code := exitStatus(err, &stderr); code != 2 {
		t.Errorf("exitStatus(timeout) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "timeout") {
		t.Errorf("stderr should name the timeout: %q", stderr.String())
	}
	if code := exitStatus(nil, &stderr); code != 0 {
		t.Errorf("exitStatus(nil) = %d, want 0", code)
	}
	if code := exitStatus(errors.New("no such file"), &stderr); code != 1 {
		t.Errorf("exitStatus(load error) = %d, want 1", code)
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g, err := ligra.RMAT(8, 8, ligra.Graph500RMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := maxDegreeVertex(g)
	for u := 0; u < g.NumVertices(); u++ {
		if g.OutDegree(uint32(u)) > g.OutDegree(v) {
			t.Fatalf("vertex %d beats claimed max %d", u, v)
		}
	}
}
