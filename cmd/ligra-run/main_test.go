package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ligra"
)

func TestRunEveryAlgorithm(t *testing.T) {
	algos := []string{
		"bfs", "bc", "bc-approx", "radii", "components", "pagerank",
		"pagerank-delta", "bellman-ford", "delta-stepping", "kcore",
		"mis", "triangles", "clustering", "scc", "coloring", "matching",
		"cc-ldd", "eccentricity", "local-cluster", "densest",
	}
	for _, a := range algos {
		var buf bytes.Buffer
		err := run([]string{"-algo", a, "-gen", "rmat", "-scale", "8"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !strings.Contains(buf.String(), "time:") {
			t.Errorf("%s: no timing line in output", a)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "nope", "-gen", "rmat", "-scale", "8"}, &buf); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunModesAndTrace(t *testing.T) {
	for _, mode := range []string{"auto", "sparse", "dense", "dense-forward"} {
		var buf bytes.Buffer
		err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8", "-mode", mode, "-trace"}, &buf)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if !strings.Contains(buf.String(), "round") {
			t.Errorf("mode %s: trace missing", mode)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8", "-mode", "bogus"}, &buf); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	g, err := ligra.Grid3D(6)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.adj")
	if err := ligra.SaveGraph(path, g, false); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-algo", "components", "-graph", path, "-s"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 components") {
		t.Errorf("torus should be connected: %q", buf.String())
	}
}

func TestRunCompressedView(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8", "-compress"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compressed representation") {
		t.Error("compression banner missing")
	}
}

func TestRunWeightsAndSource(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "bellman-ford", "-gen", "grid3d", "-scale", "9",
		"-weights", "31", "-source", "0", "-rounds", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best of 2") {
		t.Error("rounds flag ignored")
	}
	// Out-of-range source rejected.
	if err := run([]string{"-algo", "bfs", "-gen", "rmat", "-scale", "8",
		"-source", "99999999"}, &buf); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestRunRequiresInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "bfs"}, &buf); err == nil {
		t.Error("no input source accepted")
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g, err := ligra.RMAT(8, 8, ligra.Graph500RMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := maxDegreeVertex(g)
	for u := 0; u < g.NumVertices(); u++ {
		if g.OutDegree(uint32(u)) > g.OutDegree(v) {
			t.Fatalf("vertex %d beats claimed max %d", u, v)
		}
	}
}
