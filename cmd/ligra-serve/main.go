// ligra-serve is the long-running graph analytics server: it keeps a
// registry of named graphs resident in memory and serves algorithm
// queries over HTTP/JSON, with per-request deadlines, adaptive load
// shedding (429+Retry-After past the -shed-target-ms SLO, with
// per-tenant fair share), per-(algorithm, graph) circuit breakers,
// retrying graph loads under a -retry-budget, a query watchdog, panic
// containment, and built-in observability.
//
// Usage:
//
//	ligra-serve -addr :8090 -max-concurrent 8
//	ligra-serve -preload social=graphs/social.adj,symmetric
//	ligra-serve -preload web=graphs/web.gc,mmap
//
// Endpoints:
//
//	GET    /healthz                  readiness: graph + breaker states ("ok"|"degraded"; 503 draining)
//	GET    /healthz?live=1           liveness: bare OK (503 while draining)
//	GET    /metrics                  counters + per-graph memory (JSON)
//	GET    /v1/graphs                list registered graphs
//	POST   /v1/graphs/{name}         load {"path":...} or {"gen":"rmat",...}
//	GET    /v1/graphs/{name}         one graph's stats
//	DELETE /v1/graphs/{name}         evict
//	POST   /v1/graphs/{name}/query   {"algo":"bfs","source":0,"timeout_ms":500}
//	POST   /v1/graphs/{name}/update  {"ops":[{"src":1,"dst":2},{"src":3,"dst":4,"del":true}]}
//
// Graphs are dynamic: /update applies batched edge inserts/deletes as
// versioned immutable snapshots (group-committed within
// -update-window-ms, compacted past -compact-threshold), queries run
// against the snapshot they pinned, and connected-components /
// pagerank-delta queries refresh incrementally from the delta log.
//
// On SIGTERM/SIGINT the server drains: it stops accepting queries,
// gives in-flight ones -drain-timeout to finish, then cancels the rest
// cooperatively (their clients receive 504 partial results) before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ligra"
	"ligra/internal/graph"
	"ligra/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ligra-serve:", err)
		os.Exit(1)
	}
}

// preloadSpec is one -preload flag value: "name=path[,symmetric][,mmap]".
type preloadSpec struct {
	name, path      string
	symmetric, mmap bool
}

func parsePreload(v string) (preloadSpec, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return preloadSpec{}, fmt.Errorf("bad -preload %q (want name=path[,symmetric][,mmap])", v)
	}
	spec := preloadSpec{name: name}
	parts := strings.Split(rest, ",")
	spec.path = parts[0]
	if spec.path == "" {
		return preloadSpec{}, fmt.Errorf("bad -preload %q (want name=path[,symmetric][,mmap])", v)
	}
	for _, attr := range parts[1:] {
		switch attr {
		case "symmetric":
			spec.symmetric = true
		case "mmap":
			// Memory-map a compressed (LIGRAGC1) file: warm restarts,
			// page-cache sharing across processes. Rejected at load time
			// for other formats.
			spec.mmap = true
		default:
			return preloadSpec{}, fmt.Errorf("bad -preload attribute %q (have \"symmetric\", \"mmap\")", attr)
		}
	}
	return spec, nil
}

// preloadList collects repeated -preload flags.
type preloadList []preloadSpec

func (p *preloadList) String() string { return fmt.Sprint(*p) }

func (p *preloadList) Set(v string) error {
	spec, err := parsePreload(v)
	if err != nil {
		return err
	}
	*p = append(*p, spec)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("ligra-serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var preloads preloadList
	var (
		addr           = fs.String("addr", ":8090", "listen address")
		maxConcurrent  = fs.Int("max-concurrent", 0, "queries executing at once (0 = 2*GOMAXPROCS); excess queues then gets 429")
		queueWait      = fs.Duration("queue-wait", 100*time.Millisecond, "how long an over-admission query waits for a slot before 429")
		defaultTimeout = fs.Duration("default-timeout", 30*time.Second, "deadline for queries that set no timeout_ms (0 = unbounded)")
		maxTimeout     = fs.Duration("max-timeout", 60*time.Second, "upper bound on client-requested timeout_ms")
		drainTimeout   = fs.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight queries before cancelling them")
		cacheMB        = fs.Int64("cache-mb", 64, "query result cache budget in MiB (0 = caching off; coalescing stays on)")
		maxQueryProcs  = fs.Int("max-query-procs", 0, "worker goroutines one query may use (0 = GOMAXPROCS); concurrent queries share the CPU-slot pool")
		shedTargetMs   = fs.Int("shed-target-ms", 1000, "admission-wait SLO in ms; past it new queries are shed with 429+Retry-After (0 = default 1s, negative = adaptive shedding off)")
		breakerThresh  = fs.Int("breaker-threshold", 5, "consecutive panics/timeouts that open a per-(algo,graph) circuit breaker (negative = breakers off)")
		breakerCool    = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before a half-open probe")
		retryBudget    = fs.Int("retry-budget", 10, "token budget for transient graph-load retries (negative = retries off)")
		watchdogGrace  = fs.Duration("watchdog-grace", 2*time.Second, "how far past its deadline a query may run before the watchdog trips (negative = watchdog off)")
		batchWindowMs  = fs.Int("batch-window-ms", 2, "how long the first batchable query (bfs/reach/landmarks) waits for companions before the shared sweep fires (0 = default 2ms, negative = batching off)")
		batchMax       = fs.Int("batch-max", 64, "max query slots per shared multi-source sweep (<= 64, one visit-word bit each)")
		updateWindowMs = fs.Int("update-window-ms", 5, "group-commit window for /update batches: the first writer waits this long for companions (0 = default 5ms, negative = apply immediately)")
		updatePending  = fs.Int("update-max-pending", 0, "max edge ops buffered across forming update commits before 429 (0 = delta-store default)")
		compactEvery   = fs.Int64("compact-threshold", 0, "overlaid edge-op churn that triggers snapshot compaction (0 = max(4096, edges/8), negative = compaction off)")
		trustTenant    = fs.Bool("trust-tenant-header", false, "honor the X-Tenant header for fair-share shedding; enable only behind a gateway that sets it (otherwise tenants are client IPs)")
		logJSON        = fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	fs.Var(&preloads, "preload", "load a graph at startup: name=path[,symmetric][,mmap] (repeatable; mmap maps a compressed file instead of heap-loading it)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	srv := server.New(server.Config{
		MaxConcurrent:     *maxConcurrent,
		QueueWait:         *queueWait,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		CacheBytes:        *cacheMB << 20,
		MaxQueryProcs:     *maxQueryProcs,
		ShedTarget:        time.Duration(*shedTargetMs) * time.Millisecond,
		BreakerThreshold:  *breakerThresh,
		BreakerCooldown:   *breakerCool,
		RetryBudget:       *retryBudget,
		WatchdogGrace:     *watchdogGrace,
		BatchWindow:       time.Duration(*batchWindowMs) * time.Millisecond,
		BatchMax:          *batchMax,
		UpdateWindow:      time.Duration(*updateWindowMs) * time.Millisecond,
		UpdateMaxPending:  *updatePending,
		CompactEvery:      *compactEvery,
		TrustTenantHeader: *trustTenant,
		Logger:            logger,
	})
	for _, p := range preloads {
		// The source string must match what POST /v1/graphs would build
		// for the same request, so a later identical load joins this
		// residency instead of conflicting.
		source := fmt.Sprintf("file:%s symmetric=%t", p.path, p.symmetric)
		if p.mmap {
			source += " mmap=true"
		}
		info, err := srv.Registry().Load(context.Background(), p.name, source,
			func() (graph.View, error) {
				return ligra.Load(p.path, ligra.LoadOptions{Symmetric: p.symmetric, MMap: p.mmap})
			})
		if err != nil {
			return fmt.Errorf("preload: %w", err)
		}
		logger.Info("preloaded", "graph", p.name, "path", p.path,
			"format", info.Format, "memory_bytes", info.MemoryBytes, "mapped_bytes", info.MappedBytes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	return serve(srv, ln, sigCh, *drainTimeout, logger)
}

// serve runs the HTTP server on ln until a signal arrives on sigCh, then
// drains: stop accepting, wait up to drainTimeout for in-flight requests,
// cancel whatever remains, and return once the server has shut down.
func serve(srv *server.Server, ln net.Listener, sigCh <-chan os.Signal, drainTimeout time.Duration, logger *slog.Logger) error {
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String())

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("shutdown signal", "signal", fmt.Sprint(sig))
	}

	// Drain: refuse new queries, let in-flight ones finish, then cancel
	// the stragglers cooperatively and wait for their handlers to write
	// their 504 partial-result responses.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)
	if shutdownErr != nil {
		logger.Warn("drain period expired with queries in flight; cancelling them", "err", shutdownErr)
		srv.CancelInflight()
		ctx2, cancel2 := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel2()
		shutdownErr = httpSrv.Shutdown(ctx2)
	}
	<-errCh // Serve has returned http.ErrServerClosed
	logger.Info("shutdown complete")
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}
