package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"ligra/internal/server"
)

func TestParsePreload(t *testing.T) {
	cases := []struct {
		in   string
		want preloadSpec
		ok   bool
	}{
		{"social=graphs/social.adj", preloadSpec{"social", "graphs/social.adj", false, false}, true},
		{"web=web.bin,symmetric", preloadSpec{"web", "web.bin", true, false}, true},
		{"web=web.gc,mmap", preloadSpec{"web", "web.gc", false, true}, true},
		{"web=web.gc,symmetric,mmap", preloadSpec{"web", "web.gc", true, true}, true},
		{"noequals", preloadSpec{}, false},
		{"=path", preloadSpec{}, false},
		{"name=", preloadSpec{}, false},
		{"g=p,bogus", preloadSpec{}, false},
	}
	for _, c := range cases {
		got, err := parsePreload(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parsePreload(%q): err = %v, want ok=%t", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parsePreload(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestServeDrainsOnSignal runs the real serve loop: load a graph, put a
// query in flight, deliver SIGTERM, and check the in-flight query
// completes with 200 before the process would exit.
func TestServeDrainsOnSignal(t *testing.T) {
	srv := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(srv, ln, sigCh, 10*time.Second, slog.New(slog.NewTextHandler(io.Discard, nil)))
	}()
	base := "http://" + ln.Addr().String()

	post := func(path string, body map[string]any) (int, map[string]any) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	if status, body := post("/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 14}); status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}

	queryDone := make(chan int, 1)
	go func() {
		status, _ := post("/v1/graphs/g/query", map[string]any{"algo": "pagerank"})
		queryDone <- status
	}()
	// Wait until the query is executing.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight := int64(0); inFlight < 1; {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		inFlight = srv.Metrics().InFlight.Value()
		time.Sleep(time.Millisecond)
	}

	sigCh <- syscall.SIGTERM
	select {
	case status := <-queryDone:
		if status != http.StatusOK {
			t.Errorf("in-flight query during drain: status %d, want 200", status)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight query never completed")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve never returned after SIGTERM")
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting after shutdown")
	}
}

// TestServeCancelsStragglers proves the second drain phase: a query that
// outlives the drain window is cancelled cooperatively and its client
// receives the 504 partial result rather than a dropped connection.
func TestServeCancelsStragglers(t *testing.T) {
	srv := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	// A drain window far shorter than the query forces the cancel path.
	go func() {
		serveErr <- serve(srv, ln, sigCh, 50*time.Millisecond, slog.New(slog.NewTextHandler(io.Discard, nil)))
	}()
	base := "http://" + ln.Addr().String()

	post := func(path string, body map[string]any) (int, map[string]any) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	if status, _ := post("/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 15}); status != http.StatusOK {
		t.Fatal("load failed")
	}
	type reply struct {
		status int
		body   map[string]any
	}
	queryDone := make(chan reply, 1)
	go func() {
		// 64 BC passes over half a million edges takes far longer than
		// the 50ms drain window, so cancellation must cut this short.
		status, body := post("/v1/graphs/g/query", map[string]any{"algo": "bc-approx", "k": 64})
		queryDone <- reply{status, body}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().InFlight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	sigCh <- syscall.SIGTERM
	select {
	case r := <-queryDone:
		if r.status != http.StatusGatewayTimeout {
			t.Fatalf("straggler query: status %d body %v, want 504", r.status, r.body)
		}
		if r.body["partial"] != true {
			t.Errorf("straggler query: no partial result: %v", r.body)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("straggler query never completed")
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}
