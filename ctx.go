package ligra

import (
	"context"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/parallel"
)

// Cancellation-aware API. Every *Ctx function accepts a context.Context
// (nil is treated as context.Background()) that is observed cooperatively
// at chunk granularity inside parallel loops: a cancelled or expired
// context stops the computation within roughly one chunk of parallel
// work. Interrupted algorithms return their partial result — each result
// type documents what "partial" means — together with a *RoundError that
// wraps the cause, so errors.Is(err, context.DeadlineExceeded) and
// friends see through it.
//
// Worker panics inside any parallel region are captured and surface as a
// *PanicError: the non-ctx entry points re-panic with it, the *Ctx entry
// points return it as an error.

type (
	// PanicError is a panic captured inside a parallel worker, carrying
	// the original panic value and stack.
	PanicError = parallel.PanicError
	// RoundError wraps an interruption error with the algorithm name and
	// the round it was interrupted after; Unwrap exposes the cause.
	RoundError = algo.RoundError
)

// EdgeMapCtx is EdgeMap with cooperative cancellation; it returns a nil
// frontier and an error if the traversal was interrupted or a worker
// panicked. A nil ctx falls back to opts.Context (the explicit argument
// wins when both are set).
func EdgeMapCtx(ctx context.Context, g View, u *VertexSubset, f EdgeFuncs, opts Options) (*VertexSubset, error) {
	return core.EdgeMapCtx(ctx, g, u, f, opts)
}

// EdgeMapDataCtx is EdgeMapData with cooperative cancellation, following
// the same ctx-precedence contract as EdgeMapCtx.
func EdgeMapDataCtx[T any](ctx context.Context, g View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) (*DataSubset[T], error) {
	return core.EdgeMapDataCtx(ctx, g, u, f, opts)
}

// WithParallelism returns a context that caps the worker goroutines used
// by every *Ctx entry point run under it at p — a per-call alternative to
// the process-wide SetParallelism, letting concurrent computations share
// one machine with different worker budgets. The effective count is
// min(p, SetParallelism's setting, GOMAXPROCS).
func WithParallelism(ctx context.Context, p int) context.Context {
	return parallel.WithProcs(ctx, p)
}

// VertexMapCtx is VertexMap with cooperative cancellation.
func VertexMapCtx(ctx context.Context, u *VertexSubset, fn func(v uint32)) error {
	return core.VertexMapCtx(ctx, u, fn)
}

// BFSCtx is BFS with cooperative cancellation; Parents is a valid
// partial BFS forest on interruption.
func BFSCtx(ctx context.Context, g View, source uint32, opts Options) (*BFSResult, error) {
	return algo.BFSCtx(ctx, g, source, opts)
}

// BFSLevelsCtx is BFSLevels with cooperative cancellation.
func BFSLevelsCtx(ctx context.Context, g View, source uint32, opts Options) ([]int32, error) {
	return algo.BFSLevelsCtx(ctx, g, source, opts)
}

// BCCtx is BC with cooperative cancellation.
func BCCtx(ctx context.Context, g View, source uint32, opts Options) (*BCResult, error) {
	return algo.BCCtx(ctx, g, source, opts)
}

// BCApproxCtx is BCApprox with cooperative cancellation; the estimator is
// rescaled over the sources that completed.
func BCApproxCtx(ctx context.Context, g View, k int, seed uint64, opts Options) (*BCApproxResult, error) {
	return algo.BCApproxCtx(ctx, g, k, seed, opts)
}

// RadiiCtx is Radii with cooperative cancellation; estimates remain
// valid lower bounds on interruption.
func RadiiCtx(ctx context.Context, g View, opts RadiiOptions) (*RadiiResult, error) {
	return algo.RadiiCtx(ctx, g, opts)
}

// RadiiMultiCtx is RadiiMulti with cooperative cancellation.
func RadiiMultiCtx(ctx context.Context, g View, k int, seed uint64, opts Options) (*RadiiResult, error) {
	return algo.RadiiMultiCtx(ctx, g, k, seed, opts)
}

// ConnectedComponentsCtx is ConnectedComponents with cooperative
// cancellation; Labels form a valid coarsening on interruption.
func ConnectedComponentsCtx(ctx context.Context, g View, opts Options) (*CCResult, error) {
	return algo.ConnectedComponentsCtx(ctx, g, opts)
}

// PageRankCtx is PageRank with cooperative cancellation; Ranks are those
// of the last fully completed iteration on interruption.
func PageRankCtx(ctx context.Context, g View, opts PageRankOptions) (*PageRankResult, error) {
	return algo.PageRankCtx(ctx, g, opts)
}

// PageRankDeltaCtx is PageRankDelta with cooperative cancellation.
func PageRankDeltaCtx(ctx context.Context, g View, opts PageRankOptions, delta float64) (*PageRankResult, error) {
	return algo.PageRankDeltaCtx(ctx, g, opts, delta)
}

// BellmanFordCtx is BellmanFord with cooperative cancellation; Dist holds
// valid distance upper bounds on interruption.
func BellmanFordCtx(ctx context.Context, g View, source uint32, opts Options) (*SSSPResult, error) {
	return algo.BellmanFordCtx(ctx, g, source, opts)
}

// DeltaSteppingCtx is DeltaStepping with cooperative cancellation; Dist
// holds valid distance upper bounds on interruption.
func DeltaSteppingCtx(ctx context.Context, g View, source uint32, delta int64, opts Options) (*DeltaSteppingResult, error) {
	return algo.DeltaSteppingCtx(ctx, g, source, delta, opts)
}

// KCoreCtx is KCore with cooperative cancellation; Coreness is exact for
// already-peeled vertices on interruption.
func KCoreCtx(ctx context.Context, g View, opts Options) (*KCoreResult, error) {
	return algo.KCoreCtx(ctx, g, opts)
}

// KCoreJulienneCtx is KCoreJulienne with cooperative cancellation.
func KCoreJulienneCtx(ctx context.Context, g View, opts Options) (*KCoreResult, error) {
	return algo.KCoreJulienneCtx(ctx, g, opts)
}

// MISCtx is MIS with cooperative cancellation; InSet is a valid (possibly
// not yet maximal) independent set on interruption.
func MISCtx(ctx context.Context, g View, seed uint64, opts Options) (*MISResult, error) {
	return algo.MISCtx(ctx, g, seed, opts)
}

// SCCCtx is SCC with cooperative cancellation; Labels is exact for
// components finished before the interruption.
func SCCCtx(ctx context.Context, g View, opts Options) (*SCCResult, error) {
	return algo.SCCCtx(ctx, g, opts)
}

// TwoPassEccentricityCtx is TwoPassEccentricity with cooperative
// cancellation.
func TwoPassEccentricityCtx(ctx context.Context, g View, k int, seed uint64, opts Options) (*EccentricityResult, error) {
	return algo.TwoPassEccentricityCtx(ctx, g, k, seed, opts)
}
