package ligra_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ligra"
	"ligra/internal/faultinject"
)

// TestPublicDeadlineFlow exercises the acceptance scenario through the
// public API: a long PageRank under a 1ms deadline returns
// DeadlineExceeded plus the last completed iteration's ranks.
func TestPublicDeadlineFlow(t *testing.T) {
	g, err := ligra.RMAT(13, 8, ligra.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()

	opts := ligra.DefaultPageRankOptions()
	opts.Epsilon = 0
	opts.MaxIterations = 1 << 20
	res, rerr := ligra.PageRankCtx(ctx, g, opts)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", rerr)
	}
	var re *ligra.RoundError
	if !errors.As(rerr, &re) {
		t.Fatalf("err = %v (%T), want *ligra.RoundError", rerr, rerr)
	}
	if res == nil || len(res.Ranks) != g.NumVertices() {
		t.Fatal("no partial ranks from interrupted PageRank")
	}
	if res.Iterations != re.Round {
		t.Errorf("Iterations = %d, RoundError.Round = %d", res.Iterations, re.Round)
	}
}

// TestPublicCancelFlow checks that BFSCtx through the public wrapper
// honours an already-cancelled context and still returns a valid minimal
// forest.
func TestPublicCancelFlow(t *testing.T) {
	g, err := ligra.RMAT(10, 8, ligra.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, rerr := ligra.BFSCtx(ctx, g, 0, ligra.Options{})
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", rerr)
	}
	if res == nil || res.Parents[0] != 0 {
		t.Fatal("no valid partial forest")
	}
	for v, p := range res.Parents[1:] {
		if p != ligra.None {
			t.Fatalf("vertex %d claimed parent %d under a pre-cancelled context", v+1, p)
		}
	}
}

// TestPublicPanicContainment checks that a worker fault injected into a
// plain (non-ctx) public entry point surfaces as the typed
// *ligra.PanicError the API promises, never a bare runtime panic.
func TestPublicPanicContainment(t *testing.T) {
	g, err := ligra.RMAT(10, 8, ligra.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	disarm := faultinject.PanicOnChunk(2, "injected public fault")
	defer disarm()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fault did not fire")
		}
		pe, ok := r.(*ligra.PanicError)
		if !ok {
			t.Fatalf("panic value is %T (%v), want *ligra.PanicError", r, r)
		}
		if pe.Value != "injected public fault" {
			t.Errorf("PanicError.Value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Error("PanicError.Stack is empty")
		}
	}()
	ligra.BFS(g, 0, ligra.Options{})
}
