// Quickstart: build a graph, run BFS through the public API, and write a
// custom traversal directly against EdgeMap — the "hello world" of the
// Ligra programming model.
package main

import (
	"fmt"
	"sync/atomic"

	"ligra"
)

func main() {
	// A small power-law graph: 2^14 vertices, ~16 edges per vertex.
	g, err := ligra.RMAT(14, 16, ligra.PBBSRMAT, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(ligra.ComputeStats(g))

	// 1. Use a built-in application.
	res := ligra.BFS(g, 0, ligra.Options{})
	fmt.Printf("BFS: visited %d/%d vertices in %d rounds\n",
		res.Visited, g.NumVertices(), res.Rounds)

	// 2. Write the same BFS by hand against the Ligra interface: a parent
	// array, a CAS-based update, and a condition that prunes visited
	// vertices. EdgeMap picks sparse (push) or dense (pull) per round.
	n := g.NumVertices()
	parents := make([]uint32, n)
	for i := range parents {
		parents[i] = ligra.None
	}
	parents[0] = 0

	funcs := ligra.EdgeFuncs{
		// Dense rounds guarantee one writer per destination.
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == ligra.None {
				parents[d] = s
				return true
			}
			return false
		},
		// Sparse rounds need the atomic claim.
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return atomic.CompareAndSwapUint32(&parents[d], ligra.None, s)
		},
		Cond: func(d uint32) bool { return parents[d] == ligra.None },
	}

	frontier := ligra.NewSingle(n, 0)
	trace := &ligra.Trace{}
	rounds := 0
	for !frontier.IsEmpty() {
		frontier = ligra.EdgeMap(g, frontier, funcs, ligra.Options{Trace: trace})
		rounds++
	}
	fmt.Printf("hand-written BFS finished in %d rounds; edgeMap chose:\n", rounds)
	for _, e := range trace.Entries {
		mode := "sparse(push)"
		if e.Dense {
			mode = "dense(pull) "
		}
		fmt.Printf("  round %d: frontier=%5d outdeg=%7d -> %s -> output=%d\n",
			e.Round, e.FrontierSize, e.OutDegrees, mode, e.OutputSize)
	}

	// The two traversals agree on reachability.
	agree := 0
	for v := 0; v < n; v++ {
		if (parents[v] == ligra.None) == (res.Parents[v] == ligra.None) {
			agree++
		}
	}
	fmt.Printf("reachability agreement: %d/%d\n", agree, n)
}
