// Eccentricity estimation workflow: the paper's radii application (§5.3)
// on graphs of very different shapes, showing how the shared-bit-vector
// multi-BFS compares to running the BFS separately, and how the estimate
// tightens as the sample grows.
package main

import (
	"fmt"
	"time"

	"ligra"
)

func main() {
	inputs := []struct {
		name  string
		build func() (*ligra.Graph, error)
	}{
		{"rMat (low diameter)", func() (*ligra.Graph, error) {
			return ligra.RMAT(15, 16, ligra.PBBSRMAT, 3)
		}},
		{"3d-grid (high diameter)", func() (*ligra.Graph, error) {
			return ligra.Grid3D(24)
		}},
	}

	for _, in := range inputs {
		g, err := in.build()
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s: n=%d m=%d ==\n", in.name, g.NumVertices(), g.NumEdges())

		// Estimate with growing samples: larger K tends to tighten the
		// diameter lower bound and the coverage.
		for _, k := range []int{4, 16, 64} {
			start := time.Now()
			res := ligra.Radii(g, ligra.RadiiOptions{K: k, Seed: 99})
			maxR := int32(0)
			sum := int64(0)
			reached := 0
			for _, r := range res.Radii {
				if r > maxR {
					maxR = r
				}
				if r >= 0 {
					sum += int64(r)
					reached++
				}
			}
			fmt.Printf("  K=%2d: diameter >= %3d, mean ecc %.1f, coverage %d/%d, rounds %d, %v\n",
				k, maxR, float64(sum)/float64(reached), reached, g.NumVertices(),
				res.Rounds, time.Since(start).Round(time.Microsecond))
		}

		// Contrast with K separate BFS (what the bit-vector trick
		// amortizes): same answer, K times the traversals.
		res := ligra.Radii(g, ligra.RadiiOptions{K: 16, Seed: 99})
		start := time.Now()
		sep := make([]int32, g.NumVertices())
		for i := range sep {
			sep[i] = -1
		}
		for _, s := range res.Sources {
			lv := ligra.BFSLevels(g, s, ligra.Options{})
			for v, l := range lv {
				if l > sep[v] {
					sep[v] = l
				}
			}
		}
		sepTime := time.Since(start)
		agree := true
		for v := range sep {
			if sep[v] != res.Radii[v] {
				agree = false
				break
			}
		}
		fmt.Printf("  16 separate BFS agree: %v (separate: %v)\n",
			agree, sepTime.Round(time.Microsecond))

		// The refinements beyond the paper: a periphery-seeded second
		// pass, and batching past the 64-bit word limit.
		tp := ligra.TwoPassEccentricity(g, 64, 99, ligra.Options{})
		wide := ligra.RadiiMulti(g, 128, 99, ligra.Options{})
		wideMax := int32(0)
		for _, r := range wide.Radii {
			if r > wideMax {
				wideMax = r
			}
		}
		fmt.Printf("  two-pass (K=64): diameter >= %d;  multi-batch (K=128): diameter >= %d\n\n",
			tp.DiameterLowerBound, wideMax)
	}
}
