// Road-network routing: shortest paths on a high-diameter weighted mesh —
// the other end of the workload spectrum from social networks, where
// frontiers stay small and edgeMap should stay sparse nearly throughout.
package main

import (
	"fmt"

	"ligra"
)

func main() {
	// A 3-D torus mesh stands in for a road network: bounded degree, high
	// diameter. Deterministic hash weights in [1, 100] model travel times.
	g, err := ligra.Grid3D(32) // 32^3 = 32768 intersections
	if err != nil {
		panic(err)
	}
	wg := g.AddWeights(ligra.HashWeight(100))
	fmt.Println("road network:", ligra.ComputeStats(wg))

	src := uint32(0)

	// Unweighted hop distance (BFS) vs weighted travel time (Bellman-Ford).
	hops := ligra.BFSLevels(wg, src, ligra.Options{})
	tr := &ligra.Trace{}
	sp := ligra.BellmanFord(wg, src, ligra.Options{Trace: tr})
	if sp.NegativeCycle {
		panic("unexpected negative cycle")
	}

	// Sparse share of rounds: on a mesh the frontier is a wavefront, so
	// most rounds should run sparse.
	denseRounds := 0
	for _, e := range tr.Entries {
		if e.Dense {
			denseRounds++
		}
	}
	fmt.Printf("Bellman-Ford: %d rounds, %d ran dense (%0.f%%)\n",
		sp.Rounds, denseRounds, 100*float64(denseRounds)/float64(len(tr.Entries)))

	// Farthest destinations by hops and by travel time differ.
	farHop, farTime := 0, 0
	for v := range hops {
		if hops[v] > hops[farHop] {
			farHop = v
		}
		if sp.Dist[v] < ligra.InfDist && sp.Dist[v] > sp.Dist[farTime] {
			farTime = v
		}
	}
	fmt.Printf("farthest by hops: vertex %d (%d hops, travel time %d)\n",
		farHop, hops[farHop], sp.Dist[farHop])
	fmt.Printf("farthest by time: vertex %d (%d hops, travel time %d)\n",
		farTime, hops[farTime], sp.Dist[farTime])

	// Estimated network diameter via the radii application.
	radii := ligra.Radii(wg, ligra.DefaultRadiiOptions())
	maxR := int32(0)
	for _, r := range radii.Radii {
		if r > maxR {
			maxR = r
		}
	}
	fmt.Printf("estimated diameter (lower bound from %d sampled BFS): %d\n",
		len(radii.Sources), maxR)

	// Reconstruct one shortest route greedily: walk upstream from the
	// farthest vertex, always stepping to a predecessor on a tight edge.
	path := []uint32{uint32(farTime)}
	cur := uint32(farTime)
	for cur != src && len(path) < 10000 {
		next := cur
		wg.InNeighbors(cur, func(s uint32, w int32) bool {
			if sp.Dist[s]+int64(w) == sp.Dist[cur] {
				next = s
				return false
			}
			return true
		})
		if next == cur {
			break
		}
		cur = next
		path = append(path, cur)
	}
	fmt.Printf("one optimal route uses %d road segments (cost %d)\n",
		len(path)-1, sp.Dist[farTime])
}
