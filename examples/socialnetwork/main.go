// Social-network analysis: the workload class that motivates the paper's
// introduction. On a simulated follower graph (heavy-tailed degrees, low
// diameter) this example runs the standard analysis pipeline —
// connectivity, PageRank influence ranking, core decomposition, local
// clustering via triangle counting, and seed-based betweenness — entirely
// through the public API.
package main

import (
	"fmt"
	"sort"

	"ligra"
)

func main() {
	// Twitter-like: Graph500 R-MAT parameters give the heavy degree skew
	// of follower graphs.
	g, err := ligra.RMAT(15, 20, ligra.Graph500RMAT, 2024)
	if err != nil {
		panic(err)
	}
	stats := ligra.ComputeStats(g)
	fmt.Println("follower graph:", stats)

	// --- Connectivity: how much of the network is one community? ---
	cc := ligra.ConnectedComponents(g, ligra.Options{})
	sizes := map[uint32]int{}
	for _, l := range cc.Labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("components: %d; largest holds %.1f%% of vertices (found in %d rounds)\n",
		cc.Components, 100*float64(largest)/float64(g.NumVertices()), cc.Rounds)

	// --- Influence: PageRank to convergence. ---
	pr := ligra.PageRank(g, ligra.PageRankOptions{
		Damping: 0.85, Epsilon: 1e-8, MaxIterations: 100,
	})
	type ranked struct {
		v    uint32
		rank float64
	}
	top := make([]ranked, 0, g.NumVertices())
	for v, r := range pr.Ranks {
		top = append(top, ranked{uint32(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Printf("PageRank converged in %d iterations; top influencers:\n", pr.Iterations)
	for i := 0; i < 5; i++ {
		fmt.Printf("  #%d vertex %6d  rank %.5f  degree %d\n",
			i+1, top[i].v, top[i].rank, g.OutDegree(top[i].v))
	}

	// The approximate frontier-based variant gets close at a fraction of
	// the touched edges.
	prd := ligra.PageRankDelta(g, ligra.PageRankOptions{
		Damping: 0.85, Epsilon: 1e-8, MaxIterations: 100,
	}, 1e-3)
	fmt.Printf("PageRank-Delta: %d iterations; top-1 agrees: %v\n",
		prd.Iterations, maxIndex(prd.Ranks) == int(top[0].v))

	// --- Engagement core: k-core decomposition. ---
	kc := ligra.KCore(g, ligra.Options{})
	inMax := 0
	for _, c := range kc.Coreness {
		if c == kc.MaxCore {
			inMax++
		}
	}
	fmt.Printf("degeneracy %d; %d vertices in the innermost core\n", kc.MaxCore, inMax)

	// --- Cohesion: triangles (3x the number of closed wedges). ---
	tris := ligra.TriangleCount(g)
	fmt.Printf("triangles: %d\n", tris)

	// --- Brokerage: betweenness contribution from the top influencer. ---
	bc := ligra.BC(g, top[0].v, ligra.Options{})
	fmt.Printf("BC from vertex %d: max dependency %.1f (graph depth %d)\n",
		top[0].v, maxVal(bc.Scores), bc.Rounds)

	// --- Community around a user: local clustering (APPR + sweep cut)
	// touches only the seed's neighborhood, never the whole graph. ---
	lc, err := ligra.LocalCluster(g, top[0].v, 0.15, 1e-5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("local community around vertex %d: %d members, conductance %.4f\n",
		top[0].v, len(lc.Cluster), lc.Conductance)
}

func maxIndex(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func maxVal(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
