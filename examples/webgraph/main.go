// Web-graph analysis on a *directed* graph: the pipeline a search-engine
// or crawl-analysis system runs — strongly connected components (the
// bow-tie structure), PageRank over links, and reachability — exercising
// the framework's directed-graph support (transpose-based dense pull,
// forward-backward SCC).
package main

import (
	"fmt"
	"sort"

	"ligra"
)

func main() {
	// Directed power-law graph: hyperlink-like structure.
	g, err := ligra.RMATDirected(15, 12, ligra.Graph500RMAT, 99)
	if err != nil {
		panic(err)
	}
	fmt.Println("web graph:", ligra.ComputeStats(g))

	// --- Bow-tie: SCC structure. ---
	scc := ligra.SCC(g, ligra.Options{})
	sizes := map[uint32]int{}
	for _, l := range scc.Labels {
		sizes[l]++
	}
	core, coreLabel := 0, uint32(0)
	for l, s := range sizes {
		if s > core {
			core, coreLabel = s, l
		}
	}
	fmt.Printf("SCCs: %d; giant core holds %d vertices (%.1f%%)\n",
		scc.Components, core, 100*float64(core)/float64(g.NumVertices()))

	// --- IN / OUT sets relative to the core (the bow-tie wings):
	// vertices reaching the core vs. reachable from it. ---
	coreVertex := coreLabel // labels are member vertices
	out := ligra.BFS(g, coreVertex, ligra.Options{})
	// For the IN side, BFS over the transpose by loading the reversed
	// graph: Transpose is free for CSR graphs.
	in := ligra.BFS(g.Transpose(), coreVertex, ligra.Options{})
	fmt.Printf("OUT(core): %d vertices; IN(core): %d vertices\n", out.Visited, in.Visited)

	// --- Link-based ranking. ---
	pr := ligra.PageRank(g, ligra.PageRankOptions{Damping: 0.85, Epsilon: 1e-9, MaxIterations: 100})
	type kv struct {
		v uint32
		r float64
	}
	rank := make([]kv, len(pr.Ranks))
	for v, r := range pr.Ranks {
		rank[v] = kv{uint32(v), r}
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].r > rank[j].r })
	fmt.Printf("PageRank (%d iters); top pages by rank vs in-degree:\n", pr.Iterations)
	for i := 0; i < 5; i++ {
		fmt.Printf("  vertex %6d  rank %.5f  in-degree %d\n",
			rank[i].v, rank[i].r, g.InDegree(rank[i].v))
	}

	// --- Sanity: rank mass concentrates on the giant core + OUT. ---
	var coreMass float64
	for v, l := range scc.Labels {
		if l == coreLabel {
			coreMass += pr.Ranks[v]
		}
	}
	fmt.Printf("rank mass inside the giant SCC: %.1f%%\n", 100*coreMass)
}
