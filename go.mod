module ligra

go 1.23
