package ligra

import (
	"io"

	"ligra/internal/compress"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// FromEdges builds a CSR graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge, opts BuildOptions) (*Graph, error) {
	return graph.FromEdges(n, edges, opts)
}

// FromCSR wraps pre-built CSR arrays as a Graph, validating invariants.
func FromCSR(offsets []int64, edges []uint32, weights []int32, symmetric bool) (*Graph, error) {
	return graph.FromCSR(offsets, edges, weights, symmetric)
}

// LoadOptions configures Load. The zero value loads into the heap and
// treats text inputs as directed.
type LoadOptions struct {
	// Symmetric declares that a text-format file stores an undirected
	// graph. Binary and compressed files record directedness themselves,
	// so the flag is ignored for them.
	Symmetric bool
	// MMap memory-maps a compressed (LIGRAGC1) file instead of reading
	// it onto the heap: warm restarts, page-cache sharing across
	// processes. Requesting it for any other format is an error — only
	// the compressed layout supports in-place use.
	MMap bool
}

// Load reads a graph file in any supported format and returns it as a
// View. The format is sniffed by content, not extension, in the
// precedence docs/FORMATS.md documents: the LIGRAGC1 magic loads as a
// *CompressedGraph (memory-mapped when opts.MMap is set), the LIGRAGO1
// magic as the binary CSR *Graph, and everything else parses as text —
// AdjacencyGraph if the header line says so, edge list otherwise.
// Callers that need a concrete type can type-assert the result; new code
// should stay on View so every backend (heap, compressed, mapped,
// delta-overlaid) is accepted downstream.
func Load(path string, opts LoadOptions) (View, error) {
	return compress.LoadView(path, opts.Symmetric, opts.MMap)
}

// LoadGraph reads a graph file (Ligra AdjacencyGraph text format or this
// package's binary format, auto-detected). symmetric declares whether a
// text-format file stores an undirected graph.
//
// Deprecated: Use Load, which also accepts compressed files and returns
// a View; type-assert to *Graph when the concrete CSR type is required.
func LoadGraph(path string, symmetric bool) (*Graph, error) {
	return graph.LoadFile(path, symmetric)
}

// SaveGraph writes a graph to a file in text (binary=false) or binary
// format.
func SaveGraph(path string, g *Graph, binary bool) error {
	return graph.SaveFile(path, g, binary)
}

// ReadAdjacency parses the AdjacencyGraph / WeightedAdjacencyGraph text
// format from r.
func ReadAdjacency(r io.Reader, symmetric bool) (*Graph, error) {
	return graph.ReadAdjacency(r, symmetric)
}

// WriteAdjacency writes g in the AdjacencyGraph text format. It accepts
// any View (heap, compressed, mapped, or delta-overlaid).
func WriteAdjacency(w io.Writer, g View) error {
	return graph.WriteAdjacency(w, g)
}

// ReadEdgeList parses the whitespace-separated "src dst [weight]" format
// (SNAP-style, with #/% comments) and builds a graph with the given
// options.
func ReadEdgeList(r io.Reader, opts BuildOptions) (*Graph, error) {
	return graph.ReadEdgeList(r, opts)
}

// WriteEdgeList writes one "src dst [weight]" line per directed edge.
// It accepts any View.
func WriteEdgeList(w io.Writer, g View) error {
	return graph.WriteEdgeList(w, g)
}

// ComputeStats scans g and returns structural statistics. It accepts any
// View; the memory figure is 0 for backends that do not report one.
func ComputeStats(g View) Stats { return graph.ComputeStats(g) }

// ValidateGraph checks CSR invariants (and edge pairing for symmetric
// graphs).
func ValidateGraph(g *Graph) error { return graph.Validate(g) }

// HashWeight returns a deterministic, endpoint-symmetric edge-weight
// function with values in [1, maxW], as used for the paper's Bellman-Ford
// inputs; pass it to (*Graph).AddWeights.
func HashWeight(maxW int32) func(s, d uint32, i int64) int32 {
	return graph.HashWeight(maxW)
}

// Relabel returns a copy of g with vertex IDs renamed by perm
// (perm[old] = new; must be a bijection). Vertex reordering is the
// standard locality optimization for traversal-bound workloads.
func Relabel(g *Graph, perm []uint32) (*Graph, error) { return graph.Relabel(g, perm) }

// DegreeOrderPermutation returns the permutation renaming vertices in
// decreasing out-degree order, for use with Relabel.
func DegreeOrderPermutation(g View) []uint32 { return graph.DegreeOrderPermutation(g) }

// InducedSubgraph returns the subgraph induced by the kept vertices,
// densely renumbered, with old->new and new->old ID maps.
func InducedSubgraph(g *Graph, keep func(v uint32) bool) (*Graph, []uint32, []uint32, error) {
	return graph.InducedSubgraph(g, keep)
}

// FilterEdges returns a copy of g keeping only edges accepted by keep
// (Ligra's edge packing as a whole-graph operation).
func FilterEdges(g *Graph, keep func(s, d uint32, w int32) bool) (*Graph, error) {
	return graph.FilterEdges(g, keep)
}

// RMATParams configures the R-MAT generator.
type RMATParams = gen.RMATParams

// Generator parameter presets.
var (
	// PBBSRMAT matches the PBBS rMat defaults used in the paper.
	PBBSRMAT = gen.PBBSRMAT
	// Graph500RMAT matches the Graph500 parameters (heavier skew).
	Graph500RMAT = gen.Graph500RMAT
)

// RMAT generates a symmetrized power-law graph with 2^scale vertices and
// about edgeFactor*2^scale undirected edges.
func RMAT(scale, edgeFactor int, params RMATParams, seed uint64) (*Graph, error) {
	return gen.RMAT(scale, edgeFactor, params, seed)
}

// RMATDirected is RMAT without symmetrization.
func RMATDirected(scale, edgeFactor int, params RMATParams, seed uint64) (*Graph, error) {
	return gen.RMATDirected(scale, edgeFactor, params, seed)
}

// RandomLocal generates a uniform-degree symmetric graph with windowed
// locality (the paper's randLocal family).
func RandomLocal(n, degree, window int, seed uint64) (*Graph, error) {
	return gen.RandomLocal(n, degree, window, seed)
}

// Grid3D generates a 3-D torus mesh with side^3 vertices (the paper's
// 3d-grid family).
func Grid3D(side int) (*Graph, error) { return gen.Grid3D(side) }

// ErdosRenyi generates a symmetric uniform random graph.
func ErdosRenyi(n, m int, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, m, seed)
}

// WattsStrogatz generates a small-world graph: ring lattice with 2k
// neighbors per vertex and rewiring probability p.
func WattsStrogatz(n, k int, p float64, seed uint64) (*Graph, error) {
	return gen.WattsStrogatz(n, k, p, seed)
}

// CompressedGraph is a byte-compressed (Ligra+) graph; it implements View,
// so every algorithm runs on it unmodified.
type CompressedGraph = compress.CompressedGraph

// Compress encodes g with Ligra+ byte codes (difference-encoded varint
// adjacency lists).
func Compress(g *Graph) (*CompressedGraph, error) { return compress.Compress(g) }

// LoadView loads a graph file in any supported format (docs/FORMATS.md),
// sniffed by content: LIGRAGC1 compressed files load as *CompressedGraph
// (memory-mapped when mmap is set), LIGRAGO1 binary and text files load
// as the CSR *Graph. symmetric applies to text inputs only.
//
// Deprecated: Use Load, which takes the same parameters as a LoadOptions
// struct instead of positional booleans.
func LoadView(path string, symmetric, mmap bool) (View, error) {
	return compress.LoadView(path, symmetric, mmap)
}

// SaveCompressed writes c to path in the LIGRAGC1 compressed format.
func SaveCompressed(path string, c *CompressedGraph) error {
	return compress.WriteCompressedFile(path, c)
}

// LoadCompressed reads a LIGRAGC1 compressed file into the heap,
// validating it fully (corrupt input returns an error, never panics).
func LoadCompressed(path string) (*CompressedGraph, error) {
	return compress.ReadCompressedFile(path)
}

// OpenMapped memory-maps a LIGRAGC1 compressed file read-only: the graph's
// sections alias the page cache, so restarts are warm, co-hosted processes
// share one physical copy, and the heap footprint is ~0. On non-unix
// platforms (and big-endian hosts) it falls back to LoadCompressed.
func OpenMapped(path string) (*CompressedGraph, error) {
	return compress.OpenMapped(path)
}
