package algo

import (
	"math"
	"os"
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/seq"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

// modes are the edgeMap strategies every algorithm must agree across.
var modes = map[string]core.Options{
	"auto":          {},
	"sparse":        {Mode: core.ForceSparse},
	"dense":         {Mode: core.ForceDense},
	"dense-forward": {Mode: core.ForceDense, DenseForward: true},
}

// testGraphs returns a diverse family of small graphs.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := make(map[string]*graph.Graph)
	var err error
	add := func(name string, g *graph.Graph, e error) {
		if e != nil {
			t.Fatalf("%s: %v", name, e)
		}
		gs[name] = g
	}
	var g *graph.Graph
	g, err = gen.RMAT(9, 8, gen.PBBSRMAT, 1)
	add("rmat", g, err)
	g, err = gen.Grid3D(7)
	add("grid3d", g, err)
	g, err = gen.RandomLocal(600, 5, 64, 2)
	add("randlocal", g, err)
	g, err = gen.Path(200)
	add("path", g, err)
	g, err = gen.Star(100)
	add("star", g, err)
	g, err = gen.BinaryTree(127)
	add("tree", g, err)
	g, err = gen.ErdosRenyi(300, 500, 3) // likely disconnected
	add("er-sparse", g, err)
	g, err = gen.RMATDirected(8, 4, gen.PBBSRMAT, 4)
	add("rmat-directed", g, err)
	return gs
}

func TestBFSMatchesSequential(t *testing.T) {
	for gname, g := range testGraphs(t) {
		want := seq.BFSLevels(g, 0)
		for mname, opts := range modes {
			res := BFS(g, 0, opts)
			// Parent arrays are non-deterministic; validate the implied
			// levels instead: parent None iff unreachable, and parent at
			// distance level-1.
			lv := levelsFromParents(t, g, res.Parents, 0)
			for v := range want {
				if lv[v] != want[v] {
					t.Fatalf("%s/%s: level[%d] = %d, want %d", gname, mname, v, lv[v], want[v])
				}
			}
			wantVisited := 0
			for _, l := range want {
				if l >= 0 {
					wantVisited++
				}
			}
			if res.Visited != wantVisited {
				t.Errorf("%s/%s: Visited = %d, want %d", gname, mname, res.Visited, wantVisited)
			}
		}
	}
}

// levelsFromParents derives BFS levels from a parent array, checking tree
// validity (each parent edge must exist in the graph).
func levelsFromParents(t *testing.T, g graph.View, parents []uint32, source uint32) []int32 {
	t.Helper()
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -2 // unknown
	}
	var walk func(v uint32) int32
	walk = func(v uint32) int32 {
		if levels[v] != -2 {
			return levels[v]
		}
		if parents[v] == core.None {
			levels[v] = -1
			return -1
		}
		if v == source {
			levels[v] = 0
			return 0
		}
		p := parents[v]
		// The tree edge p->v must exist.
		found := false
		g.OutNeighbors(p, func(d uint32, _ int32) bool {
			if d == v {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("parent edge %d->%d not in graph", p, v)
		}
		levels[v] = walk(p) + 1
		return levels[v]
	}
	for v := uint32(0); int(v) < n; v++ {
		walk(v)
	}
	return levels
}

func TestBFSLevelsMatchesSequential(t *testing.T) {
	for gname, g := range testGraphs(t) {
		want := seq.BFSLevels(g, 0)
		for mname, opts := range modes {
			got := BFSLevels(g, 0, opts)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: level[%d] = %d, want %d", gname, mname, v, got[v], want[v])
				}
			}
		}
	}
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	for gname, g := range testGraphs(t) {
		if !g.Symmetric() {
			continue
		}
		want := seq.ConnectedComponents(g)
		for mname, opts := range modes {
			res := ConnectedComponents(g, opts)
			for v := range want {
				if res.Labels[v] != want[v] {
					t.Fatalf("%s/%s: label[%d] = %d, want %d", gname, mname, v, res.Labels[v], want[v])
				}
			}
			// Component count agrees with the number of distinct labels.
			distinct := map[uint32]bool{}
			for _, l := range want {
				distinct[l] = true
			}
			if res.Components != len(distinct) {
				t.Errorf("%s/%s: Components = %d, want %d", gname, mname, res.Components, len(distinct))
			}
		}
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	for gname, g := range testGraphs(t) {
		wg := g.AddWeights(graph.HashWeight(32))
		want := seq.Dijkstra(wg, 0)
		for mname, opts := range modes {
			res := BellmanFord(wg, 0, opts)
			if res.NegativeCycle {
				t.Fatalf("%s/%s: spurious negative cycle", gname, mname)
			}
			for v := range want {
				if res.Dist[v] != want[v] {
					t.Fatalf("%s/%s: dist[%d] = %d, want %d", gname, mname, v, res.Dist[v], want[v])
				}
			}
		}
	}
}

func TestBellmanFordUnweightedEqualsBFS(t *testing.T) {
	g := testGraphs(t)["rmat"]
	res := BellmanFord(g, 0, core.Options{})
	lv := seq.BFSLevels(g, 0)
	for v := range lv {
		want := int64(lv[v])
		if lv[v] == -1 {
			want = InfDist
		}
		if res.Dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}
}

func TestBellmanFordNegativeWeightsAndCycle(t *testing.T) {
	// Negative edge but no negative cycle: 0 ->(5) 1 ->(-3) 2.
	g1, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 2, Weight: -3},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	res := BellmanFord(g1, 0, core.Options{})
	if res.NegativeCycle {
		t.Error("flagged a DAG as having a negative cycle")
	}
	if res.Dist[2] != 2 {
		t.Errorf("dist[2] = %d, want 2", res.Dist[2])
	}
	wantDist, wantNeg := seq.BellmanFord(g1, 0)
	if wantNeg || wantDist[2] != 2 {
		t.Fatal("oracle disagrees")
	}

	// Negative cycle 1 -> 2 -> 1 with total weight -1.
	g2, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: -3}, {Src: 2, Dst: 1, Weight: 2},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	res2 := BellmanFord(g2, 0, core.Options{})
	if !res2.NegativeCycle {
		t.Error("negative cycle not detected")
	}
	if _, neg := seq.BellmanFord(g2, 0); !neg {
		t.Error("oracle missed the negative cycle")
	}
}

func TestPageRankMatchesSequential(t *testing.T) {
	for gname, g := range testGraphs(t) {
		want := seq.PageRank(g, 0.85, 1e-10, 50)
		for mname, base := range modes {
			opts := PageRankOptions{Damping: 0.85, Epsilon: 1e-10, MaxIterations: 50, EdgeMap: base}
			res := PageRank(g, opts)
			var mass float64
			for v := range want {
				if math.Abs(res.Ranks[v]-want[v]) > 1e-9 {
					t.Fatalf("%s/%s: rank[%d] = %v, want %v", gname, mname, v, res.Ranks[v], want[v])
				}
				mass += res.Ranks[v]
			}
			if math.Abs(mass-1) > 1e-6 {
				t.Errorf("%s/%s: total mass %v, want 1", gname, mname, mass)
			}
		}
	}
}

func TestPageRankSingleIteration(t *testing.T) {
	g := testGraphs(t)["rmat"]
	res := PageRank(g, PageRankOptions{Damping: 0.85, MaxIterations: 1})
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
}

func TestPageRankDeltaApproximatesPageRank(t *testing.T) {
	g := testGraphs(t)["rmat"]
	exact := seq.PageRank(g, 0.85, 1e-12, 100)
	res := PageRankDelta(g, PageRankOptions{Damping: 0.85, Epsilon: 1e-9, MaxIterations: 100}, 1e-4)
	// Rank ordering of the top vertices should agree and values be close.
	var maxErr float64
	for v := range exact {
		if e := math.Abs(res.Ranks[v] - exact[v]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		t.Errorf("PageRankDelta max error %v too large", maxErr)
	}
}

func TestRadiiMatchesMultiBFS(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "er-sparse"} {
		g := testGraphs(t)[gname]
		for mname, base := range modes {
			opts := RadiiOptions{K: 8, Seed: 5, EdgeMap: base}
			res := Radii(g, opts)
			want := seq.Eccentricities(g, res.Sources)
			for v := range want {
				if res.Radii[v] != want[v] {
					t.Fatalf("%s/%s: radii[%d] = %d, want %d", gname, mname, v, res.Radii[v], want[v])
				}
			}
		}
	}
}

func TestRadiiSourcesDistinct(t *testing.T) {
	g := testGraphs(t)["rmat"]
	res := Radii(g, RadiiOptions{K: 64, Seed: 9})
	seen := map[uint32]bool{}
	for _, s := range res.Sources {
		if seen[s] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[s] = true
	}
	if len(res.Sources) != 64 {
		t.Errorf("%d sources, want 64", len(res.Sources))
	}
}

func TestBCMatchesBrandes(t *testing.T) {
	for gname, g := range testGraphs(t) {
		want := seq.BC(g, 0)
		for mname, opts := range modes {
			res := BC(g, 0, opts)
			for v := range want {
				if math.Abs(res.Scores[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
					t.Fatalf("%s/%s: BC[%d] = %v, want %v", gname, mname, v, res.Scores[v], want[v])
				}
			}
		}
	}
}

func TestBCPathCounts(t *testing.T) {
	// Diamond 0->{1,2}->3: two shortest paths to 3.
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for mname, opts := range modes {
		res := BC(g, 0, opts)
		if res.NumPaths[3] != 2 {
			t.Errorf("%s: sigma(3) = %v, want 2", mname, res.NumPaths[3])
		}
		// delta(1) = delta(2) = 1/2 each (one path through each), delta(0)=2? No:
		// dependency of source on 1: sigma(1)/sigma(3) * (1+delta(3)) = 1/2.
		if math.Abs(res.Scores[1]-0.5) > 1e-12 || math.Abs(res.Scores[2]-0.5) > 1e-12 {
			t.Errorf("%s: delta(1)=%v delta(2)=%v, want 0.5", mname, res.Scores[1], res.Scores[2])
		}
	}
}

func TestKCore(t *testing.T) {
	// Complete graph K5: every vertex has coreness 4.
	k5, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	res := KCore(k5, core.Options{})
	for v, c := range res.Coreness {
		if c != 4 {
			t.Errorf("K5 coreness[%d] = %d, want 4", v, c)
		}
	}
	if res.MaxCore != 4 {
		t.Errorf("MaxCore = %d, want 4", res.MaxCore)
	}

	// Path: coreness 1 everywhere.
	p, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	res = KCore(p, core.Options{})
	for v, c := range res.Coreness {
		if c != 1 {
			t.Errorf("path coreness[%d] = %d, want 1", v, c)
		}
	}

	// K4 plus a pendant vertex: pendant has coreness 1, clique 3.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	res = KCore(g, core.Options{})
	want := []int32{3, 3, 3, 3, 1}
	for v := range want {
		if res.Coreness[v] != want[v] {
			t.Errorf("coreness[%d] = %d, want %d", v, res.Coreness[v], want[v])
		}
	}
}

func TestKCoreInvariant(t *testing.T) {
	// Against definition: in the subgraph induced by {v: coreness >= k},
	// every vertex has degree >= k, for every k up to MaxCore.
	g := testGraphs(t)["rmat"]
	res := KCore(g, core.Options{})
	for k := int32(1); k <= res.MaxCore; k++ {
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			if res.Coreness[v] < k {
				continue
			}
			deg := 0
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if res.Coreness[d] >= k {
					deg++
				}
				return true
			})
			if int32(deg) < k {
				t.Fatalf("k=%d: vertex %d has induced degree %d", k, v, deg)
			}
		}
	}
}

func TestMISIndependentAndMaximal(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "star", "tree", "er-sparse"} {
		g := testGraphs(t)[gname]
		res := MIS(g, 123, core.Options{})
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			if res.InSet[v] {
				g.OutNeighbors(v, func(d uint32, _ int32) bool {
					if d != v && res.InSet[d] {
						t.Fatalf("%s: adjacent vertices %d and %d both in MIS", gname, v, d)
					}
					return true
				})
			} else {
				hasInNeighbor := false
				g.OutNeighbors(v, func(d uint32, _ int32) bool {
					if res.InSet[d] {
						hasInNeighbor = true
						return false
					}
					return true
				})
				if !hasInNeighbor {
					t.Fatalf("%s: vertex %d excluded with no MIS neighbor (not maximal)", gname, v)
				}
			}
		}
	}
}

func TestTriangleCountMatchesSequential(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "randlocal", "tree", "er-sparse"} {
		g := testGraphs(t)[gname]
		want := seq.TriangleCount(g)
		if got := TriangleCount(g); got != want {
			t.Errorf("%s: TriangleCount = %d, want %d", gname, got, want)
		}
	}
}

func TestTriangleCountKnownValues(t *testing.T) {
	k4, _ := gen.Complete(4)
	if got := TriangleCount(k4); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	k5, _ := gen.Complete(5)
	if got := TriangleCount(k5); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
	p, _ := gen.Path(100)
	if got := TriangleCount(p); got != 0 {
		t.Errorf("path triangles = %d, want 0", got)
	}
	c3, _ := gen.Cycle(3)
	if got := TriangleCount(c3); got != 1 {
		t.Errorf("C3 triangles = %d, want 1", got)
	}
}

func TestBFSFromEveryVertexSmall(t *testing.T) {
	// Exhaustive over sources on a small irregular graph.
	g := testGraphs(t)["er-sparse"]
	for src := uint32(0); src < 50; src++ {
		want := seq.BFSLevels(g, src)
		got := BFSLevels(g, src, core.Options{})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("src=%d: level[%d] = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
}
