package algo

import (
	"context"
	"fmt"

	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/spmv"
)

// This file is the execution-backend abstraction: the three algorithms
// that have GraphBLAS-style semiring kernels (internal/spmv) can run via
// edgeMap or via SpMV, selected per run by Params.Backend. Both backends
// produce bit-identical results (enforced by internal/spmv's property
// tests), which is why the backend is excluded from Params.Canonical —
// a cached result from either backend answers a query for the other.

// Backend names accepted by Params.Backend.
const (
	// BackendEdgeMap is the frontier-based edgeMap execution the paper
	// describes; every algorithm supports it. It is the default.
	BackendEdgeMap = "edgemap"
	// BackendSpMV executes via the semiring kernels in internal/spmv;
	// only the algorithms with kernels (SpMVKernels) accept it.
	BackendSpMV = "spmv"
	// BackendAuto picks per algorithm and graph shape: see ResolveBackend.
	BackendAuto = "auto"
)

// spmvKernels names the algorithms with an spmv kernel.
var spmvKernels = map[string]bool{"bfs": true, "pagerank": true, "triangles": true}

// HasSpMVKernel reports whether the named algorithm can execute on the
// spmv backend.
func HasSpMVKernel(name string) bool { return spmvKernels[name] }

// ResolveBackend maps Params.Backend to the backend a run of the named
// algorithm on g will execute on:
//
//   - "" or "edgemap": edgeMap, always.
//   - "spmv": the semiring kernel; an error if the algorithm has none.
//   - "auto": edgemap for algorithms without a kernel; otherwise the
//     shape rule measured by `ligra-bench -experiment spmv` (see
//     docs/PERFORMANCE.md): spmv whenever the view exposes raw CSR
//     arrays, edgemap otherwise. The scale-16 race has every kernel
//     winning on CSR — PageRank ~3.5x, triangles ~2x, and BFS by
//     15-17% even on the low-degree high-diameter 3d-grid, where the
//     word-walk push beats sparse edgeMap's frontier-array build.
//     Compressed / mapped / snapshot views reach the kernels through
//     neighbor iterators, where spmv has no gather advantage over
//     edgeMap's tuned decode paths, so they stay on edgemap.
//
// Anything else is an error (same wording contract as Params.Validate).
func ResolveBackend(name string, g graph.View, p Params) (string, error) {
	switch p.Backend {
	case "", BackendEdgeMap:
		return BackendEdgeMap, nil
	case BackendSpMV:
		if !HasSpMVKernel(name) {
			return "", fmt.Errorf("algorithm %q has no spmv kernel (backends: bfs, pagerank, triangles)", name)
		}
		return BackendSpMV, nil
	case BackendAuto:
		if !HasSpMVKernel(name) {
			return BackendEdgeMap, nil
		}
		return autoBackend(name, g), nil
	default:
		return "", fmt.Errorf("unknown backend %q (have edgemap | spmv | auto)", p.Backend)
	}
}

func autoBackend(name string, g graph.View) string {
	if _, isCSR := g.(*graph.Graph); !isCSR {
		return BackendEdgeMap
	}
	return BackendSpMV
}

// backendCtx applies the EdgeMap extras that are meaningful to both
// backends — the fallback context and the per-call proc lease — mirroring
// what core's edgeMap does internally with the same Options.
func backendCtx(ctx context.Context, p Params) context.Context {
	if ctx == nil {
		ctx = p.EdgeMap.Context
	}
	if p.EdgeMap.Procs > 0 {
		ctx = parallel.WithProcs(ctx, p.EdgeMap.Procs)
	}
	return ctx
}

// spmvBFSRun executes the bfs runner on the spmv backend. Mode and
// Threshold keep their edgeMap meaning (per-round direction forcing and
// dense-switch threshold); "dense-forward" degrades to the pull kernel,
// which is the closest spmv realization.
func spmvBFSRun(ctx context.Context, g graph.View, p Params) (RunResult, error) {
	o := p.EdgeMapOptions()
	res, err := spmv.BFSLevels(backendCtx(ctx, p), g, p.Source, spmv.BFSOptions{
		Mode:      o.Mode,
		Threshold: o.Threshold,
	})
	if res == nil {
		return RunResult{}, err
	}
	return RunResult{
		Summary: fmt.Sprintf("BFS from %d: visited %d vertices in %d rounds", p.Source, res.Visited, res.Rounds),
		Details: map[string]any{"source": p.Source, "visited": res.Visited, "rounds": res.Rounds, "backend": BackendSpMV},
	}, roundErr("bfs", res.Rounds, err)
}

// spmvPageRankRun executes the pagerank runner on the spmv backend with
// the same defaults as the edgeMap path.
func spmvPageRankRun(ctx context.Context, g graph.View, p Params) (RunResult, error) {
	d := DefaultPageRankOptions()
	res, err := spmv.PageRank(backendCtx(ctx, p), g, spmv.PageRankOptions{
		Damping:       d.Damping,
		Epsilon:       d.Epsilon,
		MaxIterations: d.MaxIterations,
	})
	return RunResult{
		Summary: fmt.Sprintf("PageRank: %d iterations, final L1 change %.3g", res.Iterations, res.Err),
		Details: map[string]any{"iterations": res.Iterations, "l1_change": res.Err, "backend": BackendSpMV},
	}, roundErr("pagerank", res.Iterations, err)
}

// spmvTrianglesRun executes the triangles runner on the spmv backend.
func spmvTrianglesRun(ctx context.Context, g graph.View, p Params) (RunResult, error) {
	count, err := spmv.TriangleCount(backendCtx(ctx, p), g)
	return RunResult{
		Summary: fmt.Sprintf("Triangles: %d", count),
		Details: map[string]any{"triangles": count, "backend": BackendSpMV},
	}, roundErr("triangles", 0, err)
}
