package algo

import (
	"reflect"
	"strings"
	"testing"

	"ligra/internal/compress"
	"ligra/internal/gen"
)

// TestCanonicalStripsBackend is the cache-correctness regression test for
// the Backend field: the backends are bit-identical, so the canonical
// cache key must not distinguish them — an edgemap result must be served
// to an spmv request and vice versa.
func TestCanonicalStripsBackend(t *testing.T) {
	base := Params{Source: 7, Mode: "dense", Threshold: 99}
	for _, backend := range []string{"", BackendEdgeMap, BackendSpMV, BackendAuto} {
		p := base
		p.Backend = backend
		if got, want := p.Canonical(), base.Canonical(); got != want {
			t.Fatalf("Backend=%q changed the canonical key:\n got %q\nwant %q", backend, got, want)
		}
	}
	if strings.Contains(base.Canonical(), "backend") {
		t.Fatalf("canonical key mentions backend: %q", base.Canonical())
	}
}

// TestCanonicalNoCollisions checks that stripping Backend did not merge
// keys that must stay distinct: every other serializable field still
// separates.
func TestCanonicalNoCollisions(t *testing.T) {
	variants := []Params{
		{},
		{Source: 1},
		{Seed: 2},
		{K: 3},
		{Delta: 4},
		{Alpha: 0.5},
		{Eps: 1e-3},
		{Mode: "sparse"},
		{Threshold: 6},
		{Target: 7},
		{Landmarks: []uint32{8}},
		{Landmarks: []uint32{8, 9}},
	}
	seen := make(map[string]int)
	for i, p := range variants {
		key := p.Canonical()
		if j, dup := seen[key]; dup {
			t.Fatalf("variants %d and %d collide on %q", j, i, key)
		}
		seen[key] = i
	}
}

func TestValidateBackend(t *testing.T) {
	for _, backend := range []string{"", BackendEdgeMap, BackendSpMV, BackendAuto} {
		if err := (Params{Backend: backend}).Validate(); err != nil {
			t.Fatalf("Backend=%q: unexpected error %v", backend, err)
		}
	}
	err := (Params{Backend: "graphblas"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("bad backend: err = %v, want unknown-backend error", err)
	}
}

func TestResolveBackend(t *testing.T) {
	g, err := gen.RMAT(8, 16, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	c, err := compress.Compress(g)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}

	// Explicit edgemap (or empty) always resolves, kernel or not.
	for _, name := range []string{"bfs", "components"} {
		for _, b := range []string{"", BackendEdgeMap} {
			got, err := ResolveBackend(name, g, Params{Backend: b})
			if err != nil || got != BackendEdgeMap {
				t.Fatalf("ResolveBackend(%s, %q) = %q, %v", name, b, got, err)
			}
		}
	}
	// Explicit spmv: ok for kernels, an error elsewhere.
	for _, name := range []string{"bfs", "pagerank", "triangles"} {
		got, err := ResolveBackend(name, g, Params{Backend: BackendSpMV})
		if err != nil || got != BackendSpMV {
			t.Fatalf("ResolveBackend(%s, spmv) = %q, %v", name, got, err)
		}
	}
	if _, err := ResolveBackend("components", g, Params{Backend: BackendSpMV}); err == nil {
		t.Fatalf("ResolveBackend(components, spmv): want error")
	}
	// Unknown backend string is rejected (same contract as Validate).
	if _, err := ResolveBackend("bfs", g, Params{Backend: "nope"}); err == nil {
		t.Fatalf("ResolveBackend(bfs, nope): want error")
	}
	// Auto: non-kernel algorithms fall back to edgemap; pagerank and
	// triangles pick spmv on CSR views and edgemap on compressed views.
	if got, _ := ResolveBackend("components", g, Params{Backend: BackendAuto}); got != BackendEdgeMap {
		t.Fatalf("auto components = %q, want edgemap", got)
	}
	for _, name := range []string{"pagerank", "triangles"} {
		if got, _ := ResolveBackend(name, g, Params{Backend: BackendAuto}); got != BackendSpMV {
			t.Fatalf("auto %s on heap = %q, want spmv", name, got)
		}
		if got, _ := ResolveBackend(name, c, Params{Backend: BackendAuto}); got != BackendEdgeMap {
			t.Fatalf("auto %s on compressed = %q, want edgemap", name, got)
		}
	}
	// Auto bfs picks spmv on any CSR view (the scale-16 race has the
	// word-walk push winning on every suite shape) and edgemap elsewhere.
	if got, _ := ResolveBackend("bfs", g, Params{Backend: BackendAuto}); got != BackendSpMV {
		t.Fatalf("auto bfs on CSR = %q, want spmv", got)
	}
	if got, _ := ResolveBackend("bfs", c, Params{Backend: BackendAuto}); got != BackendEdgeMap {
		t.Fatalf("auto bfs on compressed = %q, want edgemap", got)
	}
}

// TestRunnersCrossBackendParity runs each kernel-backed runner under both
// backends and checks the user-visible result is identical apart from the
// backend detail itself.
func TestRunnersCrossBackendParity(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	for _, name := range []string{"bfs", "pagerank", "triangles"} {
		runner, ok := FindRunner(name)
		if !ok {
			t.Fatalf("no runner %q", name)
		}
		em, err := runner.Run(nil, g, Params{Backend: BackendEdgeMap})
		if err != nil {
			t.Fatalf("%s edgemap: %v", name, err)
		}
		sv, err := runner.Run(nil, g, Params{Backend: BackendSpMV})
		if err != nil {
			t.Fatalf("%s spmv: %v", name, err)
		}
		if em.Summary != sv.Summary {
			t.Fatalf("%s summaries diverge:\n edgemap %q\n spmv    %q", name, em.Summary, sv.Summary)
		}
		if em.Details["backend"] != BackendEdgeMap || sv.Details["backend"] != BackendSpMV {
			t.Fatalf("%s backend details = %v / %v", name, em.Details["backend"], sv.Details["backend"])
		}
		delete(em.Details, "backend")
		delete(sv.Details, "backend")
		if !reflect.DeepEqual(em.Details, sv.Details) {
			t.Fatalf("%s details diverge:\n edgemap %v\n spmv    %v", name, em.Details, sv.Details)
		}
	}
}
