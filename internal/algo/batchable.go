package algo

import (
	"fmt"
)

// This file defines the contract between the serving-side batch collector
// (internal/server/batch) and the algorithm layer: which algorithms can
// share one ClusterBFS sweep, what per-vertex probes each needs, and how a
// per-source slice of a ClusterBFSResult becomes the same RunResult the
// unbatched runner produces. The single-query runners for reach and
// landmarks call the same BatchProbes/BatchResult helpers with a
// one-source sweep, so batched and unbatched answers agree by
// construction rather than by parallel maintenance.

// Batchable reports whether the named algorithm's queries can be folded
// into a shared ClusterBFS sweep: each query contributes one source bit,
// and its entire answer is recoverable from that source's slice of the
// sweep (levels at probes, reach counts, depth).
func Batchable(name string) bool {
	switch name {
	case "bfs", "reach", "landmarks":
		return true
	}
	return false
}

// BatchProbes returns the vertices whose per-source levels the named
// algorithm needs recorded during the sweep (nil when aggregates
// suffice).
func BatchProbes(name string, p Params) []uint32 {
	switch name {
	case "reach":
		return []uint32{p.Target}
	case "landmarks":
		return p.Landmarks
	}
	return nil
}

// MaxLandmarks bounds the landmark list: each landmark is a probe row
// carried through the whole sweep, and 64 matches the source budget.
const MaxLandmarks = 64

// BatchValidate checks the algorithm-specific parameters of a batchable
// query against a graph of n vertices. It is shared by the single-query
// runners and the server's batch admission, so both reject with identical
// errors.
func BatchValidate(name string, n int, p Params) error {
	switch name {
	case "reach":
		if int(p.Target) >= n {
			return fmt.Errorf("target vertex %d out of range (graph has %d vertices)", p.Target, n)
		}
	case "landmarks":
		if len(p.Landmarks) == 0 {
			return fmt.Errorf("landmarks algorithm requires a non-empty landmarks list")
		}
		if len(p.Landmarks) > MaxLandmarks {
			return fmt.Errorf("too many landmarks: %d (max %d)", len(p.Landmarks), MaxLandmarks)
		}
		for _, l := range p.Landmarks {
			if int(l) >= n {
				return fmt.Errorf("landmark vertex %d out of range (graph has %d vertices)", l, n)
			}
		}
	}
	return nil
}

// BatchResult extracts source i's answer from a (possibly shared)
// ClusterBFS sweep as the RunResult the named algorithm reports. For
// "bfs" the output is formatted identically to the bfs runner's, so a
// batched caller cannot tell it shared a sweep.
func BatchResult(name string, res *ClusterBFSResult, i int, p Params) RunResult {
	switch name {
	case "bfs":
		visited := int(res.Reached[i])
		rounds := int(res.Depth[i])
		// Batched sweeps are ClusterBFS, an edgeMap execution: the backend
		// detail must match the direct bfs runner's edgeMap path so the two
		// stay interchangeable in the result cache.
		return RunResult{
			Summary: fmt.Sprintf("BFS from %d: visited %d vertices in %d rounds", p.Source, visited, rounds),
			Details: map[string]any{"source": p.Source, "visited": visited, "rounds": rounds, "backend": BackendEdgeMap},
		}
	case "reach":
		dist := res.LevelTo(i, p.Target)
		if dist >= 0 {
			return RunResult{
				Summary: fmt.Sprintf("Reach from %d to %d: reachable (distance %d)", p.Source, p.Target, dist),
				Details: map[string]any{"source": p.Source, "target": p.Target, "reachable": true, "distance": int64(dist)},
			}
		}
		return RunResult{
			Summary: fmt.Sprintf("Reach from %d to %d: unreachable", p.Source, p.Target),
			Details: map[string]any{"source": p.Source, "target": p.Target, "reachable": false, "distance": int64(-1)},
		}
	case "landmarks":
		dists := make([]int64, len(p.Landmarks))
		reachable := 0
		for j, l := range p.Landmarks {
			d := res.LevelTo(i, l)
			dists[j] = int64(d)
			if d >= 0 {
				reachable++
			}
		}
		return RunResult{
			Summary: fmt.Sprintf("Landmarks from %d: %d/%d reachable", p.Source, reachable, len(p.Landmarks)),
			Details: map[string]any{"source": p.Source, "landmarks": len(p.Landmarks), "reachable": reachable, "distances": dists},
		}
	}
	return RunResult{Summary: fmt.Sprintf("%s: no batch extraction", name)}
}

// EstimateBytes approximates the RunResult's heap footprint for the
// result cache's byte budget: the summary string plus each detail's key
// and boxed value (slices counted element-wise).
func (r RunResult) EstimateBytes() int64 {
	b := int64(len(r.Summary))
	for k, v := range r.Details {
		b += int64(len(k)) + 48
		switch s := v.(type) {
		case []int64:
			b += 8 * int64(len(s))
		case []int32:
			b += 4 * int64(len(s))
		case []float64:
			b += 8 * int64(len(s))
		case string:
			b += int64(len(s))
		}
	}
	return b
}
