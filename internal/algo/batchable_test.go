package algo

import (
	"reflect"
	"testing"
)

// TestBatchResultMatchesRunners: a mixed batch of bfs / reach / landmarks
// queries answered from ONE shared sweep must produce RunResults deeply
// equal to each query's own unbatched runner invocation — the
// "semantically invisible" guarantee the serving batch collector relies
// on.
func TestBatchResultMatchesRunners(t *testing.T) {
	for gname, g := range testGraphs(t) {
		n := g.NumVertices()
		type query struct {
			algo string
			p    Params
		}
		var queries []query
		for i := 0; i < 24; i++ {
			src := uint32(hashU64(3, uint64(i)) % uint64(n))
			switch i % 3 {
			case 0:
				queries = append(queries, query{"bfs", Params{Source: src}})
			case 1:
				queries = append(queries, query{"reach", Params{Source: src, Target: uint32(hashU64(5, uint64(i)) % uint64(n))}})
			default:
				queries = append(queries, query{"landmarks", Params{Source: src, Landmarks: []uint32{
					uint32(hashU64(7, uint64(i)) % uint64(n)),
					uint32(hashU64(9, uint64(i)) % uint64(n)),
				}}})
			}
		}
		sources := make([]uint32, len(queries))
		var probes []uint32
		for i, q := range queries {
			sources[i] = q.p.Source
			probes = append(probes, BatchProbes(q.algo, q.p)...)
		}
		res, err := ClusterBFSCtx(nil, g, sources, ClusterBFSOptions{Probes: probes})
		if err != nil {
			t.Fatalf("%s: %v", gname, err)
		}
		for i, q := range queries {
			runner, ok := FindRunner(q.algo)
			if !ok {
				t.Fatalf("no runner %q", q.algo)
			}
			want, err := runner.Run(nil, g, q.p)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, q.algo, err)
			}
			got := BatchResult(q.algo, res, i, q.p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: batched %s query %d diverges:\n got %+v\nwant %+v", gname, q.algo, i, got, want)
			}
		}
	}
}

func TestBatchableSet(t *testing.T) {
	for _, name := range []string{"bfs", "reach", "landmarks"} {
		if !Batchable(name) {
			t.Fatalf("%s should be batchable", name)
		}
		if _, ok := FindRunner(name); !ok {
			t.Fatalf("batchable algorithm %s has no runner", name)
		}
	}
	for _, name := range []string{"pagerank", "components", "bc"} {
		if Batchable(name) {
			t.Fatalf("%s must not be batchable", name)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	if err := BatchValidate("reach", 10, Params{Target: 10}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := BatchValidate("reach", 10, Params{Target: 9}); err != nil {
		t.Fatal(err)
	}
	if err := BatchValidate("landmarks", 10, Params{}); err == nil {
		t.Fatal("empty landmarks accepted")
	}
	if err := BatchValidate("landmarks", 10, Params{Landmarks: []uint32{3, 10}}); err == nil {
		t.Fatal("out-of-range landmark accepted")
	}
	if err := BatchValidate("landmarks", 10, Params{Landmarks: make([]uint32, MaxLandmarks+1)}); err == nil {
		t.Fatal("oversized landmark list accepted")
	}
	if err := BatchValidate("bfs", 10, Params{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunResultEstimateBytes(t *testing.T) {
	r := RunResult{
		Summary: "x",
		Details: map[string]any{"distances": []int64{1, 2, 3}, "source": uint32(4)},
	}
	if b := r.EstimateBytes(); b < 24 {
		t.Fatalf("slice bytes not counted: %d", b)
	}
}
