package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// BCResult carries the output of single-source betweenness centrality.
type BCResult struct {
	// Scores[v] is the dependency of the source on v (Brandes' delta),
	// i.e. v's contribution to betweenness centrality from this source.
	Scores []float64
	// NumPaths[v] is the number of shortest paths from the source to v.
	NumPaths []float64
	// Levels[v] is the BFS level of v from the source (-1 if unreachable).
	Levels []int32
	// Rounds is the number of forward edgeMap rounds.
	Rounds int
}

// BC runs the paper's betweenness-centrality application (§5.2): Brandes'
// algorithm for one source, with both the forward shortest-path counting
// sweep and the backward dependency accumulation expressed as edgeMaps.
//
// Forward: path counts accumulate into unvisited destinations (plain adds
// in dense rounds where each destination has one writer, fetch-and-add in
// sparse rounds); a CAS on the level array gives exactly-once frontier
// membership. Backward: the saved level frontiers are replayed deepest
// first over the transposed edges, accumulating Brandes' dependency
// delta[d] += sigma[d]/sigma[s] * (1 + delta[s]) from each successor s one
// level deeper.
func BC(g graph.View, source uint32, opts core.Options) *BCResult {
	res, err := BCCtx(nil, g, source, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// BCCtx is BC with cooperative cancellation, observed per chunk in both
// the forward and the backward sweep. On interruption it returns the
// state computed so far — Levels and NumPaths are valid for all completed
// forward rounds; Scores holds whatever dependency mass the backward
// sweep had accumulated — together with a *RoundError (its Round counts
// forward rounds during the forward phase, and remaining backward levels
// during the backward phase).
func BCCtx(ctx context.Context, g graph.View, source uint32, opts core.Options) (*BCResult, error) {
	n := g.NumVertices()
	numPaths := atomicx.NewFloat64Slice(n)
	levels := make([]int32, n)
	parallel.Fill(levels, int32(-1))
	levels[source] = 0
	numPaths.StoreNonAtomic(int(source), 1)

	// --- Forward phase: count shortest paths level by level. ---
	//
	// Cond is "not yet visited", where visited is only updated by a
	// vertexMap *between* rounds (exactly as in the paper's BC code).
	// Using the level array for Cond would be wrong: in a dense round the
	// early-exit would stop scanning a destination after its first
	// contribution and lose path counts, so Cond must stay true for the
	// whole round while contributions accumulate.
	visited := make([]uint32, n)
	visited[source] = 1
	round := int32(0)
	fwd := core.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			numPaths.AddNonAtomic(int(d), numPaths.LoadNonAtomic(int(s)))
			if levels[d] == -1 {
				levels[d] = roundLoad(&round)
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			numPaths.Add(int(d), numPaths.Load(int(s)))
			return atomicx.CASInt32(&levels[d], -1, roundLoad(&round))
		},
		Cond: func(d uint32) bool { return visited[d] == 0 },
	}

	delta := atomicx.NewFloat64Slice(n)
	result := func() *BCResult {
		return &BCResult{
			Scores:   delta.ToSlice(),
			NumPaths: numPaths.ToSlice(),
			Levels:   levels,
			Rounds:   int(roundLoad(&round)) - 1,
		}
	}

	frontiers := []*core.VertexSubset{core.NewSingle(n, source)}
	frontier := frontiers[0]
	for !frontier.IsEmpty() {
		atomic.AddInt32(&round, 1)
		next, err := core.EdgeMapCtx(ctx, g, frontier, fwd, opts)
		if err != nil {
			return result(), roundErr("bc", int(roundLoad(&round))-1, err)
		}
		frontier = next
		core.VertexMap(frontier, func(v uint32) { visited[v] = 1 })
		if !frontier.IsEmpty() {
			frontiers = append(frontiers, frontier)
		}
	}
	rounds := len(frontiers) - 1

	// --- Backward phase: accumulate dependencies in reverse level order.
	// An original edge (d -> s) with level(s) == level(d)+1 carries
	// dependency back from s to d; running edgeMap on the transposed view
	// with the deeper frontier as sources pushes exactly along those
	// reversed edges, and Cond restricts targets to the next-shallower
	// level.
	backRound := int32(0)
	bwd := core.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			contrib := numPaths.LoadNonAtomic(int(d)) / numPaths.LoadNonAtomic(int(s)) *
				(1 + delta.LoadNonAtomic(int(s)))
			delta.AddNonAtomic(int(d), contrib)
			return true
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			contrib := numPaths.LoadNonAtomic(int(d)) / numPaths.LoadNonAtomic(int(s)) *
				(1 + delta.Load(int(s)))
			delta.Add(int(d), contrib)
			return true
		},
		Cond: func(d uint32) bool {
			return levels[d]+1 == atomic.LoadInt32(&backRound)
		},
	}
	gT := TransposeView(g)
	bwdOpts := opts
	bwdOpts.NoOutput = true
	for i := len(frontiers) - 1; i >= 1; i-- {
		atomic.StoreInt32(&backRound, int32(i))
		if _, err := core.EdgeMapCtx(ctx, gT, frontiers[i], bwd, bwdOpts); err != nil {
			return result(), roundErr("bc-backward", i, err)
		}
	}

	return &BCResult{
		Scores:   delta.ToSlice(),
		NumPaths: numPaths.ToSlice(),
		Levels:   levels,
		Rounds:   rounds,
	}, nil
}

// TransposeView returns a graph.View presenting g with every edge
// reversed; for symmetric graphs it returns g itself.
func TransposeView(g graph.View) graph.View {
	if g.Symmetric() {
		return g
	}
	if t, ok := g.(transposeView); ok {
		return t.g
	}
	return transposeView{g}
}

// transposeView flips the edge orientation of an arbitrary graph.View.
type transposeView struct {
	g graph.View
}

func (t transposeView) NumVertices() int       { return t.g.NumVertices() }
func (t transposeView) NumEdges() int64        { return t.g.NumEdges() }
func (t transposeView) OutDegree(v uint32) int { return t.g.InDegree(v) }
func (t transposeView) InDegree(v uint32) int  { return t.g.OutDegree(v) }
func (t transposeView) Weighted() bool         { return t.g.Weighted() }
func (t transposeView) Symmetric() bool        { return t.g.Symmetric() }

func (t transposeView) OutNeighbors(v uint32, fn func(d uint32, w int32) bool) {
	t.g.InNeighbors(v, fn)
}

func (t transposeView) InNeighbors(v uint32, fn func(s uint32, w int32) bool) {
	t.g.OutNeighbors(v, fn)
}
