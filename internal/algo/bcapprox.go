package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// atomicAdd64 is a shorthand for atomic addition on a slice element.
func atomicAdd64(addr *int64, delta int64) { atomic.AddInt64(addr, delta) }

// BCApproxResult carries the output of sampled betweenness centrality.
type BCApproxResult struct {
	// Scores[v] is the estimated betweenness centrality of v: the sum of
	// single-source dependencies over the sampled sources, scaled by
	// n/|sample| (the Brandes-Pich estimator).
	Scores []float64
	// Sources are the sampled roots.
	Sources []uint32
}

// BCApprox estimates betweenness centrality by running the paper's
// single-source BC from k sampled sources and scaling — the standard
// sampling estimator, matching how the paper's evaluation exercises BC
// "from a (sampled) vertex" while providing whole-graph scores.
func BCApprox(g graph.View, k int, seed uint64, opts core.Options) *BCApproxResult {
	res, err := BCApproxCtx(nil, g, k, seed, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// BCApproxCtx is BCApprox with cooperative cancellation, observed between
// sampled sources and inside each per-source BC run. On interruption it
// returns the estimator computed from the sources completed so far
// (scaled by n/completed; all-zero if none completed), with a
// *RoundError whose Round counts completed sources.
func BCApproxCtx(ctx context.Context, g graph.View, k int, seed uint64, opts core.Options) (*BCApproxResult, error) {
	n := g.NumVertices()
	if k <= 0 || k > n {
		k = min(n, 16)
	}
	sources := sampleVertices(n, k, seed)
	scores := make([]float64, n)
	done := 0
	partial := func(err error) (*BCApproxResult, error) {
		if done > 0 {
			scale := float64(n) / float64(done)
			parallel.For(n, func(i int) { scores[i] *= scale })
		}
		return &BCApproxResult{Scores: scores, Sources: sources[:done]},
			roundErr("bc-approx", done, err)
	}
	for _, s := range sources {
		res, err := BCCtx(ctx, g, s, opts)
		if err != nil {
			// Discard the interrupted source's partial dependencies: the
			// estimator only sums fully accumulated per-source scores.
			return partial(err)
		}
		parallel.For(n, func(i int) {
			scores[i] += res.Scores[i]
		})
		done++
	}
	return partial(nil)
}

// LocalClusteringCoefficients returns, for every vertex of a symmetric
// simple graph, the fraction of its neighbor pairs that are connected
// (triangles(v) / (deg(v) choose 2); 0 for degree < 2). It reuses the
// rank-ordered triangle machinery to count per-vertex triangles.
func LocalClusteringCoefficients(g graph.View) []float64 {
	n := g.NumVertices()
	triPerVertex := make([]int64, n)
	countTrianglesPerVertex(g, triPerVertex)
	out := make([]float64, n)
	parallel.For(n, func(i int) {
		deg := int64(g.OutDegree(uint32(i)))
		if deg < 2 {
			return
		}
		out[i] = float64(triPerVertex[i]) / float64(deg*(deg-1)/2)
	})
	return out
}

// countTrianglesPerVertex accumulates, per vertex, the number of
// triangles containing it (each triangle credited to all three corners).
func countTrianglesPerVertex(g graph.View, acc []int64) {
	n := g.NumVertices()
	if n == 0 {
		return
	}
	higher := func(v, d uint32) bool {
		dv, dd := g.OutDegree(v), g.OutDegree(d)
		return dd > dv || (dd == dv && d > v)
	}
	fwdDeg := make([]int64, n)
	parallel.For(n, func(i int) {
		v := uint32(i)
		var c int64
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if higher(v, d) {
				c++
			}
			return true
		})
		fwdDeg[i] = c
	})
	offsets := make([]int64, n+1)
	total := parallel.ScanExclusive(fwdDeg, offsets[:n])
	offsets[n] = total
	fwd := make([]uint32, total)
	parallel.For(n, func(i int) {
		v := uint32(i)
		k := offsets[i]
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if higher(v, d) {
				fwd[k] = d
				k++
			}
			return true
		})
		parallel.Sort(fwd[offsets[i]:k])
	})
	row := func(v uint32) []uint32 { return fwd[offsets[v]:offsets[v+1]] }
	// Credit each triangle (v, u, w) with u, w in fwd(v), w in fwd(u) to
	// all three corners. Atomic adds: multiple v race on shared corners.
	parallel.For(n, func(i int) {
		v := uint32(i)
		rv := row(v)
		for _, u := range rv {
			ru := row(u)
			// merge-intersect rv x ru, crediting each hit.
			a, b := rv, ru
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				switch {
				case a[x] < b[y]:
					x++
				case a[x] > b[y]:
					y++
				default:
					w := a[x]
					atomicAdd64(&acc[v], 1)
					atomicAdd64(&acc[u], 1)
					atomicAdd64(&acc[w], 1)
					x++
					y++
				}
			}
		}
	})
}
