package algo

import (
	"math"
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/seq"
)

func TestBCApproxExactWhenAllSources(t *testing.T) {
	// With k = n the estimator is exact (scale factor n/n = 1): compare
	// against the sum of sequential Brandes over all sources.
	g, err := gen.ErdosRenyi(60, 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	want := make([]float64, n)
	for s := uint32(0); int(s) < n; s++ {
		d := seq.BC(g, s)
		for v := range d {
			want[v] += d[v]
		}
	}
	res := BCApprox(g, n, 3, core.Options{})
	if len(res.Sources) != n {
		t.Fatalf("%d sources, want %d", len(res.Sources), n)
	}
	for v := range want {
		if math.Abs(res.Scores[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("score[%d] = %v, want %v", v, res.Scores[v], want[v])
		}
	}
}

func TestBCApproxRanksStarCenterHighest(t *testing.T) {
	g, err := gen.Star(50)
	if err != nil {
		t.Fatal(err)
	}
	res := BCApprox(g, 10, 7, core.Options{})
	for v := 1; v < 50; v++ {
		if res.Scores[v] > res.Scores[0] {
			t.Fatalf("leaf %d scored above the center", v)
		}
	}
	if res.Scores[0] == 0 {
		t.Error("center scored zero")
	}
}

func TestBCApproxDefaultsK(t *testing.T) {
	g, err := gen.Cycle(100)
	if err != nil {
		t.Fatal(err)
	}
	res := BCApprox(g, 0, 1, core.Options{})
	if len(res.Sources) != 16 {
		t.Errorf("default k = %d, want 16", len(res.Sources))
	}
}

func TestLocalClusteringCoefficients(t *testing.T) {
	// Complete graph: every coefficient is 1.
	k5, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range LocalClusteringCoefficients(k5) {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("K5 lcc[%d] = %v, want 1", v, c)
		}
	}
	// Path: no triangles, all zero.
	p, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range LocalClusteringCoefficients(p) {
		if c != 0 {
			t.Errorf("path lcc[%d] = %v, want 0", v, c)
		}
	}
	// Triangle with a pendant: pendant 0, triangle corners:
	// corner 2 (attached to pendant) has deg 3 -> 1/3; others 1.
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	lcc := LocalClusteringCoefficients(g)
	want := []float64{1, 1, 1.0 / 3, 0}
	for v := range want {
		if math.Abs(lcc[v]-want[v]) > 1e-12 {
			t.Errorf("lcc[%d] = %v, want %v", v, lcc[v], want[v])
		}
	}
}

func TestClusteringConsistentWithTriangles(t *testing.T) {
	// Sum over vertices of per-vertex triangles = 3 * total triangles.
	g := testGraphs(t)["rmat"]
	acc := make([]int64, g.NumVertices())
	countTrianglesPerVertex(g, acc)
	var sum int64
	for _, c := range acc {
		sum += c
	}
	if want := 3 * TriangleCount(g); sum != want {
		t.Errorf("per-vertex sum %d, want %d", sum, want)
	}
}
