package algo

import (
	"context"
	"math"
	"sync/atomic"

	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// InfDist is the distance assigned to unreachable vertices.
const InfDist = int64(math.MaxInt64) / 4 // headroom so dist+weight cannot overflow

// SSSPResult carries the output of single-source shortest paths.
type SSSPResult struct {
	// Dist[v] is the shortest-path distance from the source, or InfDist if
	// v is unreachable.
	Dist []int64
	// Rounds is the number of relaxation rounds executed.
	Rounds int
	// NegativeCycle is true if a negative-weight cycle reachable from the
	// source was detected (after n rounds the frontier was still
	// non-empty); Dist is then not meaningful for vertices on or past the
	// cycle.
	NegativeCycle bool
}

// BellmanFord runs the paper's frontier-based Bellman-Ford (§5.6): each
// round relaxes the out-edges of vertices whose distance improved in the
// previous round, using writeMin as the priority update. A Visited flag
// per round makes each destination join the output frontier once; the
// flags are reset by a vertexMap over the new frontier.
func BellmanFord(g graph.View, source uint32, opts core.Options) *SSSPResult {
	res, err := BellmanFordCtx(nil, g, source, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// BellmanFordCtx is BellmanFord with cooperative cancellation. On
// interruption Dist holds valid upper bounds on the true shortest-path
// distances (writeMin only ever tightens them), returned with a
// *RoundError.
func BellmanFordCtx(ctx context.Context, g graph.View, source uint32, opts core.Options) (*SSSPResult, error) {
	n := g.NumVertices()
	dist := make([]int64, n)
	parallel.Fill(dist, InfDist)
	dist[source] = 0

	// visited[d] != 0 means d already joined this round's output frontier.
	visited := make([]uint32, n)

	update := func(s, d uint32, w int32) bool {
		sd := atomic.LoadInt64(&dist[s])
		if sd >= InfDist {
			return false
		}
		if atomicx.WriteMinInt64(&dist[d], sd+int64(w)) {
			return atomicx.TestAndSetBool(&visited[d])
		}
		return false
	}
	funcs := core.EdgeFuncs{Update: update, UpdateAtomic: update}

	frontier := core.NewSingle(n, source)
	rounds := 0
	for !frontier.IsEmpty() {
		if rounds >= n {
			return &SSSPResult{Dist: dist, Rounds: rounds, NegativeCycle: true}, nil
		}
		next, err := core.EdgeMapCtx(ctx, g, frontier, funcs, opts)
		if err != nil {
			return &SSSPResult{Dist: dist, Rounds: rounds},
				roundErr("bellman-ford", rounds, err)
		}
		frontier = next
		core.VertexMap(frontier, func(v uint32) { visited[v] = 0 })
		rounds++
	}
	return &SSSPResult{Dist: dist, Rounds: rounds, NegativeCycle: false}, nil
}
