// Package algo implements the six applications of the Ligra paper (§5) —
// breadth-first search, betweenness centrality, graph radii estimation,
// connected components, PageRank (and PageRank-Delta), and Bellman-Ford —
// plus three extension algorithms from the same research line (k-core
// decomposition, maximal independent set, and triangle counting). Every
// algorithm is expressed against the core.EdgeMap / core.VertexMap
// interface exactly as in the paper, and accepts a core.Options so the
// benchmark harness can force sparse/dense modes and sweep thresholds.
package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// BFSResult carries the output of a breadth-first search.
type BFSResult struct {
	// Parents[v] is the BFS-tree parent of v, the source for the source
	// itself, and core.None for unreachable vertices.
	Parents []uint32
	// Rounds is the number of edgeMap rounds (the BFS depth reached).
	Rounds int
	// Visited is the number of reachable vertices (including the source).
	Visited int
}

// BFS runs the paper's breadth-first search (Figure 1/§5.1): the frontier
// expands one level per round; Update claims unvisited destinations with a
// compare-and-swap on the parent array.
func BFS(g graph.View, source uint32, opts core.Options) *BFSResult {
	res, err := BFSCtx(nil, g, source, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// BFSCtx is BFS with cooperative cancellation: ctx (nil = background) is
// observed at chunk granularity inside every round. On interruption it
// returns the partial result — Parents holds a valid BFS forest over all
// vertices claimed so far — together with a *RoundError wrapping the
// cause.
func BFSCtx(ctx context.Context, g graph.View, source uint32, opts core.Options) (*BFSResult, error) {
	n := g.NumVertices()
	parents := make([]uint32, n)
	parallel.Fill(parents, core.None)
	parents[source] = source

	funcs := core.EdgeFuncs{
		// Dense (pull): single writer per destination, plain store.
		Update: func(s, d uint32, _ int32) bool {
			if parents[d] == core.None {
				parents[d] = s
				return true
			}
			return false
		},
		// Sparse (push): CAS claims the parent exactly once.
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return atomic.CompareAndSwapUint32(&parents[d], core.None, s)
		},
		// Atomic load: sparse workers CAS parents[d] concurrently with
		// other workers' Cond pre-checks on the same destination.
		Cond: func(d uint32) bool { return atomic.LoadUint32(&parents[d]) == core.None },
	}

	// A destination is claimed at most once per round (the CAS / None check
	// is idempotent), so a dense round may stop scanning a vertex's
	// in-edges after the first successful claim.
	opts.DenseEarlyExit = true

	frontier := core.NewSingle(n, source)
	visited := 1
	rounds := 0
	for !frontier.IsEmpty() {
		next, err := core.EdgeMapCtx(ctx, g, frontier, funcs, opts)
		if err != nil {
			return &BFSResult{Parents: parents, Rounds: rounds, Visited: visited},
				roundErr("bfs", rounds, err)
		}
		frontier = next
		visited += frontier.Size()
		if frontier.Size() > 0 {
			rounds++
		}
	}
	return &BFSResult{Parents: parents, Rounds: rounds, Visited: visited}, nil
}

// BFSLevels derives per-vertex BFS levels (distance in edges from the
// source; -1 for unreachable) by rerunning the traversal with a level
// counter. It shares BFS's edgeMap structure and exists because several
// experiments report level-by-level behaviour.
func BFSLevels(g graph.View, source uint32, opts core.Options) []int32 {
	levels, err := BFSLevelsCtx(nil, g, source, opts)
	if err != nil {
		panic(err)
	}
	return levels
}

// BFSLevelsCtx is BFSLevels with cooperative cancellation. On
// interruption the returned slice holds correct levels for every vertex
// reached in completed rounds (-1 elsewhere) alongside a *RoundError.
func BFSLevelsCtx(ctx context.Context, g graph.View, source uint32, opts core.Options) ([]int32, error) {
	n := g.NumVertices()
	levels := make([]int32, n)
	parallel.Fill(levels, int32(-1))
	levels[source] = 0

	round := int32(0)
	funcs := core.EdgeFuncs{
		Update: func(_, d uint32, _ int32) bool {
			if levels[d] == -1 {
				levels[d] = round
				return true
			}
			return false
		},
		UpdateAtomic: func(_, d uint32, _ int32) bool {
			return atomic.CompareAndSwapInt32(&levels[d], -1, round)
		},
		// Atomic load: sparse workers CAS levels[d] concurrently with
		// other workers' Cond pre-checks on the same destination.
		Cond: func(d uint32) bool { return atomic.LoadInt32(&levels[d]) == -1 },
	}
	// Same claim-once structure as BFS: dense rounds may early-exit.
	opts.DenseEarlyExit = true
	frontier := core.NewSingle(n, source)
	for !frontier.IsEmpty() {
		round++
		next, err := core.EdgeMapCtx(ctx, g, frontier, funcs, opts)
		if err != nil {
			return levels, roundErr("bfs-levels", int(round-1), err)
		}
		frontier = next
	}
	return levels, nil
}
