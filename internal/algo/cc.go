package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// CCResult carries the output of connected-components labeling.
type CCResult struct {
	// Labels[v] is the component identifier of v: the minimum vertex ID in
	// v's connected component.
	Labels []uint32
	// Components is the number of distinct components.
	Components int
	// Rounds is the number of label-propagation rounds executed.
	Rounds int
}

// ConnectedComponents runs the paper's label-propagation algorithm (§5.4):
// every vertex starts with its own ID; each round the frontier's labels
// propagate to neighbors via writeMin (a priority update), and a vertex
// enters the next frontier the first time its label shrinks in a round.
// The number of rounds is proportional to the largest component diameter.
//
// The algorithm assumes a symmetric graph (as in the paper's evaluation,
// which symmetrizes directed inputs for Components); on a directed graph
// it converges to labels that are only valid along directed reachability.
//
// Unlike BFS, a vertex's label can shrink repeatedly and its current label
// is read while neighbors concurrently update it, so both the dense and
// sparse update functions use atomic loads and priority updates; the
// per-round "first change" test makes frontier membership near-unique and a
// deduplication pass removes the remaining repeats.
func ConnectedComponents(g graph.View, opts core.Options) *CCResult {
	res, err := ConnectedComponentsCtx(nil, g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// ConnectedComponentsCtx is ConnectedComponents with cooperative
// cancellation. On interruption the partial result's Labels form a valid
// coarsening of the true components (every label is some member's ID and
// propagation simply hasn't converged); Components counts the labels that
// are still their own representative.
func ConnectedComponentsCtx(ctx context.Context, g graph.View, opts core.Options) (*CCResult, error) {
	n := g.NumVertices()
	ids := make([]uint32, n)
	prev := make([]uint32, n)
	parallel.Iota(ids, 0)
	parallel.Iota(prev, 0)

	update := func(s, d uint32, _ int32) bool {
		sid := atomic.LoadUint32(&ids[s])
		orig := atomic.LoadUint32(&ids[d])
		if atomicx.WriteMinUint32(&ids[d], sid) {
			return orig == prev[d]
		}
		return false
	}
	funcs := core.EdgeFuncs{Update: update, UpdateAtomic: update}

	// Two sources can both lower ids[d] while observing orig == prev[d],
	// so sparse rounds may emit duplicates.
	opts.RemoveDuplicates = true

	frontier := core.NewAll(n)
	rounds := 0
	finish := func(err error) (*CCResult, error) {
		// A label l names a component iff its own label is itself.
		components := parallel.CountFunc(n, func(i int) bool { return ids[i] == uint32(i) })
		return &CCResult{Labels: ids, Components: components, Rounds: rounds},
			roundErr("components", rounds, err)
	}
	for !frontier.IsEmpty() {
		if err := core.VertexMapCtx(ctx, frontier, func(v uint32) { prev[v] = ids[v] }); err != nil {
			return finish(err)
		}
		next, err := core.EdgeMapCtx(ctx, g, frontier, funcs, opts)
		if err != nil {
			return finish(err)
		}
		frontier = next
		rounds++
	}
	return finish(nil)
}
