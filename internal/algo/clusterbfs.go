package algo

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"

	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// MaxClusterSources is the number of simultaneous BFS sources one
// ClusterBFS sweep serves: one bit per source in the per-vertex uint64
// visit word.
const MaxClusterSources = 64

// ClusterBFSOptions configures a bit-parallel multi-source traversal.
type ClusterBFSOptions struct {
	// EdgeMap options forwarded to every round. DenseEarlyExit is
	// ignored: a dense round must scan every in-edge of a destination
	// because distinct sources contribute distinct bits.
	EdgeMap core.Options
	// WantLevels allocates the full per-(source, vertex) level matrix
	// (len(Sources) x n int32 values). Leave it off for large graphs and
	// use Probes to record levels only where they are needed.
	WantLevels bool
	// Probes lists vertices whose per-source levels are recorded even
	// without WantLevels — the cheap way to answer "distance from every
	// source to these few targets/landmarks" out of one sweep.
	Probes []uint32
}

// ClusterBFSResult carries the output of one bit-parallel multi-source
// sweep. All per-vertex slices have length n; all per-source slices have
// length len(Sources).
type ClusterBFSResult struct {
	// Sources are the BFS roots, bit i of every visit word belonging to
	// Sources[i]. Duplicates are allowed (each occupies its own bit).
	Sources []uint32
	// Visit[v] has bit i set iff Sources[i] reaches v.
	Visit []uint64
	// MaxLevel[v] is the largest BFS distance from any source that
	// reaches v (-1 when unreached) — the per-vertex quantity the radii
	// estimator keeps.
	MaxLevel []int32
	// Levels holds d(Sources[i], v) at Levels[i*n+v] (-1 unreached);
	// nil unless Options.WantLevels.
	Levels []int32
	// Probes echoes Options.Probes; ProbeLevels[j][i] is
	// d(Sources[i], Probes[j]) (-1 unreached).
	Probes      []uint32
	ProbeLevels [][]int32
	// Reached[i] is the number of vertices Sources[i] reaches, including
	// itself.
	Reached []int64
	// Depth[i] is the largest BFS level at which Sources[i] reached a new
	// vertex — exactly the Rounds a single-source BFS from Sources[i]
	// reports.
	Depth []int32
	// Rounds is the sweep's completed edgeMap rounds; on clean
	// termination it equals the largest level assigned (matching the
	// radii convention).
	Rounds int

	n          int
	probeIndex map[uint32]int
}

// LevelTo returns d(Sources[i], v) when it was recorded — via WantLevels,
// a probe on v, or v being a source — and -1 otherwise (unreached, or not
// recorded).
func (r *ClusterBFSResult) LevelTo(i int, v uint32) int32 {
	if r.Levels != nil {
		return r.Levels[i*r.n+int(v)]
	}
	if j, ok := r.probeIndex[v]; ok {
		return r.ProbeLevels[j][i]
	}
	if r.Sources[i] == v {
		return 0
	}
	return -1
}

// ClusterBFS runs up to 64 breadth-first searches as one traversal: every
// vertex carries a uint64 visit word with one bit per source, and one
// edgeMap sweep propagates all bits simultaneously, so K concurrent
// single-source queries cost roughly one pass over the edge set instead
// of K (the trick §5.3 of the paper buries inside the eccentricity
// estimator, promoted to a reusable primitive). It panics on error; use
// ClusterBFSCtx to handle interruption.
func ClusterBFS(g graph.View, sources []uint32, opts ClusterBFSOptions) *ClusterBFSResult {
	res, err := ClusterBFSCtx(nil, g, sources, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// ClusterBFSCtx is ClusterBFS with cooperative cancellation, observed
// between rounds and at chunk granularity inside them. On interruption the
// partial result is returned with a *RoundError: every non-negative level
// is a genuine BFS distance, every set visit bit a genuine reachability,
// and per-source aggregates cover the rounds that completed.
func ClusterBFSCtx(ctx context.Context, g graph.View, sources []uint32, opts ClusterBFSOptions) (*ClusterBFSResult, error) {
	res, err := clusterSweep(ctx, g, sources, opts)
	return res, roundErr("cluster-bfs", res.Rounds, err)
}

// clusterSweep is the sweep shared by ClusterBFSCtx and the radii
// estimator (which wraps errors under its own algorithm name). The
// returned error is the raw cause (ctx error or *parallel.PanicError).
func clusterSweep(ctx context.Context, g graph.View, sources []uint32, opts ClusterBFSOptions) (*ClusterBFSResult, error) {
	n := g.NumVertices()
	k := len(sources)
	if k > MaxClusterSources {
		return &ClusterBFSResult{n: n}, fmt.Errorf("algo: cluster-bfs takes at most %d sources, got %d", MaxClusterSources, k)
	}
	res := &ClusterBFSResult{
		Sources:  append([]uint32(nil), sources...),
		Visit:    make([]uint64, n),
		MaxLevel: make([]int32, n),
		Reached:  make([]int64, k),
		Depth:    make([]int32, k),
		Rounds:   0,
		n:        n,
	}
	parallel.Fill(res.MaxLevel, int32(-1))
	if opts.WantLevels && k > 0 {
		res.Levels = make([]int32, k*n)
		parallel.Fill(res.Levels, int32(-1))
	}
	if len(opts.Probes) > 0 {
		res.Probes = append([]uint32(nil), opts.Probes...)
		res.probeIndex = make(map[uint32]int, len(res.Probes))
		res.ProbeLevels = make([][]int32, len(res.Probes))
		for j, p := range res.Probes {
			if _, dup := res.probeIndex[p]; !dup {
				res.probeIndex[p] = j
			}
			row := make([]int32, k)
			for i := range row {
				row[i] = -1
			}
			res.ProbeLevels[j] = row
		}
		// Duplicate probes share one recorded row.
		for j, p := range res.Probes {
			res.ProbeLevels[j] = res.ProbeLevels[res.probeIndex[p]]
		}
	}
	for i, s := range sources {
		if int(s) >= n {
			return res, fmt.Errorf("algo: cluster-bfs source %d out of range (n=%d)", s, n)
		}
		res.Visit[s] |= 1 << uint(i)
		res.MaxLevel[s] = 0
		if res.Levels != nil {
			res.Levels[i*n+int(s)] = 0
		}
		if j, ok := res.probeIndex[s]; ok {
			res.ProbeLevels[j][i] = 0
		}
	}
	if k == 0 {
		res.Rounds = -1 // mirrors the historical empty-sample radii result
		return res, ctxErr(ctx)
	}

	// The settled (cur) and in-flight (next) visit words live interleaved
	// in one slice so an edge's destination touches a single cache line —
	// the sweep is memory-bound, and splitting them across two n-word
	// arrays measurably doubles the miss traffic. res.Visit is filled
	// from cur by finishAggregates.
	words := make([]visitPair, n)
	for _, s := range sources {
		words[s].cur = res.Visit[s]
	}
	// The initial frontier: the distinct source vertices.
	roots := make([]uint32, 0, k)
	for _, s := range sources {
		if !containsU32(roots, s) {
			roots = append(roots, s)
		}
	}

	round := int32(0)
	update := func(s, d uint32, _ int32) bool {
		sBits := atomic.LoadUint64(&words[s].cur) // read-only during a round
		p := &words[d]
		dBits := p.cur // likewise read-only
		// Skip the locked OR when every bit s carries is already at d or
		// en route there this round — on scale-free graphs most in-edges
		// of a hub arrive after the first few have delivered the union,
		// so this plain load saves the bulk of the atomic traffic.
		if sBits&^(dBits|atomic.LoadUint64(&p.next)) == 0 {
			return false
		}
		atomicx.OrUint64(&p.next, sBits|dBits)
		// Join the output frontier once per round.
		return claimRound(&res.MaxLevel[d], roundLoad(&round))
	}
	// No Cond: the single-source trick (skip vertices with a parent) has
	// no cheap analogue here — a vertex stays eligible until all k bits
	// arrive, which for most of the sweep is every vertex, so a per-edge
	// saturation test costs more than it prunes (measured ~37% of sweep
	// time for zero skips). The sBits|dBits==dBits check inside update is
	// the effective filter.
	funcs := core.EdgeFuncs{Update: update, UpdateAtomic: update}
	emOpts := opts.EdgeMap
	emOpts.DenseEarlyExit = false // one new bit does not finish a vertex
	// Backward dense is a loss for multi-source sweeps: single-source BFS
	// stops scanning a row at the first parent, but here every in-edge may
	// carry new bits, so a backward round pays the full edge set. Forward
	// dense does work proportional to the frontier's out-degrees — the
	// same quantity the visit-word sharing shrinks — so dense rounds use
	// the forward kernel (the atomic OR is idempotent, making the
	// destination contention forward mode introduces harmless).
	emOpts.DenseForward = true

	// Per-worker accumulators for "which sources gained ground this
	// round" — folded into Depth after each round.
	active := make([]uint64, parallel.Procs())

	frontier := core.NewSparse(n, roots)
	iters := 0
	for !frontier.IsEmpty() {
		atomic.AddInt32(&round, 1)
		next, err := core.EdgeMapCtx(ctx, g, frontier, funcs, emOpts)
		if err != nil {
			res.Rounds = iters
			finishAggregates(ctx, res, words)
			return res, err
		}
		frontier = next
		// Fold the round's new bits into the visit words (single writer
		// per frontier vertex), recording levels where asked.
		ids := frontier.ToSparse()
		r := roundLoad(&round)
		for w := range active {
			active[w] = 0
		}
		err = parallel.ForWorkerChunksCtx(ctx, len(ids), 0, func(worker, _, lo, hi int) {
			var mask uint64
			for j := lo; j < hi; j++ {
				v := ids[j]
				p := &words[v]
				nv := atomic.LoadUint64(&p.next)
				ov := atomic.LoadUint64(&p.cur)
				newBits := nv &^ ov
				atomic.StoreUint64(&p.cur, nv)
				mask |= newBits
				if res.Levels != nil {
					for b := newBits; b != 0; b &= b - 1 {
						res.Levels[bits.TrailingZeros64(b)*n+int(v)] = r
					}
				}
				if pj, ok := res.probeIndex[v]; ok {
					row := res.ProbeLevels[pj]
					for b := newBits; b != 0; b &= b - 1 {
						row[bits.TrailingZeros64(b)] = r
					}
				}
			}
			active[worker] |= mask
		})
		if err != nil {
			res.Rounds = iters
			finishAggregates(ctx, res, words)
			return res, err
		}
		var roundMask uint64
		for _, m := range active {
			roundMask |= m
		}
		for b := roundMask; b != 0; b &= b - 1 {
			res.Depth[bits.TrailingZeros64(b)] = r
		}
		iters++
	}
	// The final iteration found no new vertices, so the largest level
	// assigned is iters-1 (radii's historical Rounds convention).
	res.Rounds = iters - 1
	finishAggregates(nil, res, words)
	return res, nil
}

// visitPair interleaves a vertex's settled and in-flight visit words so
// both land on the same cache line (see clusterSweep).
type visitPair struct{ cur, next uint64 }

// finishAggregates publishes the settled visit words into res.Visit and
// computes the per-source reach counts from them (Depth is maintained
// round by round). Safe on partial sweeps; a cancelled aggregation
// leaves counts short, which the partial-result contract allows.
func finishAggregates(ctx context.Context, res *ClusterBFSResult, words []visitPair) {
	if len(res.Sources) == 0 {
		return
	}
	type counts struct {
		c [MaxClusterSources]int64
		_ [56]byte // keep workers off each other's cache lines
	}
	per := make([]counts, parallel.Procs())
	_ = parallel.ForWorkerChunksCtx(ctx, len(words), 0, func(worker, _, lo, hi int) {
		c := &per[worker].c
		for v := lo; v < hi; v++ {
			w := words[v].cur
			res.Visit[v] = w
			for b := w; b != 0; b &= b - 1 {
				c[bits.TrailingZeros64(b)]++
			}
		}
	})
	for i := range res.Reached {
		var total int64
		for w := range per {
			total += per[w].c[i]
		}
		res.Reached[i] = total
	}
}

// containsU32 reports membership in a tiny slice (at most 64 sources, so
// a linear scan beats a map).
func containsU32(xs []uint32, v uint32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// roundLoad reads the shared round counter; it is only written between
// rounds, so this is a formality that keeps the race detector satisfied.
func roundLoad(r *int32) int32 { return atomic.LoadInt32(r) }

// claimRound sets *addr to round exactly once per round, returning whether
// this caller performed the transition.
func claimRound(addr *int32, round int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if old == round {
			return false // someone already claimed this round
		}
		if atomic.CompareAndSwapInt32(addr, old, round) {
			return true
		}
	}
}
