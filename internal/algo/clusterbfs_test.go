package algo

import (
	"context"
	"errors"
	"testing"

	"ligra/internal/core"
)

// clusterSources picks k deterministic pseudo-random sources (with
// occasional repeats filtered out by the caller when it wants distinct).
func clusterSources(n, k int, seed uint64) []uint32 {
	out := make([]uint32, k)
	for i := range out {
		out[i] = uint32(hashU64(seed, uint64(i)) % uint64(n))
	}
	return out
}

// TestClusterBFSMatchesSingleSourceBFS is the batching subsystem's core
// property: one bit-parallel sweep over K sources must report, per
// source, exactly what K independent single-source BFS runs report —
// levels, reachability, reach counts, and depth.
func TestClusterBFSMatchesSingleSourceBFS(t *testing.T) {
	for gname, g := range testGraphs(t) {
		n := g.NumVertices()
		for _, k := range []int{1, 3, 17, 64} {
			sources := clusterSources(n, k, uint64(k)*7+3)
			probes := clusterSources(n, 5, 99)
			for mname, opts := range modes {
				res, err := ClusterBFSCtx(nil, g, sources, ClusterBFSOptions{
					EdgeMap:    opts,
					WantLevels: true,
					Probes:     probes,
				})
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", gname, mname, k, err)
				}
				for i, s := range sources {
					want, err := BFSLevelsCtx(nil, g, s, opts)
					if err != nil {
						t.Fatalf("%s/%s: bfs oracle: %v", gname, mname, err)
					}
					var reached int64
					var depth int32
					for v := 0; v < n; v++ {
						got := res.Levels[i*n+v]
						if got != want[v] {
							t.Fatalf("%s/%s k=%d src[%d]=%d vertex %d: level %d, bfs says %d",
								gname, mname, k, i, s, v, got, want[v])
						}
						bit := res.Visit[v]>>uint(i)&1 == 1
						if bit != (want[v] >= 0) {
							t.Fatalf("%s/%s src[%d]=%d vertex %d: visit bit %v but level %d",
								gname, mname, i, s, v, bit, want[v])
						}
						if want[v] >= 0 {
							reached++
							if want[v] > depth {
								depth = want[v]
							}
						}
					}
					if res.Reached[i] != reached {
						t.Fatalf("%s/%s src[%d]=%d: Reached=%d want %d", gname, mname, i, s, res.Reached[i], reached)
					}
					if res.Depth[i] != depth {
						t.Fatalf("%s/%s src[%d]=%d: Depth=%d want %d", gname, mname, i, s, res.Depth[i], depth)
					}
					for j, p := range probes {
						if res.ProbeLevels[j][i] != want[p] {
							t.Fatalf("%s/%s src[%d]=%d probe %d: %d want %d",
								gname, mname, i, s, p, res.ProbeLevels[j][i], want[p])
						}
						if res.LevelTo(i, p) != want[p] {
							t.Fatalf("%s/%s: LevelTo disagrees with oracle at probe %d", gname, mname, p)
						}
					}
				}
				// MaxLevel[v] must be the max over sources of d(s, v).
				for v := 0; v < n; v++ {
					want := int32(-1)
					for i := range sources {
						if l := res.Levels[i*n+v]; l > want {
							want = l
						}
					}
					if res.MaxLevel[v] != want {
						t.Fatalf("%s/%s vertex %d: MaxLevel=%d want %d", gname, mname, v, res.MaxLevel[v], want)
					}
				}
			}
		}
	}
}

// TestClusterBFSProbesWithoutLevels checks the memory-smart serving path:
// probe rows recorded without the full level matrix match a WantLevels
// run, and LevelTo answers for sources and probes only.
func TestClusterBFSProbesWithoutLevels(t *testing.T) {
	g := testGraphs(t)["rmat"]
	n := g.NumVertices()
	sources := clusterSources(n, 32, 5)
	probes := clusterSources(n, 7, 11)
	probes = append(probes, probes[0], sources[3]) // duplicate probe + source-as-probe
	lean, err := ClusterBFSCtx(nil, g, sources, ClusterBFSOptions{Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	if lean.Levels != nil {
		t.Fatal("Levels allocated without WantLevels")
	}
	full, err := ClusterBFSCtx(nil, g, sources, ClusterBFSOptions{WantLevels: true})
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range probes {
		for i := range sources {
			if lean.ProbeLevels[j][i] != full.Levels[i*n+int(p)] {
				t.Fatalf("probe %d src %d: %d want %d", p, i, lean.ProbeLevels[j][i], full.Levels[i*n+int(p)])
			}
		}
	}
	for i, s := range sources {
		if lean.LevelTo(i, s) != 0 {
			t.Fatalf("LevelTo(src %d, itself) = %d", i, lean.LevelTo(i, s))
		}
	}
}

// TestClusterBFSDuplicateSources: duplicated sources each get their own
// bit and identical per-source outputs.
func TestClusterBFSDuplicateSources(t *testing.T) {
	g := testGraphs(t)["grid3d"]
	n := g.NumVertices()
	sources := []uint32{5, 5, 17, 5}
	res, err := ClusterBFSCtx(nil, g, sources, ClusterBFSOptions{WantLevels: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if res.Levels[0*n+v] != res.Levels[1*n+v] || res.Levels[0*n+v] != res.Levels[3*n+v] {
			t.Fatalf("duplicate sources disagree at vertex %d", v)
		}
	}
	if res.Reached[0] != res.Reached[1] || res.Depth[0] != res.Depth[3] {
		t.Fatal("duplicate sources disagree on aggregates")
	}
	// Both bits must be set wherever 5 reaches.
	for v := 0; v < n; v++ {
		b := res.Visit[v]
		if (b>>0&1) != (b>>1&1) || (b>>0&1) != (b>>3&1) {
			t.Fatalf("duplicate source bits diverge at vertex %d: %b", v, b)
		}
	}
}

// TestClusterBFSLimits: source count and range violations are typed
// errors, not panics; the empty sweep is trivial.
func TestClusterBFSLimits(t *testing.T) {
	g := testGraphs(t)["path"]
	n := g.NumVertices()
	if _, err := ClusterBFSCtx(nil, g, make([]uint32, 65), ClusterBFSOptions{}); err == nil {
		t.Fatal("65 sources accepted")
	}
	if _, err := ClusterBFSCtx(nil, g, []uint32{uint32(n)}, ClusterBFSOptions{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	res, err := ClusterBFSCtx(nil, g, nil, ClusterBFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != -1 || len(res.Sources) != 0 {
		t.Fatalf("empty sweep: rounds=%d sources=%d", res.Rounds, len(res.Sources))
	}
}

// TestClusterBFSCancel: a pre-cancelled context interrupts the sweep with
// a *RoundError wrapping context.Canceled, and the partial result is
// safe: sources keep level 0, everything else is -1 or a genuine level.
func TestClusterBFSCancel(t *testing.T) {
	g := testGraphs(t)["rmat"]
	sources := clusterSources(g.NumVertices(), 8, 21)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ClusterBFSCtx(ctx, g, sources, ClusterBFSOptions{WantLevels: true})
	var re *RoundError
	if !errors.As(err, &re) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want RoundError wrapping Canceled, got %v", err)
	}
	if re.Algo != "cluster-bfs" {
		t.Fatalf("algo name %q", re.Algo)
	}
	full, err := ClusterBFSCtx(nil, g, sources, ClusterBFSOptions{WantLevels: true})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	for i := range sources {
		for v := 0; v < n; v++ {
			got := res.Levels[i*n+v]
			if got >= 0 && got != full.Levels[i*n+v] {
				t.Fatalf("partial level lies: src %d vertex %d: %d vs %d", i, v, got, full.Levels[i*n+v])
			}
		}
	}
}

// TestClusterBFSStatsCounted: the sweep goes through edgeMap, so the
// process-wide traversal counters must move.
func TestClusterBFSStatsCounted(t *testing.T) {
	g := testGraphs(t)["rmat"]
	before := core.SnapshotStats()
	_, err := ClusterBFSCtx(nil, g, clusterSources(g.NumVertices(), 16, 1), ClusterBFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := core.SnapshotStats().Sub(before)
	if delta.Calls == 0 || delta.EdgesScanned == 0 {
		t.Fatalf("traversal stats did not move: %+v", delta)
	}
}
