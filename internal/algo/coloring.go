package algo

import (
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// ColoringResult carries the output of greedy graph coloring.
type ColoringResult struct {
	// Colors[v] is the color of v, in [0, NumColors).
	Colors []int32
	// NumColors is the number of distinct colors used (at most max
	// degree + 1).
	NumColors int
	// Rounds is the number of priority rounds executed.
	Rounds int
}

// Coloring computes a proper vertex coloring of a symmetric simple graph
// with deterministic parallel greedy coloring: vertices get random
// priorities; every round, an uncolored vertex whose uncolored neighbors
// all have lower priority takes the smallest color unused by its
// neighbors. The result equals the sequential greedy coloring in
// priority order (the internally deterministic style of Blelloch,
// Fineman, Gibbons, Shun, PPoPP 2012), and expected rounds are
// O(log n) for random priorities.
func Coloring(g graph.View, seed uint64, opts core.Options) *ColoringResult {
	n := g.NumVertices()
	colors := make([]int32, n)
	parallel.Fill(colors, int32(-1))
	pri := make([]uint64, n)
	for v := 0; v < n; v++ {
		pri[v] = hashU64(seed, uint64(v))
	}
	higherPri := func(a, b uint32) bool {
		return pri[a] > pri[b] || (pri[a] == pri[b] && a > b)
	}

	uncolored := core.NewAll(n)
	rounds := 0
	for !uncolored.IsEmpty() {
		// Roots: uncolored vertices dominating their uncolored neighbors.
		roots := core.VertexFilter(uncolored, func(v uint32) bool {
			if atomic.LoadInt32(&colors[v]) != -1 {
				return false
			}
			dominated := false
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d != v && atomic.LoadInt32(&colors[d]) == -1 && higherPri(d, v) {
					dominated = true
					return false
				}
				return true
			})
			return !dominated
		})
		// Color each root with the smallest color free among neighbors.
		// Roots are pairwise non-adjacent, so their choices cannot
		// conflict within a round; already-colored neighbors are frozen.
		core.VertexMap(roots, func(v uint32) {
			deg := g.OutDegree(v)
			used := make([]bool, deg+1)
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if c := atomic.LoadInt32(&colors[d]); c >= 0 && int(c) <= deg {
					used[c] = true
				}
				return true
			})
			c := int32(0)
			for int(c) <= deg && used[c] {
				c++
			}
			atomic.StoreInt32(&colors[v], c)
		})
		uncolored = core.VertexFilter(uncolored, func(v uint32) bool {
			return atomic.LoadInt32(&colors[v]) == -1
		})
		rounds++
	}

	numColors := 0
	if n > 0 {
		numColors = int(parallel.Max(colors)) + 1
	}
	return &ColoringResult{Colors: colors, NumColors: numColors, Rounds: rounds}
}
