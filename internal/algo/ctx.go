package algo

import (
	"context"
	"fmt"
)

// RoundError is the error returned by the algorithms' Ctx entry points
// when a run is interrupted: it records which algorithm stopped and after
// how many completed rounds, and wraps the cause — context.Canceled,
// context.DeadlineExceeded, or a *parallel.PanicError from a contained
// worker panic — so errors.Is / errors.As see through it.
//
// Every Ctx entry point that returns a *RoundError also returns a usable
// partial result reflecting all rounds completed before the interruption
// (see each algorithm's documentation for its partial-result contract).
type RoundError struct {
	// Algo names the interrupted algorithm ("bfs", "pagerank", ...).
	Algo string
	// Round is the number of fully completed rounds (iterations) before
	// the interruption; the partial result reflects exactly these rounds
	// plus any writes the aborted round had already applied.
	Round int
	// Err is the underlying cause.
	Err error
}

func (e *RoundError) Error() string {
	return fmt.Sprintf("algo: %s interrupted after round %d: %v", e.Algo, e.Round, e.Err)
}

func (e *RoundError) Unwrap() error { return e.Err }

// roundErr wraps a non-nil interruption cause; nil passes through.
func roundErr(name string, round int, err error) error {
	if err == nil {
		return nil
	}
	return &RoundError{Algo: name, Round: round, Err: err}
}

// ctxErr reports ctx's cancellation state, tolerating a nil ctx (the
// convention all Ctx entry points share: nil means context.Background()).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
