package algo

import (
	"context"
	"errors"
	"testing"
	"time"

	"ligra/internal/core"
	"ligra/internal/faultinject"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// requireInterrupted asserts the error is a *RoundError wrapping the given
// context error.
func requireInterrupted(t *testing.T, err, cause error) *RoundError {
	t.Helper()
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want one wrapping %v", err, cause)
	}
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *RoundError", err, err)
	}
	if re.Algo == "" {
		t.Error("RoundError.Algo is empty")
	}
	return re
}

// TestCtxVariantsPreCancelled runs every Ctx entry point with an
// already-cancelled context: each must return a RoundError wrapping
// context.Canceled together with a structurally sane partial result.
func TestCtxVariantsPreCancelled(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.PBBSRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := gen.RMATDirected(8, 4, gen.PBBSRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.AddWeights(graph.HashWeight(32))
	n := g.NumVertices()
	opts := core.Options{}

	cases := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"bfs", func(ctx context.Context) error {
			res, err := BFSCtx(ctx, g, 0, opts)
			if res == nil || len(res.Parents) != n {
				t.Error("bfs: missing or truncated partial result")
			} else if res.Parents[0] != 0 {
				t.Error("bfs: source not its own parent in partial result")
			}
			return err
		}},
		{"bfs-levels", func(ctx context.Context) error {
			levels, err := BFSLevelsCtx(ctx, g, 0, opts)
			if len(levels) != n || levels[0] != 0 {
				t.Error("bfs-levels: bad partial result")
			}
			return err
		}},
		{"bc", func(ctx context.Context) error {
			res, err := BCCtx(ctx, g, 0, opts)
			if res == nil || len(res.Scores) != n {
				t.Error("bc: missing partial result")
			}
			return err
		}},
		{"bc-approx", func(ctx context.Context) error {
			res, err := BCApproxCtx(ctx, g, 4, 7, opts)
			if res == nil || len(res.Scores) != n {
				t.Error("bc-approx: missing partial result")
			} else if len(res.Sources) != 0 {
				t.Errorf("bc-approx: %d sources reported complete under a pre-cancelled ctx", len(res.Sources))
			}
			return err
		}},
		{"radii", func(ctx context.Context) error {
			res, err := RadiiCtx(ctx, g, RadiiOptions{K: 8, Seed: 1})
			if res == nil || len(res.Radii) != n {
				t.Error("radii: missing partial result")
			}
			return err
		}},
		{"radii-multi", func(ctx context.Context) error {
			// k > 64 exercises the batched multi-source path.
			res, err := RadiiMultiCtx(ctx, g, 100, 1, opts)
			if res == nil || len(res.Radii) != n {
				t.Error("radii-multi: missing partial result")
			}
			return err
		}},
		{"components", func(ctx context.Context) error {
			res, err := ConnectedComponentsCtx(ctx, g, opts)
			if res == nil || len(res.Labels) != n {
				t.Error("components: missing partial result")
			}
			return err
		}},
		{"pagerank", func(ctx context.Context) error {
			res, err := PageRankCtx(ctx, g, PageRankOptions{Damping: 0.85, MaxIterations: 10})
			if res == nil || len(res.Ranks) != n {
				t.Error("pagerank: missing partial result")
			} else if res.Iterations != 0 {
				t.Errorf("pagerank: %d iterations ran under a pre-cancelled ctx", res.Iterations)
			}
			return err
		}},
		{"pagerank-delta", func(ctx context.Context) error {
			res, err := PageRankDeltaCtx(ctx, g, PageRankOptions{Damping: 0.85, MaxIterations: 10}, 0.01)
			if res == nil || len(res.Ranks) != n {
				t.Error("pagerank-delta: missing partial result")
			}
			return err
		}},
		{"bellman-ford", func(ctx context.Context) error {
			res, err := BellmanFordCtx(ctx, wg, 0, opts)
			if res == nil || len(res.Dist) != n {
				t.Error("bellman-ford: missing partial result")
			} else if res.Dist[0] != 0 {
				t.Error("bellman-ford: source distance not 0 in partial result")
			}
			return err
		}},
		{"delta-stepping", func(ctx context.Context) error {
			res, err := DeltaSteppingCtx(ctx, wg, 0, 8, opts)
			if res == nil || len(res.Dist) != n {
				t.Error("delta-stepping: missing partial result")
			}
			return err
		}},
		{"kcore", func(ctx context.Context) error {
			res, err := KCoreCtx(ctx, g, opts)
			if res == nil || len(res.Coreness) != n {
				t.Error("kcore: missing partial result")
			}
			return err
		}},
		{"kcore-julienne", func(ctx context.Context) error {
			res, err := KCoreJulienneCtx(ctx, g, opts)
			if res == nil || len(res.Coreness) != n {
				t.Error("kcore-julienne: missing partial result")
			}
			return err
		}},
		{"mis", func(ctx context.Context) error {
			res, err := MISCtx(ctx, g, 3, opts)
			if res == nil || len(res.InSet) != n {
				t.Error("mis: missing partial result")
			}
			return err
		}},
		{"scc", func(ctx context.Context) error {
			res, err := SCCCtx(ctx, dg, opts)
			if res == nil || len(res.Labels) != dg.NumVertices() {
				t.Error("scc: missing partial result")
			}
			return err
		}},
		{"eccentricity", func(ctx context.Context) error {
			res, err := TwoPassEccentricityCtx(ctx, g, 8, 1, opts)
			if res == nil || len(res.Ecc) != n {
				t.Error("eccentricity: missing partial result")
			}
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			requireInterrupted(t, tc.run(ctx), context.Canceled)
		})
	}
}

// TestBFSCtxCancelOnRoundPartialForest interrupts a BFS over a long path
// graph after three completed rounds and checks that the partial parent
// array is a valid BFS forest prefix.
func TestBFSCtxCancelOnRoundPartialForest(t *testing.T) {
	g, err := gen.Path(200)
	if err != nil {
		t.Fatal(err)
	}
	ctx, disarm := faultinject.CancelOnRound(context.Background(), 4)
	defer disarm()

	res, err := BFSCtx(ctx, g, 0, core.Options{})
	re := requireInterrupted(t, err, context.Canceled)
	if re.Round != 3 {
		t.Errorf("RoundError.Round = %d, want 3 completed rounds", re.Round)
	}
	if res.Parents[0] != 0 {
		t.Fatal("source lost its self-parent")
	}
	claimed := 0
	for v, p := range res.Parents {
		if p == core.None {
			continue
		}
		claimed++
		if v == 0 {
			continue
		}
		// On the path graph a parent must be an actual neighbour.
		if p != uint32(v-1) && p != uint32(v+1) {
			t.Errorf("vertex %d has non-neighbour parent %d", v, p)
		}
	}
	if claimed >= g.NumVertices() {
		t.Error("BFS claimed every vertex despite the injected cancellation")
	}
	if claimed < 2 {
		t.Errorf("only %d vertices claimed; completed rounds made no progress", claimed)
	}
	if res.Visited != claimed {
		t.Errorf("Visited = %d but %d parents are set", res.Visited, claimed)
	}
}

// TestPageRankCtxDeadlineOnRMAT is the acceptance scenario: an effectively
// unbounded PageRank on a larger RMAT graph with a 1ms deadline must come
// back promptly with DeadlineExceeded and the last completed iteration's
// ranks.
func TestPageRankCtxDeadlineOnRMAT(t *testing.T) {
	g, err := gen.RMAT(14, 8, gen.PBBSRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()

	start := time.Now()
	res, rerr := PageRankCtx(ctx, g, PageRankOptions{Damping: 0.85, MaxIterations: 1 << 20})
	elapsed := time.Since(start)

	requireInterrupted(t, rerr, context.DeadlineExceeded)
	if res == nil || len(res.Ranks) != g.NumVertices() {
		t.Fatal("no partial ranks returned")
	}
	if res.Iterations >= 1<<20 {
		t.Error("PageRank claims to have finished every iteration")
	}
	for i, r := range res.Ranks {
		if r < 0 || r > 1 {
			t.Fatalf("partial rank %d out of range: %g", i, r)
		}
	}
	// Generous bound: cancellation is cooperative at chunk granularity, so
	// the call must return promptly after the deadline, not after 2^20
	// iterations.
	if elapsed > 10*time.Second {
		t.Errorf("PageRankCtx took %v to honour a 1ms deadline", elapsed)
	}
}

// TestBFSCtxDeadlineOnRMAT: with an already-expired deadline BFS returns
// DeadlineExceeded and the minimal valid partial forest.
func TestBFSCtxDeadlineOnRMAT(t *testing.T) {
	g, err := gen.RMAT(14, 8, gen.PBBSRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, rerr := BFSCtx(ctx, g, 0, core.Options{})
	requireInterrupted(t, rerr, context.DeadlineExceeded)
	if res == nil || len(res.Parents) != g.NumVertices() || res.Parents[0] != 0 {
		t.Fatal("no valid partial forest returned")
	}
}

// TestBFSCtxFaultInjectedPanic arms the chunk-panic hook and checks the
// fault is contained as a typed *parallel.PanicError whichever parallel
// primitive it lands in (returned as an error from the Ctx entry point, or
// re-panicked typed by a plain primitive inside it).
func TestBFSCtxFaultInjectedPanic(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.PBBSRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	disarm := faultinject.PanicOnChunk(3, "injected algo fault")
	defer disarm()

	var rerr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe, ok := r.(*parallel.PanicError)
				if !ok {
					t.Fatalf("panic value is %T (%v), want *parallel.PanicError", r, r)
				}
				rerr = pe
			}
		}()
		_, rerr = BFSCtx(context.Background(), g, 0, core.Options{})
	}()

	var pe *parallel.PanicError
	if !errors.As(rerr, &pe) {
		t.Fatalf("err = %v, want a *parallel.PanicError", rerr)
	}
	if pe.Value != "injected algo fault" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
}

// TestRoundErrorUnwrap pins the error-chain contract: errors.Is sees the
// context cause and errors.As extracts both RoundError and PanicError.
func TestRoundErrorUnwrap(t *testing.T) {
	inner := &parallel.PanicError{Value: "x"}
	err := roundErr("test", 7, inner)
	var re *RoundError
	if !errors.As(err, &re) || re.Round != 7 || re.Algo != "test" {
		t.Fatalf("roundErr built %v", err)
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatal("PanicError not reachable through RoundError")
	}
	if roundErr("test", 0, nil) != nil {
		t.Error("roundErr(nil) must be nil")
	}
}
