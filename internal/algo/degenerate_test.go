package algo

import (
	"testing"

	"ligra/internal/core"
	"ligra/internal/graph"
)

// singleVertex returns the 1-vertex, 0-edge graph.
func singleVertex(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(1, nil, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// edgeless returns n isolated vertices.
func edgeless(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, nil, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAlgorithmsOnSingleVertex(t *testing.T) {
	g := singleVertex(t)
	if res := BFS(g, 0, core.Options{}); res.Visited != 1 || res.Rounds != 0 {
		t.Errorf("BFS: %+v", res)
	}
	if res := ConnectedComponents(g, core.Options{}); res.Components != 1 {
		t.Errorf("CC components = %d", res.Components)
	}
	if res := PageRank(g, PageRankOptions{Damping: 0.85, MaxIterations: 5}); len(res.Ranks) != 1 || res.Ranks[0] < 0.99 {
		t.Errorf("PageRank = %v", res.Ranks)
	}
	if res := BellmanFord(g, 0, core.Options{}); res.Dist[0] != 0 {
		t.Errorf("BF dist = %v", res.Dist)
	}
	if res := BC(g, 0, core.Options{}); res.Scores[0] != 0 {
		t.Errorf("BC = %v", res.Scores)
	}
	if res := Radii(g, RadiiOptions{K: 64, Seed: 1}); res.Radii[0] != 0 {
		t.Errorf("Radii = %v", res.Radii)
	}
	if res := KCore(g, core.Options{}); res.Coreness[0] != 0 {
		t.Errorf("KCore = %v", res.Coreness)
	}
	if res := KCoreJulienne(g, core.Options{}); res.Coreness[0] != 0 {
		t.Errorf("KCoreJulienne = %v", res.Coreness)
	}
	if res := MIS(g, 1, core.Options{}); !res.InSet[0] {
		t.Error("MIS must contain the only vertex")
	}
	if got := TriangleCount(g); got != 0 {
		t.Errorf("triangles = %d", got)
	}
	if res := MaximalMatching(g, 1); res.Size != 0 {
		t.Errorf("matching size = %d", res.Size)
	}
	if res := Coloring(g, 1, core.Options{}); res.NumColors != 1 {
		t.Errorf("colors = %d", res.NumColors)
	}
	if res := SCC(g, core.Options{}); res.Components != 1 {
		t.Errorf("SCC = %d", res.Components)
	}
	if res, err := DeltaStepping(g, 0, 1, core.Options{}); err != nil || res.Dist[0] != 0 {
		t.Errorf("delta-stepping: %v %v", res, err)
	}
	if res := LDD(g, 0.5, 1, core.Options{}); res.NumClusters != 1 {
		t.Errorf("LDD clusters = %d", res.NumClusters)
	}
}

func TestAlgorithmsOnEdgelessGraph(t *testing.T) {
	g := edgeless(t, 50)
	if res := BFS(g, 7, core.Options{}); res.Visited != 1 {
		t.Errorf("BFS visited %d", res.Visited)
	}
	if res := ConnectedComponents(g, core.Options{}); res.Components != 50 {
		t.Errorf("components = %d", res.Components)
	}
	pr := PageRank(g, PageRankOptions{Damping: 0.85, MaxIterations: 10, Epsilon: 1e-12})
	var mass float64
	for _, r := range pr.Ranks {
		mass += r
	}
	if mass < 0.999 || mass > 1.001 {
		t.Errorf("PageRank mass on dangling-only graph = %v", mass)
	}
	if res := MIS(g, 1, core.Options{}); countTrue(res.InSet) != 50 {
		t.Error("MIS on edgeless graph must include everything")
	}
	if res := MaximalMatching(g, 1); res.Size != 0 {
		t.Errorf("matching on edgeless graph = %d", res.Size)
	}
	if res := Coloring(g, 1, core.Options{}); res.NumColors != 1 {
		t.Errorf("edgeless coloring used %d colors", res.NumColors)
	}
	if res := SCC(g, core.Options{}); res.Components != 50 {
		t.Errorf("SCC = %d", res.Components)
	}
	kc := KCore(g, core.Options{})
	for v, c := range kc.Coreness {
		if c != 0 {
			t.Errorf("coreness[%d] = %d", v, c)
		}
	}
}

func countTrue(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}

func TestBFSFromIsolatedVertexInLargerGraph(t *testing.T) {
	// Vertex 5 is isolated inside an otherwise connected graph.
	g, err := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	res := BFS(g, 5, core.Options{})
	if res.Visited != 1 || res.Rounds != 0 {
		t.Errorf("BFS from isolated vertex: %+v", res)
	}
	for v, p := range res.Parents {
		if v == 5 {
			if p != 5 {
				t.Error("source parent wrong")
			}
		} else if p != core.None {
			t.Errorf("vertex %d has parent %d", v, p)
		}
	}
}

func TestSelfLoopsAreHarmless(t *testing.T) {
	// Self-loops kept in the graph (no RemoveSelfLoops): traversals must
	// not diverge or double-count.
	g, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 1, Dst: 1}, {Src: 1, Dst: 2},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lv := BFSLevels(g, 0, core.Options{})
	want := []int32{0, 1, 2}
	for v := range want {
		if lv[v] != want[v] {
			t.Errorf("level[%d] = %d, want %d", v, lv[v], want[v])
		}
	}
	if res := BellmanFord(g, 0, core.Options{}); res.NegativeCycle {
		t.Error("self-loops flagged as negative cycle")
	}
}

func TestDisconnectedBellmanFord(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 3},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	res := BellmanFord(g, 0, core.Options{})
	if res.Dist[1] != 3 || res.Dist[2] != InfDist || res.Dist[3] != InfDist {
		t.Errorf("dist = %v", res.Dist)
	}
}

func TestPageRankNoStoppingRuleDefaults(t *testing.T) {
	// MaxIterations <= 0 with Epsilon <= 0 would mean "never stop"; the
	// implementation falls back to a default iteration bound instead of
	// looping forever.
	g := edgeless(t, 4)
	res := PageRank(g, PageRankOptions{Damping: 0.85, MaxIterations: 0, Epsilon: 0})
	if res.Iterations <= 0 || res.Iterations > 1000 {
		t.Errorf("iterations = %d, expected a bounded default", res.Iterations)
	}
}
