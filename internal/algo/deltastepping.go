package algo

import (
	"context"
	"errors"
	"sync/atomic"

	"ligra/internal/atomicx"
	"ligra/internal/buckets"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// DeltaSteppingResult carries the output of delta-stepping SSSP.
type DeltaSteppingResult struct {
	// Dist[v] is the shortest-path distance from the source (InfDist if
	// unreachable).
	Dist []int64
	// Buckets is the number of distance buckets processed.
	Buckets int
	// Phases is the total number of edgeMap phases (light fixpoint rounds
	// plus one heavy round per non-empty bucket).
	Phases int
}

// DeltaStepping computes single-source shortest paths with non-negative
// integer weights using the delta-stepping algorithm of Meyer and
// Sanders, expressed on top of edgeMap with lazy bucketing — the workload
// that motivated the Julienne extension of Ligra (Dhulipala, Blelloch,
// Shun, SPAA 2017). Vertices are grouped into buckets of width delta by
// tentative distance; bucket k is relaxed to a fixpoint over light edges
// (weight <= delta), then its settled vertices relax their heavy edges
// once.
//
// delta <= 0 selects a simple heuristic (the average edge weight + 1).
// Negative edge weights are rejected.
func DeltaStepping(g graph.View, source uint32, delta int64, opts core.Options) (*DeltaSteppingResult, error) {
	res, err := DeltaSteppingCtx(nil, g, source, delta, opts)
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		// Preserve the historical contract: worker panics propagate as
		// panics from the non-ctx entry point; only input errors return.
		panic(pe)
	}
	return res, err
}

// DeltaSteppingCtx is DeltaStepping with cooperative cancellation,
// observed between buckets, between light-edge fixpoint phases, and at
// chunk granularity inside every edgeMap. On interruption Dist holds
// valid upper bounds on the true distances (writeMin only tightens),
// returned with a *RoundError whose Round counts completed edgeMap
// phases.
func DeltaSteppingCtx(ctx context.Context, g graph.View, source uint32, delta int64, opts core.Options) (*DeltaSteppingResult, error) {
	n := g.NumVertices()
	var negErr atomic.Bool
	if delta <= 0 {
		var sum atomic.Int64
		parallel.For(n, func(i int) {
			g.OutNeighbors(uint32(i), func(_ uint32, w int32) bool {
				if w < 0 {
					negErr.Store(true)
					return false
				}
				sum.Add(int64(w))
				return true
			})
		})
		if m := g.NumEdges(); m > 0 {
			delta = sum.Load()/m + 1
		} else {
			delta = 1
		}
	} else {
		parallel.For(n, func(i int) {
			g.OutNeighbors(uint32(i), func(_ uint32, w int32) bool {
				if w < 0 {
					negErr.Store(true)
					return false
				}
				return true
			})
		})
	}
	if negErr.Load() {
		return nil, errors.New("algo: delta-stepping requires non-negative weights")
	}

	dist := make([]int64, n)
	parallel.Fill(dist, InfDist)
	dist[source] = 0

	// visited flags give exactly-once output-frontier membership per
	// edgeMap phase (reset after each phase, as in Bellman-Ford).
	visited := make([]uint32, n)
	relax := func(lightOnly, heavyOnly bool) core.EdgeFuncs {
		update := func(s, d uint32, w int32) bool {
			w64 := int64(w)
			if lightOnly && w64 > delta {
				return false
			}
			if heavyOnly && w64 <= delta {
				return false
			}
			sd := atomic.LoadInt64(&dist[s])
			if sd >= InfDist {
				return false
			}
			if atomicx.WriteMinInt64(&dist[d], sd+w64) {
				return atomicx.TestAndSetBool(&visited[d])
			}
			return false
		}
		return core.EdgeFuncs{Update: update, UpdateAtomic: update}
	}
	lightFuncs := relax(true, false)
	heavyFuncs := relax(false, true)

	// Julienne-style lazy buckets by tentative distance / delta. Every
	// distance improvement is mirrored by a bucket update, so the
	// structure's stale-entry validation replaces explicit distance
	// checks.
	bkts := buckets.New(n, func(v uint32) int64 {
		if v == source {
			return 0
		}
		return buckets.Finished
	})
	bucketOf := func(v uint32) int64 { return dist[v] / delta }
	resetVisited := func(out *core.VertexSubset) {
		core.VertexMap(out, func(v uint32) { visited[v] = 0 })
	}

	nBuckets, phases := 0, 0
	partial := func(err error) (*DeltaSteppingResult, error) {
		return &DeltaSteppingResult{Dist: dist, Buckets: nBuckets, Phases: phases},
			roundErr("delta-stepping", phases, err)
	}
	for {
		if err := ctxErr(ctx); err != nil {
			return partial(err)
		}
		k, cur, ok := bkts.Next()
		if !ok {
			break
		}
		nBuckets++

		// Light-edge fixpoint for bucket k. Track all settled members.
		settled := append([]uint32(nil), cur...)
		settledSet := map[uint32]bool{}
		for _, v := range cur {
			settledSet[v] = true
		}
		for len(cur) > 0 {
			frontier := core.NewSparse(n, cur)
			out, err := core.EdgeMapCtx(ctx, g, frontier, lightFuncs, opts)
			if err != nil {
				return partial(err)
			}
			resetVisited(out)
			phases++
			cur = nil
			out.ForEachSeq(func(v uint32) {
				if bucketOf(v) == k {
					// Pulled into (or improved within) the open bucket:
					// process immediately and retire any pending entry.
					bkts.Update(v, buckets.Finished)
					if !settledSet[v] {
						settledSet[v] = true
						settled = append(settled, v)
					}
					cur = append(cur, v)
				} else {
					bkts.Update(v, bucketOf(v))
				}
			})
		}

		// One heavy-edge pass from everything settled in this bucket;
		// heavy targets land strictly beyond bucket k.
		frontier := core.NewSparse(n, settled)
		out, err := core.EdgeMapCtx(ctx, g, frontier, heavyFuncs, opts)
		if err != nil {
			return partial(err)
		}
		resetVisited(out)
		phases++
		out.ForEachSeq(func(v uint32) {
			bkts.Update(v, bucketOf(v))
		})
	}
	return &DeltaSteppingResult{Dist: dist, Buckets: nBuckets, Phases: phases}, nil
}
