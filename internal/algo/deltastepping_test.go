package algo

import (
	"math/rand"
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/seq"
)

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for gname, g := range testGraphs(t) {
		wg := g.AddWeights(graph.HashWeight(32))
		want := seq.Dijkstra(wg, 0)
		for _, delta := range []int64{0, 1, 4, 16, 1 << 30} {
			res, err := DeltaStepping(wg, 0, delta, core.Options{})
			if err != nil {
				t.Fatalf("%s delta=%d: %v", gname, delta, err)
			}
			for v := range want {
				if res.Dist[v] != want[v] {
					t.Fatalf("%s delta=%d: dist[%d] = %d, want %d",
						gname, delta, v, res.Dist[v], want[v])
				}
			}
		}
	}
}

func TestDeltaSteppingDeltaOneVsHuge(t *testing.T) {
	// delta=1 degenerates toward Dijkstra (many buckets); delta=inf
	// degenerates toward Bellman-Ford (one bucket). Both must agree; the
	// bucket counts must reflect the regime.
	g, err := gen.RMAT(9, 8, gen.PBBSRMAT, 6)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.AddWeights(graph.HashWeight(32))
	fine, err := DeltaStepping(wg, 0, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := DeltaStepping(wg, 0, 1<<40, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Buckets != 1 {
		t.Errorf("huge delta used %d buckets, want 1", coarse.Buckets)
	}
	if fine.Buckets <= coarse.Buckets {
		t.Errorf("delta=1 used %d buckets, expected more than %d", fine.Buckets, coarse.Buckets)
	}
	for v := range fine.Dist {
		if fine.Dist[v] != coarse.Dist[v] {
			t.Fatalf("dist[%d] differs across deltas", v)
		}
	}
}

func TestDeltaSteppingRejectsNegativeWeights(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Weight: -1}},
		graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaStepping(g, 0, 1, core.Options{}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := DeltaStepping(g, 0, 0, core.Options{}); err == nil {
		t.Error("negative weight accepted with auto delta")
	}
}

func TestDeltaSteppingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(150)
		m := rng.Intn(5 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{
				Src:    uint32(rng.Intn(n)),
				Dst:    uint32(rng.Intn(n)),
				Weight: int32(rng.Intn(64)),
			}
		}
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{
			Weighted: true, RemoveSelfLoops: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := uint32(rng.Intn(n))
		want := seq.Dijkstra(g, src)
		delta := int64(rng.Intn(40))
		res, err := DeltaStepping(g, src, delta, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("trial %d delta=%d: dist[%d] = %d, want %d",
					trial, delta, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestDeltaSteppingUnweighted(t *testing.T) {
	// Unweighted graphs have weight 1 everywhere: distances equal BFS
	// levels.
	g, err := gen.Grid3D(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DeltaStepping(g, 0, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lv := seq.BFSLevels(g, 0)
	for v := range lv {
		if int64(lv[v]) != res.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], lv[v])
		}
	}
}
