package algo

import (
	"sync/atomic"

	"ligra/internal/buckets"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// DensestResult carries an approximate densest subgraph.
type DensestResult struct {
	// Vertices of the returned subgraph.
	Vertices []uint32
	// Density is |E(S)| / |S| counting undirected edges once.
	Density float64
	// Peels is the number of peel rounds executed.
	Peels int
}

// DensestSubgraph computes a 2-approximation of the densest subgraph of a
// symmetric simple graph with Charikar's greedy peeling (the classic
// bucketing workload): repeatedly remove a minimum-degree vertex (here, a
// whole minimum bucket at a time, which preserves the approximation
// factor) and return the intermediate subgraph of maximum density.
// Uses the Julienne bucket structure keyed by current degree.
func DensestSubgraph(g graph.View, opts core.Options) *DensestResult {
	n := g.NumVertices()
	if n == 0 {
		return &DensestResult{}
	}
	deg := make([]int32, n)
	parallel.For(n, func(i int) { deg[i] = int32(g.OutDegree(uint32(i))) })
	removed := make([]int32, n) // peel order stamp; -1 = still present
	parallel.Fill(removed, int32(-1))

	bkts := buckets.New(n, func(v uint32) int64 { return int64(deg[v]) })

	// Track density as vertices peel: edges halve-counted via degree sum.
	aliveVerts := int64(n)
	aliveEdges := g.NumEdges() / 2 // undirected edges
	bestDensity := float64(aliveEdges) / float64(aliveVerts)
	bestStamp := int32(0) // subgraph = vertices with removed >= bestStamp or -1

	opts.RemoveDuplicates = true
	stamp := int32(0)
	funcs := core.EdgeFuncs{
		UpdateAtomic: func(_, d uint32, _ int32) bool {
			if atomic.LoadInt32(&removed[d]) != -1 {
				return false
			}
			atomic.AddInt32(&deg[d], -1)
			return true
		},
	}

	peels := 0
	for {
		_, members, ok := bkts.Next()
		if !ok {
			break
		}
		peels++
		stamp++
		for _, v := range members {
			removed[v] = stamp
		}
		// Edges leaving with this batch: sum of the members' remaining
		// degrees, minus the double count of edges internal to the batch
		// (each internal edge appears in two members' degrees).
		var removedEdges, internalPairs int64
		for _, v := range members {
			removedEdges += int64(deg[v])
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if removed[d] == stamp && d != v {
					internalPairs++
				}
				return true
			})
		}
		removedEdges -= internalPairs / 2

		frontier := core.NewSparse(n, members)
		out := core.EdgeMap(g, frontier, funcs, opts)
		out.ForEachSeq(func(d uint32) {
			if removed[d] != -1 {
				return
			}
			bkts.Update(d, int64(deg[d]))
		})

		aliveVerts -= int64(len(members))
		aliveEdges -= removedEdges
		if aliveVerts > 0 {
			if dns := float64(aliveEdges) / float64(aliveVerts); dns > bestDensity {
				bestDensity = dns
				bestStamp = stamp
			}
		}
	}

	var verts []uint32
	for v := 0; v < n; v++ {
		if removed[v] == -1 || removed[v] > bestStamp {
			verts = append(verts, uint32(v))
		}
	}
	return &DensestResult{Vertices: verts, Density: bestDensity, Peels: peels}
}
