package algo

import (
	"math"
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// densityOf computes |E(S)|/|S| for a vertex set of a symmetric graph.
func densityOf(g graph.View, verts []uint32) float64 {
	in := map[uint32]bool{}
	for _, v := range verts {
		in[v] = true
	}
	var edges int64
	for _, v := range verts {
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if in[d] && d > v {
				edges++
			}
			return true
		})
	}
	return float64(edges) / float64(len(verts))
}

func TestDensestSubgraphCliqueWithTail(t *testing.T) {
	// K10 plus a long path attached: the densest subgraph is the clique,
	// density (k-1)/2 = 4.5.
	const k = 10
	var edges []graph.Edge
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			edges = append(edges, graph.Edge{Src: uint32(a), Dst: uint32(b)})
		}
	}
	for i := 0; i < 30; i++ {
		edges = append(edges, graph.Edge{Src: uint32(k + i - boolToInt(i > 0)), Dst: uint32(k + i)})
	}
	g, err := graph.FromEdges(k+30, edges, graph.BuildOptions{Symmetrize: true, RemoveDuplicates: true, RemoveSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	res := DensestSubgraph(g, core.Options{})
	if math.Abs(res.Density-4.5) > 1e-9 {
		t.Errorf("density = %v, want 4.5", res.Density)
	}
	// The reported vertex set must achieve the reported density.
	if got := densityOf(g, res.Vertices); math.Abs(got-res.Density) > 1e-9 {
		t.Errorf("reported set has density %v, claimed %v", got, res.Density)
	}
	// The clique is inside the returned set.
	in := map[uint32]bool{}
	for _, v := range res.Vertices {
		in[v] = true
	}
	for v := uint32(0); v < k; v++ {
		if !in[v] {
			t.Errorf("clique vertex %d missing", v)
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestDensestSubgraphApproximation(t *testing.T) {
	// 2-approximation sanity: the k-core bound gives maxDensity >=
	// maxCore/2, and Charikar guarantees density >= maxDensity/2 >=
	// maxCore/4; also the whole graph's density is a trivial lower bound.
	for _, gname := range []string{"rmat", "grid3d", "er-sparse"} {
		g := testGraphs(t)[gname]
		res := DensestSubgraph(g, core.Options{})
		whole := float64(g.NumEdges()/2) / float64(g.NumVertices())
		if res.Density < whole-1e-9 {
			t.Errorf("%s: density %v below whole-graph %v", gname, res.Density, whole)
		}
		kc := KCore(g, core.Options{})
		if res.Density < float64(kc.MaxCore)/2-1e-9 {
			t.Errorf("%s: density %v below maxcore/2 = %v (violates 2-approx)",
				gname, res.Density, float64(kc.MaxCore)/2)
		}
		if got := densityOf(g, res.Vertices); math.Abs(got-res.Density) > 1e-9 {
			t.Errorf("%s: set density %v != reported %v", gname, got, res.Density)
		}
	}
}

func TestDensestSubgraphDegenerate(t *testing.T) {
	p, _ := gen.Path(10)
	res := DensestSubgraph(p, core.Options{})
	if res.Density < 0.9-1e-9 { // path density approaches 1 (cycle-free max 9/10)
		t.Errorf("path density %v", res.Density)
	}
	single, _ := graph.FromEdges(1, nil, graph.BuildOptions{Symmetrize: true})
	res = DensestSubgraph(single, core.Options{})
	if res.Density != 0 {
		t.Errorf("single vertex density %v", res.Density)
	}
}
