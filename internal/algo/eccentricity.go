package algo

import (
	"context"
	"sort"

	"ligra/internal/core"
	"ligra/internal/graph"
)

// EccentricityResult carries the two-pass eccentricity estimates.
type EccentricityResult struct {
	// Ecc[v] is the estimated eccentricity of v (a lower bound on the
	// true value; -1 if v was not reached by any sampled BFS).
	Ecc []int32
	// DiameterLowerBound is the largest estimate observed.
	DiameterLowerBound int32
	// Rounds is the total number of edgeMap rounds over both passes.
	Rounds int
}

// TwoPassEccentricity estimates per-vertex eccentricities with the simple
// two-pass multi-BFS scheme that Shun's KDD 2015 study found to be
// surprisingly effective: run K simultaneous BFS from a random sample
// (pass 1), then re-run from the vertices the first pass found to be
// farthest from the sample — good candidates for the graph's periphery —
// and keep the per-vertex maximum distance observed in either pass.
// Estimates are lower bounds that typically approach the true
// eccentricities on small-diameter graphs.
func TwoPassEccentricity(g graph.View, k int, seed uint64, opts core.Options) *EccentricityResult {
	res, err := TwoPassEccentricityCtx(nil, g, k, seed, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// TwoPassEccentricityCtx is TwoPassEccentricity with cooperative
// cancellation threaded through both multi-BFS passes. On interruption
// Ecc holds the per-vertex maximum over whatever rounds completed (still
// valid lower bounds) with a *RoundError.
func TwoPassEccentricityCtx(ctx context.Context, g graph.View, k int, seed uint64, opts core.Options) (*EccentricityResult, error) {
	n := g.NumVertices()
	if k <= 0 || k > 64 {
		k = 64
	}
	if k > n {
		k = n
	}
	// Pass 1: random sample.
	pass1, err := RadiiCtx(ctx, g, RadiiOptions{K: k, Seed: seed, EdgeMap: opts})
	if err != nil {
		return &EccentricityResult{
			Ecc:                pass1.Radii,
			DiameterLowerBound: maxOrMinusOne(pass1.Radii),
			Rounds:             pass1.Rounds,
		}, roundErr("eccentricity", pass1.Rounds, err)
	}

	// Peripheral candidates: the k vertices with the largest pass-1
	// estimates (ties by ID for determinism).
	type cand struct {
		v   uint32
		ecc int32
	}
	cands := make([]cand, 0, n)
	for v := 0; v < n; v++ {
		if pass1.Radii[v] >= 0 {
			cands = append(cands, cand{uint32(v), pass1.Radii[v]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ecc != cands[j].ecc {
			return cands[i].ecc > cands[j].ecc
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	sources2 := make([]uint32, len(cands))
	for i, c := range cands {
		sources2[i] = c.v
	}

	// Pass 2: multi-BFS from the periphery via the same bit-vector
	// machinery.
	pass2, rounds2, err2 := radiiFromSources(ctx, g, sources2, opts)

	ecc := make([]int32, n)
	var diam int32 = -1
	for v := 0; v < n; v++ {
		e := pass1.Radii[v]
		if pass2[v] > e {
			e = pass2[v]
		}
		ecc[v] = e
		if e > diam {
			diam = e
		}
	}
	res := &EccentricityResult{
		Ecc:                ecc,
		DiameterLowerBound: diam,
		Rounds:             pass1.Rounds + rounds2,
	}
	return res, roundErr("eccentricity", res.Rounds, err2)
}

// maxOrMinusOne returns the maximum of xs, or -1 for an empty slice.
func maxOrMinusOne(xs []int32) int32 {
	m := int32(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
