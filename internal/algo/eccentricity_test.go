package algo

import (
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/seq"
)

func TestTwoPassEccentricityBounds(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "tree"} {
		g := testGraphs(t)[gname]
		res := TwoPassEccentricity(g, 16, 3, core.Options{})
		onePass := Radii(g, RadiiOptions{K: 16, Seed: 3})
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			// The two-pass estimate dominates the one-pass estimate.
			if res.Ecc[v] < onePass.Radii[v] {
				t.Fatalf("%s: two-pass estimate %d below one-pass %d at %d",
					gname, res.Ecc[v], onePass.Radii[v], v)
			}
		}
		// Estimates never exceed the true eccentricity (they are BFS
		// distances, hence lower bounds). Verify exactly on connected
		// graphs.
		exact := make([]int32, n)
		maxTrue := int32(-1)
		for v := 0; v < n; v++ {
			lv := seq.BFSLevels(g, uint32(v))
			var m int32 = -1
			for _, l := range lv {
				if l > m {
					m = l
				}
			}
			exact[v] = m
			if m > maxTrue {
				maxTrue = m
			}
		}
		for v := 0; v < n; v++ {
			if res.Ecc[v] > exact[v] {
				t.Fatalf("%s: estimate %d exceeds true eccentricity %d at %d",
					gname, res.Ecc[v], exact[v], v)
			}
		}
		if res.DiameterLowerBound > maxTrue {
			t.Fatalf("%s: diameter bound %d exceeds true diameter %d",
				gname, res.DiameterLowerBound, maxTrue)
		}
	}
}

func TestTwoPassFindsPathDiameter(t *testing.T) {
	// On a path, pass 2 starts from (near-)endpoints, so the diameter
	// bound should be exact even with a small sample.
	g, err := gen.Path(300)
	if err != nil {
		t.Fatal(err)
	}
	res := TwoPassEccentricity(g, 8, 1, core.Options{})
	if res.DiameterLowerBound != 299 {
		t.Errorf("path diameter bound %d, want 299", res.DiameterLowerBound)
	}
}

func TestTwoPassImprovesOnGrid(t *testing.T) {
	g := testGraphs(t)["grid3d"]
	one := Radii(g, RadiiOptions{K: 4, Seed: 9})
	two := TwoPassEccentricity(g, 4, 9, core.Options{})
	var oneMax, twoMax int32
	for v := range one.Radii {
		if one.Radii[v] > oneMax {
			oneMax = one.Radii[v]
		}
		if two.Ecc[v] > twoMax {
			twoMax = two.Ecc[v]
		}
	}
	if twoMax < oneMax {
		t.Errorf("two-pass bound %d below one-pass %d", twoMax, oneMax)
	}
}

func TestRadiiMultiMatchesOracle(t *testing.T) {
	g := testGraphs(t)["er-sparse"]
	res := RadiiMulti(g, 150, 4, core.Options{})
	if len(res.Sources) != 150 {
		t.Fatalf("%d sources, want 150", len(res.Sources))
	}
	want := seq.Eccentricities(g, res.Sources)
	for v := range want {
		if res.Radii[v] != want[v] {
			t.Fatalf("radii[%d] = %d, want %d", v, res.Radii[v], want[v])
		}
	}
}

func TestRadiiMultiSmallK(t *testing.T) {
	g := testGraphs(t)["path"]
	res := RadiiMulti(g, 8, 1, core.Options{})
	want := seq.Eccentricities(g, res.Sources)
	for v := range want {
		if res.Radii[v] != want[v] {
			t.Fatalf("radii[%d] = %d, want %d", v, res.Radii[v], want[v])
		}
	}
}
