package algo

import (
	"math/rand"
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/seq"
)

func TestMaximalMatchingValid(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "star", "tree", "er-sparse"} {
		g := testGraphs(t)[gname]
		res := MaximalMatching(g, 7)
		const none = ^uint32(0)
		n := g.NumVertices()
		matchedEdges := 0
		for v := uint32(0); int(v) < n; v++ {
			p := res.Partner[v]
			if p == none {
				continue
			}
			// Symmetry of the matching.
			if res.Partner[p] != v {
				t.Fatalf("%s: partner asymmetry: %d->%d->%d", gname, v, p, res.Partner[p])
			}
			// Matched pairs must be actual edges.
			found := false
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d == p {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("%s: matched pair (%d, %d) is not an edge", gname, v, p)
			}
			if p > v {
				matchedEdges++
			}
		}
		if matchedEdges != res.Size {
			t.Errorf("%s: Size = %d, counted %d", gname, res.Size, matchedEdges)
		}
		// Maximality: no edge with both endpoints unmatched.
		for v := uint32(0); int(v) < n; v++ {
			if res.Partner[v] != none {
				continue
			}
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d != v && res.Partner[d] == none {
					t.Fatalf("%s: edge (%d, %d) has both endpoints unmatched", gname, v, d)
				}
				return true
			})
		}
	}
}

func TestMaximalMatchingKnownSizes(t *testing.T) {
	// Path of 2: exactly one matched edge.
	p2, _ := gen.Path(2)
	if res := MaximalMatching(p2, 1); res.Size != 1 {
		t.Errorf("P2 matching size %d, want 1", res.Size)
	}
	// Star: exactly one edge can match.
	st, _ := gen.Star(20)
	if res := MaximalMatching(st, 1); res.Size != 1 {
		t.Errorf("star matching size %d, want 1", res.Size)
	}
	// Complete graph K6: perfect matching of size 3 is maximal, and any
	// maximal matching in K6 has size >= 2; greedy yields 3 or 2.
	k6, _ := gen.Complete(6)
	if res := MaximalMatching(k6, 1); res.Size < 2 || res.Size > 3 {
		t.Errorf("K6 matching size %d", res.Size)
	}
}

func TestColoringProper(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "star", "tree", "er-sparse"} {
		g := testGraphs(t)[gname]
		res := Coloring(g, 3, core.Options{})
		maxDeg := 0
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			if d := g.OutDegree(v); d > maxDeg {
				maxDeg = d
			}
			if res.Colors[v] < 0 {
				t.Fatalf("%s: vertex %d uncolored", gname, v)
			}
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d != v && res.Colors[d] == res.Colors[v] {
					t.Fatalf("%s: adjacent %d and %d share color %d", gname, v, d, res.Colors[v])
				}
				return true
			})
		}
		if res.NumColors > maxDeg+1 {
			t.Errorf("%s: %d colors exceeds maxdeg+1 = %d", gname, res.NumColors, maxDeg+1)
		}
	}
}

func TestColoringKnownCounts(t *testing.T) {
	// Bipartite path: greedy with any order uses at most 2 colors... greedy
	// can use 2 (never 3 on a path processed in any priority order? greedy
	// on a path can use 3 in adversarial orders, but <= maxdeg+1 = 3).
	p, _ := gen.Path(50)
	res := Coloring(p, 5, core.Options{})
	if res.NumColors > 3 {
		t.Errorf("path colored with %d colors", res.NumColors)
	}
	// Complete graph needs exactly n colors.
	k5, _ := gen.Complete(5)
	res = Coloring(k5, 5, core.Options{})
	if res.NumColors != 5 {
		t.Errorf("K5 colored with %d colors, want 5", res.NumColors)
	}
}

func TestColoringDeterministic(t *testing.T) {
	g := testGraphs(t)["rmat"]
	a := Coloring(g, 42, core.Options{})
	b := Coloring(g, 42, core.Options{Mode: core.ForceSparse})
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("coloring not internally deterministic at vertex %d", v)
		}
	}
}

func TestSCCMatchesTarjan(t *testing.T) {
	// Hand-built: two 3-cycles joined by a one-way edge, plus a loner.
	g, err := graph.FromEdges(7, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.SCC(g)
	got := SCC(g, core.Options{})
	for v := range want {
		if got.Labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got.Labels[v], want[v])
		}
	}
	if got.Components != 3 {
		t.Errorf("Components = %d, want 3 (two cycles + loner)", got.Components)
	}
}

func TestSCCRandomizedAgainstTarjan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(120)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: uint32(rng.Intn(n)), Dst: uint32(rng.Intn(n))}
		}
		g, err := graph.FromEdges(n, edges, graph.BuildOptions{RemoveSelfLoops: true, RemoveDuplicates: true})
		if err != nil {
			t.Fatal(err)
		}
		want := seq.SCC(g)
		got := SCC(g, core.Options{})
		for v := range want {
			if got.Labels[v] != want[v] {
				t.Fatalf("trial %d: label[%d] = %d, want %d", trial, v, got.Labels[v], want[v])
			}
		}
	}
}

func TestSCCDirectedRMAT(t *testing.T) {
	g, err := gen.RMATDirected(8, 4, gen.PBBSRMAT, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.SCC(g)
	got := SCC(g, core.Options{})
	for v := range want {
		if got.Labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got.Labels[v], want[v])
		}
	}
}

func TestSCCOnSymmetricEqualsCC(t *testing.T) {
	// On an undirected graph SCCs are the connected components.
	g := testGraphs(t)["er-sparse"]
	want := seq.ConnectedComponents(g)
	got := SCC(g, core.Options{})
	for v := range want {
		if got.Labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got.Labels[v], want[v])
		}
	}
}

func TestKCoreJulienneMatchesPeeling(t *testing.T) {
	for gname, g := range testGraphs(t) {
		if !g.Symmetric() {
			continue
		}
		a := KCore(g, core.Options{})
		b := KCoreJulienne(g, core.Options{})
		if a.MaxCore != b.MaxCore {
			t.Fatalf("%s: MaxCore %d vs %d", gname, a.MaxCore, b.MaxCore)
		}
		for v := range a.Coreness {
			if a.Coreness[v] != b.Coreness[v] {
				t.Fatalf("%s: coreness[%d] = %d vs %d", gname, v, a.Coreness[v], b.Coreness[v])
			}
		}
	}
}

func TestKCoreJulienneKnownValues(t *testing.T) {
	k5, _ := gen.Complete(5)
	res := KCoreJulienne(k5, core.Options{})
	for v, c := range res.Coreness {
		if c != 4 {
			t.Errorf("K5 coreness[%d] = %d, want 4", v, c)
		}
	}
	st, _ := gen.Star(10)
	res = KCoreJulienne(st, core.Options{})
	for v, c := range res.Coreness {
		if c != 1 {
			t.Errorf("star coreness[%d] = %d, want 1", v, c)
		}
	}
}

func TestSpanningForestProperties(t *testing.T) {
	for gname, g := range testGraphs(t) {
		if !g.Symmetric() {
			continue
		}
		res := SpanningForest(g, core.Options{})
		n := g.NumVertices()
		comps := map[uint32]bool{}
		for _, l := range seq.ConnectedComponents(g) {
			comps[l] = true
		}
		// Exactly n - #components edges and #components roots.
		if len(res.Edges) != n-len(comps) {
			t.Fatalf("%s: %d forest edges, want %d", gname, len(res.Edges), n-len(comps))
		}
		if len(res.Roots) != len(comps) {
			t.Fatalf("%s: %d roots, want %d", gname, len(res.Roots), len(comps))
		}
		// Every vertex except roots appears exactly once as a child, and
		// each forest edge exists in the graph.
		childCount := make([]int, n)
		for _, e := range res.Edges {
			childCount[e.Dst]++
			found := false
			g.OutNeighbors(e.Src, func(d uint32, _ int32) bool {
				if d == e.Dst {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("%s: forest edge %d->%d not in graph", gname, e.Src, e.Dst)
			}
		}
		isRoot := map[uint32]bool{}
		for _, r := range res.Roots {
			isRoot[r] = true
		}
		for v := 0; v < n; v++ {
			want := 1
			if isRoot[uint32(v)] {
				want = 0
			}
			if childCount[v] != want {
				t.Fatalf("%s: vertex %d is a child %d times, want %d", gname, v, childCount[v], want)
			}
		}
	}
}
