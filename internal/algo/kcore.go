package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/buckets"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// KCoreResult carries the output of the k-core decomposition.
type KCoreResult struct {
	// Coreness[v] is the largest k such that v belongs to the k-core (the
	// maximal subgraph with all induced degrees >= k).
	Coreness []int32
	// MaxCore is the largest coreness over all vertices (the degeneracy).
	MaxCore int32
	// Rounds is the total number of peeling edgeMap rounds.
	Rounds int
}

// KCore computes the k-core decomposition of a symmetric graph by parallel
// peeling, the bucketing-style workload that motivated the Julienne
// extension of Ligra: for k = 1, 2, ... it repeatedly removes vertices
// whose induced degree is below k (assigning them coreness k-1), pushing
// degree decrements to neighbors through edgeMap. A neighbor joins the
// next peel set exactly when its degree first drops below k, which the
// fetch-and-add detects without extra flags.
func KCore(g graph.View, opts core.Options) *KCoreResult {
	res, err := KCoreCtx(nil, g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// KCoreCtx is KCore with cooperative cancellation, observed before each
// peel round and at chunk granularity inside the peeling edgeMaps. On
// interruption Coreness is exact for every already-peeled vertex (-1 for
// vertices not yet assigned) and is returned with a *RoundError.
func KCoreCtx(ctx context.Context, g graph.View, opts core.Options) (*KCoreResult, error) {
	n := g.NumVertices()
	coreness := make([]int32, n)
	parallel.Fill(coreness, int32(-1))
	deg := make([]int32, n)
	parallel.For(n, func(i int) { deg[i] = int32(g.OutDegree(uint32(i))) })

	alive := n
	rounds := 0
	partial := func(err error) (*KCoreResult, error) {
		maxCore := int32(0)
		if n > 0 {
			maxCore = parallel.Max(coreness)
		}
		return &KCoreResult{Coreness: coreness, MaxCore: maxCore, Rounds: rounds},
			roundErr("kcore", rounds, err)
	}
	k := int32(1)
	for alive > 0 {
		if err := ctxErr(ctx); err != nil {
			return partial(err)
		}
		peel := core.NewFromFunc(n, func(v uint32) bool {
			return coreness[v] == -1 && deg[v] < k
		})
		if peel.IsEmpty() {
			k++
			continue
		}
		funcs := core.EdgeFuncs{
			UpdateAtomic: func(_, d uint32, _ int32) bool {
				if atomic.LoadInt32(&coreness[d]) != -1 {
					return false
				}
				// Exactly-once: only the decrement crossing k-1 returns
				// true. Current peel members sit below k-1 already, so
				// they never rejoin.
				return atomic.AddInt32(&deg[d], -1) == k-1
			},
		}
		for !peel.IsEmpty() {
			core.VertexMap(peel, func(v uint32) { coreness[v] = k - 1 })
			alive -= peel.Size()
			next, err := core.EdgeMapCtx(ctx, g, peel, funcs, opts)
			if err != nil {
				return partial(err)
			}
			peel = next
			rounds++
		}
		k++
	}
	return partial(nil)
}

// KCoreJulienne computes the same k-core decomposition using the
// work-efficient bucketing structure of Julienne (Dhulipala, Blelloch,
// Shun, SPAA 2017): vertices live in buckets keyed by remaining degree;
// the smallest bucket is peeled, its members' coreness is the bucket
// index, and decremented neighbors move to bucket max(newDegree, k).
// Unlike KCore's scan for the next peel set (O(|V|) per round), the
// bucket structure charges each vertex move O(1).
func KCoreJulienne(g graph.View, opts core.Options) *KCoreResult {
	res, err := KCoreJulienneCtx(nil, g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// KCoreJulienneCtx is KCoreJulienne with cooperative cancellation,
// observed before each bucket extraction and inside each peeling edgeMap.
// The partial-result contract matches KCoreCtx: Coreness is exact for
// peeled vertices, -1 otherwise.
func KCoreJulienneCtx(ctx context.Context, g graph.View, opts core.Options) (*KCoreResult, error) {
	n := g.NumVertices()
	coreness := make([]int32, n)
	parallel.Fill(coreness, int32(-1))
	deg := make([]int32, n)
	parallel.For(n, func(i int) { deg[i] = int32(g.OutDegree(uint32(i))) })

	bkts := buckets.New(n, func(v uint32) int64 { return int64(deg[v]) })

	// Touched neighbors join the output frontier once per peel round;
	// duplicates are possible (several peeled neighbors), so dedup.
	opts.RemoveDuplicates = true
	var k int64
	funcs := core.EdgeFuncs{
		UpdateAtomic: func(_, d uint32, _ int32) bool {
			if atomic.LoadInt32(&coreness[d]) != -1 {
				return false
			}
			atomic.AddInt32(&deg[d], -1)
			return true
		},
	}

	rounds := 0
	maxCore := int32(0)
	for {
		if err := ctxErr(ctx); err != nil {
			return &KCoreResult{Coreness: coreness, MaxCore: maxCore, Rounds: rounds},
				roundErr("kcore-julienne", rounds, err)
		}
		id, members, ok := bkts.Next()
		if !ok {
			break
		}
		k = id
		rounds++
		for _, v := range members {
			coreness[v] = int32(k)
		}
		if int32(k) > maxCore {
			maxCore = int32(k)
		}
		frontier := core.NewSparse(n, members)
		out, err := core.EdgeMapCtx(ctx, g, frontier, funcs, opts)
		if err != nil {
			return &KCoreResult{Coreness: coreness, MaxCore: maxCore, Rounds: rounds},
				roundErr("kcore-julienne", rounds, err)
		}
		out.ForEachSeq(func(d uint32) {
			if coreness[d] != -1 {
				return
			}
			nd := int64(deg[d])
			if nd < k {
				nd = k
			}
			bkts.Update(d, nd)
		})
	}
	if n == 0 {
		maxCore = 0
	}
	return &KCoreResult{Coreness: coreness, MaxCore: maxCore, Rounds: rounds}, nil
}
