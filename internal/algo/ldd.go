package algo

import (
	"math"
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// LDDResult carries a low-diameter decomposition.
type LDDResult struct {
	// Cluster[v] is the ID (a vertex) of the cluster containing v.
	Cluster []uint32
	// NumClusters is the number of distinct clusters.
	NumClusters int
	// Rounds is the number of BFS rounds used by the growth process.
	Rounds int
}

// LDD computes a low-diameter decomposition of a symmetric graph in the
// style of Miller, Peng and Xu (as used by Shun, Dhulipala and Blelloch's
// linear-work connectivity, SPAA 2014): every vertex draws an exponential
// shift delta_v with parameter beta, and cluster centers start their BFS
// at time shifted by -delta_v; each vertex joins the first BFS ball to
// reach it. With parameter beta, clusters have radius O(log(n)/beta) and
// only an O(beta) fraction of edges cross clusters, in expectation.
func LDD(g graph.View, beta float64, seed uint64, opts core.Options) *LDDResult {
	n := g.NumVertices()
	if beta <= 0 {
		beta = 0.2
	}
	cluster := make([]uint32, n)
	parallel.Fill(cluster, core.None)

	// Exponential shifts, deterministic per vertex; quantized to integer
	// rounds. start[v] = round at which v's own cluster would begin
	// growing (vertices with larger shifts start earlier relative to the
	// global clock: we invert so the max shift starts at round 0).
	shifts := make([]float64, n)
	maxShift := 0.0
	for v := 0; v < n; v++ {
		u := float64(hashU64(seed, uint64(v))>>11) / (1 << 53)
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		shifts[v] = -math.Log(u) / beta // Exp(beta)
		if shifts[v] > maxShift {
			maxShift = shifts[v]
		}
	}
	start := make([]int, n)
	for v := 0; v < n; v++ {
		start[v] = int(maxShift - shifts[v])
	}

	funcs := core.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			if cluster[d] == core.None {
				cluster[d] = cluster[s]
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			return atomic.CompareAndSwapUint32(&cluster[d],
				core.None, atomic.LoadUint32(&cluster[s]))
		},
		Cond: func(d uint32) bool { return atomic.LoadUint32(&cluster[d]) == core.None },
	}

	frontier := core.NewEmpty(n)
	round := 0
	remaining := n
	for remaining > 0 || !frontier.IsEmpty() {
		// Wake up new centers whose start time has arrived and that have
		// not been captured by an earlier ball.
		wake := core.NewFromFunc(n, func(v uint32) bool {
			return start[v] <= round && cluster[v] == core.None
		})
		if !wake.IsEmpty() {
			core.VertexMap(wake, func(v uint32) {
				atomic.StoreUint32(&cluster[v], v)
			})
			remaining -= wake.Size()
			frontier = core.Union(frontier, wake)
		}
		if frontier.IsEmpty() {
			round++
			continue
		}
		out := core.EdgeMap(g, frontier, funcs, opts)
		remaining -= out.Size()
		frontier = out
		round++
	}

	clusters := parallel.CountFunc(n, func(i int) bool { return cluster[i] == uint32(i) })
	return &LDDResult{Cluster: cluster, NumClusters: clusters, Rounds: round}
}

// ConnectedComponentsLDD computes connected components by repeated graph
// contraction over low-diameter decompositions — the expected linear-work
// algorithm of Shun, Dhulipala and Blelloch (SPAA 2014): decompose,
// contract each cluster to one vertex, recurse on the (much smaller)
// cluster graph of crossing edges, then project labels back.
func ConnectedComponentsLDD(g graph.View, beta float64, seed uint64, opts core.Options) *CCResult {
	n := g.NumVertices()
	ldd := LDD(g, beta, seed, opts)

	// Collect crossing edges between cluster IDs, relabeled densely.
	clusterIDs := parallel.PackIndex[uint32](n, func(i int) bool {
		return ldd.Cluster[i] == uint32(i)
	})
	dense := make([]uint32, n)
	for rank, c := range clusterIDs {
		dense[c] = uint32(rank)
	}
	var crossing []graph.Edge
	for v := uint32(0); int(v) < n; v++ {
		cv := ldd.Cluster[v]
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if cd := ldd.Cluster[d]; cd != cv {
				crossing = append(crossing, graph.Edge{Src: dense[cv], Dst: dense[cd]})
			}
			return true
		})
	}

	labels := make([]uint32, n)
	if len(crossing) == 0 || len(clusterIDs) == 1 {
		// Clusters are exactly the components.
		parallel.For(n, func(i int) { labels[i] = ldd.Cluster[i] })
		normalizeLabels(g, labels)
		components := parallel.CountFunc(n, func(i int) bool { return labels[i] == uint32(i) })
		return &CCResult{Labels: labels, Components: components, Rounds: ldd.Rounds}
	}

	if len(clusterIDs) == n {
		// The decomposition did not contract anything (e.g. beta too
		// large for this graph): recursing would not terminate, so finish
		// with label propagation on the original graph.
		return ConnectedComponents(g, opts)
	}
	cg, err := graph.FromEdges(len(clusterIDs), crossing, graph.BuildOptions{
		RemoveDuplicates: true,
	})
	if err != nil {
		// Cannot happen with valid cluster IDs; fall back to label
		// propagation to stay total.
		return ConnectedComponents(g, opts)
	}
	// The contracted graph is symmetric as an edge set (each crossing
	// undirected edge appears in both directions) even though FromEdges
	// was not asked to symmetrize.
	sub := ConnectedComponentsLDD(cg, beta, seed+1, opts)

	// Project back: component of v = component of its cluster, expressed
	// as a minimum original-vertex label.
	parallel.For(n, func(i int) {
		labels[i] = sub.Labels[dense[ldd.Cluster[i]]]
	})
	// labels currently name dense cluster components; convert to the
	// minimum vertex ID per component for the canonical form.
	normalizeByGroup(labels, n)
	components := parallel.CountFunc(n, func(i int) bool { return labels[i] == uint32(i) })
	return &CCResult{Labels: labels, Components: components, Rounds: ldd.Rounds + sub.Rounds}
}

// normalizeByGroup rewrites arbitrary group IDs to the minimum member
// vertex ID per group.
func normalizeByGroup(labels []uint32, n int) {
	minOf := make(map[uint32]uint32, 64)
	for v := 0; v < n; v++ {
		l := labels[v]
		if m, ok := minOf[l]; !ok || uint32(v) < m {
			minOf[l] = uint32(v)
		}
	}
	parallel.For(n, func(i int) { labels[i] = minOf[labels[i]] })
}

// normalizeLabels rewrites labels so each component is named by its
// minimum vertex ID (labels must already be component-consistent).
func normalizeLabels(g graph.View, labels []uint32) {
	normalizeByGroup(labels, g.NumVertices())
}
