package algo

import (
	"testing"

	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/seq"
)

func TestLDDCoversAllVertices(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "er-sparse"} {
		g := testGraphs(t)[gname]
		res := LDD(g, 0.2, 11, core.Options{})
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			if res.Cluster[v] == core.None {
				t.Fatalf("%s: vertex %d unclustered", gname, v)
			}
		}
		// Cluster IDs are member vertices, and centers belong to their own
		// cluster.
		for v := 0; v < n; v++ {
			c := res.Cluster[v]
			if res.Cluster[c] != c {
				t.Fatalf("%s: cluster ID %d is not a center", gname, c)
			}
		}
		if res.NumClusters < 1 || res.NumClusters > n {
			t.Fatalf("%s: %d clusters", gname, res.NumClusters)
		}
	}
}

func TestLDDClustersAreConnected(t *testing.T) {
	// Every cluster must be internally connected: a BFS within the
	// cluster from its center reaches all members.
	g := testGraphs(t)["rmat"]
	res := LDD(g, 0.3, 5, core.Options{})
	n := g.NumVertices()
	members := map[uint32][]uint32{}
	for v := 0; v < n; v++ {
		members[res.Cluster[v]] = append(members[res.Cluster[v]], uint32(v))
	}
	for center, ms := range members {
		reached := map[uint32]bool{center: true}
		queue := []uint32{center}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if res.Cluster[d] == center && !reached[d] {
					reached[d] = true
					queue = append(queue, d)
				}
				return true
			})
		}
		for _, m := range ms {
			if !reached[m] {
				t.Fatalf("cluster %d: member %d unreachable within cluster", center, m)
			}
		}
	}
}

func TestLDDBetaControlsGranularity(t *testing.T) {
	// Larger beta (earlier starts everywhere) yields more, smaller
	// clusters on average.
	g := testGraphs(t)["grid3d"]
	small := LDD(g, 0.05, 3, core.Options{})
	large := LDD(g, 2.0, 3, core.Options{})
	if large.NumClusters <= small.NumClusters {
		t.Errorf("beta=2.0 gave %d clusters, beta=0.05 gave %d — expected more clusters at larger beta",
			large.NumClusters, small.NumClusters)
	}
}

func TestConnectedComponentsLDDMatchesUnionFind(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "path", "star", "tree", "er-sparse"} {
		g := testGraphs(t)[gname]
		want := seq.ConnectedComponents(g)
		for _, beta := range []float64{0.1, 0.5, 2.0} {
			res := ConnectedComponentsLDD(g, beta, 7, core.Options{})
			for v := range want {
				if res.Labels[v] != want[v] {
					t.Fatalf("%s beta=%v: label[%d] = %d, want %d",
						gname, beta, v, res.Labels[v], want[v])
				}
			}
		}
	}
}

func TestConnectedComponentsLDDDisconnected(t *testing.T) {
	// Many small components: LDD contraction must terminate and label
	// every island by its minimum vertex.
	g, err := gen.ErdosRenyi(400, 120, 5) // far below connectivity threshold
	if err != nil {
		t.Fatal(err)
	}
	want := seq.ConnectedComponents(g)
	res := ConnectedComponentsLDD(g, 0.2, 2, core.Options{})
	for v := range want {
		if res.Labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, res.Labels[v], want[v])
		}
	}
}
