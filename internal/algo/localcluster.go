package algo

import (
	"errors"
	"math"
	"sort"

	"ligra/internal/graph"
)

// APPRResult carries an approximate personalized PageRank vector.
type APPRResult struct {
	// P maps vertices to their PPR mass (only touched vertices appear).
	P map[uint32]float64
	// R maps vertices to their residual mass.
	R map[uint32]float64
	// Pushes is the number of push operations performed (the work bound
	// of the local algorithm: O(1/(alpha*eps)) pushes independent of |V|).
	Pushes int
}

// APPR computes an approximate personalized PageRank vector from a seed
// vertex with the push algorithm of Andersen, Chung and Lang (FOCS 2006),
// the primitive parallelized in "Parallel Local Graph Clustering" (Shun,
// Roosta-Khorasani, Fountoulakis, Mahoney, VLDB 2016). Mass starts as a
// unit residual on the seed; while any vertex v has residual r(v) >=
// eps*deg(v), a push moves alpha*r(v) into p(v) and spreads the rest over
// v's neighbors. The returned vector is supported on a set whose size
// depends only on alpha and eps — the algorithm is local: it never
// touches the whole graph.
//
// alpha is the teleport probability (typical 0.1–0.2); eps the residual
// tolerance (typical 1e-4 .. 1e-7, smaller = larger support).
func APPR(g graph.View, seed uint32, alpha, eps float64) (*APPRResult, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, errors.New("algo: APPR alpha must be in (0, 1)")
	}
	if eps <= 0 {
		return nil, errors.New("algo: APPR eps must be positive")
	}
	if int(seed) >= g.NumVertices() {
		return nil, errors.New("algo: APPR seed out of range")
	}
	if g.OutDegree(seed) == 0 {
		// Isolated seed: all mass stays there.
		return &APPRResult{
			P: map[uint32]float64{seed: 1},
			R: map[uint32]float64{},
		}, nil
	}

	p := make(map[uint32]float64)
	r := map[uint32]float64{seed: 1}
	// Work queue of vertices whose residual exceeds the threshold.
	queue := []uint32{seed}
	inQueue := map[uint32]bool{seed: true}
	pushes := 0

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		deg := float64(g.OutDegree(v))
		rv := r[v]
		if deg == 0 || rv < eps*deg {
			continue
		}
		// Push: p(v) += alpha*r(v); spread (1-alpha)*r(v)/2 over the
		// neighbors, keep (1-alpha)*r(v)/2 at v (the lazy variant, which
		// guarantees convergence on bipartite-ish structures).
		pushes++
		p[v] += alpha * rv
		keep := (1 - alpha) * rv / 2
		share := (1 - alpha) * rv / 2 / deg
		r[v] = keep
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			r[d] += share
			if !inQueue[d] {
				dd := float64(g.OutDegree(d))
				if dd > 0 && r[d] >= eps*dd {
					queue = append(queue, d)
					inQueue[d] = true
				}
			}
			return true
		})
		// v may still exceed its own threshold after the lazy keep.
		if !inQueue[v] && r[v] >= eps*deg {
			queue = append(queue, v)
			inQueue[v] = true
		}
	}
	return &APPRResult{P: p, R: r, Pushes: pushes}, nil
}

// SweepCutResult carries the best-conductance cluster of a sweep.
type SweepCutResult struct {
	// Cluster is the vertex set achieving the best conductance, in sweep
	// (descending p/deg) order.
	Cluster []uint32
	// Conductance of the cluster: cut(S) / min(vol(S), vol(V\S)).
	Conductance float64
}

// SweepCut performs the standard sweep over a PPR vector: order touched
// vertices by p(v)/deg(v) descending, scan prefixes maintaining cut and
// volume incrementally, and return the prefix with minimum conductance —
// the local-clustering step that, with APPR, finds a low-conductance
// cluster around the seed (Andersen-Chung-Lang).
func SweepCut(g graph.View, p map[uint32]float64) *SweepCutResult {
	type scored struct {
		v     uint32
		score float64
	}
	order := make([]scored, 0, len(p))
	for v, pv := range p {
		deg := g.OutDegree(v)
		if deg == 0 || pv <= 0 {
			continue
		}
		order = append(order, scored{v, pv / float64(deg)})
	}
	if len(order) == 0 {
		return &SweepCutResult{Conductance: 1}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].v < order[j].v
	})

	totalVol := g.NumEdges() // sum of degrees
	inSet := make(map[uint32]bool, len(order))
	var vol, cut int64
	best := math.Inf(1)
	bestEnd := 0
	for i, s := range order {
		v := s.v
		deg := int64(g.OutDegree(v))
		vol += deg
		// Adding v: edges to members leave the cut, others join it.
		var toSet int64
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if inSet[d] {
				toSet++
			}
			return true
		})
		cut += deg - 2*toSet
		inSet[v] = true

		denom := vol
		if other := totalVol - vol; other < denom {
			denom = other
		}
		if denom <= 0 {
			continue
		}
		cond := float64(cut) / float64(denom)
		if cond < best {
			best = cond
			bestEnd = i + 1
		}
	}
	cluster := make([]uint32, bestEnd)
	for i := 0; i < bestEnd; i++ {
		cluster[i] = order[i].v
	}
	return &SweepCutResult{Cluster: cluster, Conductance: best}
}

// LocalCluster runs APPR from the seed and sweeps the result, returning
// a low-conductance cluster around the seed.
func LocalCluster(g graph.View, seed uint32, alpha, eps float64) (*SweepCutResult, error) {
	appr, err := APPR(g, seed, alpha, eps)
	if err != nil {
		return nil, err
	}
	return SweepCut(g, appr.P), nil
}
