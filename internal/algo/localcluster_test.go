package algo

import (
	"math"
	"testing"

	"ligra/internal/gen"
	"ligra/internal/graph"
)

// barbell builds two k-cliques joined by a single bridge edge.
func barbell(t *testing.T, k int) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			edges = append(edges, graph.Edge{Src: uint32(a), Dst: uint32(b)})
			edges = append(edges, graph.Edge{Src: uint32(k + a), Dst: uint32(k + b)})
		}
	}
	edges = append(edges, graph.Edge{Src: 0, Dst: uint32(k)})
	g, err := graph.FromEdges(2*k, edges, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAPPRMassConservation(t *testing.T) {
	for _, gname := range []string{"rmat", "grid3d", "tree"} {
		g := testGraphs(t)[gname]
		res, err := APPR(g, 0, 0.15, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		var mass float64
		for _, v := range res.P {
			mass += v
		}
		for _, v := range res.R {
			mass += v
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Errorf("%s: total mass %v, want 1", gname, mass)
		}
		// Residual invariant: r(v) < eps*deg(v) for every touched vertex.
		for v, rv := range res.R {
			if deg := float64(g.OutDegree(v)); deg > 0 && rv >= 1e-5*deg {
				t.Errorf("%s: residual %v at %d exceeds eps*deg %v", gname, rv, v, 1e-5*deg)
			}
		}
		if res.Pushes == 0 {
			t.Errorf("%s: no pushes performed", gname)
		}
	}
}

func TestAPPRIsLocal(t *testing.T) {
	// The support must not grow with the graph: the same seed/eps on a
	// much larger graph of the same family touches a similar set size.
	small, err := gen.Grid3D(10)
	if err != nil {
		t.Fatal(err)
	}
	large, err := gen.Grid3D(20)
	if err != nil {
		t.Fatal(err)
	}
	a, err := APPR(small, 0, 0.2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := APPR(large, 0, 0.2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.P) > 4*len(a.P)+16 {
		t.Errorf("support grew with graph size: %d vs %d", len(b.P), len(a.P))
	}
	if len(b.P) >= large.NumVertices()/2 {
		t.Errorf("APPR touched half the graph (%d of %d)", len(b.P), large.NumVertices())
	}
}

func TestAPPRErrors(t *testing.T) {
	g := testGraphs(t)["path"]
	if _, err := APPR(g, 0, 0, 1e-4); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := APPR(g, 0, 1.5, 1e-4); err == nil {
		t.Error("alpha>1 accepted")
	}
	if _, err := APPR(g, 0, 0.2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := APPR(g, 1<<30, 0.2, 1e-4); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func TestAPPRIsolatedSeed(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 1, Dst: 2}}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := APPR(g, 0, 0.2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if res.P[0] != 1 || len(res.R) != 0 {
		t.Errorf("isolated seed: %+v", res)
	}
}

func TestLocalClusterFindsPlantedClique(t *testing.T) {
	const k = 12
	g := barbell(t, k)
	res, err := LocalCluster(g, 3, 0.15, 1e-7) // seed inside clique A
	if err != nil {
		t.Fatal(err)
	}
	// The best cut is the bridge: conductance 1/vol(clique) — tiny.
	inA := 0
	for _, v := range res.Cluster {
		if v < k {
			inA++
		}
	}
	if inA != k || len(res.Cluster) != k {
		t.Errorf("cluster = %v (want exactly clique A)", res.Cluster)
	}
	wantCond := 1.0 / float64(k*(k-1)+1)
	if math.Abs(res.Conductance-wantCond) > 1e-9 {
		t.Errorf("conductance = %v, want %v", res.Conductance, wantCond)
	}
}

func TestSweepCutEmpty(t *testing.T) {
	g := testGraphs(t)["path"]
	res := SweepCut(g, map[uint32]float64{})
	if len(res.Cluster) != 0 || res.Conductance != 1 {
		t.Errorf("empty sweep = %+v", res)
	}
}

func TestLocalClusterOnPowerLaw(t *testing.T) {
	g := testGraphs(t)["rmat"]
	res, err := LocalCluster(g, pickFirstNonZeroDeg(g), 0.15, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cluster) == 0 {
		t.Fatal("empty cluster")
	}
	if res.Conductance < 0 || res.Conductance > 1 {
		t.Errorf("conductance out of range: %v", res.Conductance)
	}
}

func pickFirstNonZeroDeg(g graph.View) uint32 {
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(uint32(v)) > 0 {
			return uint32(v)
		}
	}
	return 0
}
