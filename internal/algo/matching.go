package algo

import (
	"sync/atomic"

	"ligra/internal/atomicx"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// MatchingResult carries the output of maximal matching.
type MatchingResult struct {
	// Partner[v] is the vertex matched with v, or core.None if v is
	// unmatched.
	Partner []uint32
	// Size is the number of matched edges.
	Size int
	// Rounds is the number of local-maxima selection rounds.
	Rounds int
}

// MaximalMatching computes a maximal matching of a symmetric simple graph
// with the parallel greedy algorithm analyzed by Blelloch, Fineman and
// Shun (SPAA 2012): edges get random priorities; every round, edges that
// are the priority maximum at both endpoints join the matching and their
// endpoints retire. Expected O(log n) rounds.
func MaximalMatching(g graph.View, seed uint64) *MatchingResult {
	n := g.NumVertices()
	const none = ^uint32(0)
	partner := make([]uint32, n)
	parallel.Fill(partner, none)

	// Edge priority, symmetric in the endpoints.
	edgePri := func(a, b uint32) uint64 {
		if a > b {
			a, b = b, a
		}
		// Avoid zero so "no candidate" is distinguishable.
		return hashU64(seed, uint64(a)<<32|uint64(b)) | 1
	}

	live := func(v uint32) bool { return atomic.LoadUint32(&partner[v]) == none }

	best := make([]uint64, n) // per-round best incident edge priority
	rounds := 0
	for {
		// Phase 1: every live vertex computes the max priority among its
		// live incident edges.
		var anyLive atomic.Bool
		parallel.For(n, func(i int) {
			v := uint32(i)
			best[i] = 0
			if !live(v) {
				return
			}
			var b uint64
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d != v && live(d) {
					if p := edgePri(v, d); p > b {
						b = p
					}
				}
				return true
			})
			best[i] = b
			if b != 0 && !anyLive.Load() {
				anyLive.Store(true)
			}
		})
		if !anyLive.Load() {
			break
		}
		rounds++

		// Phase 2: an edge that is the maximum at both endpoints matches.
		// The lower endpoint claims both sides; CAS guards against the
		// (impossible by priority-uniqueness, but cheap to exclude)
		// double-claim.
		parallel.For(n, func(i int) {
			v := uint32(i)
			if best[i] == 0 || !live(v) {
				return
			}
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d <= v || !live(d) {
					return true
				}
				p := edgePri(v, d)
				if p == best[v] && p == best[d] {
					if atomicx.CASUint32(&partner[v], none, d) {
						if atomicx.CASUint32(&partner[d], none, v) {
							return false
						}
						// d was taken concurrently (priority tie across
						// distinct edges): roll back v.
						atomic.StoreUint32(&partner[v], none)
					}
				}
				return true
			})
		})
	}

	size := parallel.CountFunc(n, func(i int) bool {
		return partner[i] != none && partner[i] > uint32(i)
	})
	return &MatchingResult{Partner: partner, Size: size, Rounds: rounds}
}
