package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
)

// MISResult carries the output of the maximal-independent-set computation.
type MISResult struct {
	// InSet[v] reports whether v belongs to the MIS.
	InSet []bool
	// Rounds is the number of selection rounds executed.
	Rounds int
}

// MISStatus values used internally (exported for tests of invariants).
const (
	misUndecided int32 = iota
	misIn
	misOut
)

// MIS computes a maximal independent set of a symmetric graph with the
// priority-based parallel greedy algorithm analyzed by Blelloch, Fineman
// and Shun (SPAA 2012): each vertex gets a random priority; every round,
// undecided vertices that dominate all their undecided neighbors
// (strictly higher priority, ties broken by ID) join the set, and their
// neighbors drop out. Expected O(log n) rounds.
func MIS(g graph.View, seed uint64, opts core.Options) *MISResult {
	res, err := MISCtx(nil, g, seed, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// MISCtx is MIS with cooperative cancellation, observed before each
// selection round and at chunk granularity inside the knock-out edgeMap.
// On interruption InSet is a valid *independent* set (every member was
// selected as a round's dominator) that may not yet be maximal; it is
// returned with a *RoundError.
func MISCtx(ctx context.Context, g graph.View, seed uint64, opts core.Options) (*MISResult, error) {
	n := g.NumVertices()
	status := make([]int32, n)
	pri := make([]uint64, n)
	for v := 0; v < n; v++ {
		pri[v] = hashU64(seed, uint64(v))
	}
	// higherPri reports whether a dominates b.
	higherPri := func(a, b uint32) bool {
		return pri[a] > pri[b] || (pri[a] == pri[b] && a > b)
	}

	undecided := core.NewAll(n)
	rounds := 0
	partial := func(err error) (*MISResult, error) {
		in := make([]bool, n)
		for v := 0; v < n; v++ {
			in[v] = atomic.LoadInt32(&status[v]) == misIn
		}
		return &MISResult{InSet: in, Rounds: rounds}, roundErr("mis", rounds, err)
	}
	for !undecided.IsEmpty() {
		if err := ctxErr(ctx); err != nil {
			return partial(err)
		}
		// Roots: undecided vertices dominating all undecided neighbors.
		roots := core.VertexFilter(undecided, func(v uint32) bool {
			if atomic.LoadInt32(&status[v]) != misUndecided {
				return false
			}
			dominated := false
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if d != v && atomic.LoadInt32(&status[d]) == misUndecided && higherPri(d, v) {
					dominated = true
					return false
				}
				return true
			})
			return !dominated
		})
		core.VertexMap(roots, func(v uint32) { atomic.StoreInt32(&status[v], misIn) })
		// Knock out the roots' neighbors.
		funcs := core.EdgeFuncs{
			UpdateAtomic: func(_, d uint32, _ int32) bool {
				return atomic.CompareAndSwapInt32(&status[d], misUndecided, misOut)
			},
		}
		emOpts := opts
		emOpts.NoOutput = true
		if _, err := core.EdgeMapCtx(ctx, g, roots, funcs, emOpts); err != nil {
			return partial(err)
		}
		// Remaining undecided vertices.
		undecided = core.VertexFilter(undecided, func(v uint32) bool {
			return atomic.LoadInt32(&status[v]) == misUndecided
		})
		rounds++
	}
	return partial(nil)
}
