package algo

import (
	"context"
	"math"

	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// PageRankOptions configures the PageRank computations.
type PageRankOptions struct {
	// Damping is the teleport damping factor (paper uses 0.85).
	Damping float64
	// Epsilon is the L1 convergence tolerance; iteration stops when the
	// total rank change falls below it. <= 0 disables the check.
	Epsilon float64
	// MaxIterations bounds the number of power iterations (the paper's
	// Table 2 reports a single iteration). <= 0 means no bound.
	MaxIterations int
	// EdgeMap options (mode, threshold, tracing) forwarded to each round.
	EdgeMap core.Options
}

// DefaultPageRankOptions returns the paper's parameters.
func DefaultPageRankOptions() PageRankOptions {
	return PageRankOptions{Damping: 0.85, Epsilon: 1e-7, MaxIterations: 100}
}

// PageRankResult carries the output of PageRank.
type PageRankResult struct {
	// Ranks[v] is the PageRank score of v; scores sum to ~1.
	Ranks []float64
	// Iterations actually executed.
	Iterations int
	// Err is the final L1 change between the last two iterations.
	Err float64
}

// PageRank runs the paper's PageRank (§5.5): every round is a dense-leaning
// edgeMap over the full vertex set accumulating p[s]/deg⁺(s) into each
// destination, followed by a vertexMap applying damping. Dangling vertices
// (out-degree 0) have their rank redistributed uniformly, the standard
// correction that preserves probability mass.
func PageRank(g graph.View, opts PageRankOptions) *PageRankResult {
	res, err := PageRankCtx(nil, g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// PageRankCtx is PageRank with cooperative cancellation: ctx (nil =
// background) is checked before each power iteration and at chunk
// granularity inside the edgeMap. On interruption it returns the ranks of
// the last fully completed iteration (rank updates are only committed
// after a round's edgeMap finishes, so a round aborted mid-traversal
// leaves Ranks untouched) together with a *RoundError.
func PageRankCtx(ctx context.Context, g graph.View, opts PageRankOptions) (*PageRankResult, error) {
	n := g.NumVertices()
	if n == 0 {
		return &PageRankResult{Ranks: nil}, ctxErr(ctx)
	}
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.MaxIterations <= 0 && opts.Epsilon <= 0 {
		// No stopping rule at all would loop forever; apply the default
		// bound.
		opts.MaxIterations = 100
	}

	p := make([]float64, n)
	pDiv := make([]float64, n) // p[v] / outdeg(v), read-only during a round
	parallel.Fill(p, 1/float64(n))

	nghSum := atomicx.NewFloat64Slice(n)
	all := core.NewAll(n)

	funcs := core.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			nghSum.AddNonAtomic(int(d), pDiv[s])
			return true
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			nghSum.Add(int(d), pDiv[s])
			return true
		},
	}
	emOpts := opts.EdgeMap
	emOpts.NoOutput = true

	iters := 0
	errL1 := math.Inf(1)
	partial := func(err error) (*PageRankResult, error) {
		return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1},
			roundErr("pagerank", iters, err)
	}
	for {
		if opts.MaxIterations > 0 && iters >= opts.MaxIterations {
			break
		}
		if opts.Epsilon > 0 && errL1 < opts.Epsilon {
			break
		}
		if err := ctxErr(ctx); err != nil {
			return partial(err)
		}
		// Dangling mass: rank held by out-degree-0 vertices, spread evenly.
		dangling := parallel.SumFunc(n, func(i int) float64 {
			if g.OutDegree(uint32(i)) == 0 {
				return p[i]
			}
			return 0
		})
		parallel.For(n, func(i int) {
			if deg := g.OutDegree(uint32(i)); deg > 0 {
				pDiv[i] = p[i] / float64(deg)
			} else {
				pDiv[i] = 0
			}
			nghSum.StoreNonAtomic(i, 0)
		})

		if _, err := core.EdgeMapCtx(ctx, g, all, funcs, emOpts); err != nil {
			// p has not been touched this round: the ranks are exactly
			// those of the last completed iteration.
			return partial(err)
		}

		base := (1-opts.Damping)/float64(n) + opts.Damping*dangling/float64(n)
		errL1 = parallel.SumFunc(n, func(i int) float64 {
			next := base + opts.Damping*nghSum.LoadNonAtomic(i)
			delta := math.Abs(next - p[i])
			p[i] = next
			return delta
		})
		iters++
	}
	return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, nil
}

// PageRankDelta runs the paper's PageRank-Delta variant (§5.5): only
// vertices whose rank changed by more than a fraction delta of their
// current rank stay in the frontier, so later iterations touch a shrinking
// active set instead of the whole graph.
func PageRankDelta(g graph.View, opts PageRankOptions, delta float64) *PageRankResult {
	res, err := PageRankDeltaCtx(nil, g, opts, delta)
	if err != nil {
		panic(err)
	}
	return res
}

// PageRankDeltaCtx is PageRankDelta with cooperative cancellation. On
// interruption it returns the accumulated ranks of the last completed
// iteration plus a *RoundError (the same commit-after-edgeMap contract as
// PageRankCtx).
func PageRankDeltaCtx(ctx context.Context, g graph.View, opts PageRankOptions, delta float64) (*PageRankResult, error) {
	n := g.NumVertices()
	if n == 0 {
		return &PageRankResult{Ranks: nil}, ctxErr(ctx)
	}
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.MaxIterations <= 0 && opts.Epsilon <= 0 {
		opts.MaxIterations = 100
	}
	if delta <= 0 {
		delta = 1e-2
	}

	p := make([]float64, n)
	deltas := make([]float64, n) // change in rank in the last iteration
	deltaDiv := make([]float64, n)
	parallel.Fill(p, 0)
	parallel.Fill(deltas, 1/float64(n)) // first round: everything moved

	nghSum := atomicx.NewFloat64Slice(n)
	funcs := core.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			nghSum.AddNonAtomic(int(d), deltaDiv[s])
			return true
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			nghSum.Add(int(d), deltaDiv[s])
			return true
		},
	}
	emOpts := opts.EdgeMap
	emOpts.NoOutput = true

	frontier := core.NewAll(n)
	iters := 0
	errL1 := math.Inf(1)
	partial := func(err error) (*PageRankResult, error) {
		return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1},
			roundErr("pagerank-delta", iters, err)
	}
	for !frontier.IsEmpty() {
		if opts.MaxIterations > 0 && iters >= opts.MaxIterations {
			break
		}
		if opts.Epsilon > 0 && errL1 < opts.Epsilon {
			break
		}
		if err := ctxErr(ctx); err != nil {
			return partial(err)
		}
		core.VertexMap(frontier, func(v uint32) {
			if deg := g.OutDegree(v); deg > 0 {
				deltaDiv[v] = deltas[v] / float64(deg)
			} else {
				deltaDiv[v] = 0
			}
		})
		parallel.For(n, func(i int) { nghSum.StoreNonAtomic(i, 0) })

		if _, err := core.EdgeMapCtx(ctx, g, frontier, funcs, emOpts); err != nil {
			return partial(err)
		}

		if iters == 0 {
			// First round: p was implicitly 1/n everywhere, so the rank
			// after one power step is damping*nghSum + (1-damping)/n and
			// the *delta* is that value minus the initial 1/n (Ligra's
			// PR_Vertex_F_FirstRound).
			oneOverN := 1 / float64(n)
			base := (1 - opts.Damping) * oneOverN
			errL1 = parallel.SumFunc(n, func(i int) float64 {
				rank := opts.Damping*nghSum.LoadNonAtomic(i) + base
				p[i] = rank
				deltas[i] = rank - oneOverN
				return math.Abs(deltas[i])
			})
		} else {
			errL1 = parallel.SumFunc(n, func(i int) float64 {
				change := opts.Damping * nghSum.LoadNonAtomic(i)
				deltas[i] = change
				p[i] += change
				return math.Abs(change)
			})
		}
		// Keep vertices whose rank moved by more than delta * p[v].
		frontier = core.NewFromFunc(n, func(v uint32) bool {
			return math.Abs(deltas[v]) > delta*p[v]
		})
		iters++
	}
	return &PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, nil
}
