package algo

import (
	"context"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// RadiiOptions configures the eccentricity estimator.
type RadiiOptions struct {
	// K is the number of simultaneous BFS sources packed into one 64-bit
	// visit word (the paper uses K = 64, one bit per source).
	K int
	// Seed selects the random sample of sources deterministically.
	Seed uint64
	// EdgeMap options forwarded to every round.
	EdgeMap core.Options
}

// DefaultRadiiOptions returns the paper's parameters.
func DefaultRadiiOptions() RadiiOptions {
	return RadiiOptions{K: 64, Seed: 1}
}

// RadiiResult carries the output of the radii estimation.
type RadiiResult struct {
	// Radii[v] is the estimated eccentricity of v: the maximum BFS
	// distance from v to any of the K sampled sources that reached it
	// (a lower bound on the true eccentricity). -1 if no source reached v.
	Radii []int32
	// Sources are the sampled BFS roots.
	Sources []uint32
	// Rounds is the number of edgeMap rounds (the largest distance from
	// the sample to any vertex).
	Rounds int
}

// Radii runs the paper's graph-eccentricity estimation (§5.3): K
// simultaneous BFS from random sources, sharing work through per-vertex
// 64-bit visit vectors. Each round, a vertex whose visit word gains new
// bits updates its radius estimate to the current round, so the final
// estimate of v is its distance to the farthest sampled source reaching v.
// The sweep itself is the ClusterBFS primitive; Radii keeps only the
// sampling and the per-vertex maximum.
func Radii(g graph.View, opts RadiiOptions) *RadiiResult {
	res, err := RadiiCtx(nil, g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// RadiiCtx is Radii with cooperative cancellation, observed before every
// multi-BFS round and at chunk granularity inside the edgeMaps. On
// interruption Radii holds lower bounds on the true estimates — every
// non-negative entry is a genuine distance to some sampled source —
// returned with a *RoundError.
func RadiiCtx(ctx context.Context, g graph.View, opts RadiiOptions) (*RadiiResult, error) {
	n := g.NumVertices()
	if opts.K <= 0 || opts.K > 64 {
		opts.K = 64
	}
	if opts.K > n {
		opts.K = n
	}
	// Sample K distinct sources deterministically.
	sources := sampleVertices(n, opts.K, opts.Seed)
	radii, rounds, err := radiiFromSources(ctx, g, sources, opts.EdgeMap)
	return &RadiiResult{Radii: radii, Sources: sources, Rounds: rounds},
		roundErr("radii", rounds, err)
}

// RadiiMulti extends the estimator beyond the paper's K=64: any number of
// sources is accepted and processed in batches of 64 by radiiFromSources.
// Sources are sampled without replacement across the whole run.
func RadiiMulti(g graph.View, k int, seed uint64, opts core.Options) *RadiiResult {
	res, err := RadiiMultiCtx(nil, g, k, seed, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// RadiiMultiCtx is RadiiMulti with cooperative cancellation; the
// partial-result contract matches RadiiCtx (estimates from every batch
// and round that completed are retained).
func RadiiMultiCtx(ctx context.Context, g graph.View, k int, seed uint64, opts core.Options) (*RadiiResult, error) {
	n := g.NumVertices()
	if k <= 0 {
		k = 64
	}
	if k > n {
		k = n
	}
	sources := sampleVertices(n, k, seed)
	radii, rounds, err := radiiFromSources(ctx, g, sources, opts)
	return &RadiiResult{Radii: radii, Sources: sources, Rounds: rounds},
		roundErr("radii-multi", rounds, err)
}

// radiiFromSources runs the shared-bit-vector multi-BFS from the given
// sources and returns per-vertex max distances from the sources that
// reach them (-1 when unreached) plus the max number of rounds. Sources
// beyond the 64 that fit one visit word are handled by running batches of
// 64 and keeping the per-vertex maximum (bit-sharing happens within each
// batch); no source count panics. Each batch is one ClusterBFS sweep;
// the MaxLevel it maintains per vertex is exactly the radii estimate.
func radiiFromSources(ctx context.Context, g graph.View, sources []uint32, emOpts core.Options) ([]int32, int, error) {
	if len(sources) <= MaxClusterSources {
		res, err := clusterSweep(ctx, g, sources, ClusterBFSOptions{EdgeMap: emOpts})
		return res.MaxLevel, res.Rounds, err
	}
	n := g.NumVertices()
	radii := make([]int32, n)
	parallel.Fill(radii, int32(-1))
	rounds := 0
	for lo := 0; lo < len(sources); lo += MaxClusterSources {
		hi := lo + MaxClusterSources
		if hi > len(sources) {
			hi = len(sources)
		}
		res, err := clusterSweep(ctx, g, sources[lo:hi], ClusterBFSOptions{EdgeMap: emOpts})
		if res.Rounds > rounds {
			rounds = res.Rounds
		}
		batch := res.MaxLevel
		parallel.For(n, func(i int) {
			if batch[i] > radii[i] {
				radii[i] = batch[i]
			}
		})
		if err != nil {
			return radii, rounds, err
		}
	}
	return radii, rounds, nil
}

// sampleVertices picks k distinct vertices from [0, n) deterministically
// (Floyd's algorithm over a hash RNG).
func sampleVertices(n, k int, seed uint64) []uint32 {
	picked := make(map[uint32]struct{}, k)
	out := make([]uint32, 0, k)
	for j := n - k; j < n; j++ {
		h := hashU64(seed, uint64(j))
		t := uint32(h % uint64(j+1))
		if _, ok := picked[t]; ok {
			t = uint32(j)
		}
		picked[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// hashU64 is a splitmix64-style hash for deterministic sampling.
func hashU64(seed, x uint64) uint64 {
	x ^= seed + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
