package algo

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ligra/internal/core"
	"ligra/internal/graph"
)

// This file is the single algorithm-dispatch table shared by cmd/ligra-run
// and cmd/ligra-serve: both resolve an algorithm name to a Runner here, so
// the two binaries cannot drift on which algorithms exist, what parameters
// they take, or how their results are summarized.

// Params is the single typed parameter set for algorithm invocation,
// shared by ligra-run's flag parsing, ligra-serve's query handlers, and
// the server's result-cache keys. The JSON tags define the wire format of
// a server query request; Canonical renders the same fields as a stable
// string for cache keying. Zero values select each algorithm's documented
// default (the same defaults ligra-run has always used), so a caller only
// fills in what it cares about.
type Params struct {
	// Source is the start vertex for traversal algorithms; callers are
	// expected to have validated it against the graph.
	Source uint32 `json:"source,omitempty"`
	// Seed drives the randomized algorithms; 0 selects the per-algorithm
	// default.
	Seed uint64 `json:"seed,omitempty"`
	// K is the sample budget for multi-source estimators (bc-approx,
	// eccentricity); 0 selects the per-algorithm default.
	K int `json:"k,omitempty"`
	// Delta is the delta-stepping bucket width; 0 lets the algorithm pick.
	Delta int64 `json:"delta,omitempty"`
	// Alpha and Eps parameterize local clustering; 0 selects the defaults
	// (0.15 and 1e-6).
	Alpha float64 `json:"alpha,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	// Mode forces an edgeMap traversal strategy for every round of the
	// run: "" or "auto" (the degree heuristic), "sparse", "dense", or
	// "dense-forward".
	Mode string `json:"mode,omitempty"`
	// Threshold overrides the edgeMap dense-switch threshold (0 = |E|/20).
	Threshold int64 `json:"threshold,omitempty"`
	// Target is the destination vertex for the reach algorithm (defaults
	// to vertex 0, like Source).
	Target uint32 `json:"target,omitempty"`
	// Landmarks are the vertices the landmarks algorithm reports
	// distances to; required (and only meaningful) for that algorithm.
	Landmarks []uint32 `json:"landmarks,omitempty"`
	// Backend selects the execution backend for algorithms that have a
	// semiring kernel (HasSpMVKernel): "" or "edgemap" (frontier-based
	// edgeMap, the default), "spmv" (internal/spmv kernels), or "auto"
	// (per-shape choice; see ResolveBackend). Both backends produce
	// bit-identical results, so Backend is deliberately absent from
	// Canonical: it changes how a result is computed, never what it is.
	Backend string `json:"backend,omitempty"`

	// EdgeMap carries the non-serializable per-run extras (tracing, a
	// fallback context, a per-call proc cap) that EdgeMapOptions merges
	// under Mode and Threshold. It is excluded from the wire format and
	// from Canonical, so it never influences cache identity.
	EdgeMap core.Options `json:"-"`
}

// Validate rejects parameter combinations the registry cannot interpret
// (an unknown Mode or Backend). It is shared by ligra-run's flag parsing
// and the server's request decoding so both report identical errors.
// Whether the chosen Backend applies to a particular algorithm is checked
// later by ResolveBackend, which knows the algorithm and graph.
func (p Params) Validate() error {
	switch p.Mode {
	case "", "auto", "sparse", "dense", "dense-forward":
	default:
		return fmt.Errorf("unknown mode %q (have auto | sparse | dense | dense-forward)", p.Mode)
	}
	switch p.Backend {
	case "", BackendEdgeMap, BackendSpMV, BackendAuto:
	default:
		return fmt.Errorf("unknown backend %q (have edgemap | spmv | auto)", p.Backend)
	}
	return nil
}

// Canonical renders the serializable parameters as a stable, normalized
// string: equal strings mean the run is deterministic-equivalent, which is
// what the server's result cache keys on. The non-serializable EdgeMap
// extras are deliberately excluded — and so is Backend: the edgeMap and
// spmv backends are bit-identical (internal/spmv property tests), so a
// result cached under one backend must be served to a request for the
// other instead of being computed twice.
func (p Params) Canonical() string {
	mode := p.Mode
	if mode == "" {
		mode = "auto"
	}
	var lms strings.Builder
	for i, l := range p.Landmarks {
		if i > 0 {
			lms.WriteByte(',')
		}
		lms.WriteString(strconv.FormatUint(uint64(l), 10))
	}
	return fmt.Sprintf("source=%d seed=%d k=%d delta=%d alpha=%s eps=%s mode=%s threshold=%d target=%d landmarks=%s",
		p.Source, p.Seed, p.K, p.Delta,
		strconv.FormatFloat(p.Alpha, 'g', -1, 64),
		strconv.FormatFloat(p.Eps, 'g', -1, 64),
		mode, p.Threshold, p.Target, lms.String())
}

// EdgeMapOptions resolves Mode and Threshold on top of the EdgeMap extras,
// yielding the core.Options every edgeMap round of the run uses. An
// unrecognized Mode (callers are expected to Validate first) behaves as
// "auto".
func (p Params) EdgeMapOptions() core.Options {
	o := p.EdgeMap
	if p.Threshold != 0 {
		o.Threshold = p.Threshold
	}
	switch p.Mode {
	case "sparse":
		o.Mode = core.ForceSparse
	case "dense":
		o.Mode = core.ForceDense
	case "dense-forward":
		o.Mode = core.ForceDense
		o.DenseForward = true
	}
	return o
}

func (p Params) seed(def uint64) uint64 {
	if p.Seed == 0 {
		return def
	}
	return p.Seed
}

func (p Params) k(def int) int {
	if p.K <= 0 {
		return def
	}
	return p.K
}

// RunResult is the JSON-friendly outcome of one algorithm run.
type RunResult struct {
	// Summary is the one-line human-readable result ligra-run prints.
	Summary string
	// Details holds scalar result facts keyed by stable names, for
	// machine consumers (ligra-serve's query responses).
	Details map[string]any
}

// Runner is one dispatchable algorithm.
type Runner struct {
	// Name is the identifier used by -algo and the server's "algo" field.
	Name string
	// NeedsSource reports whether the algorithm starts from a source
	// vertex (Params.Source is meaningful).
	NeedsSource bool
	// NeedsWeights reports whether the algorithm interprets edge weights
	// (runs on unweighted graphs treat every weight as 1).
	NeedsWeights bool
	// Cancellable reports whether the algorithm has a Ctx entry point: a
	// cancelled or expired context stops it cooperatively and Run returns
	// the partial result alongside a *RoundError. Non-cancellable
	// algorithms ignore ctx and run to completion.
	Cancellable bool
	// Run executes the algorithm. A nil ctx means no deadline.
	Run func(ctx context.Context, g graph.View, p Params) (RunResult, error)
}

// Runners returns the dispatch table in presentation order.
func Runners() []Runner {
	return runners
}

// FindRunner resolves an algorithm name.
func FindRunner(name string) (Runner, bool) {
	for _, r := range runners {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// RunnerNames returns every algorithm name in presentation order.
func RunnerNames() []string {
	names := make([]string, len(runners))
	for i, r := range runners {
		names[i] = r.Name
	}
	return names
}

// UnknownAlgoError builds the standard error for an unresolvable name.
func UnknownAlgoError(name string) error {
	names := RunnerNames()
	sort.Strings(names)
	return fmt.Errorf("unknown algorithm %q (have %v)", name, names)
}

var runners = []Runner{
	{
		Name: "bfs", NeedsSource: true, Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			backend, berr := ResolveBackend("bfs", g, p)
			if berr != nil {
				return RunResult{}, berr
			}
			if backend == BackendSpMV {
				return spmvBFSRun(ctx, g, p)
			}
			res, err := BFSCtx(ctx, g, p.Source, p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("BFS from %d: visited %d vertices in %d rounds", p.Source, res.Visited, res.Rounds),
				Details: map[string]any{"source": p.Source, "visited": res.Visited, "rounds": res.Rounds, "backend": BackendEdgeMap},
			}, err
		},
	},
	{
		Name: "reach", NeedsSource: true, Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			if err := BatchValidate("reach", g.NumVertices(), p); err != nil {
				return RunResult{}, err
			}
			// One-source ClusterBFS with the target as a probe: the
			// single-query path and the batched path share the sweep and
			// the extraction, so batching cannot change answers.
			res, err := ClusterBFSCtx(ctx, g, []uint32{p.Source}, ClusterBFSOptions{
				EdgeMap: p.EdgeMapOptions(),
				Probes:  BatchProbes("reach", p),
			})
			return BatchResult("reach", res, 0, p), err
		},
	},
	{
		Name: "landmarks", NeedsSource: true, Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			if err := BatchValidate("landmarks", g.NumVertices(), p); err != nil {
				return RunResult{}, err
			}
			res, err := ClusterBFSCtx(ctx, g, []uint32{p.Source}, ClusterBFSOptions{
				EdgeMap: p.EdgeMapOptions(),
				Probes:  BatchProbes("landmarks", p),
			})
			return BatchResult("landmarks", res, 0, p), err
		},
	},
	{
		Name: "bc", NeedsSource: true, Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := BCCtx(ctx, g, p.Source, p.EdgeMapOptions())
			maxV, maxS := maxScore(res.Scores)
			return RunResult{
				Summary: fmt.Sprintf("BC from %d: %d forward rounds; max dependency %.2f at vertex %d",
					p.Source, res.Rounds, maxS, maxV),
				Details: map[string]any{"source": p.Source, "rounds": res.Rounds, "max_score": maxS, "max_vertex": maxV},
			}, err
		},
	},
	{
		Name: "bc-approx", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := BCApproxCtx(ctx, g, p.k(16), p.seed(1), p.EdgeMapOptions())
			maxV, maxS := maxScore(res.Scores)
			return RunResult{
				Summary: fmt.Sprintf("BC-approx (%d sources): max centrality %.1f at vertex %d",
					len(res.Sources), maxS, maxV),
				Details: map[string]any{"sources": len(res.Sources), "max_score": maxS, "max_vertex": maxV},
			}, err
		},
	},
	{
		Name: "radii", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			o := DefaultRadiiOptions()
			o.EdgeMap = p.EdgeMapOptions()
			if p.K > 0 {
				o.K = p.K
			}
			if p.Seed != 0 {
				o.Seed = p.Seed
			}
			res, err := RadiiCtx(ctx, g, o)
			maxR := int32(-1)
			for _, r := range res.Radii {
				if r > maxR {
					maxR = r
				}
			}
			return RunResult{
				Summary: fmt.Sprintf("Radii (K=%d): %d rounds; estimated diameter lower bound %d",
					len(res.Sources), res.Rounds, maxR),
				Details: map[string]any{"sources": len(res.Sources), "rounds": res.Rounds, "diameter_lower_bound": maxR},
			}, err
		},
	},
	{
		Name: "components", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := ConnectedComponentsCtx(ctx, g, p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("Components: %d components in %d rounds", res.Components, res.Rounds),
				Details: map[string]any{"components": res.Components, "rounds": res.Rounds},
			}, err
		},
	},
	{
		Name: "pagerank", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			backend, berr := ResolveBackend("pagerank", g, p)
			if berr != nil {
				return RunResult{}, berr
			}
			if backend == BackendSpMV {
				return spmvPageRankRun(ctx, g, p)
			}
			o := DefaultPageRankOptions()
			o.EdgeMap = p.EdgeMapOptions()
			res, err := PageRankCtx(ctx, g, o)
			return RunResult{
				Summary: fmt.Sprintf("PageRank: %d iterations, final L1 change %.3g", res.Iterations, res.Err),
				Details: map[string]any{"iterations": res.Iterations, "l1_change": res.Err, "backend": BackendEdgeMap},
			}, err
		},
	},
	{
		Name: "pagerank-delta", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			o := DefaultPageRankOptions()
			o.EdgeMap = p.EdgeMapOptions()
			res, err := PageRankDeltaCtx(ctx, g, o, 1e-3)
			return RunResult{
				Summary: fmt.Sprintf("PageRank-Delta: %d iterations, final L1 change %.3g", res.Iterations, res.Err),
				Details: map[string]any{"iterations": res.Iterations, "l1_change": res.Err},
			}, err
		},
	},
	{
		Name: "bellman-ford", NeedsSource: true, NeedsWeights: true, Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := BellmanFordCtx(ctx, g, p.Source, p.EdgeMapOptions())
			if res.NegativeCycle {
				return RunResult{
					Summary: "Bellman-Ford: negative cycle detected",
					Details: map[string]any{"negative_cycle": true},
				}, err
			}
			reached := countReached(res.Dist)
			return RunResult{
				Summary: fmt.Sprintf("Bellman-Ford from %d: reached %d vertices in %d rounds", p.Source, reached, res.Rounds),
				Details: map[string]any{"source": p.Source, "reached": reached, "rounds": res.Rounds},
			}, err
		},
	},
	{
		Name: "delta-stepping", NeedsSource: true, NeedsWeights: true, Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := DeltaSteppingCtx(ctx, g, p.Source, p.Delta, p.EdgeMapOptions())
			if res == nil {
				return RunResult{}, err
			}
			reached := countReached(res.Dist)
			return RunResult{
				Summary: fmt.Sprintf("Delta-stepping from %d: reached %d vertices over %d buckets (%d phases)",
					p.Source, reached, res.Buckets, res.Phases),
				Details: map[string]any{"source": p.Source, "reached": reached, "buckets": res.Buckets, "phases": res.Phases},
			}, err
		},
	},
	{
		Name: "kcore", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := KCoreCtx(ctx, g, p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("KCore: degeneracy %d in %d peeling rounds", res.MaxCore, res.Rounds),
				Details: map[string]any{"degeneracy": res.MaxCore, "rounds": res.Rounds},
			}, err
		},
	},
	{
		Name: "mis", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := MISCtx(ctx, g, p.seed(123), p.EdgeMapOptions())
			size := 0
			for _, in := range res.InSet {
				if in {
					size++
				}
			}
			return RunResult{
				Summary: fmt.Sprintf("MIS: %d vertices in %d rounds", size, res.Rounds),
				Details: map[string]any{"size": size, "rounds": res.Rounds},
			}, err
		},
	},
	{
		Name: "scc", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := SCCCtx(ctx, g, p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("SCC: %d strongly connected components", res.Components),
				Details: map[string]any{"components": res.Components},
			}, err
		},
	},
	{
		Name: "coloring",
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res := Coloring(g, p.seed(7), p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("Coloring: %d colors in %d rounds", res.NumColors, res.Rounds),
				Details: map[string]any{"colors": res.NumColors, "rounds": res.Rounds},
			}, nil
		},
	},
	{
		Name: "matching",
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res := MaximalMatching(g, p.seed(7))
			return RunResult{
				Summary: fmt.Sprintf("Matching: %d edges in %d rounds", res.Size, res.Rounds),
				Details: map[string]any{"edges": res.Size, "rounds": res.Rounds},
			}, nil
		},
	},
	{
		Name: "cc-ldd",
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res := ConnectedComponentsLDD(g, 0.2, p.seed(7), p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("Components (LDD contraction): %d components", res.Components),
				Details: map[string]any{"components": res.Components},
			}, nil
		},
	},
	{
		Name: "eccentricity", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res, err := TwoPassEccentricityCtx(ctx, g, p.k(64), p.seed(7), p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("Two-pass eccentricity: diameter >= %d (%d rounds)",
					res.DiameterLowerBound, res.Rounds),
				Details: map[string]any{"diameter_lower_bound": res.DiameterLowerBound, "rounds": res.Rounds},
			}, err
		},
	},
	{
		Name: "densest",
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			res := DensestSubgraph(g, p.EdgeMapOptions())
			return RunResult{
				Summary: fmt.Sprintf("Densest subgraph: %d vertices, density %.3f (%d peels)",
					len(res.Vertices), res.Density, res.Peels),
				Details: map[string]any{"vertices": len(res.Vertices), "density": res.Density, "peels": res.Peels},
			}, nil
		},
	},
	{
		Name: "local-cluster", NeedsSource: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			alpha, eps := p.Alpha, p.Eps
			if alpha == 0 {
				alpha = 0.15
			}
			if eps == 0 {
				eps = 1e-6
			}
			res, err := LocalCluster(g, p.Source, alpha, eps)
			if err != nil {
				return RunResult{}, err
			}
			return RunResult{
				Summary: fmt.Sprintf("Local cluster around %d: %d vertices, conductance %.4f",
					p.Source, len(res.Cluster), res.Conductance),
				Details: map[string]any{"source": p.Source, "cluster_size": len(res.Cluster), "conductance": res.Conductance},
			}, nil
		},
	},
	{
		Name: "triangles", Cancellable: true,
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			backend, berr := ResolveBackend("triangles", g, p)
			if berr != nil {
				return RunResult{}, berr
			}
			if backend == BackendSpMV {
				return spmvTrianglesRun(ctx, g, p)
			}
			count, err := TriangleCountCtx(backendCtx(ctx, p), g)
			return RunResult{
				Summary: fmt.Sprintf("Triangles: %d", count),
				Details: map[string]any{"triangles": count, "backend": BackendEdgeMap},
			}, err
		},
	},
	{
		Name: "clustering",
		Run: func(ctx context.Context, g graph.View, p Params) (RunResult, error) {
			lcc := LocalClusteringCoefficients(g)
			var sum float64
			for _, c := range lcc {
				sum += c
			}
			mean := sum / float64(len(lcc))
			return RunResult{
				Summary: fmt.Sprintf("Clustering: mean local coefficient %.4f", mean),
				Details: map[string]any{"mean_coefficient": mean},
			}, nil
		},
	},
}

func maxScore(scores []float64) (int, float64) {
	maxV, maxS := 0, 0.0
	for v, s := range scores {
		if s > maxS {
			maxV, maxS = v, s
		}
	}
	return maxV, maxS
}

func countReached(dist []int64) int {
	reached := 0
	for _, d := range dist {
		if d < InfDist {
			reached++
		}
	}
	return reached
}
