package algo

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ligra/internal/gen"
	"ligra/internal/graph"
)

// TestEveryRunnerRuns executes each table entry on a small graph and
// checks it produces a summary and JSON-friendly details.
func TestEveryRunnerRuns(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.PBBSRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.AddWeights(graph.HashWeight(31))
	for _, r := range Runners() {
		view := graph.View(g)
		if r.NeedsWeights {
			view = wg
		}
		p := Params{Source: 0}
		if r.Name == "landmarks" {
			p.Landmarks = []uint32{1, 2}
		}
		res, err := r.Run(context.Background(), view, p)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if res.Summary == "" {
			t.Errorf("%s: empty summary", r.Name)
		}
		if len(res.Details) == 0 {
			t.Errorf("%s: no details", r.Name)
		}
	}
}

func TestFindRunner(t *testing.T) {
	r, ok := FindRunner("bfs")
	if !ok || r.Name != "bfs" || !r.NeedsSource || !r.Cancellable {
		t.Fatalf("bfs runner = %+v, ok=%t", r, ok)
	}
	if _, ok := FindRunner("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if err := UnknownAlgoError("nope"); !strings.Contains(err.Error(), "bfs") {
		t.Errorf("UnknownAlgoError should list the valid names: %v", err)
	}
	if len(RunnerNames()) != len(Runners()) {
		t.Error("RunnerNames out of sync with Runners")
	}
}

// TestCancellableRunnersReturnPartial proves every runner marked
// Cancellable honors an already-expired context: it returns a deadline
// error (wrapped in *RoundError) together with a usable partial summary.
func TestCancellableRunnersReturnPartial(t *testing.T) {
	g, err := gen.RMAT(10, 8, gen.PBBSRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.AddWeights(graph.HashWeight(31))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range Runners() {
		if !r.Cancellable {
			continue
		}
		view := graph.View(g)
		if r.NeedsWeights {
			view = wg
		}
		p := Params{Source: 0}
		if r.Name == "landmarks" {
			p.Landmarks = []uint32{1} // validation precedes the sweep
		}
		_, err := r.Run(ctx, view, p)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.Name, err)
		}
		var re *RoundError
		if !errors.As(err, &re) {
			t.Errorf("%s: error is not a *RoundError: %v", r.Name, err)
		}
	}
}
