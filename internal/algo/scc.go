package algo

import (
	"context"
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// SCCResult carries the output of strongly-connected-components labeling.
type SCCResult struct {
	// Labels[v] identifies v's strongly connected component; labels are
	// the minimum vertex ID in the component.
	Labels []uint32
	// Components is the number of strongly connected components.
	Components int
}

// SCC computes strongly connected components of a directed graph with the
// classic parallel forward-backward (FW-BW) decomposition: pick a pivot,
// find its descendants (BFS over out-edges) and ancestors (BFS over
// in-edges); their intersection is the pivot's SCC, and the three
// remaining regions (descendants-only, ancestors-only, rest) contain no
// crossing SCC, so they recurse independently. Reachability searches are
// edgeMaps restricted to the active region via Cond.
func SCC(g graph.View, opts core.Options) *SCCResult {
	res, err := SCCCtx(nil, g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// SCCCtx is SCC with cooperative cancellation, observed between FW-BW
// pivot steps and at chunk granularity inside the reachability edgeMaps.
// On interruption Labels is exact for every component finished so far
// (core.None for the rest) and Components counts only finished
// components; the *RoundError's Round counts completed pivot steps.
func SCCCtx(ctx context.Context, g graph.View, opts core.Options) (*SCCResult, error) {
	n := g.NumVertices()
	labels := make([]uint32, n)
	parallel.Fill(labels, core.None)

	// region[v] identifies the partition piece v currently belongs to;
	// pieces are processed from an explicit stack of region IDs with one
	// representative member set each. Unassigned = labeled already.
	region := make([]uint32, n)
	parallel.Fill(region, 0)

	type task struct {
		id      uint32   // region ID to match
		members []uint32 // vertices of the region (sparse)
	}
	all := make([]uint32, n)
	parallel.Iota(all, 0)
	stack := []task{{id: 0, members: all}}
	nextRegion := uint32(1)

	gT := TransposeView(g)

	pivots := 0
	finish := func(err error) (*SCCResult, error) {
		components := parallel.CountFunc(n, func(i int) bool { return labels[i] == uint32(i) })
		return &SCCResult{Labels: labels, Components: components},
			roundErr("scc", pivots, err)
	}
	for len(stack) > 0 {
		if err := ctxErr(ctx); err != nil {
			return finish(err)
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Filter out members already labeled (region changed).
		members := parallel.Filter(t.members, func(v uint32) bool {
			return labels[v] == core.None && region[v] == t.id
		})
		if len(members) == 0 {
			continue
		}
		if len(members) == 1 {
			labels[members[0]] = members[0]
			continue
		}
		// Pivot: the minimum ID makes labels canonical per region...
		// actually the SCC label must be the min ID *of the SCC*, which
		// we fix after reachability; any pivot works, use members[0].
		pivot := members[0]

		fwd, err := reachableWithin(ctx, g, pivot, region, t.id, labels, opts)
		if err != nil {
			return finish(err)
		}
		bwd, err := reachableWithin(ctx, gT, pivot, region, t.id, labels, opts)
		if err != nil {
			return finish(err)
		}
		pivots++

		// SCC = fwd ∩ bwd; partition the rest into three new regions.
		idFwd, idBwd, idRest := nextRegion, nextRegion+1, nextRegion+2
		nextRegion += 3
		var sccMin atomic.Uint32
		sccMin.Store(pivot)
		parallel.For(len(members), func(i int) {
			v := members[i]
			inF, inB := fwd.Get(int(v)), bwd.Get(int(v))
			switch {
			case inF && inB:
				// member of the pivot's SCC; track the minimum ID.
				for {
					cur := sccMin.Load()
					if v >= cur || sccMin.CompareAndSwap(cur, v) {
						break
					}
				}
			case inF:
				region[v] = idFwd
			case inB:
				region[v] = idBwd
			default:
				region[v] = idRest
			}
		})
		minID := sccMin.Load()
		var fwdM, bwdM, restM []uint32
		for _, v := range members {
			switch {
			case fwd.Get(int(v)) && bwd.Get(int(v)):
				labels[v] = minID
			case region[v] == idFwd:
				fwdM = append(fwdM, v)
			case region[v] == idBwd:
				bwdM = append(bwdM, v)
			default:
				restM = append(restM, v)
			}
		}
		if len(fwdM) > 0 {
			stack = append(stack, task{id: idFwd, members: fwdM})
		}
		if len(bwdM) > 0 {
			stack = append(stack, task{id: idBwd, members: bwdM})
		}
		if len(restM) > 0 {
			stack = append(stack, task{id: idRest, members: restM})
		}
	}

	return finish(nil)
}

// reachableWithin runs a BFS from pivot over g's out-edges restricted to
// unlabeled vertices of the given region, returning the visited bitset.
// Cancellation (ctx) aborts the traversal and reports the error; the
// bitset is then incomplete and discarded by the caller.
func reachableWithin(ctx context.Context, g graph.View, pivot uint32, region []uint32, id uint32,
	labels []uint32, opts core.Options) (*visitedBits, error) {

	n := g.NumVertices()
	visited := newVisitedBits(n)
	visited.SetAtomic(int(pivot))
	funcs := core.EdgeFuncs{
		Update: func(_, d uint32, _ int32) bool {
			return visited.SetAtomic(int(d))
		},
		UpdateAtomic: func(_, d uint32, _ int32) bool {
			return visited.SetAtomic(int(d))
		},
		Cond: func(d uint32) bool {
			return labels[d] == core.None && region[d] == id && !visited.Get(int(d))
		},
	}
	frontier := core.NewSingle(n, pivot)
	for !frontier.IsEmpty() {
		next, err := core.EdgeMapCtx(ctx, g, frontier, funcs, opts)
		if err != nil {
			return visited, err
		}
		frontier = next
	}
	return visited, nil
}

// visitedBits is a minimal atomic bit vector (local to SCC to keep the
// dependency on bitset's semantics explicit).
type visitedBits struct {
	words []uint32
}

func newVisitedBits(n int) *visitedBits {
	return &visitedBits{words: make([]uint32, (n+31)/32)}
}

func (b *visitedBits) Get(i int) bool {
	return atomic.LoadUint32(&b.words[i/32])&(1<<(uint(i)%32)) != 0
}

func (b *visitedBits) SetAtomic(i int) bool {
	mask := uint32(1) << (uint(i) % 32)
	addr := &b.words[i/32]
	for {
		old := atomic.LoadUint32(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, old|mask) {
			return true
		}
	}
}
