package algo

import (
	"sync/atomic"

	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// ForestResult carries a spanning forest.
type ForestResult struct {
	// Edges are the forest edges (Src = parent, Dst = child); there are
	// exactly NumVertices - Components of them.
	Edges []graph.Edge
	// Roots are the forest roots, one per connected component.
	Roots []uint32
}

// SpanningForest computes a spanning forest of a symmetric graph with
// BFS waves started from every still-unvisited vertex, gathering the
// discovered (parent -> child) tree edges through EdgeMapData — the
// data-carrying frontier interface of the Ligra lineage (vertexSubsetData
// / edgeMapData). All components are processed, so the result spans the
// whole graph.
func SpanningForest(g graph.View, opts core.Options) *ForestResult {
	n := g.NumVertices()
	parents := make([]uint32, n)
	parallel.Fill(parents, core.None)

	funcs := core.EdgeDataFuncs[uint32]{
		Update: func(s, d uint32, _ int32) (uint32, bool) {
			if parents[d] == core.None {
				parents[d] = s
				return s, true
			}
			return 0, false
		},
		UpdateAtomic: func(s, d uint32, _ int32) (uint32, bool) {
			if atomic.CompareAndSwapUint32(&parents[d], core.None, s) {
				return s, true
			}
			return 0, false
		},
		Cond: func(d uint32) bool { return parents[d] == core.None },
	}

	var forest []graph.Edge
	var roots []uint32
	for start := uint32(0); int(start) < n; start++ {
		if parents[start] != core.None {
			continue
		}
		parents[start] = start
		roots = append(roots, start)
		frontier := core.NewSingle(n, start)
		for !frontier.IsEmpty() {
			out := core.EdgeMapData(g, frontier, funcs, opts)
			for _, p := range out.Pairs() {
				forest = append(forest, graph.Edge{Src: p.Val, Dst: p.V})
			}
			frontier = out.Subset()
		}
	}
	return &ForestResult{Edges: forest, Roots: roots}
}
