package algo

import (
	"context"

	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// TriangleCount counts the triangles of a symmetric simple graph with the
// rank-ordered intersection algorithm of Shun and Tangwongsan (ICDE 2015):
// orient every edge from lower to higher (degree, ID) rank, so each
// triangle is counted exactly once as a wedge whose two forward adjacency
// lists intersect. Work is O(m^{3/2}) and the per-vertex loop parallelizes
// directly.
func TriangleCount(g graph.View) int64 {
	count, err := TriangleCountCtx(nil, g)
	if err != nil {
		panic(err)
	}
	return count
}

// TriangleCountCtx is TriangleCount with cooperative cancellation: ctx
// (nil = background) is observed at chunk granularity in every phase. On
// interruption the returned count is meaningless (0) — there is no useful
// partial result for a global count — and the error wraps the cause as a
// *RoundError.
func TriangleCountCtx(ctx context.Context, g graph.View) (int64, error) {
	n := g.NumVertices()
	if n == 0 {
		return 0, roundErr("triangles", 0, ctxErr(ctx))
	}
	// rank(v) < rank(d) iff (deg, id) of v is smaller.
	higher := func(v, d uint32) bool {
		dv, dd := g.OutDegree(v), g.OutDegree(d)
		return dd > dv || (dd == dv && d > v)
	}

	// Build forward adjacency lists (neighbors of higher rank), sorted.
	fwdDeg := make([]int64, n)
	if err := parallel.ForCtx(ctx, n, func(i int) {
		v := uint32(i)
		var c int64
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if higher(v, d) {
				c++
			}
			return true
		})
		fwdDeg[i] = c
	}); err != nil {
		return 0, roundErr("triangles", 0, err)
	}
	offsets := make([]int64, n+1)
	total := parallel.ScanExclusive(fwdDeg, offsets[:n])
	offsets[n] = total

	fwd := make([]uint32, total)
	if err := parallel.ForCtx(ctx, n, func(i int) {
		v := uint32(i)
		k := offsets[i]
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if higher(v, d) {
				fwd[k] = d
				k++
			}
			return true
		})
		row := fwd[offsets[i]:k]
		parallel.Sort(row) // rows are short (O(sqrt m)); sorts sequentially
	}); err != nil {
		return 0, roundErr("triangles", 0, err)
	}

	row := func(v uint32) []uint32 { return fwd[offsets[v]:offsets[v+1]] }
	count, err := parallel.SumFuncCtx(ctx, n, func(i int) int64 {
		v := uint32(i)
		rv := row(v)
		var c int64
		for _, u := range rv {
			c += intersectSortedCount(rv, row(u))
		}
		return c
	})
	return count, roundErr("triangles", 0, err)
}

// intersectSortedCount returns |a ∩ b| for sorted slices, merging when the
// lengths are comparable and galloping (binary search) when one side is
// much shorter.
func intersectSortedCount(a, b []uint32) int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	// Gallop when b is much longer.
	if len(b) >= 8*len(a) {
		var c int64
		lo := 0
		for _, x := range a {
			lo += searchU32(b[lo:], x)
			if lo < len(b) && b[lo] == x {
				c++
				lo++
			}
		}
		return c
	}
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// searchU32 returns the first index i with s[i] >= x (len(s) if none).
func searchU32(s []uint32, x uint32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
