// Package atomicx provides the atomic read-modify-write primitives Ligra's
// update functions are written with: compare-and-swap on slice elements,
// priority updates (writeMin/writeMax), fetch-and-add, and an atomic
// accumulator for float64 values built on CAS of the value's bit pattern.
//
// The priority-update operation (Shun, Blelloch, Fineman, Gibbons, SPAA
// 2013) atomically replaces a memory location's value with a new value only
// if the new value has higher priority (e.g. is smaller), retrying on
// contention. It returns whether the caller's value won, which edgeMap
// update functions use to decide whether the destination joins the output
// frontier exactly once.
package atomicx

import (
	"math"
	"sync/atomic"
)

// CASUint32 atomically replaces *addr with new iff it still holds old.
func CASUint32(addr *uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(addr, old, new)
}

// CASInt32 atomically replaces *addr with new iff it still holds old.
func CASInt32(addr *int32, old, new int32) bool {
	return atomic.CompareAndSwapInt32(addr, old, new)
}

// CASInt64 atomically replaces *addr with new iff it still holds old.
func CASInt64(addr *int64, old, new int64) bool {
	return atomic.CompareAndSwapInt64(addr, old, new)
}

// CASUint64 atomically replaces *addr with new iff it still holds old.
func CASUint64(addr *uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(addr, old, new)
}

// WriteMinUint32 atomically sets *addr = min(*addr, v) and reports whether v
// strictly lowered the stored value (i.e. this caller won the priority
// update).
func WriteMinUint32(addr *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, v) {
			return true
		}
	}
}

// WriteMinInt32 atomically sets *addr = min(*addr, v), reporting whether v
// won.
func WriteMinInt32(addr *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, v) {
			return true
		}
	}
}

// WriteMinInt64 atomically sets *addr = min(*addr, v), reporting whether v
// won.
func WriteMinInt64(addr *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, v) {
			return true
		}
	}
}

// WriteMaxUint32 atomically sets *addr = max(*addr, v), reporting whether v
// won.
func WriteMaxUint32(addr *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, v) {
			return true
		}
	}
}

// WriteMaxInt32 atomically sets *addr = max(*addr, v), reporting whether v
// won.
func WriteMaxInt32(addr *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, v) {
			return true
		}
	}
}

// AddInt64 atomically adds delta to *addr and returns the new value.
func AddInt64(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta)
}

// AddUint32 atomically adds delta to *addr and returns the new value.
func AddUint32(addr *uint32, delta uint32) uint32 {
	return atomic.AddUint32(addr, delta)
}

// OrUint64 atomically ORs mask into *addr and returns the previous value.
// The plain-load fast path skips the locked instruction when every mask
// bit is already set — the common case for visit-word propagation, where
// most edges deliver bits a hub has already received.
func OrUint64(addr *uint64, mask uint64) uint64 {
	if old := atomic.LoadUint64(addr); old|mask == old {
		return old
	}
	return atomic.OrUint64(addr, mask)
}

// TestAndSetBool atomically sets *addr (stored as a uint32 0/1 flag) to 1
// and reports whether this call performed the transition from 0.
func TestAndSetBool(addr *uint32) bool {
	return atomic.LoadUint32(addr) == 0 && atomic.CompareAndSwapUint32(addr, 0, 1)
}

// Float64Slice is a slice of float64 values supporting atomic addition and
// atomic writes. Values are stored as their IEEE-754 bit patterns in uint64
// words so the standard atomic CAS applies; this avoids unsafe pointer
// casts.
type Float64Slice struct {
	bits []uint64
}

// NewFloat64Slice returns a Float64Slice of length n, all zeros.
func NewFloat64Slice(n int) *Float64Slice {
	return &Float64Slice{bits: make([]uint64, n)}
}

// Len returns the number of elements.
func (f *Float64Slice) Len() int { return len(f.bits) }

// Load atomically reads element i.
func (f *Float64Slice) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&f.bits[i]))
}

// Store atomically writes element i.
func (f *Float64Slice) Store(i int, v float64) {
	atomic.StoreUint64(&f.bits[i], math.Float64bits(v))
}

// Add atomically adds delta to element i, returning the new value. It
// retries on contention (CAS loop over the bit pattern).
func (f *Float64Slice) Add(i int, delta float64) float64 {
	addr := &f.bits[i]
	for {
		oldBits := atomic.LoadUint64(addr)
		newVal := math.Float64frombits(oldBits) + delta
		if atomic.CompareAndSwapUint64(addr, oldBits, math.Float64bits(newVal)) {
			return newVal
		}
	}
}

// StoreNonAtomic writes element i without synchronization. Valid only when
// the caller guarantees exclusive access (e.g. dense pull traversals with a
// single writer per destination, or sequential phases).
func (f *Float64Slice) StoreNonAtomic(i int, v float64) {
	f.bits[i] = math.Float64bits(v)
}

// LoadNonAtomic reads element i without synchronization; see StoreNonAtomic.
func (f *Float64Slice) LoadNonAtomic(i int) float64 {
	return math.Float64frombits(f.bits[i])
}

// AddNonAtomic adds delta to element i without synchronization; see
// StoreNonAtomic.
func (f *Float64Slice) AddNonAtomic(i int, delta float64) {
	f.bits[i] = math.Float64bits(math.Float64frombits(f.bits[i]) + delta)
}

// Fill sets every element to v (not atomic with respect to concurrent
// mutators; intended for initialization between phases).
func (f *Float64Slice) Fill(v float64) {
	b := math.Float64bits(v)
	for i := range f.bits {
		f.bits[i] = b
	}
}

// ToSlice copies the current values into a plain []float64.
func (f *Float64Slice) ToSlice() []float64 {
	out := make([]float64, len(f.bits))
	for i := range f.bits {
		out[i] = math.Float64frombits(f.bits[i])
	}
	return out
}
