package atomicx

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteMinUint32Sequential(t *testing.T) {
	x := uint32(100)
	if !WriteMinUint32(&x, 50) || x != 50 {
		t.Errorf("writeMin(100, 50): won=%v x=%d", x == 50, x)
	}
	if WriteMinUint32(&x, 50) {
		t.Error("writeMin with equal value should not win")
	}
	if WriteMinUint32(&x, 70) || x != 50 {
		t.Errorf("writeMin(50, 70) changed value to %d", x)
	}
}

func TestWriteMinConcurrentConverges(t *testing.T) {
	const goroutines = 16
	const perG = 1000
	x := uint32(math.MaxUint32)
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := int32(0)
			for i := 0; i < perG; i++ {
				v := uint32(g*perG + i)
				if WriteMinUint32(&x, v) {
					local++
				}
			}
			mu.Lock()
			wins += local
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if x != 0 {
		t.Errorf("final value %d, want 0", x)
	}
	// The global minimum always wins exactly once; every observed win must
	// have strictly decreased the value, so wins <= number of distinct
	// values and >= 1.
	if wins < 1 {
		t.Errorf("wins = %d, want >= 1", wins)
	}
}

func TestWriteMinInt64(t *testing.T) {
	x := int64(10)
	if !WriteMinInt64(&x, -5) || x != -5 {
		t.Errorf("writeMin int64 failed: x=%d", x)
	}
	if WriteMinInt64(&x, 0) {
		t.Error("writeMin should not raise value")
	}
}

func TestWriteMaxVariants(t *testing.T) {
	a := uint32(5)
	if !WriteMaxUint32(&a, 9) || a != 9 {
		t.Errorf("WriteMaxUint32: a=%d", a)
	}
	if WriteMaxUint32(&a, 3) {
		t.Error("WriteMaxUint32 should not lower")
	}
	b := int32(-7)
	if !WriteMaxInt32(&b, -1) || b != -1 {
		t.Errorf("WriteMaxInt32: b=%d", b)
	}
}

func TestWriteMinInt32(t *testing.T) {
	x := int32(3)
	if !WriteMinInt32(&x, -3) || x != -3 {
		t.Errorf("WriteMinInt32: x=%d", x)
	}
}

func TestCASHelpers(t *testing.T) {
	u32 := uint32(1)
	if !CASUint32(&u32, 1, 2) || u32 != 2 {
		t.Error("CASUint32 success path failed")
	}
	if CASUint32(&u32, 1, 3) {
		t.Error("CASUint32 should fail on stale old")
	}
	i32 := int32(-1)
	if !CASInt32(&i32, -1, 7) || i32 != 7 {
		t.Error("CASInt32 failed")
	}
	i64 := int64(10)
	if !CASInt64(&i64, 10, 20) || i64 != 20 {
		t.Error("CASInt64 failed")
	}
	u64 := uint64(5)
	if !CASUint64(&u64, 5, 6) || u64 != 6 {
		t.Error("CASUint64 failed")
	}
}

func TestAddHelpers(t *testing.T) {
	var x int64
	if AddInt64(&x, 5) != 5 || AddInt64(&x, -2) != 3 {
		t.Error("AddInt64 wrong")
	}
	var u uint32
	if AddUint32(&u, 7) != 7 {
		t.Error("AddUint32 wrong")
	}
}

func TestOrUint64(t *testing.T) {
	var x uint64
	if old := OrUint64(&x, 0b101); old != 0 || x != 0b101 {
		t.Errorf("OrUint64: old=%b x=%b", old, x)
	}
	if old := OrUint64(&x, 0b100); old != 0b101 || x != 0b101 {
		t.Errorf("OrUint64 no-op case: old=%b x=%b", old, x)
	}
	if old := OrUint64(&x, 0b010); old != 0b101 || x != 0b111 {
		t.Errorf("OrUint64 merge: old=%b x=%b", old, x)
	}
}

func TestOrUint64Concurrent(t *testing.T) {
	var x uint64
	var wg sync.WaitGroup
	for b := 0; b < 64; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			OrUint64(&x, 1<<uint(b))
		}(b)
	}
	wg.Wait()
	if x != ^uint64(0) {
		t.Errorf("concurrent OR produced %b", x)
	}
}

func TestTestAndSetBool(t *testing.T) {
	var f uint32
	if !TestAndSetBool(&f) {
		t.Error("first TAS should win")
	}
	if TestAndSetBool(&f) {
		t.Error("second TAS should lose")
	}
}

func TestTestAndSetBoolConcurrent(t *testing.T) {
	var f uint32
	var wins int32
	var wg sync.WaitGroup
	var mu sync.Mutex
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if TestAndSetBool(&f) {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Errorf("TAS wins = %d, want exactly 1", wins)
	}
}

func TestFloat64SliceBasics(t *testing.T) {
	fs := NewFloat64Slice(4)
	if fs.Len() != 4 {
		t.Fatalf("Len = %d", fs.Len())
	}
	fs.Store(0, 1.5)
	if got := fs.Load(0); got != 1.5 {
		t.Errorf("Load = %v", got)
	}
	fs.Add(0, 2.5)
	if got := fs.Load(0); got != 4.0 {
		t.Errorf("after Add, Load = %v", got)
	}
	fs.StoreNonAtomic(1, -1)
	fs.AddNonAtomic(1, 0.5)
	if got := fs.LoadNonAtomic(1); got != -0.5 {
		t.Errorf("non-atomic path = %v", got)
	}
	fs.Fill(3)
	for i := 0; i < 4; i++ {
		if fs.Load(i) != 3 {
			t.Errorf("Fill missed index %d", i)
		}
	}
	s := fs.ToSlice()
	if len(s) != 4 || s[2] != 3 {
		t.Errorf("ToSlice = %v", s)
	}
}

func TestFloat64SliceConcurrentAdd(t *testing.T) {
	fs := NewFloat64Slice(1)
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fs.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := fs.Load(0); got != float64(goroutines*perG) {
		t.Errorf("concurrent adds lost updates: %v, want %v", got, goroutines*perG)
	}
}

func TestFloat64SliceAddProperty(t *testing.T) {
	f := func(vals []float64) bool {
		fs := NewFloat64Slice(1)
		var want float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			fs.Add(0, v)
			want += v
		}
		return fs.Load(0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
