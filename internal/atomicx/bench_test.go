package atomicx

import (
	"testing"
)

func BenchmarkWriteMinUncontended(b *testing.B) {
	xs := make([]uint32, 1024)
	for i := range xs {
		xs[i] = ^uint32(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WriteMinUint32(&xs[i%1024], uint32(i))
	}
}

func BenchmarkWriteMinContended(b *testing.B) {
	// All goroutines hammer one location — the contention scenario the
	// priority-update paper measures (it degrades gracefully because
	// losing writers do not retry once the location beats their value).
	var x uint32 = ^uint32(0)
	b.RunParallel(func(pb *testing.PB) {
		v := uint32(1 << 30)
		for pb.Next() {
			WriteMinUint32(&x, v)
			v-- // keep a few winners trickling in
		}
	})
}

func BenchmarkFetchAddContended(b *testing.B) {
	var x int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			AddInt64(&x, 1)
		}
	})
}

func BenchmarkFloat64Add(b *testing.B) {
	fs := NewFloat64Slice(1024)
	b.Run("atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs.Add(i%1024, 1.0)
		}
	})
	b.Run("nonatomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs.AddNonAtomic(i%1024, 1.0)
		}
	})
}

func BenchmarkTestAndSet(b *testing.B) {
	flags := make([]uint32, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// After the first wrap every call hits the already-set fast path,
		// which is the common case inside edgeMap rounds.
		TestAndSetBool(&flags[i%(1<<16)])
	}
}

func BenchmarkOrUint64(b *testing.B) {
	words := make([]uint64, 1024)
	for i := 0; i < b.N; i++ {
		OrUint64(&words[i%1024], 1<<(uint(i)%64))
	}
}
