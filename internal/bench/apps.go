package bench

import (
	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/seq"
)

// App is one of the paper's six applications, wired for the harness: a
// framework implementation parameterized by edgeMap options and a
// sequential baseline.
type App struct {
	Name string
	// NeedsWeights marks apps run on the weighted version of each input
	// (Bellman-Ford, per the paper: random weights in [1, log n)).
	NeedsWeights bool
	// Run executes the Ligra implementation.
	Run func(g graph.View, opts core.Options)
	// RunSeq executes the hand-written sequential baseline.
	RunSeq func(g graph.View)
}

// pickSource returns a deterministic high-degree source vertex, standing
// in for the paper's "random source" while keeping runs reproducible.
func pickSource(g graph.View) uint32 {
	n := g.NumVertices()
	return uint32(parallel.MaxIndexFunc(n, func(i int) int {
		return g.OutDegree(uint32(i))
	}))
}

// Apps returns the paper's six applications with the evaluation's
// parameters (PageRank: 1 power iteration; Radii: K=64; BC and BFS from a
// fixed high-degree source).
func Apps() []App {
	return []App{
		{
			Name: "BFS",
			Run: func(g graph.View, opts core.Options) {
				algo.BFS(g, pickSource(g), opts)
			},
			RunSeq: func(g graph.View) { seq.BFS(g, pickSource(g)) },
		},
		{
			Name: "BC",
			Run: func(g graph.View, opts core.Options) {
				algo.BC(g, pickSource(g), opts)
			},
			RunSeq: func(g graph.View) { seq.BC(g, pickSource(g)) },
		},
		{
			Name: "Radii",
			Run: func(g graph.View, opts core.Options) {
				algo.Radii(g, algo.RadiiOptions{K: 64, Seed: 1, EdgeMap: opts})
			},
			RunSeq: func(g graph.View) {
				// The sequential equivalent of the estimator: 64 plain BFS.
				n := g.NumVertices()
				k := 64
				if k > n {
					k = n
				}
				srcs := make([]uint32, k)
				for i := range srcs {
					srcs[i] = uint32(i)
				}
				seq.Eccentricities(g, srcs)
			},
		},
		{
			Name: "Components",
			Run: func(g graph.View, opts core.Options) {
				algo.ConnectedComponents(g, opts)
			},
			RunSeq: func(g graph.View) { seq.ConnectedComponents(g) },
		},
		{
			Name: "PageRank",
			Run: func(g graph.View, opts core.Options) {
				algo.PageRank(g, algo.PageRankOptions{
					Damping: 0.85, MaxIterations: 1, EdgeMap: opts,
				})
			},
			RunSeq: func(g graph.View) { seq.PageRank(g, 0.85, 0, 1) },
		},
		{
			Name:         "BellmanFord",
			NeedsWeights: true,
			Run: func(g graph.View, opts core.Options) {
				algo.BellmanFord(g, pickSource(g), opts)
			},
			RunSeq: func(g graph.View) { seq.Dijkstra(g, pickSource(g)) },
		},
	}
}

// FindApp returns the named app.
func FindApp(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// WeightGraph returns the weighted version of g used by Bellman-Ford:
// deterministic hash weights in [1, 32), mirroring the paper's random
// integer weights.
func WeightGraph(g *graph.Graph) *graph.Graph {
	return g.AddWeights(graph.HashWeight(31))
}
