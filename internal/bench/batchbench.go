package bench

import (
	"context"
	"fmt"

	"ligra/internal/algo"
	"ligra/internal/core"
)

// Batch times K concurrent distinct-source BFS queries answered the way
// the serving path does without the batch collector — K independent
// single-source sweeps, each producing the bfs runner's result — versus
// as one bit-parallel ClusterBFS sweep with K visit-word bits (exactly
// what batch.ClusterRun executes: per-source reach counts and depths,
// no level matrix). Besides wall time it reports the edges_scanned
// ratio from the traversal counters: the batched sweep visits each
// frontier vertex's edges once per round it is live for ANY source,
// instead of once per source, which is the whole point of the
// subsystem (the acceptance bar is >=4x fewer edges at K=32 on rMat).
func Batch(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	n := g.NumVertices()
	ctx := context.Background()

	fmt.Fprintf(cfg.Out, "Batched multi-source BFS on %s (n=%d, m=%d; seconds, median of %d)\n",
		in.Name, n, g.NumEdges(), cfg.rounds())
	fmt.Fprintln(cfg.Out, "  unbatched = K independent single-source sweeps; batched = one ClusterBFS sweep, K visit-word bits")
	w := cfg.tab()
	fmt.Fprintln(w, "K\tunbatched\tbatched\tspeedup\tedges(unbatched)\tedges(batched)\tedge ratio")
	for _, k := range []int{8, 32, 64} {
		if cfg.budgetExhausted(w) {
			break
		}
		if k >= n {
			fmt.Fprintf(w, "%d\t[skipped: graph has only %d vertices]\n", k, n)
			continue
		}
		// K distinct sources spread across the ID space, deterministic
		// so reruns and -against diffs compare like with like.
		sources := make([]uint32, k)
		for i := range sources {
			sources[i] = uint32(i * (n - 1) / k)
		}
		unbatched := func() {
			for _, s := range sources {
				if _, err := algo.BFSCtx(ctx, g, s, core.Options{}); err != nil {
					panic(fmt.Errorf("batch bench unbatched bfs: %w", err))
				}
			}
		}
		batched := func() {
			if _, err := algo.ClusterBFSCtx(ctx, g, sources, algo.ClusterBFSOptions{}); err != nil {
				panic(fmt.Errorf("batch bench clusterbfs: %w", err))
			}
		}
		// One untimed run of each variant isolates its edges_scanned
		// delta before the timed repetitions pollute the counters.
		pre := core.SnapshotStats()
		unbatched()
		uEdges := core.SnapshotStats().Sub(pre).EdgesScanned
		pre = core.SnapshotStats()
		batched()
		bEdges := core.SnapshotStats().Sub(pre).EdgesScanned

		tu := Measure(cfg.rounds(), unbatched)
		tb := Measure(cfg.rounds(), batched)
		ratio := 0.0
		if bEdges > 0 {
			ratio = float64(uEdges) / float64(bEdges)
		}
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.2fx\t%d\t%d\t%.2fx\n",
			k, tu.Median.Seconds(), tb.Median.Seconds(),
			tu.Median.Seconds()/tb.Median.Seconds(), uEdges, bEdges, ratio)
		cfg.record(fmt.Sprintf("batch/k%d-unbatched", k), tu.Median.Seconds())
		cfg.record(fmt.Sprintf("batch/k%d-batched", k), tb.Median.Seconds())
	}
	return w.Flush()
}
