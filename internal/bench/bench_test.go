package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"ligra/internal/core"
	"ligra/internal/parallel"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Scale: 9, Rounds: 1, MaxProcs: 2, Out: buf}
}

func TestDefaultSuiteBuilds(t *testing.T) {
	suite := DefaultSuite(9)
	if len(suite) != 5 {
		t.Fatalf("suite has %d inputs, want 5", len(suite))
	}
	names := map[string]bool{}
	for _, in := range suite {
		g, err := in.Build()
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", in.Name)
		}
		if !g.Symmetric() {
			t.Errorf("%s: evaluation inputs are symmetric in the paper", in.Name)
		}
		names[in.Name] = true
	}
	for _, want := range []string{"3d-grid", "randLocal", "rMat", "twitter-sim", "yahoo-sim"} {
		if !names[want] {
			t.Errorf("missing input %s", want)
		}
	}
}

func TestDefaultSuiteClampsScale(t *testing.T) {
	suite := DefaultSuite(1) // clamped to 8
	g, err := suite[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 100 {
		t.Errorf("clamped suite too small: %d", g.NumVertices())
	}
}

func TestFindInput(t *testing.T) {
	suite := DefaultSuite(9)
	if _, err := FindInput(suite, "rMat"); err != nil {
		t.Error(err)
	}
	if _, err := FindInput(suite, "nope"); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestFindApp(t *testing.T) {
	for _, name := range []string{"BFS", "BC", "Radii", "Components", "PageRank", "BellmanFord"} {
		if _, ok := FindApp(name); !ok {
			t.Errorf("missing app %s", name)
		}
	}
	if _, ok := FindApp("nope"); ok {
		t.Error("unknown app found")
	}
}

func TestAppsRunAtTinyScale(t *testing.T) {
	suite := DefaultSuite(9)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		t.Fatal(err)
	}
	g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	wg := WeightGraph(g)
	for _, app := range Apps() {
		view := g
		if app.NeedsWeights {
			view = wg
		}
		app.Run(view, core.Options{})
		app.RunSeq(view)
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	tm := Measure(5, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 5 {
		t.Errorf("fn called %d times, want 5", calls)
	}
	if tm.Min > tm.Median || tm.Median > tm.Max {
		t.Errorf("ordering violated: %+v", tm)
	}
	if tm.Min < time.Millisecond {
		t.Errorf("Min %v below the sleep floor", tm.Min)
	}
	tm0 := Measure(0, func() {}) // clamps to 1
	if tm0.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", tm0.Rounds)
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	exps := Experiments()
	order := ExperimentOrder()
	if len(exps) != len(order) {
		t.Fatalf("Experiments has %d entries, ExperimentOrder %d", len(exps), len(order))
	}
	for _, id := range order {
		run, ok := exps[id]
		if !ok {
			t.Fatalf("experiment %s missing from map", id)
		}
		var buf bytes.Buffer
		if err := run(tinyConfig(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestTable1MentionsEveryInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"3d-grid", "randLocal", "rMat", "twitter-sim", "yahoo-sim"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 output missing %s", name)
		}
	}
}

func TestFrontierShowsBothModes(t *testing.T) {
	var buf bytes.Buffer
	if err := Frontier(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sparse") || !strings.Contains(out, "dense") {
		t.Error("frontier trace should contain both representations at this scale")
	}
}

func TestThresholdIncludesExtremes(t *testing.T) {
	var buf bytes.Buffer
	if err := Threshold(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, label := range []string{"sparse-only", "dense-only", "m/20"} {
		if !strings.Contains(out, label) {
			t.Errorf("threshold output missing %q", label)
		}
	}
}

func TestPickSourceIsMaxDegree(t *testing.T) {
	suite := DefaultSuite(9)
	in, _ := FindInput(suite, "twitter-sim")
	g, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	src := pickSource(g)
	deg := g.OutDegree(src)
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(uint32(v)) > deg {
			t.Fatalf("vertex %d has higher degree than picked source", v)
		}
	}
}
