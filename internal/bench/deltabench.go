package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/delta"
)

// DeltaUpdates benchmarks the dynamic-graph subsystem: the throughput of
// applying batched edge updates through a delta.Store (overlay build +
// version publish, group-commit window off so the numbers are pure apply
// cost), and the payoff of incremental recomputation — connected
// components and PageRank-Delta refreshed from the delta log after a
// small update batch, versus recomputing from scratch on the same
// snapshot. The incremental refreshers are exact (the serving tests
// cross-validate them against full recomputes), so the speedup column is
// the whole value proposition of the delta log.
func DeltaUpdates(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	n := g.NumVertices()
	ctx := context.Background()

	fmt.Fprintf(cfg.Out, "Dynamic updates on %s (n=%d, m=%d; median of %d)\n",
		in.Name, n, g.NumEdges(), cfg.rounds())
	fmt.Fprintln(cfg.Out, "  apply = overlay build + snapshot publish per batch (window off, compaction off)")
	w := cfg.tab()
	fmt.Fprintln(w, "batch size\tapply s/batch\tops/s")
	// Deterministic pseudo-random endpoint stream (xorshift), identical
	// across runs so -against diffs compare like with like. Every third
	// op deletes the edge inserted two steps earlier, mixing membership
	// hits and misses the way a churn workload does.
	mkOps := func(count int, seed uint64) []delta.EdgeOp {
		ops := make([]delta.EdgeOp, 0, count)
		s := seed
		next := func() uint32 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return uint32(s % uint64(n))
		}
		for len(ops) < count {
			src, dst := next(), next()
			if src == dst {
				continue
			}
			ops = append(ops, delta.EdgeOp{Src: src, Dst: dst})
			if len(ops)%3 == 0 && len(ops) >= 2 {
				prev := ops[len(ops)-2]
				ops = append(ops, delta.EdgeOp{Src: prev.Src, Dst: prev.Dst, Del: true})
			}
		}
		return ops[:count]
	}
	const applyBatches = 8
	for _, size := range []int{1 << 8, 1 << 12, 1 << 16} {
		if cfg.budgetExhausted(w) {
			break
		}
		batches := make([][]delta.EdgeOp, applyBatches)
		for i := range batches {
			batches[i] = mkOps(size, uint64(i+1)*0x9E3779B97F4A7C15)
		}
		t := Measure(cfg.rounds(), func() {
			st := delta.NewStore(g, delta.Config{Policy: delta.Policy{CompactEvery: -1, HistoryDepth: -1}})
			defer st.Release()
			for _, ops := range batches {
				if _, err := st.Update(ctx, ops); err != nil {
					panic(fmt.Errorf("delta bench apply: %w", err))
				}
			}
		})
		perBatch := t.Median.Seconds() / applyBatches
		cfg.record(fmt.Sprintf("delta/apply/%d", size), perBatch)
		fmt.Fprintf(w, "%d\t%.6f\t%.0f\n", size, perBatch, float64(size)/perBatch)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// Incremental refresh vs full recompute. Each measured round applies
	// one fresh batch (untimed) and then times the incremental refresh,
	// which replays exactly that batch from the delta log; the full
	// column recomputes on the same snapshot the refresh produced.
	const refreshOps = 256
	fmt.Fprintf(cfg.Out, "Incremental refresh after a %d-op batch vs full recompute (seconds)\n", refreshOps)
	w = cfg.tab()
	fmt.Fprintln(w, "algo\tfull\tincremental\tspeedup")

	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	run := func(name string, refresh func(pin *delta.Pin) error, full func(pin *delta.Pin) error) error {
		st := delta.NewStore(g, delta.Config{Policy: delta.Policy{CompactEvery: -1, HistoryDepth: 64}})
		defer st.Release()
		// Seed the tracker: the first refresh is always a full run.
		pin, err := st.Acquire()
		if err != nil {
			return err
		}
		if err := refresh(pin); err != nil {
			pin.Release()
			return err
		}
		pin.Release()
		var incTimes, fullTimes []time.Duration
		for i := 0; i < cfg.rounds(); i++ {
			if _, err := st.Update(ctx, mkOps(refreshOps, uint64(i+1)*0xA0761D6478BD642F)); err != nil {
				return err
			}
			pin, err := st.Acquire()
			if err != nil {
				return err
			}
			start := time.Now()
			err = refresh(pin)
			incTimes = append(incTimes, time.Since(start))
			if err == nil {
				start = time.Now()
				err = full(pin)
				fullTimes = append(fullTimes, time.Since(start))
			}
			pin.Release()
			if err != nil {
				return err
			}
		}
		stats := st.Stats()
		if stats.IncrementalRuns == 0 {
			fmt.Fprintf(w, "%s\t[no incremental runs: fell back to full recompute]\n", name)
			return nil
		}
		fs, is := median(fullTimes).Seconds(), median(incTimes).Seconds()
		cfg.record("delta/"+name+"/full", fs)
		cfg.record("delta/"+name+"/incremental", is)
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.1fx\n", name, fs, is, fs/is)
		return nil
	}

	if !cfg.Expired() {
		emOpts := core.Options{}
		if err := run("components",
			func(pin *delta.Pin) error {
				_, _, err := pin.Store().RefreshCC(ctx, pin, emOpts)
				return err
			},
			func(pin *delta.Pin) error {
				_, err := algo.ConnectedComponentsCtx(ctx, pin.View(), emOpts)
				return err
			}); err != nil {
			return err
		}
	}
	if !cfg.Expired() {
		prOpts := algo.DefaultPageRankOptions()
		const prDelta = 1e-3
		if err := run("pagerank-delta",
			func(pin *delta.Pin) error {
				_, _, err := pin.Store().RefreshPageRankDelta(ctx, pin, prOpts, prDelta)
				return err
			},
			func(pin *delta.Pin) error {
				_, err := algo.PageRankDeltaCtx(ctx, pin.View(), prOpts, prDelta)
				return err
			}); err != nil {
			return err
		}
	}
	if cfg.Expired() {
		fmt.Fprintln(w, "[budget exhausted: remaining measurements skipped]")
	}
	return w.Flush()
}
