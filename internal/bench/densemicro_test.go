package bench

import (
	"sync/atomic"
	"testing"

	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/parallel"
)

// benchDenseRound times one forced-dense EdgeMap with a CC-style priority
// update, isolating the pull path from algorithm-level conversions.
func benchDenseRound(b *testing.B, fullFrontier bool) {
	g, _ := benchInput(b)
	n := g.NumVertices()
	ids := make([]uint32, n)
	prev := make([]uint32, n)
	var frontier *core.VertexSubset
	if fullFrontier {
		frontier = core.NewAll(n)
	} else {
		frontier = core.NewFromFunc(n, func(v uint32) bool { return v%16 != 0 })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		parallel.Iota(ids, 0)
		parallel.Iota(prev, 0)
		b.StartTimer()
		update := func(s, d uint32, _ int32) bool {
			sid := atomic.LoadUint32(&ids[s])
			orig := atomic.LoadUint32(&ids[d])
			if atomicx.WriteMinUint32(&ids[d], sid) {
				return orig == prev[d]
			}
			return false
		}
		core.EdgeMap(g, frontier, core.EdgeFuncs{Update: update, UpdateAtomic: update},
			core.Options{Mode: core.ForceDense})
	}
}

func BenchmarkDensePullFull(b *testing.B)    { benchDenseRound(b, true) }
func BenchmarkDensePullPartial(b *testing.B) { benchDenseRound(b, false) }
