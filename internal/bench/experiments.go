package bench

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"ligra/internal/algo"
	"ligra/internal/compress"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// Config parameterizes the experiment harness.
type Config struct {
	// Scale sets the synthetic graph sizes (~2^Scale vertices).
	Scale int
	// Rounds is the number of timed repetitions (median reported).
	Rounds int
	// MaxProcs caps the worker counts swept by the scalability
	// experiment; 0 means up to parallel.Procs(). Sweeps ride per-call
	// ctx leases, which clamp at the machine's worker count, so values
	// above it are reduced rather than oversubscribing.
	MaxProcs int
	// Deadline, when non-zero, is a wall-clock budget for the whole run:
	// experiments check it between measurements, skip the remainder, and
	// report the rows completed so far instead of running unbounded.
	Deadline time.Time
	// Out receives the rendered tables.
	Out io.Writer
	// Record, when non-nil, receives one (id, median seconds) pair per
	// named measurement, so harness drivers (ligra-bench -json / -against)
	// can persist and diff individual timings rather than whole-experiment
	// wall times.
	Record func(id string, seconds float64)
}

// record forwards a named measurement to the Record hook, if any.
func (c Config) record(id string, seconds float64) {
	if c.Record != nil {
		c.Record(id, seconds)
	}
}

// Expired reports whether the wall-clock budget (if any) is exhausted.
func (c Config) Expired() bool {
	return !c.Deadline.IsZero() && time.Now().After(c.Deadline)
}

// budgetExhausted prints the partial-results note to w when the budget
// ran out; callers break out of their measurement loop on true.
func (c Config) budgetExhausted(w io.Writer) bool {
	if !c.Expired() {
		return false
	}
	fmt.Fprintln(w, "[budget exhausted: remaining measurements skipped]")
	return true
}

func (c Config) rounds() int {
	if c.Rounds < 1 {
		return 3
	}
	return c.Rounds
}

func (c Config) tab() *tabwriter.Writer {
	return tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
}

// buildSuite constructs every input of the suite, reporting progress.
func buildSuite(cfg Config) ([]Input, map[string]*graph.Graph, error) {
	suite := DefaultSuite(cfg.Scale)
	built := make(map[string]*graph.Graph, len(suite))
	for _, in := range suite {
		g, err := in.Build()
		if err != nil {
			return nil, nil, fmt.Errorf("building %s: %w", in.Name, err)
		}
		built[in.Name] = g
	}
	return suite, built, nil
}

// Table1 prints the input-graph table (paper Table 1: name, |V|, |E|).
func Table1(cfg Config) error {
	suite, built, err := buildSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "Table 1: input graphs (scaled to container size; see DESIGN.md §4)")
	w := cfg.tab()
	fmt.Fprintln(w, "Input\tVertices\tDirected edges\tMax deg\tAvg deg\tStands in for")
	for _, in := range suite {
		g := built[in.Name]
		s := graph.ComputeStats(g)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%s\n",
			in.Name, s.Vertices, s.Edges, s.MaxOutDeg, s.AvgDeg, in.Description)
	}
	return w.Flush()
}

// Table2 prints the running-time table (paper Table 2): for every input
// and application, the sequential baseline, the framework at one worker,
// and the framework at full parallelism.
func Table2(cfg Config) error {
	suite, built, err := buildSuite(cfg)
	if err != nil {
		return err
	}
	fullP := parallel.Procs()
	fmt.Fprintf(cfg.Out, "Table 2: running times in seconds (median of %d; P=%d workers)\n", cfg.rounds(), fullP)
	fmt.Fprintln(cfg.Out, "  serial = hand-written sequential baseline; (1)/(P) = Ligra with 1/P workers")
	w := cfg.tab()
	fmt.Fprintln(w, "Input\tApplication\tserial\t(1)\t(P)\toverhead(1)/serial")
	for _, in := range suite {
		base := built[in.Name]
		for _, app := range Apps() {
			if cfg.budgetExhausted(w) {
				return w.Flush()
			}
			g := graph.View(base)
			if app.NeedsWeights {
				g = WeightGraph(base)
			}
			tSeq := Measure(cfg.rounds(), func() { app.RunSeq(g) })

			// Worker counts ride per-call ctx leases (Options.Procs →
			// parallel.WithProcs), never the global SetProcs: the sweep
			// must not leak its cap into anything running concurrently.
			// The lease caps every ctx-aware loop of the run; the few
			// plain init loops (array fills) stay at full parallelism,
			// which only flatters the (1) column negligibly.
			t1 := Measure(cfg.rounds(), func() { app.Run(g, core.Options{Procs: 1}) })
			tP := Measure(cfg.rounds(), func() { app.Run(g, core.Options{}) })

			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.4f\t%.2fx\n",
				in.Name, app.Name,
				tSeq.Median.Seconds(), t1.Median.Seconds(), tP.Median.Seconds(),
				t1.Median.Seconds()/tSeq.Median.Seconds())
		}
	}
	return w.Flush()
}

// Scalability prints per-application running times versus worker count on
// the rMat input (the paper's log-log speedup figures).
func Scalability(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	base, err := in.Build()
	if err != nil {
		return err
	}
	// The sweep runs each worker count as a per-call ctx lease
	// (Options.Procs), not a global SetProcs: leases compose as
	// min(Procs(), cap), so counts above the machine's worker pool are
	// clamped — oversubscribing a persistent pool is meaningless, unlike
	// the old spawn-per-call runtime where extra goroutines could be
	// created on demand.
	maxP := cfg.MaxProcs
	if maxP <= 0 || maxP > parallel.Procs() {
		maxP = parallel.Procs()
	}
	var procsList []int
	for p := 1; p <= maxP; p *= 2 {
		procsList = append(procsList, p)
	}
	fmt.Fprintf(cfg.Out, "Scalability on %s (seconds, median of %d; note: hardware exposes %d CPU(s) — on a single-CPU container the curve is flat by construction, the harness is what the figure regenerates)\n",
		in.Name, cfg.rounds(), parallel.Procs())
	w := cfg.tab()
	header := "Application"
	for _, p := range procsList {
		header += fmt.Sprintf("\tT=%d", p)
	}
	fmt.Fprintln(w, header)
	for _, app := range Apps() {
		if cfg.budgetExhausted(w) {
			return w.Flush()
		}
		g := graph.View(base)
		if app.NeedsWeights {
			g = WeightGraph(base)
		}
		row := app.Name
		for _, p := range procsList {
			opts := core.Options{Procs: p}
			tm := Measure(cfg.rounds(), func() { app.Run(g, opts) })
			row += fmt.Sprintf("\t%.4f", tm.Median.Seconds())
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}

// Frontier prints the per-round BFS frontier trace (the paper's motivation
// figure for direction optimization): frontier size, outgoing edges, the
// representation edgeMap chose, and the round time.
func Frontier(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	for _, name := range []string{"rMat", "3d-grid"} {
		in, err := FindInput(suite, name)
		if err != nil {
			return err
		}
		g, err := in.Build()
		if err != nil {
			return err
		}
		tr := &core.Trace{}
		algo.BFS(g, pickSource(g), core.Options{Trace: tr})
		fmt.Fprintf(cfg.Out, "BFS frontier trace on %s (n=%d, m=%d, threshold=m/20=%d)\n",
			in.Name, g.NumVertices(), g.NumEdges(), g.NumEdges()/core.DefaultThresholdDenominator)
		w := cfg.tab()
		fmt.Fprintln(w, "Round\t|Frontier|\tOutDegrees\tMode\tOutput\tTime")
		for _, e := range tr.Entries {
			mode := "sparse"
			if e.Dense {
				mode = "dense"
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\t%s\n",
				e.Round, e.FrontierSize, e.OutDegrees, mode, e.OutputSize, e.Duration)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Threshold prints BFS and Components running times across edgeMap switch
// thresholds (the paper's sensitivity analysis around the m/20 default),
// including the sparse-only and dense-only extremes.
func Threshold(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	m := g.NumEdges()
	denoms := []int64{1, 5, 10, 20, 40, 80, 160, 320, 1000}

	type variant struct {
		label string
		opts  core.Options
	}
	variants := []variant{{"sparse-only", core.Options{Mode: core.ForceSparse}}}
	for _, d := range denoms {
		variants = append(variants, variant{
			fmt.Sprintf("m/%d", d),
			core.Options{Threshold: m / d},
		})
	}
	variants = append(variants, variant{"dense-only", core.Options{Mode: core.ForceDense}})

	apps := []struct {
		name string
		run  func(opts core.Options)
	}{
		{"BFS", func(o core.Options) { algo.BFS(g, pickSource(g), o) }},
		{"Components", func(o core.Options) { algo.ConnectedComponents(g, o) }},
	}
	fmt.Fprintf(cfg.Out, "EdgeMap threshold sensitivity on %s (seconds, median of %d; paper default m/20)\n",
		in.Name, cfg.rounds())
	w := cfg.tab()
	fmt.Fprintln(w, "Variant\tBFS\tComponents")
	for _, v := range variants {
		if cfg.budgetExhausted(w) {
			break
		}
		row := v.label
		for _, a := range apps {
			tm := Measure(cfg.rounds(), func() { a.run(v.opts) })
			row += fmt.Sprintf("\t%.4f", tm.Median.Seconds())
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}

// DenseForward compares the read-based (pull) dense traversal against the
// write-based dense-forward variant on dense-frontier applications.
func DenseForward(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	apps := []struct {
		name string
		run  func(opts core.Options)
	}{
		{"PageRank(1 iter)", func(o core.Options) {
			algo.PageRank(g, algo.PageRankOptions{Damping: 0.85, MaxIterations: 1, EdgeMap: o})
		}},
		{"Components", func(o core.Options) { algo.ConnectedComponents(g, o) }},
	}
	fmt.Fprintf(cfg.Out, "Dense vs dense-forward on %s (seconds, median of %d)\n", in.Name, cfg.rounds())
	w := cfg.tab()
	fmt.Fprintln(w, "Application\tdense (pull)\tdense-forward (push)")
	for _, a := range apps {
		if cfg.budgetExhausted(w) {
			break
		}
		t1 := Measure(cfg.rounds(), func() { a.run(core.Options{Mode: core.ForceDense}) })
		t2 := Measure(cfg.rounds(), func() {
			a.run(core.Options{Mode: core.ForceDense, DenseForward: true})
		})
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\n", a.name, t1.Median.Seconds(), t2.Median.Seconds())
	}
	return w.Flush()
}

// CompressAblation measures the compressed backend end to end (the Ligra+
// extension experiment, plus this repo's LIGRAGC1 format and the
// GPOP-style partition-blocked dense sweep):
//
//   - resident footprint: CSR MemoryFootprint vs compressed SizeBytes vs
//     the mmap-backed heap footprint (~0; the bytes live in the page cache)
//   - format round-trip cost: WriteCompressed / ReadCompressed (full
//     validation decode) / OpenMapped on a temp file
//   - traversal time per backend: CSR, compressed with the blocked dense
//     sweep (the default), compressed with NoBlockDecode (per-edge decode
//     callback, for ablation), and the mmap-backed graph
//
// Per-measurement ids are recorded ("compress/<app>-<backend>") so
// ligra-bench -against can diff decoder regressions individually.
func CompressAblation(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	c, err := compress.Compress(g)
	if err != nil {
		return err
	}
	csrBytes := g.MemoryFootprint()
	fmt.Fprintf(cfg.Out, "Ligra+ compression on %s: CSR %d bytes resident -> compressed %d bytes (%.2fx smaller)\n",
		in.Name, csrBytes, c.SizeBytes(), float64(csrBytes)/float64(c.SizeBytes()))

	// Format round trip through a temp file: write, validated heap read,
	// and mmap open (validation decode faults every page in once).
	f, err := os.CreateTemp("", "ligra-bench-*.gc")
	if err != nil {
		return err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	start := time.Now()
	if err := compress.WriteCompressedFile(path, c); err != nil {
		return err
	}
	writeDur := time.Since(start)
	start = time.Now()
	if _, err := compress.ReadCompressedFile(path); err != nil {
		return err
	}
	readDur := time.Since(start)
	start = time.Now()
	mapped, err := compress.OpenMapped(path)
	if err != nil {
		return err
	}
	mmapDur := time.Since(start)
	fmt.Fprintf(cfg.Out, "LIGRAGC1 round trip: write %.3fs, read+validate %.3fs, mmap+validate %.3fs; mapped graph: heap %d bytes, mapped %d bytes\n",
		writeDur.Seconds(), readDur.Seconds(), mmapDur.Seconds(),
		mapped.MemoryFootprint(), mapped.MappedBytes())
	cfg.record("compress/write", writeDur.Seconds())
	cfg.record("compress/read", readDur.Seconds())

	apps := []struct {
		name string
		run  func(v graph.View, o core.Options)
	}{
		{"BFS", func(v graph.View, o core.Options) { algo.BFS(v, pickSource(v), o) }},
		{"PageRank1", func(v graph.View, o core.Options) {
			algo.PageRank(v, algo.PageRankOptions{Damping: 0.85, MaxIterations: 1, EdgeMap: o})
		}},
		{"Components", func(v graph.View, o core.Options) { algo.ConnectedComponents(v, o) }},
	}
	backends := []struct {
		id   string
		v    graph.View
		opts core.Options
	}{
		{"csr", g, core.Options{}},
		{"blocked", c, core.Options{}},
		{"noblock", c, core.Options{NoBlockDecode: true}},
		{"mmap", mapped, core.Options{}},
	}
	w := cfg.tab()
	fmt.Fprintln(w, "Application\tCSR\tcompressed(blocked)\tcompressed(noblock)\tcompressed(mmap)\tslowdown(blocked)")
	for _, a := range apps {
		if cfg.budgetExhausted(w) {
			break
		}
		row := a.name
		var times []float64
		for _, b := range backends {
			tm := Measure(cfg.rounds(), func() { a.run(b.v, b.opts) })
			times = append(times, tm.Median.Seconds())
			row += fmt.Sprintf("\t%.4f", tm.Median.Seconds())
			cfg.record("compress/"+a.name+"-"+b.id, tm.Median.Seconds())
		}
		fmt.Fprintf(w, "%s\t%.2fx\n", row, times[1]/times[0])
	}
	return w.Flush()
}

// DedupAblation compares the two duplicate-removal strategies for sparse
// frontiers — Ligra's CAS-claimed O(|V|) scratch array versus the
// phase-concurrent hash set (Shun-Blelloch SPAA'14) — on the two
// applications that need deduplication.
func DedupAblation(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	wg := WeightGraph(g)
	apps := []struct {
		name string
		run  func(opts core.Options)
	}{
		// Components sets RemoveDuplicates internally; force sparse so
		// the dedup path actually runs every round.
		{"Components(sparse)", func(o core.Options) {
			o.Mode = core.ForceSparse
			algo.ConnectedComponents(g, o)
		}},
		{"BellmanFord(sparse)", func(o core.Options) {
			o.Mode = core.ForceSparse
			o.RemoveDuplicates = true
			algo.BellmanFord(wg, pickSource(wg), o)
		}},
	}
	fmt.Fprintf(cfg.Out, "Frontier deduplication on %s (seconds, median of %d)\n", in.Name, cfg.rounds())
	w := cfg.tab()
	fmt.Fprintln(w, "Application\tscratch (CAS array)\thash set")
	for _, a := range apps {
		if cfg.budgetExhausted(w) {
			break
		}
		t1 := Measure(cfg.rounds(), func() { a.run(core.Options{Dedup: core.DedupScratch}) })
		t2 := Measure(cfg.rounds(), func() { a.run(core.Options{Dedup: core.DedupHash}) })
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\n", a.name, t1.Median.Seconds(), t2.Median.Seconds())
	}
	return w.Flush()
}

// BucketingAblation compares the scan-based k-core peeling against the
// Julienne bucket structure, and delta-stepping against frontier
// Bellman-Ford — the workloads that motivated the Julienne extension.
func BucketingAblation(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	wg := WeightGraph(g)
	src := pickSource(wg)

	fmt.Fprintf(cfg.Out, "Bucketing (Julienne extension) on %s (seconds, median of %d)\n", in.Name, cfg.rounds())
	w := cfg.tab()
	fmt.Fprintln(w, "Workload\tbaseline\tbucketed")
	if cfg.budgetExhausted(w) {
		return w.Flush()
	}
	tk1 := Measure(cfg.rounds(), func() { algo.KCore(g, core.Options{}) })
	tk2 := Measure(cfg.rounds(), func() { algo.KCoreJulienne(g, core.Options{}) })
	fmt.Fprintf(w, "k-core (scan vs buckets)\t%.4f\t%.4f\n", tk1.Median.Seconds(), tk2.Median.Seconds())
	if cfg.budgetExhausted(w) {
		return w.Flush()
	}
	tb1 := Measure(cfg.rounds(), func() { algo.BellmanFord(wg, src, core.Options{}) })
	tb2 := Measure(cfg.rounds(), func() {
		if _, err := algo.DeltaStepping(wg, src, 0, core.Options{}); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "SSSP on rMat (Bellman-Ford vs delta-stepping)\t%.4f\t%.4f\n",
		tb1.Median.Seconds(), tb2.Median.Seconds())

	if cfg.budgetExhausted(w) {
		return w.Flush()
	}
	// The delta-stepping regime the Julienne paper targets: a weighted
	// high-diameter mesh with a wide weight range, where Bellman-Ford
	// re-relaxes wavefront vertices many times.
	gridIn, err := FindInput(suite, "3d-grid")
	if err != nil {
		return err
	}
	grid, err := gridIn.Build()
	if err != nil {
		return err
	}
	wgrid := grid.AddWeights(graph.HashWeight(1000))
	gsrc := pickSource(wgrid)
	tg1 := Measure(cfg.rounds(), func() { algo.BellmanFord(wgrid, gsrc, core.Options{}) })
	tg2 := Measure(cfg.rounds(), func() {
		if _, err := algo.DeltaStepping(wgrid, gsrc, 0, core.Options{}); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "SSSP on 3d-grid/w1000 (Bellman-Ford vs delta-stepping)\t%.4f\t%.4f\n",
		tg1.Median.Seconds(), tg2.Median.Seconds())
	return w.Flush()
}

// Experiments maps experiment IDs (as used by cmd/ligra-bench and
// DESIGN.md's per-experiment index) to their runners.
func Experiments() map[string]func(Config) error {
	return map[string]func(Config) error{
		"table1":       Table1,
		"table2":       Table2,
		"scalability":  Scalability,
		"frontier":     Frontier,
		"threshold":    Threshold,
		"denseforward": DenseForward,
		"compress":     CompressAblation,
		"dedup":        DedupAblation,
		"bucketing":    BucketingAblation,
		"hotpath":      HotPath,
		"servecache":   ServeCache,
		"scheduler":    Scheduler,
		"batch":        Batch,
		"delta":        DeltaUpdates,
		"spmv":         SpMV,
	}
}

// ExperimentOrder lists the IDs in presentation order.
func ExperimentOrder() []string {
	return []string{"table1", "table2", "scalability", "frontier", "threshold", "denseforward", "compress", "dedup", "bucketing", "hotpath", "servecache", "scheduler", "batch", "delta", "spmv"}
}
