package bench

import (
	"fmt"

	"ligra/internal/algo"
	"ligra/internal/core"
)

// HotPath times the edgeMap hot path on the rMat input: the traversals
// whose cost the frontier representation dominates. It is the experiment
// behind BENCH_baseline.json and the ligra-bench -against comparison mode
// — each measurement is recorded individually (Config.Record), so a future
// run can state its per-workload delta instead of a whole-suite wall time.
//
// Workloads:
//
//	BFS            direction-optimizing BFS (sparse and dense rounds mix)
//	BFS-sparse     BFS forced sparse — isolates the push path and the
//	               sparse output-frontier construction
//	Components     label propagation — dense early rounds, long sparse tail
//	               with RemoveDuplicates on every round
//	PageRank1      one forced-dense power iteration — isolates the pull
//	               path over every in-edge
//
// Alongside each timing the experiment prints the traversal counter delta
// (calls, dense/sparse split, frontier out-edges weighed), so a perf diff
// can be attributed: same decisions but faster rounds, or different
// decisions.
func HotPath(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	src := pickSource(g)
	fmt.Fprintf(cfg.Out, "EdgeMap hot path on %s (n=%d, m=%d; seconds, median of %d)\n",
		in.Name, g.NumVertices(), g.NumEdges(), cfg.rounds())

	workloads := []struct {
		id  string
		run func()
	}{
		{"BFS", func() { algo.BFS(g, src, core.Options{}) }},
		{"BFS-sparse", func() { algo.BFS(g, src, core.Options{Mode: core.ForceSparse}) }},
		{"Components", func() { algo.ConnectedComponents(g, core.Options{}) }},
		{"PageRank1", func() {
			algo.PageRank(g, algo.PageRankOptions{
				Damping: 0.85, MaxIterations: 1,
				EdgeMap: core.Options{Mode: core.ForceDense},
			})
		}},
	}
	w := cfg.tab()
	fmt.Fprintln(w, "Workload\tmedian\tmin\tcalls\tsparse\tdense\tfwd\tedges weighed")
	for _, wl := range workloads {
		if cfg.budgetExhausted(w) {
			break
		}
		before := core.SnapshotStats()
		tm := Measure(cfg.rounds(), wl.run)
		delta := core.SnapshotStats().Sub(before)
		rounds := int64(cfg.rounds())
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%d\t%d\t%d\t%d\t%d\n",
			wl.id, tm.Median.Seconds(), tm.Min.Seconds(),
			delta.Calls/rounds, delta.Sparse/rounds, delta.Dense/rounds,
			delta.DenseForward/rounds, delta.EdgesScanned/rounds)
		cfg.record("hotpath/"+wl.id, tm.Median.Seconds())
	}
	return w.Flush()
}
