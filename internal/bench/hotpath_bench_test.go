package bench

import (
	"sync"
	"testing"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/graph"
)

// benchGraph builds (once) the same rMat input the hotpath experiment uses,
// at a scale small enough for `go test -bench` yet with enough edges for the
// dense/sparse switch to exercise both paths.
var benchGraphOnce struct {
	sync.Once
	g   *graph.Graph
	src uint32
	err error
}

func benchInput(b testing.TB) (*graph.Graph, uint32) {
	b.Helper()
	benchGraphOnce.Do(func() {
		in, err := FindInput(DefaultSuite(16), "rMat")
		if err != nil {
			benchGraphOnce.err = err
			return
		}
		g, err := in.Build()
		if err != nil {
			benchGraphOnce.err = err
			return
		}
		benchGraphOnce.g = g
		benchGraphOnce.src = pickSource(g)
	})
	if benchGraphOnce.err != nil {
		b.Fatal(benchGraphOnce.err)
	}
	return benchGraphOnce.g, benchGraphOnce.src
}

func BenchmarkHotPathBFS(b *testing.B) {
	g, src := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.BFS(g, src, core.Options{})
	}
}

func BenchmarkHotPathBFSSparse(b *testing.B) {
	g, src := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.BFS(g, src, core.Options{Mode: core.ForceSparse})
	}
}

func BenchmarkHotPathComponents(b *testing.B) {
	g, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.ConnectedComponents(g, core.Options{})
	}
}

func BenchmarkHotPathPageRank1(b *testing.B) {
	g, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.PageRank(g, algo.PageRankOptions{
			Damping: 0.85, MaxIterations: 1,
			EdgeMap: core.Options{Mode: core.ForceDense},
		})
	}
}
