// Package bench implements the experiment harness that regenerates the
// tables and figures of the Ligra paper's evaluation (§6) at container
// scale: the input-graph table (Table 1), the running-time table (Table
// 2), per-application scalability curves, the BFS frontier/representation
// trace, the edgeMap threshold sensitivity sweep, the dense vs
// dense-forward comparison, and the Ligra+ compression ablation.
//
// Absolute numbers differ from the paper's 40-core machine; the harness
// exists to reproduce the *shapes*: who wins, by what factor, and where
// the crossovers fall. See EXPERIMENTS.md for paper-vs-measured notes.
package bench

import (
	"fmt"
	"math"

	"ligra/internal/gen"
	"ligra/internal/graph"
)

// Input is one graph of the evaluation suite.
type Input struct {
	// Name as printed in tables (mirrors Table 1 naming).
	Name string
	// Description of what the paper used and what this input stands in
	// for.
	Description string
	// Build constructs the graph (deterministic).
	Build func() (*graph.Graph, error)
}

// DefaultSuite returns the Table 1 input family, parameterized by scale:
// synthetic graphs have roughly 2^scale vertices. The paper used scale 24
// (rMat) to 30 (Yahoo); the default container scale keeps every experiment
// in seconds while preserving each family's structural character.
func DefaultSuite(scale int) []Input {
	if scale < 8 {
		scale = 8
	}
	n := 1 << scale
	side := int(math.Round(math.Cbrt(float64(n))))
	return []Input{
		{
			Name:        "3d-grid",
			Description: "side^3 torus mesh (paper: 10^7-vertex 3d-grid); high diameter, uniform degree 6",
			Build:       func() (*graph.Graph, error) { return gen.Grid3D(side) },
		},
		{
			Name:        "randLocal",
			Description: "uniform-degree random graph with windowed locality (paper: 10^7 vertices, 10^8 edges)",
			Build:       func() (*graph.Graph, error) { return gen.RandomLocal(n, 10, n/16, 17) },
		},
		{
			Name:        "rMat",
			Description: "PBBS-parameter R-MAT power-law graph (paper: 2^24 vertices, 10^8 edges)",
			Build:       func() (*graph.Graph, error) { return gen.RMAT(scale, 16, gen.PBBSRMAT, 42) },
		},
		{
			Name:        "twitter-sim",
			Description: "Graph500-parameter R-MAT standing in for the Twitter graph (41.7M vertices, 1.47B edges): heavy skew, avg degree ~30",
			Build:       func() (*graph.Graph, error) { return gen.RMAT(scale, 15, gen.Graph500RMAT, 7) },
		},
		{
			Name:        "yahoo-sim",
			Description: "sparser skewed R-MAT standing in for the Yahoo web graph (1.4B vertices, 6.6B edges, avg degree ~4.7)",
			Build:       func() (*graph.Graph, error) { return gen.RMAT(scale+1, 3, gen.Graph500RMAT, 9) },
		},
	}
}

// FindInput returns the named input from the suite, or an error listing
// the valid names.
func FindInput(suite []Input, name string) (Input, error) {
	names := make([]string, 0, len(suite))
	for _, in := range suite {
		if in.Name == name {
			return in, nil
		}
		names = append(names, in.Name)
	}
	return Input{}, fmt.Errorf("bench: unknown graph %q (have %v)", name, names)
}
