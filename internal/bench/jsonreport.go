package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"ligra/internal/core"
	"ligra/internal/parallel"
)

// JSONReport is the machine-readable result file ligra-bench -json
// writes, so the performance trajectory can be tracked as BENCH_*.json
// across PRs and diffed by scripts (or by ligra-bench -against) instead
// of scraped from tables.
type JSONReport struct {
	// Timestamp is RFC 3339 wall time of the run.
	Timestamp string `json:"timestamp"`
	// GoMaxProcs is the worker parallelism the run had available.
	GoMaxProcs int `json:"gomaxprocs"`
	// Scale and Rounds echo the harness configuration.
	Scale  int `json:"scale"`
	Rounds int `json:"rounds"`
	// Graphs describes each input of the suite at this scale.
	Graphs []JSONGraph `json:"graphs"`
	// Experiments holds one entry per experiment run, in execution
	// order, with its wall-clock duration.
	Experiments []JSONExperiment `json:"experiments"`
	// Measurements holds the individual named timings experiments chose
	// to record (median seconds) — the unit ligra-bench -against
	// compares, since whole-experiment wall times fold in graph
	// construction and printing.
	Measurements []JSONMeasurement `json:"measurements,omitempty"`
	// Traversal is the edgeMap direction-switch counter total across the
	// run (core.SnapshotStats delta), recording how many traversals ran
	// sparse vs dense and how many frontier out-edges the heuristic
	// weighed.
	Traversal *core.StatsSnapshot `json:"traversal,omitempty"`
	// Scheduler is the worker-pool counter delta across the run
	// (parallel.SchedulerSnapshot): pool dispatches versus inline runs
	// (including the sequential cutoff) and worker park/wake counts.
	Scheduler *parallel.SchedulerStats `json:"scheduler,omitempty"`
}

// JSONGraph is one input graph's size record.
type JSONGraph struct {
	Name        string `json:"name"`
	Vertices    int    `json:"vertices"`
	Edges       int64  `json:"edges"`
	MemoryBytes int64  `json:"memory_bytes"`
}

// JSONExperiment is one experiment's timing record.
type JSONExperiment struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// JSONMeasurement is one named measurement's timing record (median over
// the run's repetitions).
type JSONMeasurement struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// SuiteInfo builds the suite at the given scale and reports each input's
// size, for the JSON report.
func SuiteInfo(scale int) ([]JSONGraph, error) {
	suite := DefaultSuite(scale)
	out := make([]JSONGraph, 0, len(suite))
	for _, in := range suite {
		g, err := in.Build()
		if err != nil {
			return nil, err
		}
		out = append(out, JSONGraph{
			Name:        in.Name,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			MemoryBytes: g.MemoryFootprint(),
		})
	}
	return out, nil
}

// WriteFile writes the report as indented JSON.
func (r *JSONReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads a report previously written by WriteFile (the baseline
// side of ligra-bench -against).
func ReadReport(path string) (*JSONReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r JSONReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// Delta is one timing compared between a baseline and the current run.
type Delta struct {
	// ID names the measurement (or "experiment:ID" when only
	// whole-experiment times matched).
	ID string
	// Base and Current are the two timings in seconds.
	Base, Current float64
	// Ratio is Current/Base: below 1 is a speedup, above 1 a slowdown.
	Ratio float64
}

// Regression reports whether this delta is a slowdown beyond the given
// tolerance (0.10 = warn when more than 10% slower than baseline).
func (d Delta) Regression(tolerance float64) bool {
	return d.Ratio > 1+tolerance
}

// Compare matches the current run's timings against a baseline report by
// ID and returns one Delta per match, in sorted ID order. Individual
// measurements are preferred; experiment wall times are compared (with an
// "experiment:" prefix) only for IDs that recorded no measurements, since
// experiment totals fold in graph construction and table rendering.
func Compare(base, current *JSONReport) []Delta {
	baseMeas := make(map[string]float64, len(base.Measurements))
	for _, m := range base.Measurements {
		baseMeas[m.ID] = m.Seconds
	}
	var out []Delta
	for _, m := range current.Measurements {
		if b, ok := baseMeas[m.ID]; ok && b > 0 {
			out = append(out, Delta{ID: m.ID, Base: b, Current: m.Seconds, Ratio: m.Seconds / b})
		}
	}
	if len(out) == 0 {
		baseExp := make(map[string]float64, len(base.Experiments))
		for _, e := range base.Experiments {
			baseExp[e.ID] = e.Seconds
		}
		for _, e := range current.Experiments {
			if b, ok := baseExp[e.ID]; ok && b > 0 {
				out = append(out, Delta{ID: "experiment:" + e.ID, Base: b, Current: e.Seconds, Ratio: e.Seconds / b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
