package bench

import (
	"encoding/json"
	"os"
)

// JSONReport is the machine-readable result file ligra-bench -json
// writes, so the performance trajectory can be tracked as BENCH_*.json
// across PRs and diffed by scripts instead of scraped from tables.
type JSONReport struct {
	// Timestamp is RFC 3339 wall time of the run.
	Timestamp string `json:"timestamp"`
	// GoMaxProcs is the worker parallelism the run had available.
	GoMaxProcs int `json:"gomaxprocs"`
	// Scale and Rounds echo the harness configuration.
	Scale  int `json:"scale"`
	Rounds int `json:"rounds"`
	// Graphs describes each input of the suite at this scale.
	Graphs []JSONGraph `json:"graphs"`
	// Experiments holds one entry per experiment run, in execution
	// order, with its wall-clock duration.
	Experiments []JSONExperiment `json:"experiments"`
}

// JSONGraph is one input graph's size record.
type JSONGraph struct {
	Name        string `json:"name"`
	Vertices    int    `json:"vertices"`
	Edges       int64  `json:"edges"`
	MemoryBytes int64  `json:"memory_bytes"`
}

// JSONExperiment is one experiment's timing record.
type JSONExperiment struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// SuiteInfo builds the suite at the given scale and reports each input's
// size, for the JSON report.
func SuiteInfo(scale int) ([]JSONGraph, error) {
	suite := DefaultSuite(scale)
	out := make([]JSONGraph, 0, len(suite))
	for _, in := range suite {
		g, err := in.Build()
		if err != nil {
			return nil, err
		}
		out = append(out, JSONGraph{
			Name:        in.Name,
			Vertices:    g.NumVertices(),
			Edges:       g.NumEdges(),
			MemoryBytes: g.MemoryFootprint(),
		})
	}
	return out, nil
}

// WriteFile writes the report as indented JSON.
func (r *JSONReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
