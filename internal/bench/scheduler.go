package bench

import (
	"fmt"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// Scheduler times the workloads the persistent worker-pool scheduler and
// the sequential small-round cutoff were built for: iterative algorithms
// with many tiny rounds, where per-round dispatch overhead — not edge
// work — sets the floor. The high-diameter 3d-grid runs BFS for ~O(n^1/3)
// rounds with small frontiers throughout, and BellmanFord multiplies that
// by weight-driven re-relaxation; rMat BFS is the low-diameter contrast
// where only the first and last rounds are tiny.
//
// Each workload is measured twice — cutoff enabled (default) and disabled
// (SeqCutoff < 0) — so the report separates the cutoff's contribution
// from the pool's. Alongside the timings the experiment prints the
// per-run traversal rounds, how many of them the cutoff took
// (TraversalStats.SeqRounds), and the scheduler's dispatch/inline counter
// deltas. Both timings are recorded (Config.Record) as scheduler/<id> and
// scheduler/<id>-nocutoff for -against comparisons.
func Scheduler(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	gridIn, err := FindInput(suite, "3d-grid")
	if err != nil {
		return err
	}
	grid, err := gridIn.Build()
	if err != nil {
		return err
	}
	rmatIn, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	rmat, err := rmatIn.Build()
	if err != nil {
		return err
	}
	wgrid := WeightGraph(grid)
	gridSrc := pickSource(grid)
	rmatSrc := pickSource(rmat)

	fmt.Fprintf(cfg.Out, "Scheduler: small-round workloads (seconds, median of %d; pool workers=%d)\n",
		cfg.rounds(), parallel.SchedulerSnapshot().PoolWorkers)
	fmt.Fprintln(cfg.Out, "  cutoff = rounds with |U|+outDeg(U) <= SeqCutoff run inline; nocutoff disables it")

	workloads := []struct {
		id  string
		g   graph.View
		run func(opts core.Options)
	}{
		{"BFS-3dgrid", grid, func(o core.Options) { algo.BFS(grid, gridSrc, o) }},
		{"BellmanFord-3dgrid", wgrid, func(o core.Options) { algo.BellmanFord(wgrid, gridSrc, o) }},
		{"BFS-rMat", rmat, func(o core.Options) { algo.BFS(rmat, rmatSrc, o) }},
	}
	w := cfg.tab()
	fmt.Fprintln(w, "Workload\tmedian\tnocutoff\tspeedup\trounds\tseq rounds\tdispatches\tinline")
	for _, wl := range workloads {
		if cfg.budgetExhausted(w) {
			break
		}
		tBefore := core.SnapshotStats()
		sBefore := parallel.SchedulerSnapshot()
		tm := Measure(cfg.rounds(), func() { wl.run(core.Options{}) })
		tDelta := core.SnapshotStats().Sub(tBefore)
		sDelta := parallel.SchedulerSnapshot().Sub(sBefore)

		tmNo := Measure(cfg.rounds(), func() { wl.run(core.Options{SeqCutoff: -1}) })

		rounds := int64(cfg.rounds())
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.2fx\t%d\t%d\t%d\t%d\n",
			wl.id, tm.Median.Seconds(), tmNo.Median.Seconds(),
			tmNo.Median.Seconds()/tm.Median.Seconds(),
			tDelta.Calls/rounds, tDelta.SeqRounds/rounds,
			sDelta.Dispatches/rounds, sDelta.InlineRuns/rounds)
		cfg.record("scheduler/"+wl.id, tm.Median.Seconds())
		cfg.record("scheduler/"+wl.id+"-nocutoff", tmNo.Median.Seconds())
	}
	return w.Flush()
}
