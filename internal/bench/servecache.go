package bench

import (
	"context"
	"fmt"

	"ligra/internal/algo"
	"ligra/internal/server/engine"
)

// ServeCache times a repeated-query workload through ligra-serve's query
// engine with the result cache off versus on. The workload is the serving
// pattern the cache targets: a handful of distinct queries, each re-asked
// many times against the same resident graph (a dashboard refreshing).
// Every measured run uses a fresh engine, so with the cache on the first
// issue of each distinct query misses and the repeats hit; with it off
// every issue executes. The comparison is report-only — it documents the
// cache's effect at the current scale, it never gates CI.
func ServeCache(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	in, err := FindInput(suite, "rMat")
	if err != nil {
		return err
	}
	g, err := in.Build()
	if err != nil {
		return err
	}
	src := pickSource(g)

	const repeat = 8
	queries := []struct {
		algoName string
		params   algo.Params
	}{
		{"bfs", algo.Params{Source: src}},
		{"components", algo.Params{}},
		{"pagerank", algo.Params{}},
	}

	// workload issues every query repeat times through eng, the way the
	// server's query handler does: governor lease plumbed into the run as
	// the per-call proc cap.
	workload := func(eng *engine.Engine) {
		for i := 0; i < repeat; i++ {
			for _, q := range queries {
				r, ok := algo.FindRunner(q.algoName)
				if !ok {
					panic(algo.UnknownAlgoError(q.algoName))
				}
				k := engine.Key{Graph: in.Name, Generation: 1, Algo: r.Name, Params: q.params.Canonical()}
				_, _, err := eng.Execute(context.Background(), k,
					func(ctx context.Context, procs int) (engine.Value, error) {
						p := q.params
						p.EdgeMap.Procs = procs
						res, err := r.Run(ctx, g, p)
						return engine.Value{Data: res, Bytes: int64(len(res.Summary)) + 256}, err
					})
				if err != nil {
					panic(fmt.Errorf("servecache %s: %w", q.algoName, err))
				}
			}
		}
	}

	variants := []struct {
		id         string
		cacheBytes int64
	}{
		{"cache-off", 0},
		{"cache-on", 64 << 20},
	}

	fmt.Fprintf(cfg.Out, "Query-engine result cache on %s (n=%d, m=%d; %d distinct queries x%d issues; seconds, median of %d)\n",
		in.Name, g.NumVertices(), g.NumEdges(), len(queries), repeat, cfg.rounds())
	w := cfg.tab()
	fmt.Fprintln(w, "Variant\tmedian\tmin\thits\tmisses\texecutions")
	for _, v := range variants {
		if cfg.budgetExhausted(w) {
			break
		}
		var last engine.Stats
		tm := Measure(cfg.rounds(), func() {
			eng := engine.New(engine.NewCache(v.cacheBytes), engine.NewGovernor(0, 0))
			workload(eng)
			last = eng.Snapshot()
		})
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%d\t%d\t%d\n",
			v.id, tm.Median.Seconds(), tm.Min.Seconds(),
			last.Cache.Hits, last.Cache.Misses, last.Executions)
		cfg.record("servecache/"+v.id, tm.Median.Seconds())
	}
	return w.Flush()
}
