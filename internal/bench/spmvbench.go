package bench

import (
	"fmt"
	"math"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/spmv"
)

// spmvPRIters fixes the PageRank iteration count for the backend race so
// the measurement is a pure per-iteration throughput comparison rather
// than a convergence race (the backends are bit-identical, so they would
// converge in the same number of iterations anyway).
const spmvPRIters = 20

// SpMV races the two execution backends — edgeMap traversal versus the
// GraphBLAS-style semiring kernels — on the algorithms that have spmv
// kernels, across both suite shapes (the scale-free rMat and the
// high-diameter 3d-grid). For each (graph, application) cell it:
//
//   - cross-validates the backends once, un-timed: BFS must agree on
//     rounds and visited count, PageRank on iterations and bit-exact
//     ranks, triangle counting on the count — the bit-identity contract
//     that lets the result cache ignore the backend
//   - times three variants: backend=edgemap, backend=spmv, and
//     backend=auto (ResolveBackend dispatch + the chosen kernel, exactly
//     the runner's auto path), recording each as
//     "spmv/<App>-<graph>-<backend>"
//
// The auto column should track min(edgemap, spmv) to within dispatch
// overhead; a larger gap means the auto heuristic picked the losing
// backend for that shape.
func SpMV(cfg Config) error {
	suite := DefaultSuite(cfg.Scale)
	w := cfg.tab()
	fmt.Fprintf(cfg.Out, "Backend race: edgeMap vs semiring kernels (seconds, median of %d; PageRank fixed at %d iterations)\n",
		cfg.rounds(), spmvPRIters)
	fmt.Fprintln(w, "Input\tApplication\tedgemap\tspmv\tauto\tauto pick\tspmv/edgemap")
	for _, gname := range []string{"rMat", "3d-grid"} {
		in, err := FindInput(suite, gname)
		if err != nil {
			return err
		}
		g, err := in.Build()
		if err != nil {
			return err
		}
		src := pickSource(g)

		if err := spmvCrossValidate(g, src); err != nil {
			return fmt.Errorf("%s: backends diverge: %w", gname, err)
		}

		apps := []struct {
			name string
			em   func() // backend=edgemap
			sv   func() // backend=spmv
		}{
			{"BFS",
				func() { algo.BFS(g, src, core.Options{}) },
				func() { mustSpMV(spmvBFSErr(g, src)) }},
			{"PageRank",
				func() { algo.PageRank(g, spmvRacePROpts()) },
				func() { mustSpMV(spmvPageRankErr(g)) }},
			{"Triangles",
				func() { algo.TriangleCount(g) },
				func() { mustSpMV(spmvTrianglesErr(g)) }},
		}
		algoNames := []string{"bfs", "pagerank", "triangles"}
		for i, a := range apps {
			if cfg.budgetExhausted(w) {
				return w.Flush()
			}
			tEM := Measure(cfg.rounds(), a.em)
			tSV := Measure(cfg.rounds(), a.sv)
			// auto is dispatch + whichever backend ResolveBackend picks for
			// this graph shape, the same sequence the registry runner executes.
			var pick string
			run := func() {
				b, err := algo.ResolveBackend(algoNames[i], g, algo.Params{Backend: algo.BackendAuto})
				if err != nil {
					panic(err)
				}
				pick = b
				if b == algo.BackendSpMV {
					a.sv()
				} else {
					a.em()
				}
			}
			tAuto := Measure(cfg.rounds(), run)
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.4f\t%s\t%.2fx\n",
				gname, a.name,
				tEM.Median.Seconds(), tSV.Median.Seconds(), tAuto.Median.Seconds(),
				pick, tSV.Median.Seconds()/tEM.Median.Seconds())
			cfg.record("spmv/"+a.name+"-"+gname+"-edgemap", tEM.Median.Seconds())
			cfg.record("spmv/"+a.name+"-"+gname+"-spmv", tSV.Median.Seconds())
			cfg.record("spmv/"+a.name+"-"+gname+"-auto", tAuto.Median.Seconds())
		}
	}
	return w.Flush()
}

// spmvRacePROpts fixes the iteration count; Epsilon 0 disables the
// convergence check so both backends run exactly spmvPRIters iterations.
func spmvRacePROpts() algo.PageRankOptions {
	return algo.PageRankOptions{Damping: 0.85, MaxIterations: spmvPRIters}
}

func spmvBFSErr(g graph.View, src uint32) error {
	_, err := spmv.BFSLevels(nil, g, src, spmv.BFSOptions{})
	return err
}

func spmvPageRankErr(g graph.View) error {
	_, err := spmv.PageRank(nil, g, spmv.PageRankOptions{Damping: 0.85, MaxIterations: spmvPRIters})
	return err
}

func spmvTrianglesErr(g graph.View) error {
	_, err := spmv.TriangleCount(nil, g)
	return err
}

func mustSpMV(err error) {
	if err != nil {
		panic(err)
	}
}

// spmvCrossValidate runs every kernel once under both backends and
// verifies the results match: the equality claim the timed race (and the
// backend-agnostic result cache) rests on.
func spmvCrossValidate(g graph.View, src uint32) error {
	emBFS := algo.BFS(g, src, core.Options{})
	svBFS, err := spmv.BFSLevels(nil, g, src, spmv.BFSOptions{})
	if err != nil {
		return err
	}
	if emBFS.Rounds != svBFS.Rounds || emBFS.Visited != svBFS.Visited {
		return fmt.Errorf("BFS: edgemap %d rounds/%d visited, spmv %d/%d",
			emBFS.Rounds, emBFS.Visited, svBFS.Rounds, svBFS.Visited)
	}
	emPR := algo.PageRank(g, spmvRacePROpts())
	svPR, err := spmv.PageRank(nil, g, spmv.PageRankOptions{Damping: 0.85, MaxIterations: spmvPRIters})
	if err != nil {
		return err
	}
	if emPR.Iterations != svPR.Iterations || math.Float64bits(emPR.Err) != math.Float64bits(svPR.Err) {
		return fmt.Errorf("PageRank: edgemap %d iters err %v, spmv %d iters err %v",
			emPR.Iterations, emPR.Err, svPR.Iterations, svPR.Err)
	}
	for v := range emPR.Ranks {
		if math.Float64bits(emPR.Ranks[v]) != math.Float64bits(svPR.Ranks[v]) {
			return fmt.Errorf("PageRank: rank[%d] %v != %v (not bit-identical)", v, emPR.Ranks[v], svPR.Ranks[v])
		}
	}
	emTri := algo.TriangleCount(g)
	svTri, err := spmv.TriangleCount(nil, g)
	if err != nil {
		return err
	}
	if emTri != svTri {
		return fmt.Errorf("Triangles: edgemap %d, spmv %d", emTri, svTri)
	}
	return nil
}
