package bench

import (
	"sort"
	"time"
)

// Timing summarizes repeated measurements of one operation.
type Timing struct {
	Rounds int
	Min    time.Duration
	Median time.Duration
	Max    time.Duration
}

// Measure runs fn rounds times and reports min/median/max wall time.
// rounds < 1 is treated as 1.
func Measure(rounds int, fn func()) Timing {
	if rounds < 1 {
		rounds = 1
	}
	ds := make([]time.Duration, rounds)
	for i := range ds {
		start := time.Now()
		fn()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return Timing{
		Rounds: rounds,
		Min:    ds[0],
		Median: ds[rounds/2],
		Max:    ds[rounds-1],
	}
}

// Seconds renders a duration the way the paper's tables do.
func Seconds(d time.Duration) float64 { return d.Seconds() }
