// Package bitset provides fixed-size bit vectors with both sequential and
// atomic (concurrent) mutation, used for dense frontier flags and for the
// 64-way concurrent BFS bit vectors of Ligra's radii-estimation application.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitset is a fixed-capacity vector of bits backed by uint64 words.
// The zero value is unusable; construct with New.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset holding n bits, all clear.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i (not atomic).
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i (not atomic).
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports bit i (not atomic).
func (b *Bitset) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetAtomic atomically sets bit i and reports whether this call changed it
// from 0 to 1 (test-and-set semantics).
func (b *Bitset) SetAtomic(i int) bool {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// GetAtomic atomically reads bit i.
func (b *Bitset) GetAtomic(i int) bool {
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetAll sets every bit in [0, Len()), one word at a time, preserving the
// invariant that bits beyond Len in the final word stay zero.
func (b *Bitset) SetAll() {
	if len(b.words) == 0 {
		return
	}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := uint(b.n % wordBits); tail != 0 {
		b.words[len(b.words)-1] = (1 << tail) - 1
	}
}

// CopyFrom copies the contents of src (which must have the same length).
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic("bitset: CopyFrom size mismatch")
	}
	copy(b.words, src.words)
}

// ForEachSet calls fn for every set bit index in increasing order.
func (b *Bitset) ForEachSet(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*wordBits + bit)
			w &= w - 1
		}
	}
}

// Words exposes the backing words for bulk bitwise operations (e.g. the
// radii application ORs whole visit vectors). The final word's bits beyond
// Len are always zero provided callers only use Set/SetAtomic with valid
// indices.
func (b *Bitset) Words() []uint64 { return b.words }
