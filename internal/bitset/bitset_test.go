package bitset

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Errorf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d clear after Set", i)
		}
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("bit 64 set after Clear")
	}
	if !b.Get(63) || !b.Get(65) {
		t.Error("Clear disturbed neighboring bits")
	}
}

func TestCountAndReset(t *testing.T) {
	b := New(1000)
	for i := 0; i < 1000; i += 3 {
		b.Set(i)
	}
	if got, want := b.Count(), (1000+2)/3; got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Count after Reset nonzero")
	}
}

func TestSetAtomicSemantics(t *testing.T) {
	b := New(64)
	if !b.SetAtomic(10) {
		t.Error("first SetAtomic should report a change")
	}
	if b.SetAtomic(10) {
		t.Error("second SetAtomic should report no change")
	}
	if !b.Get(10) {
		t.Error("bit not set")
	}
	if !b.GetAtomic(10) || b.GetAtomic(11) {
		t.Error("GetAtomic wrong")
	}
}

func TestSetAtomicConcurrent(t *testing.T) {
	const n = 10000
	b := New(n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	wins := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < n; i++ {
				if b.SetAtomic(i) {
					local++
				}
			}
			mu.Lock()
			wins += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if wins != n {
		t.Errorf("total wins %d, want %d (each bit claimed once)", wins, n)
	}
	if b.Count() != n {
		t.Errorf("Count = %d, want %d", b.Count(), n)
	}
}

func TestForEachSet(t *testing.T) {
	b := New(300)
	want := []int{0, 5, 63, 64, 128, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEachSet visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %d, want %d (must be increasing)", i, got[i], want[i])
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(99)
	b.CopyFrom(a)
	if !b.Get(3) || !b.Get(99) || b.Count() != 2 {
		t.Error("CopyFrom incomplete")
	}
	b.Set(50)
	if a.Get(50) {
		t.Error("CopyFrom aliased the backing array")
	}
}

func TestCopyFromSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	New(10).CopyFrom(New(11))
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	New(-1)
}

func TestBitsetMatchesMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 512
		b := New(n)
		model := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			switch op % 3 {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if b.Get(i) != model[i] {
					return false
				}
			}
		}
		return b.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWordsExposed(t *testing.T) {
	b := New(128)
	b.Set(0)
	b.Set(64)
	w := b.Words()
	if len(w) != 2 || w[0] != 1 || w[1] != 1 {
		t.Errorf("Words = %v", w)
	}
}

func TestSetAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := New(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Count() = %d after SetAll", n, got)
		}
		for i := 0; i < n; i++ {
			if !b.Get(i) {
				t.Fatalf("n=%d: bit %d clear after SetAll", n, i)
			}
		}
		// The tail-word invariant must hold: bits beyond Len stay zero so
		// word-at-a-time consumers (popcounts, packs) see no phantom members.
		if words := b.Words(); len(words) > 0 {
			if tail := uint(n % 64); tail != 0 {
				if words[len(words)-1]>>tail != 0 {
					t.Fatalf("n=%d: bits beyond Len set in final word", n)
				}
			}
		}
	}
}
