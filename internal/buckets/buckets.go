// Package buckets implements the bucketing interface of Julienne
// (Dhulipala, Blelloch, Shun, SPAA 2017), the follow-on framework that
// extends Ligra with a dynamic mapping from vertices to ordered buckets.
// Bucketing-based algorithms (k-core peeling by remaining degree,
// delta-stepping by tentative distance) repeatedly extract the smallest
// non-empty bucket, process its vertices with edgeMap, and move affected
// vertices to new buckets.
//
// This implementation uses lazy buckets: moves append the vertex to its
// target bucket's pending list, and entries are validated against the
// authoritative per-vertex bucket ID when the bucket is opened, so stale
// entries (vertices moved again before their bucket was processed) cost
// only the validation scan. Vertices are returned exactly once: opening a
// bucket retires its members.
package buckets

import (
	"sort"

	"ligra/internal/parallel"
)

// Finished marks a vertex with no bucket (retired or never bucketed).
const Finished = int64(-1)

// Buckets maps vertices to ordered int64 bucket IDs.
type Buckets struct {
	bucketOf []int64            // authoritative bucket per vertex
	pending  map[int64][]uint32 // lazy membership lists (may hold stale entries)
}

// New creates a bucket structure over n vertices, assigning vertex v to
// initial(v) (return Finished to leave a vertex out).
func New(n int, initial func(v uint32) int64) *Buckets {
	b := &Buckets{
		bucketOf: make([]int64, n),
		pending:  make(map[int64][]uint32),
	}
	for v := 0; v < n; v++ {
		id := initial(uint32(v))
		b.bucketOf[v] = id
		if id != Finished {
			b.pending[id] = append(b.pending[id], uint32(v))
		}
	}
	return b
}

// Bucket returns the current bucket of v (Finished if retired).
func (b *Buckets) Bucket(v uint32) int64 { return b.bucketOf[v] }

// Update moves v to the given bucket (Finished retires it without
// processing). Must not run concurrently with other Buckets methods; the
// intended pattern is to collect moves from an edgeMap output frontier
// and apply them between rounds, as UpdateMany does.
func (b *Buckets) Update(v uint32, bucket int64) {
	b.bucketOf[v] = bucket
	if bucket != Finished {
		b.pending[bucket] = append(b.pending[bucket], v)
	}
}

// UpdateMany applies Update(v, bucket(v)) for every vertex of vs.
func (b *Buckets) UpdateMany(vs []uint32, bucket func(v uint32) int64) {
	for _, v := range vs {
		b.Update(v, bucket(v))
	}
}

// Next opens the smallest non-empty bucket: it returns the bucket ID and
// its current members (validated and deduplicated), retiring them
// (their bucket becomes Finished). ok is false when no vertices remain.
func (b *Buckets) Next() (id int64, members []uint32, ok bool) {
	for len(b.pending) > 0 {
		// Smallest pending bucket.
		first := true
		for k := range b.pending {
			if first || k < id {
				id = k
				first = false
			}
		}
		entries := b.pending[id]
		delete(b.pending, id)
		// Validate: keep vertices whose authoritative bucket is still id.
		// bucketOf also dedups: the first kept occurrence retires v.
		members = members[:0]
		for _, v := range entries {
			if b.bucketOf[v] == id {
				b.bucketOf[v] = Finished
				members = append(members, v)
			}
		}
		if len(members) > 0 {
			return id, members, true
		}
	}
	return 0, nil, false
}

// Remaining returns the number of vertices that still belong to some
// bucket (retired vertices excluded).
func (b *Buckets) Remaining() int {
	return parallel.CountFunc(len(b.bucketOf), func(i int) bool {
		return b.bucketOf[i] != Finished
	})
}

// NonEmptyBuckets returns the sorted list of bucket IDs with at least one
// valid member — diagnostic/testing helper.
func (b *Buckets) NonEmptyBuckets() []int64 {
	seen := map[int64]bool{}
	for _, id := range b.bucketOf {
		if id != Finished {
			seen[id] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
