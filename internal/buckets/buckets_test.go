package buckets

import (
	"math/rand"
	"testing"
)

func TestBasicOrdering(t *testing.T) {
	b := New(6, func(v uint32) int64 { return int64(v % 3) })
	var order []int64
	total := 0
	for {
		id, members, ok := b.Next()
		if !ok {
			break
		}
		order = append(order, id)
		total += len(members)
		for _, v := range members {
			if int64(v%3) != id {
				t.Fatalf("vertex %d in bucket %d", v, id)
			}
		}
	}
	if total != 6 {
		t.Fatalf("returned %d vertices, want 6", total)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("bucket order %v", order)
	}
}

func TestFinishedInitial(t *testing.T) {
	b := New(5, func(v uint32) int64 {
		if v%2 == 0 {
			return Finished
		}
		return 7
	})
	if b.Remaining() != 2 {
		t.Errorf("Remaining = %d, want 2", b.Remaining())
	}
	id, members, ok := b.Next()
	if !ok || id != 7 || len(members) != 2 {
		t.Fatalf("Next = %d %v %v", id, members, ok)
	}
	if _, _, ok := b.Next(); ok {
		t.Error("Next returned vertices after exhaustion")
	}
	if b.Remaining() != 0 {
		t.Error("Remaining nonzero after exhaustion")
	}
}

func TestUpdateMovesVertex(t *testing.T) {
	b := New(3, func(uint32) int64 { return 5 })
	b.Update(1, 2) // move ahead of the others
	id, members, ok := b.Next()
	if !ok || id != 2 || len(members) != 1 || members[0] != 1 {
		t.Fatalf("Next = %d %v", id, members)
	}
	id, members, ok = b.Next()
	if !ok || id != 5 || len(members) != 2 {
		t.Fatalf("second Next = %d %v", id, members)
	}
}

func TestStaleEntriesSkipped(t *testing.T) {
	b := New(2, func(uint32) int64 { return 1 })
	// Move vertex 0 twice; the bucket-1 and bucket-3 entries are stale.
	b.Update(0, 3)
	b.Update(0, 9)
	id, members, ok := b.Next()
	if !ok || id != 1 || len(members) != 1 || members[0] != 1 {
		t.Fatalf("bucket 1 = %v (id %d)", members, id)
	}
	// Bucket 3 exists in pending but is entirely stale.
	id, members, ok = b.Next()
	if !ok || id != 9 || len(members) != 1 || members[0] != 0 {
		t.Fatalf("expected vertex 0 in bucket 9, got %v in %d", members, id)
	}
}

func TestRetiredVertexIgnoresUpdatesViaNext(t *testing.T) {
	b := New(1, func(uint32) int64 { return 0 })
	_, members, ok := b.Next()
	if !ok || len(members) != 1 {
		t.Fatal("setup failed")
	}
	if b.Bucket(0) != Finished {
		t.Error("popped vertex not retired")
	}
	// Re-inserting after retirement is allowed (delta-stepping never does
	// this, but the structure supports it).
	b.Update(0, 4)
	_, members, ok = b.Next()
	if !ok || len(members) != 1 {
		t.Error("re-inserted vertex not returned")
	}
}

func TestDuplicatePendingEntriesReturnedOnce(t *testing.T) {
	b := New(1, func(uint32) int64 { return 2 })
	b.Update(0, 2) // second pending entry for the same bucket
	_, members, ok := b.Next()
	if !ok || len(members) != 1 {
		t.Fatalf("members = %v", members)
	}
	if _, _, ok := b.Next(); ok {
		t.Error("duplicate entry returned twice")
	}
}

func TestRandomizedDrainMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 500
	model := make([]int64, n)
	b := New(n, func(v uint32) int64 {
		model[v] = int64(rng.Intn(20))
		return model[v]
	})
	// Random moves.
	for i := 0; i < 1000; i++ {
		v := uint32(rng.Intn(n))
		nb := int64(rng.Intn(20))
		model[v] = nb
		b.Update(v, nb)
	}
	// Drain: every vertex must come out exactly once, from its model
	// bucket, in non-decreasing bucket order... note a vertex moved to a
	// smaller bucket after that bucket was processed comes out later, so
	// order is only guaranteed per Next call being the current minimum.
	seen := make([]bool, n)
	count := 0
	for {
		id, members, ok := b.Next()
		if !ok {
			break
		}
		for _, v := range members {
			if seen[v] {
				t.Fatalf("vertex %d returned twice", v)
			}
			seen[v] = true
			count++
			if model[v] != id {
				t.Fatalf("vertex %d returned from bucket %d, model says %d", v, id, model[v])
			}
		}
	}
	if count != n {
		t.Fatalf("drained %d vertices, want %d", count, n)
	}
}

func TestUpdateMany(t *testing.T) {
	b := New(6, func(uint32) int64 { return 10 })
	b.UpdateMany([]uint32{0, 1, 2}, func(v uint32) int64 { return int64(v) })
	id, members, ok := b.Next()
	if !ok || id != 0 || len(members) != 1 || members[0] != 0 {
		t.Fatalf("Next = %d %v", id, members)
	}
	if got := b.NonEmptyBuckets(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 10 {
		t.Fatalf("NonEmptyBuckets = %v", got)
	}
}

func TestUpdateManyToFinished(t *testing.T) {
	b := New(3, func(uint32) int64 { return 5 })
	b.UpdateMany([]uint32{0, 1, 2}, func(uint32) int64 { return Finished })
	if _, _, ok := b.Next(); ok {
		t.Error("retired vertices returned")
	}
	if b.Remaining() != 0 {
		t.Error("Remaining nonzero")
	}
	if got := b.NonEmptyBuckets(); len(got) != 0 {
		t.Errorf("NonEmptyBuckets = %v", got)
	}
}
