package compress

import (
	"testing"

	"ligra/internal/gen"
)

func BenchmarkCompress(b *testing.B) {
	g, err := gen.RMAT(14, 16, gen.PBBSRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(g.NumEdges()), "edges")
	for i := 0; i < b.N; i++ {
		if _, err := Compress(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTraversal(b *testing.B) {
	g, err := gen.RMAT(14, 16, gen.PBBSRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compress(g)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.Run("csr", func(b *testing.B) {
		var sum int64
		for i := 0; i < b.N; i++ {
			for v := uint32(0); int(v) < n; v++ {
				g.OutNeighbors(v, func(d uint32, _ int32) bool {
					sum += int64(d)
					return true
				})
			}
		}
		_ = sum
	})
	b.Run("compressed", func(b *testing.B) {
		var sum int64
		for i := 0; i < b.N; i++ {
			for v := uint32(0); int(v) < n; v++ {
				c.OutNeighbors(v, func(d uint32, _ int32) bool {
					sum += int64(d)
					return true
				})
			}
		}
		_ = sum
	})
}

func BenchmarkDecompress(b *testing.B) {
	g, err := gen.RMAT(13, 16, gen.PBBSRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compress(g)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}
