package compress

import "ligra/internal/graph"

var _ graph.InBlockDecoder = (*CompressedGraph)(nil)

// DecodeInBlock implements graph.InBlockDecoder: it decodes the in-lists
// of vertices [lo, hi) into blk's CSR arrays in one tight pass, skipping
// rows the caller's predicate rules out. The dense pull sweep calls this
// once per cache-sized destination block per round, then scans the decoded
// slices exactly like the raw-CSR fast path — amortizing decode over the
// block instead of paying a closure call per edge.
func (c *CompressedGraph) DecodeInBlock(lo, hi uint32, skip func(v uint32) bool, blk *graph.InBlock) {
	offsets, degs, data := c.inOffsets, c.inDeg, c.inData
	if c.symmetric {
		offsets, degs, data = c.outOffsets, c.outDeg, c.outData
	}
	k := int(hi - lo)
	if cap(blk.Offsets) < k+1 {
		blk.Offsets = make([]int64, k+1)
	}
	blk.Offsets = blk.Offsets[:k+1]
	// Presize from the degree sum of the rows we will actually decode, so
	// the append loop never reallocates mid-block.
	var total int64
	for v := lo; v < hi; v++ {
		if skip == nil || !skip(v) {
			total += int64(degs[v])
		}
	}
	if int64(cap(blk.Targets)) < total {
		blk.Targets = make([]uint32, 0, total)
	}
	targets := blk.Targets[:0]
	var weights []int32
	if c.weighted {
		if int64(cap(blk.Weights)) < total {
			blk.Weights = make([]int32, 0, total)
		}
		weights = blk.Weights[:0]
	}
	blk.Offsets[0] = 0
	for i := 0; i < k; i++ {
		v := lo + uint32(i)
		if deg := degs[v]; deg > 0 && (skip == nil || !skip(v)) {
			p := data[offsets[v]:offsets[v+1]]
			delta, p := readZigzag(p)
			s := uint32(int64(v) + delta)
			targets = append(targets, s)
			if c.weighted {
				var w int64
				w, p = readZigzag(p)
				weights = append(weights, int32(w))
			}
			for e := int32(1); e < deg; e++ {
				var gap uint64
				gap, p = readUvarint(p)
				s += uint32(gap)
				targets = append(targets, s)
				if c.weighted {
					var w int64
					w, p = readZigzag(p)
					weights = append(weights, int32(w))
				}
			}
		}
		blk.Offsets[i+1] = int64(len(targets))
	}
	blk.Targets = targets
	if c.weighted {
		blk.Weights = weights
	} else {
		blk.Weights = nil
	}
}
