// Package compress implements byte-compressed graph storage after Ligra+
// (Shun, Dhulipala, Blelloch, DCC 2015): each vertex's sorted adjacency
// list is difference-encoded — the first target as a signed (zig-zag)
// delta from the vertex ID, subsequent targets as gaps from their
// predecessor — and packed with LEB128 variable-length bytes. Weights, if
// present, are zig-zag varints interleaved after each target.
//
// CompressedGraph implements graph.View, so every algorithm and edgeMap
// traversal runs unmodified on compressed graphs; the ablation-compress
// experiment measures the decode overhead against the CSR representation,
// and the parity tests in this package hold every registered algorithm to
// bit-identical results across backends.
//
// # Cost model
//
// Encoding (Compress) is one parallel O(m) pass per stored side; expect
// ~2x size reduction on power-law graphs (the gap distribution is what
// compresses — locality-skewed rows encode in 1-2 bytes per edge against
// CSR's fixed 4, low-locality rows approach parity). Decoding is the
// recurring cost: every edge visit in a traversal pays a varint decode
// (one branch per continuation byte) instead of an array index, which on
// a single warm-cache core costs 2-3x in end-to-end traversal time. The
// regime where compression approaches CSR speed is bandwidth-bound
// multicore, where decode hides behind memory stalls. Degrees are stored
// explicitly, so degree(v) and the direction heuristic's prefix sums
// never decode anything.
//
// # On-disk format and loading
//
// WriteCompressed/ReadCompressed serialize the LIGRAGC1 format (normative
// spec in docs/FORMATS.md); OpenMapped memory-maps a file in place for a
// near-zero heap footprint. ReadCompressed and the mapping path fully
// validate input (one parallel O(m) decode pass) so the panicking
// fast-path decoder used during traversal never sees unverified bytes:
// corrupt input is a load-time error, never a runtime panic. LoadView is
// the polymorphic entry point that sniffs any supported format.
package compress

import (
	"errors"
	"fmt"

	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// CompressedGraph is a byte-coded adjacency representation of a graph.
// Immutable after construction; safe for concurrent traversal.
type CompressedGraph struct {
	n int
	m int64

	outOffsets []int64 // byte offset of vertex v's out-list (len n+1)
	outDeg     []int32 // out-degrees (decode needs the count)
	outData    []byte

	inOffsets []int64
	inDeg     []int32
	inData    []byte

	weighted  bool
	symmetric bool

	// mapped holds the raw mmap'd file when the graph was loaded with
	// OpenMapped; the section slices above alias it. Nil for heap graphs.
	mapped []byte
}

var _ graph.View = (*CompressedGraph)(nil)

// Compress encodes g. Adjacency rows must be sorted by target ID (graphs
// built by graph.FromEdges are); rows with unsorted targets are rejected
// because gap encoding would be lossy.
func Compress(g *graph.Graph) (*CompressedGraph, error) {
	n := g.NumVertices()
	c := &CompressedGraph{
		n:         n,
		m:         g.NumEdges(),
		weighted:  g.Weighted(),
		symmetric: g.Symmetric(),
	}
	var err error
	c.outOffsets, c.outDeg, c.outData, err = encodeSide(n, g.Weighted(), func(v uint32, fn func(uint32, int32) bool) {
		g.OutNeighbors(v, fn)
	})
	if err != nil {
		return nil, err
	}
	if !g.Symmetric() {
		c.inOffsets, c.inDeg, c.inData, err = encodeSide(n, g.Weighted(), func(v uint32, fn func(uint32, int32) bool) {
			g.InNeighbors(v, fn)
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// encodeSide builds the byte arrays for one edge direction.
func encodeSide(n int, weighted bool, iterate func(v uint32, fn func(uint32, int32) bool)) ([]int64, []int32, []byte, error) {
	offsets := make([]int64, n+1)
	degs := make([]int32, n)
	// First pass: encode each row independently into per-vertex buffers
	// (parallel), then concatenate with a scan.
	rows := make([][]byte, n)
	var encErr error
	parallel.For(n, func(i int) {
		v := uint32(i)
		var buf []byte
		prev := uint32(0)
		first := true
		deg := int32(0)
		iterate(v, func(d uint32, w int32) bool {
			if first {
				buf = appendZigzag(buf, int64(d)-int64(v))
				first = false
			} else {
				if d < prev {
					encErr = fmt.Errorf("compress: unsorted adjacency row at vertex %d", v)
					return false
				}
				buf = appendUvarint(buf, uint64(d-prev))
			}
			prev = d
			if weighted {
				buf = appendZigzag(buf, int64(w))
			}
			deg++
			return true
		})
		rows[i] = buf
		degs[i] = deg
	})
	if encErr != nil {
		return nil, nil, nil, encErr
	}
	lens := make([]int64, n)
	parallel.For(n, func(i int) { lens[i] = int64(len(rows[i])) })
	total := parallel.ScanExclusive(lens, offsets[:n])
	offsets[n] = total
	data := make([]byte, total)
	parallel.For(n, func(i int) {
		copy(data[offsets[i]:], rows[i])
	})
	return offsets, degs, data, nil
}

// NumVertices returns |V|.
func (c *CompressedGraph) NumVertices() int { return c.n }

// NumEdges returns the number of directed edges.
func (c *CompressedGraph) NumEdges() int64 { return c.m }

// Weighted reports whether edges carry weights.
func (c *CompressedGraph) Weighted() bool { return c.weighted }

// Symmetric reports whether the graph is undirected.
func (c *CompressedGraph) Symmetric() bool { return c.symmetric }

// OutDegree returns the out-degree of v.
func (c *CompressedGraph) OutDegree(v uint32) int { return int(c.outDeg[v]) }

// InDegree returns the in-degree of v.
func (c *CompressedGraph) InDegree(v uint32) int {
	if c.symmetric {
		return int(c.outDeg[v])
	}
	return int(c.inDeg[v])
}

// OutNeighbors decodes and iterates v's out-edges in sorted target order.
func (c *CompressedGraph) OutNeighbors(v uint32, fn func(d uint32, w int32) bool) {
	c.decode(v, c.outOffsets, c.outDeg, c.outData, fn)
}

// InNeighbors decodes and iterates v's in-edges.
func (c *CompressedGraph) InNeighbors(v uint32, fn func(s uint32, w int32) bool) {
	if c.symmetric {
		c.OutNeighbors(v, fn)
		return
	}
	c.decode(v, c.inOffsets, c.inDeg, c.inData, fn)
}

func (c *CompressedGraph) decode(v uint32, offsets []int64, degs []int32, data []byte, fn func(uint32, int32) bool) {
	deg := degs[v]
	if deg == 0 {
		return
	}
	p := data[offsets[v]:offsets[v+1]]
	// First target: signed delta from v.
	delta, p := readZigzag(p)
	d := uint32(int64(v) + delta)
	w := int32(1)
	if c.weighted {
		var wv int64
		wv, p = readZigzag(p)
		w = int32(wv)
	}
	if !fn(d, w) {
		return
	}
	for i := int32(1); i < deg; i++ {
		var gap uint64
		gap, p = readUvarint(p)
		d += uint32(gap)
		if c.weighted {
			var wv int64
			wv, p = readZigzag(p)
			w = int32(wv)
		}
		if !fn(d, w) {
			return
		}
	}
}

// SizeBytes returns the byte footprint of the compressed edge arrays plus
// per-vertex metadata (offsets and degrees).
func (c *CompressedGraph) SizeBytes() int64 {
	meta := int64(len(c.outOffsets))*8 + int64(len(c.outDeg))*4 +
		int64(len(c.inOffsets))*8 + int64(len(c.inDeg))*4
	return meta + int64(len(c.outData)) + int64(len(c.inData))
}

// Decompress reconstructs a CSR graph from the compressed form, used for
// round-trip verification.
func (c *CompressedGraph) Decompress() (*graph.Graph, error) {
	offsets := make([]int64, c.n+1)
	var acc int64
	for v := 0; v < c.n; v++ {
		offsets[v] = acc
		acc += int64(c.outDeg[v])
	}
	offsets[c.n] = acc
	if acc != c.m {
		return nil, errors.New("compress: degree sum does not match edge count")
	}
	edges := make([]uint32, c.m)
	var weights []int32
	if c.weighted {
		weights = make([]int32, c.m)
	}
	parallel.For(c.n, func(i int) {
		k := offsets[i]
		c.OutNeighbors(uint32(i), func(d uint32, w int32) bool {
			edges[k] = d
			if weights != nil {
				weights[k] = w
			}
			k++
			return true
		})
	})
	return graph.FromCSR(offsets, edges, weights, c.symmetric)
}

// appendUvarint appends x in LEB128.
func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// readUvarint decodes a LEB128 value, returning the rest of the buffer.
func readUvarint(p []byte) (uint64, []byte) {
	var x uint64
	var shift uint
	for i, b := range p {
		if b < 0x80 {
			return x | uint64(b)<<shift, p[i+1:]
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	panic("compress: truncated varint")
}

// appendZigzag appends a signed value using zig-zag + LEB128.
func appendZigzag(buf []byte, x int64) []byte {
	return appendUvarint(buf, uint64(x<<1)^uint64(x>>63))
}

// readZigzag decodes a zig-zag varint.
func readZigzag(p []byte) (int64, []byte) {
	u, rest := readUvarint(p)
	return int64(u>>1) ^ -int64(u&1), rest
}
