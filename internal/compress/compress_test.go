package compress

import (
	"os"
	"testing"
	"testing/quick"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/seq"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		buf := appendUvarint(nil, x)
		got, rest := readUvarint(buf)
		return got == x && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, x := range []uint64{0, 1, 127, 128, 1 << 20, ^uint64(0)} {
		buf := appendUvarint(nil, x)
		got, _ := readUvarint(buf)
		if got != x {
			t.Errorf("uvarint(%d) round trip = %d", x, got)
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(x int64) bool {
		buf := appendZigzag(nil, x)
		got, rest := readZigzag(buf)
		return got == x && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, x := range []int64{0, -1, 1, -64, 63, -1 << 40, 1 << 40} {
		buf := appendZigzag(nil, x)
		got, _ := readZigzag(buf)
		if got != x {
			t.Errorf("zigzag(%d) round trip = %d", x, got)
		}
	}
}

func TestTruncatedVarintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on truncated varint")
		}
	}()
	readUvarint([]byte{0x80, 0x80})
}

func mustRMAT(t *testing.T, scale int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(scale, 8, gen.PBBSRMAT, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	graphs["rmat"] = mustRMAT(t, 9, 1)
	var err error
	if graphs["grid"], err = gen.Grid3D(6); err != nil {
		t.Fatal(err)
	}
	if graphs["directed"], err = gen.RMATDirected(8, 4, gen.PBBSRMAT, 2); err != nil {
		t.Fatal(err)
	}
	graphs["weighted"] = mustRMAT(t, 8, 3).AddWeights(graph.HashWeight(1000))

	for name, g := range graphs {
		c, err := Compress(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: sizes differ", name)
		}
		back, err := c.Decompress()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Compare adjacency exactly.
		for v := uint32(0); int(v) < g.NumVertices(); v++ {
			var a, b []uint32
			var aw, bw []int32
			g.OutNeighbors(v, func(d uint32, w int32) bool { a = append(a, d); aw = append(aw, w); return true })
			back.OutNeighbors(v, func(d uint32, w int32) bool { b = append(b, d); bw = append(bw, w); return true })
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree differs", name, v)
			}
			for i := range a {
				if a[i] != b[i] || aw[i] != bw[i] {
					t.Fatalf("%s: vertex %d edge %d differs: (%d,%d) vs (%d,%d)",
						name, v, i, a[i], aw[i], b[i], bw[i])
				}
			}
		}
	}
}

func TestCompressedViewMatchesCSR(t *testing.T) {
	g := mustRMAT(t, 9, 7)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); int(v) < g.NumVertices(); v += 17 {
		if c.OutDegree(v) != g.OutDegree(v) || c.InDegree(v) != g.InDegree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	// Early exit works on the decoder.
	var count int
	c.OutNeighbors(0, func(uint32, int32) bool {
		count++
		return count < 2
	})
	if g.OutDegree(0) >= 2 && count != 2 {
		t.Errorf("early exit visited %d", count)
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	g := mustRMAT(t, 12, 11)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	csrBytes := int64(g.NumVertices()+1)*8 + g.NumEdges()*4
	if c.SizeBytes() >= csrBytes {
		t.Errorf("compressed %d bytes >= CSR %d bytes", c.SizeBytes(), csrBytes)
	}
	t.Logf("compression ratio: %.2fx (CSR %d -> %d bytes)",
		float64(csrBytes)/float64(c.SizeBytes()), csrBytes, c.SizeBytes())
}

func TestAlgorithmsOnCompressedGraphs(t *testing.T) {
	g := mustRMAT(t, 9, 5)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	// BFS levels agree with the sequential oracle run on the CSR graph.
	want := seq.BFSLevels(g, 0)
	got := algo.BFSLevels(c, 0, core.Options{})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("BFS level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	// Components agree.
	wantCC := seq.ConnectedComponents(g)
	gotCC := algo.ConnectedComponents(c, core.Options{})
	for v := range wantCC {
		if gotCC.Labels[v] != wantCC[v] {
			t.Fatalf("CC label[%d] = %d, want %d", v, gotCC.Labels[v], wantCC[v])
		}
	}
	// Bellman-Ford on a compressed weighted graph agrees with Dijkstra.
	wg := mustRMAT(t, 8, 6).AddWeights(graph.HashWeight(16))
	cw, err := Compress(wg)
	if err != nil {
		t.Fatal(err)
	}
	wantD := seq.Dijkstra(wg, 0)
	gotD := algo.BellmanFord(cw, 0, core.Options{})
	for v := range wantD {
		if gotD.Dist[v] != wantD[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, gotD.Dist[v], wantD[v])
		}
	}
}

func TestCompressRejectsUnsortedRows(t *testing.T) {
	// Hand-build a CSR with an unsorted row.
	g, err := graph.FromCSR([]int64{0, 2}, []uint32{0, 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// FromCSR rows {0,0} are sorted (duplicates allowed); craft descending.
	g2, err := graph.FromCSR([]int64{0, 2, 2}, []uint32{1, 0}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compress(g2); err == nil {
		t.Error("unsorted adjacency accepted")
	}
}

func TestMoreAlgorithmsOnCompressedGraphs(t *testing.T) {
	g := mustRMAT(t, 9, 13)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	// PageRank agrees to numerical tolerance.
	a := algo.PageRank(g, algo.PageRankOptions{Damping: 0.85, Epsilon: 1e-10, MaxIterations: 50})
	b := algo.PageRank(c, algo.PageRankOptions{Damping: 0.85, Epsilon: 1e-10, MaxIterations: 50})
	for v := range a.Ranks {
		if diff := a.Ranks[v] - b.Ranks[v]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("PageRank differs at %d: %v vs %v", v, a.Ranks[v], b.Ranks[v])
		}
	}
	// BC agrees.
	ba := algo.BC(g, 0, core.Options{})
	bb := algo.BC(c, 0, core.Options{})
	for v := range ba.Scores {
		if diff := ba.Scores[v] - bb.Scores[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("BC differs at %d", v)
		}
	}
	// Radii agrees exactly (same sampled sources for same seed).
	ra := algo.Radii(g, algo.RadiiOptions{K: 16, Seed: 2})
	rb := algo.Radii(c, algo.RadiiOptions{K: 16, Seed: 2})
	for v := range ra.Radii {
		if ra.Radii[v] != rb.Radii[v] {
			t.Fatalf("Radii differs at %d", v)
		}
	}
	// KCore agrees.
	ka := algo.KCore(g, core.Options{})
	kb := algo.KCore(c, core.Options{})
	for v := range ka.Coreness {
		if ka.Coreness[v] != kb.Coreness[v] {
			t.Fatalf("KCore differs at %d", v)
		}
	}
	// Triangles agree.
	if x, y := algo.TriangleCount(g), algo.TriangleCount(c); x != y {
		t.Fatalf("triangles %d vs %d", x, y)
	}
}
