package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"ligra/internal/faultinject"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// The LIGRAGC1 on-disk format (normative spec in docs/FORMATS.md) is the
// compressed counterpart of the LIGRAGO1 binary CSR format: a fixed
// little-endian header followed by the encoded sections, each starting on
// an 8-byte boundary so a memory-mapped file can be used in place — the
// offset arrays are read directly out of the mapping, never copied.
//
//	0   magic      [8]byte  "LIGRAGC1"
//	8   flags      uint32   bit0 weighted, bit1 symmetric; others must be 0
//	12  reserved   uint32   must be 0
//	16  n          uint64   vertex count
//	24  m          uint64   directed edge count
//	32  outBytes   uint64   length of the out-edge byte-code section
//	40  inBytes    uint64   length of the in-edge byte-code section (0 iff symmetric)
//	48  outOffsets [n+1]int64
//	    outDeg     [n]int32            (zero-padded to the next 8-byte boundary)
//	    outData    [outBytes]byte      (zero-padded to the next 8-byte boundary)
//	    inOffsets  [n+1]int64          } present only when the graph is
//	    inDeg      [n]int32  (padded)  } directed (flags bit1 clear)
//	    inData     [inBytes]byte (padded)
//
// ReadCompressed fully validates the payload (section bounds, offset
// monotonicity, degree sums, and a parallel decode pass over every row) so
// that the panic-free fast-path decoder in compress.go can trust the bytes:
// corrupt or truncated input yields a descriptive error, never a panic.

// Magic is the 8-byte magic prefix of the LIGRAGC1 compressed format.
// graph.DetectFormat sniffs it so misnamed files are routed (or rejected)
// with a descriptive error instead of failing mid-parse.
var Magic = [8]byte{'L', 'I', 'G', 'R', 'A', 'G', 'C', '1'}

const (
	flagWeighted  = 1 << 0
	flagSymmetric = 1 << 1

	headerSize = 48
)

// pad8 returns the number of zero bytes needed to advance k to the next
// 8-byte boundary.
func pad8(k int64) int64 { return (8 - k%8) % 8 }

var zeroPad [8]byte

// WriteCompressed writes c in the LIGRAGC1 format.
func WriteCompressed(w io.Writer, c *CompressedGraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var flags uint32
	if c.weighted {
		flags |= flagWeighted
	}
	if c.symmetric {
		flags |= flagSymmetric
	}
	for _, v := range []any{flags, uint32(0), uint64(c.n), uint64(c.m),
		uint64(len(c.outData)), uint64(len(c.inData))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	writeSide := func(offsets []int64, degs []int32, data []byte) error {
		if err := binary.Write(bw, binary.LittleEndian, offsets); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, degs); err != nil {
			return err
		}
		if _, err := bw.Write(zeroPad[:pad8(int64(len(degs))*4)]); err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		_, err := bw.Write(zeroPad[:pad8(int64(len(data)))])
		return err
	}
	if err := writeSide(c.outOffsets, c.outDeg, c.outData); err != nil {
		return err
	}
	if !c.symmetric {
		if err := writeSide(c.inOffsets, c.inDeg, c.inData); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// header is the decoded fixed-size LIGRAGC1 header.
type header struct {
	weighted  bool
	symmetric bool
	n         int
	m         int64
	outBytes  int64
	inBytes   int64
}

// parseHeader decodes and sanity-checks the 48-byte header.
func parseHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < headerSize {
		return h, fmt.Errorf("compress: truncated header (%d bytes)", len(buf))
	}
	var magic [8]byte
	copy(magic[:], buf)
	if magic != Magic {
		return h, fmt.Errorf("compress: bad magic %q", magic[:])
	}
	flags := binary.LittleEndian.Uint32(buf[8:])
	if flags&^uint32(flagWeighted|flagSymmetric) != 0 {
		return h, fmt.Errorf("compress: unknown flag bits %#x", flags&^uint32(flagWeighted|flagSymmetric))
	}
	if rsv := binary.LittleEndian.Uint32(buf[12:]); rsv != 0 {
		return h, fmt.Errorf("compress: nonzero reserved field %#x (newer format version?)", rsv)
	}
	n64 := binary.LittleEndian.Uint64(buf[16:])
	m64 := binary.LittleEndian.Uint64(buf[24:])
	outB := binary.LittleEndian.Uint64(buf[32:])
	inB := binary.LittleEndian.Uint64(buf[40:])
	// The same plausibility caps as the binary CSR reader, plus: a byte
	// code spends at least one byte per edge, so a data section can never
	// usefully exceed ~11 bytes per edge (10-byte max varint + weight).
	if n64 > 1<<31 || m64 > 1<<40 || outB > 22*m64+8 || inB > 22*m64+8 {
		return h, fmt.Errorf("compress: implausible sizes n=%d m=%d out=%dB in=%dB", n64, m64, outB, inB)
	}
	h.weighted = flags&flagWeighted != 0
	h.symmetric = flags&flagSymmetric != 0
	if h.symmetric && inB != 0 {
		return h, fmt.Errorf("compress: symmetric graph with %d-byte in-section", inB)
	}
	h.n, h.m = int(n64), int64(m64)
	h.outBytes, h.inBytes = int64(outB), int64(inB)
	return h, nil
}

// fileSize returns the exact byte length of a LIGRAGC1 file with this
// header, used by the mmap loader to reject truncated or padded files.
func (h header) fileSize() int64 {
	side := func(dataLen int64) int64 {
		k := int64(h.n+1)*8 + int64(h.n)*4
		k += pad8(int64(h.n) * 4)
		k += dataLen + pad8(dataLen)
		return k
	}
	total := int64(headerSize) + side(h.outBytes)
	if !h.symmetric {
		total += side(h.inBytes)
	}
	return total
}

// ReadCompressed parses and validates the LIGRAGC1 format. The returned
// graph's sections live on the heap; use OpenMapped to share them with the
// page cache instead.
func ReadCompressed(r io.Reader) (*CompressedGraph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hbuf [headerSize]byte
	if _, err := io.ReadFull(br, hbuf[:]); err != nil {
		return nil, fmt.Errorf("compress: reading header: %w", noEOF(err))
	}
	h, err := parseHeader(hbuf[:])
	if err != nil {
		return nil, err
	}
	c := &CompressedGraph{n: h.n, m: h.m, weighted: h.weighted, symmetric: h.symmetric}
	readSide := func(what string, dataLen int64) ([]int64, []int32, []byte, error) {
		offsets, err := readChunked[int64](br, h.n+1)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("compress: reading %s offsets: %w", what, err)
		}
		degs, err := readChunked[int32](br, h.n)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("compress: reading %s degrees: %w", what, err)
		}
		if err := skip(br, pad8(int64(h.n)*4)); err != nil {
			return nil, nil, nil, fmt.Errorf("compress: reading %s degree padding: %w", what, err)
		}
		data, err := readChunked[byte](br, int(dataLen))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("compress: reading %s data: %w", what, err)
		}
		if err := skip(br, pad8(dataLen)); err != nil {
			return nil, nil, nil, fmt.Errorf("compress: reading %s data padding: %w", what, err)
		}
		return offsets, degs, data, nil
	}
	if c.outOffsets, c.outDeg, c.outData, err = readSide("out", h.outBytes); err != nil {
		return nil, err
	}
	if !h.symmetric {
		if c.inOffsets, c.inDeg, c.inData, err = readSide("in", h.inBytes); err != nil {
			return nil, err
		}
	}
	if err := validateCompressed(c); err != nil {
		return nil, err
	}
	return c, nil
}

// skip consumes exactly k padding bytes.
func skip(r io.Reader, k int64) error {
	if k == 0 {
		return nil
	}
	var buf [8]byte
	_, err := io.ReadFull(r, buf[:k])
	return noEOF(err)
}

// readChunked reads total little-endian values in bounded chunks, so a
// corrupt header cannot force a giant allocation beyond what the input
// itself justifies.
func readChunked[T any](r io.Reader, total int) ([]T, error) {
	const chunk = 1 << 14
	if total < 0 {
		return nil, fmt.Errorf("negative count %d", total)
	}
	var dst []T
	buf := make([]T, min(total, chunk))
	read := 0
	for total > 0 {
		k := min(total, chunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:k]); err != nil {
			return nil, fmt.Errorf("truncated after %d values: %w", read, noEOF(err))
		}
		dst = append(dst, buf[:k]...)
		total -= k
		read += k
	}
	return dst, nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: inside a structured
// payload a clean EOF still means the input ended mid-record.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// validateCompressed fully checks a deserialized graph so the trusting
// fast-path decoder can never panic or index out of range on it: section
// shapes, offset monotonicity and endpoints, degree sums, and a parallel
// decode pass over every row (exact byte consumption, targets in range and
// nondecreasing, weights within int32).
func validateCompressed(c *CompressedGraph) error {
	if err := validateSide(c.n, c.m, c.weighted, c.outOffsets, c.outDeg, c.outData, "out"); err != nil {
		return err
	}
	if c.symmetric {
		return nil
	}
	return validateSide(c.n, c.m, c.weighted, c.inOffsets, c.inDeg, c.inData, "in")
}

func validateSide(n int, m int64, weighted bool, offsets []int64, degs []int32, data []byte, what string) error {
	if len(offsets) != n+1 || len(degs) != n {
		return fmt.Errorf("compress: %s sections sized %d/%d offsets/degrees, want %d/%d",
			what, len(offsets), len(degs), n+1, n)
	}
	if n == 0 {
		if m != 0 || len(data) != 0 {
			return fmt.Errorf("compress: empty graph with m=%d, %d data bytes", m, len(data))
		}
		if len(offsets) == 1 && offsets[0] != 0 {
			return fmt.Errorf("compress: %s offsets start at %d, want 0", what, offsets[0])
		}
		return nil
	}
	if offsets[0] != 0 || offsets[n] != int64(len(data)) {
		return fmt.Errorf("compress: %s offsets endpoints [%d, %d], want [0, %d]",
			what, offsets[0], offsets[n], len(data))
	}
	var degSum int64
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return fmt.Errorf("compress: %s offsets decrease at vertex %d", what, v)
		}
		if degs[v] < 0 {
			return fmt.Errorf("compress: negative %s degree %d at vertex %d", what, degs[v], v)
		}
		degSum += int64(degs[v])
	}
	if degSum != m {
		return fmt.Errorf("compress: %s degrees sum to %d, want m=%d", what, degSum, m)
	}
	// Decode every row with the safe (non-panicking) varint reader and
	// check it is exactly consistent with its declared bounds. Parallel:
	// this is the loader's one O(m) pass.
	var failed atomic.Bool
	var once sync.Once
	var decodeErr error
	fail := func(err error) {
		failed.Store(true)
		once.Do(func() { decodeErr = err })
	}
	parallel.For(n, func(i int) {
		if failed.Load() {
			return
		}
		v := uint32(i)
		if err := validateRow(v, uint32(n), weighted, degs[i], data[offsets[i]:offsets[i+1]]); err != nil {
			fail(fmt.Errorf("compress: %s row of vertex %d: %w", what, v, err))
		}
	})
	return decodeErr
}

// validateRow checks one encoded adjacency row: deg entries decode without
// truncation or varint overflow, consume exactly the row's bytes, land in
// [0, n), never decrease, and carry int32-representable weights.
func validateRow(v, n uint32, weighted bool, deg int32, row []byte) error {
	if deg == 0 {
		if len(row) != 0 {
			return fmt.Errorf("%d trailing bytes on a zero-degree row", len(row))
		}
		return nil
	}
	prev := int64(-1)
	for e := int32(0); e < deg; e++ {
		var target int64
		if e == 0 {
			delta, k := binary.Varint(row)
			if k <= 0 {
				return fmt.Errorf("bad first-target varint (k=%d)", k)
			}
			row = row[k:]
			target = int64(v) + delta
		} else {
			gap, k := binary.Uvarint(row)
			if k <= 0 {
				return fmt.Errorf("bad gap varint at edge %d (k=%d)", e, k)
			}
			row = row[k:]
			target = prev + int64(gap)
		}
		if target < 0 || target >= int64(n) {
			return fmt.Errorf("edge %d targets out-of-range vertex %d", e, target)
		}
		if target < prev {
			return fmt.Errorf("targets decrease at edge %d", e)
		}
		prev = target
		if weighted {
			w, k := binary.Varint(row)
			if k <= 0 {
				return fmt.Errorf("bad weight varint at edge %d (k=%d)", e, k)
			}
			if w < -1<<31 || w > 1<<31-1 {
				return fmt.Errorf("weight %d at edge %d overflows int32", w, e)
			}
			row = row[k:]
		}
	}
	if len(row) != 0 {
		return fmt.Errorf("%d trailing bytes after %d edges", len(row), deg)
	}
	return nil
}

// WriteCompressedFile writes c to path in the LIGRAGC1 format.
func WriteCompressedFile(path string, c *CompressedGraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCompressed(f, c); err != nil {
		return err
	}
	return f.Close()
}

// ReadCompressedFile reads a LIGRAGC1 file into the heap.
func ReadCompressedFile(path string) (*CompressedGraph, error) {
	if err := faultinject.OnLoad(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadCompressed(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return g, nil
}

// LoadView loads any supported on-disk graph format, sniffing the 8-byte
// magic: LIGRAGC1 files load as compressed graphs (memory-mapped when mmap
// is set and the platform supports it, read into the heap otherwise),
// everything else goes through graph.LoadFile (LIGRAGO1 binary by magic,
// text formats otherwise). Requesting mmap for a non-compressed file is an
// error — only the compressed format is laid out for in-place use.
// symmetric applies to text inputs only, which do not record directedness
// themselves.
func LoadView(path string, symmetric, mmap bool) (graph.View, error) {
	format, err := graph.DetectFormatFile(path)
	if err != nil {
		return nil, err
	}
	if format != graph.FormatCompressed {
		if mmap {
			return nil, fmt.Errorf("compress: mmap requires a compressed (LIGRAGC1) file; %s is %s", path, format)
		}
		return graph.LoadFile(path, symmetric)
	}
	if mmap {
		return OpenMapped(path)
	}
	return ReadCompressedFile(path)
}
