package compress

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"ligra/internal/gen"
	"ligra/internal/graph"
)

// testGraphs builds the graph shapes the format must cover: symmetric,
// directed (two sides on disk), weighted, and degenerate sizes.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{}
	gs["rmat"] = mustRMAT(t, 9, 1)
	var err error
	if gs["grid"], err = gen.Grid3D(6); err != nil {
		t.Fatal(err)
	}
	if gs["directed"], err = gen.RMATDirected(8, 4, gen.PBBSRMAT, 2); err != nil {
		t.Fatal(err)
	}
	gs["weighted"] = mustRMAT(t, 8, 3).AddWeights(graph.HashWeight(1000))
	if gs["single"], err = graph.FromEdges(1, nil, graph.BuildOptions{Symmetrize: true}); err != nil {
		t.Fatal(err)
	}
	if gs["isolated"], err = graph.FromEdges(5, nil, graph.BuildOptions{Symmetrize: true}); err != nil {
		t.Fatal(err)
	}
	return gs
}

// assertSameAdjacency compares two views edge for edge, both sides.
func assertSameAdjacency(t *testing.T, name string, want, got graph.View) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
		got.Weighted() != want.Weighted() || got.Symmetric() != want.Symmetric() {
		t.Fatalf("%s: shape differs: n=%d/%d m=%d/%d w=%t/%t sym=%t/%t", name,
			want.NumVertices(), got.NumVertices(), want.NumEdges(), got.NumEdges(),
			want.Weighted(), got.Weighted(), want.Symmetric(), got.Symmetric())
	}
	collect := func(v graph.View, u uint32, in bool) ([]uint32, []int32) {
		var ds []uint32
		var ws []int32
		fn := func(d uint32, w int32) bool { ds = append(ds, d); ws = append(ws, w); return true }
		if in {
			v.InNeighbors(u, fn)
		} else {
			v.OutNeighbors(u, fn)
		}
		return ds, ws
	}
	for v := uint32(0); int(v) < want.NumVertices(); v++ {
		for _, in := range []bool{false, true} {
			a, aw := collect(want, v, in)
			b, bw := collect(got, v, in)
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d (in=%t) degree %d vs %d", name, v, in, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] || aw[i] != bw[i] {
					t.Fatalf("%s: vertex %d (in=%t) edge %d: (%d,%d) vs (%d,%d)",
						name, v, in, i, a[i], aw[i], b[i], bw[i])
				}
			}
		}
	}
}

func TestWriteReadCompressedRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		c, err := Compress(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, c); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if buf.Len()%8 != 0 {
			t.Errorf("%s: file length %d not 8-byte aligned", name, buf.Len())
		}
		back, err := ReadCompressed(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		assertSameAdjacency(t, name, g, back)
		// Writing the re-read graph must produce identical bytes.
		var buf2 bytes.Buffer
		if err := WriteCompressed(&buf2, back); err != nil {
			t.Fatalf("%s: rewrite: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Errorf("%s: rewrite produced different bytes (%d vs %d)", name, buf.Len(), buf2.Len())
		}
	}
}

func TestOpenMappedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range testGraphs(t) {
		c, err := Compress(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join(dir, name+".gc")
		if err := WriteCompressedFile(path, c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("%s: OpenMapped: %v", name, err)
		}
		assertSameAdjacency(t, name, g, m)
		if m.MappedBytes() > 0 {
			if m.MemoryFootprint() != 0 {
				t.Errorf("%s: mapped graph reports heap footprint %d", name, m.MemoryFootprint())
			}
			if m.FormatName() != "compressed+mmap" {
				t.Errorf("%s: FormatName = %q", name, m.FormatName())
			}
		}
		if err := m.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
		if err := m.Close(); err != nil {
			t.Errorf("%s: second Close: %v", name, err)
		}
	}
}

func TestHeapReaderReportsFormat(t *testing.T) {
	g := mustRMAT(t, 8, 4)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.FormatName() != "compressed" {
		t.Errorf("FormatName = %q", c.FormatName())
	}
	if c.MappedBytes() != 0 {
		t.Errorf("MappedBytes = %d", c.MappedBytes())
	}
	if c.MemoryFootprint() != c.SizeBytes() {
		t.Errorf("MemoryFootprint %d != SizeBytes %d", c.MemoryFootprint(), c.SizeBytes())
	}
}

func TestLoadViewSniffsFormats(t *testing.T) {
	dir := t.TempDir()
	g := mustRMAT(t, 8, 6)

	adjPath := filepath.Join(dir, "g.adj")
	if err := graph.SaveFile(adjPath, g, false); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "misnamed.adj") // binary content, text name
	if err := graph.SaveFile(binPath, g, true); err != nil {
		t.Fatal(err)
	}
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	gcPath := filepath.Join(dir, "g.gc")
	if err := WriteCompressedFile(gcPath, c); err != nil {
		t.Fatal(err)
	}

	if v, err := LoadView(adjPath, true, false); err != nil {
		t.Fatalf("text: %v", err)
	} else if _, ok := v.(*graph.Graph); !ok {
		t.Fatalf("text loaded as %T", v)
	}
	// Content, not the file name, selects the reader.
	if v, err := LoadView(binPath, true, false); err != nil {
		t.Fatalf("binary: %v", err)
	} else if _, ok := v.(*graph.Graph); !ok {
		t.Fatalf("binary loaded as %T", v)
	}
	for _, mmap := range []bool{false, true} {
		v, err := LoadView(gcPath, false, mmap)
		if err != nil {
			t.Fatalf("compressed (mmap=%t): %v", mmap, err)
		}
		cg, ok := v.(*CompressedGraph)
		if !ok {
			t.Fatalf("compressed loaded as %T", v)
		}
		assertSameAdjacency(t, "loadview", g, cg)
	}

	// graph.LoadFile must name the compressed format instead of
	// mis-parsing it as text.
	if _, err := graph.LoadFile(gcPath, false); err == nil {
		t.Fatal("LoadFile accepted a compressed file")
	} else if want := "LIGRAGC1"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("LoadFile error %q does not name the format", err)
	}
	// A future LIGRAG* version is rejected with a descriptive error, not
	// handed to the text parser.
	futPath := filepath.Join(dir, "future.gc")
	if err := os.WriteFile(futPath, []byte("LIGRAGZ9whatever"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.LoadFile(futPath, false); err == nil {
		t.Fatal("LoadFile accepted an unknown LIGRAG* version")
	}
	if _, err := LoadView(futPath, false, false); err == nil {
		t.Fatal("LoadView accepted an unknown LIGRAG* version")
	}
	// mmap of a non-compressed file is a descriptive error.
	if _, err := LoadView(adjPath, true, true); err == nil {
		t.Fatal("LoadView mmap'd a text file")
	}
}

// corrupt returns a copy of buf with the byte at off XORed.
func corrupt(buf []byte, off int) []byte {
	out := append([]byte(nil), buf...)
	out[off] ^= 0xFF
	return out
}

func TestReadCompressedRejectsCorruptInput(t *testing.T) {
	g := mustRMAT(t, 8, 9).AddWeights(graph.HashWeight(50))
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, c); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := ReadCompressed(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}

	cases := map[string][]byte{
		"empty":            {},
		"short header":     valid[:20],
		"bad magic":        corrupt(valid, 0),
		"unknown flags":    corrupt(valid, 8),
		"nonzero reserved": corrupt(valid, 12),
		"huge n":           corrupt(valid, 22),
		"huge m":           corrupt(valid, 30),
		"huge outBytes":    corrupt(valid, 38),
		"corrupt offsets":  corrupt(valid, headerSize+8),
		"corrupt degree":   corrupt(valid, headerSize+(c.n+1)*8),
		"corrupt data":     corrupt(valid, len(valid)-9),
		"truncated half":   valid[:len(valid)/2],
		"truncated tail":   valid[:len(valid)-4],
	}
	for name, in := range cases {
		if _, err := ReadCompressed(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Every single-byte corruption of the payload must be rejected or
	// still yield a fully traversable graph (validation means the panic
	// fast path can never fire on accepted input).
	for off := headerSize; off < len(valid); off += 7 {
		in := corrupt(valid, off)
		cg, err := ReadCompressed(bytes.NewReader(in))
		if err != nil {
			continue
		}
		for v := uint32(0); int(v) < cg.NumVertices(); v++ {
			cg.OutNeighbors(v, func(uint32, int32) bool { return true })
			cg.InNeighbors(v, func(uint32, int32) bool { return true })
		}
	}
}

// aligned8 copies b into an 8-byte-aligned buffer, because fromMapping
// reinterprets section bytes as []int64 — real callers pass page-aligned
// mmap regions.
func aligned8(b []byte) []byte {
	w := make([]uint64, (len(b)+7)/8)
	if len(b) == 0 {
		return nil
	}
	out := unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)[:len(b)]
	copy(out, b)
	return out
}

func TestFromMappingChecksExactSize(t *testing.T) {
	g := mustRMAT(t, 8, 10)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, c); err != nil {
		t.Fatal(err)
	}
	valid := aligned8(buf.Bytes())
	m, err := fromMapping(valid)
	if err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	assertSameAdjacency(t, "mapping", g, m)
	if _, err := fromMapping(aligned8(append(append([]byte(nil), valid...), 0, 0, 0, 0, 0, 0, 0, 0))); err == nil {
		t.Error("oversized mapping accepted")
	}
	if _, err := fromMapping(valid[:len(valid)-8]); err == nil {
		t.Error("truncated mapping accepted")
	}
}

// FuzzReadCompressed checks the compressed reader never panics on corrupt
// input — truncations, header corruption, overlong varints — and that any
// graph it accepts is fully traversable and round-trips (mirrors
// FuzzReadBinary for the LIGRAGO1 format).
func FuzzReadCompressed(f *testing.F) {
	seed := func(g *graph.Graph, err error) {
		if err != nil {
			f.Fatal(err)
		}
		c, err := Compress(g)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, c); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(append([]byte(nil), valid...))
		// Truncations at the header and every section boundary.
		n := int64(g.NumVertices())
		cuts := []int64{4, 8, 12, 16, 24, 32, 40, headerSize,
			headerSize + (n+1)*8, headerSize + (n+1)*8 + n*4, int64(len(valid)) - 1}
		for _, cut := range cuts {
			if cut >= 0 && cut < int64(len(valid)) {
				f.Add(append([]byte(nil), valid[:cut]...))
			}
		}
		// Corrupt each header field and the first bytes of each section.
		for _, off := range []int{0, 8, 12, 16, 24, 32, 40, headerSize, len(valid) - 2} {
			if off < len(valid) {
				f.Add(corrupt(valid, off))
			}
		}
	}
	seed(gen.RMAT(6, 4, gen.PBBSRMAT, 1))
	seed(gen.RMATDirected(6, 4, gen.PBBSRMAT, 2))
	w, err := gen.RMAT(5, 4, gen.PBBSRMAT, 3)
	if err != nil {
		f.Fatal(err)
	}
	seed(w.AddWeights(graph.HashWeight(100)), nil)
	seed(graph.FromEdges(1, nil, graph.BuildOptions{Symmetrize: true}))
	// An overlong varint (11 continuation bytes) planted in a data
	// section: the validator must reject it, never spin or panic.
	f.Add([]byte("LIGRAGC1\x00\x00\x00\x00\x00\x00\x00\x00" + // flags+reserved
		"\x02\x00\x00\x00\x00\x00\x00\x00" + // n=2
		"\x01\x00\x00\x00\x00\x00\x00\x00" + // m=1
		"\x0b\x00\x00\x00\x00\x00\x00\x00" + // outBytes=11
		"\x00\x00\x00\x00\x00\x00\x00\x00" + // inBytes=0... (truncated anyway)
		"\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80"))
	f.Fuzz(func(t *testing.T, in []byte) {
		c, err := ReadCompressed(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted graphs must be fully decodable with the trusting fast
		// path (this is exactly what traversal does).
		for v := uint32(0); int(v) < c.NumVertices(); v++ {
			c.OutNeighbors(v, func(uint32, int32) bool { return true })
			c.InNeighbors(v, func(uint32, int32) bool { return true })
		}
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, c); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		c2, err := ReadCompressed(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if c2.NumVertices() != c.NumVertices() || c2.NumEdges() != c.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
		// The mapping path applies the same validation plus exact-size
		// checks; it must agree on acceptance.
		if _, err := fromMapping(aligned8(buf.Bytes())); err != nil {
			t.Fatalf("fromMapping rejects what ReadCompressed accepted: %v", err)
		}
	})
}
