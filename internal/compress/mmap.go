package compress

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"unsafe"
)

// Memory-mapped loading: OpenMapped (mmap_unix.go, with a read-into-heap
// fallback in mmap_fallback.go for platforms without syscall.Mmap) maps a
// LIGRAGC1 file read-only and reinterprets its sections in place. The
// format guarantees every section starts on an 8-byte boundary and mmap
// returns a page-aligned base, so the offset/degree arrays are valid
// []int64/[]int32 views of the mapping — no copy, no heap. The bytes live
// in the page cache: a restarted server re-maps the same file and is warm
// immediately, N processes hosting one graph share one physical copy, and
// the kernel evicts cold pages under pressure instead of the process
// swapping.
//
// Lifetime: Close unmaps eagerly and must only be called when no
// traversal can touch the graph again. Long-lived hosts track that
// moment explicitly — the ligra-serve registry wraps every mapped graph
// in a delta.Store whose pin refcount calls Close deterministically once
// the graph is evicted AND the last pinned reader releases. A finalizer
// backstops graphs that are dropped without Close (short-lived tools,
// tests), so an unreferenced mapping is reclaimed either way.

// fromMapping builds a CompressedGraph whose sections alias data (a whole
// LIGRAGC1 file). It validates exactly like ReadCompressed — including the
// O(m) parallel decode pass, which also faults in every page once so later
// traversals never stall on first-touch I/O.
func fromMapping(data []byte) (*CompressedGraph, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if want := h.fileSize(); int64(len(data)) != want {
		return nil, fmt.Errorf("compress: file is %d bytes, format requires exactly %d", len(data), want)
	}
	c := &CompressedGraph{n: h.n, m: h.m, weighted: h.weighted, symmetric: h.symmetric}
	off := int64(headerSize)
	takeSide := func(dataLen int64) ([]int64, []int32, []byte) {
		offsets := mapSlice[int64](data, off, h.n+1)
		off += int64(h.n+1) * 8
		degs := mapSlice[int32](data, off, h.n)
		off += int64(h.n)*4 + pad8(int64(h.n)*4)
		bytes := data[off : off+dataLen]
		off += dataLen + pad8(dataLen)
		return offsets, degs, bytes
	}
	c.outOffsets, c.outDeg, c.outData = takeSide(h.outBytes)
	if !h.symmetric {
		c.inOffsets, c.inDeg, c.inData = takeSide(h.inBytes)
	}
	if err := validateCompressed(c); err != nil {
		return nil, err
	}
	return c, nil
}

// mapSlice reinterprets count T values at data[off:]. off must be 8-byte
// aligned relative to data's (page-aligned) base, which the format layout
// guarantees; fileSize has already verified the bounds.
func mapSlice[T int64 | int32](data []byte, off int64, count int) []T {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), count)
}

// nativeLittleEndian reports whether this host matches the on-disk byte
// order; on big-endian hosts OpenMapped falls back to the copying reader,
// which byte-swaps.
func nativeLittleEndian() bool {
	var b [2]byte
	binary.NativeEndian.PutUint16(b[:], 1)
	return b[0] == 1
}

// finishMapping wires the mapping into c and arranges unmapping when the
// graph becomes unreachable.
func finishMapping(c *CompressedGraph, data []byte) {
	c.mapped = data
	runtime.SetFinalizer(c, func(g *CompressedGraph) { _ = munmap(g.mapped) })
}

// Close releases the mapping, if any. After Close the graph must not be
// traversed: its sections alias the unmapped region. Heap-resident graphs
// ignore Close. The ligra-serve registry calls Close through the delta
// store's pin refcount — deterministically, once a graph is evicted and
// its last pinned reader releases — so eviction with in-flight queries
// never unmaps under a running traversal.
func (c *CompressedGraph) Close() error {
	if c.mapped == nil {
		return nil
	}
	runtime.SetFinalizer(c, nil)
	data := c.mapped
	c.mapped = nil
	c.outOffsets, c.outDeg, c.outData = nil, nil, nil
	c.inOffsets, c.inDeg, c.inData = nil, nil, nil
	return munmap(data)
}

// MappedBytes reports the size of the memory-mapped region backing this
// graph, or 0 when its sections live on the Go heap.
func (c *CompressedGraph) MappedBytes() int64 { return int64(len(c.mapped)) }

// MemoryFootprint reports the graph's heap-resident bytes, mirroring
// (*graph.Graph).MemoryFootprint so the serving registry can report either
// backend uniformly. A mapped graph's sections live in the page cache, not
// the heap, so its footprint is ~0; see MappedBytes for the mapped size.
func (c *CompressedGraph) MemoryFootprint() int64 {
	if c.mapped != nil {
		return 0
	}
	return c.SizeBytes()
}

// FormatName identifies the backend ("compressed" or "compressed+mmap")
// for /metrics, /healthz, and CLI summaries.
func (c *CompressedGraph) FormatName() string {
	if c.mapped != nil {
		return "compressed+mmap"
	}
	return "compressed"
}
