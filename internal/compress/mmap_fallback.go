//go:build !unix

package compress

// OpenMapped on platforms without syscall.Mmap reads the file into the
// heap: same validated graph, no page-cache sharing (MappedBytes reports
// 0, FormatName "compressed").
func OpenMapped(path string) (*CompressedGraph, error) {
	return ReadCompressedFile(path)
}

// munmap is never reached: only OpenMapped sets c.mapped, and the fallback
// never maps.
func munmap([]byte) error { return nil }
