//go:build unix

package compress

import (
	"fmt"
	"os"
	"syscall"

	"ligra/internal/faultinject"
)

// OpenMapped memory-maps the LIGRAGC1 file at path read-only and returns a
// graph whose sections alias the mapping (see mmap.go for the lifetime and
// warm-restart semantics). Validation reads every page once; after that,
// traversal speed matches the heap-loaded reader. On big-endian hosts the
// on-disk little-endian layout cannot be aliased, so the file is read into
// the heap instead (MappedBytes reports 0).
func OpenMapped(path string) (*CompressedGraph, error) {
	if err := faultinject.OnLoad(); err != nil {
		return nil, fmt.Errorf("mapping %s: %w", path, err)
	}
	if !nativeLittleEndian() {
		return ReadCompressedFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("mapping %s: truncated header (%d bytes)", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mapping %s: %w", path, err)
	}
	c, err := fromMapping(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, fmt.Errorf("mapping %s: %w", path, err)
	}
	finishMapping(c, data)
	return c, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
