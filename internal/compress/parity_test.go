package compress

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"ligra/internal/algo"
	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// parityParams fills the registry parameters each runner needs, with
// fixed seeds so the randomized algorithms are reproducible.
func parityParams(r algo.Runner, opts core.Options) algo.Params {
	p := algo.Params{Seed: 7, EdgeMap: opts}
	if r.NeedsSource {
		p.Source = 1
	}
	switch r.Name {
	case "reach":
		p.Target = 5
	case "landmarks":
		p.Landmarks = []uint32{0, 2, 9}
	case "bc-approx", "eccentricity":
		p.K = 4
	}
	return p
}

// nondetDetails lists, per algorithm, result fields that are
// schedule-dependent on ANY backend at procs > 1: label propagation and
// shortest-path relaxation make within-round updates visible to later
// updates of the same round, so rounds-to-convergence varies run to run
// while the converged answer does not. Parity compares the answer.
var nondetDetails = map[string][]string{
	"components":     {"rounds"},
	"bellman-ford":   {"rounds"},
	"delta-stepping": {"phases"},
}

// closeDetails compares two RunResult.Details maps: floats with relative
// tolerance (parallel float accumulation across different dense sweeps),
// everything else exactly. Schedule-dependent fields are dropped first.
func closeDetails(t *testing.T, name string, want, got map[string]any) {
	t.Helper()
	algoName := name
	if i := strings.LastIndexByte(algoName, '/'); i >= 0 {
		algoName = algoName[i+1:]
	}
	for _, k := range nondetDetails[algoName] {
		delete(want, k)
		delete(got, k)
	}
	if len(want) != len(got) {
		t.Fatalf("%s: detail keys differ: %v vs %v", name, want, got)
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing detail %q", name, k)
		}
		wf, wok := toFloat(wv)
		gf, gok := toFloat(gv)
		switch {
		case wok && gok:
			if diff := math.Abs(wf - gf); diff > 1e-6*math.Max(1, math.Max(math.Abs(wf), math.Abs(gf))) {
				t.Errorf("%s: detail %q: %v vs %v", name, k, wv, gv)
			}
		default:
			if !reflect.DeepEqual(wv, gv) {
				t.Errorf("%s: detail %q: %#v vs %#v", name, k, wv, gv)
			}
		}
	}
}

func toFloat(v any) (float64, bool) {
	switch f := v.(type) {
	case float64:
		return f, true
	case float32:
		return float64(f), true
	}
	return 0, false
}

// TestFullRegistryParity runs every registered algorithm on a CSR graph
// and its compressed counterpart and requires identical results: the
// compressed backend is a drop-in View, not an approximation — any
// divergence is a decode bug.
func TestFullRegistryParity(t *testing.T) {
	g := mustRMAT(t, 9, 11)
	w := mustRMAT(t, 9, 11).AddWeights(graph.HashWeight(100))
	cg, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, r := range algo.Runners() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			csr, comp := graph.View(g), graph.View(cg)
			if r.NeedsWeights {
				csr, comp = w, cw
			}
			p := parityParams(r, core.Options{})
			want, err := r.Run(ctx, csr, p)
			if err != nil {
				t.Fatalf("csr: %v", err)
			}
			got, err := r.Run(ctx, comp, p)
			if err != nil {
				t.Fatalf("compressed: %v", err)
			}
			// Summaries render the Details (including any
			// schedule-dependent round counts), so only compare them
			// verbatim for fully deterministic algorithms.
			if _, nondet := nondetDetails[r.Name]; !nondet && want.Summary != got.Summary {
				t.Errorf("summary differs:\n  csr:        %s\n  compressed: %s", want.Summary, got.Summary)
			}
			closeDetails(t, r.Name, want.Details, got.Details)
		})
	}
}

// statsDelta runs f and returns the traversal counters it produced.
func statsDelta(f func()) core.StatsSnapshot {
	before := core.SnapshotStats()
	f()
	return core.SnapshotStats().Sub(before)
}

// assertStatsEqual compares the deterministic traversal counters.
// EdgesScanned is deliberately excluded: its degree sums short-circuit
// once the sparse/dense decision settles, so the recorded value depends
// on scheduling, not on the backend.
func assertStatsEqual(t *testing.T, name string, want, got core.StatsSnapshot) {
	t.Helper()
	want.EdgesScanned, got.EdgesScanned = 0, 0
	if want != got {
		t.Errorf("%s: traversal stats differ:\n  csr:        %+v\n  compressed: %+v", name, want, got)
	}
}

// TestTraversalStatsParity checks that the compressed backend drives the
// same sparse/dense decisions and frontier sizes as CSR — the direction
// heuristic sees identical degrees, so the whole traversal shape must
// match, on both a power-law and a mesh graph.
func TestTraversalStatsParity(t *testing.T) {
	graphs := map[string]*graph.Graph{"rmat": mustRMAT(t, 10, 3)}
	grid, err := gen.Grid3D(8)
	if err != nil {
		t.Fatal(err)
	}
	graphs["grid"] = grid
	apps := []string{"bfs", "components", "pagerank"}
	byName := map[string]algo.Runner{}
	for _, r := range algo.Runners() {
		byName[r.Name] = r
	}
	ctx := context.Background()
	for gname, g := range graphs {
		c, err := Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range apps {
			r := byName[app]
			p := parityParams(r, core.Options{})
			var wantRes, gotRes algo.RunResult
			wantStats := statsDelta(func() {
				var err error
				if wantRes, err = r.Run(ctx, g, p); err != nil {
					t.Fatal(err)
				}
			})
			gotStats := statsDelta(func() {
				var err error
				if gotRes, err = r.Run(ctx, c, p); err != nil {
					t.Fatal(err)
				}
			})
			name := gname + "/" + app
			closeDetails(t, name, wantRes.Details, gotRes.Details)
			// Components' traversal trajectory (round count, frontier
			// contents) is schedule-dependent at procs > 1 on any backend
			// — see nondetDetails — so only its converged result is
			// compared; BFS and PageRank frontiers are deterministic.
			if app != "components" {
				assertStatsEqual(t, name, wantStats, gotStats)
			}
		}
	}
}

// TestBlockedDecodeAblation forces dense rounds and checks the
// partition-blocked decoder and the plain per-vertex fallback
// (Options.NoBlockDecode) produce identical results on the compressed
// backend.
func TestBlockedDecodeAblation(t *testing.T) {
	g := mustRMAT(t, 10, 5)
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]algo.Runner{}
	for _, r := range algo.Runners() {
		byName[r.Name] = r
	}
	ctx := context.Background()
	for _, app := range []string{"bfs", "components", "pagerank"} {
		r := byName[app]
		pb := parityParams(r, core.Options{})
		pb.Mode = "dense"
		pn := parityParams(r, core.Options{NoBlockDecode: true})
		pn.Mode = "dense"
		blocked, err := r.Run(ctx, c, pb)
		if err != nil {
			t.Fatal(err)
		}
		noblock, err := r.Run(ctx, c, pn)
		if err != nil {
			t.Fatal(err)
		}
		if _, nondet := nondetDetails[app]; !nondet && blocked.Summary != noblock.Summary {
			t.Errorf("%s: summary differs:\n  blocked: %s\n  noblock: %s", app, blocked.Summary, noblock.Summary)
		}
		closeDetails(t, app, blocked.Details, noblock.Details)
	}
}
