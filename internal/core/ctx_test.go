package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"ligra/internal/faultinject"
	"ligra/internal/parallel"
)

func TestEdgeMapCtxPreCancelled(t *testing.T) {
	g := testGraph(t)
	u := NewSingle(g.NumVertices(), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var applied atomic.Int64
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool {
		applied.Add(1)
		return true
	}}
	out, err := EdgeMapCtx(ctx, g, u, f, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Errorf("interrupted EdgeMapCtx returned a frontier: %v", out.ToSparse())
	}
	if applied.Load() != 0 {
		t.Errorf("edge function applied %d times on a pre-cancelled context", applied.Load())
	}
}

func TestEdgeMapCtxCancelDuringTraversal(t *testing.T) {
	g := testGraph(t)
	u := NewSingle(g.NumVertices(), 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool {
		cancel()
		return true
	}}
	_, err := EdgeMapCtx(ctx, g, u, f, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEdgeMapCtxMatchesEdgeMapWithoutContext(t *testing.T) {
	g := testGraph(t)
	for _, opts := range []Options{{}, {Mode: ForceDense}, {Mode: ForceDense, DenseForward: true}} {
		u := NewSingle(g.NumVertices(), 0)
		f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}
		want := sortedIDs(EdgeMap(g, u, f, opts))
		got, err := EdgeMapCtx(nil, g, u, f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := sortedIDs(got), want; len(g) != len(w) {
			t.Fatalf("frontier mismatch: got %v want %v", g, w)
		} else {
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("frontier mismatch: got %v want %v", g, w)
				}
			}
		}
	}
}

func TestEdgeMapCtxWorkerPanicBecomesError(t *testing.T) {
	g := testGraph(t)
	u := NewSingle(g.NumVertices(), 0)
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool {
		panic("bad update")
	}}
	_, err := EdgeMapCtx(context.Background(), g, u, f, Options{})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *parallel.PanicError", err)
	}
	if pe.Value != "bad update" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
}

func TestEdgeMapPlainPanicIsTyped(t *testing.T) {
	g := testGraph(t)
	u := NewSingle(g.NumVertices(), 0)
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool {
		panic("plain boom")
	}}
	defer func() {
		r := recover()
		if _, ok := r.(*parallel.PanicError); !ok {
			t.Fatalf("recovered %T (%v), want *parallel.PanicError", r, r)
		}
	}()
	EdgeMap(g, u, f, Options{})
}

func TestVertexMapCtx(t *testing.T) {
	g := testGraph(t)
	u := NewAll(g.NumVertices())
	var visited atomic.Int64
	if err := VertexMapCtx(nil, u, func(v uint32) { visited.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != int64(g.NumVertices()) {
		t.Errorf("visited %d of %d vertices", visited.Load(), g.NumVertices())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited.Store(0)
	err := VertexMapCtx(ctx, u, func(v uint32) { visited.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited.Load() != 0 {
		t.Errorf("visited %d vertices on a pre-cancelled context", visited.Load())
	}
}

func TestEdgeMapCtxFaultInjectedCancel(t *testing.T) {
	g := testGraph(t)
	u := NewSingle(g.NumVertices(), 0)
	ctx, disarm := faultinject.CancelOnRound(context.Background(), 1)
	defer disarm()
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}
	// Round 1 (the first EdgeMap invocation) trips the injected cancel.
	_, err := EdgeMapCtx(ctx, g, u, f, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from injected round fault", err)
	}
}

func TestEdgeMapCtxOptionsContextFallback(t *testing.T) {
	g := testGraph(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// Nil explicit ctx: opts.Context is honored.
	u := NewSingle(g.NumVertices(), 0)
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}
	_, err := EdgeMapCtx(nil, g, u, f, Options{Context: cancelled})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("nil ctx + cancelled opts.Context: err = %v, want context.Canceled", err)
	}

	// Explicit ctx wins over opts.Context.
	out, err := EdgeMapCtx(context.Background(), g, u, f, Options{Context: cancelled})
	if err != nil {
		t.Fatalf("explicit background ctx should override cancelled opts.Context, got %v", err)
	}
	if out == nil {
		t.Fatal("explicit background ctx returned a nil frontier")
	}
}

func TestEdgeMapCtxOptionsProcsCapsConcurrency(t *testing.T) {
	old := parallel.Procs()
	parallel.SetProcs(8)
	defer parallel.SetProcs(old)

	g := testGraph(t)
	u := NewAll(g.NumVertices())
	var cur, peak atomic.Int64
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return true
	}}
	for _, mode := range []Mode{ForceSparse, ForceDense} {
		cur.Store(0)
		peak.Store(0)
		_, err := EdgeMapCtx(nil, g, u, f, Options{Mode: mode, Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if p := peak.Load(); p > 1 {
			t.Errorf("mode %v: observed %d concurrent updates with Options.Procs=1", mode, p)
		}
	}
}

func TestEdgeMapDataCtxCancelAndProcs(t *testing.T) {
	g := testGraph(t)
	u := NewSingle(g.NumVertices(), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := EdgeDataFuncs[uint32]{UpdateAtomic: func(s, d uint32, _ int32) (uint32, bool) {
		return s, true
	}}
	out, err := EdgeMapDataCtx(ctx, g, u, f, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("interrupted EdgeMapDataCtx returned a subset")
	}

	// Uncancelled with a proc cap still matches EdgeMapData.
	got, err := EdgeMapDataCtx(nil, g, u, f, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := EdgeMapData(g, u, f, Options{})
	if got.Size() != want.Size() {
		t.Errorf("capped EdgeMapDataCtx produced %d pairs, want %d", got.Size(), want.Size())
	}
}
