package core

import (
	"context"
	"runtime/debug"

	"ligra/internal/faultinject"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// Pair is one (vertex, payload) element of a data-carrying frontier.
type Pair[T any] struct {
	V   uint32
	Val T
}

// DataSubset is Ligra's vertexSubsetData: a frontier whose members carry
// a per-vertex payload produced by the traversal that built it (e.g. the
// parent that discovered a vertex, or its new tentative distance).
type DataSubset[T any] struct {
	n     int
	pairs []Pair[T]
}

// NewDataSubset wraps (vertex, value) pairs over a universe of n vertices
// (takes ownership; vertices must be unique).
func NewDataSubset[T any](n int, pairs []Pair[T]) *DataSubset[T] {
	if pairs == nil {
		pairs = []Pair[T]{}
	}
	return &DataSubset[T]{n: n, pairs: pairs}
}

// UniverseSize returns the vertex ID space size.
func (ds *DataSubset[T]) UniverseSize() int { return ds.n }

// Size returns the number of members.
func (ds *DataSubset[T]) Size() int { return len(ds.pairs) }

// IsEmpty reports whether the subset is empty.
func (ds *DataSubset[T]) IsEmpty() bool { return len(ds.pairs) == 0 }

// Pairs exposes the member pairs; callers must not mutate.
func (ds *DataSubset[T]) Pairs() []Pair[T] { return ds.pairs }

// Subset drops the payloads, yielding a plain VertexSubset for the next
// traversal round.
func (ds *DataSubset[T]) Subset() *VertexSubset {
	ids := parallel.MapNew(len(ds.pairs), func(i int) uint32 { return ds.pairs[i].V })
	return NewSparse(ds.n, ids)
}

// ForEach applies fn to every (vertex, value) member in parallel.
func (ds *DataSubset[T]) ForEach(fn func(v uint32, val T)) {
	parallel.For(len(ds.pairs), func(i int) { fn(ds.pairs[i].V, ds.pairs[i].Val) })
}

// EdgeDataFuncs is the data-producing analogue of EdgeFuncs: updates
// return the payload for the destination along with the usual "joins the
// output frontier" flag. The exactly-once contract is the same as
// EdgeMap's — at most one update per destination may return true, or
// RemoveDuplicates must be set (an arbitrary winning pair is then kept).
type EdgeDataFuncs[T any] struct {
	// UpdateAtomic is used in sparse (push) traversals.
	UpdateAtomic func(s, d uint32, w int32) (T, bool)
	// Update is the non-atomic variant for dense (pull) traversals; nil
	// falls back to UpdateAtomic.
	Update func(s, d uint32, w int32) (T, bool)
	// Cond gates destinations exactly as in EdgeFuncs.
	Cond func(d uint32) bool
}

// EdgeMapData is Ligra's edgeMapData: like EdgeMap, but the output
// frontier carries per-vertex payloads returned by the update functions.
// The traversal strategy selection matches EdgeMap. A worker panic
// propagates as a panic whose value is a *parallel.PanicError; use
// EdgeMapDataCtx for cooperative cancellation.
func EdgeMapData[T any](g graph.View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) *DataSubset[T] {
	opts.Context = nil
	out, err := EdgeMapDataCtx(nil, g, u, f, opts)
	if err != nil {
		panic(err)
	}
	return out
}

// EdgeMapDataCtx is EdgeMapData with cooperative cancellation and panic
// containment, mirroring EdgeMapCtx's contract: ctx (nil = background) is
// observed at chunk granularity, with opts.Context used as a fallback
// only when the explicit ctx argument is nil. On interruption it returns
// (nil, ctx.Err()); updates already applied are not rolled back. A worker
// panic is returned as a *parallel.PanicError.
func EdgeMapDataCtx[T any](ctx context.Context, g graph.View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) (*DataSubset[T], error) {
	n := g.NumVertices()
	if u.UniverseSize() != n {
		panic("core: EdgeMapData frontier universe does not match graph")
	}
	ctx = opts.resolveCtx(ctx)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if u.IsEmpty() {
		globalStats.record(0, 0, false, false, false, 0)
		return NewDataSubset[T](n, nil), nil
	}

	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = g.NumEdges() / DefaultThresholdDenominator
	}
	outDeg, err := frontierOutDegrees(ctx, g, u, threshold-int64(u.Size()))
	if err != nil {
		return nil, err
	}
	dense := int64(u.Size())+outDeg > threshold
	switch opts.Mode {
	case ForceSparse:
		dense = false
	case ForceDense:
		dense = true
	}
	var out *DataSubset[T]
	seq := !dense && seqBypass(opts, int64(u.Size())+outDeg)
	if seq {
		out, err = edgeMapDataSparseSeq(ctx, g, u, f, opts)
	} else if dense {
		out, err = edgeMapDataDense(ctx, g, u, f, opts)
	} else {
		out, err = edgeMapDataSparse(ctx, g, u, f, opts)
	}
	if err != nil {
		return nil, err
	}
	globalStats.record(u.Size(), outDeg, dense, false, seq, out.Size())
	return out, nil
}

// edgeMapDataSparseSeq is the sequential small-round bypass for
// EdgeMapData (see edgeMapSparseSeq): same winning-pair output in
// frontier edge order and same dedup semantics as edgeMapDataSparse,
// with no slot allocation, scan, or dispatch.
func edgeMapDataSparseSeq[T any](ctx context.Context, g graph.View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) (out *DataSubset[T], err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parallel.PanicError); ok {
				err = pe
				return
			}
			err = &parallel.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	faultinject.OnChunk()
	n := g.NumVertices()
	ids := u.ToSparse()
	update := f.UpdateAtomic
	if update == nil {
		update = f.Update
	}
	cond := f.Cond
	var pairs []Pair[T]
	for _, s := range ids {
		g.OutNeighbors(s, func(d uint32, w int32) bool {
			if cond == nil || cond(d) {
				if val, ok := update(s, d, w); ok {
					pairs = append(pairs, Pair[T]{V: d, Val: val})
				}
			}
			return true
		})
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if opts.RemoveDuplicates && len(pairs) > 1 {
		pairs = dedupPairs(n, pairs)
	}
	return NewDataSubset(n, pairs), nil
}

// edgeMapDataSparse pushes over the frontier's out-edges, gathering
// winning (d, value) pairs via prefix-sum slots and a pack.
func edgeMapDataSparse[T any](ctx context.Context, g graph.View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) (*DataSubset[T], error) {
	n := g.NumVertices()
	ids := u.ToSparse()
	update := f.UpdateAtomic
	if update == nil {
		update = f.Update
	}
	cond := f.Cond

	offsets, total := parallel.ScanFunc(len(ids), func(i int) int64 {
		return int64(g.OutDegree(ids[i]))
	})
	type slot struct {
		pair  Pair[T]
		valid bool
	}
	slots := make([]slot, total)
	err := parallel.ForCtx(ctx, len(ids), func(i int) {
		s := ids[i]
		k := offsets[i]
		g.OutNeighbors(s, func(d uint32, w int32) bool {
			if cond == nil || cond(d) {
				if val, ok := update(s, d, w); ok {
					slots[k] = slot{pair: Pair[T]{V: d, Val: val}, valid: true}
				}
			}
			k++
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	kept := parallel.Filter(slots, func(sl slot) bool { return sl.valid })
	pairs := parallel.MapNew(len(kept), func(i int) Pair[T] { return kept[i].pair })
	if opts.RemoveDuplicates && len(pairs) > 1 {
		pairs = dedupPairs(n, pairs)
	}
	return NewDataSubset(n, pairs), nil
}

// dedupPairs keeps one pair per vertex (the first claimant) using the
// same pooled CAS scratch as removeDuplicates.
func dedupPairs[T any](n int, pairs []Pair[T]) []Pair[T] {
	ids := parallel.MapNew(len(pairs), func(i int) uint32 { return pairs[i].V })
	kept := removeDuplicates(n, ids)
	// removeDuplicates preserves relative order, so walk both lists.
	out := make([]Pair[T], 0, len(kept))
	j := 0
	for _, p := range pairs {
		if j < len(kept) && p.V == kept[j] {
			out = append(out, p)
			j++
		}
	}
	return out
}

// edgeMapDataDense pulls over in-edges; each destination has a single
// writer, so its winning value is recorded without synchronization.
func edgeMapDataDense[T any](ctx context.Context, g graph.View, u *VertexSubset, f EdgeDataFuncs[T], opts Options) (*DataSubset[T], error) {
	n := g.NumVertices()
	ud := u.ToDense()
	update := f.Update
	if update == nil {
		update = f.UpdateAtomic
	}
	cond := f.Cond

	values := make([]T, n)
	won := make([]uint32, n) // 0/1 flags; one writer per d
	err := parallel.ForCtx(ctx, n, func(di int) {
		d := uint32(di)
		if cond != nil && !cond(d) {
			return
		}
		g.InNeighbors(d, func(s uint32, w int32) bool {
			if ud.Get(int(s)) {
				if val, ok := update(s, d, w); ok {
					values[di] = val
					won[di] = 1
				}
				if cond != nil && !cond(d) {
					return false
				}
			}
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	idx := parallel.PackIndex[uint32](n, func(i int) bool { return won[i] == 1 })
	pairs := parallel.MapNew(len(idx), func(i int) Pair[T] {
		return Pair[T]{V: idx[i], Val: values[idx[i]]}
	})
	return NewDataSubset(n, pairs), nil
}
