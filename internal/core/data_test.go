package core

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"ligra/internal/graph"
)

func TestDataSubsetBasics(t *testing.T) {
	ds := NewDataSubset(10, []Pair[int]{{V: 3, Val: 30}, {V: 7, Val: 70}})
	if ds.Size() != 2 || ds.IsEmpty() || ds.UniverseSize() != 10 {
		t.Fatal("basics wrong")
	}
	sub := ds.Subset()
	if sub.Size() != 2 || !sub.Contains(3) || !sub.Contains(7) {
		t.Error("Subset() wrong")
	}
	sum := make([]int, 10)
	ds.ForEach(func(v uint32, val int) { sum[v] = val })
	if sum[3] != 30 || sum[7] != 70 {
		t.Error("ForEach wrong")
	}
	empty := NewDataSubset[int](5, nil)
	if !empty.IsEmpty() || empty.Pairs() == nil {
		t.Error("empty DataSubset wrong")
	}
}

func TestEdgeMapDataMatchesOracleAcrossModes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(120)
		g := randomGraph(t, rng, n, rng.Intn(4*n), rng.Intn(2) == 0)
		u := randomSubset(rng, n)

		// Payload: the weight of the winning edge into d; winners are
		// claimed exactly once via a flags array so the no-dedup contract
		// holds.
		runWith := func(opts Options) map[uint32]int32 {
			claimed := make([]uint32, n)
			f := EdgeDataFuncs[int32]{
				UpdateAtomic: func(s, d uint32, w int32) (int32, bool) {
					if atomic.CompareAndSwapUint32(&claimed[d], 0, 1) {
						return w, true
					}
					return 0, false
				},
			}
			out := EdgeMapData(g, u.Clone(), f, opts)
			m := map[uint32]int32{}
			for _, p := range out.Pairs() {
				if _, dup := m[p.V]; dup {
					t.Fatalf("duplicate vertex %d in data output", p.V)
				}
				m[p.V] = p.Val
			}
			return m
		}

		// Oracle: set of reachable destinations (values are
		// traversal-order dependent, so compare keys only, plus check
		// every value is a legal in-edge weight of its vertex).
		wantKeys := map[uint32]bool{}
		u.ForEachSeq(func(s uint32) {
			g.OutNeighbors(s, func(d uint32, _ int32) bool {
				wantKeys[d] = true
				return true
			})
		})
		legalW := func(d uint32, w int32) bool {
			ok := false
			g.InNeighbors(d, func(s uint32, ww int32) bool {
				if ww == w && u.Contains(s) {
					ok = true
					return false
				}
				return true
			})
			return ok
		}
		for _, tc := range []struct {
			name string
			opts Options
		}{
			{"sparse", Options{Mode: ForceSparse}},
			{"dense", Options{Mode: ForceDense}},
			{"auto", Options{}},
		} {
			got := runWith(tc.opts)
			if len(got) != len(wantKeys) {
				t.Fatalf("trial %d %s: %d outputs, want %d", trial, tc.name, len(got), len(wantKeys))
			}
			for v, w := range got {
				if !wantKeys[v] {
					t.Fatalf("trial %d %s: unexpected vertex %d", trial, tc.name, v)
				}
				if !legalW(v, w) {
					t.Fatalf("trial %d %s: vertex %d carries weight %d not on any frontier in-edge",
						trial, tc.name, v, w)
				}
			}
		}
	}
}

func TestEdgeMapDataRemoveDuplicates(t *testing.T) {
	// Updates that always win produce duplicates in sparse mode; dedup
	// keeps exactly one pair per vertex.
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u := NewSparse(4, []uint32{0, 1})
	f := EdgeDataFuncs[uint32]{
		UpdateAtomic: func(s, d uint32, _ int32) (uint32, bool) { return s, true },
	}
	out := EdgeMapData(g, u, f, Options{Mode: ForceSparse, RemoveDuplicates: true})
	got := map[uint32]int{}
	for _, p := range out.Pairs() {
		got[p.V]++
	}
	if got[2] != 1 || got[3] != 1 || len(got) != 2 {
		t.Errorf("dedup output = %v", out.Pairs())
	}
}

func TestEdgeMapDataEmptyFrontier(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := EdgeMapData(g, NewEmpty(2), EdgeDataFuncs[int]{
		UpdateAtomic: func(_, _ uint32, _ int32) (int, bool) { t.Error("called"); return 0, true },
	}, Options{})
	if !out.IsEmpty() {
		t.Error("nonempty output")
	}
}

func TestEdgeMapDataValuesSortStable(t *testing.T) {
	// Values must correspond to their vertices after sorting pairs.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := EdgeDataFuncs[uint32]{
		UpdateAtomic: func(_, d uint32, _ int32) (uint32, bool) { return d * 10, true },
	}
	out := EdgeMapData(g, NewSingle(5, 0), f, Options{Mode: ForceSparse})
	pairs := append([]Pair[uint32](nil), out.Pairs()...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].V < pairs[j].V })
	for i, p := range pairs {
		if p.V != uint32(i+1) || p.Val != p.V*10 {
			t.Fatalf("pair %d = %+v", i, p)
		}
	}
}
