package core

import (
	"context"
	"math/bits"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ligra/internal/bitset"
	"ligra/internal/faultinject"
	"ligra/internal/graph"
	"ligra/internal/hashtable"
	"ligra/internal/parallel"
)

// EdgeFuncs bundles the per-edge application logic passed to EdgeMap,
// corresponding to Ligra's F (update / updateAtomic) and C (cond):
//
//   - UpdateAtomic(s, d, w) is applied to edge (s, d) when multiple sources
//     may update the same destination concurrently (sparse push and dense-
//     forward traversals). It must use atomic primitives and return true if
//     d should join the output frontier. Exactly-once membership is the
//     application's responsibility (e.g. CAS or priority-update "winner"
//     semantics); otherwise set RemoveDuplicates.
//   - Update(s, d, w) is the cheaper non-atomic variant used by dense
//     (pull) traversals, where the framework guarantees a single writer per
//     destination. If nil, UpdateAtomic is used everywhere.
//   - Cond(d) gates destinations: edges into d with Cond(d) false are
//     skipped, and a dense traversal stops scanning d's in-edges as soon as
//     Cond(d) turns false (Ligra's early exit). Nil means "always true".
//
// For unweighted graphs w is 1.
type EdgeFuncs struct {
	Update       func(s, d uint32, w int32) bool
	UpdateAtomic func(s, d uint32, w int32) bool
	Cond         func(d uint32) bool
}

// Mode forces a traversal strategy, overriding the size heuristic.
type Mode int

const (
	// Auto applies the |U| + outDegrees(U) > threshold heuristic.
	Auto Mode = iota
	// ForceSparse always uses the sparse (push) traversal.
	ForceSparse
	// ForceDense always uses the dense (pull) traversal.
	ForceDense
)

// Options tunes a single EdgeMap call.
type Options struct {
	// Mode selects Auto (default) or a forced representation.
	Mode Mode
	// Threshold overrides the dense-switch threshold; 0 selects the
	// paper's default of |E|/20.
	Threshold int64
	// DenseForward selects the write-based dense traversal (loop over
	// sources, push over out-edges) instead of the default read-based
	// (pull) one when the dense representation is chosen.
	DenseForward bool
	// RemoveDuplicates deduplicates the sparse output frontier. Needed
	// when UpdateAtomic may return true more than once per destination.
	RemoveDuplicates bool
	// Dedup selects the duplicate-removal strategy when RemoveDuplicates
	// is set (see DedupStrategy).
	Dedup DedupStrategy
	// NoOutput skips constructing the output frontier (Ligra's no_output
	// flag); EdgeMap returns an empty subset.
	NoOutput bool
	// DenseEarlyExit lets the dense (pull) traversal stop scanning a
	// destination's in-edges after its first successful update. That is
	// sound only when updates are idempotent membership claims — any
	// later successful update for the same destination must be fully
	// redundant, side effects included. BFS-style visited/parent CAS
	// claims qualify; priority updates (writeMin labels or distances) do
	// NOT, because later updates refine the value. Algorithms opt in
	// explicitly; the flag is independent of RemoveDuplicates, which only
	// promises that duplicate *membership* is collapsed.
	DenseEarlyExit bool
	// Trace, when non-nil, records one entry per EdgeMap call for the
	// frontier-trace experiments.
	Trace *Trace
	// Context is a fallback cancellation context for callers that cannot
	// pass one explicitly: EdgeMapCtx and EdgeMapDataCtx use it only when
	// their explicit ctx argument is nil (the explicit argument always
	// takes precedence). Plain EdgeMap ignores it (it has no way to
	// report the error); use EdgeMapCtx.
	Context context.Context
	// Procs, when positive, caps the number of worker goroutines used by
	// every parallel loop of this call at min(Procs, the process-wide
	// setting). It is how a server grants each query a bounded share of
	// the machine (see parallel.WithProcs); 0 inherits the cap already on
	// the context, if any.
	Procs int
	// NoBlockDecode disables the partition-blocked dense sweep for
	// backends that implement graph.InBlockDecoder (the compressed
	// backend), falling back to the per-edge decode callback. The blocked
	// sweep decodes a cache-sized block of destinations' in-lists once
	// per round and runs the tight CSR-style loop over the decoded
	// arrays; it is on by default for dense rounds without DenseEarlyExit
	// (early-exit rounds stop a row after the first hit, where the lazy
	// per-vertex decoder wins) and this flag exists for ablation
	// (ligra-bench -experiment compress measures both).
	NoBlockDecode bool
	// SeqCutoff tunes the sequential small-round bypass: a round whose
	// total estimated work |U| + outDegrees(U) is at or below the cutoff
	// (and that the direction heuristic sends sparse) runs entirely on
	// the calling goroutine, with none of the chunk/dispatch machinery.
	// This is the common case for the long frontier tails of BFS and
	// BellmanFord on high-diameter graphs, where a round touches a
	// handful of edges. 0 selects DefaultSeqCutoff; a negative value
	// disables the bypass. Bypassed rounds are counted in
	// TraversalStats.SeqRounds.
	SeqCutoff int64
}

// resolveCtx merges the explicit ctx argument with the options: the
// explicit argument wins when non-nil, falling back to opts.Context, and
// a positive Procs caps the worker count of every parallel loop run under
// the returned context.
func (o Options) resolveCtx(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = o.Context
	}
	if o.Procs > 0 {
		ctx = parallel.WithProcs(ctx, o.Procs)
	}
	return ctx
}

// DefaultThresholdDenominator is the paper's frontier-size switch constant:
// edgeMap goes dense when |U| + outDegrees(U) > |E|/20.
const DefaultThresholdDenominator = 20

// DefaultSeqCutoff is the default Options.SeqCutoff: sparse rounds with
// |U| + outDegrees(U) at or below this run sequentially. Roughly a
// thousand cheap per-edge updates cost less than one scheduler dispatch
// plus the per-worker buffer and reassembly machinery of the parallel
// sparse path.
const DefaultSeqCutoff = 1024

// TraceEntry records one EdgeMap invocation for the fig-frontier
// experiment.
type TraceEntry struct {
	Round        int
	FrontierSize int
	OutDegrees   int64
	Dense        bool
	DenseForward bool
	OutputSize   int
	Duration     time.Duration
}

// Trace accumulates TraceEntries across EdgeMap calls.
type Trace struct {
	Entries []TraceEntry
}

// scratchPool recycles the per-call deduplication arrays so iterative
// algorithms (e.g. Bellman-Ford's O(diameter) rounds) do not allocate an
// O(n) slice per round. Invariant: every pooled slice is all-None.
var scratchPool sync.Pool

func getScratch(n int) []uint32 {
	if s, ok := scratchPool.Get().([]uint32); ok && len(s) >= n {
		return s
	}
	s := make([]uint32, n)
	for i := range s {
		s[i] = None
	}
	return s
}

func putScratch(s []uint32) { scratchPool.Put(s) }

// EdgeMap applies f to every edge (s, d) with s in u and Cond(d) true, and
// returns the subset of destinations for which an update returned true.
// The traversal is sparse (push over out-edges of u) or dense (pull over
// in-edges of all vertices) according to the frontier-size heuristic; see
// Options to force a mode or tune the threshold.
//
// EdgeMap ignores Options.Context (it cannot report a cancellation error);
// a worker panic propagates as a panic whose value is a
// *parallel.PanicError. Use EdgeMapCtx for cooperative cancellation.
func EdgeMap(g graph.View, u *VertexSubset, f EdgeFuncs, opts Options) *VertexSubset {
	opts.Context = nil
	out, err := EdgeMapCtx(nil, g, u, f, opts)
	if err != nil {
		// Without a context the only possible error is a contained worker
		// panic; surface it as the panic the non-ctx API promises.
		panic(err)
	}
	return out
}

// EdgeMapCtx is EdgeMap with cooperative cancellation and panic
// containment. ctx is the cancellation context (nil behaves like
// context.Background()); when ctx is nil, opts.Context — kept as a
// fallback for callers that thread options through deep call chains — is
// used instead, so the explicit argument always takes precedence.
// Cancellation is observed at chunk granularity: the traversal stops
// dispatching work within one chunk and returns (nil, ctx.Err()). Updates
// already applied when the traversal aborts are NOT rolled back —
// per-vertex state mutated by f keeps all completed writes, which is what
// gives algorithms their partial results. A panic in a worker is returned
// as a *parallel.PanicError instead of panicking.
func EdgeMapCtx(ctx context.Context, g graph.View, u *VertexSubset, f EdgeFuncs, opts Options) (*VertexSubset, error) {
	n := g.NumVertices()
	if u.UniverseSize() != n {
		panic("core: EdgeMap frontier universe does not match graph")
	}
	faultinject.OnRound()
	ctx = opts.resolveCtx(ctx)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	if u.IsEmpty() {
		out := NewEmpty(n)
		globalStats.record(0, 0, false, false, false, 0)
		traceRecord(opts.Trace, u, 0, false, false, out, start)
		return out, nil
	}

	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = g.NumEdges() / DefaultThresholdDenominator
	}
	outDeg, err := frontierOutDegrees(ctx, g, u, threshold-int64(u.Size()))
	if err != nil {
		return nil, err
	}
	dense := int64(u.Size())+outDeg > threshold
	switch opts.Mode {
	case ForceSparse:
		dense = false
	case ForceDense:
		dense = true
	}

	var out *VertexSubset
	seq := !dense && seqBypass(opts, int64(u.Size())+outDeg)
	if seq {
		out, err = edgeMapSparseSeq(ctx, g, u, f, opts)
	} else if dense {
		if opts.DenseForward {
			out, err = edgeMapDenseForward(ctx, g, u, f, opts)
		} else {
			out, err = edgeMapDense(ctx, g, u, f, opts)
		}
	} else {
		out, err = edgeMapSparse(ctx, g, u, f, opts)
	}
	if err != nil {
		return nil, err
	}
	globalStats.record(u.Size(), outDeg, dense, dense && opts.DenseForward, seq, out.Size())
	traceRecord(opts.Trace, u, outDeg, dense, dense && opts.DenseForward, out, start)
	return out, nil
}

// seqBypass decides whether a round the heuristic already sent sparse is
// small enough to run sequentially. total is |U| + outDegrees(U) as
// weighed by the direction heuristic; because the heuristic's degree scan
// short-circuits only after exceeding the dense threshold, a capped
// (partial) sum can under-report total only when it already exceeds the
// threshold — and for any graph where the threshold is at least the
// cutoff, such a round fails the comparison anyway, so the bypass never
// mistakes a large round for a small one beyond tiny-graph noise.
func seqBypass(opts Options, total int64) bool {
	cutoff := opts.SeqCutoff
	if cutoff == 0 {
		cutoff = DefaultSeqCutoff
	}
	return cutoff > 0 && total <= cutoff
}

func traceRecord(t *Trace, u *VertexSubset, outDeg int64, dense, fwd bool, out *VertexSubset, start time.Time) {
	if t == nil {
		return
	}
	t.Entries = append(t.Entries, TraceEntry{
		Round:        len(t.Entries),
		FrontierSize: u.Size(),
		OutDegrees:   outDeg,
		Dense:        dense,
		DenseForward: fwd,
		OutputSize:   out.Size(),
		Duration:     time.Since(start),
	})
}

// Block sizes for the capped degree sum: small enough that the scan stops
// within one or two blocks of crossing the threshold, large enough that a
// full scan dispatches only a handful of chunks.
const (
	outDegGrainIDs   = 4096 // sparse frontier: vertex IDs per block
	outDegGrainWords = 64   // dense frontier: 64-bit words (4096 bits) per block
)

// frontierOutDegrees computes the total out-degree of the frontier, the
// quantity the paper's switch heuristic compares against |E|/20.
//
// The caller only needs to know whether the sum exceeds stopAfter, so the
// scan short-circuits: once the running sum passes stopAfter, remaining
// blocks are skipped and the returned value is a partial sum that is
// guaranteed to exceed stopAfter. Pass a negative stopAfter to force the
// short-circuit immediately, or math.MaxInt64 for an exact total.
func frontierOutDegrees(ctx context.Context, g graph.View, u *VertexSubset, stopAfter int64) (int64, error) {
	if u.Size() == u.UniverseSize() {
		// Full frontier (the first round of most algorithms): the sum of all
		// out-degrees is the edge count, no scan needed.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		return g.NumEdges(), nil
	}
	var sum atomic.Int64
	if u.HasSparse() {
		ids := u.ToSparse()
		blocks := (len(ids) + outDegGrainIDs - 1) / outDegGrainIDs
		err := parallel.ForGrainCtx(ctx, blocks, 1, func(b int) {
			if sum.Load() > stopAfter {
				return
			}
			lo := b * outDegGrainIDs
			hi := min(lo+outDegGrainIDs, len(ids))
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(g.OutDegree(ids[i]))
			}
			sum.Add(local)
		})
		return sum.Load(), err
	}
	// Dense: walk the frontier bitset a word at a time, skipping empty
	// words, instead of testing all n bits individually.
	words := u.ToDense().Words()
	blocks := (len(words) + outDegGrainWords - 1) / outDegGrainWords
	err := parallel.ForGrainCtx(ctx, blocks, 1, func(b int) {
		if sum.Load() > stopAfter {
			return
		}
		var local int64
		for wi := b * outDegGrainWords; wi < min((b+1)*outDegGrainWords, len(words)); wi++ {
			w := words[wi]
			if w == 0 {
				continue
			}
			base := uint32(wi * 64)
			for w != 0 {
				local += int64(g.OutDegree(base + uint32(bits.TrailingZeros64(w))))
				w &= w - 1
			}
		}
		sum.Add(local)
	})
	return sum.Load(), err
}

// sparseSeg records where one chunk's output landed inside a worker's
// local buffer, so the chunks can be reassembled in input order.
type sparseSeg struct {
	chunk, start, end int
}

// sparseWorkerBuf is one worker's private output accumulation for
// edgeMapSparse. Workers only ever touch their own entry, so appends are
// contention-free; the trailing pad keeps neighbouring workers' slice
// headers on different cache lines.
type sparseWorkerBuf struct {
	ids  []uint32
	segs []sparseSeg
	_    [16]byte
}

// edgeMapSparse is Ligra's edgeMapSparse: push over the out-edges of the
// frontier vertices. Successful targets are appended to per-worker output
// buffers (no shared cursor, no atomics, no degree-sized scratch with
// sentinel holes) and concatenated afterward in chunk order, so the
// output is exactly the old prefix-sum-and-pack result — successes in
// frontier edge order — at the cost of writing only the successes instead
// of one slot per scanned edge. CSR graphs take a raw-slice fast path
// that avoids the per-edge iterator callback.
func edgeMapSparse(ctx context.Context, g graph.View, u *VertexSubset, f EdgeFuncs, opts Options) (*VertexSubset, error) {
	n := g.NumVertices()
	ids := u.ToSparse()
	update := f.UpdateAtomic
	if update == nil {
		update = f.Update
	}
	cond := f.Cond
	csr, _ := g.(*graph.Graph)

	if opts.NoOutput {
		err := parallel.ForCtx(ctx, len(ids), func(i int) {
			s := ids[i]
			if csr != nil {
				row, wts := csr.OutEdgesSlice(s)
				for j, d := range row {
					if cond == nil || cond(d) {
						w := int32(1)
						if wts != nil {
							w = wts[j]
						}
						update(s, d, w)
					}
				}
				return
			}
			g.OutNeighbors(s, func(d uint32, w int32) bool {
				if cond == nil || cond(d) {
					update(s, d, w)
				}
				return true
			})
		})
		if err != nil {
			return nil, err
		}
		return NewEmpty(n), nil
	}

	grain := parallel.AutoGrainCtx(ctx, len(ids))
	nchunks := (len(ids) + grain - 1) / grain
	workers := make([]sparseWorkerBuf, parallel.CtxProcs(ctx))
	segLen := make([]int64, nchunks)
	err := parallel.ForWorkerChunksCtx(ctx, len(ids), grain, func(wk, c, lo, hi int) {
		wb := &workers[wk]
		buf := wb.ids
		start := len(buf)
		for i := lo; i < hi; i++ {
			s := ids[i]
			if csr != nil {
				row, wts := csr.OutEdgesSlice(s)
				for j, d := range row {
					w := int32(1)
					if wts != nil {
						w = wts[j]
					}
					if (cond == nil || cond(d)) && update(s, d, w) {
						buf = append(buf, d)
					}
				}
				continue
			}
			g.OutNeighbors(s, func(d uint32, w int32) bool {
				if (cond == nil || cond(d)) && update(s, d, w) {
					buf = append(buf, d)
				}
				return true
			})
		}
		wb.ids = buf
		wb.segs = append(wb.segs, sparseSeg{chunk: c, start: start, end: len(buf)})
		// Each chunk is dispatched to exactly one worker: no contention.
		segLen[c] = int64(len(buf) - start)
	})
	if err != nil {
		// Undispatched chunks never wrote their segment; no frontier can
		// be derived from the partial buffers.
		return nil, err
	}
	// Exclusive scan turns per-chunk lengths into output offsets; each
	// worker then copies its segments into place in parallel.
	total := parallel.ScanExclusive(segLen, segLen)
	outIDs := make([]uint32, total)
	parallel.For(len(workers), func(wk int) {
		wb := &workers[wk]
		for _, sg := range wb.segs {
			copy(outIDs[segLen[sg.chunk]:], wb.ids[sg.start:sg.end])
		}
	})
	if opts.RemoveDuplicates && len(outIDs) > 1 {
		if opts.Dedup == DedupHash {
			outIDs = removeDuplicatesHash(outIDs)
		} else {
			outIDs = removeDuplicates(n, outIDs)
		}
	}
	return NewSparse(n, outIDs), nil
}

// edgeMapSparseSeq is the sequential small-round bypass: the same push
// traversal and output contract as edgeMapSparse — successes in frontier
// edge order, identical dedup semantics — but run entirely on the calling
// goroutine. Rounds this small (see Options.SeqCutoff) are dominated by
// dispatch and reassembly cost, not edge work; here the only per-round
// overhead is one output slice. Panic containment matches the parallel
// path (*parallel.PanicError), cancellation is observed once on entry and
// once on return (the whole round is smaller than one parallel chunk),
// and the fault-injection chunk hook fires once so injection tests reach
// this path too.
func edgeMapSparseSeq(ctx context.Context, g graph.View, u *VertexSubset, f EdgeFuncs, opts Options) (out *VertexSubset, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parallel.PanicError); ok {
				err = pe
				return
			}
			err = &parallel.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	faultinject.OnChunk()
	n := g.NumVertices()
	ids := u.ToSparse()
	update := f.UpdateAtomic
	if update == nil {
		update = f.Update
	}
	cond := f.Cond
	csr, _ := g.(*graph.Graph)
	var outIDs []uint32
	noOutput := opts.NoOutput
	for _, s := range ids {
		if csr != nil {
			row, wts := csr.OutEdgesSlice(s)
			for j, d := range row {
				w := int32(1)
				if wts != nil {
					w = wts[j]
				}
				if (cond == nil || cond(d)) && update(s, d, w) && !noOutput {
					outIDs = append(outIDs, d)
				}
			}
			continue
		}
		g.OutNeighbors(s, func(d uint32, w int32) bool {
			if (cond == nil || cond(d)) && update(s, d, w) && !noOutput {
				outIDs = append(outIDs, d)
			}
			return true
		})
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if noOutput {
		return NewEmpty(n), nil
	}
	if opts.RemoveDuplicates && len(outIDs) > 1 {
		if opts.Dedup == DedupHash {
			outIDs = removeDuplicatesHash(outIDs)
		} else {
			outIDs = removeDuplicates(n, outIDs)
		}
	}
	return NewSparse(n, outIDs), nil
}

// DedupStrategy selects how RemoveDuplicates deduplicates the sparse
// output frontier.
type DedupStrategy int

const (
	// DedupScratch (default) claims each ID in a pooled O(|V|) array via
	// CAS, Ligra's remDuplicates.
	DedupScratch DedupStrategy = iota
	// DedupHash inserts IDs into a phase-concurrent hash set sized to the
	// output (Shun-Blelloch SPAA'14); O(frontier) space instead of O(|V|),
	// at the cost of hashing. Output order is the deterministic table
	// order rather than the edge order.
	DedupHash
)

// removeDuplicatesHash deduplicates via a phase-concurrent hash set.
func removeDuplicatesHash(ids []uint32) []uint32 {
	set := hashtable.NewSet(len(ids))
	parallel.For(len(ids), func(i int) {
		set.Insert(ids[i])
	})
	return set.Elements()
}

// removeDuplicates keeps one occurrence of each vertex ID using a pooled
// CAS-claimed scratch array (Ligra's remDuplicates).
func removeDuplicates(n int, ids []uint32) []uint32 {
	scratch := getScratch(n)
	parallel.For(len(ids), func(i int) {
		d := ids[i]
		// Claim d with the smallest index; ties broken by writeMin.
		for {
			old := atomic.LoadUint32(&scratch[d])
			if old <= uint32(i) {
				return
			}
			if atomic.CompareAndSwapUint32(&scratch[d], old, uint32(i)) {
				return
			}
		}
	})
	out := parallel.FilterIndex(ids, func(i int, d uint32) bool {
		return scratch[d] == uint32(i)
	})
	// Restore the all-None invariant before pooling. Restore over the
	// deduplicated output, not ids: out holds every distinct ID exactly
	// once, so each slot has a single writer (ids would have two workers
	// racing plain stores on duplicate entries) and the loop does less
	// work.
	parallel.For(len(out), func(i int) {
		scratch[out[i]] = None
	})
	putScratch(scratch)
	return out
}

// inBlockPool recycles the decoded-slab buffers of the partition-blocked
// dense sweep, so iterative algorithms pay the block allocations once, not
// once per (round, chunk).
var inBlockPool = sync.Pool{New: func() any { return new(graph.InBlock) }}

func getInBlock() *graph.InBlock  { return inBlockPool.Get().(*graph.InBlock) }
func putInBlock(b *graph.InBlock) { inBlockPool.Put(b) }

// denseBlockAlign is the alignment of the dense traversal's destination
// blocks: a multiple of the bitset word size, so every block owns whole
// words of the output bit vector and can set output bits without atomics.
const denseBlockAlign = 64

// denseGrain picks the destination-block size for the dense traversals:
// the automatic load-balancing grain, rounded up to whole bitset words so
// blocks never share an output word.
func denseGrain(n int) int {
	g := parallel.AutoGrain(n)
	return (g + denseBlockAlign - 1) &^ (denseBlockAlign - 1)
}

// edgeMapDense is Ligra's edgeMapDense: for every vertex d whose Cond
// holds, pull over its in-edges looking for frontier sources, stopping
// early once Cond(d) becomes false (and, under Options.DenseEarlyExit,
// after the first successful update). Update need not be atomic because d
// is processed by exactly one goroutine. Destinations are processed in
// cache-sized blocks aligned to output bitset words, so output bits are
// set with plain stores — each block's words belong to exactly one worker.
func edgeMapDense(ctx context.Context, g graph.View, u *VertexSubset, f EdgeFuncs, opts Options) (*VertexSubset, error) {
	n := g.NumVertices()
	ud := u.ToDense()
	update := f.Update
	if update == nil {
		update = f.UpdateAtomic
	}
	cond := f.Cond
	earlyExit := opts.DenseEarlyExit
	// Full frontier (PageRank iterations, components round one): every
	// source passes the membership test, so skip the per-edge bit probe.
	full := u.Size() == n

	csr, _ := g.(*graph.Graph)
	var out *bitset.Bitset
	if !opts.NoOutput {
		out = bitset.New(n)
	}
	var body func(lo, hi int)
	if csr != nil {
		// The per-edge loop is the framework's hottest code: the full and
		// filtered variants are split so neither pays the other's branch,
		// and membership reads index the frontier words directly.
		uw := ud.Words()
		body = func(lo, hi int) {
			for di := lo; di < hi; di++ {
				d := uint32(di)
				if cond != nil && !cond(d) {
					continue
				}
				row, wts := csr.InEdgesSlice(d)
				hit := false
				if full {
					for j, s := range row {
						w := int32(1)
						if wts != nil {
							w = wts[j]
						}
						if update(s, d, w) {
							hit = true
							if earlyExit {
								break
							}
						}
						if cond != nil && !cond(d) {
							break // early exit: d needs no more updates
						}
					}
				} else {
					for j, s := range row {
						if uw[s>>6]&(1<<(s&63)) == 0 {
							continue
						}
						w := int32(1)
						if wts != nil {
							w = wts[j]
						}
						if update(s, d, w) {
							hit = true
							if earlyExit {
								break
							}
						}
						if cond != nil && !cond(d) {
							break // early exit: d needs no more updates
						}
					}
				}
				if hit && out != nil {
					out.Set(di) // this block owns the word
				}
			}
		}
	} else if bd, ok := g.(graph.InBlockDecoder); ok && !opts.NoBlockDecode && !earlyExit {
		// Partition-blocked sweep (GPOP-style) for decodable backends:
		// decode the whole destination block's in-lists into a pooled CSR
		// slab, then run the same tight loops as the raw-CSR path over the
		// decoded slices. Cond is sampled once per destination at decode
		// time (rows it rules out are never decoded); mid-row Cond flips
		// still stop the scan exactly like the other dense bodies.
		// Early-exit rounds (BFS parent search) are excluded: they stop a
		// row after the first hit, so the lazy per-vertex decoder below
		// beats paying for a full eager decode of every row.
		uw := ud.Words()
		var skip func(uint32) bool
		if cond != nil {
			skip = func(d uint32) bool { return !cond(d) }
		}
		body = func(lo, hi int) {
			blk := getInBlock()
			bd.DecodeInBlock(uint32(lo), uint32(hi), skip, blk)
			for di := lo; di < hi; di++ {
				d := uint32(di)
				row, wts := blk.Row(di - lo)
				hit := false
				if full {
					for j, s := range row {
						w := int32(1)
						if wts != nil {
							w = wts[j]
						}
						if update(s, d, w) {
							hit = true
							if earlyExit {
								break
							}
						}
						if cond != nil && !cond(d) {
							break // early exit: d needs no more updates
						}
					}
				} else {
					for j, s := range row {
						if uw[s>>6]&(1<<(s&63)) == 0 {
							continue
						}
						w := int32(1)
						if wts != nil {
							w = wts[j]
						}
						if update(s, d, w) {
							hit = true
							if earlyExit {
								break
							}
						}
						if cond != nil && !cond(d) {
							break // early exit: d needs no more updates
						}
					}
				}
				if hit && out != nil {
					out.Set(di) // this block owns the word
				}
			}
			putInBlock(blk)
		}
	} else {
		body = func(lo, hi int) {
			for di := lo; di < hi; di++ {
				d := uint32(di)
				if cond != nil && !cond(d) {
					continue
				}
				g.InNeighbors(d, func(s uint32, w int32) bool {
					if full || ud.Get(int(s)) {
						if update(s, d, w) {
							if out != nil {
								out.Set(di) // this block owns the word
							}
							if earlyExit {
								return false
							}
						}
						if cond != nil && !cond(d) {
							return false // early exit: d needs no more updates
						}
					}
					return true
				})
			}
		}
	}
	err := parallel.ForRangeGrainCtx(ctx, n, denseGrain(n), body)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return NewEmpty(n), nil
	}
	return NewDense(n, out), nil
}

// edgeMapDenseForward is Ligra's write-based dense variant: loop over all
// vertices, and for frontier members push over out-edges with atomic
// updates. It avoids the transpose (useful for graphs stored only forward)
// at the cost of atomics and no early exit. The frontier bit vector is
// scanned a word at a time, so the 63/64ths of a sparse-ish frontier that
// is empty words costs one load each instead of 64 bit tests.
func edgeMapDenseForward(ctx context.Context, g graph.View, u *VertexSubset, f EdgeFuncs, opts Options) (*VertexSubset, error) {
	n := g.NumVertices()
	ud := u.ToDense()
	update := f.UpdateAtomic
	if update == nil {
		update = f.Update
	}
	cond := f.Cond

	csr, _ := g.(*graph.Graph)
	var out *bitset.Bitset
	if !opts.NoOutput {
		out = bitset.New(n)
	}
	words := ud.Words()
	err := parallel.ForRangeCtx(ctx, len(words), func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			w := words[wi]
			if w == 0 {
				continue
			}
			base := uint32(wi * 64)
			for w != 0 {
				s := base + uint32(bits.TrailingZeros64(w))
				w &= w - 1
				if csr != nil {
					row, wts := csr.OutEdgesSlice(s)
					for j, d := range row {
						ew := int32(1)
						if wts != nil {
							ew = wts[j]
						}
						if (cond == nil || cond(d)) && update(s, d, ew) && out != nil {
							out.SetAtomic(int(d))
						}
					}
					continue
				}
				g.OutNeighbors(s, func(d uint32, ew int32) bool {
					if (cond == nil || cond(d)) && update(s, d, ew) && out != nil {
						out.SetAtomic(int(d))
					}
					return true
				})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return NewEmpty(n), nil
	}
	return NewDense(n, out), nil
}
