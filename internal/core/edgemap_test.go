package core

import (
	"sort"
	"sync/atomic"
	"testing"

	"ligra/internal/graph"
)

// testGraph builds a small directed graph:
//
//	0 -> 1, 2
//	1 -> 3
//	2 -> 3, 4
//	3 -> 5
//	4 -> 5
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3},
		{Src: 2, Dst: 3}, {Src: 2, Dst: 4}, {Src: 3, Dst: 5}, {Src: 4, Dst: 5},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// collectEdges runs an EdgeMap that records every (s, d) pair it applies.
func collectEdges(g graph.View, u *VertexSubset, opts Options) (map[[2]uint32]int, *VertexSubset) {
	counts := make(map[[2]uint32]int)
	var mu chanMutex
	f := EdgeFuncs{
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			mu.Lock()
			counts[[2]uint32{s, d}]++
			mu.Unlock()
			return true
		},
	}
	opts.RemoveDuplicates = true
	out := EdgeMap(g, u, f, opts)
	return counts, out
}

// chanMutex is a tiny mutex (avoids importing sync in multiple spots).
type chanMutex struct{ ch chan struct{} }

func (m *chanMutex) Lock() {
	if m.ch == nil {
		m.ch = make(chan struct{}, 1)
	}
	m.ch <- struct{}{}
}
func (m *chanMutex) Unlock() { <-m.ch }

func sortedIDs(vs *VertexSubset) []uint32 {
	ids := append([]uint32(nil), vs.ToSparse()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestEdgeMapAppliesFrontierEdges(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []Mode{ForceSparse, ForceDense} {
		u := NewSparse(6, []uint32{0, 3})
		counts, out := collectEdges(g, u, Options{Mode: mode})
		wantEdges := [][2]uint32{{0, 1}, {0, 2}, {3, 5}}
		if len(counts) != len(wantEdges) {
			t.Fatalf("mode=%v: %d distinct edges, want %d (%v)", mode, len(counts), len(wantEdges), counts)
		}
		for _, e := range wantEdges {
			if counts[e] != 1 {
				t.Errorf("mode=%v: edge %v applied %d times", mode, e, counts[e])
			}
		}
		got := sortedIDs(out)
		want := []uint32{1, 2, 5}
		if len(got) != len(want) {
			t.Fatalf("mode=%v: output = %v, want %v", mode, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mode=%v: output = %v, want %v", mode, got, want)
			}
		}
	}
}

func TestEdgeMapDenseForwardMatches(t *testing.T) {
	g := testGraph(t)
	u := NewSparse(6, []uint32{0, 3})
	counts, out := collectEdges(g, u, Options{Mode: ForceDense, DenseForward: true})
	if len(counts) != 3 {
		t.Fatalf("dense-forward applied %d distinct edges, want 3", len(counts))
	}
	got := sortedIDs(out)
	want := []uint32{1, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dense-forward output = %v, want %v", got, want)
		}
	}
}

func TestEdgeMapCondFilters(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []Mode{ForceSparse, ForceDense} {
		u := NewSparse(6, []uint32{0})
		f := EdgeFuncs{
			UpdateAtomic: func(_, _ uint32, _ int32) bool { return true },
			Cond:         func(d uint32) bool { return d != 2 },
		}
		out := EdgeMap(g, u, f, Options{Mode: mode})
		if out.Contains(2) || !out.Contains(1) {
			t.Errorf("mode=%v: Cond not applied: %v", mode, sortedIDs(out))
		}
	}
}

func TestEdgeMapUpdateFalseExcludesFromOutput(t *testing.T) {
	g := testGraph(t)
	u := NewSparse(6, []uint32{0})
	f := EdgeFuncs{
		UpdateAtomic: func(_, d uint32, _ int32) bool { return d == 1 },
	}
	for _, mode := range []Mode{ForceSparse, ForceDense} {
		out := EdgeMap(g, u, f, Options{Mode: mode})
		if out.Size() != 1 || !out.Contains(1) {
			t.Errorf("mode=%v: output = %v, want {1}", mode, sortedIDs(out))
		}
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := testGraph(t)
	out := EdgeMap(g, NewEmpty(6), EdgeFuncs{
		UpdateAtomic: func(_, _ uint32, _ int32) bool { t.Error("called"); return true },
	}, Options{})
	if !out.IsEmpty() {
		t.Error("nonempty output from empty frontier")
	}
}

func TestEdgeMapNoOutput(t *testing.T) {
	g := testGraph(t)
	var applied atomic.Int32
	f := EdgeFuncs{
		UpdateAtomic: func(_, _ uint32, _ int32) bool { applied.Add(1); return true },
	}
	for _, mode := range []Mode{ForceSparse, ForceDense} {
		applied.Store(0)
		out := EdgeMap(g, NewSparse(6, []uint32{0}), f, Options{Mode: mode, NoOutput: true})
		if !out.IsEmpty() {
			t.Errorf("mode=%v: NoOutput returned nonempty subset", mode)
		}
		if applied.Load() != 2 {
			t.Errorf("mode=%v: %d updates, want 2", mode, applied.Load())
		}
	}
}

func TestEdgeMapDenseEarlyExit(t *testing.T) {
	// Vertex 3 has two in-edges (from 1 and 2). With a Cond that turns
	// false after the first update, the dense traversal must stop scanning
	// 3's in-edges after the first hit.
	g := testGraph(t)
	u := NewSparse(6, []uint32{1, 2})
	hits := make([]int32, 6)
	f := EdgeFuncs{
		Update: func(_, d uint32, _ int32) bool {
			hits[d]++
			return true
		},
		Cond: func(d uint32) bool { return hits[d] == 0 },
	}
	out := EdgeMap(g, u, f, Options{Mode: ForceDense})
	if hits[3] != 1 {
		t.Errorf("vertex 3 updated %d times, want 1 (early exit)", hits[3])
	}
	if !out.Contains(3) || !out.Contains(4) {
		t.Errorf("output = %v", sortedIDs(out))
	}
}

func TestEdgeMapRemoveDuplicates(t *testing.T) {
	// Both 1 and 2 update 3 successfully; without dedup the sparse output
	// contains 3 twice.
	g := testGraph(t)
	f := EdgeFuncs{
		UpdateAtomic: func(_, _ uint32, _ int32) bool { return true },
	}
	u := NewSparse(6, []uint32{1, 2})
	noDedup := EdgeMap(g, u, f, Options{Mode: ForceSparse})
	if len(noDedup.ToSparse()) != 3 { // 3, 3, 4
		t.Errorf("expected raw duplicates, got %v", noDedup.ToSparse())
	}
	dedup := EdgeMap(g, NewSparse(6, []uint32{1, 2}), f, Options{Mode: ForceSparse, RemoveDuplicates: true})
	got := sortedIDs(dedup)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("dedup output = %v, want [3 4]", got)
	}
}

func TestEdgeMapAutoSwitches(t *testing.T) {
	g := testGraph(t) // m = 7, default threshold = 0
	f := EdgeFuncs{UpdateAtomic: func(_, _ uint32, _ int32) bool { return true }}
	tr := &Trace{}
	// Tiny graph: |U|+outdeg(U) > m/20 = 0 always, so Auto must go dense.
	EdgeMap(g, NewSparse(6, []uint32{0}), f, Options{Trace: tr})
	if !tr.Entries[0].Dense {
		t.Error("Auto chose sparse despite exceeding threshold")
	}
	// With a huge threshold it must go sparse.
	EdgeMap(g, NewSparse(6, []uint32{0}), f, Options{Threshold: 1000, Trace: tr})
	if tr.Entries[1].Dense {
		t.Error("Auto chose dense despite large threshold")
	}
	if tr.Entries[1].FrontierSize != 1 || tr.Entries[1].OutDegrees != 2 {
		t.Errorf("trace entry wrong: %+v", tr.Entries[1])
	}
}

func TestEdgeMapWeightsPropagate(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 9}, {Src: 1, Dst: 2, Weight: 4},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ForceSparse, ForceDense} {
		var got atomic.Int32
		f := EdgeFuncs{UpdateAtomic: func(_, d uint32, w int32) bool {
			if d == 1 {
				got.Store(w)
			}
			return true
		}}
		EdgeMap(g, NewSingle(3, 0), f, Options{Mode: mode})
		if got.Load() != 9 {
			t.Errorf("mode=%v: weight = %d, want 9", mode, got.Load())
		}
	}
}

func TestEdgeMapUniverseMismatchPanics(t *testing.T) {
	g := testGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EdgeMap(g, NewEmpty(5), EdgeFuncs{}, Options{})
}

func TestEdgeMapSymmetricGraphDense(t *testing.T) {
	// On a symmetric graph the dense pull uses out-edges as in-edges.
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	f := EdgeFuncs{UpdateAtomic: func(_, _ uint32, _ int32) bool { return true }}
	out := EdgeMap(g, NewSingle(4, 1), f, Options{Mode: ForceDense, RemoveDuplicates: true})
	got := sortedIDs(out)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("output = %v, want [0 2]", got)
	}
}
