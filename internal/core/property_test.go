package core

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"ligra/internal/graph"
)

// randomGraph builds a random directed graph from a seeded RNG.
func randomGraph(t *testing.T, rng *rand.Rand, n, m int, symmetric bool) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    uint32(rng.Intn(n)),
			Dst:    uint32(rng.Intn(n)),
			Weight: int32(rng.Intn(100) + 1),
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{
		Symmetrize:       symmetric,
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
		Weighted:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomSubset builds a random frontier.
func randomSubset(rng *rand.Rand, n int) *VertexSubset {
	var ids []uint32
	for v := 0; v < n; v++ {
		if rng.Intn(4) == 0 {
			ids = append(ids, uint32(v))
		}
	}
	return NewSparse(n, ids)
}

// applyOracle computes the expected edgeMap semantics sequentially: the
// set of destinations d with an edge (s, d), s in u, cond(d), dedup'd.
func applyOracle(g *graph.Graph, u *VertexSubset, cond func(uint32) bool) []uint32 {
	seen := map[uint32]bool{}
	u.ForEachSeq(func(s uint32) {
		g.OutNeighbors(s, func(d uint32, _ int32) bool {
			if cond == nil || cond(d) {
				seen[d] = true
			}
			return true
		})
	})
	out := make([]uint32, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestEdgeMapModesAgreeOnRandomGraphs is the central property test: for
// random graphs, random frontiers, and a random Cond, the sparse, dense,
// and dense-forward traversals must produce exactly the destination set
// computed by a sequential oracle.
func TestEdgeMapModesAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(200)
		m := rng.Intn(4 * n)
		symmetric := rng.Intn(2) == 0
		g := randomGraph(t, rng, n, m, symmetric)
		u := randomSubset(rng, n)

		// Random Cond: exclude a random subset of destinations.
		blocked := make([]bool, n)
		for v := range blocked {
			blocked[v] = rng.Intn(5) == 0
		}
		cond := func(d uint32) bool { return !blocked[d] }

		want := applyOracle(g, u, cond)

		for _, tc := range []struct {
			name string
			opts Options
		}{
			{"sparse", Options{Mode: ForceSparse, RemoveDuplicates: true}},
			{"sparse-hashdedup", Options{Mode: ForceSparse, RemoveDuplicates: true, Dedup: DedupHash}},
			{"dense", Options{Mode: ForceDense}},
			{"dense-forward", Options{Mode: ForceDense, DenseForward: true}},
			{"auto", Options{RemoveDuplicates: true}},
		} {
			f := EdgeFuncs{
				UpdateAtomic: func(_, _ uint32, _ int32) bool { return true },
				Cond:         cond,
			}
			out := EdgeMap(g, u.Clone(), f, tc.opts)
			got := append([]uint32(nil), out.ToSparse()...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: got %d vertices, want %d\ngot  %v\nwant %v",
					trial, tc.name, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: output differs at %d: %v vs %v",
						trial, tc.name, i, got, want)
				}
			}
			if out.Size() != len(want) {
				t.Fatalf("trial %d %s: Size() = %d, want %d", trial, tc.name, out.Size(), len(want))
			}
		}
	}
}

// TestEdgeMapEdgeCountConsistency: with no Cond and an always-false
// update, every frontier out-edge must be applied exactly once in sparse
// mode and dense-forward mode (dense pull may apply edges in any order
// but also exactly once given Cond never flips).
func TestEdgeMapEdgeCountConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(100)
		g := randomGraph(t, rng, n, rng.Intn(5*n), rng.Intn(2) == 0)
		u := randomSubset(rng, n)
		var wantEdges int64
		u.ForEachSeq(func(s uint32) { wantEdges += int64(g.OutDegree(s)) })

		for _, tc := range []struct {
			name string
			opts Options
		}{
			{"sparse", Options{Mode: ForceSparse}},
			{"dense", Options{Mode: ForceDense}},
			{"dense-forward", Options{Mode: ForceDense, DenseForward: true}},
		} {
			var applied atomic.Int64
			f := EdgeFuncs{
				UpdateAtomic: func(_, _ uint32, _ int32) bool {
					applied.Add(1)
					return false
				},
			}
			out := EdgeMap(g, u.Clone(), f, tc.opts)
			if applied.Load() != wantEdges {
				t.Fatalf("trial %d %s: applied %d edges, want %d",
					trial, tc.name, applied.Load(), wantEdges)
			}
			if !out.IsEmpty() {
				t.Fatalf("trial %d %s: always-false update produced output", trial, tc.name)
			}
		}
	}
}

// TestEdgeMapWeightsAgreeAcrossModes: the weight passed to the update
// function must be the edge's weight in every mode (in particular the
// dense pull must deliver the same weight for (s, d) as the sparse push).
func TestEdgeMapWeightsAgreeAcrossModes(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		g := randomGraph(t, rng, n, rng.Intn(3*n), false)
		u := NewAll(n)

		collect := func(opts Options) map[[2]uint32]int64 {
			sums := make([]int64, n*n) // sum of weights per (s,d) cell
			f := EdgeFuncs{
				UpdateAtomic: func(s, d uint32, w int32) bool {
					atomic.AddInt64(&sums[int(s)*n+int(d)], int64(w))
					return false
				},
			}
			EdgeMap(g, u.Clone(), f, opts)
			out := map[[2]uint32]int64{}
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					if sums[s*n+d] != 0 {
						out[[2]uint32{uint32(s), uint32(d)}] = sums[s*n+d]
					}
				}
			}
			return out
		}
		sparse := collect(Options{Mode: ForceSparse})
		dense := collect(Options{Mode: ForceDense})
		fwd := collect(Options{Mode: ForceDense, DenseForward: true})
		if len(sparse) != len(dense) || len(sparse) != len(fwd) {
			t.Fatalf("trial %d: edge sets differ in size", trial)
		}
		for k, v := range sparse {
			if dense[k] != v || fwd[k] != v {
				t.Fatalf("trial %d: weight mismatch at %v: sparse %d dense %d fwd %d",
					trial, k, v, dense[k], fwd[k])
			}
		}
	}
}

// TestRemoveDuplicatesIdempotent: applying dedup to an already-unique
// output must be a no-op, and scratch reuse across calls must not leak
// stale claims (regression guard for the pooled scratch array).
func TestRemoveDuplicatesScratchReuse(t *testing.T) {
	n := 1000
	for round := 0; round < 10; round++ {
		ids := make([]uint32, 0, 500)
		for v := 0; v < 500; v++ {
			ids = append(ids, uint32(v), uint32(v)) // every ID twice
		}
		out := removeDuplicates(n, ids)
		if len(out) != 500 {
			t.Fatalf("round %d: dedup kept %d, want 500", round, len(out))
		}
		seen := map[uint32]bool{}
		for _, v := range out {
			if seen[v] {
				t.Fatalf("round %d: duplicate %d survived", round, v)
			}
			seen[v] = true
		}
	}
}

// TestEdgeMapThresholdSweepAgrees: the oracle result must be invariant
// under the switch threshold — whatever mix of sparse and dense rounds a
// threshold induces, the output subset is the same. Sweeps thresholds from
// "always dense" (1) through the paper's default to "always sparse" (huge).
func TestEdgeMapThresholdSweepAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(200)
		g := randomGraph(t, rng, n, rng.Intn(4*n), rng.Intn(2) == 0)
		u := randomSubset(rng, n)
		blocked := make([]bool, n)
		for v := range blocked {
			blocked[v] = rng.Intn(5) == 0
		}
		cond := func(d uint32) bool { return !blocked[d] }
		want := applyOracle(g, u, cond)

		thresholds := []int64{1, g.NumEdges() / DefaultThresholdDenominator,
			int64(1 + rng.Intn(n*4)), int64(1) << 40}
		for _, th := range thresholds {
			f := EdgeFuncs{
				UpdateAtomic: func(_, _ uint32, _ int32) bool { return true },
				Cond:         cond,
			}
			out := EdgeMap(g, u.Clone(), f, Options{Threshold: th, RemoveDuplicates: true})
			got := append([]uint32(nil), out.ToSparse()...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("trial %d threshold %d: got %d vertices, want %d",
					trial, th, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d threshold %d: output differs at %d", trial, th, i)
				}
			}
		}
	}
}

// TestEdgeMapDataModesAgree: EdgeMapData must deliver the same (vertex,
// payload) set in every mode and across thresholds. The payload is a pure
// function of the destination so the "arbitrary winner" rule cannot
// introduce cross-mode differences.
func TestEdgeMapDataModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(150)
		g := randomGraph(t, rng, n, rng.Intn(4*n), rng.Intn(2) == 0)
		u := randomSubset(rng, n)
		blocked := make([]bool, n)
		for v := range blocked {
			blocked[v] = rng.Intn(6) == 0
		}
		cond := func(d uint32) bool { return !blocked[d] }
		want := applyOracle(g, u, cond)

		payload := func(d uint32) int64 { return int64(d)*3 + 1 }
		collect := func(opts Options) []Pair[int64] {
			f := EdgeDataFuncs[int64]{
				UpdateAtomic: func(_, d uint32, _ int32) (int64, bool) { return payload(d), true },
				Cond:         cond,
			}
			out := EdgeMapData(g, u.Clone(), f, opts)
			pairs := append([]Pair[int64](nil), out.Pairs()...)
			sort.Slice(pairs, func(i, j int) bool { return pairs[i].V < pairs[j].V })
			return pairs
		}

		for _, tc := range []struct {
			name string
			opts Options
		}{
			{"sparse", Options{Mode: ForceSparse, RemoveDuplicates: true}},
			{"dense", Options{Mode: ForceDense}},
			{"auto-low", Options{Threshold: 1, RemoveDuplicates: true}},
			{"auto-high", Options{Threshold: 1 << 40, RemoveDuplicates: true}},
		} {
			pairs := collect(tc.opts)
			if len(pairs) != len(want) {
				t.Fatalf("trial %d %s: got %d pairs, want %d", trial, tc.name, len(pairs), len(want))
			}
			for i, p := range pairs {
				if p.V != want[i] || p.Val != payload(want[i]) {
					t.Fatalf("trial %d %s: pair %d = (%d, %d), want (%d, %d)",
						trial, tc.name, i, p.V, p.Val, want[i], payload(want[i]))
				}
			}
		}
	}
}

// TestEdgeMapDenseEarlyExit: with a claim-once update (BFS-style CAS) the
// DenseEarlyExit option must not change the output subset — it only skips
// in-edges that could not produce a second claim — and every claimed
// parent must be a frontier member.
func TestEdgeMapDenseEarlyExitRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(86420))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(200)
		g := randomGraph(t, rng, n, rng.Intn(4*n), rng.Intn(2) == 0)
		u := randomSubset(rng, n)
		inFrontier := make([]bool, n)
		u.ForEachSeq(func(v uint32) { inFrontier[v] = true })

		claimed := make([]uint32, n)
		for i := range claimed {
			claimed[i] = None
		}
		cond := func(d uint32) bool { return atomic.LoadUint32(&claimed[d]) == None }
		want := applyOracle(g, u, cond)

		f := EdgeFuncs{
			Update: func(s, d uint32, _ int32) bool {
				return atomic.CompareAndSwapUint32(&claimed[d], None, s)
			},
			UpdateAtomic: func(s, d uint32, _ int32) bool {
				return atomic.CompareAndSwapUint32(&claimed[d], None, s)
			},
			Cond: cond,
		}
		out := EdgeMap(g, u.Clone(), f, Options{Mode: ForceDense, DenseEarlyExit: true})
		got := append([]uint32(nil), out.ToSparse()...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d vertices, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: output differs at index %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
		for _, d := range got {
			if s := claimed[d]; s == None || !inFrontier[s] {
				t.Fatalf("trial %d: vertex %d claimed by non-frontier parent %d", trial, d, s)
			}
		}
	}
}
