package core

import (
	"context"
	"errors"
	"testing"

	"ligra/internal/graph"
)

// TestSeqBypassEquivalence runs the same sparse round with the bypass on
// (default) and off (SeqCutoff: -1) and demands identical output plus a
// SeqRounds increment only on the bypassed run. The test graph is tiny,
// so |U| + outDegrees(U) is far below DefaultSeqCutoff and every round
// qualifies — but the default |E|/20 threshold is 0 on 7 edges, which
// would send every Auto round dense, so the tests raise it explicitly to
// keep the rounds on the sparse (bypassable) side of the heuristic.
func TestSeqBypassEquivalence(t *testing.T) {
	g := testGraph(t)
	for _, opts := range []Options{
		{Threshold: 100},
		{Threshold: 100, RemoveDuplicates: true},
		{Threshold: 100, RemoveDuplicates: true, Dedup: DedupHash},
		{Threshold: 100, NoOutput: true},
	} {
		u := NewSparse(6, []uint32{0, 2, 3})
		f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}

		before := SnapshotStats()
		seqOut := EdgeMap(g, u, f, opts)
		d := SnapshotStats().Sub(before)
		if d.SeqRounds != 1 || d.Sparse != 1 {
			t.Fatalf("opts=%+v: seq_rounds=%d sparse=%d, want 1/1", opts, d.SeqRounds, d.Sparse)
		}

		noBypass := opts
		noBypass.SeqCutoff = -1
		u2 := NewSparse(6, []uint32{0, 2, 3})
		before = SnapshotStats()
		parOut := EdgeMap(g, u2, f, noBypass)
		d = SnapshotStats().Sub(before)
		if d.SeqRounds != 0 || d.Sparse != 1 {
			t.Fatalf("opts=%+v SeqCutoff=-1: seq_rounds=%d sparse=%d, want 0/1", opts, d.SeqRounds, d.Sparse)
		}

		got, want := sortedIDs(seqOut), sortedIDs(parOut)
		if len(got) != len(want) {
			t.Fatalf("opts=%+v: bypass output %v, parallel output %v", opts, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts=%+v: bypass output %v, parallel output %v", opts, got, want)
			}
		}
	}
}

// TestSeqBypassPreservesEdgeOrderAndUpdateFallback checks the sequential
// path applies edges in frontier order through the plain Update function
// (no UpdateAtomic needed: the path is single-goroutine).
func TestSeqBypassPreservesEdgeOrderAndUpdateFallback(t *testing.T) {
	g := testGraph(t)
	u := NewSparse(6, []uint32{2, 0})
	var applied [][2]uint32
	f := EdgeFuncs{Update: func(s, d uint32, _ int32) bool {
		applied = append(applied, [2]uint32{s, d})
		return true
	}}
	before := SnapshotStats()
	out := EdgeMap(g, u, f, Options{Threshold: 100})
	if d := SnapshotStats().Sub(before); d.SeqRounds != 1 {
		t.Fatalf("seq_rounds=%d, want 1 (bypass did not engage)", d.SeqRounds)
	}
	// Frontier order {2, 0}: 2->3, 2->4, then 0->1, 0->2.
	want := [][2]uint32{{2, 3}, {2, 4}, {0, 1}, {0, 2}}
	if len(applied) != len(want) {
		t.Fatalf("applied %v, want %v", applied, want)
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("applied %v, want %v", applied, want)
		}
	}
	got := sortedIDs(out)
	wantOut := []uint32{1, 2, 3, 4}
	for i := range wantOut {
		if got[i] != wantOut[i] {
			t.Fatalf("output %v, want %v", got, wantOut)
		}
	}
}

// TestSeqBypassNeverOnDense proves the bypass only applies to rounds the
// heuristic (or the caller) already sends sparse: ForceDense rounds keep
// the dense traversal and record no SeqRounds.
func TestSeqBypassNeverOnDense(t *testing.T) {
	g := testGraph(t)
	u := NewSparse(6, []uint32{0, 3})
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}
	before := SnapshotStats()
	EdgeMap(g, u, f, Options{Mode: ForceDense})
	d := SnapshotStats().Sub(before)
	if d.SeqRounds != 0 || d.Dense != 1 {
		t.Errorf("ForceDense round: seq_rounds=%d dense=%d, want 0/1", d.SeqRounds, d.Dense)
	}
}

// TestSeqBypassCancellation checks the sequential path still observes a
// pre-cancelled context.
func TestSeqBypassCancellation(t *testing.T) {
	g := testGraph(t)
	u := NewSparse(6, []uint32{0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}
	_, err := EdgeMapCtx(ctx, g, u, f, Options{Threshold: 100})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}

// TestSeqBypassPanicContainment checks an update panic on the sequential
// path surfaces through EdgeMapCtx as an error, like the parallel paths.
func TestSeqBypassPanicContainment(t *testing.T) {
	g := testGraph(t)
	u := NewSparse(6, []uint32{0})
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { panic("seq update panic") }}
	before := SnapshotStats()
	_, err := EdgeMapCtx(context.Background(), g, u, f, Options{Threshold: 100})
	if err == nil {
		t.Fatal("panic on the sequential path was not contained")
	}
	if d := SnapshotStats().Sub(before); d.SeqRounds != 0 {
		t.Errorf("failed round recorded seq_rounds=%d, want 0", d.SeqRounds)
	}
}

// TestEdgeMapDataSeqBypassParity is the EdgeMapData analogue of the
// equivalence test: same winners and payloads with the bypass on and off.
func TestEdgeMapDataSeqBypassParity(t *testing.T) {
	g := testGraph(t)
	funcs := EdgeDataFuncs[uint32]{
		UpdateAtomic: func(s, d uint32, _ int32) (uint32, bool) { return s, true },
	}
	run := func(opts Options) map[uint32]uint32 {
		u := NewSparse(6, []uint32{0, 3})
		out := EdgeMapData(g, u, funcs, opts)
		m := make(map[uint32]uint32)
		for _, p := range out.Pairs() {
			m[p.V] = p.Val
		}
		return m
	}
	before := SnapshotStats()
	seq := run(Options{Threshold: 100, RemoveDuplicates: true})
	if d := SnapshotStats().Sub(before); d.SeqRounds != 1 {
		t.Fatalf("seq_rounds=%d, want 1 (bypass did not engage)", d.SeqRounds)
	}
	par := run(Options{Threshold: 100, RemoveDuplicates: true, SeqCutoff: -1})
	if len(seq) != len(par) {
		t.Fatalf("bypass pairs %v, parallel pairs %v", seq, par)
	}
	for v, s := range par {
		if seq[v] != s {
			t.Fatalf("vertex %d: bypass payload %d, parallel payload %d", v, seq[v], s)
		}
	}
}

// TestSeqBypassRespectsCustomCutoff checks Options.SeqCutoff semantics:
// a positive cutoff below the round size disables the bypass for that
// round, and a generous one enables it on larger frontiers.
func TestSeqBypassRespectsCustomCutoff(t *testing.T) {
	// A star graph: vertex 0 points at 1..128, so a {0} frontier weighs
	// 1 + 128 = 129.
	edges := make([]graph.Edge, 0, 128)
	for d := uint32(1); d <= 128; d++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: d})
	}
	g, err := graph.FromEdges(129, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := EdgeFuncs{UpdateAtomic: func(s, d uint32, _ int32) bool { return true }}

	for _, tc := range []struct {
		cutoff   int64
		wantSeq  int64
		wantDesc string
	}{
		{cutoff: 64, wantSeq: 0, wantDesc: "round weighs 129 > cutoff 64"},
		{cutoff: 256, wantSeq: 1, wantDesc: "round weighs 129 <= cutoff 256"},
	} {
		u := NewSparse(129, []uint32{0})
		before := SnapshotStats()
		out := EdgeMap(g, u, f, Options{Mode: ForceSparse, SeqCutoff: tc.cutoff})
		if d := SnapshotStats().Sub(before); d.SeqRounds != tc.wantSeq {
			t.Errorf("cutoff=%d: seq_rounds=%d, want %d (%s)",
				tc.cutoff, d.SeqRounds, tc.wantSeq, tc.wantDesc)
		}
		if got := sortedIDs(out); len(got) != 128 || got[0] != 1 || got[127] != 128 {
			t.Errorf("cutoff=%d: output size %d, want all 128 leaves", tc.cutoff, len(got))
		}
	}
}
