package core

import "sync/atomic"

// TraversalStats is the process-wide counter set behind the edgeMap
// direction-optimization instrumentation: every EdgeMap / EdgeMapData call
// records which representation it chose (the paper's sparse-vs-dense
// switch, §4.2), how large the input frontier was, and how many frontier
// out-edges the |U| + outDegrees(U) > threshold heuristic weighed. The
// counters make the switch observable — through ligra-run -stats,
// ligra-bench reports, and ligra-serve's /metrics endpoint — instead of
// inferable from timings.
//
// Recording is a handful of atomic adds per EdgeMap *call* (one call per
// algorithm round, never per edge), so it stays enabled unconditionally.
// All methods are safe for concurrent use.
type TraversalStats struct {
	calls, sparse, dense, denseForward atomic.Int64
	seqRounds                          atomic.Int64
	frontierVertices                   atomic.Int64
	outputVertices                     atomic.Int64
	edgesScanned                       atomic.Int64
}

// globalStats collects across every traversal in the process.
var globalStats TraversalStats

func (t *TraversalStats) record(frontier int, outDeg int64, dense, fwd, seq bool, output int) {
	t.calls.Add(1)
	switch {
	case dense && fwd:
		t.denseForward.Add(1)
	case dense:
		t.dense.Add(1)
	default:
		t.sparse.Add(1)
	}
	if seq {
		t.seqRounds.Add(1)
	}
	t.frontierVertices.Add(int64(frontier))
	t.outputVertices.Add(int64(output))
	t.edgesScanned.Add(outDeg)
}

// RecordTraversal feeds one traversal round executed outside the edgeMap
// machinery — e.g. an internal/spmv semiring kernel — into the process-wide
// counters, so alternative backends are observable through the same
// ligra-run -stats / ligra-bench / /metrics surfaces as edgeMap rounds.
// frontier and output are the input/output active-set sizes, edges the
// out-degrees the round weighed or scanned, and dense/fwd/seq the
// representation flags (with the same Sparse+Dense+DenseForward = Calls
// invariant).
func RecordTraversal(frontier int, edges int64, dense, fwd, seq bool, output int) {
	globalStats.record(frontier, edges, dense, fwd, seq, output)
}

// StatsSnapshot is a point-in-time copy of the traversal counters, in the
// JSON shape served by ligra-serve's /metrics and written by ligra-bench
// -json.
type StatsSnapshot struct {
	// Calls is the total number of EdgeMap / EdgeMapData invocations.
	Calls int64 `json:"calls"`
	// Sparse, Dense and DenseForward count the per-call representation
	// decisions; they sum to Calls.
	Sparse       int64 `json:"sparse"`
	Dense        int64 `json:"dense"`
	DenseForward int64 `json:"dense_forward"`
	// SeqRounds counts the calls taken by the sequential small-round
	// bypass: sparse rounds whose |U| + outDegrees(U) fell at or below
	// Options.SeqCutoff and ran entirely on the calling goroutine with
	// zero scheduler dispatch. Every such round is also counted in
	// Sparse (the bypass is an execution strategy, not a representation),
	// so the Sparse+Dense+DenseForward = Calls invariant is unchanged.
	SeqRounds int64 `json:"seq_rounds"`
	// FrontierVertices sums the input frontier sizes (|U| per call).
	FrontierVertices int64 `json:"frontier_vertices"`
	// OutputVertices sums the output frontier sizes.
	OutputVertices int64 `json:"output_vertices"`
	// EdgesScanned sums the frontier out-degrees weighed by the direction
	// heuristic (outDegrees(U) per call). The degree sum short-circuits
	// once it settles the sparse-vs-dense decision, so for frontiers that
	// go dense this is a lower bound on outDegrees(U), not the exact total.
	EdgesScanned int64 `json:"edges_scanned"`
}

// SnapshotStats returns the current process-wide traversal counters.
func SnapshotStats() StatsSnapshot {
	return StatsSnapshot{
		Calls:            globalStats.calls.Load(),
		Sparse:           globalStats.sparse.Load(),
		Dense:            globalStats.dense.Load(),
		DenseForward:     globalStats.denseForward.Load(),
		SeqRounds:        globalStats.seqRounds.Load(),
		FrontierVertices: globalStats.frontierVertices.Load(),
		OutputVertices:   globalStats.outputVertices.Load(),
		EdgesScanned:     globalStats.edgesScanned.Load(),
	}
}

// ResetStats zeroes the process-wide traversal counters (test and
// benchmark isolation).
func ResetStats() {
	globalStats.calls.Store(0)
	globalStats.sparse.Store(0)
	globalStats.dense.Store(0)
	globalStats.denseForward.Store(0)
	globalStats.seqRounds.Store(0)
	globalStats.frontierVertices.Store(0)
	globalStats.outputVertices.Store(0)
	globalStats.edgesScanned.Store(0)
}

// Sub returns the counter-wise difference s - prev, for reporting the
// traversal activity of one bounded region (take a snapshot before and
// after, subtract).
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Calls:            s.Calls - prev.Calls,
		Sparse:           s.Sparse - prev.Sparse,
		Dense:            s.Dense - prev.Dense,
		DenseForward:     s.DenseForward - prev.DenseForward,
		SeqRounds:        s.SeqRounds - prev.SeqRounds,
		FrontierVertices: s.FrontierVertices - prev.FrontierVertices,
		OutputVertices:   s.OutputVertices - prev.OutputVertices,
		EdgesScanned:     s.EdgesScanned - prev.EdgesScanned,
	}
}
