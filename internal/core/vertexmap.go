package core

import (
	"context"

	"ligra/internal/bitset"
	"ligra/internal/parallel"
)

// VertexMap applies fn to every vertex in u, in parallel (Ligra's vertexMap
// without output).
//
// Small rounds take the scheduler's sequential cutoff automatically: the
// loops behind ForEach/ForEachCtx are auto-grain, so a frontier at or
// below the parallel package's cutoff runs inline on the calling
// goroutine with zero dispatch — the vertexMap analogue of edgeMap's
// Options.SeqCutoff bypass (which is counted in TraversalStats.SeqRounds;
// per-vertex rounds are visible in the scheduler's inline-run counter
// instead).
func VertexMap(u *VertexSubset, fn func(v uint32)) {
	u.ForEach(fn)
}

// VertexMapCtx is VertexMap with cooperative cancellation and panic
// containment: ctx (nil = background) is checked at chunk granularity and
// its error returned; a panic in fn is returned as a
// *parallel.PanicError. Vertices already mapped when the call aborts keep
// their effects.
func VertexMapCtx(ctx context.Context, u *VertexSubset, fn func(v uint32)) error {
	return u.ForEachCtx(ctx, fn)
}

// VertexFilter applies pred to every vertex of u and returns the subset of
// vertices for which it returned true (Ligra's vertexMap returning a
// vertexSubset). The output representation matches the input's.
func VertexFilter(u *VertexSubset, pred func(v uint32) bool) *VertexSubset {
	n := u.UniverseSize()
	if u.HasSparse() {
		ids := u.ToSparse()
		out := parallel.Filter(ids, func(v uint32) bool { return pred(v) })
		return NewSparse(n, out)
	}
	ud := u.ToDense()
	out := bitset.New(n)
	count := parallel.CountFunc(n, func(i int) bool {
		if ud.Get(i) && pred(uint32(i)) {
			out.SetAtomic(i)
			return true
		}
		return false
	})
	return &VertexSubset{n: n, size: count, dense: out}
}

// Union returns the set union of a and b (over the same universe).
func Union(a, b *VertexSubset) *VertexSubset {
	if a.UniverseSize() != b.UniverseSize() {
		panic("core: Union universe mismatch")
	}
	n := a.UniverseSize()
	ad, bd := a.ToDense(), b.ToDense()
	out := bitset.New(n)
	count := parallel.CountFunc(n, func(i int) bool {
		if ad.Get(i) || bd.Get(i) {
			out.SetAtomic(i)
			return true
		}
		return false
	})
	return &VertexSubset{n: n, size: count, dense: out}
}

// Intersect returns the set intersection of a and b.
func Intersect(a, b *VertexSubset) *VertexSubset {
	if a.UniverseSize() != b.UniverseSize() {
		panic("core: Intersect universe mismatch")
	}
	n := a.UniverseSize()
	ad, bd := a.ToDense(), b.ToDense()
	out := bitset.New(n)
	count := parallel.CountFunc(n, func(i int) bool {
		if ad.Get(i) && bd.Get(i) {
			out.SetAtomic(i)
			return true
		}
		return false
	})
	return &VertexSubset{n: n, size: count, dense: out}
}

// Difference returns a \ b.
func Difference(a, b *VertexSubset) *VertexSubset {
	if a.UniverseSize() != b.UniverseSize() {
		panic("core: Difference universe mismatch")
	}
	n := a.UniverseSize()
	ad, bd := a.ToDense(), b.ToDense()
	out := bitset.New(n)
	count := parallel.CountFunc(n, func(i int) bool {
		if ad.Get(i) && !bd.Get(i) {
			out.SetAtomic(i)
			return true
		}
		return false
	})
	return &VertexSubset{n: n, size: count, dense: out}
}
