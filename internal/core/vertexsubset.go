// Package core implements Ligra's programming interface — the vertexSubset
// data type and the edgeMap / vertexMap operators (Shun & Blelloch, PPoPP
// 2013, §4). This is the paper's primary contribution: a frontier-based
// abstraction whose traversal operator transparently switches between a
// sparse (push, source-driven) and a dense (pull, destination-driven)
// per-iteration representation based on frontier size, generalizing
// direction-optimizing BFS to arbitrary vertex-subset computations.
package core

import (
	"context"
	"math/bits"

	"ligra/internal/bitset"
	"ligra/internal/parallel"
)

// None is the sentinel vertex ID (2^32-1), used to mark empty slots while
// constructing sparse frontiers and as the "no parent / not found" value in
// applications.
const None = ^uint32(0)

// VertexSubset is a set of vertex IDs drawn from [0, n). It maintains up to
// two physical representations — a sparse ID array and a dense bit vector —
// converting lazily and caching the result, mirroring Ligra's vertexSubset
// with its sparse/dense duality. The exact size is always tracked.
//
// VertexSubsets are safe for concurrent reads; conversions (ToSparse,
// ToDense) mutate the cache and must not race with readers.
type VertexSubset struct {
	n      int
	size   int
	sparse []uint32       // nil when unknown
	dense  *bitset.Bitset // nil when unknown
}

// NewEmpty returns the empty subset over n vertices.
func NewEmpty(n int) *VertexSubset {
	return &VertexSubset{n: n, size: 0, sparse: []uint32{}}
}

// NewSingle returns the subset {v} over n vertices.
func NewSingle(n int, v uint32) *VertexSubset {
	if int(v) >= n {
		panic("core: vertex out of range")
	}
	return &VertexSubset{n: n, size: 1, sparse: []uint32{v}}
}

// NewSparse wraps a sparse ID array (takes ownership; IDs must be unique
// and < n, which is the caller's responsibility as in Ligra). A nil slice
// is a valid empty subset.
func NewSparse(n int, ids []uint32) *VertexSubset {
	if ids == nil {
		ids = []uint32{}
	}
	return &VertexSubset{n: n, size: len(ids), sparse: ids}
}

// NewDense wraps a dense bit vector of length n (takes ownership).
func NewDense(n int, bits *bitset.Bitset) *VertexSubset {
	if bits.Len() != n {
		panic("core: dense bit vector length mismatch")
	}
	return &VertexSubset{n: n, size: bits.Count(), dense: bits}
}

// NewAll returns the subset containing every vertex in [0, n).
func NewAll(n int) *VertexSubset {
	b := bitset.New(n)
	b.SetAll()
	return &VertexSubset{n: n, size: n, dense: b}
}

// NewFromFunc returns the subset of vertices v in [0, n) with pred(v) true.
func NewFromFunc(n int, pred func(v uint32) bool) *VertexSubset {
	b := bitset.New(n)
	count := parallel.CountFunc(n, func(i int) bool {
		if pred(uint32(i)) {
			b.SetAtomic(i)
			return true
		}
		return false
	})
	return &VertexSubset{n: n, size: count, dense: b}
}

// UniverseSize returns n, the size of the vertex ID space.
func (vs *VertexSubset) UniverseSize() int { return vs.n }

// Size returns the number of vertices in the subset.
func (vs *VertexSubset) Size() int { return vs.size }

// IsEmpty reports whether the subset is empty.
func (vs *VertexSubset) IsEmpty() bool { return vs.size == 0 }

// HasSparse reports whether the sparse representation is materialized.
func (vs *VertexSubset) HasSparse() bool { return vs.sparse != nil }

// HasDense reports whether the dense representation is materialized.
func (vs *VertexSubset) HasDense() bool { return vs.dense != nil }

// ToSparse materializes (and caches) the sparse ID array, in increasing
// vertex order. The returned slice must not be mutated.
func (vs *VertexSubset) ToSparse() []uint32 {
	if vs.sparse == nil {
		vs.sparse = packBits(vs.dense)
	}
	return vs.sparse
}

// packBits converts a dense bit vector to its sorted ID array one word at
// a time: an exclusive scan over per-word popcounts sizes the output to
// exactly the member count (no full-universe allocation for tiny
// frontiers), then every word decodes its set bits into its own slot
// range independently.
func packBits(b *bitset.Bitset) []uint32 {
	words := b.Words()
	offsets, total := parallel.ScanFunc(len(words), func(wi int) int64 {
		return int64(bits.OnesCount64(words[wi]))
	})
	if total == 0 {
		return []uint32{}
	}
	out := make([]uint32, total)
	parallel.ForRange(len(words), func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			w := words[wi]
			if w == 0 {
				continue
			}
			k := offsets[wi]
			base := uint32(wi * 64)
			for w != 0 {
				out[k] = base + uint32(bits.TrailingZeros64(w))
				k++
				w &= w - 1
			}
		}
	})
	return out
}

// ToDense materializes (and caches) the dense bit vector. The returned
// bitset must not be mutated.
func (vs *VertexSubset) ToDense() *bitset.Bitset {
	if vs.dense == nil {
		b := bitset.New(vs.n)
		ids := vs.sparse
		parallel.For(len(ids), func(i int) {
			b.SetAtomic(int(ids[i]))
		})
		vs.dense = b
	}
	return vs.dense
}

// Contains reports whether v is in the subset.
func (vs *VertexSubset) Contains(v uint32) bool {
	if vs.dense != nil {
		return vs.dense.Get(int(v))
	}
	for _, x := range vs.sparse {
		if x == v {
			return true
		}
	}
	return false
}

// ForEach calls fn for every member vertex, in parallel. Dense subsets
// are walked a word at a time, skipping empty words entirely.
func (vs *VertexSubset) ForEach(fn func(v uint32)) {
	if err := vs.ForEachCtx(nil, fn); err != nil {
		panic(err)
	}
}

// ForEachCtx is ForEach with cooperative cancellation: ctx (nil =
// background) is checked at chunk granularity, and a panic in fn is
// returned as a *parallel.PanicError instead of propagating.
func (vs *VertexSubset) ForEachCtx(ctx context.Context, fn func(v uint32)) error {
	if vs.sparse != nil {
		ids := vs.sparse
		return parallel.ForCtx(ctx, len(ids), func(i int) { fn(ids[i]) })
	}
	words := vs.dense.Words()
	return parallel.ForRangeCtx(ctx, len(words), func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			w := words[wi]
			base := uint32(wi * 64)
			for w != 0 {
				fn(base + uint32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	})
}

// ForEachSeq calls fn for every member vertex sequentially in increasing
// order when dense (or insertion order when sparse).
func (vs *VertexSubset) ForEachSeq(fn func(v uint32)) {
	if vs.sparse != nil {
		for _, v := range vs.sparse {
			fn(v)
		}
		return
	}
	vs.dense.ForEachSet(func(i int) { fn(uint32(i)) })
}

// Clone returns an independent copy of the subset.
func (vs *VertexSubset) Clone() *VertexSubset {
	c := &VertexSubset{n: vs.n, size: vs.size}
	if vs.sparse != nil {
		c.sparse = append([]uint32(nil), vs.sparse...)
	}
	if vs.dense != nil {
		b := bitset.New(vs.n)
		b.CopyFrom(vs.dense)
		c.dense = b
	}
	return c
}
