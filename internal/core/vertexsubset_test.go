package core

import (
	"os"
	"sort"
	"testing"
	"testing/quick"

	"ligra/internal/bitset"
	"ligra/internal/parallel"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

func TestEmptyAndSingle(t *testing.T) {
	e := NewEmpty(10)
	if !e.IsEmpty() || e.Size() != 0 || e.UniverseSize() != 10 {
		t.Error("empty subset malformed")
	}
	s := NewSingle(10, 3)
	if s.Size() != 1 || !s.Contains(3) || s.Contains(4) {
		t.Error("single subset malformed")
	}
}

func TestNewSinglePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSingle(5, 5)
}

func TestSparseDenseRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		// Dedup raw into a sorted unique set.
		seen := map[uint32]bool{}
		var ids []uint32
		for _, r := range raw {
			v := uint32(r)
			if !seen[v] {
				seen[v] = true
				ids = append(ids, v)
			}
		}
		vs := NewSparse(n, ids)
		if vs.Size() != len(ids) {
			return false
		}
		d := vs.ToDense()
		for v := range seen {
			if !d.Get(int(v)) {
				return false
			}
		}
		if d.Count() != len(ids) {
			return false
		}
		// Round-trip through a fresh dense-only subset.
		b := bitset.New(n)
		for v := range seen {
			b.Set(int(v))
		}
		vs2 := NewDense(n, b)
		back := append([]uint32(nil), vs2.ToSparse()...)
		sort.Slice(back, func(i, j int) bool { return back[i] < back[j] })
		want := append([]uint32(nil), ids...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(back) != len(want) {
			return false
		}
		for i := range want {
			if back[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewAll(t *testing.T) {
	vs := NewAll(1000)
	if vs.Size() != 1000 {
		t.Fatalf("Size = %d", vs.Size())
	}
	if !vs.Contains(0) || !vs.Contains(999) {
		t.Error("NewAll missing members")
	}
	if got := len(vs.ToSparse()); got != 1000 {
		t.Errorf("sparse length %d", got)
	}
}

func TestNewFromFunc(t *testing.T) {
	vs := NewFromFunc(100, func(v uint32) bool { return v%7 == 0 })
	want := (100 + 6) / 7
	if vs.Size() != want {
		t.Errorf("Size = %d, want %d", vs.Size(), want)
	}
	if !vs.Contains(0) || !vs.Contains(98) || vs.Contains(1) {
		t.Error("membership wrong")
	}
}

func TestForEachVisitsAll(t *testing.T) {
	vs := NewFromFunc(5000, func(v uint32) bool { return v%3 == 0 })
	var visits []int32 = make([]int32, 5000)
	vs.ForEach(func(v uint32) { visits[v]++ })
	for v := 0; v < 5000; v++ {
		want := int32(0)
		if v%3 == 0 {
			want = 1
		}
		if visits[v] != want {
			t.Fatalf("vertex %d visited %d times, want %d", v, visits[v], want)
		}
	}
	// Sequential variant, sparse representation.
	sp := NewSparse(10, []uint32{4, 2, 9})
	var order []uint32
	sp.ForEachSeq(func(v uint32) { order = append(order, v) })
	if len(order) != 3 || order[0] != 4 || order[1] != 2 || order[2] != 9 {
		t.Errorf("sparse ForEachSeq order = %v", order)
	}
}

func TestClone(t *testing.T) {
	vs := NewSparse(10, []uint32{1, 2, 3})
	vs.ToDense() // materialize both
	c := vs.Clone()
	if c.Size() != 3 || !c.Contains(2) {
		t.Error("clone wrong")
	}
	// Mutating the clone's dense form must not affect the original.
	c.ToDense().Set(9)
	if vs.Contains(9) {
		t.Error("clone aliases original")
	}
}

func TestVertexFilter(t *testing.T) {
	// Sparse input.
	sp := NewSparse(100, []uint32{1, 2, 3, 4, 5})
	f1 := VertexFilter(sp, func(v uint32) bool { return v%2 == 0 })
	if f1.Size() != 2 || !f1.Contains(2) || !f1.Contains(4) {
		t.Error("sparse filter wrong")
	}
	// Dense input.
	dn := NewFromFunc(100, func(v uint32) bool { return v < 10 })
	f2 := VertexFilter(dn, func(v uint32) bool { return v >= 5 })
	if f2.Size() != 5 || !f2.Contains(5) || f2.Contains(4) {
		t.Error("dense filter wrong")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSparse(20, []uint32{1, 2, 3})
	b := NewSparse(20, []uint32{3, 4})
	u := Union(a, b)
	if u.Size() != 4 || !u.Contains(1) || !u.Contains(4) {
		t.Error("union wrong")
	}
	i := Intersect(a, b)
	if i.Size() != 1 || !i.Contains(3) {
		t.Error("intersect wrong")
	}
	d := Difference(a, b)
	if d.Size() != 2 || !d.Contains(1) || !d.Contains(2) || d.Contains(3) {
		t.Error("difference wrong")
	}
}

func TestSetAlgebraUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Union(NewEmpty(5), NewEmpty(6))
}

func TestVertexMap(t *testing.T) {
	vs := NewSparse(10, []uint32{0, 5, 9})
	sum := make([]int32, 10)
	VertexMap(vs, func(v uint32) { sum[v] = int32(v) * 2 })
	if sum[5] != 10 || sum[9] != 18 || sum[1] != 0 {
		t.Error("VertexMap wrong")
	}
}
