// Package delta adds a mutation path to Ligra's otherwise read-only
// graphs: versioned immutable snapshots plus a batched edge
// insert/delete log, in the shape shared-memory streaming systems
// converge on (the streaming-graph survey by Besta et al. and BLADYG in
// PAPERS.md). A Store wraps any graph.View — heap CSR, compressed, or
// mmap-backed — and applies update batches by building an overlay view:
// the base stays untouched, and only the adjacency rows the batch
// dirtied are replaced by freshly built rows. Readers pin the snapshot
// they started on and never block on writers; once the accumulated
// churn crosses a threshold, compaction walks the current view and
// materializes a flat CSR snapshot.
//
// The package also exploits the delta log for incremental
// recomputation: IncrementalCC re-unions only vertices touched by the
// batch, and IncrementalPageRank reseeds PageRank-Delta from the
// dirtied vertices (inc.go).
package delta

import (
	"errors"
	"fmt"
	"sort"

	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// MaxVertexID caps the vertex ID space at 32 bits, matching the graph
// builder.
const MaxVertexID = 1<<31 - 1

// EdgeOp is one edge mutation. For symmetric (undirected) graphs an op
// names the undirected edge {Src, Dst} and is applied in both
// directions; for directed graphs it names the directed edge Src->Dst.
// Inserting an edge that already exists and deleting one that does not
// are no-ops (counted as ignored, not errors), so batches are
// idempotent under replay. Deletes match by endpoints regardless of
// weight. Weight is ignored on unweighted graphs.
type EdgeOp struct {
	Src    uint32 `json:"src"`
	Dst    uint32 `json:"dst"`
	Weight int32  `json:"weight,omitempty"`
	Del    bool   `json:"del,omitempty"`
}

// ValidateOps rejects ops no graph can apply: self-loops and endpoints
// beyond the 32-bit vertex ID space. Endpoints past the current vertex
// count are legal — they grow the graph.
func ValidateOps(ops []EdgeOp) error {
	for i, op := range ops {
		if op.Src == op.Dst {
			return fmt.Errorf("op %d: self-loop %d->%d rejected", i, op.Src, op.Dst)
		}
		if op.Src > MaxVertexID || op.Dst > MaxVertexID {
			return fmt.Errorf("op %d: vertex beyond 32-bit ID space", i)
		}
	}
	return nil
}

// row is one replacement adjacency row: targets sorted ascending,
// weights parallel (nil on unweighted graphs). Rows built by apply are
// sets — a batch that touches a row also deduplicates it.
type row struct {
	targets []uint32
	weights []int32
}

// overlay is a graph.View layered over a base view: adjacency rows the
// delta log dirtied are replaced wholesale, everything else reads
// through. It is immutable after construction (apply builds a new
// overlay per batch, sharing untouched rows), so concurrent traversal
// needs no synchronization — the same contract as *graph.Graph.
type overlay struct {
	base  graph.View
	baseN int
	n     int
	m     int64
	// out/in map a dirty vertex to its full replacement row. in is nil
	// for symmetric graphs (out serves both directions).
	out map[uint32]row
	in  map[uint32]row

	weighted, symmetric bool
	// churn accumulates effective ops applied since the base was last
	// materialized; compaction triggers on it.
	churn int64
}

var _ graph.View = (*overlay)(nil)

func (o *overlay) NumVertices() int { return o.n }
func (o *overlay) NumEdges() int64  { return o.m }
func (o *overlay) Weighted() bool   { return o.weighted }
func (o *overlay) Symmetric() bool  { return o.symmetric }

func (o *overlay) OutDegree(v uint32) int {
	if r, ok := o.out[v]; ok {
		return len(r.targets)
	}
	if int(v) < o.baseN {
		return o.base.OutDegree(v)
	}
	return 0
}

func (o *overlay) InDegree(v uint32) int {
	if o.symmetric {
		return o.OutDegree(v)
	}
	if r, ok := o.in[v]; ok {
		return len(r.targets)
	}
	if int(v) < o.baseN {
		return o.base.InDegree(v)
	}
	return 0
}

func (r row) iterate(fn func(d uint32, w int32) bool) {
	if r.weights == nil {
		for _, d := range r.targets {
			if !fn(d, 1) {
				return
			}
		}
		return
	}
	for i, d := range r.targets {
		if !fn(d, r.weights[i]) {
			return
		}
	}
}

func (o *overlay) OutNeighbors(v uint32, fn func(d uint32, w int32) bool) {
	if r, ok := o.out[v]; ok {
		r.iterate(fn)
		return
	}
	if int(v) < o.baseN {
		o.base.OutNeighbors(v, fn)
	}
}

func (o *overlay) InNeighbors(v uint32, fn func(s uint32, w int32) bool) {
	if o.symmetric {
		o.OutNeighbors(v, fn)
		return
	}
	if r, ok := o.in[v]; ok {
		r.iterate(fn)
		return
	}
	if int(v) < o.baseN {
		o.base.InNeighbors(v, fn)
	}
}

// MemoryFootprint estimates heap bytes: the base's footprint plus the
// replacement rows.
func (o *overlay) MemoryFootprint() int64 {
	var total int64
	if f, ok := o.base.(interface{ MemoryFootprint() int64 }); ok {
		total = f.MemoryFootprint()
	}
	perEdge := int64(4)
	if o.weighted {
		perEdge += 4
	}
	for _, r := range o.out {
		total += 48 + perEdge*int64(len(r.targets))
	}
	for _, r := range o.in {
		total += 48 + perEdge*int64(len(r.targets))
	}
	return total
}

// FormatName reports the base backend's format with a "+delta" suffix,
// so /metrics shows which graphs carry un-compacted updates.
func (o *overlay) FormatName() string {
	base := "csr"
	if f, ok := o.base.(interface{ FormatName() string }); ok {
		base = f.FormatName()
	}
	return base + "+delta"
}

// MappedBytes passes through the base's mmap residency: an overlay over
// a mapped graph still reads the mapping.
func (o *overlay) MappedBytes() int64 {
	if f, ok := o.base.(interface{ MappedBytes() int64 }); ok {
		return f.MappedBytes()
	}
	return 0
}

// DirtyRows reports how many adjacency rows the overlay replaces.
func (o *overlay) DirtyRows() int { return len(o.out) + len(o.in) }

// applyStats summarizes one batch application.
type applyStats struct {
	inserted int64 // effective directed edges added
	deleted  int64 // effective directed edges removed
	ignored  int64 // no-op ops (insert-existing / delete-missing)
}

// opRef is one directed op in batch order, grouped per source row.
type opRef struct {
	dst uint32
	w   int32
	del bool
	seq int
}

// apply layers ops over prev, returning the new view, the effective
// directed ops (for symmetric graphs each effective undirected op
// appears once per direction), and counts. prev is not modified. The
// returned view shares the untouched rows of prev, so it is cheap in
// the number of dirtied rows, not in |V| or |E|.
func apply(prev graph.View, ops []EdgeOp) (graph.View, []EdgeOp, applyStats) {
	symmetric, weighted := prev.Symmetric(), prev.Weighted()
	prevN := prev.NumVertices()

	// Group directed ops by source row, preserving batch order within a
	// row so insert-then-delete and delete-then-insert resolve the way
	// the client wrote them. For symmetric graphs both directions of an
	// op see the same subsequence, so the two rows decide consistently.
	byRow := make(map[uint32][]opRef)
	n := prevN
	for seq, op := range ops {
		byRow[op.Src] = append(byRow[op.Src], opRef{dst: op.Dst, w: op.Weight, del: op.Del, seq: seq})
		if symmetric {
			byRow[op.Dst] = append(byRow[op.Dst], opRef{dst: op.Src, w: op.Weight, del: op.Del, seq: seq})
		}
		if int(op.Src) >= n {
			n = int(op.Src) + 1
		}
		if int(op.Dst) >= n {
			n = int(op.Dst) + 1
		}
	}

	next := &overlay{
		base:      prev,
		baseN:     prevN,
		n:         n,
		m:         prev.NumEdges(),
		weighted:  weighted,
		symmetric: symmetric,
	}
	// Flatten overlay-over-overlay: share the previous overlay's base
	// and clone its row maps, so chains of batches never deepen the
	// read path past one indirection.
	if po, ok := prev.(*overlay); ok {
		next.base, next.baseN = po.base, po.baseN
		next.out = make(map[uint32]row, len(po.out)+len(byRow))
		for v, r := range po.out {
			next.out[v] = r
		}
		if !symmetric {
			next.in = make(map[uint32]row, len(po.in)+len(byRow))
			for v, r := range po.in {
				next.in[v] = r
			}
		}
		next.churn = po.churn
	} else {
		next.out = make(map[uint32]row, len(byRow))
		if !symmetric {
			next.in = make(map[uint32]row, len(byRow))
		}
	}

	var stats applyStats
	var eff []EdgeOp
	for v, refs := range byRow {
		oldDeg := 0
		if int(v) < prev.NumVertices() {
			oldDeg = prev.OutDegree(v)
		}
		cur := make(map[uint32]int32, oldDeg+len(refs))
		if int(v) < prev.NumVertices() {
			prev.OutNeighbors(v, func(d uint32, w int32) bool {
				cur[d] = w
				return true
			})
		}
		// Apply in batch order; membership decides effectiveness.
		sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })
		for _, ref := range refs {
			_, present := cur[ref.dst]
			if ref.del {
				if !present {
					stats.ignored++
					continue
				}
				delete(cur, ref.dst)
				stats.deleted++
				eff = append(eff, EdgeOp{Src: v, Dst: ref.dst, Del: true})
			} else {
				if present {
					stats.ignored++
					continue
				}
				w := ref.w
				if !weighted {
					w = 1
				}
				cur[ref.dst] = w
				stats.inserted++
				eff = append(eff, EdgeOp{Src: v, Dst: ref.dst, Weight: w})
			}
		}
		nr := row{targets: make([]uint32, 0, len(cur))}
		for d := range cur {
			nr.targets = append(nr.targets, d)
		}
		sort.Slice(nr.targets, func(i, j int) bool { return nr.targets[i] < nr.targets[j] })
		if weighted {
			nr.weights = make([]int32, len(nr.targets))
			for i, d := range nr.targets {
				nr.weights[i] = cur[d]
			}
		}
		next.out[v] = nr
		next.m += int64(len(nr.targets) - oldDeg)
	}

	// Directed graphs mirror the effective ops onto the in-rows so pull
	// traversals see the same edge set as push traversals.
	if !symmetric {
		byDst := make(map[uint32][]EdgeOp)
		for _, e := range eff {
			byDst[e.Dst] = append(byDst[e.Dst], e)
		}
		for v, es := range byDst {
			cur := make(map[uint32]int32)
			if int(v) < prev.NumVertices() {
				prev.InNeighbors(v, func(s uint32, w int32) bool {
					cur[s] = w
					return true
				})
			}
			for _, e := range es {
				if e.Del {
					delete(cur, e.Src)
				} else {
					cur[e.Src] = e.Weight
				}
			}
			nr := row{targets: make([]uint32, 0, len(cur))}
			for s := range cur {
				nr.targets = append(nr.targets, s)
			}
			sort.Slice(nr.targets, func(i, j int) bool { return nr.targets[i] < nr.targets[j] })
			if weighted {
				nr.weights = make([]int32, len(nr.targets))
				for i, s := range nr.targets {
					nr.weights[i] = cur[s]
				}
			}
			next.in[v] = nr
		}
	}
	next.churn += stats.inserted + stats.deleted
	return next, eff, stats
}

// Materialize walks v and lays it out as a flat heap CSR graph — the
// compaction step that collapses an overlay chain (or converts any
// backend, e.g. a compressed/mmap view, into mutable-friendly CSR).
// The result is independent of v's backing storage.
func Materialize(v graph.View) (*graph.Graph, error) {
	n := v.NumVertices()
	if n == 0 {
		return nil, errors.New("delta: cannot materialize an empty view")
	}
	offsets := make([]int64, n+1)
	parallel.For(n, func(i int) { offsets[i+1] = int64(v.OutDegree(uint32(i))) })
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	m := offsets[n]
	edges := make([]uint32, m)
	var weights []int32
	if v.Weighted() {
		weights = make([]int32, m)
	}
	parallel.For(n, func(i int) {
		k := offsets[i]
		v.OutNeighbors(uint32(i), func(d uint32, w int32) bool {
			edges[k] = d
			if weights != nil {
				weights[k] = w
			}
			k++
			return true
		})
	})
	return graph.FromCSR(offsets, edges, weights, v.Symmetric())
}
