package delta

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"ligra/internal/compress"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// edgeKey identifies a directed edge.
type edgeKey struct{ s, d uint32 }

// refGraph is an oracle edge-set the tests mutate alongside a Store.
type refGraph struct {
	n         int
	symmetric bool
	weighted  bool
	edges     map[edgeKey]int32 // directed presence (both dirs for symmetric)
}

func newRef(v graph.View) *refGraph {
	r := &refGraph{
		n:         v.NumVertices(),
		symmetric: v.Symmetric(),
		weighted:  v.Weighted(),
		edges:     make(map[edgeKey]int32),
	}
	for s := 0; s < r.n; s++ {
		v.OutNeighbors(uint32(s), func(d uint32, w int32) bool {
			r.edges[edgeKey{uint32(s), d}] = w
			return true
		})
	}
	return r
}

// apply mirrors the documented /update semantics onto the oracle.
func (r *refGraph) apply(ops []EdgeOp) {
	do := func(s, d uint32, w int32, del bool) {
		k := edgeKey{s, d}
		_, present := r.edges[k]
		if del {
			if present {
				delete(r.edges, k)
			}
			return
		}
		if !present {
			if !r.weighted {
				w = 1
			}
			r.edges[k] = w
		}
	}
	for _, op := range ops {
		do(op.Src, op.Dst, op.Weight, op.Del)
		if r.symmetric {
			do(op.Dst, op.Src, op.Weight, op.Del)
		}
		if int(op.Src) >= r.n {
			r.n = int(op.Src) + 1
		}
		if int(op.Dst) >= r.n {
			r.n = int(op.Dst) + 1
		}
	}
}

// assertViewMatches checks v against the oracle row by row.
func assertViewMatches(t *testing.T, v graph.View, r *refGraph) {
	t.Helper()
	if v.NumVertices() != r.n {
		t.Fatalf("NumVertices = %d, oracle %d", v.NumVertices(), r.n)
	}
	if v.NumEdges() != int64(len(r.edges)) {
		t.Fatalf("NumEdges = %d, oracle %d", v.NumEdges(), len(r.edges))
	}
	inSeen := make(map[edgeKey]int32)
	for s := 0; s < r.n; s++ {
		var lastD int64 = -1
		deg := 0
		v.OutNeighbors(uint32(s), func(d uint32, w int32) bool {
			deg++
			if int64(d) <= lastD {
				// Overlay rows promise sorted, deduplicated targets;
				// base CSR rows from the builders are sorted too.
				t.Fatalf("row %d not strictly ascending at %d", s, d)
			}
			lastD = int64(d)
			want, ok := r.edges[edgeKey{uint32(s), d}]
			if !ok {
				t.Fatalf("edge %d->%d present in view, absent in oracle", s, d)
			}
			if r.weighted && w != want {
				t.Fatalf("edge %d->%d weight %d, oracle %d", s, d, w, want)
			}
			return true
		})
		if deg != v.OutDegree(uint32(s)) {
			t.Fatalf("vertex %d: OutDegree %d but iterated %d", s, v.OutDegree(uint32(s)), deg)
		}
		v.InNeighbors(uint32(s), func(src uint32, w int32) bool {
			inSeen[edgeKey{src, uint32(s)}] = w
			return true
		})
		if v.InDegree(uint32(s)) != inDegreeOracle(r, uint32(s)) {
			t.Fatalf("vertex %d: InDegree %d, oracle %d", s, v.InDegree(uint32(s)), inDegreeOracle(r, uint32(s)))
		}
	}
	if len(inSeen) != len(r.edges) {
		t.Fatalf("in-edge iteration saw %d edges, oracle %d", len(inSeen), len(r.edges))
	}
	for k, w := range inSeen {
		want, ok := r.edges[k]
		if !ok {
			t.Fatalf("in-edge %v absent in oracle", k)
		}
		if r.weighted && w != want {
			t.Fatalf("in-edge %v weight %d, oracle %d", k, w, want)
		}
	}
}

func inDegreeOracle(r *refGraph, v uint32) int {
	c := 0
	for k := range r.edges {
		if k.d == v {
			c++
		}
	}
	return c
}

func mustRMAT(t *testing.T, scale int) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(scale, 8, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomOps draws a mix of inserts (random endpoints, may already
// exist) and deletes (half targeting real edges, half random misses).
func randomOps(rng *rand.Rand, v graph.View, count int) []EdgeOp {
	n := v.NumVertices()
	ops := make([]EdgeOp, 0, count)
	for len(ops) < count {
		s := uint32(rng.Intn(n))
		d := uint32(rng.Intn(n))
		if s == d {
			continue
		}
		switch rng.Intn(4) {
		case 0, 1: // insert
			ops = append(ops, EdgeOp{Src: s, Dst: d, Weight: int32(rng.Intn(100) + 1)})
		case 2: // delete an edge that likely exists
			if deg := v.OutDegree(s); deg > 0 {
				i, j := 0, rng.Intn(deg)
				v.OutNeighbors(s, func(dd uint32, _ int32) bool {
					if i == j {
						d = dd
						return false
					}
					i++
					return true
				})
				if s != d {
					ops = append(ops, EdgeOp{Src: s, Dst: d, Del: true})
				}
			}
		case 3: // delete, probably missing (must be a counted no-op)
			ops = append(ops, EdgeOp{Src: s, Dst: d, Del: true})
		}
	}
	return ops
}

func TestApplyMatchesOracleSymmetric(t *testing.T) {
	g := mustRMAT(t, 8)
	st := NewStore(g, Config{InitialVersion: 1})
	ref := newRef(g)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 6; round++ {
		cur, _ := st.Current()
		ops := randomOps(rng, cur, 200)
		res, err := st.Update(context.Background(), ops)
		if err != nil {
			t.Fatal(err)
		}
		ref.apply(ops)
		cur, ver := st.Current()
		if res.Version != ver {
			t.Fatalf("result version %d, store version %d", res.Version, ver)
		}
		assertViewMatches(t, cur, ref)
	}
}

func TestApplyMatchesOracleDirected(t *testing.T) {
	g, err := gen.RMATDirected(8, 8, gen.PBBSRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(g, Config{InitialVersion: 1})
	ref := newRef(g)
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 6; round++ {
		cur, _ := st.Current()
		ops := randomOps(rng, cur, 150)
		if _, err := st.Update(context.Background(), ops); err != nil {
			t.Fatal(err)
		}
		ref.apply(ops)
		cur, _ = st.Current()
		assertViewMatches(t, cur, ref)
	}
}

func TestApplyWeighted(t *testing.T) {
	g := mustRMAT(t, 6).AddWeights(graph.HashWeight(50))
	st := NewStore(g, Config{InitialVersion: 1})
	ref := newRef(g)
	ops := []EdgeOp{
		{Src: 0, Dst: uint32(g.NumVertices() - 1), Weight: 7},
		{Src: 1, Dst: uint32(g.NumVertices() - 2), Weight: 9},
	}
	if _, err := st.Update(context.Background(), ops); err != nil {
		t.Fatal(err)
	}
	ref.apply(ops)
	cur, _ := st.Current()
	assertViewMatches(t, cur, ref)
	if !cur.Weighted() {
		t.Fatal("overlay dropped Weighted")
	}
}

func TestVertexGrowth(t *testing.T) {
	g := mustRMAT(t, 6)
	n0 := g.NumVertices()
	st := NewStore(g, Config{InitialVersion: 1})
	ref := newRef(g)
	ops := []EdgeOp{{Src: 3, Dst: uint32(n0 + 5)}}
	res, err := st.Update(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vertices != n0+6 {
		t.Fatalf("vertices = %d, want %d", res.Vertices, n0+6)
	}
	ref.apply(ops)
	cur, _ := st.Current()
	assertViewMatches(t, cur, ref)
	if got := cur.OutDegree(uint32(n0 + 5)); got != 1 {
		t.Fatalf("new vertex out-degree %d, want 1 (symmetric reverse edge)", got)
	}
}

func TestNoOpBatchSpendsNoVersion(t *testing.T) {
	g := mustRMAT(t, 6)
	st := NewStore(g, Config{InitialVersion: 5})
	// An edge that exists (insert must be ignored) and one that does not
	// (delete must be ignored).
	var have EdgeOp
	g.OutNeighbors(0, func(d uint32, _ int32) bool {
		have = EdgeOp{Src: 0, Dst: d}
		return false
	})
	adj := make(map[uint32]bool)
	g.OutNeighbors(1, func(d uint32, _ int32) bool { adj[d] = true; return true })
	miss := EdgeOp{Del: true}
	for d := uint32(0); int(d) < g.NumVertices(); d++ {
		if d != 1 && !adj[d] {
			miss.Src, miss.Dst = 1, d
			break
		}
	}
	res, err := st.Update(context.Background(), []EdgeOp{have, miss})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Deleted != 0 {
		t.Fatalf("no-op batch counted effective ops: %+v", res)
	}
	if res.Ignored == 0 {
		t.Fatalf("expected ignored ops, got %+v", res)
	}
	if res.Version != 5 {
		t.Fatalf("pure no-op batch bumped version to %d", res.Version)
	}
	if _, ver := st.Current(); ver != 5 {
		t.Fatalf("store version moved to %d on a no-op batch", ver)
	}
}

func TestValidateOps(t *testing.T) {
	if err := ValidateOps([]EdgeOp{{Src: 4, Dst: 4}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := ValidateOps([]EdgeOp{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeEqualsOverlay(t *testing.T) {
	g := mustRMAT(t, 8)
	st := NewStore(g, Config{InitialVersion: 1, Policy: Policy{CompactEvery: -1}})
	ref := newRef(g)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		cur, _ := st.Current()
		ops := randomOps(rng, cur, 300)
		if _, err := st.Update(context.Background(), ops); err != nil {
			t.Fatal(err)
		}
		ref.apply(ops)
	}
	cur, _ := st.Current()
	if _, ok := cur.(*overlay); !ok {
		t.Fatalf("expected overlay with compaction off, got %T", cur)
	}
	csr, err := Materialize(cur)
	if err != nil {
		t.Fatal(err)
	}
	assertViewMatches(t, csr, ref)
}

func TestCompactionTriggers(t *testing.T) {
	g := mustRMAT(t, 8)
	st := NewStore(g, Config{InitialVersion: 1, Policy: Policy{CompactEvery: 50}})
	ref := newRef(g)
	rng := rand.New(rand.NewSource(5))
	cur, _ := st.Current()
	ops := randomOps(rng, cur, 200)
	res, err := st.Update(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("expected compaction at churn>=50: %+v", res)
	}
	if st.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d", st.Stats().Compactions)
	}
	ref.apply(ops)
	cur, _ = st.Current()
	if _, ok := cur.(*graph.Graph); !ok {
		t.Fatalf("expected materialized CSR after compaction, got %T", cur)
	}
	assertViewMatches(t, cur, ref)
}

func TestGroupCommitCoalesces(t *testing.T) {
	g := mustRMAT(t, 6)
	st := NewStore(g, Config{InitialVersion: 1, Policy: Policy{Window: 30 * time.Millisecond}})
	const writers = 8
	results := make(chan ApplyResult, writers)
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			res, err := st.Update(context.Background(),
				[]EdgeOp{{Src: uint32(i), Dst: uint32(i + 100)}})
			results <- res
			errs <- err
		}(i)
	}
	versions := make(map[uint64]int)
	batched := 0
	for i := 0; i < writers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		res := <-results
		versions[res.Version]++
		if res.Requests > batched {
			batched = res.Requests
		}
	}
	if len(versions) == writers {
		t.Fatalf("no coalescing: %d distinct versions for %d concurrent writers", len(versions), writers)
	}
	if batched < 2 {
		t.Fatalf("expected at least one multi-request commit, max requests_batched = %d", batched)
	}
}

func TestUpdateBacklogRejects(t *testing.T) {
	g := mustRMAT(t, 6)
	st := NewStore(g, Config{InitialVersion: 1, Policy: Policy{Window: 100 * time.Millisecond, MaxPending: 3}})
	// Two writers each push 2-op batches: whichever arrives while the
	// other's group-commit window is open exceeds MaxPending=3 and must
	// be turned away with ErrBusy.
	busy := make(chan struct{}, 2)
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func(w int) {
			base := uint32(200 + 10*w)
			for i := uint32(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := st.Update(context.Background(),
					[]EdgeOp{{Src: uint32(w), Dst: base + i%8}, {Src: uint32(w), Dst: base + i%8, Del: true}})
				if errors.Is(err, ErrBusy) {
					busy <- struct{}{}
					return
				}
			}
		}(w)
	}
	select {
	case <-busy:
	case <-time.After(10 * time.Second):
		t.Fatal("backlog never rejected with ErrBusy")
	}
	close(stop)
	if st.Stats().Rejected == 0 {
		t.Fatal("Rejected counter not bumped")
	}
}

func TestStorePinKeepsMmapAlive(t *testing.T) {
	g := mustRMAT(t, 8)
	c, err := compress.Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.gc")
	if err := compress.WriteCompressedFile(path, c); err != nil {
		t.Fatal(err)
	}
	v, err := compress.LoadView(path, true, true)
	if err != nil {
		t.Fatal(err)
	}
	mb, ok := v.(interface{ MappedBytes() int64 })
	if !ok || mb.MappedBytes() == 0 {
		t.Skip("mmap not available on this platform")
	}

	st := NewStore(v, Config{InitialVersion: 1})
	pin, err := st.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// Updates over the mapped base must keep working for the pinned
	// reader even as the store is released (evicted) mid-query.
	if _, err := st.Update(context.Background(), []EdgeOp{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	st.Release()
	if mb.MappedBytes() == 0 {
		t.Fatal("mapping released while a pin was held")
	}
	// The pinned snapshot must stay traversable.
	deg := 0
	pin.View().OutNeighbors(0, func(uint32, int32) bool { deg++; return true })
	if deg != pin.View().OutDegree(0) {
		t.Fatal("pinned view traversal inconsistent")
	}
	pin.Release()
	if mb.MappedBytes() != 0 {
		t.Fatal("mapping not released after last pin detached")
	}
	// Idempotent.
	pin.Release()
	st.Release()
	if _, err := st.Acquire(); err == nil {
		t.Fatal("Acquire succeeded on a released store")
	}
	if _, err := st.Update(context.Background(), []EdgeOp{{Src: 0, Dst: 2}}); err == nil {
		t.Fatal("Update succeeded on a released store")
	}
}

func TestConcurrentReadersNeverBlockOnWriters(t *testing.T) {
	g := mustRMAT(t, 9)
	st := NewStore(g, Config{InitialVersion: 1, Policy: Policy{Window: time.Millisecond}})
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(17))
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur, _ := st.Current()
			st.Update(context.Background(), randomOps(rng, cur, 50))
		}
	}()
	// Readers pin snapshots and verify internal consistency: the edge
	// count iterated must match the snapshot's NumEdges — a torn batch
	// would break that.
	for i := 0; i < 40; i++ {
		pin, err := st.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		v := pin.View()
		var m int64
		for s := 0; s < v.NumVertices(); s++ {
			m += int64(v.OutDegree(uint32(s)))
			v.OutNeighbors(uint32(s), func(uint32, int32) bool { return true })
		}
		if m != v.NumEdges() {
			t.Fatalf("snapshot v%d: degree sum %d != NumEdges %d (half-applied batch?)",
				pin.Version(), m, v.NumEdges())
		}
		pin.Release()
	}
	close(stop)
	<-writerDone
}
