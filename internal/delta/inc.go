package delta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ligra/internal/algo"
	"ligra/internal/atomicx"
	"ligra/internal/core"
	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// errNotIncremental reports that the delta log cannot carry a previous
// result to the requested version (history gap, vertex growth, changed
// parameters); callers fall back to a full recompute.
var errNotIncremental = errors.New("delta: incremental refresh not applicable")

// netOps collapses a replayed op sequence to its net effect: an edge
// toggled an odd number of times nets to its last op, an even number
// nets to nothing. Incremental algorithms care about presence at the
// two endpoints of the version range, not the path between them.
func netOps(ops []EdgeOp) (ins, del []EdgeOp) {
	last := make(map[uint64]int, len(ops)) // edge -> index of last op
	count := make(map[uint64]int, len(ops))
	for i, op := range ops {
		k := uint64(op.Src)<<32 | uint64(op.Dst)
		last[k] = i
		count[k]++
	}
	for k, i := range last {
		if count[k]%2 == 0 {
			continue
		}
		if ops[i].Del {
			del = append(del, ops[i])
		} else {
			ins = append(ins, ops[i])
		}
	}
	return ins, del
}

// maskedView restricts a view to the vertices marked in `in`: edges with
// either endpoint outside the set vanish. Degree methods are left
// unmasked (they only steer edgeMap's direction heuristics, where an
// overestimate is harmless).
type maskedView struct {
	graph.View
	in []bool
}

func (mv maskedView) OutNeighbors(v uint32, fn func(d uint32, w int32) bool) {
	if !mv.in[v] {
		return
	}
	mv.View.OutNeighbors(v, func(d uint32, w int32) bool {
		if !mv.in[d] {
			return true
		}
		return fn(d, w)
	})
}

func (mv maskedView) InNeighbors(s uint32, fn func(d uint32, w int32) bool) {
	if !mv.in[s] {
		return
	}
	mv.View.InNeighbors(s, func(d uint32, w int32) bool {
		if !mv.in[d] {
			return true
		}
		return fn(d, w)
	})
}

// IncrementalCC produces the connected-components labeling of g given
// the labeling prev of an earlier version and the effective ops between
// the two versions. It re-unions only delta-touched vertices: net
// inserts merge component labels through a union-find over label
// values, and net deletes re-propagate labels only inside the old
// components they touched (a masked traversal), so work scales with the
// affected components, not |V|+|E|. The result is bit-identical to a
// full ConnectedComponentsCtx run on g: labels stay "minimum vertex ID
// in the component". g must be symmetric (as connected components
// requires); prev may be shorter than g.NumVertices() when the delta
// grew the graph — new vertices start as their own component.
func IncrementalCC(ctx context.Context, g graph.View, prev []uint32, ops []EdgeOp, opts core.Options) (*algo.CCResult, error) {
	n := g.NumVertices()
	if len(prev) > n {
		return nil, fmt.Errorf("%w: previous labeling has %d vertices, view has %d", errNotIncremental, len(prev), n)
	}
	labels := make([]uint32, n)
	copy(labels, prev)
	for v := len(prev); v < n; v++ {
		labels[v] = uint32(v)
	}

	ins, del := netOps(ops)
	rounds := 0

	// Deletes can split a component, which label propagation cannot
	// undo locally — but only inside the old components the deleted
	// edges belonged to. Those components are closed under surviving
	// old edges (an old edge never leaves its component), so resetting
	// and re-propagating labels within that vertex set, on the new
	// graph, rebuilds exact min-vertex labels for every fragment.
	// Inserted edges crossing out of the set are handled by the union
	// phase below.
	if len(del) > 0 {
		affectedLabels := make(map[uint32]struct{})
		for _, e := range del {
			// A net-deleted edge existed at the old version, so both
			// endpoints are within prev.
			affectedLabels[labels[e.Src]] = struct{}{}
			affectedLabels[labels[e.Dst]] = struct{}{}
		}
		mask := make([]bool, n)
		var affected []uint32
		for v := 0; v < n; v++ {
			if _, ok := affectedLabels[labels[v]]; ok {
				mask[v] = true
				affected = append(affected, uint32(v))
				labels[v] = uint32(v)
			}
		}
		var err error
		rounds, err = maskedCC(ctx, g, labels, affected, mask, opts)
		if err != nil {
			return &algo.CCResult{Labels: labels, Rounds: rounds}, err
		}
	}

	// Union phase: each net-inserted edge merges its endpoints' current
	// labels; min-label union keeps the "minimum vertex in component"
	// invariant, because min(min(A), min(B)) is the minimum of A∪B.
	if len(ins) > 0 {
		parent := make(map[uint32]uint32)
		var find func(x uint32) uint32
		find = func(x uint32) uint32 {
			p, ok := parent[x]
			if !ok || p == x {
				return x
			}
			r := find(p)
			parent[x] = r
			return r
		}
		for _, e := range ins {
			ra, rb := find(labels[e.Src]), find(labels[e.Dst])
			if ra == rb {
				continue
			}
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
		if len(parent) > 0 {
			// Resolve once, then relabel with a read-only map so the
			// pass can run in parallel.
			resolved := make(map[uint32]uint32, len(parent))
			for k := range parent {
				resolved[k] = find(k)
			}
			parallel.For(n, func(i int) {
				if r, ok := resolved[labels[i]]; ok {
					labels[i] = r
				}
			})
		}
	}

	components := parallel.CountFunc(n, func(i int) bool { return labels[i] == uint32(i) })
	return &algo.CCResult{Labels: labels, Components: components, Rounds: rounds}, nil
}

// maskedCC runs min-label propagation over the subgraph induced by the
// masked vertex set, starting from self-labels. Sparse (push) rounds
// only, so cost scales with the masked subgraph, never with |V|.
func maskedCC(ctx context.Context, g graph.View, labels []uint32, affected []uint32, mask []bool, opts core.Options) (int, error) {
	n := g.NumVertices()
	mv := maskedView{View: g, in: mask}
	prev := make([]uint32, n)
	copy(prev, labels)

	update := func(s, d uint32, _ int32) bool {
		sid := atomic.LoadUint32(&labels[s])
		orig := atomic.LoadUint32(&labels[d])
		if atomicx.WriteMinUint32(&labels[d], sid) {
			return orig == prev[d]
		}
		return false
	}
	funcs := core.EdgeFuncs{Update: update, UpdateAtomic: update}
	opts.Mode = core.ForceSparse
	opts.RemoveDuplicates = true

	ids := make([]uint32, len(affected))
	copy(ids, affected)
	frontier := core.NewSparse(n, ids)
	rounds := 0
	for !frontier.IsEmpty() {
		if err := core.VertexMapCtx(ctx, frontier, func(v uint32) { prev[v] = labels[v] }); err != nil {
			return rounds, err
		}
		next, err := core.EdgeMapCtx(ctx, mv, frontier, funcs, opts)
		if err != nil {
			return rounds, err
		}
		frontier = next
		rounds++
	}
	return rounds, nil
}

// IncrementalPageRank refreshes a PageRank-Delta result after a delta
// batch: instead of restarting from the uniform vector, it warm-starts
// from the previous ranks and seeds the delta-propagation frontier with
// the exact contribution changes at the dirtied vertices — a dirty
// source u used to send prev[u]/deg_old(u) along each old out-edge and
// now sends prev[u]/deg_new(u) along each new one; the per-destination
// differences are the initial residual. Convergence then proceeds
// exactly as algo.PageRankDeltaCtx (same fixpoint, no dangling-mass
// term), so the refreshed ranks agree with a full recompute to within
// the combined stopping tolerances. The op list must not grow the graph
// (callers fall back to a full run when |V| changes).
func IncrementalPageRank(ctx context.Context, g graph.View, prevRanks []float64, ops []EdgeOp, opts algo.PageRankOptions, delta float64) (*algo.PageRankResult, error) {
	n := g.NumVertices()
	if n != len(prevRanks) {
		return nil, fmt.Errorf("%w: vertex count changed (%d -> %d)", errNotIncremental, len(prevRanks), n)
	}
	if n == 0 {
		return &algo.PageRankResult{}, nil
	}
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.MaxIterations <= 0 && opts.Epsilon <= 0 {
		opts.MaxIterations = 100
	}
	if delta <= 0 {
		delta = 1e-2
	}

	ins, del := netOps(ops)
	insBySrc := make(map[uint32]map[uint32]bool)
	for _, e := range ins {
		m, ok := insBySrc[e.Src]
		if !ok {
			m = make(map[uint32]bool)
			insBySrc[e.Src] = m
		}
		m[e.Dst] = true
	}
	delBySrc := make(map[uint32][]uint32)
	for _, e := range del {
		delBySrc[e.Src] = append(delBySrc[e.Src], e.Dst)
	}
	dirty := make(map[uint32]struct{}, len(insBySrc)+len(delBySrc))
	for u := range insBySrc {
		dirty[u] = struct{}{}
	}
	for u := range delBySrc {
		dirty[u] = struct{}{}
	}

	p := make([]float64, n)
	copy(p, prevRanks)
	deltas := make([]float64, n)

	for u := range dirty {
		degNew := g.OutDegree(u)
		insSet := insBySrc[u]
		dels := delBySrc[u]
		degOld := degNew - len(insSet) + len(dels)
		var cNew, cOld float64
		if degNew > 0 {
			cNew = prevRanks[u] / float64(degNew)
		}
		if degOld > 0 {
			cOld = prevRanks[u] / float64(degOld)
		}
		g.OutNeighbors(u, func(d uint32, _ int32) bool {
			if insSet[d] {
				deltas[d] += opts.Damping * cNew
			} else {
				deltas[d] += opts.Damping * (cNew - cOld)
			}
			return true
		})
		for _, d := range dels {
			deltas[d] -= opts.Damping * cOld
		}
	}

	errL1 := 0.0
	for i := 0; i < n; i++ {
		if deltas[i] != 0 {
			p[i] += deltas[i]
			errL1 += math.Abs(deltas[i])
		}
	}

	// From here the loop is PageRankDeltaCtx's steady-state iteration:
	// frontier members push deltas[v]/deg(v), destinations fold the
	// damped sum into their rank, and a vertex stays active while its
	// rank moved by more than delta*p[v].
	deltaDiv := make([]float64, n)
	nghSum := atomicx.NewFloat64Slice(n)
	funcs := core.EdgeFuncs{
		Update: func(s, d uint32, _ int32) bool {
			nghSum.AddNonAtomic(int(d), deltaDiv[s])
			return true
		},
		UpdateAtomic: func(s, d uint32, _ int32) bool {
			nghSum.Add(int(d), deltaDiv[s])
			return true
		},
	}
	emOpts := opts.EdgeMap
	emOpts.NoOutput = true

	frontier := core.NewFromFunc(n, func(v uint32) bool {
		return math.Abs(deltas[v]) > delta*p[v]
	})
	iters := 0
	partial := func(err error) (*algo.PageRankResult, error) {
		return &algo.PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, err
	}
	for !frontier.IsEmpty() {
		if opts.MaxIterations > 0 && iters >= opts.MaxIterations {
			break
		}
		if opts.Epsilon > 0 && errL1 < opts.Epsilon {
			break
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return partial(err)
			}
		}
		core.VertexMap(frontier, func(v uint32) {
			if deg := g.OutDegree(v); deg > 0 {
				deltaDiv[v] = deltas[v] / float64(deg)
			} else {
				deltaDiv[v] = 0
			}
		})
		parallel.For(n, func(i int) { nghSum.StoreNonAtomic(i, 0) })
		if _, err := core.EdgeMapCtx(ctx, g, frontier, funcs, emOpts); err != nil {
			return partial(err)
		}
		errL1 = parallel.SumFunc(n, func(i int) float64 {
			change := opts.Damping * nghSum.LoadNonAtomic(i)
			deltas[i] = change
			p[i] += change
			return math.Abs(change)
		})
		frontier = core.NewFromFunc(n, func(v uint32) bool {
			return math.Abs(deltas[v]) > delta*p[v]
		})
		iters++
	}
	return &algo.PageRankResult{Ranks: p, Iterations: iters, Err: errL1}, nil
}

// ccTracker memoizes the last connected-components labeling so the next
// refresh can replay the delta log instead of recomputing.
type ccTracker struct {
	mu         sync.Mutex
	valid      bool
	version    uint64
	labels     []uint32
	components int
}

// prTracker memoizes the last PageRank-Delta ranks, fingerprinted by
// the parameters they were computed with.
type prTracker struct {
	mu          sync.Mutex
	valid       bool
	version     uint64
	fingerprint string
	ranks       []float64
	errL1       float64
}

func (s *Store) countRefresh(incremental bool) {
	s.mu.Lock()
	if incremental {
		s.stats.IncrementalRuns++
	} else {
		s.stats.FullRuns++
	}
	s.mu.Unlock()
}

// RefreshCC returns the connected-components result for the pinned
// snapshot, replaying the delta log over the previous labeling when
// possible (bit-identical to a full run; see IncrementalCC) and falling
// back to algo.ConnectedComponentsCtx otherwise. The boolean reports
// whether the incremental path served the result.
func (s *Store) RefreshCC(ctx context.Context, pin *Pin, opts core.Options) (*algo.CCResult, bool, error) {
	t := &s.cc
	t.mu.Lock()
	defer t.mu.Unlock()
	v, want := pin.View(), pin.Version()
	n := v.NumVertices()

	if t.valid && t.version == want && len(t.labels) == n {
		s.countRefresh(true)
		return &algo.CCResult{Labels: t.labels, Components: t.components}, true, nil
	}
	if t.valid && t.version < want && v.Symmetric() {
		if ops, ok := s.opsBetween(t.version, want); ok {
			res, err := IncrementalCC(ctx, v, t.labels, ops, opts)
			if err == nil {
				t.version, t.labels, t.components = want, res.Labels, res.Components
				s.countRefresh(true)
				return res, true, nil
			}
			if !errors.Is(err, errNotIncremental) {
				// Cancellation mid-replay: surface the partial result
				// under the usual partial-result contract, without
				// advancing the tracker.
				s.countRefresh(true)
				return res, true, err
			}
		}
	}

	res, err := algo.ConnectedComponentsCtx(ctx, v, opts)
	if err == nil && want >= t.version {
		t.valid, t.version = true, want
		t.labels, t.components = res.Labels, res.Components
	}
	s.countRefresh(false)
	return res, false, err
}

// RefreshPageRankDelta is RefreshCC for PageRank-Delta: warm-start plus
// dirty-vertex reseeding when the history covers the gap and the vertex
// count is unchanged, full PageRankDeltaCtx otherwise.
func (s *Store) RefreshPageRankDelta(ctx context.Context, pin *Pin, opts algo.PageRankOptions, delta float64) (*algo.PageRankResult, bool, error) {
	t := &s.pr
	t.mu.Lock()
	defer t.mu.Unlock()
	v, want := pin.View(), pin.Version()
	n := v.NumVertices()
	fp := fmt.Sprintf("%g/%g/%d/%g", opts.Damping, opts.Epsilon, opts.MaxIterations, delta)

	if t.valid && t.fingerprint == fp && t.version == want && len(t.ranks) == n {
		s.countRefresh(true)
		return &algo.PageRankResult{Ranks: t.ranks, Err: t.errL1}, true, nil
	}
	if t.valid && t.fingerprint == fp && t.version < want && len(t.ranks) == n {
		if ops, ok := s.opsBetween(t.version, want); ok {
			res, err := IncrementalPageRank(ctx, v, t.ranks, ops, opts, delta)
			if err == nil {
				t.version, t.ranks, t.errL1 = want, res.Ranks, res.Err
				s.countRefresh(true)
				return res, true, nil
			}
			if !errors.Is(err, errNotIncremental) {
				s.countRefresh(true)
				return res, true, err
			}
		}
	}

	res, err := algo.PageRankDeltaCtx(ctx, v, opts, delta)
	if err == nil && want >= t.version {
		t.valid, t.version, t.fingerprint = true, want, fp
		t.ranks, t.errL1 = res.Ranks, res.Err
	}
	s.countRefresh(false)
	return res, false, err
}
