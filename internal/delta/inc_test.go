package delta

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"ligra/internal/algo"
	"ligra/internal/compress"
	"ligra/internal/core"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// incBackends builds the same symmetric graph behind each View backend
// the property tests must cover: heap CSR, compressed, and mmap.
func incBackends(t *testing.T, g *graph.Graph) map[string]graph.View {
	t.Helper()
	views := map[string]graph.View{"heap": g}
	c, err := compress.Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	views["compressed"] = c
	path := filepath.Join(t.TempDir(), "g.gc")
	if err := compress.WriteCompressedFile(path, c); err != nil {
		t.Fatal(err)
	}
	mm, err := compress.LoadView(path, true, true)
	if err != nil {
		t.Fatal(err)
	}
	views["mmap"] = mm
	return views
}

func incGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rmat, err := gen.RMAT(9, 8, gen.PBBSRMAT, 33)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gen.Grid3D(9)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"rmat": rmat, "grid": grid}
}

// TestIncrementalCCMatchesFull is the headline property test: after each
// randomized insert/delete batch, RefreshCC's incremental replay must
// produce labels bit-identical to a full recompute on the same snapshot.
func TestIncrementalCCMatchesFull(t *testing.T) {
	for gname, g := range incGraphs(t) {
		for bname, base := range incBackends(t, g) {
			t.Run(gname+"/"+bname, func(t *testing.T) {
				st := NewStore(base, Config{InitialVersion: 1, Policy: Policy{CompactEvery: -1, HistoryDepth: 16}})
				defer st.Release()
				pin, err := st.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				// Prime the tracker with a full run at v1.
				res, incremental, err := st.RefreshCC(context.Background(), pin, core.Options{})
				pin.Release()
				if err != nil {
					t.Fatal(err)
				}
				if incremental {
					t.Fatal("first refresh claimed to be incremental")
				}
				if res.Components == 0 {
					t.Fatal("no components")
				}

				rng := rand.New(rand.NewSource(int64(len(gname) + len(bname))))
				sawIncremental := false
				for round := 0; round < 5; round++ {
					cur, _ := st.Current()
					ops := randomOps(rng, cur, 120)
					if _, err := st.Update(context.Background(), ops); err != nil {
						t.Fatal(err)
					}
					pin, err := st.Acquire()
					if err != nil {
						t.Fatal(err)
					}
					inc, incremental, err := st.RefreshCC(context.Background(), pin, core.Options{})
					if err != nil {
						pin.Release()
						t.Fatal(err)
					}
					if incremental {
						sawIncremental = true
					}
					full, err := algo.ConnectedComponentsCtx(context.Background(), pin.View(), core.Options{})
					pin.Release()
					if err != nil {
						t.Fatal(err)
					}
					if inc.Components != full.Components {
						t.Fatalf("round %d: incremental %d components, full %d", round, inc.Components, full.Components)
					}
					for i := range full.Labels {
						if inc.Labels[i] != full.Labels[i] {
							t.Fatalf("round %d: label[%d] = %d incremental, %d full", round, i, inc.Labels[i], full.Labels[i])
						}
					}
				}
				if !sawIncremental {
					t.Fatal("incremental CC path never taken")
				}
				if st.Stats().IncrementalRuns == 0 {
					t.Fatal("IncrementalRuns counter not bumped")
				}
			})
		}
	}
}

// TestIncrementalPageRankMatchesFull: after each batch, the warm-started
// PageRank-Delta refresh must land within tolerance of a from-scratch
// PageRank-Delta run on the same snapshot.
func TestIncrementalPageRankMatchesFull(t *testing.T) {
	opts := algo.PageRankOptions{Epsilon: 1e-9, MaxIterations: 500}
	const prDelta = 1e-7 // frontier threshold: tight, so both runs converge hard
	for gname, g := range incGraphs(t) {
		for bname, base := range incBackends(t, g) {
			t.Run(gname+"/"+bname, func(t *testing.T) {
				st := NewStore(base, Config{InitialVersion: 1, Policy: Policy{CompactEvery: -1, HistoryDepth: 16}})
				defer st.Release()
				pin, err := st.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				_, incremental, err := st.RefreshPageRankDelta(context.Background(), pin, opts, prDelta)
				pin.Release()
				if err != nil {
					t.Fatal(err)
				}
				if incremental {
					t.Fatal("first refresh claimed to be incremental")
				}

				rng := rand.New(rand.NewSource(99))
				sawIncremental := false
				for round := 0; round < 4; round++ {
					cur, _ := st.Current()
					ops := randomOps(rng, cur, 80)
					if _, err := st.Update(context.Background(), ops); err != nil {
						t.Fatal(err)
					}
					pin, err := st.Acquire()
					if err != nil {
						t.Fatal(err)
					}
					inc, incremental, err := st.RefreshPageRankDelta(context.Background(), pin, opts, prDelta)
					if err != nil {
						pin.Release()
						t.Fatal(err)
					}
					if incremental {
						sawIncremental = true
					}
					full, err := algo.PageRankDeltaCtx(context.Background(), pin.View(), opts, prDelta)
					pin.Release()
					if err != nil {
						t.Fatal(err)
					}
					var maxDiff, l1 float64
					for i := range full.Ranks {
						d := math.Abs(inc.Ranks[i] - full.Ranks[i])
						l1 += d
						if d > maxDiff {
							maxDiff = d
						}
					}
					if maxDiff > 1e-4 || l1 > 1e-3 {
						t.Fatalf("round %d: incremental diverged from full: max %.3g, L1 %.3g", round, maxDiff, l1)
					}
				}
				if !sawIncremental {
					t.Fatal("incremental PageRank path never taken")
				}
			})
		}
	}
}

// TestIncrementalCCDirectFallsBack: IncrementalCC on vertex growth must
// still be exact (growth is supported: new vertices start as singleton
// labels).
func TestIncrementalCCGrowth(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.PBBSRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := algo.ConnectedComponentsCtx(context.Background(), g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n0 := g.NumVertices()
	ops := []EdgeOp{
		{Src: 0, Dst: uint32(n0 + 2)},      // attach a new vertex to component of 0
		{Src: uint32(n0), Dst: uint32(n0 + 1)}, // an island pair of new vertices
	}
	next, eff, _ := apply(g, ops)
	inc, err := IncrementalCC(context.Background(), next, prev.Labels, eff, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := algo.ConnectedComponentsCtx(context.Background(), next, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Components != full.Components {
		t.Fatalf("components: incremental %d, full %d", inc.Components, full.Components)
	}
	for i := range full.Labels {
		if inc.Labels[i] != full.Labels[i] {
			t.Fatalf("label[%d]: incremental %d, full %d", i, inc.Labels[i], full.Labels[i])
		}
	}
}

// TestNetOps collapses replayed multi-batch sequences by parity.
func TestNetOps(t *testing.T) {
	ops := []EdgeOp{
		{Src: 1, Dst: 2},            // ins then del -> nothing
		{Src: 1, Dst: 2, Del: true},
		{Src: 3, Dst: 4, Del: true}, // del then ins -> nothing
		{Src: 3, Dst: 4},
		{Src: 5, Dst: 6},            // lone insert
		{Src: 7, Dst: 8, Del: true}, // lone delete
		{Src: 9, Dst: 1},            // ins, del, ins -> insert
		{Src: 9, Dst: 1, Del: true},
		{Src: 9, Dst: 1},
	}
	ins, del := netOps(ops)
	if len(ins) != 2 || len(del) != 1 {
		t.Fatalf("netOps: %d inserts, %d deletes; want 2, 1", len(ins), len(del))
	}
	wantIns := map[edgeKey]bool{{5, 6}: true, {9, 1}: true}
	for _, op := range ins {
		if !wantIns[edgeKey{op.Src, op.Dst}] || op.Del {
			t.Fatalf("unexpected net insert %+v", op)
		}
	}
	if del[0].Src != 7 || del[0].Dst != 8 || !del[0].Del {
		t.Fatalf("unexpected net delete %+v", del[0])
	}
}

// TestRefreshCCMemoized: same version, second call is served from the
// tracker without recomputation (incremental=false, zero extra runs).
func TestRefreshCCMemoized(t *testing.T) {
	g, err := gen.Grid3D(6)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(g, Config{InitialVersion: 1})
	pin, err := st.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()
	a, _, err := st.RefreshCC(context.Background(), pin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := st.Stats().FullRuns
	b, _, err := st.RefreshCC(context.Background(), pin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().FullRuns != full {
		t.Fatal("memoized refresh recomputed")
	}
	if a.Components != b.Components {
		t.Fatal("memoized result mismatch")
	}
}

// TestRefreshFallsBackWhenHistoryLost: with HistoryDepth disabled the
// replay chain is never available, so refresh always runs full — and
// still matches.
func TestRefreshFallsBackWhenHistoryLost(t *testing.T) {
	g, err := gen.RMAT(8, 8, gen.PBBSRMAT, 21)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(g, Config{InitialVersion: 1, Policy: Policy{HistoryDepth: -1, CompactEvery: -1}})
	pin, _ := st.Acquire()
	if _, _, err := st.RefreshCC(context.Background(), pin, core.Options{}); err != nil {
		t.Fatal(err)
	}
	pin.Release()
	// Insert a guaranteed-new edge so the batch is effective and the
	// version moves.
	adj := map[uint32]bool{0: true}
	g.OutNeighbors(0, func(d uint32, _ int32) bool { adj[d] = true; return true })
	ins := EdgeOp{Src: 0}
	for d := uint32(0); int(d) < g.NumVertices(); d++ {
		if !adj[d] {
			ins.Dst = d
			break
		}
	}
	applied, err := st.Update(context.Background(), []EdgeOp{ins})
	if err != nil {
		t.Fatal(err)
	}
	if applied.Version == applied.PrevVersion {
		t.Fatalf("batch was a no-op: %+v", applied)
	}
	pin, _ = st.Acquire()
	defer pin.Release()
	res, incremental, err := st.RefreshCC(context.Background(), pin, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if incremental {
		t.Fatal("claimed incremental with no history")
	}
	full, err := algo.ConnectedComponentsCtx(context.Background(), pin.View(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != full.Components {
		t.Fatalf("fallback mismatch: %d vs %d", res.Components, full.Components)
	}
	if st.Stats().FullRuns < 2 {
		t.Fatalf("FullRuns = %d, want >= 2", st.Stats().FullRuns)
	}
}
