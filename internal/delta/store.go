package delta

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ligra/internal/graph"
)

// Store errors.
var (
	// ErrReleased reports an operation on a store whose graph has been
	// evicted.
	ErrReleased = errors.New("delta: store released")
	// ErrBusy reports an update rejected because the pending-op budget
	// is full; clients should back off and retry.
	ErrBusy = errors.New("delta: update backlog full")
)

// Policy parameterizes a Store's write path.
type Policy struct {
	// Window is the group-commit window: the first writer of a commit
	// waits this long for companions before applying, so a burst of
	// small updates lands as one snapshot instead of N. 0 applies
	// immediately (concurrent writers still coalesce behind the
	// serialized apply).
	Window time.Duration
	// MaxPending caps the ops buffered across forming commits; past it
	// Update fails with ErrBusy (the server maps this to 429 +
	// Retry-After). 0 selects 1<<20.
	MaxPending int
	// CompactEvery is the churn threshold (effective ops accumulated in
	// the overlay) past which a commit materializes a flat CSR snapshot.
	// 0 selects max(4096, |E|/8); negative disables compaction.
	CompactEvery int64
	// HistoryDepth is how many applied batches are kept for incremental
	// recomputation replay. 0 selects 8; negative keeps none.
	HistoryDepth int
}

func (p Policy) maxPending() int {
	if p.MaxPending > 0 {
		return p.MaxPending
	}
	return 1 << 20
}

func (p Policy) historyDepth() int {
	switch {
	case p.HistoryDepth > 0:
		return p.HistoryDepth
	case p.HistoryDepth < 0:
		return 0
	default:
		return 8
	}
}

func (p Policy) compactThreshold(m int64) int64 {
	switch {
	case p.CompactEvery > 0:
		return p.CompactEvery
	case p.CompactEvery < 0:
		return 0 // never
	default:
		t := m / 8
		if t < 4096 {
			t = 4096
		}
		return t
	}
}

// Config parameterizes a Store.
type Config struct {
	Policy
	// InitialVersion is the version of the snapshot the store is born
	// with (the registry passes its load generation).
	InitialVersion uint64
	// NextVersion, when set, issues the version for each applied commit
	// (the registry passes a closure bumping its per-name Generation
	// counter, making snapshot versions and cache generations one
	// sequence). It is called with no store locks held. nil increments
	// locally.
	NextVersion func() uint64
}

// AppliedBatch is one committed update batch kept in the replay
// history: the effective directed ops that moved version FromVersion to
// ToVersion.
type AppliedBatch struct {
	FromVersion, ToVersion uint64
	Ops                    []EdgeOp
	OldN, NewN             int
}

// ApplyResult reports one settled update request. All requests that
// shared a group commit receive the same result.
type ApplyResult struct {
	// Version is the snapshot the batch produced (unchanged when the
	// whole batch was a no-op).
	Version uint64 `json:"version"`
	// PrevVersion is the snapshot the batch was applied to.
	PrevVersion uint64 `json:"prev_version"`
	// Inserted/Deleted count effective directed edges; Ignored counts
	// no-op ops (insert-existing, delete-missing).
	Inserted int64 `json:"inserted"`
	Deleted  int64 `json:"deleted"`
	Ignored  int64 `json:"ignored"`
	// Requests is how many update requests shared this group commit.
	Requests int `json:"requests_batched"`
	// Compacted reports that this commit materialized a flat CSR
	// snapshot.
	Compacted bool  `json:"compacted,omitempty"`
	Vertices  int   `json:"vertices"`
	Edges     int64 `json:"edges"`
}

// Stats is the store's monotonic counter set.
type Stats struct {
	Batches     int64 `json:"batches"`
	Requests    int64 `json:"update_requests"`
	Inserted    int64 `json:"edges_inserted"`
	Deleted     int64 `json:"edges_deleted"`
	Ignored     int64 `json:"ops_ignored"`
	Rejected    int64 `json:"rejected_busy"`
	Compactions int64 `json:"compactions"`
	// IncrementalRuns/FullRuns count how often the incremental
	// refreshers could replay the delta log versus falling back to a
	// full recompute.
	IncrementalRuns int64 `json:"incremental_runs"`
	FullRuns        int64 `json:"full_runs"`
}

// Add accumulates o into s (for registry-wide aggregation).
func (s *Stats) Add(o Stats) {
	s.Batches += o.Batches
	s.Requests += o.Requests
	s.Inserted += o.Inserted
	s.Deleted += o.Deleted
	s.Ignored += o.Ignored
	s.Rejected += o.Rejected
	s.Compactions += o.Compactions
	s.IncrementalRuns += o.IncrementalRuns
	s.FullRuns += o.FullRuns
}

// Gauges is the store's point-in-time state for /metrics and /healthz.
type Gauges struct {
	Version       uint64
	PinnedReaders int64
	Compacting    bool
	Vertices      int
	Edges         int64
	DirtyRows     int
	HistoryLen    int
}

// commit is one forming group commit: ops from every writer that
// arrived in the window, settled together.
type commit struct {
	ops      []EdgeOp
	requests int
	done     chan struct{}
	res      ApplyResult
	err      error
}

// Store manages the versioned snapshots of one graph. Reads pin a
// snapshot (Acquire) and traverse without synchronization; writes go
// through Update, which group-commits batches and publishes a new
// immutable snapshot per commit. Release marks the graph evicted: the
// base backend (e.g. an mmap'd compressed graph) is closed only when
// the last pin detaches, so in-flight queries never observe an unmapped
// view.
type Store struct {
	cfg Config

	mu         sync.Mutex
	base       viewCloser // original backend; closed on release after last unpin
	cur        *pinnedView
	version    uint64
	pins       int64
	released   bool
	compacting bool
	forming    *commit
	pendingOps int
	history    []AppliedBatch
	stats      Stats

	// applyMu serializes batch application (gather + overlay build +
	// compaction) outside mu, so readers acquiring pins never wait on a
	// writer.
	applyMu sync.Mutex

	cc ccTracker
	pr prTracker
}

// viewCloser pairs a view with its optional Close.
type viewCloser struct {
	view   graph.View
	closer func() error
}

// Pin is one reader's lease on a snapshot. The view stays valid —
// including its backing mmap — until Release. Release is idempotent.
type Pin struct {
	store    *Store
	view     graph.View
	version  uint64
	released bool
	mu       sync.Mutex
}

// View returns the pinned snapshot's view.
func (p *Pin) View() graph.View { return p.view }

// Version returns the pinned snapshot's version.
func (p *Pin) Version() uint64 { return p.version }

// Store returns the owning store (for re-pinning from detached work,
// e.g. batch sweeps).
func (p *Pin) Store() *Store { return p.store }

// Release detaches the reader. When the store has been released and
// this was the last pin, the base backend is closed (unmapping an
// mmap-backed graph).
func (p *Pin) Release() {
	p.mu.Lock()
	if p.released {
		p.mu.Unlock()
		return
	}
	p.released = true
	p.mu.Unlock()
	p.store.unpin()
}

type pinnedView struct {
	view    graph.View
	version uint64
}

// NewStore wraps base as version cfg.InitialVersion. If base implements
// Close (the mmap-backed compressed graph does), the store takes
// ownership: Close runs once the store is released and the last pin
// detaches.
func NewStore(base graph.View, cfg Config) *Store {
	s := &Store{cfg: cfg, version: cfg.InitialVersion}
	s.base = viewCloser{view: base}
	if c, ok := base.(interface{ Close() error }); ok {
		s.base.closer = c.Close
	}
	s.cur = &pinnedView{view: base, version: cfg.InitialVersion}
	return s
}

// Acquire pins the current snapshot. Fails with ErrReleased after the
// graph is evicted.
func (s *Store) Acquire() (*Pin, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return nil, ErrReleased
	}
	s.pins++
	return &Pin{store: s, view: s.cur.view, version: s.cur.version}, nil
}

// TryAcquire is Acquire for callers that can proceed without the pin
// (detached batch sweeps re-pin at execution time and abort if the
// graph is gone).
func (s *Store) TryAcquire() (*Pin, bool) {
	p, err := s.Acquire()
	return p, err == nil
}

func (s *Store) unpin() {
	s.mu.Lock()
	s.pins--
	closeNow := s.released && s.pins == 0
	closer := s.base.closer
	if closeNow {
		s.base.closer = nil
	}
	s.mu.Unlock()
	if closeNow && closer != nil {
		_ = closer()
	}
}

// Release marks the store evicted: no new pins or updates are admitted,
// and the base backend is closed as soon as the last pin detaches (now,
// if there are none). Idempotent.
func (s *Store) Release() {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return
	}
	s.released = true
	closeNow := s.pins == 0
	closer := s.base.closer
	if closeNow {
		s.base.closer = nil
	}
	s.mu.Unlock()
	if closeNow && closer != nil {
		_ = closer()
	}
}

// Current returns the current snapshot's view and version without
// pinning it. The view itself is immutable and safe to traverse, but an
// eviction may unmap an mmap-backed base underneath it — use Acquire
// for anything long-running.
func (s *Store) Current() (graph.View, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.view, s.cur.version
}

// Gauges reports the store's live state.
func (s *Store) Gauges() Gauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := Gauges{
		Version:       s.cur.version,
		PinnedReaders: s.pins,
		Compacting:    s.compacting,
		Vertices:      s.cur.view.NumVertices(),
		Edges:         s.cur.view.NumEdges(),
		HistoryLen:    len(s.history),
	}
	if ov, ok := s.cur.view.(*overlay); ok {
		g.DirtyRows = ov.DirtyRows()
	}
	return g
}

// Stats reports the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Update applies ops as part of a group commit: the first writer of a
// window becomes the leader, waits Policy.Window for companions, then
// applies every buffered op as one batch and publishes one new
// snapshot. All writers of the commit receive the same ApplyResult.
// ctx bounds only the follower wait — a leader finishes its commit even
// if its client goes away, because followers' ops ride on it.
func (s *Store) Update(ctx context.Context, ops []EdgeOp) (ApplyResult, error) {
	if err := ValidateOps(ops); err != nil {
		return ApplyResult{}, err
	}
	if len(ops) == 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.released {
			return ApplyResult{}, ErrReleased
		}
		return ApplyResult{Version: s.cur.version, PrevVersion: s.cur.version, Requests: 1,
			Vertices: s.cur.view.NumVertices(), Edges: s.cur.view.NumEdges()}, nil
	}

	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return ApplyResult{}, ErrReleased
	}
	if s.pendingOps+len(ops) > s.cfg.maxPending() {
		s.stats.Rejected++
		pending := s.pendingOps
		s.mu.Unlock()
		return ApplyResult{}, fmt.Errorf("%w: %d ops pending", ErrBusy, pending)
	}
	leader := false
	if s.forming == nil {
		s.forming = &commit{done: make(chan struct{})}
		leader = true
	}
	c := s.forming
	c.ops = append(c.ops, ops...)
	c.requests++
	s.pendingOps += len(ops)
	s.stats.Requests++
	s.mu.Unlock()

	if !leader {
		select {
		case <-c.done:
			return c.res, c.err
		case <-ctx.Done():
			// The ops stay in the commit; the leader will apply them.
			return ApplyResult{}, ctx.Err()
		}
	}

	if s.cfg.Window > 0 {
		timer := time.NewTimer(s.cfg.Window)
		<-timer.C
	}
	s.mu.Lock()
	s.forming = nil // later writers start the next commit
	s.pendingOps -= len(c.ops)
	s.mu.Unlock()

	s.applyMu.Lock()
	c.res, c.err = s.applyCommit(c.ops)
	s.applyMu.Unlock()
	c.res.Requests = c.requests
	close(c.done)
	return c.res, c.err
}

// applyCommit builds and publishes the snapshot for one batch. Caller
// holds applyMu (serializing writers); mu is taken only around the
// snapshot swap, so readers stay wait-free.
func (s *Store) applyCommit(ops []EdgeOp) (ApplyResult, error) {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return ApplyResult{}, ErrReleased
	}
	prev := s.cur
	s.mu.Unlock()

	view, eff, st := apply(prev.view, ops)
	res := ApplyResult{
		PrevVersion: prev.version,
		Inserted:    st.inserted,
		Deleted:     st.deleted,
		Ignored:     st.ignored,
	}
	if len(eff) == 0 {
		// Every op was a no-op: keep the current snapshot, spend no
		// version. Replays and duplicate deliveries cost nothing.
		res.Version = prev.version
		res.Vertices = prev.view.NumVertices()
		res.Edges = prev.view.NumEdges()
		s.mu.Lock()
		s.stats.Batches++
		s.stats.Ignored += st.ignored
		s.mu.Unlock()
		return res, nil
	}

	if ov, ok := view.(*overlay); ok {
		if t := s.cfg.compactThreshold(ov.m); t > 0 && ov.churn >= t {
			s.mu.Lock()
			s.compacting = true
			s.mu.Unlock()
			csr, err := Materialize(ov)
			s.mu.Lock()
			s.compacting = false
			s.mu.Unlock()
			if err != nil {
				return ApplyResult{}, fmt.Errorf("delta: compaction failed: %w", err)
			}
			view = csr
			res.Compacted = true
		}
	}

	version := prev.version + 1
	if s.cfg.NextVersion != nil {
		version = s.cfg.NextVersion()
	}
	res.Version = version
	res.Vertices = view.NumVertices()
	res.Edges = view.NumEdges()

	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return ApplyResult{}, ErrReleased
	}
	s.cur = &pinnedView{view: view, version: version}
	s.version = version
	s.stats.Batches++
	s.stats.Inserted += st.inserted
	s.stats.Deleted += st.deleted
	s.stats.Ignored += st.ignored
	if res.Compacted {
		s.stats.Compactions++
	}
	if depth := s.cfg.historyDepth(); depth > 0 {
		s.history = append(s.history, AppliedBatch{
			FromVersion: prev.version, ToVersion: version,
			Ops:  eff,
			OldN: prev.view.NumVertices(), NewN: view.NumVertices(),
		})
		if len(s.history) > depth {
			s.history = s.history[len(s.history)-depth:]
		}
	}
	s.mu.Unlock()
	return res, nil
}

// opsBetween returns the concatenated effective ops moving version from
// to version to, when the history still covers that range contiguously.
func (s *Store) opsBetween(from, to uint64) ([]EdgeOp, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from == to {
		return nil, true
	}
	var ops []EdgeOp
	cur := from
	for _, b := range s.history {
		if b.FromVersion == cur {
			ops = append(ops, b.Ops...)
			cur = b.ToVersion
			if cur == to {
				return ops, true
			}
		}
	}
	return nil, false
}
