// Package faultinject provides deterministic, test-only fault hooks for
// the Ligra runtime. The parallel runtime calls OnChunk once per
// dispatched loop chunk, the core operators call OnRound once per
// EdgeMap invocation, and the graph IO layer calls OnLoad once per file
// load; when disarmed (the default) each is a single atomic pointer load
// and does nothing.
//
// Tests arm the hooks to exercise containment paths that are otherwise
// timing-dependent:
//
//   - PanicOnChunk(n, v) panics with v on the n-th dispatched chunk,
//     proving worker panics surface as *parallel.PanicError.
//   - PanicOnRound(n, v) panics with v on the n-th EdgeMap round,
//     proving between-round panics are contained at the query boundary.
//   - SlowChunk(n, d) sleeps d on the n-th dispatched chunk, simulating
//     a stuck worker (the sleep is deliberately not context-aware, so a
//     query wedges past its deadline and the server watchdog must
//     notice).
//   - CancelOnRound(parent, n) returns a context cancelled on the n-th
//     EdgeMap round, proving mid-algorithm cancellation yields a usable
//     partial result.
//   - FailLoad(n, err) makes the next n graph file loads fail with err,
//     proving transient IO blips are absorbed by the registry's
//     retry-with-budget.
//
// The hooks are process-global; tests using them must not run in
// parallel with each other and must disarm (defer the returned func).
// Arming a slot that is already armed panics with a diagnostic rather
// than silently replacing the other test's hook — overlapping tests are
// a test-suite bug this package refuses to hide. Disarm functions are
// idempotent and only clear the hook they armed, so a stale deferred
// disarm can never clobber a hook armed later.
package faultinject

import (
	"context"
	"sync/atomic"
	"time"
)

// hook is one armed fault: fire runs exactly once, on the call that
// takes remaining from 1 to 0.
type hook struct {
	remaining atomic.Int64
	fire      func()
}

// slot is one global hook point with panic-on-double-arm semantics.
type slot struct {
	name string
	p    atomic.Pointer[hook]
}

func (s *slot) arm(h *hook) {
	if !s.p.CompareAndSwap(nil, h) {
		panic("faultinject: " + s.name + " hook already armed " +
			"(overlapping tests? disarm the previous hook first)")
	}
}

// disarm clears the slot only if it still holds h, so disarming twice —
// or after another test armed its own hook — is harmless.
func (s *slot) disarm(h *hook) func() {
	return func() { s.p.CompareAndSwap(h, nil) }
}

func (s *slot) trip() {
	h := s.p.Load()
	if h == nil {
		return
	}
	if h.remaining.Add(-1) == 0 {
		h.fire()
	}
}

var (
	chunkSlot = &slot{name: "chunk"}
	roundSlot = &slot{name: "round"}
	loadSlot  = &slot{name: "load"}
)

// OnChunk is called by internal/parallel once per dispatched chunk.
func OnChunk() { chunkSlot.trip() }

// OnRound is called by internal/core once per EdgeMap invocation.
func OnRound() { roundSlot.trip() }

// loadHook fails OnLoad with err while remaining calls are left.
type loadHook struct {
	remaining atomic.Int64
	err       error
}

var loadHookPtr atomic.Pointer[loadHook]

// OnLoad is called by internal/graph once per file load; a non-nil
// return is the injected IO error the load must surface.
func OnLoad() error {
	h := loadHookPtr.Load()
	if h == nil {
		return nil
	}
	if h.remaining.Add(-1) >= 0 {
		return h.err
	}
	return nil
}

// PanicOnChunk arms OnChunk to panic with value on its n-th call
// (1-based). It returns a disarm function that must be deferred.
func PanicOnChunk(n int, value any) (disarm func()) {
	h := &hook{fire: func() { panic(value) }}
	h.remaining.Store(int64(n))
	chunkSlot.arm(h)
	return chunkSlot.disarm(h)
}

// SlowChunk arms OnChunk to sleep d on its n-th call (1-based),
// simulating a worker stuck in user code. The sleep ignores every
// context on purpose: cooperative cancellation cannot reach it, which is
// exactly the failure mode the server's query watchdog exists to detect.
func SlowChunk(n int, d time.Duration) (disarm func()) {
	h := &hook{fire: func() { time.Sleep(d) }}
	h.remaining.Store(int64(n))
	chunkSlot.arm(h)
	return chunkSlot.disarm(h)
}

// PanicOnRound arms OnRound to panic with value on its n-th call
// (1-based). It returns a disarm function that must be deferred.
func PanicOnRound(n int, value any) (disarm func()) {
	h := &hook{fire: func() { panic(value) }}
	h.remaining.Store(int64(n))
	roundSlot.arm(h)
	return roundSlot.disarm(h)
}

// CancelOnRound returns a child context of parent that is cancelled when
// OnRound has been called n times (1-based), together with a disarm
// function that must be deferred (it also releases the context).
func CancelOnRound(parent context.Context, n int) (ctx context.Context, disarm func()) {
	ctx, cancel := context.WithCancel(parent)
	h := &hook{fire: cancel}
	h.remaining.Store(int64(n))
	roundSlot.arm(h)
	clear := roundSlot.disarm(h)
	return ctx, func() {
		clear()
		cancel()
	}
}

// FailLoad arms OnLoad to return err on its next n calls (after which
// loads succeed again — the shape of a transient IO blip). It panics if
// a load hook is already armed and returns a disarm function that must
// be deferred.
func FailLoad(n int, err error) (disarm func()) {
	h := &loadHook{err: err}
	h.remaining.Store(int64(n))
	if !loadHookPtr.CompareAndSwap(nil, h) {
		panic("faultinject: load hook already armed " +
			"(overlapping tests? disarm the previous hook first)")
	}
	return func() { loadHookPtr.CompareAndSwap(h, nil) }
}
