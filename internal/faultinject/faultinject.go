// Package faultinject provides deterministic, test-only fault hooks for
// the Ligra runtime. The parallel runtime calls OnChunk once per
// dispatched loop chunk, and the core operators call OnRound once per
// EdgeMap invocation; when disarmed (the default) both are a single
// atomic pointer load and do nothing.
//
// Tests arm the hooks to exercise containment paths that are otherwise
// timing-dependent:
//
//   - PanicOnChunk(n, v) panics with v on the n-th dispatched chunk,
//     proving worker panics surface as *parallel.PanicError.
//   - CancelOnRound(parent, n) returns a context cancelled on the n-th
//     EdgeMap round, proving mid-algorithm cancellation yields a usable
//     partial result.
//
// The hooks are process-global; tests using them must not run in
// parallel with each other and must disarm (defer the returned func).
package faultinject

import (
	"context"
	"sync/atomic"
)

type hook struct {
	remaining atomic.Int64
	fire      func()
}

var (
	chunkHook atomic.Pointer[hook]
	roundHook atomic.Pointer[hook]
)

// OnChunk is called by internal/parallel once per dispatched chunk.
func OnChunk() { trip(&chunkHook) }

// OnRound is called by internal/core once per EdgeMap invocation.
func OnRound() { trip(&roundHook) }

func trip(p *atomic.Pointer[hook]) {
	h := p.Load()
	if h == nil {
		return
	}
	if h.remaining.Add(-1) == 0 {
		h.fire()
	}
}

// PanicOnChunk arms OnChunk to panic with value on its n-th call
// (1-based). It returns a disarm function that must be deferred.
func PanicOnChunk(n int, value any) (disarm func()) {
	h := &hook{fire: func() { panic(value) }}
	h.remaining.Store(int64(n))
	chunkHook.Store(h)
	return func() { chunkHook.Store(nil) }
}

// CancelOnRound returns a child context of parent that is cancelled when
// OnRound has been called n times (1-based), together with a disarm
// function that must be deferred (it also releases the context).
func CancelOnRound(parent context.Context, n int) (ctx context.Context, disarm func()) {
	ctx, cancel := context.WithCancel(parent)
	h := &hook{fire: cancel}
	h.remaining.Store(int64(n))
	roundHook.Store(h)
	return ctx, func() {
		roundHook.Store(nil)
		cancel()
	}
}
