package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDoubleArmPanics proves the concurrent-arming hardening: arming a
// slot that is already armed panics with a diagnostic instead of
// silently replacing the first test's hook.
func TestDoubleArmPanics(t *testing.T) {
	disarm := PanicOnChunk(1000, "unused")
	defer disarm()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second arm of the chunk hook did not panic")
		}
		if !strings.Contains(r.(string), "already armed") {
			t.Fatalf("double-arm panic %q does not explain the conflict", r)
		}
	}()
	SlowChunk(1, time.Millisecond) // same slot as PanicOnChunk
}

// TestStaleDisarmIsHarmless proves a deferred disarm from an earlier
// arming cannot clear a hook armed after it.
func TestStaleDisarmIsHarmless(t *testing.T) {
	disarm1 := PanicOnRound(1000, "first")
	disarm1()
	disarm1() // idempotent
	disarm2 := PanicOnRound(1000, "second")
	defer disarm2()
	disarm1() // stale: must not clear the second hook
	if roundSlot.p.Load() == nil {
		t.Fatal("stale disarm cleared a hook it did not arm")
	}
}

// TestFailLoad proves the load hook fails exactly the next n calls and
// then lets loads succeed again.
func TestFailLoad(t *testing.T) {
	blip := errors.New("injected io blip")
	disarm := FailLoad(2, blip)
	defer disarm()
	for i := 0; i < 2; i++ {
		if err := OnLoad(); !errors.Is(err, blip) {
			t.Fatalf("load %d: err = %v, want injected blip", i, err)
		}
	}
	if err := OnLoad(); err != nil {
		t.Fatalf("load after blips cleared: err = %v, want nil", err)
	}
	disarm()
	if err := OnLoad(); err != nil {
		t.Fatalf("disarmed load: err = %v, want nil", err)
	}
}

// TestSlowChunkDelays proves SlowChunk stalls its n-th call for the
// configured duration and leaves other calls untouched.
func TestSlowChunkDelays(t *testing.T) {
	const d = 30 * time.Millisecond
	disarm := SlowChunk(2, d)
	defer disarm()
	start := time.Now()
	OnChunk() // call 1: fast
	if e := time.Since(start); e > d/2 {
		t.Fatalf("first chunk was slowed (%v)", e)
	}
	start = time.Now()
	OnChunk() // call 2: sleeps
	if e := time.Since(start); e < d {
		t.Fatalf("second chunk slept %v, want >= %v", e, d)
	}
}

// TestPanicOnRound proves the round hook fires on exactly the n-th call.
func TestPanicOnRound(t *testing.T) {
	disarm := PanicOnRound(2, "round boom")
	defer disarm()
	OnRound() // call 1: no fire
	func() {
		defer func() {
			if r := recover(); r != "round boom" {
				t.Fatalf("recover() = %v, want injected value", r)
			}
		}()
		OnRound() // call 2: fires
		t.Fatal("n-th round did not panic")
	}()
}
