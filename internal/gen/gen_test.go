package gen

import (
	"os"
	"testing"

	"ligra/internal/graph"
	"ligra/internal/parallel"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip many output bits on average.
	base := mix64(12345)
	for bit := 0; bit < 64; bit++ {
		diff := base ^ mix64(12345^(1<<uint(bit)))
		ones := 0
		for diff != 0 {
			ones++
			diff &= diff - 1
		}
		if ones < 10 {
			t.Errorf("bit %d: only %d output bits flipped", bit, ones)
		}
	}
}

func TestUniform01Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := uniform01(hash2(99, i))
		if u < 0 || u >= 1 {
			t.Fatalf("uniform01 out of range: %v", u)
		}
	}
}

func TestUniformNRange(t *testing.T) {
	const n = 17
	var seen [n]bool
	for i := uint64(0); i < 10000; i++ {
		v := uniformN(hash2(5, i), n)
		if v >= n {
			t.Fatalf("uniformN out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("value %d never drawn in 10000 samples", i)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0xDEADBEEF, 0x12345678, 0, 0xDEADBEEF * 0x12345678},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func checkSymmetricSimple(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	if !g.Symmetric() {
		t.Fatalf("%s: not symmetric", name)
	}
	if err := graph.Validate(g); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	s := graph.ComputeStats(g)
	if s.SelfLoops != 0 {
		t.Errorf("%s: %d self-loops", name, s.SelfLoops)
	}
}

func TestRMATDeterministicAndValid(t *testing.T) {
	g1, err := RMAT(10, 8, PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(10, 8, PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Errorf("same seed, different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	g3, err := RMAT(10, 8, PBBSRMAT, 43)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() == g3.NumEdges() && graphIdentical(g1, g3) {
		t.Error("different seeds produced identical graphs")
	}
	checkSymmetricSimple(t, g1, "rmat")
	if g1.NumVertices() != 1024 {
		t.Errorf("n = %d, want 1024", g1.NumVertices())
	}
}

func graphIdentical(a, b *graph.Graph) bool {
	if a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

func TestRMATSkew(t *testing.T) {
	// R-MAT must have a much heavier max degree than a uniform graph of
	// the same size.
	rm, err := RMAT(12, 8, Graph500RMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(1<<12, 8<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, es := graph.ComputeStats(rm), graph.ComputeStats(er)
	if rs.MaxOutDeg <= 2*es.MaxOutDeg {
		t.Errorf("rMAT max degree %d not skewed vs ER %d", rs.MaxOutDeg, es.MaxOutDeg)
	}
}

func TestRMATRejectsBadScale(t *testing.T) {
	if _, err := RMAT(0, 8, PBBSRMAT, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(31, 8, PBBSRMAT, 1); err == nil {
		t.Error("scale 31 accepted")
	}
}

func TestRMATDirected(t *testing.T) {
	g, err := RMATDirected(8, 8, PBBSRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Symmetric() {
		t.Error("directed rMAT reported symmetric")
	}
	if err := graph.Validate(g); err != nil {
		t.Error(err)
	}
}

func TestRandomLocal(t *testing.T) {
	g, err := RandomLocal(1000, 5, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkSymmetricSimple(t, g, "randLocal")
	// Locality: every edge must span at most window/2 (mod wrap).
	n := g.NumVertices()
	for v := uint32(0); int(v) < n; v++ {
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			dist := int(d) - int(v)
			if dist < 0 {
				dist = -dist
			}
			if wrap := n - dist; wrap < dist {
				dist = wrap
			}
			if dist > 50+1 {
				t.Fatalf("edge %d-%d spans %d, window 100", v, d, dist)
			}
			return true
		})
	}
	// Degree is near-uniform: max degree bounded by 2*degree (sym).
	s := graph.ComputeStats(g)
	if s.MaxOutDeg > 20 {
		t.Errorf("randLocal max degree %d too large", s.MaxOutDeg)
	}
}

func TestRandomLocalWholeRange(t *testing.T) {
	g, err := RandomLocal(500, 4, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkSymmetricSimple(t, g, "randLocal-global")
}

func TestGrid3D(t *testing.T) {
	side := 5
	g, err := Grid3D(side)
	if err != nil {
		t.Fatal(err)
	}
	checkSymmetricSimple(t, g, "grid3d")
	if g.NumVertices() != side*side*side {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Torus: every vertex has exactly 6 neighbors (all distinct for side>=3).
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(uint32(v)); d != 6 {
			t.Fatalf("vertex %d degree %d, want 6", v, d)
		}
	}
}

func TestGrid3DSmallSides(t *testing.T) {
	if _, err := Grid3D(1); err == nil {
		t.Error("side 1 accepted")
	}
	// side=2 wraps onto the same neighbor twice; dedup keeps it simple.
	g, err := Grid3D(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Validate(g); err != nil {
		t.Error(err)
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(200, 800, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkSymmetricSimple(t, g, "er")
}

func TestStructuredGraphs(t *testing.T) {
	p, err := Path(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 18 {
		t.Errorf("path edges = %d, want 18", p.NumEdges())
	}
	if p.OutDegree(0) != 1 || p.OutDegree(5) != 2 {
		t.Error("path degrees wrong")
	}

	c, err := Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if c.OutDegree(uint32(v)) != 2 {
			t.Fatalf("cycle degree of %d is %d", v, c.OutDegree(uint32(v)))
		}
	}

	s, err := Star(10)
	if err != nil {
		t.Fatal(err)
	}
	if s.OutDegree(0) != 9 || s.OutDegree(1) != 1 {
		t.Error("star degrees wrong")
	}

	k, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumEdges() != 30 {
		t.Errorf("K6 edges = %d, want 30", k.NumEdges())
	}

	b, err := BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	if b.OutDegree(0) != 2 || b.OutDegree(14) != 1 {
		t.Error("tree degrees wrong")
	}

	for _, bad := range []func() error{
		func() error { _, e := Path(0); return e },
		func() error { _, e := Cycle(2); return e },
		func() error { _, e := Star(1); return e },
		func() error { _, e := Complete(0); return e },
		func() error { _, e := BinaryTree(0); return e },
	} {
		if bad() == nil {
			t.Error("invalid size accepted")
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	// p=0: pure ring lattice, every vertex has degree exactly 2k.
	g, err := WattsStrogatz(200, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkSymmetricSimple(t, g, "ws-ring")
	for v := 0; v < 200; v++ {
		if d := g.OutDegree(uint32(v)); d != 6 {
			t.Fatalf("ring lattice degree %d at %d, want 6", d, v)
		}
	}
	// p=1: heavily rewired; still valid, same edge budget (minus dedup).
	r, err := WattsStrogatz(200, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkSymmetricSimple(t, r, "ws-rewired")
	if r.NumEdges() > g.NumEdges() {
		t.Errorf("rewired graph has more edges (%d) than the lattice (%d)", r.NumEdges(), g.NumEdges())
	}
	// Rewiring shrinks diameter: compare BFS depth from 0.
	if _, err := WattsStrogatz(10, 5, 0, 1); err == nil {
		t.Error("2k >= n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Error("p > 1 accepted")
	}
}
