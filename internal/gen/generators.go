package gen

import (
	"fmt"

	"ligra/internal/graph"
	"ligra/internal/parallel"
)

// RMATParams configures the recursive-matrix (R-MAT) generator of Chakrabarti
// et al., the power-law family used for Ligra's rMat inputs and for the
// scaled-down stand-ins for the Twitter and Yahoo graphs.
type RMATParams struct {
	// A, B, C are the recursion probabilities for the top-left, top-right
	// and bottom-left quadrants; the bottom-right gets 1-A-B-C. Larger A
	// yields heavier degree skew.
	A, B, C float64
	// NoiseAmplitude perturbs the probabilities per recursion level, the
	// standard trick ("smoothing") that avoids exact self-similarity.
	NoiseAmplitude float64
}

// PBBSRMAT matches the defaults of the PBBS rMat generator used by the
// paper (a=0.5, b=c=0.1).
var PBBSRMAT = RMATParams{A: 0.5, B: 0.1, C: 0.1, NoiseAmplitude: 0.05}

// Graph500RMAT matches the Graph500 benchmark parameters, producing heavier
// skew (used for the twitter-sim / yahoo-sim substitutes).
var Graph500RMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, NoiseAmplitude: 0.05}

// RMAT generates a symmetrized R-MAT graph with 2^scale vertices and
// approximately edgeFactor*2^scale undirected edges (before deduplication).
func RMAT(scale int, edgeFactor int, params RMATParams, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [1, 30]", scale)
	}
	n := 1 << scale
	m := n * edgeFactor
	edges := make([]graph.Edge, m)
	parallel.For(m, func(i int) {
		s, d := rmatEdge(scale, params, seed, uint64(i))
		edges[i] = graph.Edge{Src: s, Dst: d}
	})
	return graph.FromEdges(n, edges, graph.BuildOptions{
		Symmetrize:       true,
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
	})
}

// RMATDirected is RMAT without symmetrization, for directed-graph tests.
func RMATDirected(scale int, edgeFactor int, params RMATParams, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [1, 30]", scale)
	}
	n := 1 << scale
	m := n * edgeFactor
	edges := make([]graph.Edge, m)
	parallel.For(m, func(i int) {
		s, d := rmatEdge(scale, params, seed, uint64(i))
		edges[i] = graph.Edge{Src: s, Dst: d}
	})
	return graph.FromEdges(n, edges, graph.BuildOptions{
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
	})
}

// rmatEdge draws the i-th edge by descending the 2^scale x 2^scale
// adjacency matrix, choosing a quadrant per level.
func rmatEdge(scale int, p RMATParams, seed, i uint64) (uint32, uint32) {
	var s, d uint32
	for level := 0; level < scale; level++ {
		h := hash3(seed, i, uint64(level))
		r := uniform01(h)
		// Per-level noise, deterministic in (seed, i, level).
		noise := (uniform01(mix64(h)) - 0.5) * 2 * p.NoiseAmplitude
		a := p.A * (1 + noise)
		b := p.B * (1 - noise)
		c := p.C * (1 + noise)
		s <<= 1
		d <<= 1
		switch {
		case r < a:
			// top-left: no bits set
		case r < a+b:
			d |= 1
		case r < a+b+c:
			s |= 1
		default:
			s |= 1
			d |= 1
		}
	}
	return s, d
}

// RandomLocal generates the "randLocal" family: a symmetric graph where
// each vertex draws degree edges to targets chosen uniformly inside a
// window of size window centered on the vertex (wrapping around), giving
// uniform degrees with spatial locality like the PBBS randLocal inputs.
// window <= 0 selects the whole vertex range (a plain random regular-ish
// graph).
func RandomLocal(n, degree, window int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || degree < 0 {
		return nil, fmt.Errorf("gen: bad randLocal parameters n=%d degree=%d", n, degree)
	}
	if window <= 0 || window > n {
		window = n
	}
	m := n * degree
	edges := make([]graph.Edge, m)
	parallel.For(m, func(i int) {
		v := i / degree
		h := hash3(seed, uint64(v), uint64(i%degree))
		off := int(uniformN(h, uint64(window)))
		d := (v + off - window/2 + n) % n
		if d < 0 {
			d += n
		}
		edges[i] = graph.Edge{Src: uint32(v), Dst: uint32(d)}
	})
	return graph.FromEdges(n, edges, graph.BuildOptions{
		Symmetrize:       true,
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
	})
}

// Grid3D generates the 3d-grid family: vertices arranged in a side^3 torus,
// each connected to its six axis neighbors (wrapping), the high-diameter
// mesh input of Table 1. The returned graph has side^3 vertices.
func Grid3D(side int) (*graph.Graph, error) {
	if side < 2 {
		return nil, fmt.Errorf("gen: grid3d side %d must be >= 2", side)
	}
	n := side * side * side
	if n > 1<<31 {
		return nil, fmt.Errorf("gen: grid3d side %d overflows vertex IDs", side)
	}
	// Each vertex emits +x, +y, +z edges; symmetrization adds the rest.
	m := 3 * n
	edges := make([]graph.Edge, m)
	parallel.For(n, func(v int) {
		x := v % side
		y := (v / side) % side
		z := v / (side * side)
		id := func(x, y, z int) uint32 {
			return uint32(((z%side)*side+(y%side))*side + (x % side))
		}
		edges[3*v+0] = graph.Edge{Src: uint32(v), Dst: id(x+1, y, z)}
		edges[3*v+1] = graph.Edge{Src: uint32(v), Dst: id(x, y+1, z)}
		edges[3*v+2] = graph.Edge{Src: uint32(v), Dst: id(x, y, z+1)}
	})
	return graph.FromEdges(n, edges, graph.BuildOptions{
		Symmetrize:       true,
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
	})
}

// ErdosRenyi generates a symmetric G(n, m) random graph: m undirected edges
// with both endpoints uniform.
func ErdosRenyi(n, m int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: bad ER parameters n=%d m=%d", n, m)
	}
	edges := make([]graph.Edge, m)
	parallel.For(m, func(i int) {
		h := hash2(seed, uint64(i))
		s := uint32(uniformN(h, uint64(n)))
		d := uint32(uniformN(mix64(h), uint64(n)))
		edges[i] = graph.Edge{Src: s, Dst: d}
	})
	return graph.FromEdges(n, edges, graph.BuildOptions{
		Symmetrize:       true,
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
	})
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors on each side, with every
// edge's far endpoint rewired to a uniform random vertex with probability
// p. Deterministic in the seed.
func WattsStrogatz(n, k int, p float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 || k < 1 || 2*k >= n {
		return nil, fmt.Errorf("gen: bad WS parameters n=%d k=%d", n, k)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: WS rewiring probability %v out of [0,1]", p)
	}
	m := n * k
	edges := make([]graph.Edge, m)
	parallel.For(m, func(i int) {
		v := i / k
		j := i%k + 1
		d := (v + j) % n
		h := hash3(seed, uint64(v), uint64(j))
		if uniform01(h) < p {
			d = int(uniformN(mix64(h), uint64(n)))
		}
		edges[i] = graph.Edge{Src: uint32(v), Dst: uint32(d)}
	})
	return graph.FromEdges(n, edges, graph.BuildOptions{
		Symmetrize:       true,
		RemoveSelfLoops:  true,
		RemoveDuplicates: true,
	})
}

// Path returns the path graph 0-1-2-...-(n-1), symmetric.
func Path(n int) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: path size %d must be positive", n)
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v < n-1; v++ {
		edges = append(edges, graph.Edge{Src: uint32(v), Dst: uint32(v + 1)})
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true})
}

// Cycle returns the n-cycle, symmetric.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle size %d must be >= 3", n)
	}
	edges := make([]graph.Edge, n)
	for v := 0; v < n; v++ {
		edges[v] = graph.Edge{Src: uint32(v), Dst: uint32((v + 1) % n)}
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true})
}

// Star returns the star with center 0 and n-1 leaves, symmetric.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: star size %d must be >= 2", n)
	}
	edges := make([]graph.Edge, n-1)
	for v := 1; v < n; v++ {
		edges[v-1] = graph.Edge{Src: 0, Dst: uint32(v)}
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true})
}

// Complete returns the complete graph K_n, symmetric.
func Complete(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: complete size %d must be >= 1", n)
	}
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{Src: uint32(u), Dst: uint32(v)})
		}
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true})
}

// BinaryTree returns the complete binary tree on n vertices (vertex v has
// children 2v+1 and 2v+2), symmetric.
func BinaryTree(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: tree size %d must be >= 1", n)
	}
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: uint32((v - 1) / 2), Dst: uint32(v)})
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true})
}
