// Package gen provides deterministic synthetic graph generators for the
// input families used in the Ligra evaluation (Table 1): rMAT power-law
// graphs, random graphs with locality, and 3-D grids, plus Erdős–Rényi and
// a set of small structured graphs (paths, stars, trees, ...) used in
// tests. All generators are deterministic functions of their seed and are
// parallelism-oblivious: the i-th edge depends only on (seed, i), so the
// same graph is produced regardless of worker count.
package gen

// mix64 is the splitmix64 finalizer, a high-quality 64-bit mixing function.
// Used as a counter-based RNG: hashing (seed, counter) yields independent
// uniform words without any sequential state, which is what makes the
// generators deterministic under parallel execution.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hash2 hashes a (seed, i) pair to a uniform 64-bit word.
func hash2(seed, i uint64) uint64 {
	return mix64(seed ^ mix64(i+0x632BE59BD9B4E019))
}

// hash3 hashes a (seed, i, j) triple to a uniform 64-bit word.
func hash3(seed, i, j uint64) uint64 {
	return mix64(hash2(seed, i) ^ mix64(j+0x9E6C63D0876A9A47))
}

// uniform01 converts a hash word to a float64 in [0, 1).
func uniform01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// uniformN maps a hash word to an integer in [0, n).
func uniformN(h uint64, n uint64) uint64 {
	// 128-bit multiply-shift reduction (Lemire): unbiased enough for
	// synthetic workloads while avoiding modulo bias at large n.
	hi, _ := mul64(h, n)
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a0 * b0
	lo = t & mask32
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask32
	t = a0*b1 + m
	lo |= (t & mask32) << 32
	hi = a1*b1 + c + (t >> 32)
	return hi, lo
}
