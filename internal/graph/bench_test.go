package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			Src:    uint32(rng.Intn(n)),
			Dst:    uint32(rng.Intn(n)),
			Weight: int32(rng.Intn(100)),
		}
	}
	return edges
}

func BenchmarkFromEdges(b *testing.B) {
	const n = 1 << 16
	edges := randomEdges(n, 8*n, 1)
	for _, tc := range []struct {
		name string
		opts BuildOptions
	}{
		{"directed", BuildOptions{}},
		{"symmetrized-dedup", BuildOptions{Symmetrize: true, RemoveDuplicates: true, RemoveSelfLoops: true}},
		{"weighted", BuildOptions{Weighted: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportMetric(float64(len(edges)), "edges")
			for i := 0; i < b.N; i++ {
				if _, err := FromEdges(n, edges, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTraversal(b *testing.B) {
	const n = 1 << 16
	g, err := FromEdges(n, randomEdges(n, 8*n, 2), BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("callback", func(b *testing.B) {
		var sum int64
		for i := 0; i < b.N; i++ {
			for v := uint32(0); int(v) < n; v++ {
				g.OutNeighbors(v, func(d uint32, _ int32) bool {
					sum += int64(d)
					return true
				})
			}
		}
		_ = sum
	})
	b.Run("slice", func(b *testing.B) {
		var sum int64
		for i := 0; i < b.N; i++ {
			for v := uint32(0); int(v) < n; v++ {
				row, _ := g.OutEdgesSlice(v)
				for _, d := range row {
					sum += int64(d)
				}
			}
		}
		_ = sum
	})
}

func BenchmarkIO(b *testing.B) {
	const n = 1 << 14
	g, err := FromEdges(n, randomEdges(n, 8*n, 3), BuildOptions{Weighted: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("write-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := WriteAdjacency(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	var text bytes.Buffer
	if err := WriteAdjacency(&text, g); err != nil {
		b.Fatal(err)
	}
	b.Run("read-text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadAdjacency(bytes.NewReader(text.Bytes()), false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	var bin bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		b.Fatal(err)
	}
	b.Run("read-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
