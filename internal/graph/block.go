package graph

// InBlock is a decoded slab of consecutive vertices' in-adjacency lists in
// CSR layout: vertex lo+i's in-edges are Targets[Offsets[i]:Offsets[i+1]]
// (and the matching Weights entries when non-nil). Blocks are reused
// across rounds via pooling — decoders must overwrite, never append to,
// a recycled block's contents.
type InBlock struct {
	Offsets []int64
	Targets []uint32
	Weights []int32
}

// Row returns the targets and weights of the i-th vertex in the block
// (weights nil for unweighted graphs).
func (b *InBlock) Row(i int) ([]uint32, []int32) {
	lo, hi := b.Offsets[i], b.Offsets[i+1]
	if b.Weights == nil {
		return b.Targets[lo:hi], nil
	}
	return b.Targets[lo:hi], b.Weights[lo:hi]
}

// InBlockDecoder is the optional interface behind the GPOP-style
// partition-blocked dense sweep (after "GPOP: cache- and work-efficient
// processing over partitions", PAPERS.md): a backend whose in-adjacency is
// not already raw CSR slices — the compressed backend — implements it to
// decode a cache-sized run of vertices' in-lists into one reusable block,
// so the dense pull traversal runs its tight CSR-style inner loop over
// decoded arrays instead of paying a per-edge decode callback.
//
// DecodeInBlock fills blk with the in-lists of vertices [lo, hi). Rows
// with skip(v) true (nil means keep all) are left empty — the caller has
// already decided not to traverse them, so decoding their edges would be
// pure waste; the caller must treat an empty row as "no edges to scan" and
// not re-consult its skip predicate afterwards. Implementations must be
// safe for concurrent calls with disjoint blocks.
type InBlockDecoder interface {
	DecodeInBlock(lo, hi uint32, skip func(v uint32) bool, blk *InBlock)
}
