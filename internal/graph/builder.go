package graph

import (
	"errors"
	"fmt"

	"ligra/internal/parallel"
)

// Edge is a directed edge used during graph construction.
type Edge struct {
	Src, Dst uint32
	Weight   int32
}

// BuildOptions controls graph construction from edge lists.
type BuildOptions struct {
	// Symmetrize inserts the reverse of every edge and marks the graph
	// undirected. Applied before deduplication.
	Symmetrize bool
	// RemoveSelfLoops drops edges with Src == Dst.
	RemoveSelfLoops bool
	// RemoveDuplicates drops repeated (Src, Dst) pairs, keeping the first
	// occurrence in the sorted order (for weighted graphs the kept weight is
	// the minimum among duplicates, a natural choice for shortest-path
	// workloads).
	RemoveDuplicates bool
	// Weighted keeps the per-edge weights; otherwise weights are dropped
	// and the graph reports Weighted() == false.
	Weighted bool
}

// FromEdges builds a CSR graph with n vertices from the given edge list.
// The input slice is not modified. Vertex IDs must be < n.
func FromEdges(n int, edges []Edge, opts BuildOptions) (*Graph, error) {
	if n <= 0 {
		return nil, errors.New("graph: number of vertices must be positive")
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("graph: %d vertices exceeds the 32-bit vertex ID space", n)
	}
	for i := range edges {
		if int(edges[i].Src) >= n || int(edges[i].Dst) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) references vertex >= n=%d",
				i, edges[i].Src, edges[i].Dst, n)
		}
	}

	work := make([]Edge, len(edges))
	copy(work, edges)
	if opts.RemoveSelfLoops {
		work = parallel.Filter(work, func(e Edge) bool { return e.Src != e.Dst })
	}
	if opts.Symmetrize {
		rev := parallel.MapNew(len(work), func(i int) Edge {
			e := work[i]
			return Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
		})
		work = append(work, rev...)
	}

	// Sort by (src, dst, weight) so CSR rows come out contiguous and
	// deduplication is a scan; "keep minimum weight among duplicates"
	// falls out of weight being the last key. Implemented as stable LSD
	// radix passes over the integer keys (least-significant key first),
	// which beats comparison sorting by a wide margin on edge arrays.
	sortEdges(work, n, opts.Weighted, true)

	if opts.RemoveDuplicates {
		work = parallel.FilterIndex(work, func(i int, e Edge) bool {
			return i == 0 || work[i-1].Src != e.Src || work[i-1].Dst != e.Dst
		})
	}

	g := &Graph{
		n:         n,
		m:         int64(len(work)),
		symmetric: opts.Symmetrize,
	}
	g.offsets, g.edges, g.weights = buildCSR(n, work, opts.Weighted,
		func(e Edge) uint32 { return e.Src }, func(e Edge) uint32 { return e.Dst })

	if !opts.Symmetrize {
		// Build the transpose for pull-based dense traversal.
		sortEdges(work, n, opts.Weighted, false)
		g.inOffsets, g.inEdges, g.inWeights = buildCSR(n, work, opts.Weighted,
			func(e Edge) uint32 { return e.Dst }, func(e Edge) uint32 { return e.Src })
	}
	return g, nil
}

// sortEdges stably sorts edges lexicographically by (Src, Dst, Weight)
// when bySrc, else (Dst, Src, Weight), via LSD counting-sort passes.
func sortEdges(edges []Edge, n int, weighted, bySrc bool) {
	if weighted {
		parallel.RadixSortByKey(edges, 1<<32, func(e Edge) int64 {
			return int64(e.Weight) + (1 << 31)
		})
	}
	minor := func(e Edge) int64 { return int64(e.Dst) }
	major := func(e Edge) int64 { return int64(e.Src) }
	if !bySrc {
		minor, major = major, minor
	}
	parallel.RadixSortByKey(edges, int64(n), minor)
	parallel.RadixSortByKey(edges, int64(n), major)
}

// buildCSR lays a sorted edge list out as offsets+targets(+weights). key
// extracts the CSR row (must be the sort key), val the stored endpoint.
func buildCSR(n int, sorted []Edge, weighted bool,
	key, val func(Edge) uint32) ([]int64, []uint32, []int32) {

	m := len(sorted)
	counts := make([]int64, n)
	for i := range sorted {
		counts[key(sorted[i])]++
	}
	offsets := make([]int64, n+1)
	var acc int64
	for v := 0; v < n; v++ {
		offsets[v] = acc
		acc += counts[v]
	}
	offsets[n] = acc

	targets := make([]uint32, m)
	parallel.For(m, func(i int) { targets[i] = val(sorted[i]) })
	var weights []int32
	if weighted {
		weights = make([]int32, m)
		parallel.For(m, func(i int) { weights[i] = sorted[i].Weight })
	}
	return offsets, targets, weights
}

// FromCSR wraps pre-built CSR arrays as a Graph, validating invariants.
// offsets must have length n+1 with offsets[0]==0, be non-decreasing, and
// end at len(edges); every target must be < n. weights may be nil; when
// non-nil its length must equal len(edges). If symmetric is false a
// transpose is constructed.
func FromCSR(offsets []int64, edges []uint32, weights []int32, symmetric bool) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, errors.New("graph: empty offsets")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, errors.New("graph: offsets[0] must be 0")
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	if offsets[n] != int64(len(edges)) {
		return nil, fmt.Errorf("graph: offsets end at %d but there are %d edges",
			offsets[n], len(edges))
	}
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("graph: %d weights for %d edges", len(weights), len(edges))
	}
	for i, d := range edges {
		if int(d) >= n {
			return nil, fmt.Errorf("graph: edge %d targets vertex %d >= n=%d", i, d, n)
		}
	}
	g := &Graph{
		n:         n,
		m:         int64(len(edges)),
		offsets:   offsets,
		edges:     edges,
		weights:   weights,
		symmetric: symmetric,
	}
	if !symmetric {
		g.buildTranspose()
	}
	return g, nil
}

// buildTranspose fills the in-edge CSR arrays from the out-edge arrays.
func (g *Graph) buildTranspose() {
	counts := make([]int64, g.n)
	for _, d := range g.edges {
		counts[d]++
	}
	g.inOffsets = make([]int64, g.n+1)
	var acc int64
	for v := 0; v < g.n; v++ {
		g.inOffsets[v] = acc
		acc += counts[v]
	}
	g.inOffsets[g.n] = acc

	g.inEdges = make([]uint32, g.m)
	if g.weights != nil {
		g.inWeights = make([]int32, g.m)
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inOffsets[:g.n])
	for s := 0; s < g.n; s++ {
		lo, hi := g.offsets[s], g.offsets[s+1]
		for i := lo; i < hi; i++ {
			d := g.edges[i]
			k := cursor[d]
			cursor[d]++
			g.inEdges[k] = uint32(s)
			if g.inWeights != nil {
				g.inWeights[k] = g.weights[i]
			}
		}
	}
}

// Transpose returns a graph with every edge reversed. For symmetric graphs
// it returns the receiver (transposition is the identity).
func (g *Graph) Transpose() *Graph {
	if g.symmetric {
		return g
	}
	return &Graph{
		n:         g.n,
		m:         g.m,
		offsets:   g.inOffsets,
		edges:     g.inEdges,
		weights:   g.inWeights,
		inOffsets: g.offsets,
		inEdges:   g.edges,
		inWeights: g.weights,
		symmetric: false,
	}
}

// AddWeights returns a copy of g carrying the weights produced by fn(i),
// where i indexes the out-edge array. For directed graphs the transposed
// weights are kept consistent with the forward weights. fn is called once
// per directed edge. Symmetric graphs receive consistent weights per
// undirected edge only if fn is a function of the endpoint pair; the helper
// HashWeight provides such a function.
func (g *Graph) AddWeights(fn func(s, d uint32, i int64) int32) *Graph {
	ng := *g
	ng.weights = make([]int32, g.m)
	for v := uint32(0); int(v) < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			ng.weights[i] = fn(v, g.edges[i], i)
		}
	}
	if !g.symmetric {
		ng.inWeights = make([]int32, g.m)
		// Rebuild transpose weights so in/out stay consistent.
		ng.inOffsets, ng.inEdges = g.inOffsets, g.inEdges
		cursor := make([]int64, g.n)
		copy(cursor, g.inOffsets[:g.n])
		for s := 0; s < g.n; s++ {
			lo, hi := g.offsets[s], g.offsets[s+1]
			for i := lo; i < hi; i++ {
				d := g.edges[i]
				// Find the matching slot in the in-array: slots for d are
				// assigned in increasing s order, matching buildTranspose.
				k := cursor[d]
				cursor[d]++
				ng.inWeights[k] = ng.weights[i]
			}
		}
	}
	return &ng
}

// HashWeight is a deterministic weight function mapping an edge to a value
// in [1, maxW], symmetric in its endpoints so undirected edges get one
// weight. It matches the paper's Bellman-Ford setup of random integer edge
// weights.
func HashWeight(maxW int32) func(s, d uint32, i int64) int32 {
	return func(s, d uint32, _ int64) int32 {
		a, b := s, d
		if a > b {
			a, b = b, a
		}
		h := uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b)*0xBF58476D1CE4E5B9
		h ^= h >> 31
		h *= 0x94D049BB133111EB
		h ^= h >> 29
		return int32(h%uint64(maxW)) + 1
	}
}
