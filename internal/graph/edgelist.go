package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the ubiquitous whitespace-separated edge-list
// format (as used by SNAP datasets): one "src dst [weight]" per line,
// with '#' or '%' comment lines ignored. Vertex IDs may be arbitrary
// non-negative integers; they are kept as-is, with n = max ID + 1 (IDs
// beyond 2^31 are rejected). The graph is built with the given options
// (symmetrize for undirected datasets, dedup, etc.).
func ReadEdgeList(r io.Reader, opts BuildOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want 'src dst [w]', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: bad source %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: bad target %q", lineNo, fields[1])
		}
		if src < 0 || dst < 0 || src >= 1<<31 || dst >= 1<<31 {
			return nil, fmt.Errorf("graph: edge list line %d: vertex ID out of range", lineNo)
		}
		var w int64 = 1
		if len(fields) >= 3 {
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: edge list line %d: bad weight %q", lineNo, fields[2])
			}
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{Src: uint32(src), Dst: uint32(dst), Weight: int32(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, fmt.Errorf("graph: edge list contains no edges")
	}
	return FromEdges(int(maxID+1), edges, opts)
}

// WriteEdgeList writes g as one "src dst [weight]" line per directed
// edge, a format every graph tool ingests. It accepts any View.
func WriteEdgeList(w io.Writer, g View) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# ligra-go edge list: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	var err error
	for v := uint32(0); int(v) < g.NumVertices() && err == nil; v++ {
		g.OutNeighbors(v, func(d uint32, wt int32) bool {
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", v, d, wt)
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, d)
			}
			return err == nil
		})
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}
