package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a SNAP-style comment
% another comment style

0 1
1 2 7
2 0
`
	g, err := ReadEdgeList(strings.NewReader(in), BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	var w12 int32
	g.OutNeighbors(1, func(d uint32, w int32) bool {
		if d == 2 {
			w12 = w
		}
		return true
	})
	if w12 != 7 {
		t.Errorf("weight(1->2) = %d, want 7", w12)
	}
	// Unweighted edges default to 1.
	var w01 int32
	g.OutNeighbors(0, func(d uint32, w int32) bool {
		if d == 1 {
			w01 = w
		}
		return true
	})
	if w01 != 1 {
		t.Errorf("weight(0->1) = %d, want default 1", w01)
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	// IDs with gaps: n = max + 1.
	g, err := ReadEdgeList(strings.NewReader("5 100\n"), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 101 {
		t.Errorf("n = %d, want 101", g.NumVertices())
	}
}

func TestReadEdgeListSymmetrize(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"), BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Symmetric() || g.NumEdges() != 4 {
		t.Errorf("symmetric=%v m=%d", g.Symmetric(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"#only comments\n",   // no edges
		"0\n",                // missing target
		"x 1\n",              // bad source
		"0 y\n",              // bad target
		"-1 2\n",             // negative
		"0 1 zz\n",           // bad weight
		"99999999999999 0\n", // out of range
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), BuildOptions{}); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := sampleGraph(t, weighted)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf, BuildOptions{Weighted: weighted})
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Errorf("weighted=%v: edge-list round trip mismatch", weighted)
		}
	}
}
