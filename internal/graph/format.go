package graph

import (
	"io"
	"os"
)

// Format identifies an on-disk graph encoding, detected from content (the
// 8-byte magic) rather than the file name. docs/FORMATS.md is the
// normative spec for all of them, including detection precedence.
type Format int

const (
	// FormatText is the (Weighted)AdjacencyGraph text format — anything
	// without a known binary magic is presumed text and handed to the
	// text parser, which rejects it with a descriptive error if the
	// header token is wrong.
	FormatText Format = iota
	// FormatBinary is the LIGRAGO1 uncompressed binary CSR format.
	FormatBinary
	// FormatCompressed is the LIGRAGC1 byte-compressed format, handled by
	// the compress package (this package only detects it).
	FormatCompressed
	// FormatUnknownVersion is a "LIGRAG"-prefixed magic this build does
	// not understand: a format from a newer (or corrupted) writer.
	// Loaders must reject it rather than fall through to the text parser.
	FormatUnknownVersion
)

// String names the format for error messages.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary (LIGRAGO1)"
	case FormatCompressed:
		return "compressed (LIGRAGC1)"
	default:
		return "unknown LIGRAG* version"
	}
}

// compressedMagic mirrors compress.Magic; this package is imported by
// compress, so the byte string is duplicated here rather than imported.
var compressedMagic = [8]byte{'L', 'I', 'G', 'R', 'A', 'G', 'C', '1'}

// DetectFormat sniffs the format from the first bytes of a file (8 suffice;
// fewer is fine and detects as text, since both binary magics are 8 bytes).
func DetectFormat(prefix []byte) Format {
	if len(prefix) < 8 {
		return FormatText
	}
	var magic [8]byte
	copy(magic[:], prefix)
	switch magic {
	case binaryMagic:
		return FormatBinary
	case compressedMagic:
		return FormatCompressed
	}
	if string(magic[:6]) == "LIGRAG" {
		return FormatUnknownVersion
	}
	return FormatText
}

// DetectFormatFile sniffs the format of the file at path.
func DetectFormatFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatText, err
	}
	defer f.Close()
	var prefix [8]byte
	k, err := io.ReadAtLeast(f, prefix[:], 1)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return FormatText, err
	}
	return DetectFormat(prefix[:k]), nil
}
