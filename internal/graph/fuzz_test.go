package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAdjacency checks the text parser never panics and that any
// graph it accepts satisfies the CSR invariants.
func FuzzReadAdjacency(f *testing.F) {
	f.Add("AdjacencyGraph\n3\n3\n0\n1\n2\n1\n2\n0\n")
	f.Add("WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n5\n")
	f.Add("AdjacencyGraph 3 3 0 1 2 1 2 0")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("AdjacencyGraph\n-1\n0\n")
	f.Add("garbage")
	f.Add("AdjacencyGraph\n999999999999\n0\n")
	// Truncations of a valid file at every section boundary: inside the
	// banner, after n, after m, mid-offsets, mid-edges.
	valid := "AdjacencyGraph\n3\n3\n0\n1\n2\n1\n2\n0\n"
	for _, cut := range []int{3, 15, 17, 19, 21, 25, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Whitespace mangling: CRLF line endings, tabs and doubled blanks
	// between tokens, leading/trailing blank lines, interior blank lines.
	f.Add("AdjacencyGraph\r\n3\r\n3\r\n0\r\n1\r\n2\r\n1\r\n2\r\n0\r\n")
	f.Add("AdjacencyGraph\t 3\t3  0 1\t\t2 1 2 0")
	f.Add("\n\n AdjacencyGraph\n3\n\n3\n0\n1\n2\n1\n2\n0\n\n\n")
	f.Add("WeightedAdjacencyGraph \t2\n1 0\v1\f1 5")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadAdjacency(strings.NewReader(in), false)
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, in)
		}
		// Round trip must succeed and preserve sizes.
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadAdjacency(&buf, false)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
	})
}

// FuzzReadEdgeList checks the SNAP-style edge-list parser never panics
// and that any graph it accepts satisfies the CSR invariants and
// round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n% comment\n0 1 5\n1 0 5\n")
	f.Add("0 0\n")          // self loop
	f.Add("5 5\n")          // max ID sets n
	f.Add("0 1 -3\n")       // negative weight
	f.Add("")               // empty
	f.Add("#only comment")  // no edges
	f.Add("0\n")            // too few fields
	f.Add("a b\n")          // non-numeric
	f.Add("0 4294967296\n") // ID out of range
	f.Add("-1 0\n")         // negative ID
	// Truncations of a valid list mid-line and mid-token.
	valid := "0 1 7\n1 2 9\n2 0 11\n"
	for _, cut := range []int{1, 3, 5, 7, 11, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Whitespace mangling: tabs, CRLF, doubled separators, trailing
	// blanks, comment markers mid-stream.
	f.Add("0\t1\r\n1  2\r\n")
	f.Add("  0 1  \n\n\t\n1 2\n# trailing\n")
	f.Add("0 1 2 3 4 5\n") // extra fields ignored beyond weight
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), BuildOptions{Weighted: true})
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf, BuildOptions{Weighted: true})
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		// The writer emits no line for isolated trailing vertices, so a
		// round trip may shrink n; edges must survive exactly.
		if g2.NumEdges() != g.NumEdges() || g2.NumVertices() > g.NumVertices() {
			t.Fatalf("round trip changed sizes: n %d->%d m %d->%d",
				g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzReadBinary checks the binary parser never panics on corrupt input.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	g, err := FromEdges(3, []Edge{{0, 1, 2}, {1, 2, 3}}, BuildOptions{Weighted: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("LIGRAGO1 garbage follows"))
	f.Add([]byte{})
	// Truncations at every section boundary of the valid file: inside the
	// magic, the fixed header, the offsets, the edges, and the weights.
	for _, cut := range []int{4, 8, 12, 20, 27, 28, 28 + 8*4, 28 + 8*4 + 4, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Corrupt each header field of the valid file in place.
	for _, off := range []int{0, 8, 12, 20} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("accepted binary graph fails validation: %v", err)
		}
		// Round trip must succeed and preserve sizes.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
	})
}
