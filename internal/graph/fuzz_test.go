package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAdjacency checks the text parser never panics and that any
// graph it accepts satisfies the CSR invariants.
func FuzzReadAdjacency(f *testing.F) {
	f.Add("AdjacencyGraph\n3\n3\n0\n1\n2\n1\n2\n0\n")
	f.Add("WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n5\n")
	f.Add("AdjacencyGraph 3 3 0 1 2 1 2 0")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("AdjacencyGraph\n-1\n0\n")
	f.Add("garbage")
	f.Add("AdjacencyGraph\n999999999999\n0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadAdjacency(strings.NewReader(in), false)
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, in)
		}
		// Round trip must succeed and preserve sizes.
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadAdjacency(&buf, false)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
	})
}

// FuzzReadBinary checks the binary parser never panics on corrupt input.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and mutations of it.
	g, err := FromEdges(3, []Edge{{0, 1, 2}, {1, 2, 3}}, BuildOptions{Weighted: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("LIGRAGO1 garbage follows"))
	f.Add([]byte{})
	// Truncations at every section boundary of the valid file: inside the
	// magic, the fixed header, the offsets, the edges, and the weights.
	for _, cut := range []int{4, 8, 12, 20, 27, 28, 28 + 8*4, 28 + 8*4 + 4, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Corrupt each header field of the valid file in place.
	for _, off := range []int{0, 8, 12, 20} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			t.Fatalf("accepted binary graph fails validation: %v", err)
		}
		// Round trip must succeed and preserve sizes.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
	})
}
