// Package graph provides the in-memory graph representation Ligra operates
// on: compressed sparse row (CSR) adjacency arrays for out-edges and, for
// directed graphs, the transpose (in-edges) needed by pull-based dense
// traversals. It also defines the View interface that lets alternative
// representations (e.g. the byte-compressed graphs of package compress)
// plug into the same edgeMap machinery, plus graph construction, I/O in
// Ligra's AdjacencyGraph exchange format, and structural statistics.
package graph

// Vertex identifiers are dense integers in [0, NumVertices). uint32 matches
// Ligra's default 32-bit vertex IDs and halves memory traffic versus int64,
// which matters for traversal-bound workloads.

// View is the read interface edgeMap and the algorithms are written
// against. Both *Graph (CSR) and compressed representations implement it.
//
// The neighbor iterators invoke fn once per incident edge and stop early if
// fn returns false — dense (pull) traversals rely on this to stop scanning
// a destination's in-edges as soon as its Cond fails (e.g. its BFS parent
// is set). For unweighted graphs the weight argument is always 1.
type View interface {
	// NumVertices returns |V|.
	NumVertices() int
	// NumEdges returns the number of directed edges |E| (for symmetric
	// graphs each undirected edge counts twice, as in Ligra).
	NumEdges() int64
	// OutDegree returns the out-degree of v.
	OutDegree(v uint32) int
	// InDegree returns the in-degree of v (equals OutDegree for symmetric
	// graphs).
	InDegree(v uint32) int
	// OutNeighbors iterates over the targets of v's out-edges.
	OutNeighbors(v uint32, fn func(d uint32, w int32) bool)
	// InNeighbors iterates over the sources of v's in-edges.
	InNeighbors(v uint32, fn func(s uint32, w int32) bool)
	// Weighted reports whether the graph carries edge weights.
	Weighted() bool
	// Symmetric reports whether the graph is undirected (in == out).
	Symmetric() bool
}

// Graph is a CSR (compressed sparse row) graph. Out-edges of vertex v are
// edges[offsets[v]:offsets[v+1]]; weights, if present, are parallel to
// edges. Directed graphs additionally store the transpose for pull-based
// traversal. Graphs are immutable after construction, which makes them safe
// for concurrent traversal without synchronization.
type Graph struct {
	n int
	m int64

	offsets []int64  // len n+1
	edges   []uint32 // len m
	weights []int32  // len m or nil

	// Transpose (in-edges); nil for symmetric graphs, where the out-arrays
	// serve both directions.
	inOffsets []int64
	inEdges   []uint32
	inWeights []int32

	symmetric bool
}

var _ View = (*Graph)(nil)

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.m }

// Symmetric reports whether the graph is undirected.
func (g *Graph) Symmetric() bool { return g.symmetric }

// Weighted reports whether the graph has edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v uint32) int {
	if g.symmetric {
		return g.OutDegree(v)
	}
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// OutNeighbors iterates over out-edges of v; fn returning false stops the
// iteration.
func (g *Graph) OutNeighbors(v uint32, fn func(d uint32, w int32) bool) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.weights == nil {
		for i := lo; i < hi; i++ {
			if !fn(g.edges[i], 1) {
				return
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !fn(g.edges[i], g.weights[i]) {
			return
		}
	}
}

// InNeighbors iterates over in-edges of v; fn returning false stops the
// iteration.
func (g *Graph) InNeighbors(v uint32, fn func(s uint32, w int32) bool) {
	if g.symmetric {
		g.OutNeighbors(v, fn)
		return
	}
	lo, hi := g.inOffsets[v], g.inOffsets[v+1]
	if g.inWeights == nil {
		for i := lo; i < hi; i++ {
			if !fn(g.inEdges[i], 1) {
				return
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !fn(g.inEdges[i], g.inWeights[i]) {
			return
		}
	}
}

// OutEdgesSlice returns the raw CSR target slice for v (and the parallel
// weight slice, or nil). It is a fast path for performance-critical inner
// loops that want to avoid per-edge callbacks; callers must not mutate the
// returned slices.
func (g *Graph) OutEdgesSlice(v uint32) ([]uint32, []int32) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.weights == nil {
		return g.edges[lo:hi], nil
	}
	return g.edges[lo:hi], g.weights[lo:hi]
}

// InEdgesSlice is OutEdgesSlice for in-edges.
func (g *Graph) InEdgesSlice(v uint32) ([]uint32, []int32) {
	if g.symmetric {
		return g.OutEdgesSlice(v)
	}
	lo, hi := g.inOffsets[v], g.inOffsets[v+1]
	if g.inWeights == nil {
		return g.inEdges[lo:hi], nil
	}
	return g.inEdges[lo:hi], g.inWeights[lo:hi]
}

// Offsets returns the CSR offset array (length NumVertices+1). Callers must
// not mutate it.
func (g *Graph) Offsets() []int64 { return g.offsets }

// InOffsets returns the transpose CSR offset array (length NumVertices+1);
// for symmetric graphs the out-arrays serve both directions, so it returns
// Offsets. Callers must not mutate it.
func (g *Graph) InOffsets() []int64 {
	if g.symmetric {
		return g.offsets
	}
	return g.inOffsets
}

// InEdges returns the transpose CSR source array (Edges for symmetric
// graphs). Callers must not mutate it.
func (g *Graph) InEdges() []uint32 {
	if g.symmetric {
		return g.edges
	}
	return g.inEdges
}

// InWeights returns the transpose CSR weight array (nil if unweighted;
// Weights for symmetric graphs). Callers must not mutate it.
func (g *Graph) InWeights() []int32 {
	if g.symmetric {
		return g.weights
	}
	return g.inWeights
}

// Edges returns the CSR target array. Callers must not mutate it.
func (g *Graph) Edges() []uint32 { return g.edges }

// Weights returns the CSR weight array (nil if unweighted). Callers must
// not mutate it.
func (g *Graph) Weights() []int32 { return g.weights }

// OutDegreesSum returns the total out-degree of the given vertices.
func OutDegreesSum(g View, vs []uint32) int64 {
	var total int64
	for _, v := range vs {
		total += int64(g.OutDegree(v))
	}
	return total
}
