package graph

import (
	"os"
	"testing"

	"ligra/internal/parallel"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

// diamond returns the directed diamond 0->1, 0->2, 1->3, 2->3 (weighted).
func diamond(t *testing.T, weighted bool) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1, 5}, {0, 2, 3}, {1, 3, 2}, {2, 3, 7},
	}
	g, err := FromEdges(4, edges, BuildOptions{Weighted: weighted})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := diamond(t, false)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Symmetric() {
		t.Error("directed graph reported symmetric")
	}
	if g.Weighted() {
		t.Error("unweighted graph reported weighted")
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Errorf("out-degrees: %d %d", g.OutDegree(0), g.OutDegree(3))
	}
	if g.InDegree(3) != 2 || g.InDegree(0) != 0 {
		t.Errorf("in-degrees: %d %d", g.InDegree(3), g.InDegree(0))
	}
	var outs []uint32
	g.OutNeighbors(0, func(d uint32, w int32) bool {
		if w != 1 {
			t.Errorf("unweighted graph yielded weight %d", w)
		}
		outs = append(outs, d)
		return true
	})
	if len(outs) != 2 || outs[0] != 1 || outs[1] != 2 {
		t.Errorf("out-neighbors of 0: %v", outs)
	}
	var ins []uint32
	g.InNeighbors(3, func(s uint32, _ int32) bool {
		ins = append(ins, s)
		return true
	})
	if len(ins) != 2 || ins[0] != 1 || ins[1] != 2 {
		t.Errorf("in-neighbors of 3: %v", ins)
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	g := diamond(t, true)
	if !g.Weighted() {
		t.Fatal("weighted flag lost")
	}
	weightOf := func(s, d uint32) int32 {
		var got int32 = -1
		g.OutNeighbors(s, func(dd uint32, w int32) bool {
			if dd == d {
				got = w
				return false
			}
			return true
		})
		return got
	}
	for _, tc := range []struct {
		s, d uint32
		w    int32
	}{{0, 1, 5}, {0, 2, 3}, {1, 3, 2}, {2, 3, 7}} {
		if got := weightOf(tc.s, tc.d); got != tc.w {
			t.Errorf("weight(%d->%d) = %d, want %d", tc.s, tc.d, got, tc.w)
		}
	}
	// Transposed weights must be consistent.
	var inW []int32
	g.InNeighbors(3, func(s uint32, w int32) bool {
		inW = append(inW, w)
		return true
	})
	if len(inW) != 2 || inW[0] != 2 || inW[1] != 7 {
		t.Errorf("in-weights of 3: %v", inW)
	}
}

func TestEarlyExitIteration(t *testing.T) {
	g := diamond(t, false)
	visits := 0
	g.OutNeighbors(0, func(uint32, int32) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early exit visited %d edges, want 1", visits)
	}
}

func TestSymmetrize(t *testing.T) {
	edges := []Edge{{0, 1, 0}, {1, 2, 0}}
	g, err := FromEdges(3, edges, BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Symmetric() {
		t.Fatal("not symmetric")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4", g.NumEdges())
	}
	if g.OutDegree(1) != 2 || g.InDegree(1) != 2 {
		t.Errorf("degree of middle vertex: out=%d in=%d", g.OutDegree(1), g.InDegree(1))
	}
	if err := Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRemoveSelfLoopsAndDuplicates(t *testing.T) {
	edges := []Edge{{0, 0, 1}, {0, 1, 9}, {0, 1, 4}, {1, 0, 2}, {1, 1, 3}}
	g, err := FromEdges(2, edges, BuildOptions{
		RemoveSelfLoops: true, RemoveDuplicates: true, Weighted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (loops and dups removed)", g.NumEdges())
	}
	// Duplicate (0,1) kept the minimum weight 4.
	var w01 int32
	g.OutNeighbors(0, func(d uint32, w int32) bool {
		if d == 1 {
			w01 = w
		}
		return true
	})
	if w01 != 4 {
		t.Errorf("kept weight %d for duplicate edge, want min 4", w01)
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(0, nil, BuildOptions{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := FromEdges(2, []Edge{{0, 5, 0}}, BuildOptions{}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := FromEdges(2, []Edge{{7, 0, 0}}, BuildOptions{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestFromCSRValidation(t *testing.T) {
	// Good CSR.
	g, err := FromCSR([]int64{0, 2, 3, 3}, []uint32{1, 2, 2}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatal("wrong sizes")
	}
	if g.InDegree(2) != 2 {
		t.Errorf("InDegree(2) = %d, want 2", g.InDegree(2))
	}
	// Bad CSRs.
	if _, err := FromCSR([]int64{}, nil, nil, false); err == nil {
		t.Error("empty offsets accepted")
	}
	if _, err := FromCSR([]int64{1, 2}, []uint32{0}, nil, false); err == nil {
		t.Error("offsets[0] != 0 accepted")
	}
	if _, err := FromCSR([]int64{0, 2, 1}, []uint32{0}, nil, false); err == nil {
		t.Error("decreasing offsets accepted")
	}
	if _, err := FromCSR([]int64{0, 1}, []uint32{5}, nil, false); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromCSR([]int64{0, 1}, []uint32{0}, []int32{1, 2}, false); err == nil {
		t.Error("weights length mismatch accepted")
	}
}

func TestTranspose(t *testing.T) {
	g := diamond(t, true)
	gt := g.Transpose()
	if gt.OutDegree(3) != 2 || gt.InDegree(3) != 0 {
		t.Errorf("transpose degrees wrong: out=%d in=%d", gt.OutDegree(3), gt.InDegree(3))
	}
	// Transposing twice gives back the original adjacency.
	gtt := gt.Transpose()
	if gtt.OutDegree(0) != g.OutDegree(0) {
		t.Error("double transpose differs")
	}
	// Symmetric graph: transpose is identity.
	sg, _ := FromEdges(2, []Edge{{0, 1, 0}}, BuildOptions{Symmetrize: true})
	if sg.Transpose() != sg {
		t.Error("symmetric transpose should be the same object")
	}
}

func TestAddWeights(t *testing.T) {
	edges := []Edge{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}
	g, err := FromEdges(3, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wg := g.AddWeights(HashWeight(10))
	if !wg.Weighted() {
		t.Fatal("AddWeights did not mark weighted")
	}
	// Forward and transposed weights must agree edge by edge.
	wg.OutNeighbors(0, func(d uint32, w int32) bool {
		if w < 1 || w > 10 {
			t.Errorf("weight %d out of range", w)
		}
		found := false
		wg.InNeighbors(d, func(s uint32, w2 int32) bool {
			if s == 0 {
				found = w2 == w
				return false
			}
			return true
		})
		if !found {
			t.Errorf("transposed weight for 0->%d inconsistent", d)
		}
		return true
	})
	// Original is untouched.
	if g.Weighted() {
		t.Error("AddWeights mutated the receiver")
	}
}

func TestHashWeightSymmetric(t *testing.T) {
	f := HashWeight(100)
	for _, pair := range [][2]uint32{{1, 2}, {0, 7}, {100, 3}} {
		a := f(pair[0], pair[1], 0)
		b := f(pair[1], pair[0], 0)
		if a != b {
			t.Errorf("HashWeight asymmetric for %v: %d vs %d", pair, a, b)
		}
		if a < 1 || a > 100 {
			t.Errorf("HashWeight out of range: %d", a)
		}
	}
}

func TestStats(t *testing.T) {
	g := diamond(t, false)
	s := ComputeStats(g)
	if s.Vertices != 4 || s.Edges != 4 {
		t.Errorf("stats sizes wrong: %+v", s)
	}
	if s.MaxOutDeg != 2 || s.MaxInDeg != 2 {
		t.Errorf("stats degrees wrong: %+v", s)
	}
	if s.ZeroDegree != 1 { // vertex 3
		t.Errorf("ZeroDegree = %d, want 1", s.ZeroDegree)
	}
	if s.SelfLoops != 0 {
		t.Errorf("SelfLoops = %d", s.SelfLoops)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := diamond(t, false)
	h := DegreeHistogram(g)
	// degrees: 0:2, 1:1, 2:1, 3:0 -> hist[0]=1, hist[1]=2, hist[2]=1
	if len(h) != 3 || h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	// Claim symmetric but provide a one-way edge.
	g, err := FromCSR([]int64{0, 1, 1}, []uint32{1}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g); err == nil {
		t.Error("Validate accepted an asymmetric 'symmetric' graph")
	}
}
