package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"

	"ligra/internal/faultinject"
)

// The text exchange format is Ligra's AdjacencyGraph format (inherited from
// the Problem Based Benchmark Suite):
//
//	AdjacencyGraph            (or WeightedAdjacencyGraph)
//	<n>
//	<m>
//	<offset 0> ... <offset n-1>
//	<edge 0> ... <edge m-1>
//	[<weight 0> ... <weight m-1>]     (weighted variant only)
//
// Tokens may be separated by any whitespace, so both the one-token-per-line
// layout Ligra writes and space-separated layouts parse.

const (
	headerAdjacency         = "AdjacencyGraph"
	headerWeightedAdjacency = "WeightedAdjacencyGraph"
)

// ReadAdjacency parses an AdjacencyGraph or WeightedAdjacencyGraph stream.
// symmetric declares whether the file stores an undirected graph (the
// format itself does not record this; Ligra passes it as the -s flag).
func ReadAdjacency(r io.Reader, symmetric bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)

	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	nextInt := func(what string) (int64, error) {
		tok, err := next()
		if err != nil {
			return 0, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("graph: bad %s %q: %w", what, tok, err)
		}
		return v, nil
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	var weighted bool
	switch header {
	case headerAdjacency:
	case headerWeightedAdjacency:
		weighted = true
	default:
		return nil, fmt.Errorf("graph: unrecognized header %q", header)
	}

	n64, err := nextInt("vertex count")
	if err != nil {
		return nil, err
	}
	m64, err := nextInt("edge count")
	if err != nil {
		return nil, err
	}
	if n64 < 0 || m64 < 0 {
		return nil, fmt.Errorf("graph: negative size (n=%d m=%d)", n64, m64)
	}
	if n64 > 1<<31 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)

	// Grow the arrays as tokens actually arrive rather than trusting the
	// declared counts: a hostile header claiming billions of vertices must
	// not allocate more memory than the input itself justifies.
	const preallocCap = 1 << 20
	offsets := make([]int64, 0, min(n+1, preallocCap))
	for v := 0; v < n; v++ {
		o, err := nextInt("offset")
		if err != nil {
			return nil, err
		}
		offsets = append(offsets, o)
	}
	offsets = append(offsets, m64)

	edges := make([]uint32, 0, min(m, preallocCap))
	for i := 0; i < m; i++ {
		e, err := nextInt("edge")
		if err != nil {
			return nil, err
		}
		if e < 0 || e >= n64 {
			return nil, fmt.Errorf("graph: edge %d targets out-of-range vertex %d", i, e)
		}
		edges = append(edges, uint32(e))
	}

	var weights []int32
	if weighted {
		weights = make([]int32, 0, min(m, preallocCap))
		for i := 0; i < m; i++ {
			w, err := nextInt("weight")
			if err != nil {
				return nil, err
			}
			if w < -1<<31 || w > 1<<31-1 {
				return nil, fmt.Errorf("graph: weight %d value %d overflows int32", i, w)
			}
			weights = append(weights, int32(w))
		}
	}
	return FromCSR(offsets, edges, weights, symmetric)
}

// WriteAdjacency writes g in the (Weighted)AdjacencyGraph text format.
// It accepts any View: offsets are rebuilt from out-degrees, so
// compressed, mapped, and delta-overlaid graphs serialize without first
// materializing a CSR copy.
func WriteAdjacency(w io.Writer, g View) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	header := headerAdjacency
	if g.Weighted() {
		header = headerWeightedAdjacency
	}
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", header, n, g.NumEdges()); err != nil {
		return err
	}
	var scratch []byte
	writeInt := func(v int64) error {
		scratch = strconv.AppendInt(scratch[:0], v, 10)
		scratch = append(scratch, '\n')
		_, err := bw.Write(scratch)
		return err
	}
	var off int64
	for v := 0; v < n; v++ {
		if err := writeInt(off); err != nil {
			return err
		}
		off += int64(g.OutDegree(uint32(v)))
	}
	var err error
	for v := 0; v < n && err == nil; v++ {
		g.OutNeighbors(uint32(v), func(d uint32, _ int32) bool {
			err = writeInt(int64(d))
			return err == nil
		})
	}
	if err == nil && g.Weighted() {
		for v := 0; v < n && err == nil; v++ {
			g.OutNeighbors(uint32(v), func(_ uint32, wt int32) bool {
				err = writeInt(int64(wt))
				return err == nil
			})
		}
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Binary format: a compact little-endian encoding for fast loading.
//
//	magic   [8]byte  "LIGRAGO1"
//	flags   uint32   bit0 weighted, bit1 symmetric
//	n       uint64
//	m       uint64
//	offsets [n+1]int64
//	edges   [m]uint32
//	weights [m]int32  (weighted only)
var binaryMagic = [8]byte{'L', 'I', 'G', 'R', 'A', 'G', 'O', '1'}

const (
	flagWeighted  = 1 << 0
	flagSymmetric = 1 << 1
)

// WriteBinary writes g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	if g.symmetric {
		flags |= flagSymmetric
	}
	for _, v := range []any{flags, uint64(g.n), uint64(g.m)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.edges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var flags uint32
	var n64, m64 uint64
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("graph: reading flags: %w", noEOF(err))
	}
	if flags&^uint32(flagWeighted|flagSymmetric) != 0 {
		return nil, fmt.Errorf("graph: unknown flag bits %#x", flags&^uint32(flagWeighted|flagSymmetric))
	}
	if err := binary.Read(br, binary.LittleEndian, &n64); err != nil {
		return nil, fmt.Errorf("graph: reading vertex count: %w", noEOF(err))
	}
	if err := binary.Read(br, binary.LittleEndian, &m64); err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", noEOF(err))
	}
	if n64 > 1<<31 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	// Chunked reads keep allocation proportional to the bytes actually
	// present, so a corrupt header cannot force a giant allocation.
	offsets, err := readChunked[int64](br, n+1, nil)
	if err != nil {
		return nil, fmt.Errorf("graph: reading %d offsets: %w", n+1, err)
	}
	edges, err := readChunked[uint32](br, m, nil)
	if err != nil {
		return nil, fmt.Errorf("graph: reading %d edges: %w", m, err)
	}
	var weights []int32
	if flags&flagWeighted != 0 {
		if weights, err = readChunked[int32](br, m, nil); err != nil {
			return nil, fmt.Errorf("graph: reading %d weights: %w", m, err)
		}
	}
	return FromCSR(offsets, edges, weights, flags&flagSymmetric != 0)
}

// readChunked reads total fixed-size little-endian values in bounded
// chunks, appending to dst. A payload that ends early reports
// io.ErrUnexpectedEOF (with how far it got), never a bare io.EOF, so
// truncation is distinguishable from a cleanly missing section.
func readChunked[T any](r io.Reader, total int, dst []T) ([]T, error) {
	const chunk = 1 << 14
	buf := make([]T, min(total, chunk))
	read := 0
	for total > 0 {
		k := min(total, chunk)
		if err := binary.Read(r, binary.LittleEndian, buf[:k]); err != nil {
			return nil, fmt.Errorf("truncated after %d values: %w", read, noEOF(err))
		}
		dst = append(dst, buf[:k]...)
		total -= k
		read += k
	}
	return dst, nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: inside a structured
// payload a clean EOF still means the input ended mid-record.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// LoadFile reads a CSR graph from path, detecting the format by content
// (never by file name): the LIGRAGO1 magic selects the binary reader,
// anything unmagic'd goes to the text parser. Files in formats this
// function cannot decode into a CSR *Graph — the LIGRAGC1 compressed
// format, or a LIGRAG*-magic'd version this build does not know — get a
// descriptive error naming the format instead of a mid-file parse failure;
// use compress.LoadView to load any format polymorphically.
func LoadFile(path string, symmetric bool) (*Graph, error) {
	if err := faultinject.OnLoad(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var prefix [8]byte
	k, _ := io.ReadAtLeast(f, prefix[:], 1)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch format := DetectFormat(prefix[:k]); format {
	case FormatBinary:
		return ReadBinary(f)
	case FormatCompressed:
		return nil, fmt.Errorf("graph: %s is a %s file; load it with the compress package (compress.LoadView or ligra.LoadView)", path, format)
	case FormatUnknownVersion:
		return nil, fmt.Errorf("graph: %s has unrecognized magic %q: not a format this build understands", path, prefix[:k])
	default:
		return ReadAdjacency(f, symmetric)
	}
}

// SaveFile writes a graph to path; binary selects the binary format.
func SaveFile(path string, g *Graph, binaryFormat bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if binaryFormat {
		if err := WriteBinary(f, g); err != nil {
			return err
		}
	} else if err := WriteAdjacency(f, g); err != nil {
		return err
	}
	return f.Close()
}
