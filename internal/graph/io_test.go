package graph

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func sampleGraph(t *testing.T, weighted bool) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1, 4}, {0, 2, 2}, {1, 2, 5}, {2, 3, 1}, {3, 0, 8}, {4, 4, 3},
	}
	g, err := FromEdges(5, edges, BuildOptions{Weighted: weighted})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.Symmetric() != b.Symmetric() || a.Weighted() != b.Weighted() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.offsets[v] != b.offsets[v] {
			return false
		}
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			return false
		}
		if a.weights != nil && a.weights[i] != b.weights[i] {
			return false
		}
	}
	return true
}

func TestAdjacencyRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := sampleGraph(t, weighted)
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadAdjacency(&buf, false)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Errorf("weighted=%v: round trip mismatch", weighted)
		}
	}
}

func TestAdjacencyHeaderName(t *testing.T) {
	g := sampleGraph(t, true)
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "WeightedAdjacencyGraph\n") {
		t.Errorf("weighted header missing: %q", buf.String()[:30])
	}
}

func TestReadAdjacencyWhitespaceTolerant(t *testing.T) {
	// Space-separated single-line layout must parse too.
	in := "AdjacencyGraph 3 3 0 1 2 1 2 0"
	g, err := ReadAdjacency(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "NotAGraph\n1\n0\n0\n"},
		{"truncated counts", "AdjacencyGraph\n5\n"},
		{"truncated offsets", "AdjacencyGraph\n3\n2\n0\n"},
		{"truncated edges", "AdjacencyGraph\n2\n2\n0\n1\n0\n"},
		{"edge out of range", "AdjacencyGraph\n2\n1\n0\n1\n9\n"},
		{"negative n", "AdjacencyGraph\n-1\n0\n"},
		{"garbage token", "AdjacencyGraph\nxyz\n0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadAdjacency(strings.NewReader(tc.in), false); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := sampleGraph(t, weighted)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Errorf("weighted=%v: binary round trip mismatch", weighted)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadSaveFileAutodetect(t *testing.T) {
	dir := t.TempDir()
	g := sampleGraph(t, true)

	textPath := filepath.Join(dir, "g.adj")
	if err := SaveFile(textPath, g, false); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "g.bin")
	if err := SaveFile(binPath, g, true); err != nil {
		t.Fatal(err)
	}

	gt, err := LoadFile(textPath, false)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := LoadFile(binPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, gt) || !graphsEqual(g, gb) {
		t.Error("file round trips mismatch")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing"), false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSymmetricFlagPreservedInBinary(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 0}, {1, 2, 0}}, BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Symmetric() {
		t.Error("symmetric flag lost in binary round trip")
	}
}

func TestBinaryTruncationErrors(t *testing.T) {
	g := sampleGraph(t, true)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Header layout: magic [0,8), flags [8,12), n [12,20), m [20,28).
	cases := []struct {
		name    string
		cut     int
		wantSub string
	}{
		{"mid magic", 4, "magic"},
		{"mid flags", 10, "flags"},
		{"mid vertex count", 16, "vertex count"},
		{"mid edge count", 24, "edge count"},
		{"mid offsets", 28 + 8*3, "offsets"},
		{"mid edges", 28 + 8*6 + 4*2, "edges"},
		{"mid weights", len(valid) - 2, "weights"},
	}
	for _, tc := range cases {
		_, err := ReadBinary(bytes.NewReader(valid[:tc.cut]))
		if err == nil {
			t.Errorf("%s: truncated input accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not name the %s section", tc.name, err, tc.wantSub)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: error %q does not wrap io.ErrUnexpectedEOF", tc.name, err)
		}
	}
}

func TestBinaryRejectsUnknownFlags(t *testing.T) {
	g := sampleGraph(t, false)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	mut := buf.Bytes()
	mut[8] |= 0x80 // set an undefined flag bit
	_, err := ReadBinary(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("unknown flag bits accepted")
	}
	if !strings.Contains(err.Error(), "flag") {
		t.Errorf("error %q does not mention flags", err)
	}
}

func TestAdjacencyRejectsOverflowingWeight(t *testing.T) {
	in := "WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n4294967296\n"
	_, err := ReadAdjacency(strings.NewReader(in), false)
	if err == nil {
		t.Fatal("weight overflowing int32 accepted")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Errorf("error %q does not mention overflow", err)
	}
}
