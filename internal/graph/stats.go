package graph

import (
	"fmt"

	"ligra/internal/parallel"
)

// Stats summarizes a graph's structure; used by Table 1 of the evaluation
// and by the CLI tools.
type Stats struct {
	Vertices    int
	Edges       int64
	Symmetric   bool
	Weighted    bool
	MaxOutDeg   int
	MaxInDeg    int
	AvgDeg      float64
	ZeroDegree  int   // vertices with out-degree 0
	SelfLoops   int64 // edges with Src == Dst
	MemoryBytes int64 // backend-reported footprint (0 when the view does not expose one)
}

// ComputeStats scans g and returns its Stats. It accepts any View; the
// memory figure comes from the optional MemoryFootprint method and is 0
// for backends that do not report one.
func ComputeStats(g View) Stats {
	n := g.NumVertices()
	s := Stats{
		Vertices:  n,
		Edges:     g.NumEdges(),
		Symmetric: g.Symmetric(),
		Weighted:  g.Weighted(),
	}
	if n > 0 {
		s.MaxOutDeg = parallel.MaxFunc(n, func(i int) int { return g.OutDegree(uint32(i)) })
		s.MaxInDeg = parallel.MaxFunc(n, func(i int) int { return g.InDegree(uint32(i)) })
		s.AvgDeg = float64(g.NumEdges()) / float64(n)
		s.ZeroDegree = parallel.CountFunc(n, func(i int) bool { return g.OutDegree(uint32(i)) == 0 })
	}
	s.SelfLoops = parallel.SumFunc(n, func(i int) int64 {
		v := uint32(i)
		var c int64
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if d == v {
				c++
			}
			return true
		})
		return c
	})
	if mf, ok := g.(interface{ MemoryFootprint() int64 }); ok {
		s.MemoryBytes = mf.MemoryFootprint()
	}
	return s
}

// MemoryFootprint returns the approximate resident size of the CSR arrays
// in bytes. Unlike ComputeStats it does not scan edges, so it is cheap
// enough to call on every registry listing or metrics render.
func (g *Graph) MemoryFootprint() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.edges))*4 +
		int64(len(g.weights))*4 + int64(len(g.inOffsets))*8 +
		int64(len(g.inEdges))*4 + int64(len(g.inWeights))*4
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	kind := "directed"
	if s.Symmetric {
		kind = "symmetric"
	}
	w := ""
	if s.Weighted {
		w = " weighted"
	}
	return fmt.Sprintf("%s%s graph: n=%d m=%d avgdeg=%.2f maxout=%d maxin=%d zerodeg=%d selfloops=%d mem=%dB",
		kind, w, s.Vertices, s.Edges, s.AvgDeg, s.MaxOutDeg, s.MaxInDeg, s.ZeroDegree, s.SelfLoops, s.MemoryBytes)
}

// DegreeHistogram returns counts[k] = number of vertices with out-degree k,
// for k up to the maximum out-degree.
func DegreeHistogram(g View) []int64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	maxDeg := parallel.MaxFunc(n, func(i int) int { return g.OutDegree(uint32(i)) })
	counts := make([]int64, maxDeg+1)
	for v := 0; v < n; v++ {
		counts[g.OutDegree(uint32(v))]++
	}
	return counts
}

// Validate checks internal CSR invariants and, for symmetric graphs, that
// every edge has its reverse. It returns nil if the graph is well formed.
func Validate(g *Graph) error {
	n := g.NumVertices()
	if len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 || g.offsets[n] != g.m {
		return fmt.Errorf("graph: offsets endpoints [%d, %d], want [0, %d]",
			g.offsets[0], g.offsets[n], g.m)
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets decrease at %d", v)
		}
	}
	for i, d := range g.edges {
		if int(d) >= n {
			return fmt.Errorf("graph: edge %d out of range (%d >= %d)", i, d, n)
		}
	}
	if !g.symmetric {
		if len(g.inOffsets) != n+1 {
			return fmt.Errorf("graph: missing transpose on a directed graph")
		}
		var inM int64
		for v := 0; v < n; v++ {
			inM += int64(g.InDegree(uint32(v)))
		}
		if inM != g.m {
			return fmt.Errorf("graph: transpose has %d edges, want %d", inM, g.m)
		}
	} else {
		// Spot-check reversibility: count of (s,d) must equal count of (d,s).
		// Full verification is O(m log m); we do it exactly with a hash of
		// unordered pairs which must cancel out.
		var asym int64
		for v := uint32(0); int(v) < n; v++ {
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				if !hasEdge(g, d, v) {
					asym++
				}
				return true
			})
		}
		if asym != 0 {
			return fmt.Errorf("graph: symmetric graph has %d unpaired edges", asym)
		}
	}
	return nil
}

// hasEdge reports whether g has a directed edge s->d (binary search over the
// sorted CSR row when rows are sorted, falling back to a linear scan).
func hasEdge(g *Graph, s, d uint32) bool {
	row, _ := g.OutEdgesSlice(s)
	// Rows built by FromEdges are sorted; rows from arbitrary CSR may not
	// be. Detect sortedness cheaply for the common case.
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == d {
		return true
	}
	for _, x := range row {
		if x == d {
			return true
		}
	}
	return false
}
