package graph

import (
	"fmt"

	"ligra/internal/parallel"
)

// Relabel returns a copy of g with vertex IDs renamed by the permutation
// perm, where perm[old] = new. The permutation must be a bijection on
// [0, n). Relabeling is the standard locality optimization: placing
// related vertices near each other improves cache behaviour of
// traversals (and feeds the Ligra+ gap encoder smaller deltas).
func Relabel(g *Graph, perm []uint32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a bijection (value %d)", p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); int(v) < n; v++ {
		g.OutNeighbors(v, func(d uint32, w int32) bool {
			edges = append(edges, Edge{Src: perm[v], Dst: perm[d], Weight: w})
			return true
		})
	}
	ng, err := FromEdges(n, edges, BuildOptions{Weighted: g.Weighted()})
	if err != nil {
		return nil, err
	}
	// The edge list already contains both directions when g is symmetric;
	// re-symmetrizing would duplicate it, so just restore the flag.
	ng.symmetric = g.Symmetric()
	return ng, nil
}

// DegreeOrderPermutation returns the permutation that renames vertices in
// decreasing out-degree order (ties by original ID): perm[old] = rank.
func DegreeOrderPermutation(g View) []uint32 {
	n := g.NumVertices()
	order := make([]uint32, n)
	parallel.Iota(order, 0)
	parallel.SortFunc(order, func(a, b uint32) bool {
		da, db := g.OutDegree(a), g.OutDegree(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	perm := make([]uint32, n)
	parallel.For(n, func(rank int) { perm[order[rank]] = uint32(rank) })
	return perm
}

// InducedSubgraph returns the subgraph induced by keep (keep[v] reports
// whether v survives), along with old->new and new->old vertex ID maps.
// Edges with either endpoint dropped are removed. The result has the
// survivors renumbered densely in increasing original-ID order.
func InducedSubgraph(g *Graph, keep func(v uint32) bool) (*Graph, []uint32, []uint32, error) {
	n := g.NumVertices()
	newID := make([]uint32, n)
	oldID := make([]uint32, 0, n)
	var count uint32
	for v := uint32(0); int(v) < n; v++ {
		if keep(v) {
			newID[v] = count
			oldID = append(oldID, v)
			count++
		} else {
			newID[v] = ^uint32(0)
		}
	}
	if count == 0 {
		return nil, nil, nil, fmt.Errorf("graph: induced subgraph is empty")
	}
	var edges []Edge
	for _, v := range oldID {
		g.OutNeighbors(v, func(d uint32, w int32) bool {
			if newID[d] != ^uint32(0) {
				edges = append(edges, Edge{Src: newID[v], Dst: newID[d], Weight: w})
			}
			return true
		})
	}
	sub, err := FromEdges(int(count), edges, BuildOptions{Weighted: g.Weighted()})
	if err != nil {
		return nil, nil, nil, err
	}
	sub.symmetric = g.Symmetric()
	return sub, newID, oldID, nil
}

// FilterEdges returns a copy of g keeping only edges with keep(s, d, w)
// true — Ligra's packEdges/edgeFilter as a whole-graph operation. For
// symmetric graphs keep must itself be symmetric in (s, d) or the result
// will fail validation.
func FilterEdges(g *Graph, keep func(s, d uint32, w int32) bool) (*Graph, error) {
	n := g.NumVertices()
	var edges []Edge
	for v := uint32(0); int(v) < n; v++ {
		g.OutNeighbors(v, func(d uint32, w int32) bool {
			if keep(v, d, w) {
				edges = append(edges, Edge{Src: v, Dst: d, Weight: w})
			}
			return true
		})
	}
	ng, err := FromEdges(n, edges, BuildOptions{Weighted: g.Weighted()})
	if err != nil {
		return nil, err
	}
	ng.symmetric = g.Symmetric()
	return ng, nil
}
