package graph

import (
	"testing"
)

// triangleWithTail: 0-1-2 triangle plus 2-3 tail, symmetric, weighted.
func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(4, []Edge{
		{0, 1, 5}, {1, 2, 6}, {2, 0, 7}, {2, 3, 8},
	}, BuildOptions{Symmetrize: true, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRelabelIdentity(t *testing.T) {
	g := triangleWithTail(t)
	perm := []uint32{0, 1, 2, 3}
	ng, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != g.NumEdges() || !ng.Symmetric() {
		t.Fatal("identity relabel changed structure")
	}
	for v := uint32(0); v < 4; v++ {
		if ng.OutDegree(v) != g.OutDegree(v) {
			t.Errorf("degree of %d changed", v)
		}
	}
}

func TestRelabelPermutes(t *testing.T) {
	g := triangleWithTail(t)
	perm := []uint32{3, 2, 1, 0} // reverse
	ng, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Old vertex 3 (degree 1) is now vertex 0.
	if ng.OutDegree(0) != 1 || ng.OutDegree(1) != 3 {
		t.Errorf("degrees after relabel: %d %d", ng.OutDegree(0), ng.OutDegree(1))
	}
	if err := Validate(ng); err != nil {
		t.Error(err)
	}
	// Weights travel with edges: old edge 2-3 (w=8) is now 1-0.
	found := false
	ng.OutNeighbors(0, func(d uint32, w int32) bool {
		if d == 1 && w == 8 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("weight did not travel with the relabeled edge")
	}
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	g := triangleWithTail(t)
	if _, err := Relabel(g, []uint32{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := Relabel(g, []uint32{0, 0, 1, 2}); err == nil {
		t.Error("non-bijective permutation accepted")
	}
	if _, err := Relabel(g, []uint32{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestDegreeOrderPermutation(t *testing.T) {
	g := triangleWithTail(t)
	perm := DegreeOrderPermutation(g)
	// Vertex 2 has the highest degree (3) -> rank 0.
	if perm[2] != 0 {
		t.Errorf("perm[2] = %d, want 0", perm[2])
	}
	// Vertex 3 has the lowest degree (1) -> rank 3.
	if perm[3] != 3 {
		t.Errorf("perm[3] = %d, want 3", perm[3])
	}
	ng, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees must now be non-increasing.
	for v := 1; v < ng.NumVertices(); v++ {
		if ng.OutDegree(uint32(v)) > ng.OutDegree(uint32(v-1)) {
			t.Fatalf("degree order violated at %d", v)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail(t)
	// Keep the triangle only.
	sub, newID, oldID, err := InducedSubgraph(g, func(v uint32) bool { return v != 3 })
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 6 {
		t.Fatalf("subgraph n=%d m=%d, want 3/6", sub.NumVertices(), sub.NumEdges())
	}
	if !sub.Symmetric() {
		t.Error("symmetry lost")
	}
	if err := Validate(sub); err != nil {
		t.Error(err)
	}
	for old := uint32(0); old < 3; old++ {
		if oldID[newID[old]] != old {
			t.Errorf("ID maps inconsistent for %d", old)
		}
	}
	if newID[3] != ^uint32(0) {
		t.Error("dropped vertex has a new ID")
	}
}

func TestInducedSubgraphEmptyRejected(t *testing.T) {
	g := triangleWithTail(t)
	if _, _, _, err := InducedSubgraph(g, func(uint32) bool { return false }); err == nil {
		t.Error("empty subgraph accepted")
	}
}

func TestFilterEdges(t *testing.T) {
	g := triangleWithTail(t)
	// Drop the tail edge (weight 8) in both directions.
	ng, err := FilterEdges(g, func(_, _ uint32, w int32) bool { return w != 8 })
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != 6 {
		t.Fatalf("m = %d, want 6", ng.NumEdges())
	}
	if ng.OutDegree(3) != 0 {
		t.Error("tail vertex still has edges")
	}
	if err := Validate(ng); err != nil {
		t.Error(err)
	}
}

func TestFilterEdgesDirected(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 0, 3}}, BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	ng, err := FilterEdges(g, func(s, _ uint32, _ int32) bool { return s != 1 })
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != 2 || ng.OutDegree(1) != 0 {
		t.Errorf("directed filter wrong: m=%d deg(1)=%d", ng.NumEdges(), ng.OutDegree(1))
	}
	if ng.InDegree(2) != 0 {
		t.Error("transpose not rebuilt after filtering")
	}
}
