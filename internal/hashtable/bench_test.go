package hashtable

import (
	"math/rand"
	"sync"
	"testing"
)

func BenchmarkInsertSequential(b *testing.B) {
	const n = 1 << 16
	keys := make([]uint32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint32() >> 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSet(n)
		for _, k := range keys {
			s.Insert(k)
		}
	}
}

func BenchmarkInsertConcurrent(b *testing.B) {
	const n = 1 << 16
	keys := make([]uint32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint32() >> 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSet(n)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < n; j += 4 {
					s.Insert(keys[j])
				}
			}(w)
		}
		wg.Wait()
	}
}

func BenchmarkInsertGoMapBaseline(b *testing.B) {
	const n = 1 << 16
	keys := make([]uint32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint32() >> 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[uint32]struct{}, n)
		for _, k := range keys {
			m[k] = struct{}{}
		}
	}
}

func BenchmarkContains(b *testing.B) {
	const n = 1 << 16
	s := NewSet(n)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint32() >> 1
		s.Insert(keys[i])
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if s.Contains(keys[i%n]) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkElements(b *testing.B) {
	const n = 1 << 16
	s := NewSet(n)
	for k := uint32(0); k < n; k++ {
		s.Insert(k * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Elements(); len(got) != n {
			b.Fatal("wrong size")
		}
	}
}
