// Package hashtable implements a phase-concurrent, history-independent
// hash set for 32-bit keys after Shun and Blelloch (SPAA 2014): within an
// insert phase, any number of goroutines may insert concurrently, and the
// final memory layout depends only on the *set* of keys, not on insertion
// order or interleaving — the linear-probing chains are kept sorted by
// priority and inserts displace lower-priority keys, so the table is
// deterministic. Reads (Contains, Elements) form a separate phase and
// must not overlap inserts.
//
// In the Ligra reproduction this is the alternative duplicate-removal
// strategy for sparse edgeMap outputs (the paper's remDuplicates uses a
// CAS-claimed array of size |V|; a hash set costs O(frontier) space
// instead), exercised by the ablation-dedup experiment.
package hashtable

import (
	"sync/atomic"

	"ligra/internal/parallel"
)

// empty marks an unoccupied slot. The sentinel key ^uint32(0) is
// therefore not insertable; Ligra uses the same value as its "no vertex"
// sentinel, so this costs nothing in practice.
const empty = ^uint32(0)

// Set is a fixed-capacity phase-concurrent hash set of uint32 keys.
type Set struct {
	slots []uint32
	mask  uint32
}

// NewSet returns a set that can hold up to capacity keys with a load
// factor of at most 1/2 (the table size is the next power of two of
// 2*capacity).
func NewSet(capacity int) *Set {
	if capacity < 1 {
		capacity = 1
	}
	size := 4
	for size < 2*capacity {
		size <<= 1
	}
	s := &Set{slots: make([]uint32, size), mask: uint32(size - 1)}
	for i := range s.slots {
		s.slots[i] = empty
	}
	return s
}

// hash32 is a strong 32-bit mixer (finalizer of MurmurHash3).
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85EBCA6B
	x ^= x >> 13
	x *= 0xC2B2AE35
	x ^= x >> 16
	return x
}

// priority orders keys along a probe chain: primarily by hash position,
// then by key value. Chains hold keys in decreasing priority starting at
// their home slot, which is what makes the layout history-independent.
func (s *Set) priority(k uint32) uint64 {
	return uint64(hash32(k)&s.mask)<<32 | uint64(k)
}

// Insert adds k to the set, returning true if k was absent. Safe to call
// concurrently with other Inserts (but not with reads). k must not be the
// reserved sentinel ^uint32(0).
func (s *Set) Insert(k uint32) bool {
	if k == empty {
		panic("hashtable: cannot insert the reserved sentinel key")
	}
	i := hash32(k) & s.mask
	pk := s.priority(k)
	for probes := 0; probes <= len(s.slots); probes++ {
		cur := atomic.LoadUint32(&s.slots[i])
		switch {
		case cur == k:
			return false
		case cur == empty:
			if atomic.CompareAndSwapUint32(&s.slots[i], empty, k) {
				return true
			}
			// Lost the race; re-examine the same slot.
			probes--
		case s.priority(cur) < pk:
			// k has higher priority: displace cur and keep inserting it
			// further down the chain (ordered linear probing).
			if atomic.CompareAndSwapUint32(&s.slots[i], cur, k) {
				k = cur
				pk = s.priority(k)
			}
			// On CAS failure re-examine the same slot with the new value.
			probes--
			continue
		}
		i = (i + 1) & s.mask
	}
	panic("hashtable: table full (capacity exceeded)")
}

// Contains reports whether k is in the set. Must not run concurrently
// with Insert.
func (s *Set) Contains(k uint32) bool {
	if k == empty {
		return false
	}
	i := hash32(k) & s.mask
	pk := s.priority(k)
	for probes := 0; probes <= len(s.slots); probes++ {
		cur := s.slots[i]
		if cur == k {
			return true
		}
		// Chains are sorted by decreasing priority: once we pass k's
		// priority position (or hit an empty slot) it cannot appear later.
		if cur == empty || s.priority(cur) < pk {
			return false
		}
		i = (i + 1) & s.mask
	}
	return false
}

// Len returns the number of keys stored (a scan; phase-safe with reads).
func (s *Set) Len() int {
	return parallel.CountFunc(len(s.slots), func(i int) bool {
		return s.slots[i] != empty
	})
}

// Elements returns the stored keys, packed in slot order. Because the
// layout is history-independent, the returned order is deterministic for
// a given key set regardless of how it was inserted. Must not run
// concurrently with Insert.
func (s *Set) Elements() []uint32 {
	return parallel.Filter(s.slots, func(k uint32) bool { return k != empty })
}

// Reset clears the set for reuse (sequential).
func (s *Set) Reset() {
	parallel.Fill(s.slots, empty)
}

// TableSize returns the number of slots (for tests and sizing analysis).
func (s *Set) TableSize() int { return len(s.slots) }
