// Package hashtable implements a phase-concurrent, history-independent
// hash set for 32-bit keys after Shun and Blelloch (SPAA 2014): within an
// insert phase, any number of goroutines may insert concurrently, and the
// final memory layout depends only on the *set* of keys, not on insertion
// order or interleaving — the linear-probing chains are kept sorted by
// priority and inserts displace lower-priority keys, so the table is
// deterministic. Reads (Contains, Elements) form a separate phase and
// must not overlap inserts.
//
// In the Ligra reproduction this is the alternative duplicate-removal
// strategy for sparse edgeMap outputs (the paper's remDuplicates uses a
// CAS-claimed array of size |V|; a hash set costs O(frontier) space
// instead), exercised by the ablation-dedup experiment.
package hashtable

import (
	"sync"
	"sync/atomic"

	"ligra/internal/parallel"
)

// empty marks an unoccupied slot. The sentinel key ^uint32(0) is
// therefore not insertable; Ligra uses the same value as its "no vertex"
// sentinel, so this costs nothing in practice.
const empty = ^uint32(0)

// Set is a phase-concurrent hash set of uint32 keys. It starts at the
// capacity given to NewSet and grows (doubling and rehashing) when an
// insert exhausts its probe budget, so Insert never fails on an
// undersized initial estimate.
type Set struct {
	// mu is held shared by inserters and exclusively by growth: a grow
	// must observe no in-flight probe sequences, since it swaps out the
	// slot array those sequences walk.
	mu    sync.RWMutex
	slots []uint32
	mask  uint32
}

// NewSet returns a set sized for capacity keys with a load factor of at
// most 1/2 (the table size is the next power of two of 2*capacity); the
// table grows automatically if more keys arrive.
func NewSet(capacity int) *Set {
	if capacity < 1 {
		capacity = 1
	}
	size := 4
	for size < 2*capacity {
		size <<= 1
	}
	s := &Set{slots: make([]uint32, size), mask: uint32(size - 1)}
	for i := range s.slots {
		s.slots[i] = empty
	}
	return s
}

// hash32 is a strong 32-bit mixer (finalizer of MurmurHash3).
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85EBCA6B
	x ^= x >> 13
	x *= 0xC2B2AE35
	x ^= x >> 16
	return x
}

// priorityAt orders keys along a probe chain of a table with the given
// mask: primarily by hash position, then by key value. Chains hold keys
// in decreasing priority starting at their home slot, which is what makes
// the layout history-independent.
func priorityAt(mask, k uint32) uint64 {
	return uint64(hash32(k)&mask)<<32 | uint64(k)
}

func (s *Set) priority(k uint32) uint64 { return priorityAt(s.mask, k) }

// Insert adds k to the set, returning true if k was absent. Safe to call
// concurrently with other Inserts (but not with reads). k must not be the
// reserved sentinel ^uint32(0). If the table is too loaded to place the
// key within its probe budget it grows (doubling and rehashing) and
// retries instead of failing.
func (s *Set) Insert(k uint32) bool {
	if k == empty {
		panic("hashtable: cannot insert the reserved sentinel key")
	}
	// The displacement chain may be cut short by a full table while
	// carrying a key that is no longer k: by then k itself has been
	// placed (it displaced a lower-priority key), so the answer is known
	// and the retries only need to re-home the carried key.
	result, known := false, false
	pending := k
	for {
		s.mu.RLock()
		size := len(s.slots)
		res, carry, full := s.tryInsert(pending)
		s.mu.RUnlock()
		if !full {
			if !known {
				result = res
			}
			return result
		}
		if carry != pending && !known {
			// pending (== k) displaced its way into the table before the
			// chain ran out of room, so k was absent.
			result, known = true, true
		}
		pending = carry
		s.grow(size)
	}
}

// tryInsert runs one ordered-linear-probing pass for k under a read lock.
// It returns (inserted, carried key, false) on completion, or
// (_, key still needing placement, true) when the probe budget is
// exhausted — the carried key has been *removed* from the table by a
// displacement and must be re-inserted after growth.
func (s *Set) tryInsert(k uint32) (bool, uint32, bool) {
	i := hash32(k) & s.mask
	pk := s.priority(k)
	for probes := 0; probes <= len(s.slots); probes++ {
		cur := atomic.LoadUint32(&s.slots[i])
		switch {
		case cur == k:
			return false, k, false
		case cur == empty:
			if atomic.CompareAndSwapUint32(&s.slots[i], empty, k) {
				return true, k, false
			}
			// Lost the race; re-examine the same slot.
			probes--
		case s.priority(cur) < pk:
			// k has higher priority: displace cur and keep inserting it
			// further down the chain (ordered linear probing).
			if atomic.CompareAndSwapUint32(&s.slots[i], cur, k) {
				k = cur
				pk = s.priority(k)
			}
			// On CAS failure re-examine the same slot with the new value.
			probes--
			continue
		}
		i = (i + 1) & s.mask
	}
	return false, k, true
}

// grow doubles the table observed at oldSize and rehashes every key. It
// no-ops if another goroutine already grew past oldSize while this one
// waited for the write lock, so concurrent inserters hitting a full table
// trigger exactly one doubling between them.
func (s *Set) grow(oldSize int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.slots) != oldSize {
		return
	}
	newSize := 2 * oldSize
	newSlots := make([]uint32, newSize)
	for i := range newSlots {
		newSlots[i] = empty
	}
	newMask := uint32(newSize - 1)
	for _, k := range s.slots {
		if k != empty {
			insertSeq(newSlots, newMask, k)
		}
	}
	s.slots, s.mask = newSlots, newMask
}

// insertSeq is the sequential (single-writer) ordered-probing insert used
// during rehash; the target table is private so no atomics are needed and
// it can never be full (rehash at most halves the load factor).
func insertSeq(slots []uint32, mask, k uint32) {
	i := hash32(k) & mask
	pk := priorityAt(mask, k)
	for {
		cur := slots[i]
		if cur == k {
			return
		}
		if cur == empty {
			slots[i] = k
			return
		}
		if priorityAt(mask, cur) < pk {
			slots[i], k = k, cur
			pk = priorityAt(mask, k)
		}
		i = (i + 1) & mask
	}
}

// Contains reports whether k is in the set. Must not run concurrently
// with Insert.
func (s *Set) Contains(k uint32) bool {
	if k == empty {
		return false
	}
	i := hash32(k) & s.mask
	pk := s.priority(k)
	for probes := 0; probes <= len(s.slots); probes++ {
		cur := s.slots[i]
		if cur == k {
			return true
		}
		// Chains are sorted by decreasing priority: once we pass k's
		// priority position (or hit an empty slot) it cannot appear later.
		if cur == empty || s.priority(cur) < pk {
			return false
		}
		i = (i + 1) & s.mask
	}
	return false
}

// Len returns the number of keys stored (a scan; phase-safe with reads).
func (s *Set) Len() int {
	return parallel.CountFunc(len(s.slots), func(i int) bool {
		return s.slots[i] != empty
	})
}

// Elements returns the stored keys, packed in slot order. Because the
// layout is history-independent, the returned order is deterministic for
// a given key set regardless of how it was inserted. Must not run
// concurrently with Insert.
func (s *Set) Elements() []uint32 {
	return parallel.Filter(s.slots, func(k uint32) bool { return k != empty })
}

// Reset clears the set for reuse (sequential).
func (s *Set) Reset() {
	parallel.Fill(s.slots, empty)
}

// TableSize returns the number of slots (for tests and sizing analysis).
func (s *Set) TableSize() int { return len(s.slots) }
