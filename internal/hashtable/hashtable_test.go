package hashtable

import (
	"math/rand"
	"os"
	"sync"
	"testing"

	"ligra/internal/parallel"
)

func TestMain(m *testing.M) {
	parallel.SetProcs(4)
	os.Exit(m.Run())
}

func TestInsertContains(t *testing.T) {
	s := NewSet(100)
	keys := []uint32{0, 1, 5, 1000, 1 << 30}
	for _, k := range keys {
		if !s.Insert(k) {
			t.Errorf("first insert of %d reported duplicate", k)
		}
	}
	for _, k := range keys {
		if s.Insert(k) {
			t.Errorf("second insert of %d reported new", k)
		}
		if !s.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	for _, k := range []uint32{2, 999, 1 << 29} {
		if s.Contains(k) {
			t.Errorf("Contains(%d) = true for absent key", k)
		}
	}
	if s.Len() != len(keys) {
		t.Errorf("Len = %d, want %d", s.Len(), len(keys))
	}
}

func TestSentinelRejected(t *testing.T) {
	s := NewSet(4)
	if s.Contains(^uint32(0)) {
		t.Error("sentinel contained")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("sentinel insert did not panic")
		}
	}()
	s.Insert(^uint32(0))
}

func TestElementsAndReset(t *testing.T) {
	s := NewSet(50)
	for k := uint32(0); k < 50; k++ {
		s.Insert(k * 3)
	}
	elems := s.Elements()
	if len(elems) != 50 {
		t.Fatalf("Elements returned %d keys", len(elems))
	}
	seen := map[uint32]bool{}
	for _, k := range elems {
		if k%3 != 0 || seen[k] {
			t.Fatalf("bad element %d", k)
		}
		seen[k] = true
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("Reset left keys behind")
	}
	if s.Contains(3) {
		t.Error("Contains true after Reset")
	}
}

// TestHistoryIndependence is the defining property (Shun-Blelloch SPAA'14):
// the final slot layout depends only on the key set, not on insertion
// order or concurrency.
func TestHistoryIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint32, 500)
	for i := range keys {
		keys[i] = rng.Uint32() >> 1
	}

	layout := func(order []uint32, concurrent bool) []uint32 {
		s := NewSet(len(order))
		if concurrent {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(order); i += 4 {
						s.Insert(order[i])
					}
				}(w)
			}
			wg.Wait()
		} else {
			for _, k := range order {
				s.Insert(k)
			}
		}
		return append([]uint32(nil), s.slots...)
	}

	base := layout(keys, false)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]uint32(nil), keys...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		seq := layout(shuffled, false)
		con := layout(shuffled, true)
		for i := range base {
			if seq[i] != base[i] {
				t.Fatalf("trial %d: sequential layout differs at slot %d", trial, i)
			}
			if con[i] != base[i] {
				t.Fatalf("trial %d: concurrent layout differs at slot %d", trial, i)
			}
		}
	}
}

func TestConcurrentInsertExactlyOnce(t *testing.T) {
	const n = 20000
	s := NewSet(n)
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for k := uint32(0); k < n; k++ {
				if s.Insert(k) {
					local++
				}
			}
			mu.Lock()
			wins += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if wins != n {
		t.Errorf("total successful inserts %d, want %d", wins, n)
	}
	if s.Len() != n {
		t.Errorf("Len = %d, want %d", s.Len(), n)
	}
	for k := uint32(0); k < n; k++ {
		if !s.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSet(2000)
	model := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		k := uint32(rng.Intn(3000))
		got := s.Insert(k)
		want := !model[k]
		model[k] = true
		if got != want {
			t.Fatalf("insert %d: got %v, want %v", k, got, want)
		}
	}
	for k := uint32(0); k < 3000; k++ {
		if s.Contains(k) != model[k] {
			t.Fatalf("Contains(%d) = %v, want %v", k, s.Contains(k), model[k])
		}
	}
	if s.Len() != len(model) {
		t.Errorf("Len = %d, want %d", s.Len(), len(model))
	}
}

func TestCapacitySizing(t *testing.T) {
	s := NewSet(1)
	if s.TableSize() < 2 {
		t.Errorf("table size %d too small", s.TableSize())
	}
	s0 := NewSet(0)
	s0.Insert(7)
	if !s0.Contains(7) {
		t.Error("minimal set broken")
	}
	// Power-of-two sizing with load factor <= 1/2.
	s100 := NewSet(100)
	if s100.TableSize() < 200 || s100.TableSize()&(s100.TableSize()-1) != 0 {
		t.Errorf("table size %d not a power of two >= 200", s100.TableSize())
	}
}

func TestGrowthPastInitialCapacity(t *testing.T) {
	// Insert two orders of magnitude past the initial capacity: the table
	// must grow instead of panicking, keep every key, and stay
	// history-independent across the rehashes.
	s := NewSet(4)
	const n = 1000
	for k := uint32(0); k < n; k++ {
		if !s.Insert(k) {
			t.Fatalf("first insert of %d reported duplicate", k)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d after growth, want %d", got, n)
	}
	for k := uint32(0); k < n; k++ {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after growth", k)
		}
		if s.Insert(k) {
			t.Fatalf("re-insert of %d reported new after growth", k)
		}
	}
	if s.TableSize() < n {
		t.Fatalf("TableSize = %d, cannot hold %d keys", s.TableSize(), n)
	}
}

func TestGrowthConcurrent(t *testing.T) {
	// Hammer a deliberately undersized table from several goroutines; the
	// grow path must lose no keys and report each key new exactly once.
	s := NewSet(2)
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	newCount := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				// Overlapping key ranges across workers force duplicate races.
				k := uint32(r.Intn(perW * 2))
				if s.Insert(k) {
					newCount[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range newCount {
		total += c
	}
	if total != s.Len() {
		t.Fatalf("sum of 'new' inserts = %d, but Len = %d", total, s.Len())
	}
	for _, k := range s.Elements() {
		if !s.Contains(k) {
			t.Fatalf("element %d not found by Contains", k)
		}
	}
}
