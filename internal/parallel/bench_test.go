package parallel

import (
	"math/rand"
	"testing"
)

func BenchmarkForGrain(b *testing.B) {
	const n = 1 << 20
	sink := make([]int64, n)
	for _, grain := range []int{64, 1024, 4096} {
		b.Run(benchName("grain", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForGrain(n, grain, func(j int) { sink[j]++ })
			}
		})
	}
}

func benchName(prefix string, v int) string {
	switch {
	case v >= 1<<20:
		return prefix + "=1M"
	default:
		return prefix + "=" + itoa(v)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkScanExclusive(b *testing.B) {
	const n = 1 << 20
	in := make([]int64, n)
	out := make([]int64, n)
	for i := range in {
		in[i] = int64(i % 7)
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanExclusive(in, out)
	}
}

func BenchmarkReduceSum(b *testing.B) {
	const n = 1 << 20
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(xs)
	}
}

func BenchmarkFilter(b *testing.B) {
	const n = 1 << 20
	xs := make([]uint32, n)
	for i := range xs {
		xs[i] = uint32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Filter(xs, func(x uint32) bool { return x%3 == 0 })
	}
}

func BenchmarkSortFunc(b *testing.B) {
	const n = 1 << 18
	rng := rand.New(rand.NewSource(1))
	proto := make([]uint64, n)
	for i := range proto {
		proto[i] = rng.Uint64()
	}
	work := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, proto)
		SortFunc(work, func(a, c uint64) bool { return a < c })
	}
}

func BenchmarkRadixSortByKey(b *testing.B) {
	const n = 1 << 18
	rng := rand.New(rand.NewSource(1))
	proto := make([]uint64, n)
	for i := range proto {
		proto[i] = rng.Uint64() % (1 << 32)
	}
	work := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, proto)
		RadixSortByKey(work, 1<<32, func(v uint64) int64 { return int64(v) })
	}
}

func BenchmarkCountingSortByKey(b *testing.B) {
	const n = 1 << 18
	const bucketCount = 1 << 11
	rng := rand.New(rand.NewSource(1))
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(rng.Intn(bucketCount))
	}
	out := make([]uint32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountingSortByKey(in, out, bucketCount, func(v uint32) int { return int(v) })
	}
}

func BenchmarkPackIndex(b *testing.B) {
	const n = 1 << 20
	for i := 0; i < b.N; i++ {
		PackIndex[uint32](n, func(j int) bool { return j%8 == 0 })
	}
}
