package parallel

import (
	"context"
	"runtime"
	"runtime/debug"

	"ligra/internal/faultinject"
)

// The context-aware primitives mirror their plain counterparts with two
// contract changes that make the runtime servable:
//
//   - Cooperative cancellation: ctx is checked once per dispatched chunk,
//     so a loop over billions of iterations returns within one chunk
//     (at most `grain` iterations per worker) of ctx being cancelled.
//     The returned error is ctx.Err() (context.Canceled or
//     context.DeadlineExceeded). Iterations already started complete;
//     none are started after cancellation is observed.
//   - Panic containment: a panic in any worker is captured, the other
//     workers stop claiming chunks, and the panic is returned as a
//     *PanicError instead of re-panicking.
//
// A nil ctx disables the cancellation checks (it behaves like
// context.Background()) but keeps the panic-to-error conversion.
//
// The context can additionally carry a per-call worker cap (WithProcs):
// every primitive here sizes its worker pool by CtxProcs(ctx) instead of
// the process-wide Procs().

// ForCtx is the context-aware For.
func ForCtx(ctx context.Context, n int, body func(i int)) error {
	return ForGrainCtx(ctx, n, 0, body)
}

// ForGrainCtx is the context-aware ForGrain.
func ForGrainCtx(ctx context.Context, n, grain int, body func(i int)) error {
	return ForRangeGrainCtx(ctx, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRangeCtx is the context-aware ForRange.
func ForRangeCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	return ForRangeGrainCtx(ctx, n, 0, body)
}

// ForRangeGrainCtx is the context-aware ForRangeGrain and the engine
// behind every parallel loop in the package. Work is dispatched onto
// the persistent worker pool (see pool.go) — no goroutines are spawned
// per call — unless the loop runs inline: procs == 1, a single chunk,
// or an auto-grain loop small enough for the sequential cutoff.
func ForRangeGrainCtx(ctx context.Context, n, grain int, body func(lo, hi int)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if n <= 0 {
		return nil
	}
	procs := CtxProcs(ctx)
	auto := grain <= 0
	if auto {
		grain = defaultGrain(n, procs)
	}
	chunks := (n + grain - 1) / grain
	if procs == 1 || chunks == 1 || (auto && n <= seqCutoff) {
		schedStats.inlineRuns.Add(1)
		if procs > 1 && chunks > 1 {
			schedStats.cutoffRuns.Add(1)
		}
		if ctx == nil {
			// No cancellation to observe: run as one chunk, preserving the
			// plain primitives' zero per-chunk overhead.
			return forSeq(nil, n, n, 1, body)
		}
		return forSeq(ctx, n, grain, chunks, body)
	}
	return runParallel(ctx, n, grain, chunks, procs, func(_, _, lo, hi int) {
		body(lo, hi)
	})
}

// forSeq runs the loop on the calling goroutine, still honouring chunk
// granularity for cancellation checks and the fault-injection hook.
func forSeq(ctx context.Context, n, grain, chunks int, body func(lo, hi int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	for c := 0; c < chunks; c++ {
		if ctx != nil {
			// Yield between chunks so the goroutine that cancels the
			// context (a deadline timer, a signal handler) can run even on
			// GOMAXPROCS=1, where it would otherwise wait ~10ms for the
			// runtime's forced preemption.
			if c > 0 {
				runtime.Gosched()
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		faultinject.OnChunk()
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
	// Match the parallel path, which reports ctx.Err() after the workers
	// drain: a cancellation raised inside the final (or only) chunk is
	// still surfaced.
	return ctxErr(ctx)
}

// DoCtx is the context-aware Do: thunks observed after cancellation are
// skipped (already-running ones complete), and a panic in any thunk is
// returned as a *PanicError. Thunks are dispatched onto the persistent
// worker pool; the caller always executes at least the first one.
func DoCtx(ctx context.Context, thunks ...func()) error {
	if len(thunks) == 0 {
		return ctxErr(ctx)
	}
	procs := CtxProcs(ctx)
	if procs == 1 || len(thunks) == 1 {
		schedStats.inlineRuns.Add(1)
		var box panicBox
		for _, t := range thunks {
			func() {
				defer box.capture()
				if box.stopped.Load() || (ctx != nil && ctx.Err() != nil) {
					return
				}
				t()
			}()
		}
		if box.err != nil {
			return box.err
		}
		return ctxErr(ctx)
	}
	// One chunk per thunk; the pool's chunk loop provides the stop-on-
	// panic and skip-after-cancellation semantics.
	return runParallel(ctx, len(thunks), 1, len(thunks), procs, func(_, c, _, _ int) {
		thunks[c]()
	})
}

// ReduceCtx is the context-aware Reduce.
func ReduceCtx[T any](ctx context.Context, n int, id T, fn func(i int) T, combine func(a, b T) T) (T, error) {
	if n <= 0 {
		return id, ctxErr(ctx)
	}
	blocks := numBlocks(n)
	partial := make([]T, blocks)
	err := ForGrainCtx(ctx, blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		acc := id
		for i := lo; i < hi; i++ {
			acc = combine(acc, fn(i))
		}
		partial[b] = acc
	})
	if err != nil {
		return id, err
	}
	acc := id
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc, nil
}

// SumFuncCtx is the context-aware SumFunc.
func SumFuncCtx[T Number](ctx context.Context, n int, fn func(i int) T) (T, error) {
	var zero T
	return ReduceCtx(ctx, n, zero, fn, func(a, b T) T { return a + b })
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
