package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"ligra/internal/faultinject"
)

func TestForCtxNilContextCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4097} {
		var count atomic.Int64
		if err := ForCtx(nil, n, func(i int) { count.Add(1) }); err != nil {
			t.Fatalf("n=%d: unexpected error %v", n, err)
		}
		if int(count.Load()) != n {
			t.Fatalf("n=%d: body ran %d times", n, count.Load())
		}
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int64
	err := ForCtx(ctx, 1000, func(i int) { count.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count.Load() != 0 {
		t.Errorf("body ran %d times on a pre-cancelled context", count.Load())
	}
}

func TestForCtxMidLoopCancelStopsWithinChunks(t *testing.T) {
	// Cancel from inside the body: later chunks must not be dispatched, so
	// far fewer than n iterations run (each chunk is bounded).
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var count atomic.Int64
	err := ForGrainCtx(ctx, n, 64, func(i int) {
		if count.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := count.Load(); got == n {
		t.Errorf("all %d iterations ran despite mid-loop cancel", n)
	}
}

func TestForCtxReturnsPanicError(t *testing.T) {
	err := ForCtx(nil, 1000, func(i int) {
		if i == 500 {
			panic("boom at 500")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "boom at 500" {
		t.Errorf("PanicError.Value = %v, want the original panic value", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	if !strings.Contains(pe.Error(), "boom at 500") {
		t.Errorf("Error() = %q, does not mention the panic value", pe.Error())
	}
}

func TestForRepanicsWithTypedPanicError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("For did not propagate the worker panic")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "typed" {
			t.Errorf("PanicError.Value = %v, want %q", pe.Value, "typed")
		}
	}()
	For(100, func(i int) {
		if i == 42 {
			panic("typed")
		}
	})
}

func TestForCtxSequentialPathPanic(t *testing.T) {
	// procs=1 forces the sequential path; panics must still convert.
	prev := SetProcs(1)
	defer SetProcs(prev)
	err := ForCtx(context.Background(), 10, func(i int) {
		if i == 3 {
			panic("seq boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestDoCtx(t *testing.T) {
	var a, b atomic.Bool
	if err := DoCtx(nil, func() { a.Store(true) }, func() { b.Store(true) }); err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Error("DoCtx skipped a thunk")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DoCtx(ctx, func() {}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled DoCtx err = %v", err)
	}
}

func TestReduceAndSumCtx(t *testing.T) {
	got, err := SumFuncCtx(nil, 1000, func(i int) int64 { return int64(i) })
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(999 * 1000 / 2); got != want {
		t.Errorf("SumFuncCtx = %d, want %d", got, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SumFuncCtx(ctx, 1000, func(i int) int64 { return 1 }); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled SumFuncCtx err = %v", err)
	}
}

func TestFaultInjectPanicOnChunkSurfacesAsPanicError(t *testing.T) {
	disarm := faultinject.PanicOnChunk(2, "injected chunk fault")
	defer disarm()
	err := ForGrainCtx(context.Background(), 10000, 16, func(i int) {})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError from injected fault", err)
	}
	if pe.Value != "injected chunk fault" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
}

func TestForCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	err := ForCtx(ctx, 100, func(i int) {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
