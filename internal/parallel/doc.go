// Package parallel provides the nested-parallel primitives that the rest of
// the framework is written against: parallel loops, reductions, prefix sums
// (scans), filtering/packing, and parallel sorting.
//
// Ligra (Shun & Blelloch, PPoPP 2013) is implemented on top of a Cilk-style
// work-stealing runtime with parallel_for, plus the sequence primitives of
// the PBBS library (reduce, scan, filter, pack). This package plays that
// role for the Go port. Loops are executed by a pool of goroutines (one per
// GOMAXPROCS by default) that claim fixed-size chunks of the iteration space
// from a shared atomic counter, which gives dynamic load balancing similar
// to work stealing for the irregular loops that dominate graph traversal.
//
// All primitives fall back to plain sequential execution when the iteration
// space is small or when only one worker is configured, so they can be used
// unconditionally without branching at call sites.
//
// Panics raised inside loop bodies are captured and re-raised on the calling
// goroutine once all workers have stopped, preserving the usual Go
// panic-propagation contract across the fork/join boundary.
package parallel
