package parallel

// Filter returns the elements of in satisfying pred, preserving their
// relative order. It runs the standard two-pass parallel filter: per-block
// counts, an exclusive scan over the counts, then a stable per-block copy.
func Filter[T any](in []T, pred func(T) bool) []T {
	return FilterIndex(in, func(_ int, v T) bool { return pred(v) })
}

// FilterIndex is Filter where the predicate also receives the element index.
func FilterIndex[T any](in []T, pred func(i int, v T) bool) []T {
	n := len(in)
	if n == 0 {
		return nil
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		out := make([]T, 0, 16)
		for i, v := range in {
			if pred(i, v) {
				out = append(out, v)
			}
		}
		return out
	}
	counts := make([]int, blocks)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i, in[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanExclusive(counts, counts)
	out := make([]T, total)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		k := counts[b]
		for i := lo; i < hi; i++ {
			if pred(i, in[i]) {
				out[k] = in[i]
				k++
			}
		}
	})
	return out
}

// PackIndex returns, in increasing order, the indices i in [0, n) for which
// flag(i) is true. It is the "pack" primitive used to convert dense frontier
// representations to sparse ones.
func PackIndex[T Number](n int, flag func(i int) bool) []T {
	if n == 0 {
		return nil
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		out := make([]T, 0, 16)
		for i := 0; i < n; i++ {
			if flag(i) {
				out = append(out, T(i))
			}
		}
		return out
	}
	counts := make([]int, blocks)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		c := 0
		for i := lo; i < hi; i++ {
			if flag(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanExclusive(counts, counts)
	out := make([]T, total)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		k := counts[b]
		for i := lo; i < hi; i++ {
			if flag(i) {
				out[k] = T(i)
				k++
			}
		}
	})
	return out
}

// MapInto fills out[i] = fn(i) for i in [0, len(out)) in parallel.
func MapInto[T any](out []T, fn func(i int) T) {
	For(len(out), func(i int) { out[i] = fn(i) })
}

// MapNew allocates and returns a slice of length n with element i set to
// fn(i), computed in parallel.
func MapNew[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	MapInto(out, fn)
	return out
}

// Fill sets every element of s to v in parallel.
func Fill[T any](s []T, v T) {
	ForRange(len(s), func(lo, hi int) {
		sub := s[lo:hi]
		for i := range sub {
			sub[i] = v
		}
	})
}

// Iota fills s with s[i] = base + i.
func Iota[T Number](s []T, base T) {
	For(len(s), func(i int) { s[i] = base + T(i) })
}

// CopyInto copies src into dst (which must have the same length) in
// parallel.
func CopyInto[T any](dst, src []T) {
	if len(dst) != len(src) {
		panic("parallel: CopyInto length mismatch")
	}
	ForRange(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
