package parallel

// Integer sorting primitives in the style of PBBS: stable counting sort
// over small integer keys, used to bucket edges by endpoint when building
// CSR graphs (much faster than comparison sorting) and as the inner pass
// of a radix sort for larger key spaces.

// CountingSortByKey stably sorts the items of in into out (same length)
// by key(item), where every key lies in [0, buckets). It returns the
// bucket boundary offsets (length buckets+1), which CSR construction uses
// directly as the row offsets. Runs the standard two-pass parallel
// counting sort with per-block count matrices.
func CountingSortByKey[T any](in, out []T, buckets int, key func(T) int) []int64 {
	n := len(in)
	if len(out) != n {
		panic("parallel: CountingSortByKey length mismatch")
	}
	offsets := make([]int64, buckets+1)
	if n == 0 {
		return offsets
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		counts := make([]int64, buckets)
		for i := 0; i < n; i++ {
			counts[key(in[i])]++
		}
		var acc int64
		for b := 0; b < buckets; b++ {
			offsets[b] = acc
			acc += counts[b]
		}
		offsets[buckets] = acc
		cursor := make([]int64, buckets)
		copy(cursor, offsets[:buckets])
		for i := 0; i < n; i++ {
			k := key(in[i])
			out[cursor[k]] = in[i]
			cursor[k]++
		}
		return offsets
	}

	// counts[b*buckets + k] = occurrences of key k in block b.
	counts := make([]int64, blocks*buckets)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		row := counts[b*buckets : (b+1)*buckets]
		for i := lo; i < hi; i++ {
			row[key(in[i])]++
		}
	})
	// Column-major scan: for each key, blocks in order — gives stability.
	var acc int64
	for k := 0; k < buckets; k++ {
		offsets[k] = acc
		for b := 0; b < blocks; b++ {
			c := counts[b*buckets+k]
			counts[b*buckets+k] = acc
			acc += c
		}
	}
	offsets[buckets] = acc
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		row := counts[b*buckets : (b+1)*buckets]
		for i := lo; i < hi; i++ {
			k := key(in[i])
			out[row[k]] = in[i]
			row[k]++
		}
	})
	return offsets
}

// radixBits is the digit width of RadixSortByKey passes.
const radixBits = 11

// RadixSortByKey stably sorts in by the non-negative integer key, which
// must be < keyBound, using least-significant-digit radix passes of
// CountingSortByKey. A scratch slice of the same length is allocated
// internally.
func RadixSortByKey[T any](in []T, keyBound int64, key func(T) int64) {
	n := len(in)
	if n <= 1 || keyBound <= 1 {
		return
	}
	buf := make([]T, n)
	src, dst := in, buf
	swapped := false
	for shift := 0; int64(1)<<shift < keyBound; shift += radixBits {
		s := shift
		CountingSortByKey(src, dst, 1<<radixBits, func(v T) int {
			return int((key(v) >> uint(s)) & ((1 << radixBits) - 1))
		})
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(in, src)
	}
}

// Histogram returns counts[k] = number of i in [0, n) with key(i) == k,
// for keys in [0, buckets), computed with per-block partial histograms.
func Histogram(n, buckets int, key func(i int) int) []int64 {
	out := make([]int64, buckets)
	if n == 0 {
		return out
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		for i := 0; i < n; i++ {
			out[key(i)]++
		}
		return out
	}
	partial := make([]int64, blocks*buckets)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		row := partial[b*buckets : (b+1)*buckets]
		for i := lo; i < hi; i++ {
			row[key(i)]++
		}
	})
	For(buckets, func(k int) {
		var acc int64
		for b := 0; b < blocks; b++ {
			acc += partial[b*buckets+k]
		}
		out[k] = acc
	})
	return out
}
