package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountingSortByKeyBasic(t *testing.T) {
	type kv struct{ k, idx int }
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 5000, 100000} {
		const buckets = 37
		in := make([]kv, n)
		for i := range in {
			in[i] = kv{rng.Intn(buckets), i}
		}
		out := make([]kv, n)
		offsets := CountingSortByKey(in, out, buckets, func(v kv) int { return v.k })
		if len(offsets) != buckets+1 {
			t.Fatalf("offsets length %d", len(offsets))
		}
		if offsets[0] != 0 || offsets[buckets] != int64(n) {
			t.Fatalf("offset endpoints %d %d", offsets[0], offsets[buckets])
		}
		// Sorted by key, stable within key, and bucket boundaries correct.
		for k := 0; k < buckets; k++ {
			lo, hi := offsets[k], offsets[k+1]
			prevIdx := -1
			for i := lo; i < hi; i++ {
				if out[i].k != k {
					t.Fatalf("n=%d: item at %d has key %d, want %d", n, i, out[i].k, k)
				}
				if out[i].idx <= prevIdx {
					t.Fatalf("n=%d: stability violated in bucket %d", n, k)
				}
				prevIdx = out[i].idx
			}
		}
	}
}

func TestCountingSortLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CountingSortByKey(make([]int, 3), make([]int, 4), 2, func(int) int { return 0 })
}

func TestRadixSortByKeyMatchesComparison(t *testing.T) {
	f := func(raw []uint32) bool {
		in := make([]int64, len(raw))
		for i, r := range raw {
			in[i] = int64(r)
		}
		want := append([]int64(nil), in...)
		Sort(want)
		RadixSortByKey(in, 1<<32, func(v int64) int64 { return v })
		for i := range in {
			if in[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortStability(t *testing.T) {
	type kv struct {
		k   int64
		idx int
	}
	rng := rand.New(rand.NewSource(3))
	n := 50000
	in := make([]kv, n)
	for i := range in {
		in[i] = kv{int64(rng.Intn(1000)), i}
	}
	RadixSortByKey(in, 1000, func(v kv) int64 { return v.k })
	for i := 1; i < n; i++ {
		if in[i-1].k > in[i].k {
			t.Fatalf("order violated at %d", i)
		}
		if in[i-1].k == in[i].k && in[i-1].idx > in[i].idx {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func TestRadixSortLargeKeys(t *testing.T) {
	in := []int64{1 << 40, 3, 1<<40 + 1, 0, 1 << 20}
	RadixSortByKey(in, 1<<41, func(v int64) int64 { return v })
	want := []int64{0, 3, 1 << 20, 1 << 40, 1<<40 + 1}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("in[%d] = %d, want %d", i, in[i], want[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	n := 100000
	const buckets = 17
	h := Histogram(n, buckets, func(i int) int { return i % buckets })
	for k := 0; k < buckets; k++ {
		want := int64(n / buckets)
		if k < n%buckets {
			want++
		}
		if h[k] != want {
			t.Errorf("h[%d] = %d, want %d", k, h[k], want)
		}
	}
	if got := Histogram(0, 3, nil); len(got) != 3 || got[0] != 0 {
		t.Error("empty histogram wrong")
	}
}
