package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// numWorkers is the number of goroutines used for parallel primitives.
// Zero means "use runtime.GOMAXPROCS(0)". It is overridable so benchmark
// harnesses can sweep worker counts without mutating GOMAXPROCS.
var numWorkers atomic.Int64

// Procs reports the number of workers parallel primitives will use.
func Procs() int {
	if p := int(numWorkers.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetProcs overrides the worker count used by all primitives in this
// package. p <= 0 restores the default (GOMAXPROCS). It returns the
// previous override (0 if none was set).
func SetProcs(p int) int {
	old := int(numWorkers.Load())
	if p < 0 {
		p = 0
	}
	numWorkers.Store(int64(p))
	return old
}

// MinGrain is the smallest chunk size handed to a worker. Finer grains make
// load balancing better but increase scheduling overhead.
const MinGrain = 1

// maxGrain caps the automatic grain so very large loops still balance well.
const maxGrain = 4096

// defaultGrain picks a chunk size targeting ~8 chunks per worker, clamped to
// [MinGrain, maxGrain].
func defaultGrain(n, procs int) int {
	g := n / (8 * procs)
	if g < MinGrain {
		return MinGrain
	}
	if g > maxGrain {
		return maxGrain
	}
	return g
}

// PanicError is the typed error produced when a worker goroutine panics
// inside a parallel primitive. The context-aware primitives (ForCtx,
// ReduceCtx, ...) return it; the plain primitives re-panic with it as the
// panic value, so recover sites can errors.As it either way.
type PanicError struct {
	// Value is the original value passed to panic.
	Value any
	// Stack is the panicking worker's stack trace (debug.Stack).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in worker: %v", e.Value)
}

// panicBox records the first panic raised by any worker and flags the
// remaining workers to stop claiming chunks.
type panicBox struct {
	once    sync.Once
	err     *PanicError
	stopped atomic.Bool
}

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.once.Do(func() {
			b.err = &PanicError{Value: r, Stack: debug.Stack()}
		})
		b.stopped.Store(true)
	}
}

// For runs body(i) for every i in [0, n) using all configured workers and an
// automatically chosen grain size.
func For(n int, body func(i int)) {
	ForGrain(n, 0, body)
}

// ForGrain runs body(i) for every i in [0, n). Iterations are dispatched to
// workers in contiguous chunks of the given grain size; grain <= 0 selects
// an automatic value. Chunks are claimed dynamically, so uneven per-
// iteration costs (e.g. skewed vertex degrees) still balance.
func ForGrain(n, grain int, body func(i int)) {
	ForRangeGrain(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange runs body over contiguous sub-ranges [lo, hi) that exactly cover
// [0, n). It is the blocked form of For, useful when the body can process a
// run of iterations more efficiently than one at a time.
func ForRange(n int, body func(lo, hi int)) {
	ForRangeGrain(n, 0, body)
}

// ForRangeGrain is ForRange with an explicit grain size (grain <= 0 selects
// an automatic value). A worker panic propagates as a panic whose value is a
// *PanicError; ForRangeGrainCtx is the variant that returns it instead.
func ForRangeGrain(n, grain int, body func(lo, hi int)) {
	if err := ForRangeGrainCtx(nil, n, grain, body); err != nil {
		panic(err)
	}
}

// ForEachWorker runs body(worker, workers) once on each of the configured
// workers. It is used by primitives that keep per-worker state (e.g. blocked
// scans). The worker index is in [0, workers). The bodies run on the
// persistent pool (one "chunk" per worker index); the caller executes at
// least one of them itself.
func ForEachWorker(body func(worker, workers int)) {
	workers := Procs()
	if workers == 1 {
		body(0, 1)
		return
	}
	// The chunk index, not the pool slot, is the worker identity here:
	// each index in [0, workers) is dispatched exactly once.
	err := runParallel(nil, workers, 1, workers, workers, func(_, c, _, _ int) {
		body(c, workers)
	})
	if err != nil {
		panic(err)
	}
}

// Do runs the given thunks concurrently and waits for all of them; it is the
// binary/spawn form of fork-join parallelism (Cilk's spawn/sync). A panic in
// any thunk propagates with a *PanicError value once all thunks settle.
func Do(thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	if err := DoCtx(nil, thunks...); err != nil {
		panic(err)
	}
}

// blockBounds splits [0, n) into nblocks nearly equal contiguous blocks and
// returns the bounds of block b as [lo, hi).
func blockBounds(n, nblocks, b int) (lo, hi int) {
	q, r := n/nblocks, n%nblocks
	lo = b*q + min(b, r)
	hi = lo + q
	if b < r {
		hi++
	}
	return lo, hi
}

// numBlocks picks how many blocks two-pass primitives (scan, filter) use.
func numBlocks(n int) int {
	procs := Procs()
	if procs == 1 || n < 2048 {
		return 1
	}
	b := procs * 8
	if b > (n+2047)/2048 {
		b = (n + 2047) / 2048
	}
	if b < 1 {
		b = 1
	}
	return b
}
