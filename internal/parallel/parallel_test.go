package parallel

import (
	"os"
	"sync/atomic"
	"testing"
)

// TestMain forces multiple workers so the concurrent code paths run even on
// single-CPU machines (goroutines still interleave).
func TestMain(m *testing.M) {
	SetProcs(4)
	os.Exit(m.Run())
}

func TestProcsOverride(t *testing.T) {
	old := SetProcs(7)
	if got := Procs(); got != 7 {
		t.Errorf("Procs() = %d, want 7", got)
	}
	SetProcs(0)
	if got := Procs(); got < 1 {
		t.Errorf("Procs() = %d, want >= 1 with default", got)
	}
	SetProcs(old)
	SetProcs(4)
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 4097, 100000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForGrainCoversAllIndices(t *testing.T) {
	for _, grain := range []int{1, 2, 13, 4096, 1 << 20} {
		n := 10000
		seen := make([]int32, n)
		ForGrain(n, grain, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("grain=%d: index %d visited %d times", grain, i, c)
			}
		}
	}
}

func TestForRangePartitions(t *testing.T) {
	n := 54321
	var total atomic.Int64
	seen := make([]int32, n)
	ForRange(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d, %d)", lo, hi)
		}
		total.Add(int64(hi - lo))
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if total.Load() != int64(n) {
		t.Fatalf("ranges cover %d elements, want %d", total.Load(), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForNegativeAndZero(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate from worker")
		}
	}()
	For(100000, func(i int) {
		if i == 54321 {
			panic("boom")
		}
	})
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Errorf("Do results = %d %d %d", a.Load(), b.Load(), c.Load())
	}
	Do() // no-op
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Error("single-thunk Do did not run")
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate from Do")
		}
	}()
	Do(func() {}, func() { panic("boom") })
}

func TestForEachWorker(t *testing.T) {
	counts := make([]int32, Procs())
	ForEachWorker(func(w, workers int) {
		if workers != Procs() {
			t.Errorf("workers = %d, want %d", workers, Procs())
		}
		atomic.AddInt32(&counts[w], 1)
	})
	for w, c := range counts {
		if c != 1 {
			t.Errorf("worker %d ran %d times", w, c)
		}
	}
}

func TestBlockBounds(t *testing.T) {
	for _, tc := range []struct{ n, blocks int }{
		{10, 3}, {10, 10}, {10, 1}, {7, 4}, {1000, 13},
	} {
		prev := 0
		for b := 0; b < tc.blocks; b++ {
			lo, hi := blockBounds(tc.n, tc.blocks, b)
			if lo != prev {
				t.Fatalf("n=%d blocks=%d: block %d starts at %d, want %d",
					tc.n, tc.blocks, b, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d blocks=%d: block %d empty-inverted [%d,%d)",
					tc.n, tc.blocks, b, lo, hi)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d blocks=%d: blocks end at %d", tc.n, tc.blocks, prev)
		}
	}
}
