package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ligra/internal/faultinject"
)

// Persistent fork-join scheduler.
//
// Ligra's original runtime (Cilk) reuses a persistent worker gang for
// every parallel_for; the first versions of this package instead spawned
// a fresh `go func` + WaitGroup gang on every primitive call. Iterative
// graph algorithms pay that per round — BFS on a high-diameter grid runs
// hundreds of edgeMap rounds, BellmanFord/KCore thousands — so the
// spawn/join cost lands exactly where the frontiers are smallest.
//
// This file replaces per-call spawning with a process-wide pool of
// long-lived workers, each parked on a channel receive (a lightweight
// wake signal; no busy-spin). A primitive call packages its chunk-
// claiming loop as a job, enqueues one claimable token per helper it
// wants, and then runs the same loop itself as worker 0. Pool workers
// that pick a token up join the job; when the caller finishes its own
// loop it revokes any tokens that were never claimed (compare-and-swap
// pending → cancelled), so it only waits for workers that are actively
// helping. That revocation is what makes nested parallelism deadlock-
// free: a pool worker whose job body issues another parallel call makes
// progress on the inner loop itself even if every other worker is busy.
//
// Contracts are unchanged from the spawning implementation: chunk-
// granularity ctx cancellation, *PanicError containment per job,
// deterministic chunk indices for order-preserving reassembly, and
// per-ctx proc leases (WithProcs/CtxProcs) acting as per-call caps on
// how many tokens a job enqueues — never a global setting.
//
// On top of the pool sits a sequential cutoff (see seqCutoff): auto-
// grain loops too small to amortise even one park/wake run inline on
// the calling goroutine with zero dispatch.

// seqCutoff is the iteration count at or below which an auto-grain loop
// runs inline on the calling goroutine instead of dispatching to the
// pool. It applies only when the caller did not choose a grain: an
// explicit grain is a statement that iterations are coarse (block loops
// in scan/filter/reduce process thousands of elements per "iteration"),
// so those always dispatch. 512 one-word iterations cost well under the
// ~1–2µs of a park/wake round trip.
const seqCutoff = 512

// maxPoolWorkers bounds the pool size regardless of SetProcs abuse.
const maxPoolWorkers = 256

// tokenQueueCap sizes the pool's token queue. Submission never blocks:
// if the queue is full every worker is already saturated and the caller
// simply keeps the work (it runs the chunk loop itself regardless).
const tokenQueueCap = 1024

// Token states. A token starts pending; the first CAS wins it: a pool
// worker claims it (and must then call wg.Done when it leaves the job),
// or the finished caller cancels it (and calls wg.Done on the worker's
// behalf, since no worker will).
const (
	tokenPending int32 = iota
	tokenClaimed
	tokenCancelled
)

// token is one invitation for a pool worker to join a job.
type token struct {
	state atomic.Int32
	j     *job
}

// job is one dispatched parallel call: the chunk-claiming loop shared by
// the caller (worker slot 0) and any pool workers that claim a token.
type job struct {
	n, grain, chunks int
	ctx              context.Context
	yield            bool
	body             func(worker, chunk, lo, hi int)
	next             atomic.Int64 // shared chunk-claim counter
	slots            atomic.Int64 // worker-slot allocator; caller holds 0
	maxSlots         int
	box              panicBox
	wg               sync.WaitGroup
}

// run executes the chunk-claiming loop as worker slot w. It is the same
// loop the spawning implementation inlined into each goroutine: stop on
// a sibling's panic, observe ctx at chunk granularity (yielding first on
// single-P runtimes so the cancelling goroutine can run), claim the next
// chunk, fire the fault-injection hook, call the body.
func (j *job) run(w int) {
	defer j.box.capture()
	for {
		if j.box.stopped.Load() {
			return
		}
		if j.ctx != nil {
			if j.yield {
				runtime.Gosched()
			}
			if j.ctx.Err() != nil {
				return
			}
		}
		c := int(j.next.Add(1) - 1)
		if c >= j.chunks {
			return
		}
		faultinject.OnChunk()
		lo := c * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.body(w, c, lo, hi)
	}
}

// schedCounters is the process-wide scheduler instrumentation. All
// fields are monotonic; SchedulerSnapshot copies them and Sub produces
// per-interval deltas.
type schedCounters struct {
	dispatches atomic.Int64 // parallel calls handed to the pool
	inlineRuns atomic.Int64 // calls run on the caller (procs==1, one chunk, or cutoff)
	cutoffRuns atomic.Int64 // subset of inlineRuns taken by the sequential cutoff
	parks      atomic.Int64 // times a worker found the queue empty and blocked
	wakes      atomic.Int64 // tokens received by pool workers
	spawned    atomic.Int64 // workers ever created (stable after warm-up)
}

var schedStats schedCounters

// SchedulerStats is a point-in-time copy of the pool's counters, the
// scheduler analogue of core's traversal stats. All counts are since
// process start (or the last ResetSchedulerStats); PoolWorkers is the
// current pool size, not a delta.
type SchedulerStats struct {
	// PoolWorkers is the number of persistent workers currently alive.
	// The pool grows lazily to demand and never shrinks or respawns, so
	// after warm-up this is stable; the leak test pins it.
	PoolWorkers int64 `json:"pool_workers"`
	// Dispatches counts parallel calls that enqueued work on the pool.
	Dispatches int64 `json:"dispatches"`
	// InlineRuns counts parallel calls that ran entirely on the calling
	// goroutine: procs==1, a single chunk, or the sequential cutoff.
	InlineRuns int64 `json:"inline_runs"`
	// CutoffRuns is the subset of InlineRuns where the sequential cutoff
	// made the decision (the call would otherwise have dispatched).
	CutoffRuns int64 `json:"cutoff_runs"`
	// Parks counts workers blocking on an empty queue; Wakes counts
	// tokens received. Wakes far above Dispatches means fan-out is wide;
	// Parks near Wakes means workers sleep between rounds (no busy-spin).
	Parks int64 `json:"parks"`
	Wakes int64 `json:"wakes"`
}

// SchedulerSnapshot returns the current scheduler counters. Safe for
// concurrent use; pair two snapshots with Sub for an interval.
func SchedulerSnapshot() SchedulerStats {
	return SchedulerStats{
		PoolWorkers: schedStats.spawned.Load(),
		Dispatches:  schedStats.dispatches.Load(),
		InlineRuns:  schedStats.inlineRuns.Load(),
		CutoffRuns:  schedStats.cutoffRuns.Load(),
		Parks:       schedStats.parks.Load(),
		Wakes:       schedStats.wakes.Load(),
	}
}

// ResetSchedulerStats zeroes the dispatch/inline/park/wake counters.
// PoolWorkers is a gauge of live workers and is left untouched.
func ResetSchedulerStats() {
	schedStats.dispatches.Store(0)
	schedStats.inlineRuns.Store(0)
	schedStats.cutoffRuns.Store(0)
	schedStats.parks.Store(0)
	schedStats.wakes.Store(0)
}

// Sub returns s - prev for the monotonic counters, for interval deltas.
// PoolWorkers is carried over from s (it is a gauge).
func (s SchedulerStats) Sub(prev SchedulerStats) SchedulerStats {
	return SchedulerStats{
		PoolWorkers: s.PoolWorkers,
		Dispatches:  s.Dispatches - prev.Dispatches,
		InlineRuns:  s.InlineRuns - prev.InlineRuns,
		CutoffRuns:  s.CutoffRuns - prev.CutoffRuns,
		Parks:       s.Parks - prev.Parks,
		Wakes:       s.Wakes - prev.Wakes,
	}
}

// pool is the process-wide worker set. Workers are created lazily as
// dispatch demand grows and then live for the life of the process,
// parked on the token channel when idle.
type pool struct {
	tokens chan *token
	size   atomic.Int64
	mu     sync.Mutex // serialises growth
}

var (
	thePool  *pool
	poolOnce sync.Once
)

func getPool() *pool {
	poolOnce.Do(func() {
		thePool = &pool{tokens: make(chan *token, tokenQueueCap)}
	})
	return thePool
}

// ensure grows the pool to at least `want` workers (capped). The common
// case — pool already warm — is a single atomic load.
func (p *pool) ensure(want int) {
	if want > maxPoolWorkers {
		want = maxPoolWorkers
	}
	if int(p.size.Load()) >= want {
		return
	}
	p.mu.Lock()
	for int(p.size.Load()) < want {
		go p.worker()
		p.size.Add(1)
		schedStats.spawned.Add(1)
	}
	p.mu.Unlock()
}

// worker is one persistent pool goroutine: receive a token (parking on
// the channel when the queue is empty), try to claim it, and if the
// claim wins run the job's chunk loop under a freshly allocated worker
// slot. Claimed-token bookkeeping (wg.Done) happens here; a token lost
// to caller revocation is simply dropped. body panics are contained by
// job.run, so a worker survives every job it touches.
func (p *pool) worker() {
	for {
		var t *token
		select {
		case t = <-p.tokens:
		default:
			schedStats.parks.Add(1)
			t = <-p.tokens
		}
		schedStats.wakes.Add(1)
		if !t.state.CompareAndSwap(tokenPending, tokenClaimed) {
			continue // revoked by a caller that already finished
		}
		j := t.j
		if w := int(j.slots.Add(1)); w < j.maxSlots {
			j.run(w)
		}
		j.wg.Done()
	}
}

// runParallel executes the chunk-claiming loop for [0, n) across at most
// `procs` workers drawn from the persistent pool, with the caller always
// participating as worker slot 0. It is the single dispatch path behind
// every parallel primitive; callers have already decided against the
// sequential path (procs > 1 and chunks > 1 and above the cutoff).
func runParallel(ctx context.Context, n, grain, chunks, procs int, body func(worker, chunk, lo, hi int)) error {
	workers := procs
	if workers > chunks {
		workers = chunks
	}
	if workers > maxPoolWorkers+1 {
		workers = maxPoolWorkers + 1
	}
	j := &job{
		n: n, grain: grain, chunks: chunks,
		ctx:      ctx,
		yield:    ctx != nil && runtime.GOMAXPROCS(0) == 1,
		body:     body,
		maxSlots: workers,
	}
	p := getPool()
	p.ensure(workers - 1)
	schedStats.dispatches.Add(1)

	// Invite workers-1 helpers. Each successfully queued token adds one
	// wg count, paid back either by the claiming worker or by our own
	// revocation below. A full queue means every worker is saturated;
	// dropping the invitation is safe because we run the loop ourselves.
	toks := make([]*token, 0, workers-1)
	for i := 0; i < workers-1; i++ {
		t := &token{j: j}
		j.wg.Add(1)
		select {
		case p.tokens <- t:
			toks = append(toks, t)
		default:
			j.wg.Done()
		}
	}

	j.run(0)

	// Revoke invitations nobody picked up, so we only wait for workers
	// actively inside j.run. This keeps nested parallel calls deadlock-
	// free and makes tiny-but-dispatched rounds cheap when the pool is
	// busy elsewhere.
	for _, t := range toks {
		if t.state.CompareAndSwap(tokenPending, tokenCancelled) {
			j.wg.Done()
		}
	}
	j.wg.Wait()

	if j.box.err != nil {
		return j.box.err
	}
	return ctxErr(ctx)
}
