package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ligra/internal/faultinject"
)

// dispatchN is an iteration count that forces the pool path under the
// TestMain SetProcs(4) setting: auto-grain, well above seqCutoff.
const dispatchN = 1 << 13

// TestPoolNoGoroutineLeak is the tentpole's acceptance check: after
// warm-up, ten thousand dispatched parallel calls neither grow the
// goroutine count nor respawn pool workers. The old implementation
// spawned procs-1 goroutines per call; this would fail immediately there.
func TestPoolNoGoroutineLeak(t *testing.T) {
	// Warm the pool so lazy worker creation happens before measuring.
	for i := 0; i < 100; i++ {
		if err := ForRangeGrainCtx(context.Background(), dispatchN, 0, func(lo, hi int) {}); err != nil {
			t.Fatal(err)
		}
	}
	workersBefore := SchedulerSnapshot().PoolWorkers
	goroutinesBefore := runtime.NumGoroutine()

	var sum atomic.Int64
	for i := 0; i < 10000; i++ {
		if err := ForRangeGrainCtx(context.Background(), dispatchN, 0, func(lo, hi int) {
			sum.Add(int64(hi - lo))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := sum.Load(), int64(10000*dispatchN); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}

	if workersAfter := SchedulerSnapshot().PoolWorkers; workersAfter != workersBefore {
		t.Errorf("pool respawned or grew mid-run: %d workers before, %d after",
			workersBefore, workersAfter)
	}
	// The goroutine count is allowed small unrelated jitter (runtime
	// housekeeping, test framework) but must not scale with call count.
	// Poll briefly: a worker between wg.Done and its next park is still
	// the same goroutine, but GC/runtime goroutines may need a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= goroutinesBefore+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 10k dispatched calls",
				goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolSurvivesRepeatedPanics proves panic containment does not wedge
// the persistent workers: every panicking call returns a *PanicError
// carrying the value, and the pool still computes correctly afterward.
func TestPoolSurvivesRepeatedPanics(t *testing.T) {
	for i := 0; i < 50; i++ {
		err := ForRangeGrainCtx(context.Background(), dispatchN, 0, func(lo, hi int) {
			if lo == 0 {
				panic("pool panic probe")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("call %d: error %v (%T), want *PanicError", i, err, err)
		}
		if pe.Value != "pool panic probe" {
			t.Fatalf("call %d: panic value %v", i, pe.Value)
		}
	}
	var sum atomic.Int64
	if err := ForRangeGrainCtx(context.Background(), dispatchN, 0, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			sum.Add(int64(j))
		}
	}); err != nil {
		t.Fatalf("pool broken after contained panics: %v", err)
	}
	want := int64(dispatchN) * (dispatchN - 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// TestPoolMidRoundCancellation cancels the context from inside a running
// chunk and checks the dispatched call stops at chunk granularity: the
// error is context.Canceled and most of the iteration space never ran.
func TestPoolMidRoundCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1 << 16
	var executed atomic.Int64
	err := ForGrainCtx(ctx, n, 64, func(i int) {
		if executed.Add(1) == 100 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got >= n/2 {
		t.Errorf("executed %d of %d iterations after cancellation", got, n)
	}
}

// TestLeaseCapThroughNestedPrimitives rides a WithProcs(2) lease through
// an outer dispatched loop whose body runs inner parallel calls: every
// worker slot observed at either level must respect the per-call cap,
// even though the process-wide setting is 4.
func TestLeaseCapThroughNestedPrimitives(t *testing.T) {
	ctx := WithProcs(context.Background(), 2)
	if got := CtxProcs(ctx); got != 2 {
		t.Fatalf("CtxProcs = %d, want 2", got)
	}
	err := ForWorkerChunksCtx(ctx, 8, 1, func(worker, chunk, lo, hi int) {
		if worker >= 2 {
			t.Errorf("outer worker index %d under a 2-proc lease", worker)
		}
		inner := ForWorkerChunksCtx(ctx, 2048, 64, func(w, c, ilo, ihi int) {
			if w >= 2 {
				t.Errorf("inner worker index %d under a 2-proc lease", w)
			}
		})
		if inner != nil {
			t.Errorf("inner call: %v", inner)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNestedDispatchCompletes is the deadlock regression test for token
// revocation: a dispatched outer loop whose every chunk dispatches an
// inner loop must finish even when the pool is fully occupied by outer
// work, because each caller runs its own chunk loop and revokes unclaimed
// invitations instead of blocking on them.
func TestNestedDispatchCompletes(t *testing.T) {
	var sum atomic.Int64
	err := ForWorkerChunksCtx(context.Background(), 16, 1, func(worker, chunk, lo, hi int) {
		if err := ForRangeGrainCtx(context.Background(), dispatchN, 0, func(ilo, ihi int) {
			sum.Add(int64(ihi - ilo))
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Load(), int64(16*dispatchN); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestSequentialCutoffInline checks the cutoff's observable contract:
// a small auto-grain loop runs inline (no dispatch, cutoff counted),
// while the same loop above the cutoff dispatches.
func TestSequentialCutoffInline(t *testing.T) {
	prev := SchedulerSnapshot()
	if err := ForRangeGrainCtx(context.Background(), 256, 0, func(lo, hi int) {}); err != nil {
		t.Fatal(err)
	}
	d := SchedulerSnapshot().Sub(prev)
	if d.Dispatches != 0 || d.InlineRuns != 1 || d.CutoffRuns != 1 {
		t.Errorf("small auto-grain loop: dispatches=%d inline=%d cutoff=%d, want 0/1/1",
			d.Dispatches, d.InlineRuns, d.CutoffRuns)
	}

	prev = SchedulerSnapshot()
	if err := ForRangeGrainCtx(context.Background(), dispatchN, 0, func(lo, hi int) {}); err != nil {
		t.Fatal(err)
	}
	d = SchedulerSnapshot().Sub(prev)
	if d.Dispatches != 1 || d.InlineRuns != 0 {
		t.Errorf("large auto-grain loop: dispatches=%d inline=%d, want 1/0",
			d.Dispatches, d.InlineRuns)
	}

	// An explicit grain opts out of the cutoff: the caller asserted the
	// iterations are coarse, so even a 32-iteration loop dispatches.
	prev = SchedulerSnapshot()
	if err := ForGrainCtx(context.Background(), 32, 1, func(i int) {}); err != nil {
		t.Fatal(err)
	}
	d = SchedulerSnapshot().Sub(prev)
	if d.Dispatches != 1 || d.CutoffRuns != 0 {
		t.Errorf("explicit-grain loop: dispatches=%d cutoff=%d, want 1/0",
			d.Dispatches, d.CutoffRuns)
	}
}

// TestFaultInjectInPoolDispatch arms the chunk hook against a dispatched
// (pool-path) loop, proving the injection point survives the scheduler
// rewrite and surfaces as a *PanicError.
func TestFaultInjectInPoolDispatch(t *testing.T) {
	disarm := faultinject.PanicOnChunk(5, "injected pool fault")
	defer disarm()
	err := ForGrainCtx(context.Background(), 1<<14, 16, func(i int) {})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "injected pool fault" {
		t.Errorf("panic value = %v", pe.Value)
	}
}
