package parallel

import "context"

// Per-call parallelism. SetProcs is a process-wide override, which a
// server sharing one machine between concurrent queries cannot use: one
// query's override would leak into every other query. WithProcs instead
// rides the worker cap on the context, so every context-aware primitive
// (ForCtx, ForRangeGrainCtx, ForWorkerChunksCtx, DoCtx, ReduceCtx, ...)
// run under that context — however deep in a call tree — uses at most the
// given number of workers, while unrelated computations keep the full
// machine.
//
// The cap composes with the global setting: the effective worker count is
// min(Procs(), cap). Nesting WithProcs keeps the innermost cap. Plain
// (non-ctx) primitives are unaffected; they always use Procs().

// procsKey is the context key carrying the per-call worker cap.
type procsKey struct{}

// WithProcs returns a context that caps the number of worker goroutines
// used by every context-aware primitive invoked under it at p. A nil ctx
// is treated as context.Background(); p <= 0 returns ctx unchanged (no
// cap).
func WithProcs(ctx context.Context, p int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if p <= 0 {
		return ctx
	}
	return context.WithValue(ctx, procsKey{}, p)
}

// CtxProcs reports the number of workers context-aware primitives will
// use under ctx: the global Procs() setting, capped by any WithProcs
// limit carried on the context. A nil or uncapped ctx yields Procs().
func CtxProcs(ctx context.Context) int {
	p := Procs()
	if ctx != nil {
		if v, ok := ctx.Value(procsKey{}).(int); ok && v > 0 && v < p {
			p = v
		}
	}
	return p
}

// AutoGrainCtx is AutoGrain computed against the worker count effective
// under ctx, so callers that pre-compute chunk structure (per-chunk output
// slots) agree with what the ctx-aware dispatch will do.
func AutoGrainCtx(ctx context.Context, n int) int {
	return defaultGrain(n, CtxProcs(ctx))
}
