package parallel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// highWater tracks the peak number of concurrently executing bodies.
type highWater struct {
	cur, peak atomic.Int64
}

func (h *highWater) enter() {
	c := h.cur.Add(1)
	for {
		p := h.peak.Load()
		if c <= p || h.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (h *highWater) exit() { h.cur.Add(-1) }

func TestWithProcsCapsForCtxConcurrency(t *testing.T) {
	prev := SetProcs(8)
	defer SetProcs(prev)

	var hw highWater
	ctx := WithProcs(context.Background(), 2)
	err := ForGrainCtx(ctx, 64, 1, func(i int) {
		hw.enter()
		time.Sleep(100 * time.Microsecond) // encourage overlap if uncapped
		hw.exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak := hw.peak.Load(); peak > 2 {
		t.Errorf("WithProcs(2): observed %d concurrent workers", peak)
	}
}

func TestWithProcsCapsWorkerIndices(t *testing.T) {
	prev := SetProcs(8)
	defer SetProcs(prev)

	ctx := WithProcs(context.Background(), 3)
	if got := CtxProcs(ctx); got != 3 {
		t.Fatalf("CtxProcs = %d, want 3", got)
	}
	var maxWorker atomic.Int64
	err := ForWorkerChunksCtx(ctx, 1000, 10, func(worker, _, _, _ int) {
		for {
			m := maxWorker.Load()
			if int64(worker) <= m || maxWorker.CompareAndSwap(m, int64(worker)) {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := maxWorker.Load(); m >= 3 {
		t.Errorf("worker index %d observed under WithProcs(3)", m)
	}
}

func TestCtxProcsComposesWithGlobal(t *testing.T) {
	prev := SetProcs(2)
	defer SetProcs(prev)

	// A cap above the global setting does not raise it.
	if got := CtxProcs(WithProcs(context.Background(), 16)); got != 2 {
		t.Errorf("CtxProcs(cap 16, global 2) = %d, want 2", got)
	}
	// Nil and uncapped contexts inherit the global setting.
	if got := CtxProcs(nil); got != 2 {
		t.Errorf("CtxProcs(nil) = %d, want 2", got)
	}
	if got := CtxProcs(context.Background()); got != 2 {
		t.Errorf("CtxProcs(background) = %d, want 2", got)
	}
	// p <= 0 means no cap.
	if got := CtxProcs(WithProcs(context.Background(), 0)); got != 2 {
		t.Errorf("CtxProcs(cap 0) = %d, want 2", got)
	}
	// Nesting keeps the innermost cap.
	inner := WithProcs(WithProcs(context.Background(), 2), 1)
	if got := CtxProcs(inner); got != 1 {
		t.Errorf("nested CtxProcs = %d, want 1", got)
	}
}

func TestWithProcsOneRunsSequentially(t *testing.T) {
	prev := SetProcs(8)
	defer SetProcs(prev)

	var hw highWater
	ctx := WithProcs(context.Background(), 1)
	err := ForCtx(ctx, 256, func(i int) {
		hw.enter()
		hw.exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak := hw.peak.Load(); peak != 1 {
		t.Errorf("WithProcs(1): observed %d concurrent workers, want 1", peak)
	}
	// AutoGrainCtx agrees with the capped dispatch (one chunk per 8th of
	// the loop at procs=1 means a larger grain than at procs=8).
	if g1, g8 := AutoGrainCtx(ctx, 1<<16), AutoGrainCtx(context.Background(), 1<<16); g1 < g8 {
		t.Errorf("AutoGrainCtx capped=%d uncapped=%d; capped should not be finer", g1, g8)
	}
}

func TestWithProcsDoCtx(t *testing.T) {
	prev := SetProcs(8)
	defer SetProcs(prev)

	// With a cap of 1, DoCtx must run thunks on the calling goroutine in
	// order.
	var order []int
	ctx := WithProcs(context.Background(), 1)
	err := DoCtx(ctx,
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("DoCtx under cap 1 ran out of order: %v", order)
		}
	}
}
