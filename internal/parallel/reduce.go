package parallel

// Number is the constraint satisfied by the built-in numeric types used
// throughout the framework (vertex IDs, degrees, weights, ranks).
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Reduce combines fn(i) for i in [0, n) with the associative operation
// combine, starting from the identity element id. The reduction tree shape
// is unspecified, so combine must be associative; it need not be
// commutative only if the per-block order is acceptable, so in practice use
// associative+commutative operations or order-insensitive ones.
func Reduce[T any](n int, id T, fn func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = combine(acc, fn(i))
		}
		return acc
	}
	partial := make([]T, blocks)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		acc := id
		for i := lo; i < hi; i++ {
			acc = combine(acc, fn(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// SumFunc returns the sum of fn(i) over [0, n) computed in parallel.
func SumFunc[T Number](n int, fn func(i int) T) T {
	var zero T
	return Reduce(n, zero, fn, func(a, b T) T { return a + b })
}

// Sum returns the sum of the elements of s computed in parallel.
func Sum[T Number](s []T) T {
	return SumFunc(len(s), func(i int) T { return s[i] })
}

// MaxFunc returns the maximum of fn(i) over [0, n). n must be positive.
func MaxFunc[T Number](n int, fn func(i int) T) T {
	if n <= 0 {
		panic("parallel: MaxFunc on empty range")
	}
	first := fn(0)
	return Reduce(n, first, fn, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// MinFunc returns the minimum of fn(i) over [0, n). n must be positive.
func MinFunc[T Number](n int, fn func(i int) T) T {
	if n <= 0 {
		panic("parallel: MinFunc on empty range")
	}
	first := fn(0)
	return Reduce(n, first, fn, func(a, b T) T {
		if a < b {
			return a
		}
		return b
	})
}

// Max returns the maximum element of s. s must be non-empty.
func Max[T Number](s []T) T {
	return MaxFunc(len(s), func(i int) T { return s[i] })
}

// Min returns the minimum element of s. s must be non-empty.
func Min[T Number](s []T) T {
	return MinFunc(len(s), func(i int) T { return s[i] })
}

// CountFunc returns the number of i in [0, n) for which pred(i) is true.
func CountFunc(n int, pred func(i int) bool) int {
	return SumFunc(n, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Count returns the number of elements of s satisfying pred.
func Count[T any](s []T, pred func(T) bool) int {
	return CountFunc(len(s), func(i int) bool { return pred(s[i]) })
}

// Any reports whether pred(i) holds for at least one i in [0, n).
// It does not guarantee early exit but short-circuits per block.
func Any(n int, pred func(i int) bool) bool {
	blocks := numBlocks(n)
	if blocks == 1 {
		for i := 0; i < n; i++ {
			if pred(i) {
				return true
			}
		}
		return false
	}
	found := make([]bool, blocks)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		for i := lo; i < hi; i++ {
			if pred(i) {
				found[b] = true
				return
			}
		}
	})
	for _, f := range found {
		if f {
			return true
		}
	}
	return false
}

// All reports whether pred(i) holds for every i in [0, n).
func All(n int, pred func(i int) bool) bool {
	return !Any(n, func(i int) bool { return !pred(i) })
}

// MaxIndexFunc returns the index i in [0, n) maximizing key(i), breaking
// ties toward the smallest index. n must be positive.
func MaxIndexFunc[T Number](n int, key func(i int) T) int {
	if n <= 0 {
		panic("parallel: MaxIndexFunc on empty range")
	}
	type kv struct {
		i int
		k T
	}
	best := Reduce(n, kv{0, key(0)},
		func(i int) kv { return kv{i, key(i)} },
		func(a, b kv) kv {
			if b.k > a.k || (b.k == a.k && b.i < a.i) {
				return b
			}
			return a
		})
	return best.i
}
