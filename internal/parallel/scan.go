package parallel

// ScanExclusive computes the exclusive prefix sum of in into out
// (out[i] = in[0] + ... + in[i-1], out[0] = 0) and returns the total sum.
// in and out may alias. This is the classic two-pass blocked scan:
// per-block sums, a sequential scan over block sums, then per-block local
// scans offset by the block prefix.
func ScanExclusive[T Number](in, out []T) T {
	n := len(in)
	if len(out) != n {
		panic("parallel: ScanExclusive length mismatch")
	}
	if n == 0 {
		var zero T
		return zero
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		var acc T
		for i := 0; i < n; i++ {
			v := in[i]
			out[i] = acc
			acc += v
		}
		return acc
	}
	sums := make([]T, blocks)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		var acc T
		for i := lo; i < hi; i++ {
			acc += in[i]
		}
		sums[b] = acc
	})
	var total T
	for b := 0; b < blocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		acc := sums[b]
		for i := lo; i < hi; i++ {
			v := in[i]
			out[i] = acc
			acc += v
		}
	})
	return total
}

// ScanInclusive computes the inclusive prefix sum of in into out
// (out[i] = in[0] + ... + in[i]) and returns the total. in and out may
// alias.
func ScanInclusive[T Number](in, out []T) T {
	n := len(in)
	if len(out) != n {
		panic("parallel: ScanInclusive length mismatch")
	}
	if n == 0 {
		var zero T
		return zero
	}
	blocks := numBlocks(n)
	if blocks == 1 {
		var acc T
		for i := 0; i < n; i++ {
			acc += in[i]
			out[i] = acc
		}
		return acc
	}
	sums := make([]T, blocks)
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		var acc T
		for i := lo; i < hi; i++ {
			acc += in[i]
		}
		sums[b] = acc
	})
	var total T
	for b := 0; b < blocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ForGrain(blocks, 1, func(b int) {
		lo, hi := blockBounds(n, blocks, b)
		acc := sums[b]
		for i := lo; i < hi; i++ {
			acc += in[i]
			out[i] = acc
		}
	})
	return total
}

// ScanFunc computes the exclusive prefix sum of fn(i) for i in [0, n) into a
// freshly allocated slice and returns it together with the total. It is the
// form used to build edge offsets from vertex degrees.
func ScanFunc[T Number](n int, fn func(i int) T) ([]T, T) {
	tmp := make([]T, n)
	For(n, func(i int) { tmp[i] = fn(i) })
	total := ScanExclusive(tmp, tmp)
	return tmp, total
}
