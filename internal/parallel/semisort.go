package parallel

// SemisortByKey reorders items so that elements with equal keys become
// contiguous, without fully sorting across different keys — the semisort
// primitive of Gu, Shun, Sun and Blelloch (SPAA 2015), the core of
// group-by/MapReduce-style collection. The implementation hashes keys and
// radix-sorts by the hash (equal keys share a hash, so they land
// together); the rare distinct-key hash collisions are repaired with a
// local grouping pass over each equal-hash run.
func SemisortByKey[T any](items []T, key func(T) uint64) {
	n := len(items)
	if n <= 1 {
		return
	}
	work := make([]hashedItem[T], n)
	For(n, func(i int) {
		work[i] = hashedItem[T]{h: hashKey64(key(items[i])), item: items[i]}
	})
	RadixSortByKey(work, 1<<32, func(v hashedItem[T]) int64 { return int64(v.h) })

	// Repair pass: within each run of equal hashes, group equal keys
	// (runs are tiny with a good hash, so quadratic locally is fine).
	// Ownership rule: a run is processed by the block in which it starts;
	// blocks skip a leading foreign run and extend past their end to
	// finish their own last run, so regions never overlap.
	ForRange(n, func(lo, hi int) {
		for lo < hi && lo > 0 && work[lo].h == work[lo-1].h {
			lo++
		}
		if lo >= hi {
			return // block lies entirely inside a run owned by another block
		}
		for hi < n && work[hi].h == work[hi-1].h {
			hi++
		}
		i := lo
		for i < hi {
			j := i + 1
			for j < hi && work[j].h == work[i].h {
				j++
			}
			if j-i > 1 {
				groupRun(work[i:j], key)
			}
			i = j
		}
	})
	For(n, func(i int) { items[i] = work[i].item })
}

// hashedItem pairs an element with its key hash during a semisort.
type hashedItem[T any] struct {
	h    uint32
	item T
}

// groupRun groups equal keys within a small run by selection-style
// swapping. Only the items move — the hashes in the run are all equal and
// neighboring workers may still be reading them to find their run
// boundaries, so the h fields must not be written.
func groupRun[T any](run []hashedItem[T], key func(T) uint64) {
	for i := 0; i < len(run); {
		k := key(run[i].item)
		j := i + 1
		for t := i + 1; t < len(run); t++ {
			if key(run[t].item) == k {
				run[j].item, run[t].item = run[t].item, run[j].item
				j++
			}
		}
		i = j
	}
}

// hashKey64 compresses a 64-bit key to a well-mixed 32-bit hash.
func hashKey64(x uint64) uint32 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return uint32(x)
}

// GroupByKey semisorts items and returns the contiguous groups as
// sub-slices of the (reordered) input; each group holds all elements of
// one key.
func GroupByKey[T any](items []T, key func(T) uint64) [][]T {
	SemisortByKey(items, key)
	var groups [][]T
	i := 0
	for i < len(items) {
		k := key(items[i])
		j := i + 1
		for j < len(items) && key(items[j]) == k {
			j++
		}
		groups = append(groups, items[i:j])
		i = j
	}
	return groups
}
