package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkGrouped verifies that equal keys are contiguous and the multiset
// of elements is preserved.
func checkGrouped(t *testing.T, items []uint64, original []uint64) {
	t.Helper()
	// Multiset preserved.
	count := map[uint64]int{}
	for _, x := range original {
		count[x]++
	}
	for _, x := range items {
		count[x]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("multiset changed for key %d (delta %d)", k, c)
		}
	}
	// Contiguity: once a key's run ends it never reappears.
	seen := map[uint64]bool{}
	for i := 0; i < len(items); {
		k := items[i]
		if seen[k] {
			t.Fatalf("key %d appears in two separate runs", k)
		}
		seen[k] = true
		for i < len(items) && items[i] == k {
			i++
		}
	}
}

func TestSemisortGroupsEqualKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 10000, 100000} {
		items := make([]uint64, n)
		for i := range items {
			items[i] = uint64(rng.Intn(50)) // many duplicates
		}
		orig := append([]uint64(nil), items...)
		SemisortByKey(items, func(x uint64) uint64 { return x })
		checkGrouped(t, items, orig)
	}
}

func TestSemisortAllDistinct(t *testing.T) {
	n := 50000
	items := make([]uint64, n)
	for i := range items {
		items[i] = uint64(i)
	}
	orig := append([]uint64(nil), items...)
	SemisortByKey(items, func(x uint64) uint64 { return x })
	checkGrouped(t, items, orig)
}

func TestSemisortAllEqual(t *testing.T) {
	items := make([]uint64, 10000)
	for i := range items {
		items[i] = 7
	}
	SemisortByKey(items, func(x uint64) uint64 { return x })
	for _, x := range items {
		if x != 7 {
			t.Fatal("elements changed")
		}
	}
}

func TestSemisortProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		items := make([]uint64, len(raw))
		for i, r := range raw {
			items[i] = uint64(r % 97)
		}
		orig := append([]uint64(nil), items...)
		SemisortByKey(items, func(x uint64) uint64 { return x })
		// Inline contiguity check (no testing.T in quick property).
		count := map[uint64]int{}
		for _, x := range orig {
			count[x]++
		}
		for _, x := range items {
			count[x]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		seen := map[uint64]bool{}
		for i := 0; i < len(items); {
			k := items[i]
			if seen[k] {
				return false
			}
			seen[k] = true
			for i < len(items) && items[i] == k {
				i++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGroupByKey(t *testing.T) {
	type rec struct {
		k uint64
		v int
	}
	items := []rec{{2, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 5}, {2, 6}}
	groups := GroupByKey(items, func(r rec) uint64 { return r.k })
	if len(groups) != 3 {
		t.Fatalf("%d groups, want 3", len(groups))
	}
	sizes := map[uint64]int{}
	total := 0
	for _, g := range groups {
		k := g[0].k
		for _, r := range g {
			if r.k != k {
				t.Fatalf("group of key %d contains key %d", k, r.k)
			}
		}
		sizes[k] = len(g)
		total += len(g)
	}
	if total != len(items) || sizes[1] != 2 || sizes[2] != 3 || sizes[3] != 1 {
		t.Fatalf("group sizes wrong: %v", sizes)
	}
}

func TestGroupByKeyEmpty(t *testing.T) {
	if groups := GroupByKey([]int{}, func(int) uint64 { return 0 }); len(groups) != 0 {
		t.Error("groups from empty input")
	}
}
