package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 50000} {
		got := SumFunc(n, func(i int) int64 { return int64(i) })
		want := int64(n) * int64(n-1) / 2
		if got != want {
			t.Errorf("SumFunc(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSumMatchesSequential(t *testing.T) {
	f := func(xs []int32) bool {
		var want int64
		xs64 := make([]int64, len(xs))
		for i, x := range xs {
			want += int64(x)
			xs64[i] = int64(x)
		}
		return Sum(xs64) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []int{5, -2, 9, 0, 7, -2, 9}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %d, want 9", got)
	}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %d, want -2", got)
	}
	if got := MaxIndexFunc(len(xs), func(i int) int { return xs[i] }); got != 2 {
		t.Errorf("MaxIndexFunc = %d, want 2 (first max)", got)
	}
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max on empty slice did not panic")
		}
	}()
	Max([]int{})
}

func TestCountAnyAll(t *testing.T) {
	n := 10000
	if got := CountFunc(n, func(i int) bool { return i%3 == 0 }); got != (n+2)/3 {
		t.Errorf("CountFunc = %d, want %d", got, (n+2)/3)
	}
	if !Any(n, func(i int) bool { return i == n-1 }) {
		t.Error("Any missed the last element")
	}
	if Any(n, func(i int) bool { return false }) {
		t.Error("Any found a nonexistent element")
	}
	if !All(n, func(i int) bool { return i >= 0 }) {
		t.Error("All failed on a universal predicate")
	}
	if All(n, func(i int) bool { return i != n/2 }) {
		t.Error("All missed a violation")
	}
	if Any(0, func(int) bool { return true }) {
		t.Error("Any on empty range")
	}
	if !All(0, func(int) bool { return false }) {
		t.Error("All on empty range should hold vacuously")
	}
}

func TestScanExclusiveProperty(t *testing.T) {
	f := func(xs []int32) bool {
		in := make([]int64, len(xs))
		for i, x := range xs {
			in[i] = int64(x)
		}
		out := make([]int64, len(in))
		total := ScanExclusive(in, out)
		var acc int64
		for i := range in {
			if out[i] != acc {
				return false
			}
			acc += in[i]
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScanInclusiveProperty(t *testing.T) {
	f := func(xs []int32) bool {
		in := make([]int64, len(xs))
		for i, x := range xs {
			in[i] = int64(x)
		}
		out := make([]int64, len(in))
		total := ScanInclusive(in, out)
		var acc int64
		for i := range in {
			acc += in[i]
			if out[i] != acc {
				return false
			}
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScanInPlaceAliasing(t *testing.T) {
	n := 10000
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 7)
	}
	want := make([]int64, n)
	var acc int64
	for i := range xs {
		want[i] = acc
		acc += xs[i]
	}
	total := ScanExclusive(xs, xs) // aliased
	if total != acc {
		t.Fatalf("total = %d, want %d", total, acc)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("aliased scan wrong at %d: got %d want %d", i, xs[i], want[i])
		}
	}
}

func TestScanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ScanExclusive(make([]int, 3), make([]int, 4))
}

func TestScanFunc(t *testing.T) {
	offsets, total := ScanFunc(5, func(i int) int { return i + 1 })
	want := []int{0, 1, 3, 6, 10}
	for i := range want {
		if offsets[i] != want[i] {
			t.Errorf("offsets[%d] = %d, want %d", i, offsets[i], want[i])
		}
	}
	if total != 15 {
		t.Errorf("total = %d, want 15", total)
	}
}

func TestFilterProperty(t *testing.T) {
	f := func(xs []int16) bool {
		pred := func(x int16) bool { return x%2 == 0 }
		got := Filter(xs, pred)
		var want []int16
		for _, x := range xs {
			if pred(x) {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFilterLarge(t *testing.T) {
	n := 100000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	got := Filter(xs, func(x int) bool { return x%10 == 3 })
	if len(got) != n/10 {
		t.Fatalf("filter kept %d, want %d", len(got), n/10)
	}
	for i, x := range got {
		if x != i*10+3 {
			t.Fatalf("got[%d] = %d, want %d (order violated)", i, x, i*10+3)
		}
	}
}

func TestPackIndex(t *testing.T) {
	n := 65537
	got := PackIndex[uint32](n, func(i int) bool { return i%5 == 0 })
	if len(got) != (n+4)/5 {
		t.Fatalf("pack kept %d, want %d", len(got), (n+4)/5)
	}
	for i, x := range got {
		if x != uint32(i*5) {
			t.Fatalf("got[%d] = %d, want %d", i, x, i*5)
		}
	}
}

func TestFillIotaCopy(t *testing.T) {
	s := make([]int, 12345)
	Fill(s, 7)
	for _, v := range s {
		if v != 7 {
			t.Fatal("Fill missed an element")
		}
	}
	Iota(s, 100)
	for i, v := range s {
		if v != 100+i {
			t.Fatalf("Iota wrong at %d: %d", i, v)
		}
	}
	d := make([]int, len(s))
	CopyInto(d, s)
	for i := range s {
		if d[i] != s[i] {
			t.Fatal("CopyInto mismatch")
		}
	}
}

func TestMapNew(t *testing.T) {
	got := MapNew(1000, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("MapNew wrong at %d", i)
		}
	}
}

func TestSortFuncMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 100, 5000, 100000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		SortFunc(xs, func(a, b int) bool { return a < b })
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: sorted[%d] = %d, want %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestSortStability(t *testing.T) {
	type kv struct{ k, idx int }
	n := 50000
	rng := rand.New(rand.NewSource(7))
	xs := make([]kv, n)
	for i := range xs {
		xs[i] = kv{rng.Intn(50), i}
	}
	SortFunc(xs, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < n; i++ {
		if xs[i-1].k == xs[i].k && xs[i-1].idx > xs[i].idx {
			t.Fatalf("stability violated at %d: (%v) before (%v)", i, xs[i-1], xs[i])
		}
		if xs[i-1].k > xs[i].k {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestIsSorted(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	if !IsSorted([]int{1, 2, 2, 3}, less) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSorted([]int{3, 1}, less) {
		t.Error("unsorted slice reported sorted")
	}
	if !IsSorted([]int{}, less) || !IsSorted([]int{1}, less) {
		t.Error("trivial slices should be sorted")
	}
}
