package parallel

// sortSequentialCutoff is the size below which subtrees are sorted
// sequentially rather than forked.
const sortSequentialCutoff = 4096

// insertionCutoff is the size below which insertion sort is used.
const insertionCutoff = 24

// SortFunc stably sorts s in place using the strict weak ordering less.
// Large inputs are sorted by a parallel merge sort; the sequential base is
// a buffered merge sort with an insertion-sort leaf, implemented directly
// on the generic element type (no reflection, unlike sort.SliceStable,
// which matters for the edge-array sorts that dominate graph building).
func SortFunc[T any](s []T, less func(a, b T) bool) {
	if len(s) <= insertionCutoff {
		insertionSort(s, less)
		return
	}
	buf := make([]T, len(s))
	if len(s) < sortSequentialCutoff || Procs() == 1 {
		seqMergeSort(s, buf, less)
		return
	}
	parMergeSort(s, buf, less, Procs())
}

// insertionSort is the stable leaf sort.
func insertionSort[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && less(v, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
}

// seqMergeSort stably sorts s using buf (same length) as scratch.
func seqMergeSort[T any](s, buf []T, less func(a, b T) bool) {
	if len(s) <= insertionCutoff {
		insertionSort(s, less)
		return
	}
	mid := len(s) / 2
	seqMergeSort(s[:mid], buf[:mid], less)
	seqMergeSort(s[mid:], buf[mid:], less)
	if !less(s[mid], s[mid-1]) {
		return // already in order
	}
	merge(s[:mid], s[mid:], buf, less)
	copy(s, buf)
}

// parMergeSort sorts s using buf as scratch; procs bounds the remaining
// parallelism budget for this subtree.
func parMergeSort[T any](s, buf []T, less func(a, b T) bool, procs int) {
	if len(s) < sortSequentialCutoff || procs <= 1 {
		seqMergeSort(s, buf, less)
		return
	}
	mid := len(s) / 2
	Do(
		func() { parMergeSort(s[:mid], buf[:mid], less, procs/2) },
		func() { parMergeSort(s[mid:], buf[mid:], less, procs-procs/2) },
	)
	if !less(s[mid], s[mid-1]) {
		return
	}
	merge(s[:mid], s[mid:], buf, less)
	copy(s, buf)
}

// merge merges sorted a and b into out (len(out) == len(a)+len(b)),
// preferring elements of a on ties, which keeps the sort stable.
func merge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// Sort sorts a slice of ordered numbers ascending.
func Sort[T Number](s []T) {
	SortFunc(s, func(a, b T) bool { return a < b })
}

// IsSorted reports whether s is non-decreasing under less.
func IsSorted[T any](s []T, less func(a, b T) bool) bool {
	return All(len(s)-1, func(i int) bool { return !less(s[i+1], s[i]) })
}
