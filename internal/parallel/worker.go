package parallel

import (
	"context"
	"runtime"
	"runtime/debug"

	"ligra/internal/faultinject"
)

// AutoGrain returns the chunk size the For-family primitives select
// automatically for an n-iteration loop, so callers that need to know the
// chunk structure up front (e.g. to allocate per-chunk output slots) can
// reproduce it.
func AutoGrain(n int) int {
	return defaultGrain(n, Procs())
}

// ForWorkerChunksCtx dispatches the contiguous chunks of [0, n) dynamically
// to workers like ForRangeGrainCtx, additionally passing the executing
// worker's index (in [0, CtxProcs(ctx))) and the chunk's index (lo/grain)
// to the body. grain <= 0 selects the automatic size (AutoGrainCtx).
//
// The worker index enables contention-free per-worker accumulators: each
// worker runs at most one chunk at a time, so state keyed by the worker
// index is accessed by a single goroutine for the duration of the call.
// The chunk index lets callers reassemble per-chunk results in input order
// afterward, preserving determinism despite dynamic chunk claiming. Each
// chunk index in [0, ceil(n/grain)) is passed to the body exactly once
// (unless the call aborts early on cancellation or panic, in which case
// some chunks are never dispatched and an error is returned).
//
// Cancellation and panic semantics match ForRangeGrainCtx: ctx (nil =
// background) is observed at chunk granularity, and a worker panic is
// returned as a *PanicError.
func ForWorkerChunksCtx(ctx context.Context, n, grain int, body func(worker, chunk, lo, hi int)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if n <= 0 {
		return nil
	}
	procs := CtxProcs(ctx)
	auto := grain <= 0
	if auto {
		grain = defaultGrain(n, procs)
	}
	chunks := (n + grain - 1) / grain
	if procs == 1 || chunks == 1 || (auto && n <= seqCutoff) {
		schedStats.inlineRuns.Add(1)
		if procs > 1 && chunks > 1 {
			schedStats.cutoffRuns.Add(1)
		}
		return forWorkerSeq(ctx, n, grain, chunks, body)
	}
	return runParallel(ctx, n, grain, chunks, procs, body)
}

// forWorkerSeq runs every chunk on the calling goroutine as worker 0,
// honouring chunk granularity for cancellation checks.
func forWorkerSeq(ctx context.Context, n, grain, chunks int, body func(worker, chunk, lo, hi int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	for c := 0; c < chunks; c++ {
		if ctx != nil {
			if c > 0 {
				runtime.Gosched()
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		faultinject.OnChunk()
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		body(0, c, lo, hi)
	}
	// Match ForRangeGrainCtx: surface a cancellation raised inside the
	// final (or only) chunk.
	return ctxErr(ctx)
}
