package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForWorkerChunksCtxCoversEveryChunkOnce(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000, 4096} {
		for _, grain := range []int{0, 1, 7, 64, 4096} {
			seen := make([]atomic.Int32, n)
			var chunks atomic.Int64
			err := ForWorkerChunksCtx(nil, n, grain, func(worker, chunk, lo, hi int) {
				if worker < 0 || worker >= Procs() {
					t.Errorf("worker %d out of range", worker)
				}
				g := grain
				if g <= 0 {
					g = AutoGrain(n)
				}
				if chunk != lo/g {
					t.Errorf("chunk %d does not match lo %d / grain %d", chunk, lo, g)
				}
				chunks.Add(1)
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			if err != nil {
				t.Fatalf("n=%d grain=%d: %v", n, grain, err)
			}
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, got)
				}
			}
		}
	}
}

func TestForWorkerChunksCtxChunkOrderIsReassemblable(t *testing.T) {
	// The (chunk, lo, hi) triples must tile [0, n) in chunk order, which is
	// what the sparse edgeMap relies on to reassemble per-chunk segments
	// deterministically.
	n, grain := 1000, 64
	nchunks := (n + grain - 1) / grain
	los := make([]int, nchunks)
	his := make([]int, nchunks)
	err := ForWorkerChunksCtx(nil, n, grain, func(_, chunk, lo, hi int) {
		los[chunk] = lo
		his[chunk] = hi
	})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for c := 0; c < nchunks; c++ {
		if los[c] != next {
			t.Fatalf("chunk %d starts at %d, want %d", c, los[c], next)
		}
		next = his[c]
	}
	if next != n {
		t.Fatalf("chunks cover [0, %d), want [0, %d)", next, n)
	}
}

func TestForWorkerChunksCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForWorkerChunksCtx(ctx, 1<<20, 64, func(_, _, _, _ int) {
		if calls.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got == 1<<20/64 {
		t.Fatal("cancellation did not stop chunk dispatch")
	}
}

func TestForWorkerChunksCtxPanicContained(t *testing.T) {
	err := ForWorkerChunksCtx(nil, 1000, 10, func(_, chunk, _, _ int) {
		if chunk == 5 {
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestAutoGrainMatchesDispatch(t *testing.T) {
	for _, n := range []int{1, 100, 4096, 1 << 20} {
		g := AutoGrain(n)
		if g <= 0 {
			t.Fatalf("AutoGrain(%d) = %d", n, g)
		}
		// The first chunk dispatched with grain 0 must span exactly
		// AutoGrain(n) iterations (or all of them).
		var lo0, hi0 int
		err := ForWorkerChunksCtx(nil, n, 0, func(_, chunk, lo, hi int) {
			if chunk == 0 {
				lo0, hi0 = lo, hi
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		want := g
		if want > n {
			want = n
		}
		if lo0 != 0 || hi0-lo0 != want {
			t.Fatalf("n=%d: first chunk [%d, %d), want width %d", n, lo0, hi0, want)
		}
	}
}
