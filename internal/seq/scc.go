package seq

import "ligra/internal/graph"

// SCC computes strongly connected components sequentially with Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the stack),
// labeling every vertex with the minimum vertex ID of its component.
func SCC(g graph.View) []uint32 {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]uint32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = ^uint32(0)
	}
	var stack []uint32 // Tarjan's component stack
	var next int32

	// Iterative DFS: frames carry the vertex and the out-neighbor cursor.
	type frame struct {
		v        uint32
		children []uint32
		cursor   int
	}
	outs := func(v uint32) []uint32 {
		var o []uint32
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			o = append(o, d)
			return true
		})
		return o
	}

	for root := uint32(0); int(root) < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root, children: outs(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.cursor < len(f.children) {
				d := f.children[f.cursor]
				f.cursor++
				if index[d] == unvisited {
					index[d] = next
					low[d] = next
					next++
					stack = append(stack, d)
					onStack[d] = true
					frames = append(frames, frame{v: d, children: outs(d)})
				} else if onStack[d] && index[d] < low[f.v] {
					low[f.v] = index[d]
				}
				continue
			}
			// All children explored: close the frame.
			v := f.v
			if low[v] == index[v] {
				// v is an SCC root: pop its component, label with min ID.
				minID := v
				popAt := len(stack)
				for {
					popAt--
					w := stack[popAt]
					if w < minID {
						minID = w
					}
					if w == v {
						break
					}
				}
				for i := popAt; i < len(stack); i++ {
					w := stack[i]
					onStack[w] = false
					comp[w] = minID
				}
				stack = stack[:popAt]
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp
}
