// Package seq contains straightforward sequential implementations of the
// graph problems solved by package algo. They serve two purposes: (1)
// correctness oracles for the test suite, and (2) the hand-written
// baselines against which the framework's abstraction overhead is measured
// in the Table 2 reproduction (the paper compared against both serial
// implementations and other frameworks' published numbers).
package seq

import (
	"container/heap"
	"math"

	"ligra/internal/graph"
)

// BFS returns the parent array of a sequential queue-based breadth-first
// search from source (parent of the source is itself; unreachable vertices
// get ^uint32(0)).
func BFS(g graph.View, source uint32) []uint32 {
	n := g.NumVertices()
	const none = ^uint32(0)
	parents := make([]uint32, n)
	for i := range parents {
		parents[i] = none
	}
	parents[source] = source
	queue := make([]uint32, 0, 1024)
	queue = append(queue, source)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if parents[d] == none {
				parents[d] = v
				queue = append(queue, d)
			}
			return true
		})
	}
	return parents
}

// BFSLevels returns per-vertex distances (in edges) from source, -1 when
// unreachable.
func BFSLevels(g graph.View, source uint32) []int32 {
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if levels[d] == -1 {
				levels[d] = levels[v] + 1
				queue = append(queue, d)
			}
			return true
		})
	}
	return levels
}

// ConnectedComponents labels vertices of a symmetric graph with the
// minimum vertex ID of their component, via union-find with union by rank
// and path halving.
func ConnectedComponents(g graph.View) []uint32 {
	n := g.NumVertices()
	parent := make([]uint32, n)
	rank := make([]uint8, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rank[ra] < rank[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if rank[ra] == rank[rb] {
			rank[ra]++
		}
	}
	for v := uint32(0); int(v) < n; v++ {
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			union(v, d)
			return true
		})
	}
	// Normalize to min vertex ID per component.
	minID := make([]uint32, n)
	for i := range minID {
		minID[i] = ^uint32(0)
	}
	for v := uint32(0); int(v) < n; v++ {
		r := find(v)
		if v < minID[r] {
			minID[r] = v
		}
	}
	labels := make([]uint32, n)
	for v := uint32(0); int(v) < n; v++ {
		labels[v] = minID[find(v)]
	}
	return labels
}

// distHeap is a binary heap for Dijkstra keyed by tentative distance.
type distHeap struct {
	dist []int64
	ids  []uint32
	pos  []int32 // pos[v] = index of v in ids, -1 if absent
}

func (h *distHeap) Len() int { return len(h.ids) }
func (h *distHeap) Less(i, j int) bool {
	return h.dist[h.ids[i]] < h.dist[h.ids[j]]
}
func (h *distHeap) Swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}
func (h *distHeap) Push(x any) {
	v := x.(uint32)
	h.pos[v] = int32(len(h.ids))
	h.ids = append(h.ids, v)
}
func (h *distHeap) Pop() any {
	v := h.ids[len(h.ids)-1]
	h.ids = h.ids[:len(h.ids)-1]
	h.pos[v] = -1
	return v
}

// Dijkstra computes shortest-path distances from source on a graph with
// non-negative weights. Unreachable vertices get maxInt64/4.
func Dijkstra(g graph.View, source uint32) []int64 {
	n := g.NumVertices()
	const inf = int64(math.MaxInt64) / 4
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = 0
	h := &distHeap{dist: dist, pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	heap.Push(h, source)
	for h.Len() > 0 {
		v := heap.Pop(h).(uint32)
		dv := dist[v]
		g.OutNeighbors(v, func(d uint32, w int32) bool {
			if nd := dv + int64(w); nd < dist[d] {
				dist[d] = nd
				if h.pos[d] >= 0 {
					heap.Fix(h, int(h.pos[d]))
				} else {
					heap.Push(h, d)
				}
			}
			return true
		})
	}
	return dist
}

// BellmanFord computes shortest-path distances from source, supporting
// negative weights; the second return is true if a reachable negative
// cycle exists.
func BellmanFord(g graph.View, source uint32) ([]int64, bool) {
	n := g.NumVertices()
	const inf = int64(math.MaxInt64) / 4
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := uint32(0); int(v) < n; v++ {
			if dist[v] >= inf {
				continue
			}
			dv := dist[v]
			g.OutNeighbors(v, func(d uint32, w int32) bool {
				if nd := dv + int64(w); nd < dist[d] {
					dist[d] = nd
					changed = true
				}
				return true
			})
		}
		if !changed {
			return dist, false
		}
	}
	return dist, true
}

// PageRank runs sequential power iteration with the same dangling-mass
// correction as algo.PageRank, for use as an oracle.
func PageRank(g graph.View, damping, epsilon float64, maxIters int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	p := make([]float64, n)
	next := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIters; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			next[v] = 0
			if g.OutDegree(uint32(v)) == 0 {
				dangling += p[v]
			}
		}
		for v := uint32(0); int(v) < n; v++ {
			deg := g.OutDegree(v)
			if deg == 0 {
				continue
			}
			share := p[v] / float64(deg)
			g.OutNeighbors(v, func(d uint32, _ int32) bool {
				next[d] += share
				return true
			})
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		var err float64
		for v := 0; v < n; v++ {
			nv := base + damping*next[v]
			err += math.Abs(nv - p[v])
			p[v] = nv
		}
		if epsilon > 0 && err < epsilon {
			break
		}
	}
	return p
}

// BC computes Brandes' single-source dependency scores sequentially.
func BC(g graph.View, source uint32) []float64 {
	n := g.NumVertices()
	sigma := make([]float64, n)
	dist := make([]int32, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[source] = 1
	dist[source] = 0
	order := make([]uint32, 0, n)
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if dist[d] == -1 {
				dist[d] = dist[v] + 1
				queue = append(queue, d)
			}
			if dist[d] == dist[v]+1 {
				sigma[d] += sigma[v]
			}
			return true
		})
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if dist[d] == dist[v]+1 {
				delta[v] += sigma[v] / sigma[d] * (1 + delta[d])
			}
			return true
		})
	}
	return delta
}

// Eccentricities returns, for each vertex, the maximum BFS distance to it
// from any of the given sources (-1 if unreached) — the quantity algo.Radii
// estimates. Sources must be valid vertex IDs.
func Eccentricities(g graph.View, sources []uint32) []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	for _, s := range sources {
		lv := BFSLevels(g, s)
		for v := 0; v < n; v++ {
			if lv[v] > out[v] {
				out[v] = lv[v]
			}
		}
	}
	return out
}

// TriangleCount counts triangles (unordered vertex triples with all three
// edges present) in a symmetric simple graph by rank-ordered adjacency
// intersection, sequentially.
func TriangleCount(g graph.View) int64 {
	n := g.NumVertices()
	// rank order: by (degree, id); forward neighbors only.
	higher := func(u, v uint32) bool {
		du, dv := g.OutDegree(u), g.OutDegree(v)
		return dv > du || (dv == du && v > u)
	}
	fwd := make([][]uint32, n)
	for v := uint32(0); int(v) < n; v++ {
		g.OutNeighbors(v, func(d uint32, _ int32) bool {
			if higher(v, d) {
				fwd[v] = append(fwd[v], d)
			}
			return true
		})
		sortU32(fwd[v])
	}
	var count int64
	for v := 0; v < n; v++ {
		for _, u := range fwd[v] {
			count += intersectCount(fwd[v], fwd[u])
		}
	}
	return count
}

func sortU32(s []uint32) {
	// insertion sort is fine for the small adjacency lists oracles use;
	// fall back to a simple quicksort for longer runs.
	if len(s) <= 32 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	quickU32(s)
}

func quickU32(s []uint32) {
	for len(s) > 32 {
		p := s[len(s)/2]
		i, j := 0, len(s)-1
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j > len(s)-i {
			quickU32(s[i:])
			s = s[:j+1]
		} else {
			quickU32(s[:j+1])
			s = s[i:]
		}
	}
	sortU32(s)
}

func intersectCount(a, b []uint32) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
