package seq

import (
	"math"
	"testing"

	"ligra/internal/graph"
)

// line builds the weighted directed line 0 ->(1) 1 ->(2) 2 ->(3) 3.
func line(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSLine(t *testing.T) {
	g := line(t)
	p := BFS(g, 0)
	if p[0] != 0 || p[1] != 0 || p[2] != 1 || p[3] != 2 {
		t.Errorf("parents = %v", p)
	}
	lv := BFSLevels(g, 0)
	for v, want := range []int32{0, 1, 2, 3} {
		if lv[v] != want {
			t.Errorf("level[%d] = %d, want %d", v, lv[v], want)
		}
	}
	// From the sink, everything else is unreachable.
	lv3 := BFSLevels(g, 3)
	if lv3[0] != -1 || lv3[3] != 0 {
		t.Errorf("levels from sink = %v", lv3)
	}
}

func TestConnectedComponentsTwoIslands(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 3, Dst: 4},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	labels := ConnectedComponents(g)
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("first island labels: %v", labels)
	}
	if labels[2] != 2 {
		t.Errorf("isolated vertex label: %d", labels[2])
	}
	if labels[3] != 3 || labels[4] != 3 {
		t.Errorf("second island labels: %v", labels)
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(t)
	d := Dijkstra(g, 0)
	want := []int64{0, 1, 3, 6}
	for v := range want {
		if d[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestDijkstraDecreaseKey(t *testing.T) {
	// Two routes to 2: direct (10) and via 1 (3+4=7); heap must re-fix.
	g, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 2, Weight: 10},
		{Src: 0, Dst: 1, Weight: 3},
		{Src: 1, Dst: 2, Weight: 4},
	}, graph.BuildOptions{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	d := Dijkstra(g, 0)
	if d[2] != 7 {
		t.Errorf("dist[2] = %d, want 7", d[2])
	}
}

func TestBellmanFordAgreesWithDijkstra(t *testing.T) {
	g := line(t)
	bf, neg := BellmanFord(g, 0)
	if neg {
		t.Fatal("spurious negative cycle")
	}
	dj := Dijkstra(g, 0)
	for v := range dj {
		if bf[v] != dj[v] {
			t.Errorf("dist[%d]: BF %d vs Dijkstra %d", v, bf[v], dj[v])
		}
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := PageRank(g, 0.85, 1e-12, 200)
	for v, r := range p {
		if math.Abs(r-0.25) > 1e-9 {
			t.Errorf("rank[%d] = %v, want 0.25 (symmetric cycle)", v, r)
		}
	}
}

func TestPageRankMassConserved(t *testing.T) {
	// Graph with a dangling vertex.
	g, err := graph.FromEdges(3, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := PageRank(g, 0.85, 1e-12, 200)
	var mass float64
	for _, r := range p {
		mass += r
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("mass = %v, want 1", mass)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("ordering wrong: %v", p)
	}
}

func TestBCStarCenter(t *testing.T) {
	// Star with center 0: every shortest path between leaves passes the
	// center. From source = leaf 1, delta(center) = #other leaves.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	delta := BC(g, 1)
	if math.Abs(delta[0]-3) > 1e-12 {
		t.Errorf("delta(center) = %v, want 3", delta[0])
	}
	for v := 2; v <= 4; v++ {
		if delta[v] != 0 {
			t.Errorf("delta(leaf %d) = %v, want 0", v, delta[v])
		}
	}
}

func TestEccentricities(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	ecc := Eccentricities(g, []uint32{0, 3})
	want := []int32{3, 2, 2, 3}
	for v := range want {
		if ecc[v] != want[v] {
			t.Errorf("ecc[%d] = %d, want %d", v, ecc[v], want[v])
		}
	}
}

func TestTriangleCountSquareWithDiagonal(t *testing.T) {
	// Square 0-1-2-3 plus diagonal 0-2: two triangles.
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}, {Src: 0, Dst: 2},
	}, graph.BuildOptions{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(g); got != 2 {
		t.Errorf("triangles = %d, want 2", got)
	}
}

func TestSortU32LongRuns(t *testing.T) {
	// Exercise the quicksort path (> 32 elements) including duplicates.
	n := 1000
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32((i * 7919) % 257)
	}
	sortU32(s)
	for i := 1; i < n; i++ {
		if s[i-1] > s[i] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func TestIntersectCount(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{2, 3, 4, 5, 6}
	if got := intersectCount(a, b); got != 2 {
		t.Errorf("intersectCount = %d, want 2", got)
	}
	if got := intersectCount(nil, b); got != 0 {
		t.Errorf("empty intersect = %d", got)
	}
}

func TestSCCSequential(t *testing.T) {
	// Two 2-cycles bridged one-way plus a self-contained vertex.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp := SCC(g)
	want := []uint32{0, 0, 2, 2, 4}
	for v := range want {
		if comp[v] != want[v] {
			t.Errorf("comp[%d] = %d, want %d", v, comp[v], want[v])
		}
	}
}

func TestSCCDeepChainIterative(t *testing.T) {
	// A long directed path would overflow a recursive Tarjan; the
	// iterative version must handle it.
	n := 200000
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{Src: uint32(i), Dst: uint32(i + 1)}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp := SCC(g)
	for v := 0; v < n; v++ {
		if comp[v] != uint32(v) {
			t.Fatalf("path vertex %d in component %d", v, comp[v])
		}
	}
}

func TestSCCBigCycle(t *testing.T) {
	n := 100000
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: uint32(i), Dst: uint32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp := SCC(g)
	for v := 0; v < n; v++ {
		if comp[v] != 0 {
			t.Fatalf("cycle vertex %d in component %d", v, comp[v])
		}
	}
}
