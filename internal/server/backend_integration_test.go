package server

import (
	"net/http"
	"testing"
	"time"
)

// TestCrossBackendCacheHit proves the backend field is stripped from the
// cache key end to end: the spmv and edgemap backends are bit-identical,
// so a result computed under one backend must be served from cache to a
// request naming the other, and the cached reply reports the backend of
// the execution that filled the cache.
func TestCrossBackendCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4, CacheBytes: 1 << 20})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 11}); status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}

	// pagerank computed under edgemap, then requested under spmv.
	status, first := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "pagerank", "backend": "edgemap"})
	if status != http.StatusOK {
		t.Fatalf("edgemap query: status %d, body %v", status, first)
	}
	if first["cached"] == true || first["backend"] != "edgemap" {
		t.Fatalf("edgemap query: cached=%v backend=%v", first["cached"], first["backend"])
	}
	status, second := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "pagerank", "backend": "spmv"})
	if status != http.StatusOK {
		t.Fatalf("spmv query: status %d, body %v", status, second)
	}
	if second["cached"] != true {
		t.Errorf("spmv request after identical edgemap query not served from cache: %v", second)
	}
	if second["summary"] != first["summary"] {
		t.Errorf("cached summary %q differs from computed %q", second["summary"], first["summary"])
	}
	// The cached reply reports the backend of the filling execution.
	if second["backend"] != "edgemap" {
		t.Errorf("cached reply backend = %v, want edgemap (the filling execution)", second["backend"])
	}
	if es := s.Engine().Snapshot(); es.Executions != 1 {
		t.Errorf("runner executed %d times for cross-backend pair, want 1", es.Executions)
	}

	// The reverse direction: triangles computed under spmv, hit under
	// edgemap and under auto.
	status, tri := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "triangles", "backend": "spmv"})
	if status != http.StatusOK || tri["cached"] == true || tri["backend"] != "spmv" {
		t.Fatalf("triangles spmv: status %d, cached=%v backend=%v", status, tri["cached"], tri["backend"])
	}
	for _, b := range []string{"edgemap", "auto"} {
		status, hit := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
			map[string]any{"algo": "triangles", "backend": b})
		if status != http.StatusOK || hit["cached"] != true || hit["backend"] != "spmv" {
			t.Errorf("triangles %s after spmv: status %d, cached=%v backend=%v (want cache hit reporting spmv)",
				b, status, hit["cached"], hit["backend"])
		}
	}

	// /metrics reports executed queries per backend: exactly one edgemap
	// (pagerank) and one spmv (triangles) execution; cache hits counted
	// nowhere.
	snap := metricsSnapshot(t, ts.URL)
	if snap.Backends["edgemap"] != 1 || snap.Backends["spmv"] != 1 {
		t.Errorf("metrics backends = %v, want edgemap:1 spmv:1", snap.Backends)
	}
}

// TestQueryBackendValidation checks the 400 paths: an unknown backend
// string and an spmv request for an algorithm with no spmv kernel.
func TestQueryBackendValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 8}); status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "bfs", "backend": "graphblas"}); status != http.StatusBadRequest {
		t.Errorf("unknown backend: status %d, body %v, want 400", status, body)
	}
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "components", "backend": "spmv"}); status != http.StatusBadRequest {
		t.Errorf("spmv for non-kernel algo: status %d, body %v, want 400", status, body)
	}
	// auto for a non-kernel algorithm is fine — it resolves to edgemap
	// (non-kernel runners don't report a backend detail, so the response
	// omits the field).
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "components", "backend": "auto"}); status != http.StatusOK || body["backend"] != nil {
		t.Errorf("auto components: status %d, backend %v, want 200 with no backend field", status, body["backend"])
	}
}

// TestSpMVBypassesBatcher checks that a bfs query resolved to the spmv
// backend executes directly instead of joining the multi-source batch
// collector (whose shared sweeps are edgeMap executions).
func TestSpMVBypassesBatcher(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 4,
		BatchWindow:   50 * time.Millisecond,
		BatchMax:      8,
	})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 10}); status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "bfs", "source": 0, "backend": "spmv"})
	if status != http.StatusOK {
		t.Fatalf("bfs spmv: status %d, body %v", status, body)
	}
	if body["batched"] == true {
		t.Errorf("spmv bfs went through the batch collector: %v", body)
	}
	if body["backend"] != "spmv" {
		t.Errorf("bfs backend = %v, want spmv", body["backend"])
	}
}
