// Package batch collects concurrent batchable queries (bfs, reach,
// landmarks — anything algo.Batchable) into shared ClusterBFS sweeps: up
// to 64 queries arriving within a small window against the same (graph,
// generation, traversal shape) each contribute one source bit and are
// answered from one pass over the edge set, instead of each paying a full
// traversal. The collector sits beside engine.Execute in the serving
// path: it reuses the engine's result cache (per-slot lookups and fills)
// and its parallelism governor (one lease per sweep), while the engine's
// single-flight coalescing is subsumed by slot coalescing — identical
// keys joining one window share a slot outright.
package batch

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"ligra/internal/algo"
	"ligra/internal/parallel"
	"ligra/internal/server/engine"
)

// Config parameterizes a Collector.
type Config struct {
	// Window is how long the first query of a batch waits for company
	// before the sweep fires; 0 selects 2ms.
	Window time.Duration
	// MaxBatch caps the sources per sweep; 0 selects 64, values beyond
	// 64 are clamped (the visit word has 64 bits). A full batch fires
	// immediately without waiting out the window.
	MaxBatch int
}

func (c Config) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return 2 * time.Millisecond
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 || c.MaxBatch > 64 {
		return 64
	}
	return c.MaxBatch
}

// Request is one query's seat in a batch.
type Request struct {
	// Key is the query's cache identity (graph, generation, algo,
	// canonical params); identical Keys in one window coalesce to a
	// single slot.
	Key engine.Key
	// Shape groups queries that may share a sweep: same graph,
	// generation, and edgeMap strategy. The algorithm name is NOT part
	// of the shape — a bfs, a reach, and a landmarks query can ride the
	// same traversal.
	Shape string
	// Algo and Params identify what to extract for this slot from the
	// shared sweep (see ClusterRun).
	Algo   string
	Params algo.Params
}

// RunFunc executes one gathered batch: slots are the coalesced requests
// (one source each), ctx carries the sweep's proc lease, and the returned
// values must align index-wise with slots.
type RunFunc func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error)

// Info reports how a request was satisfied, mirroring engine.Info with
// the batch dimension added.
type Info struct {
	// Cached: served from the result cache without joining a batch.
	Cached bool
	// Coalesced: shared a slot with an identical query in the same
	// window.
	Coalesced bool
	// Batched: answered by a shared sweep (true for every non-cached
	// outcome, even a batch of one).
	Batched bool
	// BatchSize is the number of slots in the sweep that answered this
	// request (0 when Cached).
	BatchSize int
	// Procs is the parallelism lease the sweep ran under (0 when
	// Cached).
	Procs int
}

// Collector gathers batchable queries into shared sweeps.
type Collector struct {
	base   context.Context
	cache  *engine.Cache // nil-safe, may be nil (caching disabled)
	gov    *engine.Governor
	window time.Duration
	max    int

	mu      sync.Mutex
	pending map[string]*batch // by Shape

	stats struct {
		batches      int64
		queries      int64
		slots        int64
		windowFires  int64
		fanoutErrors int64
	}
}

// New builds a Collector. base is the server's lifetime context (its
// cancellation aborts in-flight sweeps); cache may be nil; gov must not
// be.
func New(base context.Context, cache *engine.Cache, gov *engine.Governor, cfg Config) *Collector {
	if base == nil {
		base = context.Background()
	}
	return &Collector{
		base:    base,
		cache:   cache,
		gov:     gov,
		window:  cfg.window(),
		max:     cfg.maxBatch(),
		pending: make(map[string]*batch),
	}
}

// batch is one forming or running sweep.
type batch struct {
	shape  string
	run    RunFunc
	timer  *time.Timer
	slots  []Request
	byKey  map[engine.Key]int
	fired  bool
	// waiters counts callers still wanting an answer; the last one to
	// detach cancels the sweep (or drops the batch if it never fired).
	waiters int
	cancel  context.CancelFunc

	done  chan struct{} // closed when vals/err/procs are published
	vals  []engine.Value
	err   error
	procs int
}

// Execute satisfies one query: from the cache if possible, otherwise by
// seating it in a batch, waiting out the window (or until the batch
// fills), and fanning the sweep's result back. The caller's ctx only
// governs its own wait: a canceled caller abandons its slot and the sweep
// keeps serving the others.
func (c *Collector) Execute(ctx context.Context, req Request, run RunFunc) (engine.Value, Info, error) {
	if v, ok := c.cache.Get(req.Key); ok {
		return v, Info{Cached: true}, nil
	}

	c.mu.Lock()
	b := c.pending[req.Shape]
	if b == nil {
		b = &batch{
			shape:   req.Shape,
			run:     run,
			byKey:   map[engine.Key]int{req.Key: 0},
			slots:   []Request{req},
			waiters: 1,
			done:    make(chan struct{}),
		}
		c.pending[req.Shape] = b
		b.timer = time.AfterFunc(c.window, func() { c.fire(b, true) })
		c.mu.Unlock()
		return c.wait(ctx, b, req, 0, false)
	}
	if idx, ok := b.byKey[req.Key]; ok {
		// Identical query already seated: share its slot.
		b.waiters++
		c.mu.Unlock()
		return c.wait(ctx, b, req, idx, true)
	}
	idx := len(b.slots)
	b.slots = append(b.slots, req)
	b.byKey[req.Key] = idx
	b.waiters++
	full := len(b.slots) >= c.max
	c.mu.Unlock()
	if full {
		c.fire(b, false)
	}
	return c.wait(ctx, b, req, idx, false)
}

// fire transitions a batch from forming to running. byTimer records
// whether the window elapsed (vs the batch filling). Idempotent: the
// timer and a fill can race.
func (c *Collector) fire(b *batch, byTimer bool) {
	c.mu.Lock()
	if b.fired {
		c.mu.Unlock()
		return
	}
	b.fired = true
	delete(c.pending, b.shape)
	if b.timer != nil {
		b.timer.Stop()
	}
	if b.waiters == 0 {
		// Everyone detached while the batch was forming; nothing to do.
		b.err = context.Canceled
		c.mu.Unlock()
		close(b.done)
		return
	}
	slots := b.slots
	var bctx context.Context
	bctx, b.cancel = context.WithCancel(c.base)
	c.stats.batches++
	c.stats.queries += int64(b.waiters)
	c.stats.slots += int64(len(slots))
	if byTimer {
		c.stats.windowFires++
	}
	c.mu.Unlock()

	// The sweep runs on its own goroutine so a caller whose batch fired
	// by filling up can still time out or detach while it runs.
	go c.runBatch(b, bctx, slots)
}

// runBatch executes the sweep under a governor lease with panic
// containment, fills the cache per slot, and publishes the outcome.
func (c *Collector) runBatch(b *batch, bctx context.Context, slots []Request) {
	procs, release := c.gov.Acquire()
	defer release()

	vals, err := c.safeRun(b.run, parallel.WithProcs(bctx, procs), procs, slots)
	if err == nil && len(vals) != len(slots) {
		err = errBadFanout(len(vals), len(slots))
	}
	if err == nil {
		for i, req := range slots {
			c.cache.Put(req.Key, vals[i])
		}
	} else {
		c.mu.Lock()
		c.stats.fanoutErrors += int64(len(slots))
		c.mu.Unlock()
	}

	b.vals, b.err, b.procs = vals, err, procs
	close(b.done)
	if b.cancel != nil {
		b.cancel()
	}
}

// safeRun invokes the batch RunFunc with the same panic containment the
// single-query path has: a panic anywhere in the sweep becomes a
// *parallel.PanicError delivered to every waiter, never a process crash.
func (c *Collector) safeRun(run RunFunc, ctx context.Context, procs int, slots []Request) (vals []engine.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parallel.PanicError); ok {
				err = pe
				return
			}
			err = &parallel.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return run(ctx, procs, slots)
}

// wait blocks until the batch publishes or the caller's own ctx ends.
func (c *Collector) wait(ctx context.Context, b *batch, req Request, idx int, coalesced bool) (engine.Value, Info, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-b.done:
		info := Info{Coalesced: coalesced, Batched: true, BatchSize: len(b.slots), Procs: b.procs}
		if b.err != nil {
			return engine.Value{}, info, b.err
		}
		return b.vals[idx], info, nil
	case <-done:
		size := c.detach(b)
		return engine.Value{}, Info{Coalesced: coalesced, Batched: true, BatchSize: size}, ctx.Err()
	}
}

// detach abandons one caller's seat, returning the batch's current slot
// count for the caller's Info. The batch (and its other waiters) is
// unaffected unless this was the last waiter: then a running sweep is
// cancelled, and a still-forming batch is dropped before it ever fires.
func (c *Collector) detach(b *batch) int {
	c.mu.Lock()
	b.waiters--
	last := b.waiters == 0
	size := len(b.slots)
	if last && !b.fired {
		// Nobody left to hear the answer: retire the batch unrun.
		b.fired = true
		delete(c.pending, b.shape)
		if b.timer != nil {
			b.timer.Stop()
		}
		b.err = context.Canceled
		c.mu.Unlock()
		close(b.done)
		return size
	}
	cancel := b.cancel
	c.mu.Unlock()
	if last && cancel != nil {
		cancel()
	}
	return size
}

// Stats is a point-in-time snapshot of the collector's counters, in the
// JSON shape /metrics serves.
type Stats struct {
	// BatchesRun counts sweeps executed (including batches of one).
	BatchesRun int64 `json:"batches_run"`
	// QueriesBatched counts queries answered by sweeps (slot-coalesced
	// queries each count).
	QueriesBatched int64 `json:"queries_batched"`
	// MeanBatchSize is slots per sweep, averaged over all sweeps.
	MeanBatchSize float64 `json:"mean_batch_size"`
	// WindowWaits counts sweeps that fired because the window elapsed
	// (the rest fired full).
	WindowWaits int64 `json:"window_waits"`
	// FanoutErrors counts slots whose sweep failed (every seated query
	// of a failed sweep counts once).
	FanoutErrors int64 `json:"fanout_errors"`
}

// Stats returns the current counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		BatchesRun:     c.stats.batches,
		QueriesBatched: c.stats.queries,
		WindowWaits:    c.stats.windowFires,
		FanoutErrors:   c.stats.fanoutErrors,
	}
	if c.stats.batches > 0 {
		s.MeanBatchSize = float64(c.stats.slots) / float64(c.stats.batches)
	}
	return s
}

// errBadFanout flags a RunFunc that broke the slot-alignment contract.
func errBadFanout(got, want int) error {
	return fmt.Errorf("batch: run returned %d values for %d slots", got, want)
}
