package batch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ligra/internal/algo"
	"ligra/internal/gen"
	"ligra/internal/parallel"
	"ligra/internal/server/engine"
)

func key(i int) engine.Key {
	return engine.Key{Graph: "g", Generation: 1, Algo: "bfs", Params: fmt.Sprintf("source=%d", i)}
}

func req(i int) Request {
	return Request{Key: key(i), Shape: "g/1/auto", Algo: "bfs", Params: algo.Params{Source: uint32(i)}}
}

// echoRun answers each slot with its own key's params string.
func echoRun(runs *atomic.Int64) RunFunc {
	return func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		runs.Add(1)
		vals := make([]engine.Value, len(slots))
		for i, s := range slots {
			vals[i] = engine.Value{Data: s.Key.Params, Bytes: int64(len(s.Key.Params))}
		}
		return vals, nil
	}
}

func newCollector(cacheBytes int64, cfg Config) *Collector {
	return New(context.Background(), engine.NewCache(cacheBytes), engine.NewGovernor(4, 0), cfg)
}

// TestBatchGathersWindow: K concurrent distinct queries within one window
// run as ONE sweep and every caller gets its own slot's value.
func TestBatchGathersWindow(t *testing.T) {
	var runs atomic.Int64
	c := newCollector(1<<20, Config{Window: 50 * time.Millisecond})
	const K = 16
	var wg sync.WaitGroup
	errs := make([]error, K)
	vals := make([]engine.Value, K)
	infos := make([]Info, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], infos[i], errs[i] = c.Execute(context.Background(), req(i), echoRun(&runs))
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i].Data != key(i).Params {
			t.Fatalf("caller %d got %v", i, vals[i].Data)
		}
		if !infos[i].Batched || infos[i].BatchSize != K || infos[i].Cached {
			t.Fatalf("caller %d info %+v", i, infos[i])
		}
	}
	s := c.Stats()
	if s.BatchesRun != 1 || s.QueriesBatched != K || s.MeanBatchSize != K || s.WindowWaits != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestSlotCoalescing: identical keys in one window share a slot; both get
// the value, the later one marked Coalesced; the sweep sees one slot.
func TestSlotCoalescing(t *testing.T) {
	var runs atomic.Int64
	var slotCount atomic.Int64
	run := func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		runs.Add(1)
		slotCount.Store(int64(len(slots)))
		vals := make([]engine.Value, len(slots))
		for i := range slots {
			vals[i] = engine.Value{Data: "v"}
		}
		return vals, nil
	}
	c := newCollector(0, Config{Window: 50 * time.Millisecond}) // cache off: coalescing must not depend on it
	const K = 8
	var wg sync.WaitGroup
	infos := make([]Info, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, infos[i], errs[i] = c.Execute(context.Background(), req(7), run)
		}(i)
	}
	wg.Wait()
	if runs.Load() != 1 || slotCount.Load() != 1 {
		t.Fatalf("runs=%d slots=%d, want 1/1", runs.Load(), slotCount.Load())
	}
	coalesced := 0
	for i := range infos {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if infos[i].Coalesced {
			coalesced++
		}
	}
	if coalesced != K-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, K-1)
	}
	if s := c.Stats(); s.QueriesBatched != K || s.MeanBatchSize != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestFullBatchFiresEarly: a batch that reaches MaxBatch fires without
// waiting out the window.
func TestFullBatchFiresEarly(t *testing.T) {
	var runs atomic.Int64
	c := newCollector(1<<20, Config{Window: time.Hour, MaxBatch: 4})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := c.Execute(context.Background(), req(i), echoRun(&runs)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if time.Since(start) > 10*time.Second {
		t.Fatal("batch waited for the window despite being full")
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d", runs.Load())
	}
	if s := c.Stats(); s.WindowWaits != 0 {
		t.Fatalf("full batch counted as window wait: %+v", s)
	}
}

// TestCallerCancelMidBatch: one caller cancels while the sweep runs; it
// gets its ctx error immediately, the others still get their results, and
// the sweep is NOT cancelled.
func TestCallerCancelMidBatch(t *testing.T) {
	release := make(chan struct{})
	sawCancel := make(chan bool, 1)
	run := func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		<-release
		select {
		case <-ctx.Done():
			sawCancel <- true
			return nil, ctx.Err()
		default:
			sawCancel <- false
		}
		vals := make([]engine.Value, len(slots))
		for i, s := range slots {
			vals[i] = engine.Value{Data: s.Key.Params}
		}
		return vals, nil
	}
	c := newCollector(1<<20, Config{Window: 10 * time.Millisecond})
	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	cancelled := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Execute(cctx, req(0), run)
		cancelled <- err
	}()
	okVals := make([]engine.Value, 3)
	okErrs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			okVals[i], _, okErrs[i] = c.Execute(context.Background(), req(i+1), run)
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the window fire; run blocks on release
	cancel()
	// The cancelled caller must return promptly even though the sweep is
	// still blocked on release.
	var cancelErr error
	select {
	case cancelErr = <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller did not return")
	}
	close(release)
	wg.Wait()
	if !errors.Is(cancelErr, context.Canceled) {
		t.Fatalf("cancelled caller err = %v", cancelErr)
	}
	if <-sawCancel {
		t.Fatal("sweep was cancelled although waiters remained")
	}
	for i := 0; i < 3; i++ {
		if okErrs[i] != nil || okVals[i].Data != key(i+1).Params {
			t.Fatalf("sibling %d: val=%v err=%v", i, okVals[i].Data, okErrs[i])
		}
	}
}

// TestAllCallersCancelStopsSweep: when every waiter detaches, the batch
// context is cancelled so the sweep can stop early.
func TestAllCallersCancelStopsSweep(t *testing.T) {
	started := make(chan struct{})
	stopped := make(chan error, 1)
	run := func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		close(started)
		select {
		case <-ctx.Done():
			stopped <- ctx.Err()
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			stopped <- nil
			return nil, errors.New("never cancelled")
		}
	}
	c := newCollector(1<<20, Config{Window: 5 * time.Millisecond})
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Execute(cctx, req(0), run)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v", err)
	}
	select {
	case err := <-stopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep saw %v, want cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never observed cancellation")
	}
}

// TestDetachBeforeFireDropsBatch: a caller that cancels while the batch
// is still forming (long window) retires the batch without running it.
func TestDetachBeforeFireDropsBatch(t *testing.T) {
	var runs atomic.Int64
	c := newCollector(1<<20, Config{Window: time.Hour})
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Execute(cctx, req(0), echoRun(&runs))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if runs.Load() != 0 {
		t.Fatal("abandoned batch still ran")
	}
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	if pending != 0 {
		t.Fatal("abandoned batch left in pending")
	}
	if s := c.Stats(); s.BatchesRun != 0 {
		t.Fatalf("abandoned batch counted: %+v", s)
	}
}

// TestPanicFanout: a panic inside the sweep becomes a *parallel.PanicError
// for EVERY waiter, counts fanout errors, and leaves the collector usable.
func TestPanicFanout(t *testing.T) {
	boom := func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		panic("sweep exploded")
	}
	c := newCollector(1<<20, Config{Window: 20 * time.Millisecond})
	const K = 5
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Execute(context.Background(), req(i), boom)
		}(i)
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		var pe *parallel.PanicError
		if !errors.As(errs[i], &pe) {
			t.Fatalf("caller %d err = %v, want *parallel.PanicError", i, errs[i])
		}
	}
	if s := c.Stats(); s.FanoutErrors != K {
		t.Fatalf("fanout_errors = %d, want %d", s.FanoutErrors, K)
	}
	// Collector still works after the panic.
	var runs atomic.Int64
	if _, _, err := c.Execute(context.Background(), req(99), echoRun(&runs)); err != nil {
		t.Fatalf("post-panic execute: %v", err)
	}
}

// TestCacheInteraction: a hit skips batching entirely; a successful sweep
// fills the cache per slot so repeats are hits.
func TestCacheInteraction(t *testing.T) {
	var runs atomic.Int64
	c := newCollector(1<<20, Config{Window: 5 * time.Millisecond})
	v, info, err := c.Execute(context.Background(), req(1), echoRun(&runs))
	if err != nil || info.Cached {
		t.Fatalf("first: %+v %v", info, err)
	}
	v2, info2, err := c.Execute(context.Background(), req(1), echoRun(&runs))
	if err != nil || !info2.Cached || info2.Batched {
		t.Fatalf("second: %+v %v", info2, err)
	}
	if v2.Data != v.Data {
		t.Fatal("cache returned a different value")
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1 (second served from cache)", runs.Load())
	}
	// Pre-seeded cache short-circuits too.
	c.cache.Put(key(42), engine.Value{Data: "seeded", Bytes: 6})
	v3, info3, err := c.Execute(context.Background(), req(42), echoRun(&runs))
	if err != nil || !info3.Cached || v3.Data != "seeded" {
		t.Fatalf("seeded: %v %+v %v", v3.Data, info3, err)
	}
}

// TestShapeIsolation: different shapes never share a batch.
func TestShapeIsolation(t *testing.T) {
	var runs atomic.Int64
	c := newCollector(1<<20, Config{Window: 30 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req(i)
			if i%2 == 1 {
				r.Shape = "other-shape"
			}
			if _, _, err := c.Execute(context.Background(), r, echoRun(&runs)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2 (one per shape)", runs.Load())
	}
}

// TestBadFanoutIsError: a RunFunc returning misaligned values is an error
// for every caller, not a silent wrong answer.
func TestBadFanoutIsError(t *testing.T) {
	bad := func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		return make([]engine.Value, len(slots)+1), nil
	}
	c := newCollector(1<<20, Config{Window: time.Millisecond})
	if _, _, err := c.Execute(context.Background(), req(0), bad); err == nil {
		t.Fatal("misaligned fanout accepted")
	}
}

// TestClusterRunEndToEnd: the standard sweep RunFunc through the
// collector answers mixed bfs/reach/landmarks queries identically to the
// unbatched runners.
func TestClusterRunEndToEnd(t *testing.T) {
	g, err := gen.RMAT(9, 8, gen.PBBSRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	c := newCollector(0, Config{Window: 40 * time.Millisecond}) // cache off: every query must traverse
	type q struct {
		name string
		p    algo.Params
	}
	queries := []q{
		{"bfs", algo.Params{Source: 1}},
		{"bfs", algo.Params{Source: uint32(n - 1)}},
		{"reach", algo.Params{Source: 2, Target: uint32(n / 2)}},
		{"landmarks", algo.Params{Source: 3, Landmarks: []uint32{0, uint32(n / 3), uint32(n - 2)}}},
	}
	run := ClusterRun(g)
	var wg sync.WaitGroup
	got := make([]engine.Value, len(queries))
	infos := make([]Info, len(queries))
	for i, qu := range queries {
		wg.Add(1)
		go func(i int, qu q) {
			defer wg.Done()
			r := Request{
				Key:    engine.Key{Graph: "g", Generation: 1, Algo: qu.name, Params: qu.p.Canonical()},
				Shape:  "g/1/auto/0",
				Algo:   qu.name,
				Params: qu.p,
			}
			var err error
			got[i], infos[i], err = c.Execute(context.Background(), r, run)
			if err != nil {
				t.Error(err)
			}
		}(i, qu)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, qu := range queries {
		runner, ok := algo.FindRunner(qu.name)
		if !ok {
			t.Fatalf("no runner %s", qu.name)
		}
		want, err := runner.Run(context.Background(), g, qu.p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i].Data, want) {
			t.Fatalf("query %d (%s) diverges:\n got %+v\nwant %+v", i, qu.name, got[i].Data, want)
		}
		if !infos[i].Batched || infos[i].BatchSize != len(queries) {
			t.Fatalf("query %d info %+v", i, infos[i])
		}
	}
}
