package batch

import (
	"context"

	"ligra/internal/algo"
	"ligra/internal/graph"
	"ligra/internal/server/engine"
)

// ClusterRun returns the standard RunFunc for a batch against g: one
// bit-parallel ClusterBFS sweep with every slot's source as a bit and
// every slot's probe vertices (reach targets, landmark lists) recorded,
// then per-slot extraction through the same algo.BatchResult the
// unbatched runners use — so a batched answer is byte-identical to the
// answer the query would have gotten alone.
func ClusterRun(g graph.View) RunFunc {
	return func(ctx context.Context, procs int, slots []Request) ([]engine.Value, error) {
		sources := make([]uint32, len(slots))
		var probes []uint32
		for i, s := range slots {
			sources[i] = s.Params.Source
			probes = append(probes, algo.BatchProbes(s.Algo, s.Params)...)
		}
		// Every slot shares the batch Shape, so slot 0's traversal
		// options speak for the sweep; the governor lease caps its
		// parallelism.
		emOpts := slots[0].Params.EdgeMapOptions()
		emOpts.Procs = procs
		res, err := algo.ClusterBFSCtx(ctx, g, sources, algo.ClusterBFSOptions{
			EdgeMap: emOpts,
			Probes:  probes,
		})
		if err != nil {
			return nil, err
		}
		vals := make([]engine.Value, len(slots))
		for i, s := range slots {
			rr := algo.BatchResult(s.Algo, res, i, s.Params)
			vals[i] = engine.Value{Data: rr, Bytes: rr.EstimateBytes()}
		}
		return vals, nil
	}
}
