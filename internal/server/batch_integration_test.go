package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ligra/internal/faultinject"
	"ligra/internal/gen"
	"ligra/internal/graph"
)

// saveTestGraph writes a deterministic RMAT graph to disk so two servers
// can load byte-identical copies.
func saveTestGraph(t *testing.T) string {
	t.Helper()
	g, err := gen.RMAT(10, 16, gen.PBBSRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rmat10.bin")
	if err := graph.SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBatchedQueriesOverHTTP proves the wire contract of the batched
// path: concurrent batchable queries against one graph share a sweep
// (batched:true, batch_size > 1), every per-caller answer is identical
// to the answer a batching-disabled server gives, and the /metrics
// batch block records the sweep.
func TestBatchedQueriesOverHTTP(t *testing.T) {
	path := saveTestGraph(t)
	_, batched := newTestServer(t, Config{
		MaxConcurrent: 32, QueueWait: 2 * time.Second,
		BatchWindow: 500 * time.Millisecond,
	})
	_, plain := newTestServer(t, Config{
		MaxConcurrent: 32, QueueWait: 2 * time.Second,
		BatchWindow: -1, // batching off: every query runs alone
	})
	for _, ts := range []*struct{ url string }{{batched.URL}, {plain.URL}} {
		if status, body := doJSON(t, "POST", ts.url+"/v1/graphs/g", map[string]any{"path": path}); status != http.StatusOK {
			t.Fatalf("load: status %d, body %v", status, body)
		}
	}

	// A mixed batch: bfs, reach, and landmarks queries share one sweep
	// (same graph generation, mode, and threshold → same shape).
	queries := []map[string]any{
		{"algo": "bfs", "source": 1},
		{"algo": "bfs", "source": 2},
		{"algo": "bfs", "source": 3},
		{"algo": "reach", "source": 4, "target": 0},
		{"algo": "reach", "source": 5, "target": 700},
		{"algo": "landmarks", "source": 6, "landmarks": []int{0, 9, 500}},
		{"algo": "landmarks", "source": 7, "landmarks": []int{1}},
		{"algo": "bfs", "source": 8},
	}
	bodies := make([]map[string]any, len(queries))
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q map[string]any) {
			defer wg.Done()
			status, body := doJSON(t, "POST", batched.URL+"/v1/graphs/g/query", q)
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("batched query %v: status %d, body %v", q, status, body)
				return
			}
			bodies[i] = body
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every reply is marked batched, and at least one sweep gathered
	// multiple callers (all eight arrive well inside the 500ms window,
	// but the assertion tolerates a straggler landing in a second batch).
	maxBatch := 0
	for i, body := range bodies {
		if body["batched"] != true {
			t.Errorf("query %v: batched flag missing: %v", queries[i], body)
		}
		if n := int(body["batch_size"].(float64)); n > maxBatch {
			maxBatch = n
		}
	}
	if maxBatch < 2 {
		t.Errorf("no sweep served more than one caller (max batch_size %d)", maxBatch)
	}

	// Per-caller parity: each batched answer equals the answer the
	// batching-disabled server computes for the same query.
	for i, q := range queries {
		status, base := doJSON(t, "POST", plain.URL+"/v1/graphs/g/query", q)
		if status != http.StatusOK {
			t.Fatalf("plain query %v: status %d, body %v", q, status, base)
		}
		if base["batched"] != nil {
			t.Fatalf("batching-disabled server emitted a batched flag: %v", base)
		}
		if bodies[i]["summary"] != base["summary"] {
			t.Errorf("query %v: batched summary %q != unbatched %q", q, bodies[i]["summary"], base["summary"])
		}
		if !reflect.DeepEqual(bodies[i]["details"], base["details"]) {
			t.Errorf("query %v: batched details %v != unbatched %v", q, bodies[i]["details"], base["details"])
		}
	}

	// The /metrics batch block saw the sweep.
	snap := metricsSnapshot(t, batched.URL)
	if snap.Batch.BatchesRun < 1 {
		t.Errorf("batches_run = %d, want >= 1", snap.Batch.BatchesRun)
	}
	if snap.Batch.QueriesBatched < int64(len(queries)) {
		t.Errorf("queries_batched = %d, want >= %d", snap.Batch.QueriesBatched, len(queries))
	}
	if snap.Batch.MeanBatchSize < 1 {
		t.Errorf("mean_batch_size = %v, want >= 1", snap.Batch.MeanBatchSize)
	}
	if snap.Batch.WindowWaits < 1 {
		t.Errorf("window_waits = %d, want >= 1 (batches fired by timer)", snap.Batch.WindowWaits)
	}
	if plainSnap := metricsSnapshot(t, plain.URL); plainSnap.Batch.BatchesRun != 0 {
		t.Errorf("batching-disabled server ran %d batches", plainSnap.Batch.BatchesRun)
	}
}

// TestBatchValidationOverHTTP proves out-of-range reach targets and bad
// landmark lists are rejected with 400 before the sweep — never silently
// read as "unreachable" from a visit word that has no bit for them.
func TestBatchValidationOverHTTP(t *testing.T) {
	path := saveTestGraph(t)
	_, ts := newTestServer(t, Config{MaxConcurrent: 8, QueueWait: time.Second})
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"path": path}); status != http.StatusOK {
		t.Fatal("load failed")
	}
	bad := []map[string]any{
		{"algo": "reach", "source": 0, "target": 1 << 30},
		{"algo": "landmarks", "source": 0},
		{"algo": "landmarks", "source": 0, "landmarks": []int{}},
		{"algo": "landmarks", "source": 0, "landmarks": []int{1 << 30}},
		{"algo": "landmarks", "source": 0, "landmarks": make([]int, 65)},
	}
	for _, q := range bad {
		if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", q); status != http.StatusBadRequest {
			t.Errorf("query %v: status %d, body %v, want 400", q, status, body)
		}
	}
	// The in-range versions succeed, so the rejections above are the
	// validator's doing, not some broader failure.
	good := []map[string]any{
		{"algo": "reach", "source": 0, "target": 5},
		{"algo": "landmarks", "source": 0, "landmarks": []int{1, 2, 3}},
	}
	for _, q := range good {
		if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", q); status != http.StatusOK {
			t.Errorf("query %v: status %d, body %v, want 200", q, status, body)
		}
	}
}

// TestBatchedPanicFanout is the chaos case: a panic inside the shared
// sweep reaches every caller in the batch as a contained 500 — no caller
// hangs, no caller gets a sibling's result — and the server keeps
// serving afterwards.
func TestBatchedPanicFanout(t *testing.T) {
	path := saveTestGraph(t)
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 16, QueueWait: 2 * time.Second,
		BatchWindow:      500 * time.Millisecond,
		BreakerThreshold: 100, // stay closed through the storm
	})
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"path": path}); status != http.StatusOK {
		t.Fatal("load failed")
	}

	disarm := faultinject.PanicOnChunk(1, "injected sweep panic")
	const callers = 4
	type reply struct {
		status int
		body   map[string]any
	}
	replies := make(chan reply, callers)
	for i := 0; i < callers; i++ {
		go func(src int) {
			status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
				map[string]any{"algo": "bfs", "source": src})
			replies <- reply{status, body}
		}(i + 1)
	}
	got500 := 0
	for i := 0; i < callers; i++ {
		r := <-replies
		if r.status == http.StatusInternalServerError {
			got500++
			if !strings.Contains(r.body["error"].(string), "injected sweep panic") {
				t.Errorf("panic reply does not carry the panic value: %v", r.body)
			}
		} else if r.status != http.StatusOK {
			t.Errorf("batched caller during panic: status %d, body %v", r.status, r.body)
		}
	}
	disarm()
	// The hook fires once, on the first dispatched chunk; at least the
	// sweep that hit it must fan the failure out to its whole batch.
	if got500 < 1 {
		t.Fatal("no caller observed the injected sweep panic")
	}

	// Containment: the collector and server survive, and the same
	// queries now succeed (batched again, with correct answers).
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs", "source": 1})
	if status != http.StatusOK {
		t.Fatalf("server did not survive the batched panic: status %d, body %v", status, body)
	}
	if body["batched"] != true {
		t.Errorf("post-panic query not batched: %v", body)
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.Batch.FanoutErrors < int64(got500) {
		t.Errorf("fanout_errors = %d, want >= %d", snap.Batch.FanoutErrors, got500)
	}
}
