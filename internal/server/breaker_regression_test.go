package server

// Regression tests for two ways the circuit-breaker feed could turn a
// healthy (algorithm, graph) combination into a permanent 503:
//
//   - a half-open probe whose reply is served from the result cache
//     must still release its probe slot (recorded as Aborted); skipping
//     the record would wedge the breaker half-open with no recovery
//     path short of a restart;
//   - expiries of client-chosen short timeouts must not count as
//     breaker failures, or a handful of cheap bounded partial-result
//     requests from one unauthenticated client would open the breaker
//     for every tenant.

import (
	"net/http"
	"testing"
	"time"

	"ligra/internal/faultinject"
)

func TestBreakerProbeServedFromCacheReleasesSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent:    4,
		DefaultTimeout:   5 * time.Second,
		CacheBytes:       1 << 20,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 10}); st != http.StatusOK {
		t.Fatal("load failed")
	}

	// Prime the result cache with a successful (bfs, source=0) run.
	cachedQ := map[string]any{"algo": "bfs", "source": 0}
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", cachedQ); st != http.StatusOK {
		t.Fatal("cache-priming query failed")
	}

	// Open the (bfs, g) breaker: threshold consecutive injected panics,
	// on sources the cache has not seen.
	for i := 1; i <= 2; i++ {
		disarm := faultinject.PanicOnRound(1, "regression: injected panic")
		st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs", "source": i})
		disarm()
		if st != http.StatusInternalServerError {
			t.Fatalf("panic query %d: status %d body %v, want 500", i, st, body)
		}
	}
	if st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs", "source": 3}); st != http.StatusServiceUnavailable || body["error_type"] != "breaker_open" {
		t.Fatalf("breaker did not open: status %d body %v", st, body)
	}

	// After the cooldown the next request is the half-open probe — and
	// it hits the result cache.
	time.Sleep(80 * time.Millisecond)
	st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", cachedQ)
	if st != http.StatusOK || body["cached"] != true {
		t.Fatalf("probe from cache: status %d body %v, want a 200 cache hit", st, body)
	}

	// The cached reply released the probe slot, so the next query is
	// admitted as a fresh probe, executes for real, and closes the
	// breaker.
	if st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs", "source": 4}); st != http.StatusOK {
		t.Fatalf("query after cached probe: status %d body %v, want 200 (probe slot leaked?)", st, body)
	}
	if n := s.Breakers().OpenCount(); n != 0 {
		t.Fatalf("open breakers = %d after a successful probe, want 0", n)
	}
}

func TestClientShortTimeoutsDoNotOpenBreaker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent:    4,
		DefaultTimeout:   5 * time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // an opened breaker would stay visible
	})
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 13}); st != http.StatusOK {
		t.Fatal("load failed")
	}

	// Well past the threshold: bounded partial-result queries whose
	// 1ms budget cannot cover 100 PageRank iterations, each ending in
	// 504 with context.DeadlineExceeded.
	for i := 0; i < 5; i++ {
		st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
			map[string]any{"algo": "pagerank", "timeout_ms": 1})
		if st != http.StatusGatewayTimeout {
			t.Fatalf("short-timeout query %d: status %d body %v, want 504", i, st, body)
		}
	}

	// The expiries were the client's choice, not the combination's
	// fault: the breaker stays closed and a normally-budgeted query
	// runs fine.
	if n := s.Breakers().OpenCount(); n != 0 {
		t.Fatalf("open breakers = %d after client-chosen short timeouts, want 0", n)
	}
	if st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "pagerank"}); st != http.StatusOK {
		t.Fatalf("full-budget query after short-timeout storm: status %d body %v, want 200", st, body)
	}
}
