package server

// The chaos suite: hammer an httptest server with mixed traffic while
// injecting each fault class the resilience layer exists for —
// worker/round panics, transient graph-load IO failures, stuck-worker
// slow chunks, and raw overload — and assert the server's survival
// contract:
//
//   - /healthz (liveness) answers for the entire run, never hanging;
//   - failures surface as typed 429/500/503/504 responses with JSON
//     bodies, never as connection drops or empty bodies;
//   - circuit breakers open under repeated faults (degraded health,
//     fail-fast 503) and close within one probe interval after the
//     faults stop;
//   - the watchdog records zero trips (cancellation never failed);
//   - no goroutines leak once the dust settles.
//
// CI runs this under -race with GOMAXPROCS=4 in the chaos-smoke job; it
// is skipped in -short mode to keep the quick race line fast.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ligra/internal/faultinject"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/server/resilience"
)

// chaosConfig is tuned for fast, deterministic fault transitions: tiny
// breaker cooldown so recovery is observable within the test, a
// generous watchdog grace so legitimate slow queries never trip it.
func chaosConfig() Config {
	return Config{
		MaxConcurrent:    4,
		QueueWait:        50 * time.Millisecond,
		DefaultTimeout:   5 * time.Second,
		ShedTarget:       500 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		WatchdogGrace:    10 * time.Second,
		RetryBudget:      100,
		// The overload phase floods as a distinct X-Tenant; in the test
		// the "gateway" is the suite itself, so the header is trusted.
		TrustTenantHeader: true,
	}
}

// queryStatus posts one query and returns (status, body); unlike doJSON
// it never fails the test on a bad body — the chaos suite records
// malformed replies as violations instead.
func queryStatus(t *testing.T, url string, q map[string]any) (int, map[string]any, error) {
	t.Helper()
	b, _ := json.Marshal(q)
	resp, err := http.Post(url, "application/json", strings.NewReader(string(b)))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("status %d with undecodable body: %w", resp.StatusCode, err)
	}
	return resp.StatusCode, body, nil
}

// healthzProber polls GET /healthz?live=1 continuously until stop is
// closed, recording any failure to answer. A bounded client timeout is
// the "never hangs" assertion.
func healthzProber(t *testing.T, baseURL string, stop <-chan struct{}, wg *sync.WaitGroup) *atomic.Int64 {
	t.Helper()
	var polls atomic.Int64
	client := &http.Client{Timeout: 2 * time.Second}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(baseURL + "/healthz?live=1")
			if err != nil {
				t.Errorf("healthz stopped answering during chaos: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("healthz status %d, want 200 or 503", resp.StatusCode)
			}
			resp.Body.Close()
			polls.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return &polls
}

// TestChaos is the suite's main scenario. Fault classes are injected in
// sequence (the faultinject hooks are process-global and refuse
// overlapping arming) while background traffic and the health prober
// run throughout.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs in the chaos-smoke CI job (and plain go test)")
	}
	goroutinesBefore := runtime.NumGoroutine()

	// A file-backed graph (so FailLoad's IO hook is reachable) and a
	// generated one for background traffic.
	g, err := gen.RMAT(10, 16, gen.PBBSRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chaos.bin")
	if err := graph.SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, chaosConfig())
	if st, b := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"path": path}); st != http.StatusOK {
		t.Fatalf("load g: status %d body %v", st, b)
	}
	if st, b := doJSON(t, "POST", ts.URL+"/v1/graphs/bg", map[string]any{"gen": "rmat", "scale": 11}); st != http.StatusOK {
		t.Fatalf("load bg: status %d body %v", st, b)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	polls := healthzProber(t, ts.URL, stop, &wg)
	allowed := map[int]bool{200: true, 429: true, 500: true, 503: true, 504: true}

	// ---- Phase 1: panic storm on (bfs, g) until its breaker opens. ----
	// This phase runs before the background traffic starts: the
	// faultinject round hook is process-global and fires on the first
	// EdgeMap anywhere, so with only the storm running each armed panic
	// deterministically lands in the storm's own query — three
	// consecutive 500s open the breaker, never a race against whichever
	// background worker called OnRound first.
	sawBreakerOpen := false
	for i := 0; i < 10 && !sawBreakerOpen; i++ {
		disarm := faultinject.PanicOnRound(1, "chaos: injected round panic")
		status, body, err := queryStatus(t, ts.URL+"/v1/graphs/g/query",
			map[string]any{"algo": "bfs", "source": i % g.NumVertices(), "timeout_ms": 2000})
		disarm()
		if err != nil {
			t.Fatalf("panic-phase query: %v", err)
		}
		switch status {
		case http.StatusInternalServerError:
			if !strings.Contains(fmt.Sprint(body["error"]), "panicked") {
				t.Errorf("500 body does not describe the contained panic: %v", body)
			}
		case http.StatusServiceUnavailable:
			if body["error_type"] != "breaker_open" {
				t.Fatalf("503 without breaker_open typed body: %v", body)
			}
			sawBreakerOpen = true
		default:
			t.Errorf("panic-phase status %d: %v", status, body)
		}
	}
	if !sawBreakerOpen {
		t.Fatal("breaker for (bfs, g) never opened under the panic storm")
	}
	// While the breaker is open: readiness reports degraded, the open
	// breaker is listed, and the fail-fast 503 carries Retry-After.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string                     `json:"status"`
		Breakers []resilience.BreakerStatus `json:"breakers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "degraded" {
		t.Errorf("healthz status %q with an open breaker, want degraded", health.Status)
	}
	if len(health.Breakers) == 0 {
		t.Error("healthz lists no breakers while one is open")
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/graphs/g/query",
		strings.NewReader(`{"algo":"bfs","source":1}`))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode == http.StatusServiceUnavailable && r2.Header.Get("Retry-After") == "" {
		t.Error("breaker-open 503 without a Retry-After header")
	}
	r2.Body.Close()
	snap := metricsSnapshot(t, ts.URL)
	if snap.Resilience.BreakerOpen < 1 {
		t.Errorf("metrics breaker_open = %d, want >= 1", snap.Resilience.BreakerOpen)
	}

	// Background traffic for the remaining phases: mixed algorithms on
	// the "bg" graph (the fault phases own "g"), randomized sources to
	// defeat the result cache. Any status in the survival contract is
	// fine; a transport error or an undecodable body is a violation.
	var trafficN atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			algos := []string{"pagerank", "components", "kcore"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := map[string]any{
					"algo":       algos[rng.IntN(len(algos))],
					"timeout_ms": 2000,
				}
				if rng.IntN(2) == 0 {
					q["source"] = rng.IntN(g.NumVertices())
				}
				status, _, err := queryStatus(t, ts.URL+"/v1/graphs/bg/query", q)
				if err != nil {
					t.Errorf("background query violated the survival contract: %v", err)
					return
				}
				if !allowed[status] {
					t.Errorf("background query status %d, want one of 200/429/500/503/504", status)
				}
				trafficN.Add(1)
			}
		}(uint64(w + 1))
	}

	// ---- Phase 2: transient load failures absorbed by retry. ----
	if st, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/g", nil); st != http.StatusOK {
		t.Fatal("evict for reload failed")
	}
	disarmLoad := faultinject.FailLoad(2, resilience.MarkTransient(errors.New("chaos: io blip")))
	st, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"path": path})
	disarmLoad()
	if st != http.StatusOK {
		t.Fatalf("reload under transient IO blips: status %d body %v — retries did not absorb the fault", st, body)
	}
	snap = metricsSnapshot(t, ts.URL)
	if snap.Resilience.RetryBudgetSpent < 2 {
		t.Errorf("retry_budget_spent = %d, want >= 2", snap.Resilience.RetryBudgetSpent)
	}

	// ---- Phase 3: a stuck-worker slow chunk, well inside grace. ----
	disarmSlow := faultinject.SlowChunk(3, 150*time.Millisecond)
	status, _, err := queryStatus(t, ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "components", "timeout_ms": 3000})
	disarmSlow()
	if err != nil || !allowed[status] {
		t.Errorf("slow-chunk query: status %d err %v", status, err)
	}

	// ---- Phase 4: overload — a tenant floods well past capacity. ----
	// The flood targets a graph big enough that one PageRank run takes
	// several times the 50ms queue window (scale 15 is ~130ms on four
	// procs), and every flood query is identical so the admitted ones
	// coalesce into that single execution and hold their slots for its
	// full duration: the queued remainder must shed. A flood of small
	// distinct queries would drain through the queue faster than the
	// window and shed nothing.
	if st, b := doJSON(t, "POST", ts.URL+"/v1/graphs/hot", map[string]any{"gen": "rmat", "scale": 15}); st != http.StatusOK {
		t.Fatalf("load hot: status %d body %v", st, b)
	}
	var flood sync.WaitGroup
	var shedWithHeader, floodOK atomic.Int64
	for i := 0; i < 24; i++ {
		flood.Add(1)
		go func(i int) {
			defer flood.Done()
			b, _ := json.Marshal(map[string]any{"algo": "pagerank", "source": 0, "timeout_ms": 5000})
			req, _ := http.NewRequest("POST", ts.URL+"/v1/graphs/hot/query", strings.NewReader(string(b)))
			req.Header.Set("X-Tenant", "flood")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("flood query: %v", err)
				return
			}
			defer resp.Body.Close()
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Errorf("flood query: status %d with undecodable body", resp.StatusCode)
				return
			}
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") != "" {
					shedWithHeader.Add(1)
				} else {
					t.Error("429 without a Retry-After header")
				}
			case http.StatusOK, http.StatusGatewayTimeout, http.StatusInternalServerError, http.StatusServiceUnavailable:
				floodOK.Add(1)
			default:
				t.Errorf("flood query status %d: %v", resp.StatusCode, body)
			}
		}(i)
	}
	flood.Wait()
	if shedWithHeader.Load() == 0 {
		t.Error("a 24-deep flood over capacity 4 shed nothing")
	}

	// ---- Faults over: the server must return to full health. ----
	close(stop)
	wg.Wait()
	if polls.Load() == 0 {
		t.Fatal("health prober never completed a poll")
	}
	if trafficN.Load() == 0 {
		t.Fatal("background traffic never completed a query")
	}

	// Every breaker closes after one cooldown + successful probe. Drive
	// probes for any combination the chaos may have tripped.
	deadline := time.Now().Add(10 * time.Second)
	healthy := false
	for !healthy && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond) // let a cooldown elapse
		for _, gr := range []string{"g", "bg"} {
			for _, al := range []string{"bfs", "pagerank", "components", "kcore"} {
				_, _, _ = queryStatus(t, ts.URL+"/v1/graphs/"+gr+"/query",
					map[string]any{"algo": al, "timeout_ms": 3000})
			}
		}
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		healthy = h.Status == "ok"
	}
	if !healthy {
		t.Errorf("server did not return to full health after faults cleared: %+v",
			metricsSnapshot(t, ts.URL).Resilience)
	}

	// The invariant the watchdog exists for: cancellation stopped every
	// query in time, under every fault class.
	snap = metricsSnapshot(t, ts.URL)
	if snap.Resilience.WatchdogTrips != 0 {
		t.Errorf("watchdog_trips = %d, want 0 — the cancellation layer failed under chaos", snap.Resilience.WatchdogTrips)
	}
	if snap.Resilience.Shed == 0 {
		t.Error("resilience.shed = 0 after the overload phase")
	}

	// No goroutine leaks once in-flight work settles. The persistent
	// worker pool is process-global and excluded via its own gauge.
	waitForGoroutines(t, goroutinesBefore)
}

// waitForGoroutines polls until the process goroutine count settles
// back to roughly the given baseline (plus the persistent scheduler
// pool and a small slack for runtime helpers), dumping stacks on
// timeout.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	allow := baseline + int(parallel.SchedulerSnapshot().PoolWorkers) + 8
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= allow {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			sz := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", n, allow, buf[:sz])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestWatchdogTripOnStuckQuery proves the watchdog end to end: a worker
// wedged in non-cooperative code (SlowChunk sleeps through every
// cancellation check) runs past deadline+grace, the watchdog trips and
// counts it, and the query still completes with a 504 partial result
// once the worker unsticks. This is the one test where a trip is the
// *expected* outcome; everywhere else a trip is a bug.
func TestWatchdogTripOnStuckQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-adjacent test runs in the chaos-smoke CI job")
	}
	cfg := chaosConfig()
	cfg.WatchdogGrace = 50 * time.Millisecond
	s, ts := newTestServer(t, cfg)
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 10}); st != http.StatusOK {
		t.Fatal("load failed")
	}
	// Warm up so the stuck chunk lands inside the measured query, not a
	// load or a first-use pool spawn.
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs", "source": 0}); st != http.StatusOK {
		t.Fatal("warm-up query failed")
	}

	disarm := faultinject.SlowChunk(1, 400*time.Millisecond)
	defer disarm()
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query",
		map[string]any{"algo": "pagerank", "source": 1, "timeout_ms": 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stuck query: status %d body %v, want 504 once the worker unsticks", status, body)
	}
	if got := s.Watchdog().Trips(); got != 1 {
		t.Fatalf("watchdog trips = %d, want exactly 1", got)
	}
	// The trip is surfaced on /healthz and /metrics.
	snap := metricsSnapshot(t, ts.URL)
	if snap.Resilience.WatchdogTrips != 1 {
		t.Errorf("metrics watchdog_trips = %d, want 1", snap.Resilience.WatchdogTrips)
	}
}

// TestDrainAdmittedQueryRace covers the SIGTERM race: queries admitted
// just before (or racing) StartDrain must complete with a real JSON
// body — 200, or 504 with a partial result — and post-drain arrivals
// get a clean 503; nobody is dropped with an empty body.
func TestDrainAdmittedQueryRace(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4, QueueWait: 100 * time.Millisecond})
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 13}); st != http.StatusOK {
		t.Fatal("load failed")
	}

	type reply struct {
		status int
		body   map[string]any
		err    error
	}
	const n = 16
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := queryStatus(t, ts.URL+"/v1/graphs/g/query",
				map[string]any{"algo": "pagerank", "source": i, "timeout_ms": 5000})
			replies <- reply{status, body, err}
		}(i)
	}
	// Drain while the volley is (racing to be) in flight, then cancel
	// the stragglers like the SIGTERM path does.
	if !waitInFlight(t, ts.URL, 1) {
		t.Log("no query observed in flight before drain (all raced ahead); still validating bodies")
	}
	s.StartDrain()
	time.Sleep(20 * time.Millisecond)
	s.CancelInflight()
	wg.Wait()
	close(replies)

	for r := range replies {
		if r.err != nil {
			t.Fatalf("query dropped during drain: %v", r.err)
		}
		switch r.status {
		case http.StatusOK:
			if r.body["summary"] == nil {
				t.Errorf("200 with no summary during drain: %v", r.body)
			}
		case http.StatusGatewayTimeout:
			if r.body["partial"] != true {
				t.Errorf("504 without a partial result during drain: %v", r.body)
			}
		case http.StatusServiceUnavailable:
			if fmt.Sprint(r.body["error"]) == "" && r.body["error_type"] == nil {
				t.Errorf("503 with an empty error body: %v", r.body)
			}
		case http.StatusTooManyRequests:
			// Admission pressure during the volley; a typed body is
			// still required.
			if r.body["error"] == nil {
				t.Errorf("429 with an empty body: %v", r.body)
			}
		default:
			t.Errorf("drain-race status %d: %v", r.status, r.body)
		}
	}
	// Post-drain arrivals: clean 503 with Retry-After.
	resp, err := http.Post(ts.URL+"/v1/graphs/g/query", "application/json",
		strings.NewReader(`{"algo":"bfs"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without a Retry-After header")
	}
}
