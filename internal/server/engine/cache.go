// Package engine is ligra-serve's query engine: the layer between the
// HTTP handlers and the algorithm registry that decides how a query
// executes. It contributes three behaviours the handlers compose per
// request:
//
//   - a memory-bounded LRU result cache keyed by (graph, graph
//     generation, algorithm, canonical parameters), so repeated
//     deterministic queries are served without recomputation;
//   - single-flight coalescing, so N identical concurrent queries run the
//     algorithm once and share the result;
//   - a parallelism governor that leases each executing query a bounded
//     number of CPU slots, plumbed through internal/parallel's
//     context-carried proc caps so concurrent queries share the machine
//     instead of each fanning out to every core.
//
// The engine is deliberately ignorant of HTTP and of algo.RunResult: it
// stores opaque Values sized by the caller, so it can be tested (and
// reused) without a server around it.
package engine

import (
	"container/list"
	"sync"
)

// Key identifies a deterministic-equivalent query: two queries with equal
// Keys would compute identical results, which is what makes caching and
// coalescing sound. Generation is the registry's per-name load counter —
// a reloaded graph gets a new generation, so entries cached against the
// old residency can never answer for the new one.
type Key struct {
	Graph      string
	Generation uint64
	Algo       string
	Params     string // algo.Params.Canonical()
}

// Value is one cached (or computed) query result: an opaque payload plus
// the caller's estimate of its memory footprint, which is what the
// cache's byte budget accounts.
type Value struct {
	Data  any
	Bytes int64
}

// entryOverheadBytes approximates the per-entry bookkeeping cost (map
// slot, list element, key strings) charged on top of Value.Bytes, so a
// flood of tiny results still respects the budget.
const entryOverheadBytes = 256

// Cache is a memory-bounded LRU result cache. A nil *Cache is a valid
// always-miss cache, which is how the engine models "-cache-mb 0".
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key Key
	val Value
}

// NewCache returns a cache bounded to maxBytes of estimated result
// footprint; maxBytes <= 0 returns nil (caching disabled).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (Value, bool) {
	if c == nil {
		return Value{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return Value{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores v under k, evicting least-recently-used entries until the
// byte budget holds. A value that alone exceeds the budget is not cached.
func (c *Cache) Put(k Key, v Value) {
	if c == nil {
		return
	}
	cost := v.Bytes + entryOverheadBytes
	if cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// Replace in place (a re-execution after an uncached partial run,
		// or a racing duplicate computation).
		old := el.Value.(*cacheEntry)
		c.bytes += cost - (old.val.Bytes + entryOverheadBytes)
		old.val = v
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
		c.bytes += cost
	}
	for c.bytes > c.maxBytes {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.val.Bytes + entryOverheadBytes
	c.evictions++
}

// InvalidateGraph drops every entry cached for the named graph (any
// generation), returning how many were removed. Called on graph evict and
// replace so freed graph memory is not pinned by stale results.
func (c *Cache) InvalidateGraph(graph string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.Graph == graph {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.val.Bytes + entryOverheadBytes
			dropped++
		}
		el = next
	}
	return dropped
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// Stats snapshots the counters; a nil cache reports all zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
