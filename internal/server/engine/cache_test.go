package engine

import (
	"fmt"
	"testing"
)

func ck(i int) Key {
	return Key{Graph: "g", Generation: 1, Algo: "bfs", Params: fmt.Sprintf("source=%d", i)}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget for ~4 entries of 744 bytes (500 + overhead).
	c := NewCache(3000)
	for i := 0; i < 6; i++ {
		c.Put(ck(i), Value{Data: i, Bytes: 500})
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", s)
	}
	if s.Bytes > 3000 {
		t.Errorf("cache over budget: %d bytes", s.Bytes)
	}
	// Oldest entries must be gone, newest present.
	if _, ok := c.Get(ck(0)); ok {
		t.Error("oldest entry survived eviction")
	}
	if v, ok := c.Get(ck(5)); !ok || v.Data != 5 {
		t.Error("newest entry was evicted")
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := NewCache(3 * (100 + entryOverheadBytes))
	c.Put(ck(0), Value{Data: 0, Bytes: 100})
	c.Put(ck(1), Value{Data: 1, Bytes: 100})
	c.Put(ck(2), Value{Data: 2, Bytes: 100})
	c.Get(ck(0)) // 0 becomes most recent; 1 is now LRU
	c.Put(ck(3), Value{Data: 3, Bytes: 100})
	if _, ok := c.Get(ck(0)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get(ck(1)); ok {
		t.Error("LRU entry survived")
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := NewCache(1000)
	c.Put(ck(0), Value{Data: 0, Bytes: 10_000})
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("oversized value cached: %+v", s)
	}
}

func TestCacheReplaceAdjustsBytes(t *testing.T) {
	c := NewCache(10_000)
	c.Put(ck(0), Value{Data: "old", Bytes: 100})
	c.Put(ck(0), Value{Data: "new", Bytes: 300})
	s := c.Stats()
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
	if want := int64(300 + entryOverheadBytes); s.Bytes != want {
		t.Errorf("bytes = %d, want %d", s.Bytes, want)
	}
	if v, _ := c.Get(ck(0)); v.Data != "new" {
		t.Errorf("stale value after replace: %v", v.Data)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("NewCache(0) should disable caching")
	}
	c.Put(ck(0), Value{Bytes: 10})
	if _, ok := c.Get(ck(0)); ok {
		t.Error("nil cache returned a hit")
	}
	if n := c.InvalidateGraph("g"); n != 0 {
		t.Error("nil cache invalidated entries")
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v", s)
	}
}

func TestGovernorGrantsAndReclaims(t *testing.T) {
	g := NewGovernor(4, 2)
	p1, r1 := g.Acquire()
	p2, r2 := g.Acquire()
	if p1 != 2 || p2 != 2 {
		t.Errorf("grants = %d, %d, want 2, 2", p1, p2)
	}
	// Pool empty: minimum grant keeps light queries unblocked.
	p3, r3 := g.Acquire()
	if p3 != 1 {
		t.Errorf("empty-pool grant = %d, want 1", p3)
	}
	if s := g.Stats(); s.ActiveLeases != 3 || s.InUse != 5 {
		t.Errorf("stats = %+v, want 3 leases / 5 in use", s)
	}
	r1()
	r2()
	r3()
	if s := g.Stats(); s.InUse != 0 || s.ActiveLeases != 0 {
		t.Errorf("pool not reclaimed: %+v", s)
	}
	if p, r := g.Acquire(); p != 2 {
		t.Errorf("grant after reclaim = %d, want 2", p)
	} else {
		r()
	}
}

func TestGovernorDefaults(t *testing.T) {
	g := NewGovernor(0, 0)
	s := g.Stats()
	if s.TotalSlots < 1 || s.PerQueryMax < 1 || s.PerQueryMax > s.TotalSlots {
		t.Errorf("defaults = %+v", s)
	}
	g = NewGovernor(4, 99)
	if s := g.Stats(); s.PerQueryMax != 4 {
		t.Errorf("perQuery should clamp to total: %+v", s)
	}
}
