package engine

import (
	"context"
	"sync"

	"ligra/internal/parallel"
)

// RunFunc computes a query result. ctx already carries the governor's
// proc cap (parallel.CtxProcs(ctx) <= procs), so every ctx-aware parallel
// loop reached by the run is bounded; procs is also passed explicitly for
// callers that want to record it or plumb it further.
type RunFunc func(ctx context.Context, procs int) (Value, error)

// Info describes how Execute satisfied a query.
type Info struct {
	// Cached reports a result served from the cache (no execution).
	Cached bool
	// Coalesced reports a result shared from another in-flight execution
	// of the same Key.
	Coalesced bool
	// Procs is the governor lease the execution ran with (0 when the
	// result was cached or coalesced).
	Procs int
}

// flight is one in-progress execution that identical queries attach to.
// val and err are written once, before done is closed; the close is the
// happens-before edge that publishes them to followers.
type flight struct {
	done chan struct{}
	val  Value
	err  error
}

// Engine composes the cache, the single-flight table, and the governor
// into one Execute entry point.
type Engine struct {
	cache *Cache
	gov   *Governor

	mu      sync.Mutex
	flights map[Key]*flight

	stats struct {
		sync.Mutex
		executions int64
		coalesced  int64
	}
}

// New builds an engine. cache may be nil (caching disabled); gov must not
// be nil.
func New(cache *Cache, gov *Governor) *Engine {
	return &Engine{cache: cache, gov: gov, flights: make(map[Key]*flight)}
}

// Cache exposes the result cache (nil when disabled) for invalidation.
func (e *Engine) Cache() *Cache { return e.cache }

// Governor exposes the slot pool for observability.
func (e *Engine) Governor() *Governor { return e.gov }

// InvalidateGraph drops every cached result for the named graph.
func (e *Engine) InvalidateGraph(graph string) int {
	return e.cache.InvalidateGraph(graph)
}

// Execute satisfies one query: from the cache if possible, by attaching
// to an identical in-flight execution if one exists, and otherwise by
// leasing governor slots and running run. Only successful results are
// cached — a partial result from a timeout must not be served to later
// callers with longer budgets.
//
// Followers share the leader's outcome verbatim, including its error: the
// leader runs under its own request context, so a follower can observe a
// cancellation it did not cause. A follower whose own ctx ends first
// detaches and returns its ctx error; the leader keeps running for anyone
// still waiting.
func (e *Engine) Execute(ctx context.Context, k Key, run RunFunc) (Value, Info, error) {
	if v, ok := e.cache.Get(k); ok {
		return v, Info{Cached: true}, nil
	}

	e.mu.Lock()
	if f, ok := e.flights[k]; ok {
		e.mu.Unlock()
		e.stats.Lock()
		e.stats.coalesced++
		e.stats.Unlock()
		select {
		case <-f.done:
			return f.val, Info{Coalesced: true}, f.err
		case <-ctx.Done():
			return Value{}, Info{Coalesced: true}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.flights[k] = f
	e.mu.Unlock()

	e.stats.Lock()
	e.stats.executions++
	e.stats.Unlock()

	procs, release := e.gov.Acquire()
	v, err := run(parallel.WithProcs(ctx, procs), procs)
	release()

	if err == nil {
		e.cache.Put(k, v)
	}
	e.mu.Lock()
	delete(e.flights, k)
	e.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	return v, Info{Procs: procs}, err
}

// Stats is the engine's counter snapshot for /metrics.
type Stats struct {
	// Executions counts queries that actually ran (cache misses that led
	// the flight).
	Executions int64 `json:"executions"`
	// Coalesced counts queries that attached to another query's flight.
	Coalesced int64 `json:"coalesced"`
	// InFlight is the number of distinct executions currently running.
	InFlight int           `json:"in_flight"`
	Cache    CacheStats    `json:"cache"`
	Governor GovernorStats `json:"governor"`
}

// Snapshot captures the counters.
func (e *Engine) Snapshot() Stats {
	e.mu.Lock()
	inFlight := len(e.flights)
	e.mu.Unlock()
	e.stats.Lock()
	ex, co := e.stats.executions, e.stats.coalesced
	e.stats.Unlock()
	return Stats{
		Executions: ex,
		Coalesced:  co,
		InFlight:   inFlight,
		Cache:      e.cache.Stats(),
		Governor:   e.gov.Stats(),
	}
}
