package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ligra/internal/parallel"
)

func testKey(graph string, gen uint64, params string) Key {
	return Key{Graph: graph, Generation: gen, Algo: "bfs", Params: params}
}

func TestExecuteCachesSuccessfulResults(t *testing.T) {
	e := New(NewCache(1<<20), NewGovernor(4, 2))
	k := testKey("g", 1, "source=0")
	var runs atomic.Int64
	run := func(ctx context.Context, procs int) (Value, error) {
		runs.Add(1)
		return Value{Data: "result", Bytes: 64}, nil
	}

	v, info, err := e.Execute(context.Background(), k, run)
	if err != nil || v.Data != "result" {
		t.Fatalf("first Execute: v=%v err=%v", v, err)
	}
	if info.Cached || info.Coalesced {
		t.Errorf("first Execute should run: info=%+v", info)
	}
	v, info, err = e.Execute(context.Background(), k, run)
	if err != nil || v.Data != "result" {
		t.Fatalf("second Execute: v=%v err=%v", v, err)
	}
	if !info.Cached {
		t.Errorf("second Execute should be cached: info=%+v", info)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1", got)
	}
	if s := e.Snapshot(); s.Cache.Hits != 1 || s.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", s.Cache)
	}
}

func TestExecuteDoesNotCacheErrors(t *testing.T) {
	e := New(NewCache(1<<20), NewGovernor(4, 2))
	k := testKey("g", 1, "source=0")
	var runs atomic.Int64
	boom := errors.New("partial")
	for i := 0; i < 2; i++ {
		_, _, err := e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
			runs.Add(1)
			return Value{Data: "partial"}, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("failed result was cached: %d runs, want 2", got)
	}
}

// TestExecuteCoalescesIdenticalConcurrentQueries is the acceptance test
// for single-flight: N identical concurrent queries invoke the runner
// exactly once and all observe the same result.
func TestExecuteCoalescesIdenticalConcurrentQueries(t *testing.T) {
	e := New(nil, NewGovernor(4, 2)) // cache off: coalescing must stand alone
	k := testKey("g", 1, "source=0")

	const n = 16
	var runs atomic.Int64
	entered := make(chan struct{})
	finish := make(chan struct{})
	run := func(ctx context.Context, procs int) (Value, error) {
		runs.Add(1)
		close(entered)
		<-finish
		return Value{Data: "shared", Bytes: 8}, nil
	}

	var wg sync.WaitGroup
	results := make([]Value, n)
	infos := make([]Info, n)
	errs := make([]error, n)

	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], infos[0], errs[0] = e.Execute(context.Background(), k, run)
	}()
	<-entered // the leader is inside the runner; followers must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], infos[i], errs[i] = e.Execute(context.Background(), k, run)
		}(i)
	}
	// Wait until all followers are parked on the flight.
	for {
		if s := e.Snapshot(); s.Coalesced == n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(finish)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("runner invoked %d times for %d identical concurrent queries, want 1", got, n)
	}
	coalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i].Data != "shared" {
			t.Errorf("query %d got %v", i, results[i].Data)
		}
		if infos[i].Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Errorf("%d queries coalesced, want %d", coalesced, n-1)
	}
}

func TestExecuteDistinctKeysDoNotCoalesce(t *testing.T) {
	e := New(nil, NewGovernor(8, 8))
	var runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := testKey("g", 1, fmt.Sprintf("source=%d", i))
			_, _, _ = e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
				runs.Add(1)
				return Value{}, nil
			})
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 4 {
		t.Errorf("runner invoked %d times for 4 distinct keys, want 4", got)
	}
}

func TestExecuteFollowerDetachesOnOwnCancel(t *testing.T) {
	e := New(nil, NewGovernor(4, 2))
	k := testKey("g", 1, "source=0")
	entered := make(chan struct{})
	finish := make(chan struct{})
	defer close(finish)
	go e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
		close(entered)
		<-finish
		return Value{}, nil
	})
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := e.Execute(ctx, k, func(ctx context.Context, procs int) (Value, error) {
			t.Error("follower ran the runner")
			return Value{}, nil
		})
		done <- err
	}()
	for e.Snapshot().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not detach from the flight")
	}
}

// TestExecutePlumbsGovernorCapThroughParallel verifies the end-to-end
// proc plumbing: the runner's ctx carries the lease as a
// parallel.WithProcs cap, so every ctx-aware loop under it is bounded.
func TestExecutePlumbsGovernorCapThroughParallel(t *testing.T) {
	old := parallel.Procs()
	parallel.SetProcs(8)
	defer parallel.SetProcs(old)

	e := New(nil, NewGovernor(8, 2))
	k := testKey("g", 1, "source=0")
	_, info, err := e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
		if procs != 2 {
			t.Errorf("lease = %d procs, want 2", procs)
		}
		if got := parallel.CtxProcs(ctx); got != 2 {
			t.Errorf("parallel.CtxProcs(ctx) = %d, want 2", got)
		}
		var cur, peak atomic.Int64
		perr := parallel.ForGrainCtx(ctx, 64, 1, func(i int) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
		})
		if perr != nil {
			return Value{}, perr
		}
		if p := peak.Load(); p > 2 {
			t.Errorf("observed %d concurrent workers under a 2-slot lease", p)
		}
		return Value{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Procs != 2 {
		t.Errorf("Info.Procs = %d, want 2", info.Procs)
	}
}

// TestLightQueriesNotStarvedByHeavyLoad is the governor's latency
// acceptance test: with heavy queries holding most of the pool, light
// queries still get a minimum-one-slot lease immediately (Acquire never
// blocks), so their p50 stays far below the heavy runtime.
func TestLightQueriesNotStarvedByHeavyLoad(t *testing.T) {
	e := New(nil, NewGovernor(4, 4))

	heavyDur := 400 * time.Millisecond
	heavyStarted := make(chan struct{})
	heavyDone := make(chan struct{})
	go func() {
		defer close(heavyDone)
		k := testKey("g", 1, "heavy")
		e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
			close(heavyStarted)
			time.Sleep(heavyDur) // occupies the full pool
			return Value{}, nil
		})
	}()
	<-heavyStarted

	const lights = 9
	lat := make([]time.Duration, lights)
	var wg sync.WaitGroup
	for i := 0; i < lights; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := testKey("g", 1, fmt.Sprintf("light=%d", i))
			start := time.Now()
			_, info, err := e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
				if procs < 1 {
					t.Errorf("light query granted %d procs", procs)
				}
				time.Sleep(time.Millisecond)
				return Value{}, nil
			})
			if err != nil {
				t.Errorf("light query %d: %v", i, err)
			}
			if info.Procs < 1 {
				t.Errorf("light query %d ran with %d procs", i, info.Procs)
			}
			lat[i] = time.Since(start)
		}(i)
	}
	wg.Wait()

	select {
	case <-heavyDone:
		t.Fatal("heavy query finished before light queries; the test measured nothing")
	default:
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if p50 := lat[lights/2]; p50 >= heavyDur/2 {
		t.Errorf("light-query p50 = %v with heavy query running (%v); governor is starving light queries", p50, heavyDur)
	}
	<-heavyDone
}

func TestInvalidateGraphDropsOnlyThatGraph(t *testing.T) {
	e := New(NewCache(1<<20), NewGovernor(2, 2))
	put := func(graph, params string) {
		k := testKey(graph, 1, params)
		e.Execute(context.Background(), k, func(ctx context.Context, procs int) (Value, error) {
			return Value{Data: graph + "/" + params, Bytes: 32}, nil
		})
	}
	put("a", "p1")
	put("a", "p2")
	put("b", "p1")

	if n := e.InvalidateGraph("a"); n != 2 {
		t.Errorf("InvalidateGraph(a) dropped %d entries, want 2", n)
	}
	if _, info, _ := e.Execute(context.Background(), testKey("b", 1, "p1"), func(ctx context.Context, procs int) (Value, error) {
		t.Error("graph b's entry was dropped")
		return Value{}, nil
	}); !info.Cached {
		t.Error("graph b should still be cached")
	}
	var reran atomic.Bool
	e.Execute(context.Background(), testKey("a", 1, "p1"), func(ctx context.Context, procs int) (Value, error) {
		reran.Store(true)
		return Value{}, nil
	})
	if !reran.Load() {
		t.Error("graph a still served from cache after invalidation")
	}
}
