package engine

import (
	"runtime"
	"sync"
)

// Governor is the per-query parallelism governor: a pool of CPU slots
// from which every executing query leases a bounded worker count. Without
// it, each admitted query fans its parallel loops out to every core, so K
// concurrent queries contend K-fold and heavy queries starve light ones;
// with it, a query runs with min(perQuery, slots still free) workers.
//
// Acquire never blocks and never grants fewer than one slot: a light
// query always makes progress even while heavy queries hold the pool, at
// the cost of bounded oversubscription (at most one extra worker per
// concurrently admitted query, which the server's admission semaphore
// caps). Leases are returned with the release func.
type Governor struct {
	mu       sync.Mutex
	total    int
	perQuery int
	free     int // may go negative under minimum-grant oversubscription
	leases   int
}

// NewGovernor builds a pool of total CPU slots granting at most perQuery
// per lease; 0 (or negative) selects GOMAXPROCS for either.
func NewGovernor(total, perQuery int) *Governor {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	if perQuery <= 0 || perQuery > total {
		perQuery = total
	}
	return &Governor{total: total, perQuery: perQuery, free: total}
}

// Acquire leases between 1 and perQuery slots, preferring as many as are
// free. The returned release must be called exactly once; it is
// idempotent-unsafe by design (a double release would inflate the pool).
func (g *Governor) Acquire() (procs int, release func()) {
	g.mu.Lock()
	procs = g.perQuery
	if g.free < procs {
		procs = g.free
	}
	if procs < 1 {
		procs = 1
	}
	g.free -= procs
	g.leases++
	g.mu.Unlock()
	return procs, func() {
		g.mu.Lock()
		g.free += procs
		g.leases--
		g.mu.Unlock()
	}
}

// GovernorStats is a point-in-time view of slot occupancy.
type GovernorStats struct {
	TotalSlots  int `json:"total_slots"`
	PerQueryMax int `json:"per_query_max"`
	// InUse is the number of slots currently leased; minimum-grant
	// oversubscription can push it above TotalSlots transiently.
	InUse int `json:"in_use"`
	// ActiveLeases is the number of queries currently holding a lease.
	ActiveLeases int `json:"active_leases"`
}

// Stats snapshots the pool.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{
		TotalSlots:   g.total,
		PerQueryMax:  g.perQuery,
		InUse:        g.total - g.free,
		ActiveLeases: g.leases,
	}
}
