package server

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"ligra/internal/gen"
	"ligra/internal/graph"
)

// TestQueryResultCaching is the end-to-end caching acceptance test: a
// repeated identical query is served from the result cache without
// re-invoking the runner (the engine's execution counter stands in for a
// runner-invocation count), and a query with different parameters is not.
func TestQueryResultCaching(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4, CacheBytes: 1 << 20})
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 11}); status != http.StatusOK {
		t.Fatalf("load: status %d, body %v", status, body)
	}

	q := map[string]any{"algo": "components"}
	status, first := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", q)
	if status != http.StatusOK {
		t.Fatalf("first query: status %d, body %v", status, first)
	}
	if first["cached"] == true {
		t.Fatal("first query claims to be cached")
	}
	status, second := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", q)
	if status != http.StatusOK {
		t.Fatalf("second query: status %d, body %v", status, second)
	}
	if second["cached"] != true {
		t.Errorf("repeated query not served from cache: %v", second)
	}
	if second["summary"] != first["summary"] {
		t.Errorf("cached summary %q differs from computed %q", second["summary"], first["summary"])
	}
	if es := s.Engine().Snapshot(); es.Executions != 1 {
		t.Errorf("runner executed %d times for 2 identical queries, want 1", es.Executions)
	}

	// Different parameters -> different key -> a fresh execution.
	if status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "components", "mode": "sparse"}); status != http.StatusOK || body["cached"] == true {
		t.Errorf("distinct-params query: status %d, cached %v", status, body["cached"])
	}
	if es := s.Engine().Snapshot(); es.Executions != 2 {
		t.Errorf("executions = %d after a distinct-params query, want 2", es.Executions)
	}

	// /metrics exposes the cache counters.
	snap := metricsSnapshot(t, ts.URL)
	if snap.Query.Cache.Hits != 1 {
		t.Errorf("metrics cache hits = %d, want 1", snap.Query.Cache.Hits)
	}
	if snap.Query.Cache.Entries < 2 {
		t.Errorf("metrics cache entries = %d, want >= 2", snap.Query.Cache.Entries)
	}
	if snap.Query.Governor.TotalSlots < 1 {
		t.Errorf("governor slots missing from metrics: %+v", snap.Query.Governor)
	}
}

// TestQueryCoalescingOverHTTP verifies single-flight end to end: a query
// identical to one already executing attaches to its flight instead of
// starting a second execution.
func TestQueryCoalescingOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4}) // cache off
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 14}); status != http.StatusOK {
		t.Fatal("load failed")
	}
	q := map[string]any{"algo": "pagerank"}
	type reply struct {
		status int
		body   map[string]any
	}
	done := make(chan reply, 1)
	go func() {
		status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", q)
		done <- reply{status, body}
	}()
	if !waitInFlight(t, ts.URL, 1) {
		t.Fatal("leader query never became in-flight")
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", q)
	if status != http.StatusOK {
		t.Fatalf("follower query: status %d, body %v", status, body)
	}
	if body["coalesced"] != true {
		t.Errorf("identical concurrent query did not coalesce: %v", body)
	}
	if r := <-done; r.status != http.StatusOK {
		t.Fatalf("leader query: status %d, body %v", r.status, r.body)
	}
	es := s.Engine().Snapshot()
	if es.Executions != 1 {
		t.Errorf("2 identical concurrent queries ran %d executions, want 1", es.Executions)
	}
	if es.Coalesced < 1 {
		t.Errorf("coalesced counter = %d, want >= 1", es.Coalesced)
	}
}

// TestCacheInvalidationOnEvictAndReload is the generation-bump regression
// test: after a graph is evicted and its name reloaded with a different
// graph, queries must be answered from the new graph, never from results
// cached against the old residency.
func TestCacheInvalidationOnEvictAndReload(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, CacheBytes: 1 << 20})

	load := func(spec map[string]any, wantGen float64) {
		t.Helper()
		status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g", spec)
		if status != http.StatusOK {
			t.Fatalf("load %v: status %d, body %v", spec, status, body)
		}
		if body["generation"] != wantGen {
			t.Fatalf("load %v: generation = %v, want %v", spec, body["generation"], wantGen)
		}
	}
	query := func() map[string]any {
		t.Helper()
		status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "components"})
		if status != http.StatusOK {
			t.Fatalf("query: status %d, body %v", status, body)
		}
		return body
	}

	load(map[string]any{"gen": "rmat", "scale": 11}, 1)
	first := query()
	if cached := query(); cached["cached"] != true {
		t.Fatalf("repeat query on generation 1 not cached: %v", cached)
	}

	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/g", nil); status != http.StatusOK {
		t.Fatal("evict failed")
	}
	// Same name, different graph: the generation must advance.
	load(map[string]any{"gen": "grid3d", "scale": 11}, 2)

	fresh := query()
	if fresh["cached"] == true {
		t.Fatalf("query after evict+reload served from the old graph's cache: %v", fresh)
	}
	if fresh["summary"] == first["summary"] {
		t.Errorf("reloaded graph produced the old graph's result: %q", fresh["summary"])
	}
}

// TestRegistryGenerationSurvivesEviction pins the registry-level contract
// the cache key depends on: generations per name are monotonic across
// evict/reload cycles and independent between names.
func TestRegistryGenerationSurvivesEviction(t *testing.T) {
	r := NewRegistry()
	build := func() (graph.View, error) { return gen.RMAT(8, 16, gen.PBBSRMAT, 1) }
	for want := uint64(1); want <= 3; want++ {
		info, err := r.Load(context.Background(), "g", fmt.Sprintf("src-%d", want), build)
		if err != nil {
			t.Fatal(err)
		}
		if info.Generation != want {
			t.Fatalf("load %d: generation = %d, want %d", want, info.Generation, want)
		}
		if _, got, err := r.Get(context.Background(), "g"); err != nil || got.Generation != want {
			t.Fatalf("Get after load %d: generation = %d (err %v), want %d", want, got.Generation, err, want)
		}
		if !r.Evict("g") {
			t.Fatal("evict failed")
		}
	}
	// An unrelated name starts at generation 1.
	info, err := r.Load(context.Background(), "other", "src", build)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 {
		t.Errorf("first load of a fresh name: generation = %d, want 1", info.Generation)
	}
}

// TestPerQueryProcsReachTheRun verifies the governor cap travels from
// Config.MaxQueryProcs to the query response's procs field.
func TestPerQueryProcsReachTheRun(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, MaxQueryProcs: 1})
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g", map[string]any{"gen": "rmat", "scale": 10}); status != http.StatusOK {
		t.Fatal("load failed")
	}
	status, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/query", map[string]any{"algo": "bfs"})
	if status != http.StatusOK {
		t.Fatalf("query: status %d, body %v", status, body)
	}
	if body["procs"] != float64(1) {
		t.Errorf("query ran with procs = %v, want 1 (MaxQueryProcs)", body["procs"])
	}
}
