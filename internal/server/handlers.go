package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"ligra"
	"ligra/internal/algo"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/server/batch"
	"ligra/internal/server/engine"
	"ligra/internal/server/resilience"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("POST /v1/graphs/{name}", s.handleLoad)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleEvict)
	s.mux.HandleFunc("POST /v1/graphs/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/graphs/{name}/update", s.handleUpdate)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfter sets the Retry-After header (seconds, rounded up, at least
// 1) so well-behaved clients back off instead of hammering; see
// docs/SERVING.md for the header contract.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// healthGraph is one graph's load state in the readiness document.
type healthGraph struct {
	Name string `json:"name"`
	// State is "ready", "loading", or "compacting". A compacting graph
	// keeps serving its current snapshot, so the state is informational
	// and never fails readiness.
	State string `json:"state"`
	// Format names the resident backend ("csr", "compressed",
	// "compressed+mmap", with "+delta" appended while un-compacted
	// updates are overlaid); empty while loading.
	Format string `json:"format,omitempty"`
	// MappedBytes reports mmap residency for compressed+mmap graphs.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// SnapshotVersion is the current snapshot's version (see /metrics for
	// the reader-lag gauges alongside it).
	SnapshotVersion uint64 `json:"snapshot_version,omitempty"`
}

// healthResponse is the readiness document served at /healthz.
type healthResponse struct {
	// Status is "ok", "degraded" (at least one circuit breaker is not
	// closed — the replica serves, but a router should deprioritize
	// it), or "draining".
	Status   string                     `json:"status"`
	Graphs   []healthGraph              `json:"graphs"`
	Breakers []resilience.BreakerStatus `json:"breakers,omitempty"`
	Watchdog map[string]int64           `json:"watchdog,omitempty"`
}

// handleHealthz distinguishes liveness from readiness. Plain /healthz
// is the readiness probe: structured JSON with per-graph load state and
// breaker states, HTTP 200 for "ok"/"degraded" and 503 while draining.
// /healthz?live=1 is the liveness probe with the original bare
// contract — 200 {"status":"ok"} unless draining (503) — kept for
// load-balancer drain checks that only look at the status code.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("live") == "1" {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"graphs": len(s.reg.List()),
		})
		return
	}
	resp := healthResponse{Status: "ok", Graphs: []healthGraph{}}
	for _, info := range s.reg.List() {
		state := "ready"
		switch {
		case info.Loading:
			state = "loading"
		case info.Compacting:
			// Still serving the current snapshot; readiness unaffected.
			state = "compacting"
		}
		resp.Graphs = append(resp.Graphs, healthGraph{
			Name: info.Name, State: state,
			Format: info.Format, MappedBytes: info.MappedBytes,
			SnapshotVersion: info.SnapshotVersion,
		})
	}
	resp.Breakers = s.breakers.States()
	if trips := s.watchdog.Trips(); trips > 0 {
		resp.Watchdog = map[string]int64{"trips": trips}
	}
	status := http.StatusOK
	if s.breakers.OpenCount() > 0 {
		resp.Status = "degraded"
	}
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.reg, s.engine, s.resilienceSnapshot(), s.batcher))
}

// resilienceSnapshot assembles the /metrics resilience block from the
// subsystem's live components.
func (s *Server) resilienceSnapshot() ResilienceSnapshot {
	return ResilienceSnapshot{
		ShedderStats:  s.shed.Stats(),
		BreakerStats:  s.breakers.Stats(),
		BudgetStats:   s.reg.RetryBudget().Stats(),
		WatchdogTrips: s.watchdog.Trips(),
		Breakers:      s.breakers.States(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	_, info, err := s.reg.Get(r.Context(), r.PathValue("name"))
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Evict(name) {
		writeError(w, http.StatusNotFound, "graph not found: %q", name)
		return
	}
	dropped := s.engine.InvalidateGraph(name)
	s.log.Info("graph evicted", "graph", name, "cache_entries_dropped", dropped)
	writeJSON(w, http.StatusOK, map[string]any{"evicted": name})
}

// loadRequest specifies where a graph comes from: a file path (any format
// in docs/FORMATS.md — AdjacencyGraph text, LIGRAGO1 binary, or LIGRAGC1
// compressed, detected by content) or a synthetic generator family.
type loadRequest struct {
	// Path names a graph file; Symmetric declares a text file undirected.
	Path      string `json:"path,omitempty"`
	Symmetric bool   `json:"symmetric,omitempty"`
	// Mmap memory-maps a compressed (LIGRAGC1) file instead of reading it
	// into the heap: the bytes stay in the page cache, so restarts are
	// warm and co-hosted processes share one copy. Rejected for other
	// formats.
	Mmap bool `json:"mmap,omitempty"`
	// Gen generates instead: rmat | grid3d | randlocal | twitter-sim.
	Gen   string `json:"gen,omitempty"`
	Scale int    `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Weights, when positive, attaches deterministic hash weights in
	// [1, Weights] (for the shortest-path algorithms).
	Weights int32 `json:"weights,omitempty"`
}

// plan canonicalizes the request into a source description (the
// single-flight key alongside the name) and a build function.
func (lr loadRequest) plan() (string, func() (graph.View, error), error) {
	if lr.Path != "" && lr.Gen != "" {
		return "", nil, errors.New(`"path" and "gen" are mutually exclusive`)
	}
	scale := lr.Scale
	if scale == 0 {
		scale = 12
	}
	var source string
	var build func() (graph.View, error)
	switch {
	case lr.Path != "":
		source = fmt.Sprintf("file:%s symmetric=%t", lr.Path, lr.Symmetric)
		if lr.Mmap {
			source += " mmap=true"
		}
		build = func() (graph.View, error) {
			return ligra.Load(lr.Path, ligra.LoadOptions{Symmetric: lr.Symmetric, MMap: lr.Mmap})
		}
	case lr.Gen == "rmat":
		source = fmt.Sprintf("gen:rmat scale=%d seed=%d", scale, lr.Seed)
		build = func() (graph.View, error) { return gen.RMAT(scale, 16, gen.PBBSRMAT, lr.Seed) }
	case lr.Gen == "twitter-sim":
		source = fmt.Sprintf("gen:twitter-sim scale=%d seed=%d", scale, lr.Seed)
		build = func() (graph.View, error) { return gen.RMAT(scale, 15, gen.Graph500RMAT, lr.Seed) }
	case lr.Gen == "grid3d":
		source = fmt.Sprintf("gen:grid3d scale=%d", scale)
		build = func() (graph.View, error) {
			side := 1
			for side*side*side < 1<<scale {
				side++
			}
			return gen.Grid3D(side)
		}
	case lr.Gen == "randlocal":
		source = fmt.Sprintf("gen:randlocal scale=%d seed=%d", scale, lr.Seed)
		build = func() (graph.View, error) {
			n := 1 << scale
			return gen.RandomLocal(n, 10, n/16, lr.Seed)
		}
	case lr.Gen != "":
		return "", nil, fmt.Errorf("unknown generator %q (have rmat | grid3d | randlocal | twitter-sim)", lr.Gen)
	default:
		return "", nil, errors.New(`provide "path" or "gen"`)
	}
	if lr.Weights > 0 {
		source += fmt.Sprintf(" weights=%d", lr.Weights)
		inner := build
		build = func() (graph.View, error) {
			g, err := inner()
			if err != nil {
				return nil, err
			}
			csr, ok := g.(*graph.Graph)
			if !ok {
				return nil, errors.New("weights require a CSR graph; re-weight the source before compressing instead")
			}
			return csr.AddWeights(graph.HashWeight(lr.Weights)), nil
		}
	}
	return source, build, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad load request: %v", err)
		return
	}
	source, build, err := req.plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	info, err := s.reg.Load(r.Context(), name, source, build)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrConflict) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	s.log.Info("graph loaded", "graph", name, "source", source,
		"vertices", info.Vertices, "edges", info.Edges,
		"memory_bytes", info.MemoryBytes,
		"dur_ms", float64(time.Since(start).Microseconds())/1000)
	writeJSON(w, http.StatusOK, info)
}

// queryRequest is the body of POST /v1/graphs/{name}/query. Omitted
// fields select per-algorithm defaults (the same ones ligra-run uses).
type queryRequest struct {
	Algo string `json:"algo"`
	// Params contributes the algorithm parameters (seed, k, delta, alpha,
	// eps, mode, threshold) — the same typed set ligra-run builds from its
	// flags, and the set the result cache keys on via Canonical.
	algo.Params
	// Source shadows Params.Source on the wire so that "omitted" is
	// distinguishable: a nil Source selects the graph's
	// highest-out-degree vertex.
	Source *int64 `json:"source,omitempty"`
	// TimeoutMs bounds the query; on expiry the request completes with
	// 504 and the algorithm's partial result.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// queryResponse is the body of a query reply (any status).
type queryResponse struct {
	Graph     string         `json:"graph"`
	Algo      string         `json:"algo"`
	Summary   string         `json:"summary,omitempty"`
	Details   map[string]any `json:"details,omitempty"`
	ElapsedMs float64        `json:"elapsed_ms"`
	// Partial marks an interrupted query whose Summary/Details describe
	// the partial result; InterruptedAfterRound is the number of rounds
	// that completed before the deadline hit.
	Partial               bool   `json:"partial,omitempty"`
	InterruptedAfterRound int    `json:"interrupted_after_round,omitempty"`
	Error                 string `json:"error,omitempty"`
	// Cached marks a result served from the query engine's result cache;
	// Coalesced marks one shared from an identical concurrent query's
	// execution. Procs is the parallelism-governor lease the execution
	// ran with (absent for cached/coalesced replies, which ran nothing).
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	Procs     int  `json:"procs,omitempty"`
	// Batched marks a result answered by a shared multi-source sweep;
	// BatchSize is how many query slots that sweep served (1 = a batch
	// of one; the answer is identical either way).
	Batched   bool `json:"batched,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// Backend names the execution backend that produced the result
	// ("edgemap" or "spmv"; "auto" requests report what auto resolved to).
	// Cached and coalesced replies report the backend of the execution
	// that filled the cache — the backends are bit-identical, so the
	// result is the same either way.
	Backend string `json:"backend,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	runner, ok := algo.FindRunner(req.Algo)
	if !ok {
		writeError(w, http.StatusBadRequest, "%v", algo.UnknownAlgoError(req.Algo))
		return
	}
	if err := req.Params.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Pin the graph's current snapshot for the whole query: the view —
	// including an mmap-backed base — stays valid until the pin is
	// released, even if the graph is evicted or updated mid-query.
	pin, info, err := s.reg.Acquire(r.Context(), name)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	defer pin.Release()
	g := pin.View()
	source := info.DefaultSource
	if req.Source != nil {
		if *req.Source < 0 || *req.Source >= int64(g.NumVertices()) {
			writeError(w, http.StatusBadRequest, "source %d out of range (n=%d)", *req.Source, g.NumVertices())
			return
		}
		source = uint32(*req.Source)
	}
	// Batchable algorithms validate their extra parameters (reach
	// targets, landmark lists) up front: the batched path extracts
	// answers straight from the shared sweep, so a range error must be
	// rejected here rather than silently read as "unreachable".
	if err := algo.BatchValidate(runner.Name, g.NumVertices(), req.Params); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve the execution backend against the pinned view (Validate only
	// checked the name; whether this algorithm has an spmv kernel, and what
	// "auto" means for this graph, is decided here).
	backend, err := algo.ResolveBackend(runner.Name, g, req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Circuit breaker: a combination that keeps panicking or blowing
	// through deadlines fails fast — before consuming an admission slot
	// — with a typed body a router can act on.
	bkey := resilience.BreakerKey{Algo: runner.Name, Graph: name}
	allowed, probe, wait := s.breakers.Allow(bkey)
	if !allowed {
		retryAfter(w, wait)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":          fmt.Sprintf("circuit breaker open for %s on %q (repeated panics/timeouts); retry after the cooldown", runner.Name, name),
			"error_type":     "breaker_open",
			"algo":           runner.Name,
			"graph":          name,
			"retry_after_ms": wait.Milliseconds(),
		})
		return
	}
	// From here on every return path must settle the breaker: a true
	// from Allow in the half-open state is the probe whose outcome the
	// state machine waits for, so Record runs unconditionally — the
	// default Aborted outcome releases a probe slot without moving the
	// state machine or the failure streak.
	outcome := resilience.OutcomeAborted
	defer func() {
		s.breakers.Record(bkey, outcome, probe)
	}()

	// Admission: adaptive shedding over bounded concurrency — shed with
	// 429 + Retry-After when past the service-level target, after the
	// queue window otherwise.
	dec := s.shed.Admit(r.Context(), s.tenantOf(r))
	if !dec.OK {
		s.metrics.Rejected.Add(1)
		retryAfter(w, dec.RetryAfter)
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":      fmt.Sprintf("server overloaded (%s), retry later", dec.Reason),
			"error_type": "shed",
			"reason":     string(dec.Reason),
		})
		return
	}
	admitted := time.Now()
	defer func() {
		s.shed.RecordLatency(time.Since(admitted))
		dec.Release()
	}()
	s.metrics.Admitted.Add(1)

	// The query context: cancelled when the server hard-stops
	// (CancelInflight), when the client disconnects, or when the
	// query's deadline expires.
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	// A deadline expiry only indicts the (algorithm, graph) combination
	// when the server imposed the deadline. timeout_ms is client-chosen
	// with no minimum, and short-timeout bounded partial-result queries
	// are documented usage — if their expiries counted as breaker
	// failures, a handful of cheap requests from one unauthenticated
	// client would open the breaker and 503 every tenant on a healthy
	// combination.
	timeout := s.cfg.DefaultTimeout
	deadlineIndicts := true
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		deadlineIndicts = s.cfg.DefaultTimeout > 0 && timeout >= s.cfg.DefaultTimeout
	}
	if max := s.cfg.maxTimeout(); timeout > max {
		timeout = max
		deadlineIndicts = true // clamped: the query got all the server allows
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	params := req.Params
	params.Source = source
	// The cache generation is the pinned snapshot's version: load
	// generations and update versions share one per-name sequence, so a
	// cached result is provably from exactly this snapshot — queries
	// racing an update batch simply key under the version they pinned.
	key := engine.Key{
		Graph:      name,
		Generation: pin.Version(),
		Algo:       runner.Name,
		Params:     params.Canonical(),
	}
	am := s.metrics.Algo(runner.Name)
	am.Requests.Add(1)
	s.metrics.InFlight.Add(1)
	// Watchdog: register the deadline so a query the cancellation layer
	// fails to stop is detected, stack-dumped, and counted.
	var qDeadline time.Time
	if d, ok := ctx.Deadline(); ok {
		qDeadline = d
	}
	wid := s.watchdog.Watch(name, runner.Name, qDeadline)
	start := time.Now()
	var val engine.Value
	var how engine.Info
	var binfo batch.Info
	// The batch collector's shared sweeps are ClusterBFS — an edgeMap
	// execution — so a query that resolved to the spmv backend bypasses
	// batching and runs its kernel through the engine instead.
	if s.batcher != nil && backend == algo.BackendEdgeMap && algo.Batchable(runner.Name) {
		// Batched path: the query contributes one source bit to a shared
		// ClusterBFS sweep over every compatible query in the window.
		// The shape key admits any batchable algorithm against the same
		// graph generation and traversal options; cache lookups/fills
		// and slot coalescing happen inside the collector, so the
		// engine's single-flight layer is bypassed, not duplicated.
		// The shape key includes the snapshot version, so every slot of a
		// sweep pinned the identical snapshot. The sweep itself can fire
		// after this handler's pin is gone (detached window fire), so it
		// re-pins at execution time and aborts if the graph was evicted.
		run := batch.ClusterRun(g)
		val, binfo, err = s.batcher.Execute(ctx, batch.Request{
			Key:    key,
			Shape:  fmt.Sprintf("%s gen=%d mode=%s threshold=%d", name, pin.Version(), params.Mode, params.Threshold),
			Algo:   runner.Name,
			Params: params,
		}, func(sweepCtx context.Context, procs int, slots []batch.Request) ([]engine.Value, error) {
			sweepPin, ok := pin.Store().TryAcquire()
			if !ok {
				return nil, fmt.Errorf("graph %q evicted before its batched sweep ran", name)
			}
			defer sweepPin.Release()
			return run(sweepCtx, procs, slots)
		})
		how = engine.Info{Cached: binfo.Cached, Coalesced: binfo.Coalesced, Procs: binfo.Procs}
	} else {
		val, how, err = s.engine.Execute(ctx, key, func(runCtx context.Context, procs int) (engine.Value, error) {
			p := params
			p.EdgeMap.Procs = procs // cap every edgeMap of the run at the lease
			// Algorithms with incremental refresh paths are served from
			// the snapshot store's memoized state when the delta log can
			// carry it forward; everything else runs the plain runner.
			if v, handled, err := incrementalRun(runCtx, pin, runner.Name, p); handled {
				return v, err
			}
			res, err := safeRun(runner, runCtx, g, p)
			return engine.Value{Data: res, Bytes: res.EstimateBytes()}, err
		})
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	s.watchdog.Done(wid)
	s.metrics.InFlight.Add(-1)
	am.LatencyMsSum.Add(elapsed)

	// Cached and coalesced replies prove nothing new about the
	// (algorithm, graph) combination (recording them would also
	// double-count the coalesced leader's outcome), so only an actual
	// execution may promote the outcome past Aborted. A half-open probe
	// can be served from the cache too: the Aborted record releases its
	// probe slot, where skipping Record would wedge the breaker
	// half-open with every later Allow refused.
	executed := !how.Cached && !how.Coalesced

	res, _ := val.Data.(algo.RunResult)
	resBackend, _ := res.Details["backend"].(string)
	if executed && resBackend != "" {
		s.metrics.Backend(resBackend).Add(1)
	}
	resp := queryResponse{
		Graph: name, Algo: runner.Name,
		Summary: res.Summary, Details: sanitizeDetails(res.Details), ElapsedMs: elapsed,
		Cached: how.Cached, Coalesced: how.Coalesced, Procs: how.Procs,
		Batched: binfo.Batched, BatchSize: binfo.BatchSize,
		Backend: resBackend,
	}
	var pe *parallel.PanicError
	var re *algo.RoundError
	switch {
	case err == nil:
		if executed {
			outcome = resilience.OutcomeSuccess
		}
		writeJSON(w, http.StatusOK, resp)
	case errors.As(err, &pe):
		if executed {
			outcome = resilience.OutcomeFailure
		}
		am.Panics.Add(1)
		s.log.Error("query panic contained", "graph", name, "algo", runner.Name,
			"panic", fmt.Sprint(pe.Value), "stack", string(pe.Stack))
		resp.Summary, resp.Details = "", nil
		resp.Error = fmt.Sprintf("query panicked (contained): %v", pe.Value)
		writeJSON(w, http.StatusInternalServerError, resp)
	case errors.Is(err, context.DeadlineExceeded):
		// Expiry of a client-requested timeout shorter than the server's
		// own is legitimate bounded-work usage, not a failure: the
		// outcome stays Aborted.
		if executed && deadlineIndicts {
			outcome = resilience.OutcomeFailure
		}
		am.Timeouts.Add(1)
		resp.Partial = true
		if errors.As(err, &re) {
			resp.InterruptedAfterRound = re.Round
		}
		resp.Error = err.Error()
		writeJSON(w, http.StatusGatewayTimeout, resp)
	case errors.Is(err, context.Canceled):
		// Client disconnect or drain cancellation: not the
		// combination's fault, so the breaker records nothing
		// (outcome stays Aborted).
		am.Timeouts.Add(1)
		resp.Partial = true
		if errors.As(err, &re) {
			resp.InterruptedAfterRound = re.Round
		}
		resp.Error = err.Error()
		writeJSON(w, http.StatusGatewayTimeout, resp)
	default:
		// The query's own fault (e.g. invalid input for the
		// algorithm); says nothing about the combination's health.
		am.Errors.Add(1)
		resp.Summary, resp.Details = "", nil
		resp.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, resp)
	}
}

// sanitizeDetails renders non-finite floats as strings, which
// encoding/json cannot represent (a partial PageRank result, for
// example, reports an +Inf L1 change).
func sanitizeDetails(d map[string]any) map[string]any {
	for k, v := range d {
		if f, ok := v.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			d[k] = fmt.Sprint(f)
		}
	}
	return d
}

// safeRun executes one query with panic containment: worker panics
// already surface as *parallel.PanicError from the Ctx entry points, and
// any panic on the query goroutine itself (including re-panics from
// non-cancellable algorithms) is converted to one here, so a bad query
// can never take down the process.
func safeRun(runner algo.Runner, ctx context.Context, g graph.View, p algo.Params) (res algo.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parallel.PanicError); ok {
				err = pe
				return
			}
			err = &parallel.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return runner.Run(ctx, g, p)
}
