package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"time"

	"ligra/internal/algo"
	"ligra/internal/gen"
	"ligra/internal/graph"
	"ligra/internal/parallel"
	"ligra/internal/server/engine"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("POST /v1/graphs/{name}", s.handleLoad)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleEvict)
	s.mux.HandleFunc("POST /v1/graphs/{name}/query", s.handleQuery)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"graphs": len(s.reg.List()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.reg, s.engine))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	_, info, err := s.reg.Get(r.Context(), r.PathValue("name"))
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Evict(name) {
		writeError(w, http.StatusNotFound, "graph not found: %q", name)
		return
	}
	dropped := s.engine.InvalidateGraph(name)
	s.log.Info("graph evicted", "graph", name, "cache_entries_dropped", dropped)
	writeJSON(w, http.StatusOK, map[string]any{"evicted": name})
}

// loadRequest specifies where a graph comes from: a file path
// (AdjacencyGraph text or this package's binary format) or a synthetic
// generator family.
type loadRequest struct {
	// Path names a graph file; Symmetric declares a text file undirected.
	Path      string `json:"path,omitempty"`
	Symmetric bool   `json:"symmetric,omitempty"`
	// Gen generates instead: rmat | grid3d | randlocal | twitter-sim.
	Gen   string `json:"gen,omitempty"`
	Scale int    `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Weights, when positive, attaches deterministic hash weights in
	// [1, Weights] (for the shortest-path algorithms).
	Weights int32 `json:"weights,omitempty"`
}

// plan canonicalizes the request into a source description (the
// single-flight key alongside the name) and a build function.
func (lr loadRequest) plan() (string, func() (*graph.Graph, error), error) {
	if lr.Path != "" && lr.Gen != "" {
		return "", nil, errors.New(`"path" and "gen" are mutually exclusive`)
	}
	scale := lr.Scale
	if scale == 0 {
		scale = 12
	}
	var source string
	var build func() (*graph.Graph, error)
	switch {
	case lr.Path != "":
		source = fmt.Sprintf("file:%s symmetric=%t", lr.Path, lr.Symmetric)
		build = func() (*graph.Graph, error) { return graph.LoadFile(lr.Path, lr.Symmetric) }
	case lr.Gen == "rmat":
		source = fmt.Sprintf("gen:rmat scale=%d seed=%d", scale, lr.Seed)
		build = func() (*graph.Graph, error) { return gen.RMAT(scale, 16, gen.PBBSRMAT, lr.Seed) }
	case lr.Gen == "twitter-sim":
		source = fmt.Sprintf("gen:twitter-sim scale=%d seed=%d", scale, lr.Seed)
		build = func() (*graph.Graph, error) { return gen.RMAT(scale, 15, gen.Graph500RMAT, lr.Seed) }
	case lr.Gen == "grid3d":
		source = fmt.Sprintf("gen:grid3d scale=%d", scale)
		build = func() (*graph.Graph, error) {
			side := 1
			for side*side*side < 1<<scale {
				side++
			}
			return gen.Grid3D(side)
		}
	case lr.Gen == "randlocal":
		source = fmt.Sprintf("gen:randlocal scale=%d seed=%d", scale, lr.Seed)
		build = func() (*graph.Graph, error) {
			n := 1 << scale
			return gen.RandomLocal(n, 10, n/16, lr.Seed)
		}
	case lr.Gen != "":
		return "", nil, fmt.Errorf("unknown generator %q (have rmat | grid3d | randlocal | twitter-sim)", lr.Gen)
	default:
		return "", nil, errors.New(`provide "path" or "gen"`)
	}
	if lr.Weights > 0 {
		source += fmt.Sprintf(" weights=%d", lr.Weights)
		inner := build
		build = func() (*graph.Graph, error) {
			g, err := inner()
			if err != nil {
				return nil, err
			}
			return g.AddWeights(graph.HashWeight(lr.Weights)), nil
		}
	}
	return source, build, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad load request: %v", err)
		return
	}
	source, build, err := req.plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	info, err := s.reg.Load(r.Context(), name, source, build)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrConflict) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	s.log.Info("graph loaded", "graph", name, "source", source,
		"vertices", info.Vertices, "edges", info.Edges,
		"memory_bytes", info.MemoryBytes,
		"dur_ms", float64(time.Since(start).Microseconds())/1000)
	writeJSON(w, http.StatusOK, info)
}

// queryRequest is the body of POST /v1/graphs/{name}/query. Omitted
// fields select per-algorithm defaults (the same ones ligra-run uses).
type queryRequest struct {
	Algo string `json:"algo"`
	// Params contributes the algorithm parameters (seed, k, delta, alpha,
	// eps, mode, threshold) — the same typed set ligra-run builds from its
	// flags, and the set the result cache keys on via Canonical.
	algo.Params
	// Source shadows Params.Source on the wire so that "omitted" is
	// distinguishable: a nil Source selects the graph's
	// highest-out-degree vertex.
	Source *int64 `json:"source,omitempty"`
	// TimeoutMs bounds the query; on expiry the request completes with
	// 504 and the algorithm's partial result.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// queryResponse is the body of a query reply (any status).
type queryResponse struct {
	Graph     string         `json:"graph"`
	Algo      string         `json:"algo"`
	Summary   string         `json:"summary,omitempty"`
	Details   map[string]any `json:"details,omitempty"`
	ElapsedMs float64        `json:"elapsed_ms"`
	// Partial marks an interrupted query whose Summary/Details describe
	// the partial result; InterruptedAfterRound is the number of rounds
	// that completed before the deadline hit.
	Partial               bool   `json:"partial,omitempty"`
	InterruptedAfterRound int    `json:"interrupted_after_round,omitempty"`
	Error                 string `json:"error,omitempty"`
	// Cached marks a result served from the query engine's result cache;
	// Coalesced marks one shared from an identical concurrent query's
	// execution. Procs is the parallelism-governor lease the execution
	// ran with (absent for cached/coalesced replies, which ran nothing).
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	Procs     int  `json:"procs,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	runner, ok := algo.FindRunner(req.Algo)
	if !ok {
		writeError(w, http.StatusBadRequest, "%v", algo.UnknownAlgoError(req.Algo))
		return
	}
	if err := req.Params.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	g, info, err := s.reg.Get(r.Context(), name)
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrNotFound) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	source := info.DefaultSource
	if req.Source != nil {
		if *req.Source < 0 || *req.Source >= int64(g.NumVertices()) {
			writeError(w, http.StatusBadRequest, "source %d out of range (n=%d)", *req.Source, g.NumVertices())
			return
		}
		source = uint32(*req.Source)
	}

	// Admission: bounded concurrency with a short queue, then 429.
	if !s.admit(r.Context()) {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "server at max concurrency, retry later")
		return
	}
	defer s.release()
	s.metrics.Admitted.Add(1)

	// The query context: cancelled when the server hard-stops
	// (CancelInflight), when the client disconnects, or when the
	// query's deadline expires.
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); timeout > max {
		timeout = max
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	params := req.Params
	params.Source = source
	key := engine.Key{
		Graph:      name,
		Generation: info.Generation,
		Algo:       runner.Name,
		Params:     params.Canonical(),
	}
	am := s.metrics.Algo(runner.Name)
	am.Requests.Add(1)
	s.metrics.InFlight.Add(1)
	start := time.Now()
	val, how, err := s.engine.Execute(ctx, key, func(runCtx context.Context, procs int) (engine.Value, error) {
		p := params
		p.EdgeMap.Procs = procs // cap every edgeMap of the run at the lease
		res, err := safeRun(runner, runCtx, g, p)
		return engine.Value{Data: res, Bytes: estimateResultBytes(res)}, err
	})
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	s.metrics.InFlight.Add(-1)
	am.LatencyMsSum.Add(elapsed)

	res, _ := val.Data.(algo.RunResult)
	resp := queryResponse{
		Graph: name, Algo: runner.Name,
		Summary: res.Summary, Details: sanitizeDetails(res.Details), ElapsedMs: elapsed,
		Cached: how.Cached, Coalesced: how.Coalesced, Procs: how.Procs,
	}
	var pe *parallel.PanicError
	var re *algo.RoundError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.As(err, &pe):
		am.Panics.Add(1)
		s.log.Error("query panic contained", "graph", name, "algo", runner.Name,
			"panic", fmt.Sprint(pe.Value), "stack", string(pe.Stack))
		resp.Summary, resp.Details = "", nil
		resp.Error = fmt.Sprintf("query panicked (contained): %v", pe.Value)
		writeJSON(w, http.StatusInternalServerError, resp)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		am.Timeouts.Add(1)
		resp.Partial = true
		if errors.As(err, &re) {
			resp.InterruptedAfterRound = re.Round
		}
		resp.Error = err.Error()
		writeJSON(w, http.StatusGatewayTimeout, resp)
	default:
		am.Errors.Add(1)
		resp.Summary, resp.Details = "", nil
		resp.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, resp)
	}
}

// estimateResultBytes approximates a RunResult's heap footprint for the
// result cache's byte budget: the summary string plus each detail's key
// and boxed scalar value.
func estimateResultBytes(res algo.RunResult) int64 {
	b := int64(len(res.Summary))
	for k := range res.Details {
		b += int64(len(k)) + 48
	}
	return b
}

// sanitizeDetails renders non-finite floats as strings, which
// encoding/json cannot represent (a partial PageRank result, for
// example, reports an +Inf L1 change).
func sanitizeDetails(d map[string]any) map[string]any {
	for k, v := range d {
		if f, ok := v.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			d[k] = fmt.Sprint(f)
		}
	}
	return d
}

// safeRun executes one query with panic containment: worker panics
// already surface as *parallel.PanicError from the Ctx entry points, and
// any panic on the query goroutine itself (including re-panics from
// non-cancellable algorithms) is converted to one here, so a bad query
// can never take down the process.
func safeRun(runner algo.Runner, ctx context.Context, g graph.View, p algo.Params) (res algo.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*parallel.PanicError); ok {
				err = pe
				return
			}
			err = &parallel.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return runner.Run(ctx, g, p)
}
